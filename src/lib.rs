//! # iso-energy-efficiency
//!
//! Facade crate for the reproduction of *Song, Su, Ge, Vishnu, Cameron —
//! "Iso-energy-efficiency: An approach to power-constrained parallel
//! computation" (IPDPS 2011)*.
//!
//! Re-exports every workspace crate so downstream users and the examples can
//! depend on a single package:
//!
//! * [`isoee`] — the analytical iso-energy-efficiency model (the paper's
//!   contribution): `EEF`, `EE`, application models, scalability analysis.
//! * [`simcluster`] — the power-aware cluster simulator (SystemG / Dori).
//! * [`mps`] — the message-passing substrate the benchmarks run on.
//! * [`npb`] — NAS Parallel Benchmark kernels (EP, FT, CG, IS, MG).
//! * [`powerpack`] — PowerPack-style power profiling.
//! * [`microbench`] — Perfmon / LMbench / MPPTest calibration analogs.
//! * [`netsim`] — interconnect and collective time models.
//! * [`obs`] — observability: structured spans, Perfetto export, metrics,
//!   critical-path profiling.
//! * [`analyze`] — static/dynamic analysis gates, including trace
//!   conformance over `obs` output.
//! * [`plan`] — the statically analyzable communication-plan IR.
//! * [`simrt`] — the discrete-event rank engine: thousands of simulated
//!   ranks as state-machine tasks in one process.
//! * [`verify`] — schedule-space model checking, on either runtime.
//! * [`pool`] — the shared worker pool.

#![forbid(unsafe_code)]

pub use analyze;
pub use isoee;
pub use microbench;
pub use mps;
pub use netsim;
pub use npb;
pub use obs;
pub use plan;
pub use pool;
pub use powerpack;
pub use simcluster;
pub use simrt;
pub use verify;
