//! End-to-end acceptance suite for the parametric (for-all-`p`) plan
//! certifier, on the three ISSUE axes:
//!
//! 1. **Symbolic vs concrete checker** — FT/EP/CG certificates over their
//!    declared domains must agree with `plan::analyze_plan` at sampled
//!    world sizes (moderate `p` by default; `p ∈ {1024, 4096}` behind
//!    `--ignored` for the release CI job).
//! 2. **Symbolic cost bounds ⊇ concrete plancost** — the certificate's
//!    closed-form Eq. 13/15 enclosures must contain the concrete
//!    `isoee::plancost` intervals at every sampled `p`.
//! 3. **Symbolic deadlock verdicts vs explorer/simrt** — certified plans
//!    must run clean under the `verify` schedule explorer and the `simrt`
//!    discrete-event engine at small `p`.
//!
//! Plus the power-cap acceptance criteria: a sound for-all-`p` accept
//! confirmed by concrete sampling, and a 2 kW rejection whose witness
//! names the violating `p` range.

use isoee::interval::MachBox;
use isoee::{plancost, power_cap_verdict, sym_cost_bounds, MachineParams, PowerCapVerdict};
use plan::{analyze_plan, certify_plan, CommPlan, Domain, ParametricCert};
use verify::{programs, Explorer};

fn mach() -> MachBox {
    MachBox::from_params(&MachineParams::system_g(2.8e9))
}

fn npb_plans() -> Vec<(&'static str, CommPlan, Domain)> {
    let class = npb::Class::S;
    vec![
        (
            "ft",
            npb::ft_plan(&npb::FtConfig::class(class)),
            npb::ft_domain(),
        ),
        (
            "ep",
            npb::ep_plan(&npb::EpConfig::class(class)),
            npb::ep_domain(),
        ),
        (
            "cg",
            npb::cg_plan(&npb::CgConfig::class(class)),
            npb::cg_domain(),
        ),
    ]
}

fn certified(name: &str, plan: &CommPlan, domain: &Domain) -> ParametricCert {
    let cert = certify_plan(plan, domain);
    assert!(cert.certified, "{name}: {:?}", cert.failure);
    cert
}

/// Acceptance: each NPB plan certifies over its *whole declared domain*
/// (FT/EP unbounded, CG all powers of two) in under a second.
#[test]
fn npb_plans_certify_for_all_p_in_under_a_second() {
    for (name, plan, domain) in npb_plans() {
        let t0 = std::time::Instant::now();
        let cert = certified(name, &plan, &domain);
        let dt = t0.elapsed();
        assert!(
            dt < std::time::Duration::from_secs(1),
            "{name}: certification took {dt:?}"
        );
        assert!(!cert.obligations.is_empty(), "{name}: no obligations");
        assert!(cert.revalidate(&plan).is_ok(), "{name}: revalidation");
    }
}

fn differential_at(ps: &[usize]) {
    let m = mach();
    for (name, plan, domain) in npb_plans() {
        let cert = certified(name, &plan, &domain);
        for &p in ps {
            let pu = p as u64;
            if !domain.contains(pu) {
                continue;
            }
            // Axis 1: verdict agreement.
            let a = analyze_plan(&plan, p);
            assert!(
                a.deadlock_free(),
                "{name} p={p}: concrete checker disagrees: {:?}",
                a.findings
            );
            // Count containment.
            let c = cert.counts(pu).unwrap_or_else(|| panic!("{name} p={p}"));
            #[allow(clippy::cast_precision_loss)]
            {
                assert!(
                    c.messages.contains(a.total.messages as f64),
                    "{name} p={p}: messages {:?} !∋ {}",
                    c.messages,
                    a.total.messages
                );
                assert!(
                    c.bytes.contains(a.total.bytes as f64),
                    "{name} p={p}: bytes {:?} !∋ {}",
                    c.bytes,
                    a.total.bytes
                );
            }
            assert!(c.wc.contains(a.total.wc), "{name} p={p}: wc");
            assert!(
                c.mem_accesses.contains(a.total.mem_accesses),
                "{name} p={p}: mem_accesses"
            );

            // Axis 2: symbolic cost enclosures contain concrete plancost.
            let concrete = plancost::cost_bounds(&a, &m);
            let sym = sym_cost_bounds(&cert, pu, &m).expect("certified & admissible");
            assert!(
                sym.t_comm.lo <= concrete.t_comm.lo && sym.t_comm.hi >= concrete.t_comm.hi,
                "{name} p={p}: t_comm {:?} !⊇ {:?}",
                sym.t_comm,
                concrete.t_comm
            );
            assert!(
                sym.e_comm.lo <= concrete.e_comm.lo && sym.e_comm.hi >= concrete.e_comm.hi,
                "{name} p={p}: e_comm"
            );
            assert!(
                sym.enclosure.tp.lo <= concrete.enclosure.tp.lo
                    && sym.enclosure.tp.hi >= concrete.enclosure.tp.hi,
                "{name} p={p}: Tp"
            );
            assert!(
                sym.enclosure.ep.lo <= concrete.enclosure.ep.lo
                    && sym.enclosure.ep.hi >= concrete.enclosure.ep.hi,
                "{name} p={p}: Ep"
            );
        }
    }
}

/// Axes 1–2 at moderate world sizes (cheap enough for debug tier-1).
#[test]
fn symbolic_agrees_with_concrete_checker_and_plancost_at_moderate_p() {
    differential_at(&[1, 2, 3, 4, 8, 16, 48, 64, 100, 128, 200, 256]);
}

/// Axes 1–2 at the paper-scale world sizes. The concrete checker builds a
/// p² channel matrix, so this runs under `--ignored` in the release CI
/// job only.
#[test]
#[ignore = "p^2 channel matrix; run in release via the plan-symbolic CI job"]
fn symbolic_agrees_with_concrete_checker_at_paper_scale_p() {
    differential_at(&[1024, 4096]);
}

/// Axis 3a: certified plans stay quiet under the schedule-space explorer
/// at small p.
#[test]
fn certified_plans_stay_clean_under_the_explorer() {
    let world = programs::demo_world();
    let explorer = Explorer {
        max_schedules: 4,
        max_depth: 1_000_000,
    };
    for (name, plan, domain) in npb_plans() {
        certified(name, &plan, &domain);
        for p in [2usize, 4] {
            if !domain.contains(p as u64) {
                continue;
            }
            let ex = explorer.explore_plan(&world, p, &plan);
            // The explorer is bounded (truncated), so absence of findings
            // is the agreement criterion, not full certification.
            assert!(
                ex.findings.is_empty(),
                "{name} p={p}: explorer findings {:?}",
                ex.findings
            );
        }
    }
}

/// Axis 3b: certified plans complete (no deadlock) on the simrt
/// discrete-event engine at small p.
#[test]
fn certified_plans_complete_on_the_simrt_engine() {
    let world = programs::demo_world();
    for (name, plan, domain) in npb_plans() {
        certified(name, &plan, &domain);
        for p in [2usize, 4, 8] {
            if !domain.contains(p as u64) {
                continue;
            }
            let out = simrt::try_run_plan(&world, p, &plan)
                .unwrap_or_else(|e| panic!("{name} p={p}: engine error {e:?}"));
            assert_eq!(out.report.ranks.len(), p, "{name} p={p}");
        }
    }
}

/// Power-cap acceptance: a generous cap accepts for *all* admissible p,
/// and concrete per-p sampling confirms the accept is sound.
#[test]
fn power_cap_accept_is_sound_under_concrete_sampling() {
    let m = mach();
    for (name, plan, domain) in npb_plans() {
        // Bounded quantification for the sweep: p ≤ 512 keeps the
        // concrete confirmation cheap.
        let clamped = domain.with_max(512);
        let cert = certified(name, &plan, &clamped);
        // A cap just above the certified worst case over the domain.
        let worst = clamped
            .admissible()
            .expect("clamped domain is bounded")
            .iter()
            .filter_map(|&p| sym_cost_bounds(&cert, p, &m))
            .map(|c| c.enclosure.ep.hi / c.enclosure.tp.lo)
            .fold(0.0f64, f64::max);
        let cap = worst * 1.5;
        let verdict = power_cap_verdict(&cert, &m, cap);
        assert!(verdict.accepted(), "{name}: {verdict:?}");

        // Concrete confirmation at sampled p across the domain.
        for p in clamped.sample(12, 42) {
            let a = analyze_plan(&plan, usize::try_from(p).expect("small"));
            let c = plancost::cost_bounds(&a, &m);
            let avg_hi = c.enclosure.ep.hi / c.enclosure.tp.lo;
            assert!(
                avg_hi <= cap,
                "{name} p={p}: concrete power {avg_hi} busts accepted cap {cap}"
            );
        }
    }
}

/// Power-cap rejection: the worked 2 kW cap is rejected with a witness
/// naming the violating p range, and the named start really violates
/// concretely.
#[test]
fn two_kw_cap_is_rejected_with_a_violating_range_witness() {
    let m = mach();
    for (name, plan, domain) in npb_plans() {
        let clamped = domain.with_max(4096);
        let cert = certified(name, &plan, &clamped);
        match power_cap_verdict(&cert, &m, 2000.0) {
            PowerCapVerdict::Rejected { from_p, to_p } => {
                assert!(from_p >= 2, "{name}");
                assert_eq!(to_p, Some(4096), "{name}: violation reaches the domain max");
                // The witness start is a genuine violation of the
                // *symbolic lower bound*; confirm concretely too (the
                // checker at from_p is cheap: from_p is small, System G's
                // idle floor crosses 2 kW within ~200 ranks).
                assert!(from_p <= 512, "{name}: witness unexpectedly large");
                let a = analyze_plan(&plan, usize::try_from(from_p).expect("small"));
                let c = plancost::cost_bounds(&a, &m);
                assert!(
                    c.enclosure.ep.lo / c.enclosure.tp.hi > 2000.0,
                    "{name}: named witness p={from_p} does not violate concretely"
                );
            }
            other => panic!("{name}: expected 2 kW rejection, got {other:?}"),
        }
    }
}

/// The unbounded declared domains reject any finite cap outright via the
/// idle-floor lemma, with an open-ended witness range.
#[test]
fn unbounded_domains_reject_finite_caps_with_open_witness() {
    let m = mach();
    for (name, plan, domain) in npb_plans() {
        if domain.is_bounded() {
            continue;
        }
        let cert = certified(name, &plan, &domain);
        match power_cap_verdict(&cert, &m, 2000.0) {
            PowerCapVerdict::Rejected { from_p, to_p } => {
                assert_eq!(to_p, None, "{name}: tail rejection is open-ended");
                assert!(domain.contains(from_p), "{name}: witness admissible");
            }
            other => panic!("{name}: expected idle-floor rejection, got {other:?}"),
        }
    }
}
