//! Cross-check between the two verification layers on the 4-rank FT
//! example: the ahead-of-time schedule-space explorer (`crates/verify`)
//! and the single-trace communication checker (`analyze::check_report`)
//! must agree — a world the explorer leaves quiet yields no trace findings
//! on replay, and the schedule-dependent deadlock shows exactly why one
//! trace is not enough.

use analyze::{check_report, Finding};
use verify::{programs, replay, Choice, Explorer, VerifyFinding};

#[test]
fn explorer_and_trace_checker_agree_on_the_4_rank_ft_example() {
    let world = programs::demo_world();
    let cfg = npb::FtConfig::class(npb::Class::S);
    let program = move |ctx: &mut mps::Ctx| npb::ft_kernel(ctx, cfg);

    // Bounded exploration of the real kernel: no deadlocks, no races, no
    // delivery nondeterminism in any explored schedule.
    let bounded = Explorer {
        max_schedules: 16,
        ..Explorer::default()
    };
    let exploration = bounded.explore(&world, 4, program);
    assert!(
        exploration.findings.is_empty(),
        "explorer findings on FT: {:?}",
        exploration.findings
    );
    assert!(exploration.schedules >= 1);

    // The trace-based checker agrees on a concrete schedule: replaying
    // the default schedule (empty prefix) produces a clean trace.
    let report = replay(&world, 4, program, &[]).expect("FT completes");
    let findings = check_report(&report);
    assert!(
        findings.is_empty(),
        "trace checker findings on FT replay: {findings:?}"
    );
}

#[test]
fn single_trace_checking_misses_what_exploration_catches() {
    // The schedule-dependent deadlock: a lucky run completes, and while
    // the trace checker can flag the wildcard *race* it sees in that one
    // trace, it cannot exhibit the deadlocking schedule — the explorer
    // does. This is the structural gap between trace checking and model
    // checking, witnessed end to end.
    let world = programs::demo_world();
    let p = 3;
    let exploration = Explorer::default().explore(&world, p, programs::wildcard_then_specific);
    assert!(
        exploration
            .findings
            .iter()
            .any(|f| matches!(f, VerifyFinding::Deadlock { .. })),
        "the bad schedule must be found: {:?}",
        exploration.findings
    );

    // A completing schedule exists too: the tag-race witness marks the
    // wildcard branch point; extending it with the rank-2 match drives the
    // lucky branch.
    let mut lucky = exploration
        .findings
        .iter()
        .find_map(|f| match f {
            VerifyFinding::TagRace { witness, .. } => Some(witness.clone()),
            _ => None,
        })
        .expect("race witness marks the branch point");
    lucky.push(Choice {
        rank: 0,
        op: mps::SchedOp::RecvAny {
            tag: programs::TAG_DEP,
        },
        source: Some(2),
    });
    let report = replay(&world, p, programs::wildcard_then_specific, &lucky)
        .expect("lucky branch completes");
    let findings = check_report(&report);

    // The two layers agree on what the single trace CAN show: the
    // vector-clock checker flags the same wildcard race the explorer
    // branched on (receiver 0, tag TAG_DEP, senders 1 and 2)...
    assert!(
        findings.iter().any(|f| matches!(
            f,
            Finding::MessageRace {
                senders: (1, 2),
                receiver: 0,
                tag: programs::TAG_DEP,
            }
        )),
        "trace checker should flag the wildcard race: {findings:?}"
    );
    // ... but the deadlock hiding on the other branch is invisible to the
    // completed trace — only the explorer exhibits it.
    assert!(
        !findings
            .iter()
            .any(|f| matches!(f, Finding::DeadlockCycle { .. })),
        "a completed trace cannot carry the deadlock: {findings:?}"
    );
}
