//! Differential suite pinning the batched columnar kernel
//! (`isoee::batch`) **bit-identical** (`f64::to_bits`, not approximate
//! equality) to the scalar `model.rs` oracle.
//!
//! The batch kernel rewrites the numeric hot path of every sweep entry
//! point, so the trust argument is entirely differential: the same grids
//! the committed figures use (Figs. 5–9), the same decision procedures
//! (contour, DVFS advisor), and randomized parameter boxes — including
//! degenerate baselines, which must surface the *same* row-major
//! first-error index through both kernels. Any divergence is a real bug:
//! a re-associated sum, a reciprocal-multiplied division, or a factor
//! cached with different rounding than the scalar evaluation order.
//!
//! The scalar oracle is reached through the public `*_scalar_with`
//! variants rather than the `ISOEE_SCALAR_SWEEP` env switch, so this
//! suite is free of env-var races under parallel test execution.

use isoee::apps::{AppModel, CgModel, EpModel, FtModel};
use isoee::interval::certify_pf_grid;
use isoee::scaling::{
    best_frequency_scalar_with, best_frequency_with, ee_surface_pf_scalar_with, ee_surface_pf_with,
    ee_surface_pn_scalar_with, ee_surface_pn_with, iso_ee_contour_scalar_with, iso_ee_contour_with,
    PoolConfig, Surface, SweepError,
};
use isoee::{batch, model, AppParams, MachineParams, PfGrid};
use proptest::prelude::*;

/// The System G DVFS states every committed `(p, f)` figure sweeps.
const DVFS_G: [f64; 4] = [1.6e9, 2.0e9, 2.4e9, 2.8e9];

fn mach() -> MachineParams {
    MachineParams::system_g(2.8e9)
}

/// Bit-level surface comparison: every axis value and every cell.
fn assert_surface_bits(batch: &Surface, scalar: &Surface, what: &str) {
    assert_eq!(batch.ys.len(), scalar.ys.len(), "{what}: row count");
    assert_eq!(batch.xs.len(), scalar.xs.len(), "{what}: column count");
    for (a, b) in batch.ys.iter().zip(&scalar.ys) {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: row axis");
    }
    for (a, b) in batch.xs.iter().zip(&scalar.xs) {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: column axis");
    }
    for (i, (ra, rb)) in batch.values.iter().zip(&scalar.values).enumerate() {
        for (j, (a, b)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what}: cell ({i}, {j}) diverged: batch {a:?} vs scalar {b:?}"
            );
        }
    }
}

/// `(name, model, n, ps)` — one committed `(p, f)` figure grid.
type PfFigure = (&'static str, Box<dyn AppModel>, f64, Vec<usize>);

/// `(name, model, ps, ns)` — one committed `(p, n)` figure grid.
type PnFigure = (&'static str, Box<dyn AppModel>, Vec<usize>, Vec<f64>);

/// The committed `(p, f)` figure grids: Fig 5 (FT), Fig 7 (EP), Fig 9 (CG),
/// exactly as `crates/bench/src/bin/fig{5,7,9}.rs` sweep them.
fn pf_figures() -> Vec<PfFigure> {
    vec![
        (
            "fig5",
            Box::new(FtModel::system_g()) as Box<dyn AppModel>,
            (1u64 << 20) as f64,
            vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
        ),
        (
            "fig7",
            Box::new(EpModel::system_g()),
            (1u64 << 22) as f64,
            vec![1, 2, 4, 8, 16, 32, 64, 128],
        ),
        (
            "fig9",
            Box::new(CgModel::system_g()),
            75_000.0,
            vec![1, 4, 16, 64, 256, 1024],
        ),
    ]
}

/// The committed `(p, n)` figure grids: Fig 6 (FT), Fig 8 (CG).
fn pn_figures() -> Vec<PnFigure> {
    vec![
        (
            "fig6",
            Box::new(FtModel::system_g()) as Box<dyn AppModel>,
            vec![1, 4, 16, 64, 256, 1024],
            (16..=26).step_by(2).map(|k| (1u64 << k) as f64).collect(),
        ),
        (
            "fig8",
            Box::new(CgModel::system_g()),
            vec![1, 4, 16, 64, 256, 1024],
            vec![9_375.0, 18_750.0, 37_500.0, 75_000.0, 150_000.0, 300_000.0],
        ),
    ]
}

#[test]
fn committed_pf_figures_are_bit_identical() {
    let m = mach();
    let cfg = PoolConfig::sequential();
    for (name, app, n, ps) in pf_figures() {
        let b = ee_surface_pf_with(&cfg, app.as_ref(), &m, n, &ps, &DVFS_G)
            .expect("figure grid evaluates");
        let s = ee_surface_pf_scalar_with(&cfg, app.as_ref(), &m, n, &ps, &DVFS_G)
            .expect("figure grid evaluates");
        assert_surface_bits(&b, &s, name);
    }
}

#[test]
fn committed_pn_figures_are_bit_identical() {
    let m = mach();
    let cfg = PoolConfig::sequential();
    for (name, app, ps, ns) in pn_figures() {
        let b =
            ee_surface_pn_with(&cfg, app.as_ref(), &m, &ps, &ns).expect("figure grid evaluates");
        let s = ee_surface_pn_scalar_with(&cfg, app.as_ref(), &m, &ps, &ns)
            .expect("figure grid evaluates");
        assert_surface_bits(&b, &s, name);
    }
}

/// Triple-pin Fig 5 against a hand-rolled `model::ee` loop (not the sweep
/// engine at all), so a bug shared by both sweep paths can't hide.
#[test]
fn fig5_matches_a_hand_rolled_model_loop() {
    let m = mach();
    let ft = FtModel::system_g();
    let n = (1u64 << 20) as f64;
    let ps = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let s = ee_surface_pf_with(&PoolConfig::sequential(), &ft, &m, n, &ps, &DVFS_G)
        .expect("figure grid evaluates");
    for (i, &f) in DVFS_G.iter().enumerate() {
        let mf = m.at_frequency(f);
        for (j, &p) in ps.iter().enumerate() {
            let oracle = model::ee(&mf, &ft.app_params(n, p), p).expect("clean point");
            assert_eq!(s.at(i, j).to_bits(), oracle.to_bits(), "f={f} p={p}");
        }
    }
}

/// Every Eq. 5–15 term (not just the final ratio) agrees bit-for-bit at
/// every committed figure point.
#[test]
fn point_terms_agree_on_all_figure_points() {
    let m = mach();
    for (_, app, n, ps) in pf_figures() {
        for &f in &DVFS_G {
            let mf = m.at_frequency(f);
            for &p in &ps {
                let a = app.app_params(n, p);
                let ev = batch::evaluate(&mf, &a, p);
                assert_eq!(
                    ev.terms.t1.raw().to_bits(),
                    model::t1(&mf, &a).raw().to_bits()
                );
                assert_eq!(
                    ev.terms.tp.raw().to_bits(),
                    model::tp(&mf, &a, p).raw().to_bits()
                );
                assert_eq!(
                    ev.terms.e1.raw().to_bits(),
                    model::e1(&mf, &a).raw().to_bits()
                );
                assert_eq!(
                    ev.terms.ep.raw().to_bits(),
                    model::ep(&mf, &a, p).raw().to_bits()
                );
                let (ee, oracle) = (
                    ev.ee.expect("clean point"),
                    model::ee(&mf, &a, p).expect("clean point"),
                );
                assert_eq!(ee.to_bits(), oracle.to_bits());
            }
        }
    }
}

#[test]
fn contour_and_advisor_match_the_scalar_oracle() {
    let m = mach();
    let cfg = PoolConfig::sequential();
    let ps = [16usize, 32, 64, 128, 256, 512, 1024];
    for (app, target) in [
        (Box::new(FtModel::system_g()) as Box<dyn AppModel>, 0.7),
        (Box::new(CgModel::system_g()) as Box<dyn AppModel>, 0.95),
    ] {
        let b = iso_ee_contour_with(&cfg, app.as_ref(), &m, &ps, target, 1e3, 1e12)
            .expect("no degenerate points");
        let s = iso_ee_contour_scalar_with(&cfg, app.as_ref(), &m, &ps, target, 1e3, 1e12)
            .expect("no degenerate points");
        assert_eq!(b.len(), s.len());
        for (j, (nb, ns)) in b.iter().zip(&s).enumerate() {
            match (nb, ns) {
                (Some(nb), Some(ns)) => assert_eq!(
                    nb.to_bits(),
                    ns.to_bits(),
                    "{} contour diverged at column {j}",
                    app.name()
                ),
                (None, None) => {}
                _ => panic!("{} contour reachability diverged at column {j}", app.name()),
            }
        }
    }
    for (app, n) in [
        (
            Box::new(FtModel::system_g()) as Box<dyn AppModel>,
            (1u64 << 20) as f64,
        ),
        (Box::new(EpModel::system_g()), (1u64 << 22) as f64),
        (Box::new(CgModel::system_g()), 75_000.0),
    ] {
        for p in [1usize, 4, 64, 1024] {
            let b = best_frequency_with(&cfg, app.as_ref(), &m, n, p, &DVFS_G)
                .expect("advisor evaluates");
            let s = best_frequency_scalar_with(&cfg, app.as_ref(), &m, n, p, &DVFS_G)
                .expect("advisor evaluates");
            assert_eq!(
                b.0.to_bits(),
                s.0.to_bits(),
                "{} advisor f at p={p}",
                app.name()
            );
            assert_eq!(
                b.1.to_bits(),
                s.1.to_bits(),
                "{} advisor EE at p={p}",
                app.name()
            );
        }
    }
}

/// The shared-invariant certification on the batch grid must return the
/// *same* `GridCertification` as the standalone interval pass, on every
/// committed `(p, f)` figure.
#[test]
fn shared_certification_matches_the_interval_pass() {
    let m = mach();
    for (name, app, n, ps) in pf_figures() {
        let grid = PfGrid::new(app.as_ref(), &m, n, &ps);
        let shared = grid.certify(&DVFS_G);
        let standalone = certify_pf_grid(app.as_ref(), &m, n, &ps, &DVFS_G);
        assert_eq!(shared, standalone, "{name}");
        assert!(shared.is_clean(), "{name} must certify clean");
    }
}

/// An app model with one poisoned column: parallelism `p_bad` maps to the
/// all-zero vector, whose `E1 = 0` is degenerate. Pure in `(n, p)` like
/// every real model.
struct Poisoned {
    base: FtModel,
    p_bad: usize,
}

impl AppModel for Poisoned {
    fn name(&self) -> &'static str {
        "poisoned"
    }
    fn app_params(&self, n: f64, p: usize) -> AppParams {
        if p == self.p_bad {
            AppParams::ideal(0.0)
        } else {
            self.base.app_params(n, p)
        }
    }
}

#[test]
fn degenerate_grids_surface_the_same_first_error_index() {
    let m = mach();
    let cfg = PoolConfig::sequential();
    let app = Poisoned {
        base: FtModel::system_g(),
        p_bad: 16,
    };
    let n = (1u64 << 20) as f64;
    let ps = [1usize, 4, 16, 64, 256];
    // Column 2 is degenerate in every row; the first row-major failure is
    // row 0, column 2.
    let b = ee_surface_pf_with(&cfg, &app, &m, n, &ps, &DVFS_G).expect_err("poisoned grid");
    let s = ee_surface_pf_scalar_with(&cfg, &app, &m, n, &ps, &DVFS_G).expect_err("poisoned grid");
    assert_eq!(b, s, "pf sweep error");
    assert_eq!(b.index, 2);

    let ns: Vec<f64> = (18..=22).map(|k| (1u64 << k) as f64).collect();
    let b = ee_surface_pn_with(&cfg, &app, &m, &ps, &ns).expect_err("poisoned grid");
    let s = ee_surface_pn_scalar_with(&cfg, &app, &m, &ps, &ns).expect_err("poisoned grid");
    assert_eq!(b, s, "pn sweep error");
    assert_eq!(b.index, 2);
}

/// A pure synthetic model over a fixed base vector with `p`-dependent
/// overheads — and optionally a `p`-dependent `alpha`, which makes the
/// sequential Eq. 13 factors differ per column and forces the batch
/// kernel off its hoisted-`E1` fast path onto the general per-column
/// kernel. Both paths must stay bit-identical to the scalar oracle.
struct Synthetic {
    base: AppParams,
    vary_alpha: bool,
}

impl AppModel for Synthetic {
    fn name(&self) -> &'static str {
        "synthetic"
    }
    fn app_params(&self, n: f64, p: usize) -> AppParams {
        let mut a = self.base;
        let pf = p as f64;
        if self.vary_alpha {
            a.alpha = self.base.alpha / (1.0 + 0.01 * pf);
        }
        // Overheads grow with p and n mildly, like a real scaling model.
        a.woc = simcluster::units::Instructions::new(self.base.woc.raw() * pf + n.sqrt());
        a.bytes = simcluster::units::Bytes::new(self.base.bytes.raw() * pf.log2().max(1.0));
        a
    }
}

fn arb_base_app() -> impl Strategy<Value = AppParams> {
    (
        0.5f64..=1.0, // alpha
        1e6f64..1e12, // wc
        0.0f64..1e10, // wm
        0.0f64..1e8,  // woc (per-p slope)
        -0.5f64..0.5, // wom as a fraction of wm
        0.0f64..1e6,  // messages
        0.0f64..1e10, // bytes
        0.0f64..10.0, // t_io
    )
        .prop_map(|(alpha, wc, wm, woc, wom_frac, messages, bytes, t_io)| {
            AppParams::from_raw(alpha, wc, wm, woc, wom_frac * wm, messages, bytes, t_io)
        })
}

fn arb_machine() -> impl Strategy<Value = MachineParams> {
    // The named constructors insist on an on-table DVFS state; randomize
    // off-table frequencies through the Eq. 20 rescale instead.
    (any::<bool>(), 1.0e9f64..3.2e9).prop_map(|(dori, f)| {
        let base = if dori {
            MachineParams::dori(2.0e9)
        } else {
            MachineParams::system_g(2.8e9)
        };
        base.at_frequency(f)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random machine x random synthetic app x random `(p, f)` grid:
    /// batch and scalar sweeps agree bitwise, on both the hoisted-`E1`
    /// and the general per-column kernel.
    #[test]
    fn random_grids_are_bit_identical_to_the_scalar_oracle(
        base in arb_base_app(),
        m in arb_machine(),
        vary_alpha in any::<bool>(),
        n in 1e4f64..1e9,
        n_rows in 1usize..6,
        n_cols in 1usize..12,
        f_lo in 1.0e9f64..2.0e9,
        f_step in 5.0e7f64..4.0e8,
    ) {
        let app = Synthetic { base, vary_alpha };
        let fs: Vec<f64> = (0..n_rows).map(|i| f_lo + f_step * i as f64).collect();
        let ps: Vec<usize> = (1..=n_cols).map(|j| j * j).collect();
        let cfg = PoolConfig::sequential();
        let b = ee_surface_pf_with(&cfg, &app, &m, n, &ps, &fs).expect("finite params");
        let s = ee_surface_pf_scalar_with(&cfg, &app, &m, n, &ps, &fs).expect("finite params");
        prop_assert_eq!(b.ys.len(), s.ys.len());
        for (ra, rb) in b.values.iter().zip(&s.values) {
            for (a, b) in ra.iter().zip(rb) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Random single points: every term of the fused kernel agrees with
    /// the scalar model bit-for-bit, including the degenerate-baseline
    /// Ok/Err split.
    #[test]
    fn random_points_agree_on_every_term(
        a in arb_base_app(),
        m in arb_machine(),
        p in 1usize..4096,
    ) {
        let ev = batch::evaluate(&m, &a, p);
        prop_assert_eq!(ev.terms.t1.raw().to_bits(), model::t1(&m, &a).raw().to_bits());
        prop_assert_eq!(ev.terms.tp.raw().to_bits(), model::tp(&m, &a, p).raw().to_bits());
        prop_assert_eq!(ev.terms.e1.raw().to_bits(), model::e1(&m, &a).raw().to_bits());
        prop_assert_eq!(ev.terms.ep.raw().to_bits(), model::ep(&m, &a, p).raw().to_bits());
        match (ev.ee, model::ee(&m, &a, p)) {
            (Ok(b), Ok(s)) => prop_assert_eq!(b.to_bits(), s.to_bits()),
            (Err(b), Err(s)) => prop_assert_eq!(b, s),
            (b, s) => prop_assert!(false, "degenerate split diverged: {:?} vs {:?}", b, s),
        }
    }

    /// Random degenerate column positions: the poisoned column must
    /// surface the same `SweepError` (row-major first-error index and
    /// payload) through both kernels.
    #[test]
    fn random_degenerate_columns_agree_on_the_first_error(
        bad in 0usize..6,
        n_rows in 1usize..5,
        f_lo in 1.0e9f64..2.4e9,
    ) {
        let m = mach();
        let ps = [1usize, 2, 4, 8, 16, 32];
        let app = Poisoned { base: FtModel::system_g(), p_bad: ps[bad] };
        let fs: Vec<f64> = (0..n_rows).map(|i| f_lo + 1.0e8 * i as f64).collect();
        let cfg = PoolConfig::sequential();
        let n = (1u64 << 20) as f64;
        let b = ee_surface_pf_with(&cfg, &app, &m, n, &ps, &fs).expect_err("poisoned grid");
        let s = ee_surface_pf_scalar_with(&cfg, &app, &m, n, &ps, &fs).expect_err("poisoned grid");
        prop_assert_eq!(b, s);
        let expected = SweepError { index: bad, source: b.source };
        prop_assert_eq!(b, expected);
    }
}
