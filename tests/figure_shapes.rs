//! Figure-shape regression suite: the DESIGN.md §4 expected-shape
//! assertions for the paper's scalability figures, pinned at tier 1 so a
//! sweep-engine refactor cannot silently bend a curve.
//!
//! Shapes, not absolute values (DESIGN.md §2): the substrate is a
//! simulated cluster, so the comparable quantities are signs of partial
//! derivatives and orders of magnitude.
//!
//! * Fig. 5 — `∂EE_FT/∂p < 0` strongly; `∂EE_FT/∂f ≈ 0`.
//! * Fig. 6/8 — `∂EE/∂n > 0` for FT and CG.
//! * Fig. 7 — `EE_EP ≈ 1` for all `(p, f)`.
//! * Fig. 9 — `∂EE_CG/∂f > 0` (DVFS *up* improves CG efficiency).

use isoee::apps::{CgModel, EpModel, FtModel};
use isoee::scaling::{best_frequency, ee_surface_pf, ee_surface_pn};
use isoee::MachineParams;

const DVFS: [f64; 4] = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
/// The fig5/7/9 parallelism axis (powers of two to 1024, as in the bins).
const PS: [usize; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

fn mach() -> MachineParams {
    MachineParams::system_g(2.8e9)
}

#[test]
fn fig5_ft_declines_with_p_and_is_flat_in_f() {
    let s = ee_surface_pf(
        &FtModel::system_g(),
        &mach(),
        (1u64 << 20) as f64,
        &PS,
        &DVFS,
    )
    .expect("sweep evaluates");
    for (i, row) in s.values.iter().enumerate() {
        // ∂EE_FT/∂p < 0: monotone decline (tiny cache ripple allowed) and
        // a deep collapse by p = 1024.
        for w in row.windows(2) {
            assert!(
                w[1] <= w[0] + 0.01,
                "Fig 5: EE_FT must decline with p at f={}: {row:?}",
                DVFS[i]
            );
        }
        assert!(
            row[0] - row[PS.len() - 1] > 0.25,
            "Fig 5: EE_FT must collapse by p=1024: {row:?}"
        );
    }
    // ∂EE_FT/∂f ≈ 0: the frequency axis moves EE by far less than the
    // parallelism axis does.
    for (j, &p) in PS.iter().enumerate() {
        let col: Vec<f64> = (0..DVFS.len()).map(|i| s.at(i, j)).collect();
        let spread = col.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - col.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 0.15,
            "Fig 5: EE_FT must be nearly flat in f at p={p}: {col:?}"
        );
    }
}

#[test]
fn fig6_ft_rises_with_n() {
    let ns: Vec<f64> = (0..6).map(|k| f64::from(1u32 << (18 + k))).collect();
    let ps = [16usize, 64, 256, 1024];
    let s = ee_surface_pn(&FtModel::system_g(), &mach(), &ps, &ns).expect("sweep evaluates");
    for (j, &p) in ps.iter().enumerate() {
        for i in 1..ns.len() {
            assert!(
                s.at(i, j) >= s.at(i - 1, j) - 1e-9,
                "Fig 6: EE_FT must rise with n at p={p}: {} -> {}",
                s.at(i - 1, j),
                s.at(i, j)
            );
        }
        assert!(
            s.at(ns.len() - 1, j) > s.at(0, j),
            "Fig 6: growth must be strict over the whole n range at p={p}"
        );
    }
}

#[test]
fn fig7_ep_stays_near_one_everywhere() {
    // The fig7 bin's grid: class-B pair count, p up to 128.
    let n = (1u64 << 22) as f64;
    let ps = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let s = ee_surface_pf(&EpModel::system_g(), &mach(), n, &ps, &DVFS).expect("sweep evaluates");
    assert!(
        s.min() > 0.97,
        "Fig 7: EE_EP ≈ 1 for all (p, f); min {}",
        s.min()
    );
    assert!(s.max() <= 1.0 + 1e-12, "EE_EP cannot exceed 1: {}", s.max());
    // Scaling n does not change EP's EE (the paper's flat-surface claim).
    let s_big =
        ee_surface_pf(&EpModel::system_g(), &mach(), 4.0 * n, &ps, &DVFS).expect("sweep evaluates");
    assert!((s_big.min() - s.min()).abs() < 0.02);
}

#[test]
fn fig8_cg_rises_with_n() {
    let ns: Vec<f64> = (0..5).map(|k| 75_000.0 * f64::from(1u32 << k)).collect();
    let ps = [16usize, 64, 256];
    let s = ee_surface_pn(&CgModel::system_g(), &mach(), &ps, &ns).expect("sweep evaluates");
    for (j, &p) in ps.iter().enumerate() {
        for i in 1..ns.len() {
            assert!(
                s.at(i, j) >= s.at(i - 1, j) - 1e-9,
                "Fig 8: EE_CG must rise with n at p={p}"
            );
        }
    }
}

#[test]
fn fig9_cg_rises_with_f_and_advisor_picks_the_top_state() {
    let cg = CgModel::system_g();
    let s = ee_surface_pf(&cg, &mach(), 75_000.0, &PS, &DVFS).expect("sweep evaluates");
    for (j, &p) in PS.iter().enumerate() {
        if p == 1 {
            continue; // no parallel overhead to shrink at p = 1
        }
        assert!(
            s.at(DVFS.len() - 1, j) > s.at(0, j),
            "Fig 9: EE_CG must rise with f at p={p}"
        );
    }
    for p in [16usize, 64, 256] {
        let (f, _) = best_frequency(&cg, &mach(), 75_000.0, p, &DVFS).expect("sweep evaluates");
        assert_eq!(f, 2.8e9, "Fig 9: the advisor must scale frequency up");
    }
}
