//! Observability-layer integration tests: the golden 4-rank FT Perfetto
//! trace, the critical-path profile of a seeded imbalanced program, and the
//! analyze trace-conformance gate over real runtime output.

use iso_energy_efficiency::analyze::check_trace;
use iso_energy_efficiency::mps::{run, World};
use iso_energy_efficiency::npb::{ft_kernel, Class, FtConfig};
use iso_energy_efficiency::obs::profile::{critical_path, PathStep};
use iso_energy_efficiency::obs::{perfetto, ObsConfig};
use iso_energy_efficiency::powerpack::PowerProfile;
use iso_energy_efficiency::simcluster::{system_g, EnergyMeter};

fn traced_ft_run() -> (
    World,
    iso_energy_efficiency::mps::RunReport<iso_energy_efficiency::npb::FtResult>,
) {
    let world = World::new(system_g(), 2.8e9)
        .with_alpha(0.86)
        .with_obs(ObsConfig::enabled());
    let cfg = FtConfig::class(Class::S);
    let report = run(&world, 4, move |ctx| ft_kernel(ctx, cfg));
    (world, report)
}

#[test]
fn four_rank_ft_produces_valid_perfetto_json() {
    let (world, report) = traced_ft_run();
    let mut trace = report.trace("FT class S").expect("tracing enabled");

    // PowerPack power samples become counter tracks, like the example.
    let meter = EnergyMeter::new(world.cluster.node.clone(), world.f_hz);
    let profile = PowerProfile::sample(&meter, &report.logs(), report.span() / 100.0);
    trace.add_counter_track(
        "power cpu",
        "W",
        profile
            .samples
            .iter()
            .map(|s| (s.t_s, s.cpu_w.raw()))
            .collect(),
    );
    trace.add_counter_track(
        "power total",
        "W",
        profile
            .samples
            .iter()
            .map(|s| (s.t_s, s.total_w().raw()))
            .collect(),
    );

    let json = perfetto::render(&trace);
    let rep = perfetto::validate(&json).expect("valid Perfetto trace-event JSON");
    // One span track per rank; validate() already enforced per-track
    // monotone timestamps and well-formed events.
    assert_eq!(rep.span_tracks, vec![0u64, 1, 2, 3]);
    assert!(rep.span_events > 0);
    // Both power counter tracks survive the round trip.
    assert!(rep.counter_names.iter().any(|n| n.contains("power cpu")));
    assert!(rep.counter_names.iter().any(|n| n.contains("power total")));
    assert_eq!(rep.counter_events, 2 * profile.samples.len());
}

#[test]
fn ft_trace_passes_the_conformance_gate() {
    let (_, report) = traced_ft_run();
    let trace = report.trace("FT class S").expect("tracing enabled");
    let findings = check_trace(&trace);
    assert!(findings.is_empty(), "conformance findings: {findings:?}");
    // Every rank produced phase slices — the spans Perfetto nests under.
    for track in &trace.tracks {
        assert!(
            track
                .spans
                .iter()
                .any(|s| matches!(s.cat, iso_energy_efficiency::obs::span::Category::Phase)),
            "rank {} has no phase spans",
            track.track
        );
    }
}

#[test]
fn critical_path_total_matches_tp_and_slow_rank_dominates() {
    // Seeded imbalance: rank 2 computes 50x the work, everyone then meets
    // in a barrier. The critical path must (a) tile the whole runtime Tp
    // within 1% and (b) spend most of its local time on the slow rank.
    let world = World::new(system_g(), 2.8e9).with_obs(ObsConfig::enabled());
    let report = run(&world, 4, |ctx| {
        let flops = if ctx.rank() == 2 { 5e7 } else { 1e6 };
        ctx.compute(flops);
        ctx.barrier();
    });

    let path = critical_path(&report.profile_ranks()).expect("path exists");
    let tp = report.span();
    assert!(
        (path.total_s - tp).abs() / tp < 0.01,
        "critical path {} vs Tp {tp}",
        path.total_s
    );

    let by_rank = path.local_time_by_rank();
    let slow = by_rank
        .iter()
        .find(|(rank, _)| *rank == 2)
        .map_or(0.0, |(_, secs)| *secs);
    let local_total: f64 = path
        .steps
        .iter()
        .filter(|s| matches!(s, PathStep::Local { .. }))
        .map(PathStep::dur_s)
        .sum();
    assert!(
        slow > 0.5 * local_total,
        "slow rank holds {slow} of {local_total} s local path time"
    );
}
