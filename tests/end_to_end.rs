//! End-to-end integration tests spanning every crate: calibrate machine
//! parameters from microbenchmarks, run NPB kernels on the simulated
//! cluster, measure energy with the PowerPack analog, predict it with the
//! iso-energy-efficiency model, and check the prediction quality and the
//! paper's qualitative claims.
//!
//! These use scaled-down classes (S/W) so the whole file runs in seconds in
//! debug mode; the full class-B experiments live in the bench binaries.

use isoee::apps::{AppModel, CgModel, EpModel, FtModel};
use isoee::calibrate::{measure_run, measured_machine_params};
use isoee::validate::validate_kernel;
use isoee::{model, MachineParams};
use mps::{run, World};
use npb::{cg_kernel, ep_kernel, ft_kernel, CgConfig, Class, EpConfig, FtConfig};
use powerpack::Session;
use simcluster::{system_g, EnergyMeter};

fn world(alpha: f64) -> World {
    World::new(system_g(), 2.8e9).with_alpha(alpha)
}

#[test]
fn calibration_pipeline_recovers_machine_vector() {
    let w = world(1.0);
    let measured = measured_machine_params(&w);
    let truth = MachineParams::from_spec(&w.cluster, 2.8e9);
    assert!((measured.tc - truth.tc).abs() / truth.tc < 1e-6);
    assert!((measured.ts - truth.ts).abs() / truth.ts < 0.02);
    assert!((measured.tw - truth.tw).abs() / truth.tw < 0.02);
    assert!((measured.tm - truth.tm).abs() / truth.tm < 0.05);
    assert!((measured.delta_pc - truth.delta_pc).abs() / truth.delta_pc < 1e-3);
}

#[test]
fn model_predicts_ep_energy_within_two_percent() {
    // EP is the cleanest case: balanced, no communication to speak of.
    let w = world(0.93);
    let mach = measured_machine_params(&w);
    let cfg = EpConfig::class(Class::S);
    let summary = validate_kernel(&w, &mach, "EP", &[1, 2, 4, 8], move |ctx| {
        ep_kernel(ctx, cfg)
    });
    assert!(
        summary.mean_abs_error_pct() < 2.0,
        "EP mean error {}%",
        summary.mean_abs_error_pct()
    );
}

#[test]
fn model_predicts_ft_energy_within_ten_percent() {
    let w = world(0.86);
    let mach = measured_machine_params(&w);
    let cfg = FtConfig::class(Class::W);
    let summary = validate_kernel(&w, &mach, "FT", &[1, 2, 4, 8], move |ctx| {
        ft_kernel(ctx, cfg)
    });
    assert!(
        summary.mean_abs_error_pct() < 10.0,
        "FT mean error {}%",
        summary.mean_abs_error_pct()
    );
}

#[test]
fn model_predicts_cg_energy_within_fifteen_percent() {
    // The paper's hardest case (8.31% there, blamed on the memory model).
    // Class A rather than S: at toy sizes fixed startup costs dominate and
    // relative errors blow up, which is noise rather than signal.
    let w = world(0.85);
    let mach = measured_machine_params(&w);
    let cfg = CgConfig::class(Class::A);
    let summary = validate_kernel(&w, &mach, "CG", &[1, 2, 4, 8], move |ctx| {
        cg_kernel(ctx, cfg)
    });
    assert!(
        summary.mean_abs_error_pct() < 15.0,
        "CG mean error {}%",
        summary.mean_abs_error_pct()
    );
}

#[test]
fn model_underestimates_are_the_common_error_mode() {
    // The analytical model ignores waits and contention, so when it errs it
    // should usually err low — checked for FT where both effects bite.
    let w = world(0.86);
    let mach = measured_machine_params(&w);
    let cfg = FtConfig::class(Class::S);
    let summary = validate_kernel(&w, &mach, "FT", &[4, 8, 16], move |ctx| ft_kernel(ctx, cfg));
    let low = summary
        .points
        .iter()
        .filter(|pt| pt.predicted_j <= pt.measured_j)
        .count();
    assert!(
        low >= 2,
        "expected mostly underestimates: {:?}",
        summary.points
    );
}

#[test]
fn powerpack_energy_matches_meter_energy() {
    // The profiling path (sampled trace) and the accounting path (interval
    // integration) must agree on total energy.
    let w = world(0.93);
    let cfg = EpConfig::class(Class::S);
    let report = run(&w, 4, move |ctx| ep_kernel(ctx, cfg));
    let direct = report.energy(&w).total();

    let meter = EnergyMeter::new(w.cluster.node.clone(), w.f_hz);
    let session = Session::new(meter).with_sample_interval(report.span() / 2000.0);
    let profile = session.profile(&report.logs());
    let sampled = profile.integrate().expect("sampled profile integrates");
    assert!(
        (sampled - direct).abs() / direct < 0.01,
        "sampled {sampled} vs direct {direct}"
    );
}

#[test]
fn measured_ee_and_model_ee_agree_for_ep() {
    // Measured EE = E1/Ep from simulation; model EE from the closed form.
    let w = world(0.93);
    let cfg = EpConfig::class(Class::S);
    let p = 8;
    let seq = measure_run(&w, 1, move |ctx| ep_kernel(ctx, cfg));
    let par = measure_run(&w, p, move |ctx| ep_kernel(ctx, cfg));
    let measured_ee = seq.energy_j / par.energy_j;

    let mach = MachineParams::system_g(2.8e9);
    let model_ee = model::ee(
        &mach,
        &EpModel::system_g().app_params(cfg.pairs as f64, p),
        p,
    )
    .expect("baseline energy is positive");
    assert!(
        (measured_ee - model_ee).abs() < 0.05,
        "measured {measured_ee} vs model {model_ee}"
    );
}

#[test]
fn paper_qualitative_claims_hold_in_the_model() {
    let mach = MachineParams::system_g(2.8e9);
    let ft = FtModel::system_g();
    let ep = EpModel::system_g();
    let cg = CgModel::system_g();

    // §V.B.1: FT's EE collapses with p, indifferent to f.
    let n_ft = (1u64 << 20) as f64;
    let ft_4: f64 = model::ee(&mach, &ft.app_params(n_ft, 4), 4).expect("positive baseline");
    let ft_1024: f64 =
        model::ee(&mach, &ft.app_params(n_ft, 1024), 1024).expect("positive baseline");
    assert!(ft_4 - ft_1024 > 0.5);

    // §V.B.2: EP near-ideal everywhere.
    for p in [2usize, 32, 128] {
        let e = model::ee(&mach, &ep.app_params(4e6, p), p).expect("positive baseline");
        assert!(e > 0.97, "EE_EP({p}) = {e}");
    }

    // §V.B.3: CG prefers the highest frequency.
    let a = cg.app_params(75_000.0, 64);
    let lo = model::ee(&mach.at_frequency(1.6e9), &a, 64).expect("positive baseline");
    let hi = model::ee(&mach, &a, 64).expect("positive baseline");
    assert!(hi > lo);

    // §V.B.6: problem size restores efficiency for FT and CG.
    assert!(
        model::ee(&mach, &ft.app_params(n_ft * 16.0, 256), 256).expect("positive baseline")
            > model::ee(&mach, &ft.app_params(n_ft, 256), 256).expect("positive baseline")
    );
    assert!(
        model::ee(&mach, &cg.app_params(300_000.0, 256), 256).expect("positive baseline")
            > model::ee(&mach, &cg.app_params(18_750.0, 256), 256).expect("positive baseline")
    );
}

#[test]
fn strong_scaling_changes_countable_memory_workload() {
    // The cross-crate version of the paper's negative-Wom observation:
    // per-rank working sets shrink with p, so the simulator's counted
    // off-chip accesses genuinely change between p = 1 and p = 8.
    let w = world(0.86);
    let cfg = FtConfig::class(Class::B);
    let seq = measure_run(&w, 1, move |ctx| ft_kernel(ctx, cfg));
    let par = measure_run(&w, 4, move |ctx| ft_kernel(ctx, cfg));
    assert!(
        par.counters.wm < seq.counters.wm,
        "FT Wom should be negative: {} vs {}",
        par.counters.wm,
        seq.counters.wm
    );
}

#[test]
fn model_stays_accurate_across_dvfs_states() {
    // A validation dimension beyond the paper's: re-derive the machine
    // vector at every DVFS state and check the prediction holds — i.e.
    // Eq. 20's f-scaling composes correctly with Eqs. 13/15.
    let cfg = FtConfig::class(Class::W);
    for f in [1.6e9, 2.0e9, 2.4e9, 2.8e9] {
        let w = World::new(system_g(), f).with_alpha(0.86);
        let mach = measured_machine_params(&w);
        let summary = validate_kernel(&w, &mach, "FT", &[1, 4], move |ctx| ft_kernel(ctx, cfg));
        assert!(
            summary.mean_abs_error_pct() < 10.0,
            "f = {f}: mean error {}%",
            summary.mean_abs_error_pct()
        );
    }
}

#[test]
fn hetero_extension_agrees_with_homogeneous_model_on_uniform_pools() {
    // Cross-checks the future-work extension against the core model using
    // app parameters measured from a real kernel run.
    let w = world(0.93);
    let cfg = EpConfig::class(Class::S);
    let p = 8;
    let seq = measure_run(&w, 1, move |ctx| ep_kernel(ctx, cfg));
    let par = measure_run(&w, p, move |ctx| ep_kernel(ctx, cfg));
    let app = isoee::calibrate::app_params_from(&seq, &par);

    let mach = MachineParams::system_g(2.8e9);
    let pool = [isoee::ProcClass { mach, count: p }];
    let h = isoee::hetero::evaluate(&pool, &app, isoee::Split::TimeBalanced);
    let homog = model::ee(&mach, &app, p).expect("positive baseline");
    assert!(
        (h.ee - homog).abs() < 1e-9,
        "hetero {} vs homogeneous {homog}",
        h.ee
    );
}

#[test]
fn both_contours_grow_with_p_but_measure_different_things() {
    // The performance-isoefficiency contour (Grama) and the iso-EE contour
    // both demand workload growth as p scales — but they are *not* the
    // same function: the energy one weighs overhead time by idle power and
    // component deltas, so the two diverge (here EE is slightly easier to
    // hold for FT because network overhead burns only a small NIC delta,
    // while the sequential baseline burns the large CPU/memory deltas).
    let mach = MachineParams::system_g(2.8e9);
    let ft = FtModel::system_g();
    let mut prev_eta = 0.0;
    let mut prev_ee = 0.0;
    for p in [64usize, 256, 1024] {
        let n_eta = isoee::baselines::iso_efficiency_workload(&ft, &mach, p, 0.8, 1e3, 1e12)
            .expect("eta target reachable");
        let n_ee = isoee::scaling::iso_ee_workload(&ft, &mach, p, 0.8, 1e3, 1e12)
            .expect("no degenerate points")
            .expect("EE target reachable");
        assert!(n_eta > prev_eta, "eta contour must grow: {n_eta} at p={p}");
        assert!(n_ee > prev_ee, "EE contour must grow: {n_ee} at p={p}");
        let ratio = n_ee / n_eta;
        assert!(
            (0.2..5.0).contains(&ratio),
            "contours should stay commensurate, ratio {ratio} at p={p}"
        );
        prev_eta = n_eta;
        prev_ee = n_ee;
    }
}

#[test]
fn dvfs_tradeoff_is_visible_in_measured_energy() {
    // Measured (not modeled): running EP at a lower DVFS state stretches
    // wall time; with SystemG's idle-heavy power envelope, total energy
    // goes *up* — the race-to-idle regime the model's Eq. 20 captures.
    let cfg = EpConfig::class(Class::S);
    let hi = World::new(system_g(), 2.8e9).with_alpha(0.93);
    let lo = World::new(system_g(), 1.6e9).with_alpha(0.93);
    let e_hi = run(&hi, 2, move |ctx| ep_kernel(ctx, cfg))
        .energy(&hi)
        .total();
    let e_lo = run(&lo, 2, move |ctx| ep_kernel(ctx, cfg))
        .energy(&lo)
        .total();
    assert!(
        e_lo > e_hi,
        "idle-dominated: energy at 1.6 GHz ({e_lo} J) should exceed 2.8 GHz ({e_hi} J)"
    );
}
