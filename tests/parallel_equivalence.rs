//! Differential test harness: parallel sweep evaluation must be
//! **bit-identical** to the sequential path — `==` on every value, not
//! approximate equality.
//!
//! The pool's contract (index-ordered reduction, one task per element,
//! identical per-element inputs) means any divergence here is a real bug:
//! a racy accumulator, a reassociated reduction, or a worker evaluating a
//! point with different inputs than the sequential loop would. ICE
//! (Tran & Ha, 2016) and the EXCESS deliverables both make the point that
//! energy models are only trusted when validated across degrees of
//! parallelism; this suite is that validation for the sweep engine
//! itself.
//!
//! `POOL_THREADS` coverage: CI runs the whole test suite under
//! `POOL_THREADS=1` and `POOL_THREADS=4`; this file additionally pins
//! explicit 1/2/8-thread configs so a single run compares all three.

use isoee::apps::{AppModel, CgModel, EpModel, FtModel};
use isoee::scaling::{
    best_frequency_with, ee_surface_pf_scalar_with, ee_surface_pf_with, ee_surface_pn_scalar_with,
    ee_surface_pn_with, iso_ee_contour_with, PoolConfig,
};
use isoee::MachineParams;
use mps::{Ctx, World};
use proptest::prelude::*;
use simcluster::system_g;

const DVFS: [f64; 4] = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
const THREADS: [usize; 2] = [2, 8];

fn apps() -> Vec<(Box<dyn AppModel>, f64)> {
    vec![
        (Box::new(EpModel::system_g()), 4e6),
        (Box::new(FtModel::system_g()), (1u64 << 20) as f64),
        (Box::new(CgModel::system_g()), 75_000.0),
    ]
}

fn mach() -> MachineParams {
    MachineParams::system_g(2.8e9)
}

#[test]
fn pf_surfaces_are_bit_identical_across_thread_counts() {
    let m = mach();
    let ps = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    for (app, n) in apps() {
        let seq = ee_surface_pf_with(&PoolConfig::sequential(), app.as_ref(), &m, n, &ps, &DVFS)
            .expect("sweep evaluates");
        for t in THREADS {
            let par = ee_surface_pf_with(
                &PoolConfig::with_threads(t),
                app.as_ref(),
                &m,
                n,
                &ps,
                &DVFS,
            )
            .expect("sweep evaluates");
            assert!(
                par == seq,
                "EE_{}(p, f) diverged at {t} threads",
                app.name()
            );
        }
    }
}

#[test]
fn pn_surfaces_are_bit_identical_across_thread_counts() {
    let m = mach();
    let ps = [1usize, 4, 16, 64, 256];
    for (app, n0) in apps() {
        let ns: Vec<f64> = (0..6).map(|k| n0 * f64::from(1u32 << k)).collect();
        let seq = ee_surface_pn_with(&PoolConfig::sequential(), app.as_ref(), &m, &ps, &ns)
            .expect("sweep evaluates");
        for t in THREADS {
            let par = ee_surface_pn_with(&PoolConfig::with_threads(t), app.as_ref(), &m, &ps, &ns)
                .expect("sweep evaluates");
            assert!(
                par == seq,
                "EE_{}(p, n) diverged at {t} threads",
                app.name()
            );
        }
    }
}

/// The batch kernel's row-chunked reduction at 1/2/8 pool threads against
/// *both* oracles: the sequential batch path (ordering guarantee) and the
/// sequential scalar path (kernel guarantee). One test spanning the full
/// equivalence square, so a divergence pinpoints which contract broke.
#[test]
fn batch_path_matches_both_oracles_at_every_thread_count() {
    let m = mach();
    let ps = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    for (app, n) in apps() {
        let seq = ee_surface_pf_with(&PoolConfig::sequential(), app.as_ref(), &m, n, &ps, &DVFS)
            .expect("sweep evaluates");
        let scalar =
            ee_surface_pf_scalar_with(&PoolConfig::sequential(), app.as_ref(), &m, n, &ps, &DVFS)
                .expect("sweep evaluates");
        assert!(
            seq == scalar,
            "sequential batch EE_{}(p, f) diverged from the scalar oracle",
            app.name()
        );
        for t in [1usize, 2, 8] {
            let par = ee_surface_pf_with(
                &PoolConfig::with_threads(t),
                app.as_ref(),
                &m,
                n,
                &ps,
                &DVFS,
            )
            .expect("sweep evaluates");
            assert!(
                par == seq,
                "batch EE_{}(p, f) diverged from sequential batch at {t} threads",
                app.name()
            );
            assert!(
                par == scalar,
                "batch EE_{}(p, f) diverged from the scalar oracle at {t} threads",
                app.name()
            );
        }

        let ns: Vec<f64> = (0..5).map(|k| n * f64::from(1u32 << k)).collect();
        let seq = ee_surface_pn_with(&PoolConfig::sequential(), app.as_ref(), &m, &ps, &ns)
            .expect("sweep evaluates");
        let scalar =
            ee_surface_pn_scalar_with(&PoolConfig::sequential(), app.as_ref(), &m, &ps, &ns)
                .expect("sweep evaluates");
        assert!(
            seq == scalar,
            "sequential batch EE_{}(p, n) diverged from the scalar oracle",
            app.name()
        );
        for t in [1usize, 2, 8] {
            let par = ee_surface_pn_with(&PoolConfig::with_threads(t), app.as_ref(), &m, &ps, &ns)
                .expect("sweep evaluates");
            assert!(
                par == seq && par == scalar,
                "batch EE_{}(p, n) diverged at {t} threads",
                app.name()
            );
        }
    }
}

#[test]
fn contours_are_bit_identical_across_thread_counts() {
    let m = mach();
    let ps = [16usize, 32, 64, 128, 256, 512, 1024];
    for (app, target) in [
        (Box::new(FtModel::system_g()) as Box<dyn AppModel>, 0.7),
        (Box::new(CgModel::system_g()) as Box<dyn AppModel>, 0.95),
    ] {
        let seq = iso_ee_contour_with(
            &PoolConfig::sequential(),
            app.as_ref(),
            &m,
            &ps,
            target,
            1e3,
            1e12,
        )
        .expect("no degenerate points");
        for t in THREADS {
            let par = iso_ee_contour_with(
                &PoolConfig::with_threads(t),
                app.as_ref(),
                &m,
                &ps,
                target,
                1e3,
                1e12,
            )
            .expect("no degenerate points");
            assert!(
                par == seq,
                "iso-EE contour of {} diverged at {t} threads",
                app.name()
            );
        }
    }
}

#[test]
fn dvfs_advisor_is_bit_identical_across_thread_counts() {
    let m = mach();
    for (app, n) in apps() {
        for p in [4usize, 64, 1024] {
            let seq = best_frequency_with(&PoolConfig::sequential(), app.as_ref(), &m, n, p, &DVFS)
                .expect("sweep evaluates");
            for t in THREADS {
                let par = best_frequency_with(
                    &PoolConfig::with_threads(t),
                    app.as_ref(),
                    &m,
                    n,
                    p,
                    &DVFS,
                )
                .expect("sweep evaluates");
                assert!(
                    par == seq,
                    "advisor for {} at p={p} diverged at {t} threads",
                    app.name()
                );
            }
        }
    }
}

#[test]
fn validation_summaries_are_bit_identical_across_thread_counts() {
    // The per-p validation points each run their own deterministic
    // simulated kernel; running them concurrently must not change a bit
    // of the summary.
    let w = World::new(system_g(), 2.8e9);
    let m = MachineParams::from_spec(&w.cluster, 2.8e9);
    let kernel = |ctx: &mut Ctx| {
        ctx.compute(2e6 / ctx.size() as f64);
        ctx.mem_access(1e4 / ctx.size() as f64, 1 << 24);
        ctx.barrier();
    };
    let seq = isoee::validate::validate_kernel_with(
        &PoolConfig::sequential(),
        &w,
        &m,
        "synthetic",
        &[1, 2, 4, 8],
        kernel,
    );
    for t in THREADS {
        let par = isoee::validate::validate_kernel_with(
            &PoolConfig::with_threads(t),
            &w,
            &m,
            "synthetic",
            &[1, 2, 4, 8],
            kernel,
        );
        assert!(par == seq, "validation summary diverged at {t} threads");
    }
}

proptest! {
    // Each case sweeps three grids at three thread counts; keep the count
    // moderate so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_grids_are_bit_identical(
        app_pick in 0usize..3,
        lg_n in 14u32..24,
        n_rows in 1usize..7,
        n_cols in 1usize..9,
        f_lo in 1.0e9f64..2.0e9,
        f_step in 1.0e8f64..4.0e8,
        p_stride in 1usize..4,
    ) {
        let m = mach();
        let (app, n): (Box<dyn AppModel>, f64) = match app_pick {
            0 => (Box::new(EpModel::system_g()), f64::from(1u32 << lg_n)),
            1 => (Box::new(FtModel::system_g()), f64::from(1u32 << lg_n)),
            _ => (Box::new(CgModel::system_g()), 2_000.0 * f64::from(lg_n)),
        };
        let fs: Vec<f64> = (0..n_rows).map(|i| f_lo + f_step * i as f64).collect();
        let ps: Vec<usize> = (0..n_cols).map(|j| 1usize << (j * p_stride).min(10)).collect();
        let seq = ee_surface_pf_with(&PoolConfig::sequential(), app.as_ref(), &m, n, &ps, &fs)
            .expect("sweep evaluates");
        for t in THREADS {
            let par = ee_surface_pf_with(
                &PoolConfig::with_threads(t),
                app.as_ref(),
                &m,
                n,
                &ps,
                &fs,
            )
            .expect("sweep evaluates");
            prop_assert!(par == seq, "random grid diverged at {} threads", t);
        }
    }
}
