//! Communication-checker tests against *real* runtime traces: each test
//! seeds a known communication bug into a small mps program and asserts the
//! analyzer names the offending ranks and tags.

use analyze::{check_comm_logs, check_deadlock, check_report, check_run, Finding};
use mps::{try_run, CommEvent, CommLog, CommOp, RunError, World};
use simcluster::system_g;

fn world() -> World {
    World::new(system_g(), 2.8e9)
}

#[test]
fn cross_deadlock_is_flagged_with_the_cycle() {
    // Both ranks receive before sending: the classic 2-rank cross deadlock.
    let result = try_run(&world(), 2, |ctx| {
        let peer = 1 - ctx.rank();
        let _ = ctx.recv::<u64>(peer, 42);
        ctx.send(peer, 42, vec![1u64]);
    });
    let Err(RunError::Deadlock(info)) = &result else {
        panic!("seeded deadlock must not complete");
    };
    let findings = check_deadlock(info);
    let cycle = findings
        .iter()
        .find_map(|f| match f {
            Finding::DeadlockCycle { edges } => Some(edges),
            _ => None,
        })
        .expect("a DeadlockCycle finding");
    // The cycle names both ranks and the awaited tag.
    let mut ranks: Vec<usize> = cycle.iter().map(|e| e.from_rank).collect();
    ranks.sort_unstable();
    assert_eq!(ranks, vec![0, 1]);
    assert!(cycle.iter().all(|e| e.tag == 42));
    // check_run dispatches to the same pass.
    assert_eq!(check_run(&result), findings);
}

#[test]
fn tag_mismatch_is_reported_with_ranks_and_tags() {
    // Rank 0 sends tag 7 and finishes; rank 1 waits for tag 9 forever.
    let result = try_run(&world(), 2, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 7, vec![1u64]);
        } else {
            let _ = ctx.recv::<u64>(0, 9);
        }
    });
    let Err(RunError::Deadlock(info)) = &result else {
        panic!("mismatched tags must not complete");
    };
    assert!(
        !info.cyclic,
        "a single blocked rank is a chain, not a cycle"
    );
    let findings = check_deadlock(info);
    assert!(
        findings
            .iter()
            .any(|f| matches!(f, Finding::StuckOnFinished { edges }
            if edges.iter().any(|e| e.from_rank == 1 && e.on_rank == Some(0) && e.tag == 9))),
        "no StuckOnFinished chain in {findings:?}"
    );
    assert!(
        findings.contains(&Finding::TagMismatch {
            sender: 0,
            receiver: 1,
            sent_tag: 7,
            expected_tag: 9,
        }),
        "no TagMismatch in {findings:?}"
    );
}

#[test]
fn concurrent_same_tag_sends_race() {
    // Ranks 1 and 2 both send tag 5 to rank 0 with no ordering between
    // them; rank 0 consumes both (by source), so the run completes.
    let result = try_run(&world(), 3, |ctx| match ctx.rank() {
        0 => {
            let _ = ctx.recv::<u64>(1, 5);
            let _ = ctx.recv::<u64>(2, 5);
        }
        r => ctx.send(0, 5, vec![r as u64]),
    });
    let report = result.expect("the race still completes");
    let findings = check_report(&report);
    assert!(
        findings.contains(&Finding::MessageRace {
            senders: (1, 2),
            receiver: 0,
            tag: 5
        }),
        "no MessageRace in {findings:?}"
    );
}

#[test]
fn causally_ordered_sends_do_not_race() {
    // Rank 1 sends to rank 0, then releases rank 2 (message), then rank 2
    // sends to rank 0 under the same tag: the two sends are causally
    // ordered, so no race.
    let result = try_run(&world(), 3, |ctx| match ctx.rank() {
        0 => {
            let _ = ctx.recv::<u64>(1, 5);
            let _ = ctx.recv::<u64>(2, 5);
        }
        1 => {
            ctx.send(0, 5, vec![1u64]);
            ctx.send(2, 99, vec![0u64]);
        }
        _ => {
            let _ = ctx.recv::<u64>(1, 99);
            ctx.send(0, 5, vec![2u64]);
        }
    });
    let report = result.expect("ordered program completes");
    let findings = check_report(&report);
    assert!(
        !findings
            .iter()
            .any(|f| matches!(f, Finding::MessageRace { .. })),
        "false race in {findings:?}"
    );
}

#[test]
fn clean_collective_program_produces_no_findings() {
    let result = try_run(&world(), 4, |ctx| {
        ctx.barrier();
        ctx.compute(1e4);
        ctx.allreduce_sum(&[ctx.rank() as f64])
    });
    let findings = check_run(&result);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn unconsumed_message_is_reported_from_logs() {
    // Synthetic trace: rank 3's inbox still holds an unreceived tag-8
    // message from rank 2. (The runtime's own debug assertion refuses to
    // finish such a run, so this pass matters for replayed/external logs.)
    let mut sender = CommLog::new(2);
    sender.events.push(CommEvent {
        op: CommOp::Send { to: 3 },
        tag: 8,
        bytes: 64,
        time_s: 1.0e-6,
        waited_s: 0.0,
        vc: vec![0, 0, 1, 0],
    });
    let mut receiver = CommLog::new(3);
    receiver.unconsumed.push((2, 8, 64));
    let findings = check_comm_logs(&[&sender, &receiver]);
    assert_eq!(
        findings,
        vec![Finding::UnconsumedMessage {
            sender: 2,
            receiver: 3,
            tag: 8,
            bytes: 64
        }]
    );
}

#[test]
fn internal_collective_tags_are_ignored_by_the_race_pass() {
    // Two concurrent sends under an internal (collective) tag must not be
    // reported: collectives sequence their own tags.
    let tag = mps::USER_TAG_LIMIT + 3;
    let mk = |rank: usize, vc: Vec<u64>| {
        let mut log = CommLog::new(rank);
        log.events.push(CommEvent {
            op: CommOp::Send { to: 0 },
            tag,
            bytes: 8,
            time_s: 1.0e-6,
            waited_s: 0.0,
            vc,
        });
        log
    };
    let a = mk(1, vec![0, 1, 0]);
    let b = mk(2, vec![0, 0, 1]);
    let findings = check_comm_logs(&[&a, &b]);
    assert!(findings.is_empty(), "internal tags raced: {findings:?}");
}
