//! Exit-code and `--json` contract of the `analyze` binary: `0` when all
//! passes are clean, `1` on unexpected findings, `2` on usage errors —
//! including a `--trace` file that is missing or unreadable, which must
//! NOT be conflated with an analysis finding.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(args)
        .output()
        .expect("analyze binary runs")
}

#[test]
fn clean_run_exits_zero() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("analyze: all passes clean"), "{stdout}");
}

#[test]
fn missing_trace_file_is_a_usage_error_not_a_finding() {
    let out = run(&["--trace", "/nonexistent/trace.json"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read --trace file"), "{stderr}");
    // No passes ran: stdout carries no progress lines.
    assert!(out.stdout.is_empty(), "passes must not run on usage errors");
}

#[test]
fn trace_flag_without_path_is_a_usage_error() {
    let out = run(&["--trace"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: analyze"), "{stderr}");
}

#[test]
fn valid_trace_file_passes() {
    let trace = obs::Trace::new("cli-test");
    let path = std::env::temp_dir().join("analyze-cli-test-trace.json");
    obs::perfetto::write_file(&trace, &path).expect("trace written");
    let out = run(&["--trace", path.to_str().expect("utf8 temp path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn plan_pass_certifies_npb_plans_and_exits_zero() {
    // p = 4 keeps the abstract runs small enough for a debug binary; the
    // release CI job covers the full {4, 64, 1024} ladder.
    let out = run(&["--plan", "--plan-ps", "4", "--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = obs::json::parse(&stdout).expect("stdout parses as JSON");
    let passes = doc
        .get("passes")
        .and_then(obs::json::Json::as_arr)
        .expect("passes array");
    let names: Vec<&str> = passes.iter().filter_map(obs::json::Json::as_str).collect();
    assert!(names.contains(&"plan"), "missing plan pass: {names:?}");
    assert_eq!(
        doc.get("unexpected").and_then(obs::json::Json::as_num),
        Some(0.0),
        "{stdout}"
    );
}

#[test]
fn seeded_deadlocking_plan_exits_one() {
    let out = run(&["--plan-bad", "--plan-ps", "4"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Deadlock") || stdout.contains("deadlock"),
        "expected a deadlock finding in {stdout}"
    );
}

#[test]
fn malformed_plan_ps_is_a_usage_error() {
    let out = run(&["--plan-ps", "4,lots"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn json_output_is_machine_readable_with_stable_field_order() {
    let out = run(&["--verify", "--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);

    // stdout is exactly the JSON document (progress went to stderr).
    let doc = obs::json::parse(&stdout).expect("stdout parses as JSON");
    assert_eq!(
        doc.get("schema").and_then(obs::json::Json::as_str),
        Some("analyze/2")
    );
    assert_eq!(
        doc.get("unexpected").and_then(obs::json::Json::as_num),
        Some(0.0)
    );
    let passes = doc
        .get("passes")
        .and_then(obs::json::Json::as_arr)
        .expect("passes array");
    let names: Vec<&str> = passes.iter().filter_map(obs::json::Json::as_str).collect();
    for expected in [
        "model",
        "comm",
        "deadlock",
        "trace",
        "pool",
        "verify-explorer",
        "verify-interval",
    ] {
        assert!(
            names.contains(&expected),
            "missing pass {expected}: {names:?}"
        );
    }

    // The seeded bugs appear as findings flagged expected=true.
    let findings = doc
        .get("findings")
        .and_then(obs::json::Json::as_arr)
        .expect("findings array");
    assert!(
        findings.iter().any(|f| {
            f.get("pass").and_then(obs::json::Json::as_str) == Some("verify-explorer")
                && f.get("expected") == Some(&obs::json::Json::Bool(true))
        }),
        "expected seeded explorer findings in {stdout}"
    );

    // Stable field order: keys appear in the documented sequence, so the
    // document is byte-diffable across runs.
    let schema_at = stdout.find("\"schema\"").expect("schema key");
    let passes_at = stdout.find("\"passes\"").expect("passes key");
    let findings_at = stdout.find("\"findings\"").expect("findings key");
    let unexpected_at = stdout.find("\"unexpected\"").expect("unexpected key");
    assert!(schema_at < passes_at && passes_at < findings_at && findings_at < unexpected_at);
    let first = findings_at
        + stdout[findings_at..]
            .find("{\"pass\"")
            .expect("finding objects lead with pass");
    let kind_at = stdout[first..].find("\"kind\"").expect("kind key");
    let ctx_at = stdout[first..].find("\"context\"").expect("context key");
    let msg_at = stdout[first..].find("\"message\"").expect("message key");
    let exp_at = stdout[first..].find("\"expected\"").expect("expected key");
    assert!(kind_at < ctx_at && ctx_at < msg_at && msg_at < exp_at);

    // Every finding carries a kind from the documented vocabulary.
    for f in findings {
        let kind = f.get("kind").and_then(obs::json::Json::as_str);
        assert!(kind.is_some_and(|k| !k.is_empty()), "finding without kind");
    }
}

#[test]
fn wildcard_probe_names_the_first_inexact_op() {
    // Satellite contract: the conservative RecvAny verdict carries a
    // witness (rank + op index), surfaced on the plan pass's progress
    // stream.
    let out = run(&["--plan", "--plan-ps", "4"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("first inexact op: rank 0, op 0"),
        "missing first-inexact witness in {stdout}"
    );
}

#[test]
fn plan_symbolic_certifies_and_emits_power_cap_verdicts() {
    let out = run(&["--plan-symbolic", "--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = obs::json::parse(&stdout).expect("stdout parses as JSON");
    let passes = doc
        .get("passes")
        .and_then(obs::json::Json::as_arr)
        .expect("passes array");
    let names: Vec<&str> = passes.iter().filter_map(obs::json::Json::as_str).collect();
    assert!(
        names.contains(&"plan-symbolic"),
        "missing plan-symbolic pass: {names:?}"
    );
    assert_eq!(
        doc.get("unexpected").and_then(obs::json::Json::as_num),
        Some(0.0),
        "{stdout}"
    );
    // Progress (stderr under --json) reports the for-all-p certification
    // and both cap verdicts with the violating range witness.
    let stderr = String::from_utf8_lossy(&out.stderr);
    for plan in ["ft", "ep", "cg"] {
        assert!(
            stderr.contains(&format!("{plan} certified for all")),
            "missing {plan} certification in {stderr}"
        );
    }
    assert!(
        stderr.contains("static rejection witness"),
        "missing power-cap rejection witness in {stderr}"
    );
    // Certificates are dumped for CI to upload.
    for plan in ["ft", "ep", "cg"] {
        let text = std::fs::read_to_string(format!("target/plan-certs/{plan}.json"))
            .expect("certificate dumped");
        assert!(text.contains("\"certified\": true"), "{plan}: {text}");
    }
}

#[test]
fn seeded_skewed_shift_is_refused_with_exit_one() {
    let out = run(&["--plan-symbolic-bad"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("certification refused"),
        "expected a refusal witness in {stderr}"
    );
}

/// Write a `bench/2` fixture with one gauge at `seq_ns` and return its path.
fn bench_doc(name: &str, cores: u64, seq_ns: f64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("analyze-bench-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(
        &path,
        format!(
            "{{\"schema\":\"bench/2\",\
             \"host\":{{\"cores\":{cores},\"pool_threads\":{cores},\
             \"git_rev\":\"abc1234\",\"recorded_unix\":1754000000}},\
             \"metrics\":[{{\"name\":\"bench.sweep.fig5_dense_seq.ns_per_iter\",\
             \"kind\":\"gauge\",\"value\":{seq_ns}}}]}}\n"
        ),
    )
    .expect("fixture written");
    path
}

#[test]
fn bench_diff_self_comparison_exits_zero() {
    let a = bench_doc("self.json", 4, 1.0e8);
    let out = run(&["--bench-diff", a.to_str().unwrap(), a.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bench-diff clean"), "{stderr}");
}

#[test]
fn bench_diff_double_slowdown_exits_one_with_named_finding() {
    let old = bench_doc("base.json", 4, 1.0e8);
    let new = bench_doc("slow.json", 4, 2.0e8);
    let out = run(&["--bench-diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("analyze[bench-diff bench.sweep.fig5_dense_seq.ns_per_iter]"),
        "regression must be a named finding:\n{stderr}"
    );
}

#[test]
fn bench_diff_host_mismatch_needs_force() {
    let old = bench_doc("h4.json", 4, 1.0e8);
    let new = bench_doc("h8.json", 8, 1.0e8);
    let refused = run(&["--bench-diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(refused.status.code(), Some(2), "{refused:?}");
    let forced = run(&[
        "--bench-diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--force",
    ]);
    assert_eq!(forced.status.code(), Some(0), "{forced:?}");
}

#[test]
fn bench_diff_json_emits_obsdiff_document() {
    let a = bench_doc("json.json", 4, 1.0e8);
    let out = run(&[
        "--bench-diff",
        a.to_str().unwrap(),
        a.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = obs::json::parse(&stdout).expect("stdout parses as JSON");
    assert_eq!(
        doc.get("schema").and_then(obs::json::Json::as_str),
        Some("obsdiff/1"),
        "{stdout}"
    );
}

#[test]
fn bench_diff_missing_snapshot_is_a_usage_error() {
    let out = run(&["--bench-diff", "/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
