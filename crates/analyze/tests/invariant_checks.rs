//! Invariant-pass tests: seeded unit-inconsistent parameter vectors must be
//! detected, sane vectors must be quiet, and the model-level checks must
//! hold over random non-negative application vectors.

use analyze::{check_app, check_machine, check_model, Finding};
use isoee::{AppParams, MachineParams};
use proptest::prelude::*;
use simcluster::units::Seconds;

fn mach() -> MachineParams {
    MachineParams::system_g(2.8e9)
}

fn names(findings: &[Finding]) -> Vec<&'static str> {
    findings
        .iter()
        .filter_map(|f| match f {
            Finding::InvalidParameter { name, .. } => Some(*name),
            _ => None,
        })
        .collect()
}

#[test]
fn sane_machine_vectors_are_quiet() {
    for m in [
        MachineParams::system_g(2.8e9),
        MachineParams::system_g(1.6e9),
        MachineParams::dori(2.0e9),
    ] {
        let findings = check_machine(&m);
        assert!(findings.is_empty(), "false positives: {findings:?}");
    }
}

#[test]
fn negative_latency_is_detected() {
    // The seeded unit-inconsistent vector: a negative compute latency.
    let mut m = mach();
    m.tc = Seconds::new(-1.0e-10);
    assert_eq!(names(&check_machine(&m)), vec!["tc"]);
}

#[test]
fn nan_power_is_detected() {
    let mut m = mach();
    m.delta_pm = simcluster::units::Watts::new(f64::NAN);
    assert_eq!(names(&check_machine(&m)), vec!["dPm"]);
}

#[test]
fn sublinear_gamma_is_detected() {
    let mut m = mach();
    m.gamma = 0.5;
    assert_eq!(names(&check_machine(&m)), vec!["gamma"]);
}

#[test]
fn frequency_law_violation_is_detected() {
    // tc assembled in nanoseconds against f in Hz: every field is positive
    // and finite, but tc != CPI / f by nine orders of magnitude.
    let mut m = mach();
    m.tc = Seconds::new(m.tc.raw() * 1e9);
    let findings = check_machine(&m);
    assert!(
        findings.iter().any(|f| matches!(
            f,
            Finding::BrokenInvariant {
                invariant: "tc == CPI / f",
                ..
            }
        )),
        "unit-inconsistent tc not flagged: {findings:?}"
    );
}

#[test]
fn invalid_app_vectors_are_detected() {
    let good = AppParams::from_raw(0.9, 1e9, 1e8, 1e7, 0.0, 1e3, 1e6, 0.0);
    assert!(check_app(&good).is_empty());

    let bad_alpha = AppParams { alpha: 1.5, ..good };
    assert_eq!(names(&check_app(&bad_alpha)), vec!["alpha"]);

    // An overhead more negative than the sequential workload it relieves.
    let bad_wom = AppParams::from_raw(0.9, 1e9, 1e8, 0.0, -2e8, 0.0, 0.0, 0.0);
    assert_eq!(names(&check_app(&bad_wom)), vec!["Wom"]);

    let bad_io = AppParams::from_raw(0.9, 1e9, 1e8, 0.0, 0.0, 0.0, 0.0, -1.0);
    assert_eq!(names(&check_app(&bad_io)), vec!["T_IO"]);
}

#[test]
fn sweep_accounting_accepts_exact_and_flags_drift() {
    // Exact accounting: one task per row, one eval per grid point.
    assert!(analyze::check_sweep_accounting(4, 11, 4, 44).is_empty());

    // A dropped row shows up in both counters.
    let dropped = analyze::check_sweep_accounting(4, 11, 3, 33);
    assert_eq!(dropped.len(), 2);
    assert!(dropped
        .iter()
        .all(|f| matches!(f, Finding::BrokenInvariant { .. })));

    // A double-executed task with correct eval count flags only the pool.
    let rerun = analyze::check_sweep_accounting(4, 11, 5, 44);
    assert_eq!(rerun.len(), 1);
    assert!(matches!(
        &rerun[0],
        Finding::BrokenInvariant { invariant, .. }
            if *invariant == "pool tasks == sweep rows"
    ));

    // An uncounted evaluation path flags only the model-eval side.
    let uncounted = analyze::check_sweep_accounting(4, 11, 4, 43);
    assert_eq!(uncounted.len(), 1);
    assert!(matches!(
        &uncounted[0],
        Finding::BrokenInvariant { invariant, .. }
            if *invariant == "model evals == rows * cols"
    ));
}

#[test]
fn sweep_accounting_matches_a_live_pooled_sweep() {
    // The real thing, not constructed deltas: a 4x6 FT sweep on a 4-thread
    // pool must advance pool.tasks_executed by 4 and isoee.model_evals by
    // 24. Deltas are read from the process-global registry, so this also
    // proves the counters are wired to the global snapshot other tests and
    // benches read.
    let mach = isoee::MachineParams::system_g(2.8e9);
    let ft = isoee::apps::FtModel::system_g();
    let fs = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
    let ps = [1usize, 4, 16, 64, 256, 1024];
    let tasks = obs::global().counter("pool.tasks_executed");
    let evals = obs::global().counter("isoee.model_evals");
    let (tasks0, evals0) = (tasks.get(), evals.get());
    isoee::scaling::ee_surface_pf_with(
        &pool::PoolConfig::with_threads(4),
        &ft,
        &mach,
        (1u64 << 20) as f64,
        &ps,
        &fs,
    )
    .expect("sweep evaluates");
    let findings = analyze::check_sweep_accounting(
        fs.len(),
        ps.len(),
        tasks.get() - tasks0,
        evals.get() - evals0,
    );
    assert!(findings.is_empty(), "accounting drifted: {findings:?}");
}

#[test]
fn model_check_reports_parameter_findings_first() {
    let mut m = mach();
    m.tm = Seconds::new(f64::INFINITY);
    let a = AppParams::from_raw(0.9, 1e9, 1e8, 0.0, 0.0, 0.0, 0.0, 0.0);
    let findings = check_model(&m, &a, 16);
    assert_eq!(names(&findings), vec!["tm"]);
    // The model itself is never evaluated on an insane vector.
    assert!(!findings
        .iter()
        .any(|f| matches!(f, Finding::BrokenInvariant { .. })));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Over random *non-negative* application vectors the model's structural
    /// invariants hold, so the analyzer stays quiet.
    #[test]
    fn model_invariants_hold_on_random_apps(
        alpha in 0.5f64..=1.0,
        wc in 1e6f64..1e12,
        wm in 0.0f64..1e10,
        woc in 0.0f64..1e10,
        wom in 0.0f64..1e9,
        messages in 0.0f64..1e7,
        bytes in 0.0f64..1e11,
        p in 1usize..2048,
    ) {
        let a = AppParams::from_raw(alpha, wc, wm, woc, wom, messages, bytes, 0.0);
        let findings = check_model(&mach(), &a, p);
        prop_assert!(findings.is_empty(), "spurious findings: {findings:?}");
    }

    /// Seeding any single non-finite machine field must always produce at
    /// least one finding.
    #[test]
    fn any_nan_machine_field_is_caught(field in 0usize..9) {
        let mut m = mach();
        let nan = f64::NAN;
        match field {
            0 => m.tc = Seconds::new(nan),
            1 => m.tm = Seconds::new(nan),
            2 => m.ts = Seconds::new(nan),
            3 => m.tw = Seconds::new(nan),
            4 => m.p_sys_idle = simcluster::units::Watts::new(nan),
            5 => m.delta_pc = simcluster::units::Watts::new(nan),
            6 => m.delta_pm = simcluster::units::Watts::new(nan),
            7 => m.delta_pnic = simcluster::units::Watts::new(nan),
            _ => m.delta_pio = simcluster::units::Watts::new(nan),
        }
        prop_assert!(!check_machine(&m).is_empty());
    }
}
