//! Trace conformance on *engine-backed* runs.
//!
//! The simrt event engine produces the same span tracks as the thread
//! runtime (shared `RankCore` recording) plus its own virtual-time
//! counter timeline. Both must satisfy every invariant `analyze --trace`
//! enforces — in particular the timeline's running-max timestamping must
//! keep each counter series monotone.

use simrt::{Detail, EngineConfig};

fn world() -> mps::World {
    let mut obs_cfg = obs::ObsConfig::disabled();
    obs_cfg.trace = true;
    mps::World::new(simcluster::system_g(), 2.8e9).with_obs(obs_cfg)
}

#[test]
fn engine_trace_passes_conformance() {
    let cfg = npb::FtConfig::class(npb::Class::S);
    let plan = npb::ft_plan(&cfg);
    let engine_cfg = EngineConfig::default()
        .with_detail(Detail::On)
        .with_timeline_every(8);
    let out = simrt::try_run_plan_with(&engine_cfg, &world(), 4, &plan).expect("run completes");
    assert!(
        out.timeline.series().iter().any(|s| !s.samples.is_empty()),
        "timeline sampling produced no data"
    );
    let trace = out.trace("ft p=4 simrt").expect("trace assembled");
    assert!(!trace.tracks.is_empty(), "span tracks recorded");
    assert!(!trace.counters.is_empty(), "timeline counters attached");
    let findings = analyze::check_trace(&trace);
    assert!(findings.is_empty(), "conformance findings: {findings:?}");
}

/// With detail off and the timeline on, the trace is counters-only and
/// must still conform (this is the large-`p` observability mode).
#[test]
fn counters_only_engine_trace_passes_conformance() {
    let cfg = npb::EpConfig::class(npb::Class::S);
    let plan = npb::ep_plan(&cfg);
    let engine_cfg = EngineConfig::default()
        .with_detail(Detail::Off)
        .with_timeline_every(4);
    let out = simrt::try_run_plan_with(&engine_cfg, &world(), 8, &plan).expect("run completes");
    let trace = out.trace("ep p=8 simrt").expect("counters-only trace");
    assert!(trace.tracks.is_empty(), "no span tracks at detail off");
    assert!(!trace.counters.is_empty());
    let findings = analyze::check_trace(&trace);
    assert!(findings.is_empty(), "conformance findings: {findings:?}");
}
