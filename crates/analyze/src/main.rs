//! Workspace analysis gate: `cargo run -p analyze`.
//!
//! Runs the standing passes and exits non-zero if any *unexpected* finding
//! surfaces:
//!
//! 1. Model invariants over both machine vectors (System G, Dori) crossed
//!    with the NPB application models at several `(n, p, f)` points.
//! 2. Communication-trace checks over a clean mps program (must be quiet).
//! 3. A seeded deadlock, to prove the detector actually fires (expected
//!    findings, clearly labelled).
//! 4. Trace conformance over the obs spans of a traced 4-rank FT run
//!    (every span closed, charges inside phases, virtual time monotone).
//! 5. Sweep accounting: a known-size parallel surface sweep must advance
//!    `pool.tasks_executed` by exactly one per row and `isoee.model_evals`
//!    by exactly rows x cols — the pool neither drops nor re-runs work.
//!
//! Flags:
//!
//! * `--verify` adds the ahead-of-time verification passes from
//!   `crates/verify`: the schedule-space model checker over the seeded
//!   example worlds (plus a bounded sweep of the 4-rank FT kernel), and
//!   interval pre-certification of the Fig 5–9 sweep grids and NPB
//!   workload boxes. Explorer witnesses are written as Perfetto traces
//!   under `target/verify-witnesses/`.
//! * `--trace <file.json>` additionally validates an emitted Perfetto
//!   trace-event file (as written by `examples/trace_ft.rs` or
//!   `OBS_TRACE=... fig10`) with the obs JSON validator.
//! * `--plan` adds the static communication-plan pass: the in-tree NPB
//!   `CommPlan`s (FT, EP, CG) are analyzed at every world size in
//!   `--plan-ps` (default `4,64,1024`) with `plan::analyze_plan` —
//!   matching/shape validity, deadlock freedom with witnesses, exact
//!   message/byte totals — and lowered to Eq. 13/15 interval cost bounds
//!   via `isoee::plancost`. At the smallest p ≤ 4 the verdicts are
//!   cross-validated dynamically against the `verify` schedule explorer.
//!   `--plan-bad` seeds a deliberately deadlocking plan instead and
//!   reports its findings as *unexpected* (exit 1), proving the gate
//!   actually gates.
//! * `--plan-symbolic` adds the *parametric* certification pass: the NPB
//!   plans are certified matching/deadlock-free for **every** `p` in
//!   their declared domains at once (`plan::certify_plan`), certificates
//!   are dumped under `target/plan-certs/`, and two static power-cap
//!   verdicts per plan (`isoee::power_cap_verdict`) prove a generous cap
//!   holds for all `p` and a 2 kW cap is violated on a named `p` range.
//!   `--plan-symbolic-bad` seeds a non-bijective shift plan the certifier
//!   must refuse (exit 1 path).
//! * `--bench-diff <OLD.json> <NEW.json>` switches to a dedicated mode:
//!   the regression sentinel. Both snapshots (bench/2 documents with host
//!   metadata, or bare PR-2 metric arrays) are compared with `obs::diff`;
//!   each regressed metric is reported as a named finding on stderr and
//!   the report (JSON under `--json`, text otherwise) goes to stdout.
//!   `--threshold <frac>` sets the relative noise threshold (default
//!   0.30); `--force` compares across mismatched host shapes. Exit codes
//!   follow `obsdiff`: 0 no regression, 1 regression(s), 2 usage error or
//!   unforced host mismatch. No other pass runs in this mode.
//! * `--json` prints the machine-readable findings document (stable field
//!   order) to stdout; human progress moves to stderr.
//!
//! Exit codes: `0` all passes clean, `1` at least one unexpected finding,
//! `2` usage error (unknown flag, or a `--trace` file that is missing or
//! unreadable).

#![forbid(unsafe_code)]

use analyze::{
    check_batch_kernel, check_deadlock, check_model, check_report, check_sweep_accounting,
    check_trace, Finding,
};
use isoee::apps::{AppModel, CgModel, EpModel, FtModel};
use isoee::interval::{certify_pf_grid, certify_pn_grid, GridCertification, Interval};
use isoee::MachineParams;
use mps::{try_run, RunError, World};
use simcluster::{dori, system_g};
use verify::{programs, witness_trace, BoxOutcome, BoxSearch, Explorer, VerifyFinding};

const USAGE: &str = "usage: analyze [--verify] [--json] [--trace <file.json>] \
                     [--plan] [--plan-ps <p,p,..>] [--plan-bad] \
                     [--plan-symbolic] [--plan-symbolic-bad]\n\
       analyze --bench-diff <OLD.json> <NEW.json> [--threshold <frac>] [--force] [--json]\n\
                     exit codes: 0 clean, 1 unexpected finding(s), 2 usage error\n\
                     (--bench-diff: 0 no regression, 1 regression(s), 2 usage/host mismatch)";

/// One recorded finding, for the `--json` document.
struct Entry {
    pass: &'static str,
    kind: &'static str,
    context: String,
    message: String,
    expected: bool,
}

/// The finding-kind vocabulary (documented in DESIGN.md): every finding a
/// pass can emit carries a stable `kind` so downstream diffing keys on it.
fn default_kind(pass: &'static str) -> &'static str {
    match pass {
        "model" => "model-invariant",
        "comm" => "comm-graph",
        "deadlock" => "deadlock",
        "trace" | "perfetto" => "trace-conformance",
        "pool" => "accounting",
        "verify-explorer" => "schedule-space",
        "verify-interval" => "interval-certification",
        "plan" => "plan-static",
        "plan-symbolic" => "symbolic-normalization",
        "bench-diff" => "bench-regression",
        _ => "finding",
    }
}

/// Collects findings across passes and routes human output so that
/// `--json` keeps stdout machine-readable.
struct Report {
    json: bool,
    passes: Vec<&'static str>,
    entries: Vec<Entry>,
}

impl Report {
    fn begin(&mut self, pass: &'static str) {
        self.passes.push(pass);
    }

    /// A human progress line (stdout normally, stderr under `--json`).
    fn progress(&self, line: &str) {
        if self.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }

    /// Record one finding. Expected findings (seeded bugs the checkers
    /// must fire on) don't count against the exit code.
    fn finding(&mut self, pass: &'static str, context: &str, message: String, expected: bool) {
        self.finding_kind(pass, default_kind(pass), context, message, expected);
    }

    /// Record one finding with an explicit kind (the symbolic pass emits
    /// several kinds; everything else uses its pass default).
    fn finding_kind(
        &mut self,
        pass: &'static str,
        kind: &'static str,
        context: &str,
        message: String,
        expected: bool,
    ) {
        if expected {
            self.progress(&format!("{pass} (expected) [{context}]: {message}"));
        } else {
            eprintln!("analyze[{pass} {context}]: {message}");
        }
        self.entries.push(Entry {
            pass,
            kind,
            context: context.to_string(),
            message,
            expected,
        });
    }

    fn unexpected(&self) -> usize {
        self.entries.iter().filter(|e| !e.expected).count()
    }

    /// The machine-readable document: fixed key order (`schema`, `passes`,
    /// `findings`, `unexpected`; each finding `pass`, `kind`, `context`,
    /// `message`, `expected`) so downstream parsers may byte-diff it.
    /// `analyze/2` added the per-finding `kind` field (see DESIGN.md for
    /// the kind vocabulary).
    fn to_json(&self) -> String {
        use obs::json::quote;
        let mut out = String::from("{\n  \"schema\": \"analyze/2\",\n  \"passes\": [");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&quote(p));
        }
        out.push_str("],\n  \"findings\": [");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str(&format!(
                "{{\"pass\": {}, \"kind\": {}, \"context\": {}, \"message\": {}, \"expected\": {}}}",
                quote(e.pass),
                quote(e.kind),
                quote(&e.context),
                quote(&e.message),
                e.expected
            ));
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"unexpected\": {}\n}}\n",
            self.unexpected()
        ));
        out
    }
}

fn main() {
    // Strict argument parsing up front: any usage problem — including a
    // --trace file that cannot be read — is exit code 2, before any pass
    // runs (so CI can distinguish "misinvoked" from "found a bug").
    let mut json = false;
    let mut run_verify = false;
    let mut run_plan = false;
    let mut plan_bad = false;
    let mut run_plan_symbolic = false;
    let mut plan_symbolic_bad = false;
    let mut plan_ps: Vec<usize> = vec![4, 64, 1024];
    let mut trace_file: Option<(String, String)> = None;
    let mut bench_diff: Option<(String, String)> = None;
    let mut diff_force = false;
    let mut diff_threshold = obs::diff::DEFAULT_THRESHOLD;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--verify" => run_verify = true,
            "--bench-diff" => {
                let old = args.next();
                let new = args.next();
                let (Some(old), Some(new)) = (old, new) else {
                    eprintln!("analyze: --bench-diff needs OLD and NEW snapshot paths\n{USAGE}");
                    std::process::exit(2);
                };
                bench_diff = Some((old, new));
            }
            "--force" => diff_force = true,
            "--threshold" => {
                let raw = args.next().unwrap_or_else(|| {
                    eprintln!("analyze: --threshold needs a fraction\n{USAGE}");
                    std::process::exit(2);
                });
                diff_threshold = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("analyze: bad --threshold {raw:?}\n{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--plan" => run_plan = true,
            "--plan-bad" => {
                run_plan = true;
                plan_bad = true;
            }
            "--plan-symbolic" => run_plan_symbolic = true,
            "--plan-symbolic-bad" => {
                run_plan_symbolic = true;
                plan_symbolic_bad = true;
            }
            "--plan-ps" => {
                let csv = args.next().unwrap_or_else(|| {
                    eprintln!("analyze: --plan-ps needs a comma-separated list\n{USAGE}");
                    std::process::exit(2);
                });
                plan_ps = csv
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&p| p >= 1)
                            .unwrap_or_else(|| {
                                eprintln!("analyze: bad --plan-ps entry {s:?}\n{USAGE}");
                                std::process::exit(2);
                            })
                    })
                    .collect();
                run_plan = true;
            }
            "--trace" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("analyze: --trace needs a file path\n{USAGE}");
                    std::process::exit(2);
                });
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("analyze: cannot read --trace file {path}: {e}\n{USAGE}");
                    std::process::exit(2);
                });
                trace_file = Some((path, text));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("analyze: unknown argument {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    // --bench-diff is a dedicated mode: only the regression-sentinel pass
    // runs, with obsdiff-compatible exit codes.
    if let Some((old_path, new_path)) = bench_diff {
        std::process::exit(bench_diff_mode(
            &old_path,
            &new_path,
            diff_threshold,
            diff_force,
            json,
        ));
    }

    let mut report = Report {
        json,
        passes: Vec::new(),
        entries: Vec::new(),
    };

    model_pass(&mut report);
    clean_comm_pass(&mut report);
    seeded_deadlock_pass(&mut report);
    obs_trace_pass(&mut report);
    pool_pass(&mut report);
    if run_verify {
        verify_explorer_pass(&mut report);
        verify_interval_pass(&mut report);
    }
    if run_plan {
        plan_pass(&mut report, &plan_ps, plan_bad);
    }
    if run_plan_symbolic {
        plan_symbolic_pass(&mut report, plan_symbolic_bad);
    }
    if let Some((path, text)) = &trace_file {
        perfetto_file_pass(&mut report, path, text);
    }

    if json {
        print!("{}", report.to_json());
    }
    let unexpected = report.unexpected();
    if unexpected > 0 {
        eprintln!("analyze: {unexpected} unexpected finding(s)");
        std::process::exit(1);
    }
    report.progress("analyze: all passes clean");
}

/// The regression sentinel: diff two bench snapshots with `obs::diff` and
/// report every regressed metric as a named finding. Returns the process
/// exit code: 0 no regression, 1 regression(s), 2 unreadable/unparseable
/// snapshot or host-shape mismatch without `--force`.
fn bench_diff_mode(old_path: &str, new_path: &str, threshold: f64, force: bool, json: bool) -> i32 {
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("analyze: cannot read snapshot {path}: {e}\n{USAGE}");
            std::process::exit(2);
        })
    };
    let parse = |path: &str, text: &str| {
        obs::diff::parse_snapshot(text).unwrap_or_else(|e| {
            eprintln!("analyze: bad snapshot {path}: {e}\n{USAGE}");
            std::process::exit(2);
        })
    };
    let old = parse(old_path, &read(old_path));
    let new = parse(new_path, &read(new_path));
    let config = obs::diff::DiffConfig { threshold, force };
    let report = match obs::diff::diff(&old, &new, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("analyze: bench-diff refused: {e} (pass --force to compare anyway)");
            return 2;
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    let regressions = report.regressions();
    for d in &regressions {
        eprintln!(
            "analyze[bench-diff {}]: regressed {} -> {} ({})",
            d.name,
            d.old.map_or("-".into(), |v| format!("{v}")),
            d.new.map_or("-".into(), |v| format!("{v}")),
            d.direction.name()
        );
    }
    if regressions.is_empty() {
        eprintln!(
            "analyze: bench-diff clean ({} metric(s) compared)",
            report.diffs.len()
        );
        0
    } else {
        eprintln!("analyze: {} regressed metric(s)", regressions.len());
        1
    }
}

/// Invariant checks for every machine × app × (n, p) point. All findings
/// are unexpected: these inputs are sane.
fn model_pass(report: &mut Report) {
    report.begin("model");
    let machines = [
        ("System G @2.8GHz", MachineParams::system_g(2.8e9)),
        ("System G @2.0GHz", MachineParams::system_g(2.0e9)),
        ("Dori @2.0GHz", MachineParams::dori(2.0e9)),
    ];
    let apps: [Box<dyn AppModel>; 3] = [
        Box::new(FtModel::system_g()),
        Box::new(EpModel::system_g()),
        Box::new(CgModel::system_g()),
    ];
    let mut points = 0;
    for (mname, m) in &machines {
        for app in &apps {
            for n in [(1u64 << 16) as f64, (1u64 << 20) as f64] {
                for p in [1usize, 4, 16, 64] {
                    let a = app.app_params(n, p);
                    points += 1;
                    for finding in check_model(m, &a, p)
                        .into_iter()
                        .chain(check_batch_kernel(m, &a, p))
                    {
                        let ctx = format!("{mname}/{} n={n} p={p}", app.name());
                        report.finding("model", &ctx, finding.to_string(), false);
                    }
                }
            }
        }
    }
    report.progress(&format!(
        "model pass: {points} (machine, app, n, p) points checked \
         (structural + batch-kernel differential)"
    ));
}

/// A correct 4-rank program (point-to-point ring + allreduce) must produce
/// zero findings.
fn clean_comm_pass(report: &mut Report) {
    report.begin("comm");
    let world = World::new(system_g(), 2.8e9);
    let run = mps::run(&world, 4, |ctx| {
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        ctx.send(right, 1, vec![ctx.rank() as u64]);
        let from_left = ctx.recv::<u64>(left, 1);
        ctx.compute(1e5);
        ctx.allreduce_sum(&[from_left[0] as f64]);
    });
    let findings = check_report(&run);
    for finding in &findings {
        report.finding("comm", "clean ring", finding.to_string(), false);
    }
    report.progress(&format!(
        "comm pass: clean 4-rank ring checked ({} findings)",
        findings.len()
    ));
}

/// Seed a 2-rank cross deadlock (both ranks receive before sending) and
/// verify the checker reports the cycle.
fn seeded_deadlock_pass(report: &mut Report) {
    report.begin("deadlock");
    let world = World::new(dori(), 2.0e9);
    let result = try_run(&world, 2, |ctx| {
        let peer = 1 - ctx.rank();
        // Deliberate bug: recv-before-send on both ranks.
        let _ = ctx.recv::<u64>(peer, 7);
        ctx.send(peer, 7, vec![0u64]);
    });
    let Err(RunError::Deadlock(info)) = &result else {
        report.finding(
            "deadlock",
            "seeded",
            "program unexpectedly completed".into(),
            false,
        );
        return;
    };
    let findings = check_deadlock(info);
    let fired = findings
        .iter()
        .any(|f| matches!(f, Finding::DeadlockCycle { .. }));
    for finding in &findings {
        report.finding("deadlock", "seeded", finding.to_string(), true);
    }
    if !fired {
        report.finding(
            "deadlock",
            "seeded",
            "seeded deadlock was NOT detected — checker is broken".into(),
            false,
        );
    }
}

/// Run a traced 4-rank FT kernel and check the recorded spans conform.
fn obs_trace_pass(report: &mut Report) {
    report.begin("trace");
    let world = World::new(system_g(), 2.8e9).with_obs(obs::ObsConfig::enabled());
    let cfg = npb::FtConfig::class(npb::Class::S);
    let run = mps::run(&world, 4, move |ctx| npb::ft_kernel(ctx, cfg));
    let Some(trace) = run.trace("analyze ft") else {
        report.finding(
            "trace",
            "4-rank FT",
            "traced run produced no tracks".into(),
            false,
        );
        return;
    };
    let findings = check_trace(&trace);
    for finding in &findings {
        report.finding("trace", "4-rank FT", finding.to_string(), false);
    }
    report.progress(&format!(
        "trace pass: 4-rank FT, {} spans on {} tracks checked ({} findings)",
        trace.span_count(),
        trace.tracks.len(),
        findings.len()
    ));
}

/// Run a known-size surface sweep on a 4-thread pool and cross-check the
/// pool's task accounting against the model-eval counter.
fn pool_pass(report: &mut Report) {
    report.begin("pool");
    let mach = MachineParams::system_g(2.8e9);
    let ft = FtModel::system_g();
    let fs = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
    let ps = [1usize, 4, 16, 64, 256, 1024];

    let reg = obs::global();
    let tasks = reg.counter("pool.tasks_executed");
    let evals = reg.counter("isoee.model_evals");
    let (tasks0, evals0) = (tasks.get(), evals.get());
    isoee::scaling::ee_surface_pf_with(
        &pool::PoolConfig::with_threads(4),
        &ft,
        &mach,
        (1u64 << 20) as f64,
        &ps,
        &fs,
    )
    .expect("sweep evaluates");
    let findings = check_sweep_accounting(
        fs.len(),
        ps.len(),
        tasks.get() - tasks0,
        evals.get() - evals0,
    );
    for finding in &findings {
        report.finding("pool", "accounting", finding.to_string(), false);
    }
    report.progress(&format!(
        "pool pass: {}x{} sweep on 4 threads checked ({} findings)",
        fs.len(),
        ps.len(),
        findings.len()
    ));
}

/// Static communication-plan certification: analyze the in-tree NPB
/// `CommPlan`s at every requested world size, lower each analysis to
/// Eq. 13/15 interval cost bounds, and cross-validate the verdicts
/// dynamically with the schedule explorer at the smallest p ≤ 4.
/// With `bad` set, a deliberately deadlocking plan is analyzed instead and
/// its findings are recorded as *unexpected* — the exit-1 path.
fn plan_pass(report: &mut Report, ps: &[usize], bad: bool) {
    use plan::{analyze_plan, Cond, Expr, Op, TagExpr};

    report.begin("plan");

    if bad {
        // Head-to-head ring: every rank receives from its right neighbor
        // before sending to it — a full p-cycle of blocked receives.
        let broken = plan::CommPlan::new(
            "seeded-head-to-head",
            vec![
                Op::Recv {
                    from: (Expr::Rank + Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(7)),
                },
                Op::Send {
                    to: (Expr::Rank + Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(7)),
                    bytes: Expr::Const(64),
                },
            ],
        );
        let p = ps.iter().copied().min().unwrap_or(4).max(2);
        let analysis = analyze_plan(&broken, p);
        for f in &analysis.findings {
            report.finding(
                "plan",
                &format!("seeded-head-to-head p={p}"),
                f.to_string(),
                false,
            );
        }
        if analysis.deadlock_free() {
            report.finding(
                "plan",
                &format!("seeded-head-to-head p={p}"),
                "seeded deadlock was NOT detected".into(),
                false,
            );
        }
        return;
    }

    let mach = isoee::interval::MachBox::from_params(&MachineParams::system_g(2.8e9));
    let class = npb::Class::S;
    let plans = [
        ("ft", npb::ft_plan(&npb::FtConfig::class(class)), false),
        ("ep", npb::ep_plan(&npb::EpConfig::class(class)), false),
        // CG's processor grid needs a power-of-two world.
        ("cg", npb::cg_plan(&npb::CgConfig::class(class)), true),
    ];

    for &p in ps {
        for (name, commplan, pow2_only) in &plans {
            if *pow2_only && !p.is_power_of_two() {
                report.progress(&format!("plan pass: {name} skipped at p={p} (needs 2^k)"));
                continue;
            }
            let t0 = std::time::Instant::now();
            let analysis = analyze_plan(commplan, p);
            let cost = isoee::cost_bounds(&analysis, &mach);
            let dt = t0.elapsed();
            if analysis.deadlock_free() {
                report.progress(&format!(
                    "plan pass: {name} p={p}: deadlock-free, {} msgs, {} B, \
                     T_comm in [{:.3e}, {:.3e}] s ({} abstract steps, {dt:?})",
                    cost.messages, cost.bytes, cost.t_comm.lo, cost.t_comm.hi, analysis.steps,
                ));
            } else {
                for f in &analysis.findings {
                    report.finding("plan", &format!("{name} p={p}"), f.to_string(), false);
                }
                if analysis.findings.is_empty() {
                    report.finding(
                        "plan",
                        &format!("{name} p={p}"),
                        "plan not certified (inexact or incomplete) with no findings".into(),
                        false,
                    );
                }
            }
            if !cost.enclosure.baseline_certified() {
                report.finding(
                    "plan",
                    &format!("{name} p={p}"),
                    "cost enclosure failed baseline certification".into(),
                    false,
                );
            }
        }
    }

    // Dynamic cross-validation: explore the lowered plans on a real small
    // world; a statically certified plan must produce no deadlock finding
    // on any explored schedule.
    if let Some(&p) = ps.iter().filter(|&&p| (2..=4).contains(&p)).min() {
        let world = programs::demo_world();
        let explorer = Explorer {
            max_schedules: 4,
            max_depth: 1_000_000,
        };
        for (name, commplan, pow2_only) in &plans {
            if *pow2_only && !p.is_power_of_two() {
                continue;
            }
            let ex = explorer.explore_plan(&world, p, commplan);
            let deadlocks = ex
                .findings
                .iter()
                .filter(|f| matches!(f, VerifyFinding::Deadlock { .. }))
                .count();
            if deadlocks == 0 {
                report.progress(&format!(
                    "plan pass: {name} p={p} cross-validated on {} explored schedule(s)",
                    ex.schedules
                ));
            } else {
                report.finding(
                    "plan",
                    &format!("{name} p={p}"),
                    format!("explorer found {deadlocks} deadlock(s) in a certified plan"),
                    false,
                );
            }
        }
    }

    // The conservatism contract, exercised on a tiny wildcard plan: at
    // p > 2 a RecvAny verdict must never claim exactness.
    let wild = plan::CommPlan::new(
        "wildcard-probe",
        vec![
            Op::IfElse {
                cond: Cond::Ne(Expr::Rank, Expr::Const(0)),
                then: vec![Op::Send {
                    to: Expr::Const(0),
                    tag: TagExpr::Expr(Expr::Const(3)),
                    bytes: Expr::Const(8),
                }],
                els: vec![],
            },
            Op::IfElse {
                cond: Cond::Eq(Expr::Rank, Expr::Const(0)),
                then: vec![Op::Loop {
                    count: Expr::P - Expr::Const(1),
                    body: vec![Op::RecvAny {
                        tag: TagExpr::Expr(Expr::Const(3)),
                    }],
                }],
                els: vec![],
            },
        ],
    );
    let wild_analysis = analyze_plan(&wild, 3);
    if wild_analysis.exact {
        report.finding(
            "plan",
            "wildcard-probe p=3",
            "RecvAny verdict claimed exactness at p > 2".into(),
            false,
        );
    } else {
        // The conservative verdict must carry its witness: which rank's
        // which op first made the analysis inexact.
        match wild_analysis.first_inexact {
            Some(w) => report.progress(&format!(
                "plan pass: wildcard conservatism flagged as expected (first inexact op: {w})"
            )),
            None => report.finding(
                "plan",
                "wildcard-probe p=3",
                "inexact verdict without a first-inexact witness".into(),
                false,
            ),
        }
    }
}

/// The parametric certification pass (`--plan-symbolic`): certify the NPB
/// plans for *every* `p` in their declared domains at once, dump the
/// machine-checkable certificates under `target/plan-certs/`, and decide
/// two static power-cap questions per plan — one generous cap that must
/// accept for all admissible `p`, and the worked 2 kW cap that must be
/// *rejected* with a witness naming the violating `p` range (System G
/// idles at well over 2 kW once the world grows past a few dozen ranks).
///
/// `--plan-symbolic-bad` (`bad`) instead certifies a seeded skewed-shift
/// plan whose offsets do not cancel; the certifier must refuse it with a
/// normalization witness (exit 1 path for CI).
fn plan_symbolic_pass(report: &mut Report, bad: bool) {
    use plan::{certify_plan, Domain, Expr, Op, TagExpr};

    report.begin("plan-symbolic");

    if bad {
        // Everyone sends right by 1 but expects from the left by 2: the
        // k-th receiver is not the k-th sender's target at any p ≥ 3.
        let skew = plan::CommPlan::new(
            "seeded-skewed-shift",
            vec![
                Op::Send {
                    to: (Expr::Rank + Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(9)),
                    bytes: Expr::Const(64),
                },
                Op::Recv {
                    from: (Expr::Rank + Expr::P - Expr::Const(2)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(9)),
                },
            ],
        );
        let cert = certify_plan(&skew, &Domain::at_least(3));
        match &cert.failure {
            Some(f) => {
                report.finding_kind(
                    "plan-symbolic",
                    "symbolic-normalization",
                    "seeded-skewed-shift",
                    format!("certification refused: {f}"),
                    false,
                );
            }
            None => report.finding_kind(
                "plan-symbolic",
                "symbolic-normalization",
                "seeded-skewed-shift",
                "seeded non-bijective shift was NOT refused".into(),
                false,
            ),
        }
        return;
    }

    let mach = isoee::interval::MachBox::from_params(&MachineParams::system_g(2.8e9));
    let class = npb::Class::S;
    // FT/EP certify over all p ≥ 1; for the power-cap sweeps (which
    // enumerate the domain) clamp to the paper-scale p ≤ 4096. CG's grid
    // wants powers of two.
    let plans = [
        (
            "ft",
            npb::ft_plan(&npb::FtConfig::class(class)),
            npb::ft_domain().with_max(4096),
        ),
        (
            "ep",
            npb::ep_plan(&npb::EpConfig::class(class)),
            npb::ep_domain().with_max(4096),
        ),
        (
            "cg",
            npb::cg_plan(&npb::CgConfig::class(class)),
            npb::cg_domain().with_max(4096),
        ),
    ];

    let cert_dir = std::path::Path::new("target/plan-certs");
    let dump = std::fs::create_dir_all(cert_dir).is_ok();

    for (name, commplan, domain) in &plans {
        let t0 = std::time::Instant::now();
        let cert = certify_plan(commplan, domain);
        let dt = t0.elapsed();
        if cert.certified {
            report.progress(&format!(
                "plan-symbolic pass: {name} certified for all {} \
                 ({} obligations, {} base cases, {dt:?})",
                cert.domain,
                cert.obligations.len(),
                cert.base_ps.len(),
            ));
        } else {
            let why = cert
                .failure
                .as_ref()
                .map_or_else(|| "no witness".to_string(), ToString::to_string);
            report.finding_kind(
                "plan-symbolic",
                "symbolic-normalization",
                name,
                format!("certification failed: {why}"),
                false,
            );
            continue;
        }

        // Base-case soundness is part of the certificate; surface a
        // finding if re-validation disagrees (a machine-check of the
        // artifact itself).
        if let Err(e) = cert.revalidate(commplan) {
            report.finding_kind(
                "plan-symbolic",
                "symbolic-base-case",
                name,
                format!("certificate failed re-validation: {e}"),
                false,
            );
        }

        if dump {
            let path = cert_dir.join(format!("{name}.json"));
            if std::fs::write(&path, cert.to_json()).is_ok() {
                report.progress(&format!("  certificate: {}", path.display()));
            }
        }

        // Power-cap verdict 1: a generous facility cap (1 MW) accepts
        // across the whole clamped domain.
        let generous = 1.0e6;
        let v = isoee::power_cap_verdict(&cert, &mach, generous);
        match &v {
            isoee::PowerCapVerdict::AcceptedForAll { ps_checked } => {
                report.progress(&format!(
                    "plan-symbolic pass: {name} under {generous:.0} W for all p \
                     ({ps_checked} world sizes enclosed)"
                ));
            }
            other => report.finding_kind(
                "plan-symbolic",
                "power-cap",
                name,
                format!("expected for-all-p accept under {generous:.0} W, got {other:?}"),
                false,
            ),
        }

        // Power-cap verdict 2: the worked 2 kW cap must be rejected with
        // a violating range — System G's per-rank idle share alone busts
        // 2 kW long before the domain max.
        let cap = 2000.0;
        let v = isoee::power_cap_verdict(&cert, &mach, cap);
        match &v {
            isoee::PowerCapVerdict::Rejected { from_p, to_p } => {
                let to = to_p.map_or_else(|| "∞".to_string(), |p| p.to_string());
                report.progress(&format!(
                    "plan-symbolic pass: {name} over {cap:.0} W for p in [{from_p}, {to}] \
                     (static rejection witness)"
                ));
            }
            other => report.finding_kind(
                "plan-symbolic",
                "power-cap",
                name,
                format!("expected rejection under {cap:.0} W with a witness, got {other:?}"),
                false,
            ),
        }
    }

    // Differential spot-check: the symbolic verdict must agree with the
    // concrete checker at a few sampled world sizes per plan.
    for (name, commplan, domain) in &plans {
        for p in domain.sample(4, 0x5eed) {
            let Ok(pu) = usize::try_from(p) else { continue };
            let a = plan::analyze_plan(commplan, pu);
            if !a.deadlock_free() {
                report.finding_kind(
                    "plan-symbolic",
                    "symbolic-differential",
                    name,
                    format!("concrete checker disagrees with certificate at p={p}"),
                    false,
                );
            }
        }
        report.progress(&format!(
            "plan-symbolic pass: {name} spot-checked against the concrete checker"
        ));
    }
}

/// Write an explorer witness as a Perfetto trace under
/// `target/verify-witnesses/` (best effort — CI uploads these on failure).
fn dump_witness(report: &Report, name: &str, p: usize, schedule: &[verify::Choice]) {
    let dir = std::path::Path::new("target/verify-witnesses");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    let trace = witness_trace(name, p, schedule);
    if obs::perfetto::write_file(&trace, &path).is_ok() {
        report.progress(&format!(
            "  witness: {} ({} steps)",
            path.display(),
            schedule.len()
        ));
    }
}

/// Schedule-space model checking over the seeded example worlds: the clean
/// ring must certify, each seeded bug must be found (expected findings),
/// and a bounded sweep of the real 4-rank FT kernel must stay quiet.
fn verify_explorer_pass(report: &mut Report) {
    report.begin("verify-explorer");
    let world = programs::demo_world();

    // Clean ring: certified, no findings, at several world sizes.
    for p in [2usize, 3, 4] {
        let ex = Explorer::default().explore(&world, p, programs::ring);
        if ex.certified() {
            report.progress(&format!(
                "verify pass: ring p={p} certified over {} schedules",
                ex.schedules
            ));
        } else {
            for f in &ex.findings {
                report.finding(
                    "verify-explorer",
                    &format!("ring p={p}"),
                    f.to_string(),
                    false,
                );
            }
            if ex.truncated {
                report.finding(
                    "verify-explorer",
                    &format!("ring p={p}"),
                    "exploration truncated; certificate unavailable".into(),
                    false,
                );
            }
        }
    }

    // Seeded bugs: each must fire within bounds.
    seeded_explorer_case(
        report,
        &world,
        "cyclic-deadlock",
        programs::cyclic_deadlock,
        |f| matches!(f, VerifyFinding::Deadlock { .. }),
    );
    seeded_explorer_case(
        report,
        &world,
        "wildcard-race",
        programs::wildcard_race,
        |f| matches!(f, VerifyFinding::TagRace { .. }),
    );
    seeded_explorer_case(
        report,
        &world,
        "wildcard-then-specific",
        programs::wildcard_then_specific,
        |f| matches!(f, VerifyFinding::Deadlock { .. }),
    );

    // The real FT kernel at 4 ranks, bounded: any finding is a real bug.
    let bounded = Explorer {
        max_schedules: 24,
        ..Explorer::default()
    };
    let cfg = npb::FtConfig::class(npb::Class::S);
    let ex = bounded.explore(&world, 4, move |ctx| npb::ft_kernel(ctx, cfg));
    for f in &ex.findings {
        report.finding("verify-explorer", "ft p=4", f.to_string(), false);
        let (VerifyFinding::Deadlock { witness, .. }
        | VerifyFinding::TagRace { witness, .. }
        | VerifyFinding::DeliveryOrderNondet {
            witness_a: witness, ..
        }) = f;
        dump_witness(report, "ft-p4-unexpected", 4, witness);
    }
    report.progress(&format!(
        "verify pass: FT p=4 swept {} schedules{} ({} findings)",
        ex.schedules,
        if ex.truncated { " (bounded)" } else { "" },
        ex.findings.len()
    ));
}

/// Run the explorer on a program seeded with exactly one bug class; the
/// matching finding is expected, its absence (or any other finding class)
/// is not.
fn seeded_explorer_case<F>(
    report: &mut Report,
    world: &World,
    name: &str,
    program: fn(&mut mps::Ctx) -> u64,
    is_seeded: F,
) where
    F: Fn(&VerifyFinding) -> bool,
{
    let p = 3;
    let ex = Explorer::default().explore(world, p, program);
    let mut fired = false;
    for f in &ex.findings {
        if is_seeded(f) {
            fired = true;
            report.finding("verify-explorer", name, f.to_string(), true);
            if let VerifyFinding::Deadlock { blocked, witness } = f {
                let minimized =
                    verify::minimize_deadlock::<u64, _>(world, p, program, witness, blocked);
                report.progress(&format!(
                    "  minimized witness: {} -> {} steps",
                    witness.len(),
                    minimized.len()
                ));
                dump_witness(report, name, p, witness);
            } else if let VerifyFinding::TagRace { witness, .. } = f {
                dump_witness(report, name, p, witness);
            }
        }
    }
    if !fired {
        report.finding(
            "verify-explorer",
            name,
            format!(
                "seeded bug NOT detected in {} schedules — explorer is broken",
                ex.schedules
            ),
            false,
        );
    }
}

/// Interval pre-certification of the Fig 5–9 sweep grids (the exact grids
/// `tests/figure_shapes.rs` sweeps) and box bisection over the NPB
/// workload ranges. A degenerate cell or box is a real model bug.
fn verify_interval_pass(report: &mut Report) {
    report.begin("verify-interval");
    let mach = MachineParams::system_g(2.8e9);
    let (ft, ep, cg) = (
        FtModel::system_g(),
        EpModel::system_g(),
        CgModel::system_g(),
    );
    const DVFS: [f64; 4] = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
    const PS: [usize; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let fig6_ns: Vec<f64> = (0..6).map(|k| f64::from(1u32 << (18 + k))).collect();
    let fig8_ns: Vec<f64> = (0..5).map(|k| 75_000.0 * f64::from(1u32 << k)).collect();

    let grids: [(&str, GridCertification, usize); 5] = [
        (
            "fig5 FT (p,f)",
            certify_pf_grid(&ft, &mach, (1u64 << 20) as f64, &PS, &DVFS),
            PS.len() * DVFS.len(),
        ),
        (
            "fig6 FT (p,n)",
            certify_pn_grid(&ft, &mach, &[16, 64, 256, 1024], &fig6_ns),
            4 * fig6_ns.len(),
        ),
        (
            "fig7 EP (p,f)",
            certify_pf_grid(
                &ep,
                &mach,
                (1u64 << 22) as f64,
                &[1, 2, 4, 8, 16, 32, 64, 128],
                &DVFS,
            ),
            8 * DVFS.len(),
        ),
        (
            "fig8 CG (p,n)",
            certify_pn_grid(&cg, &mach, &[16, 64, 256], &fig8_ns),
            3 * fig8_ns.len(),
        ),
        (
            "fig9 CG (p,f)",
            certify_pf_grid(&cg, &mach, 75_000.0, &PS, &DVFS),
            PS.len() * DVFS.len(),
        ),
    ];
    for (name, cert, cells) in &grids {
        if let Some((index, error)) = cert.degenerate {
            report.finding(
                "verify-interval",
                name,
                format!("degenerate cell at row-major index {index}: {error}"),
                false,
            );
        } else {
            report.progress(&format!(
                "verify pass: {name} certified degenerate-free \
                 ({}/{cells} cells by interval, {} exact)",
                cert.interval_cells, cert.exact_cells
            ));
        }
    }

    let apps: [(&str, &dyn AppModel); 3] = [("FT", &ft), ("EP", &ep), ("CG", &cg)];
    for (name, app) in apps {
        let ctx = format!("{name} workload box");
        match BoxSearch::default().certify_workload(app, &mach, Interval::new(1e5, 4e6), 64) {
            BoxOutcome::Clean { certified_boxes } => report.progress(&format!(
                "verify pass: {name} EE in (0,1] over n in [1e5, 4e6] at p=64 \
                 ({certified_boxes} certified sub-boxes)"
            )),
            BoxOutcome::Degenerate { sub_box, error } => report.finding(
                "verify-interval",
                &ctx,
                format!("degenerate sub-box {sub_box}: {error}"),
                false,
            ),
            BoxOutcome::Inconclusive { sub_box } => report.finding(
                "verify-interval",
                &ctx,
                format!("bisection inconclusive on {sub_box}"),
                false,
            ),
        }
    }
}

/// Validate an emitted Perfetto trace-event file (already read by the
/// argument parser, so unreadable files are a usage error, not a finding).
fn perfetto_file_pass(report: &mut Report, path: &str, text: &str) {
    report.begin("perfetto");
    match obs::perfetto::validate(text) {
        Ok(rep) => report.progress(&format!(
            "perfetto pass: {path} valid ({} span events on {} tracks, \
             {} counter events)",
            rep.span_events,
            rep.span_tracks.len(),
            rep.counter_events
        )),
        Err(errors) => {
            for e in &errors {
                report.finding("perfetto", path, e.0.clone(), false);
            }
        }
    }
}
