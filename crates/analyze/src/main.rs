//! Workspace analysis gate: `cargo run -p analyze`.
//!
//! Runs three passes and exits non-zero if any *unexpected* finding
//! surfaces:
//!
//! 1. Model invariants over both machine vectors (System G, Dori) crossed
//!    with the NPB application models at several `(n, p, f)` points.
//! 2. Communication-trace checks over a clean mps program (must be quiet).
//! 3. A seeded deadlock, to prove the detector actually fires (expected
//!    findings, clearly labelled).
//! 4. Trace conformance over the obs spans of a traced 4-rank FT run
//!    (every span closed, charges inside phases, virtual time monotone).
//! 5. Sweep accounting: a known-size parallel surface sweep must advance
//!    `pool.tasks_executed` by exactly one per row and `isoee.model_evals`
//!    by exactly rows x cols — the pool neither drops nor re-runs work.
//!
//! Pass `--trace <file.json>` to additionally validate an emitted Perfetto
//! trace-event file (as written by `examples/trace_ft.rs` or
//! `OBS_TRACE=... fig10`) with the obs JSON validator.

use analyze::{
    check_deadlock, check_model, check_report, check_sweep_accounting, check_trace, Finding,
};
use isoee::apps::{AppModel, CgModel, EpModel, FtModel};
use isoee::MachineParams;
use mps::{try_run, RunError, World};
use simcluster::{dori, system_g};

fn main() {
    let mut unexpected = 0usize;

    unexpected += model_pass();
    unexpected += clean_comm_pass();
    let fired = seeded_deadlock_pass();
    unexpected += obs_trace_pass();
    unexpected += pool_pass();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("analyze: --trace needs a file path");
                std::process::exit(2);
            });
            unexpected += perfetto_file_pass(&path);
        }
    }

    if !fired {
        eprintln!("analyze: seeded deadlock was NOT detected — checker is broken");
        unexpected += 1;
    }
    if unexpected > 0 {
        eprintln!("analyze: {unexpected} unexpected finding(s)");
        std::process::exit(1);
    }
    println!("analyze: all passes clean");
}

/// Invariant checks for every machine × app × (n, p) point. Returns the
/// number of findings (all unexpected: these inputs are sane).
fn model_pass() -> usize {
    let machines = [
        ("System G @2.8GHz", MachineParams::system_g(2.8e9)),
        ("System G @2.0GHz", MachineParams::system_g(2.0e9)),
        ("Dori @2.0GHz", MachineParams::dori(2.0e9)),
    ];
    let apps: [Box<dyn AppModel>; 3] = [
        Box::new(FtModel::system_g()),
        Box::new(EpModel::system_g()),
        Box::new(CgModel::system_g()),
    ];
    let mut count = 0;
    let mut points = 0;
    for (mname, m) in &machines {
        for app in &apps {
            for n in [(1u64 << 16) as f64, (1u64 << 20) as f64] {
                for p in [1usize, 4, 16, 64] {
                    let a = app.app_params(n, p);
                    points += 1;
                    for finding in check_model(m, &a, p) {
                        eprintln!(
                            "analyze[model {mname}/{} n={n} p={p}]: {finding}",
                            app.name()
                        );
                        count += 1;
                    }
                }
            }
        }
    }
    println!("model pass: {points} (machine, app, n, p) points checked");
    count
}

/// A correct 4-rank program (point-to-point ring + allreduce) must produce
/// zero findings. Returns the number of findings.
fn clean_comm_pass() -> usize {
    let world = World::new(system_g(), 2.8e9);
    let report = mps::run(&world, 4, |ctx| {
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        ctx.send(right, 1, vec![ctx.rank() as u64]);
        let from_left = ctx.recv::<u64>(left, 1);
        ctx.compute(1e5);
        ctx.allreduce_sum(&[from_left[0] as f64]);
    });
    let findings = check_report(&report);
    for finding in &findings {
        eprintln!("analyze[clean ring]: {finding}");
    }
    println!(
        "comm pass: clean 4-rank ring checked ({} findings)",
        findings.len()
    );
    findings.len()
}

/// Seed a 2-rank cross deadlock (both ranks receive before sending) and
/// verify the checker reports the cycle. Returns true iff it fired.
fn seeded_deadlock_pass() -> bool {
    let world = World::new(dori(), 2.0e9);
    let result = try_run(&world, 2, |ctx| {
        let peer = 1 - ctx.rank();
        // Deliberate bug: recv-before-send on both ranks.
        let _ = ctx.recv::<u64>(peer, 7);
        ctx.send(peer, 7, vec![0u64]);
    });
    let Err(RunError::Deadlock(info)) = &result else {
        eprintln!("analyze[seeded deadlock]: program unexpectedly completed");
        return false;
    };
    let findings = check_deadlock(info);
    for finding in &findings {
        println!("seeded deadlock (expected): {finding}");
    }
    findings
        .iter()
        .any(|f| matches!(f, Finding::DeadlockCycle { .. }))
}

/// Run a traced 4-rank FT kernel and check the recorded spans conform.
/// Returns the number of findings (all unexpected: the instrumentation is
/// ours).
fn obs_trace_pass() -> usize {
    let world = World::new(system_g(), 2.8e9).with_obs(obs::ObsConfig::enabled());
    let cfg = npb::FtConfig::class(npb::Class::S);
    let report = mps::run(&world, 4, move |ctx| npb::ft_kernel(ctx, cfg));
    let Some(trace) = report.trace("analyze ft") else {
        eprintln!("analyze[obs trace]: traced run produced no tracks");
        return 1;
    };
    let findings = check_trace(&trace);
    for finding in &findings {
        eprintln!("analyze[obs trace]: {finding}");
    }
    println!(
        "trace pass: 4-rank FT, {} spans on {} tracks checked ({} findings)",
        trace.span_count(),
        trace.tracks.len(),
        findings.len()
    );
    findings.len()
}

/// Run a known-size surface sweep on a 4-thread pool and cross-check the
/// pool's task accounting against the model-eval counter. Returns the
/// number of findings (all unexpected: the grid size is known exactly).
fn pool_pass() -> usize {
    let mach = MachineParams::system_g(2.8e9);
    let ft = FtModel::system_g();
    let fs = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
    let ps = [1usize, 4, 16, 64, 256, 1024];

    let reg = obs::global();
    let tasks = reg.counter("pool.tasks_executed");
    let evals = reg.counter("isoee.model_evals");
    let (tasks0, evals0) = (tasks.get(), evals.get());
    isoee::scaling::ee_surface_pf_with(
        &pool::PoolConfig::with_threads(4),
        &ft,
        &mach,
        (1u64 << 20) as f64,
        &ps,
        &fs,
    )
    .expect("sweep evaluates");
    let findings = check_sweep_accounting(
        fs.len(),
        ps.len(),
        tasks.get() - tasks0,
        evals.get() - evals0,
    );
    for finding in &findings {
        eprintln!("analyze[pool accounting]: {finding}");
    }
    println!(
        "pool pass: {}x{} sweep on 4 threads checked ({} findings)",
        fs.len(),
        ps.len(),
        findings.len()
    );
    findings.len()
}

/// Validate an emitted Perfetto trace-event file. Returns the number of
/// validation errors.
fn perfetto_file_pass(path: &str) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("analyze[perfetto {path}]: cannot read: {e}");
            return 1;
        }
    };
    match obs::perfetto::validate(&text) {
        Ok(rep) => {
            println!(
                "perfetto pass: {path} valid ({} span events on {} tracks, \
                 {} counter events)",
                rep.span_events,
                rep.span_tracks.len(),
                rep.counter_events
            );
            0
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("analyze[perfetto {path}]: {}", e.0);
            }
            errors.len()
        }
    }
}
