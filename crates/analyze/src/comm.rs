//! The MPS communication-graph checker.
//!
//! Consumes the per-rank [`CommLog`]s of a completed [`RunReport`] — or the
//! partial traces and wait-for chain of a [`DeadlockInfo`] — and reports:
//!
//! * **Deadlock cycles / stuck chains** straight from the runtime's wait-for
//!   verdict, re-labelled as findings.
//! * **Tag mismatches**: a blocked receive whose peer actually sent a
//!   message under a different tag (the classic mistyped-constant bug).
//! * **Unconsumed messages**: sends that no receive ever matched.
//! * **Message races**: two sends to the same destination with the same tag
//!   whose vector clocks are incomparable, so delivery order depends on the
//!   scheduler. With source-addressed receives these are benign for
//!   correctness but still mark nondeterministic arrival interleavings.

use mps::{CommLog, CommOp, DeadlockInfo, RunError, RunReport};

use crate::Finding;

/// Analyze the traces of a *completed* run: unconsumed messages and message
/// races. A clean report returns an empty list.
pub fn check_report<R>(report: &RunReport<R>) -> Vec<Finding> {
    check_comm_logs(&report.comm_logs())
}

/// Analyze a bare set of per-rank communication logs — the log-level entry
/// point behind [`check_report`], usable on synthetic or replayed traces.
#[must_use]
pub fn check_comm_logs(logs: &[&CommLog]) -> Vec<Finding> {
    let mut findings = Vec::new();
    unconsumed_findings(logs, &mut findings);
    race_findings(logs, &mut findings);
    findings
}

/// Analyze a deadlocked run: the offending cycle or stuck chain, plus any
/// tag mismatch that explains it, plus everything [`check_report`] finds in
/// the partial traces.
#[must_use]
pub fn check_deadlock(info: &DeadlockInfo) -> Vec<Finding> {
    let mut findings = Vec::new();
    if info.cyclic {
        findings.push(Finding::DeadlockCycle {
            edges: info.edges.clone(),
        });
    } else {
        findings.push(Finding::StuckOnFinished {
            edges: info.edges.clone(),
        });
    }
    // A blocked edge whose awaited peer *did* send something — under a
    // different tag — is a tag mismatch, the likeliest root cause.
    for edge in &info.edges {
        let Some(log) = info.comm.iter().find(|l| l.rank == edge.from_rank) else {
            continue;
        };
        for &(source, tag, _bytes) in &log.unconsumed {
            if edge.on_rank == Some(source) && tag != edge.tag {
                findings.push(Finding::TagMismatch {
                    sender: source,
                    receiver: edge.from_rank,
                    sent_tag: tag,
                    expected_tag: edge.tag,
                });
            }
        }
    }
    let logs: Vec<&CommLog> = info.comm.iter().collect();
    race_findings(&logs, &mut findings);
    findings
}

/// Analyze either outcome of [`mps::try_run`]: a completed report goes
/// through [`check_report`], a deadlock through [`check_deadlock`]. A
/// scheduler-hook teardown has no wait-for verdict; its partial traces go
/// through the log-level checks.
pub fn check_run<R>(result: &Result<RunReport<R>, RunError>) -> Vec<Finding> {
    match result {
        Ok(report) => check_report(report),
        Err(RunError::Deadlock(info)) => check_deadlock(info),
        Err(RunError::SchedulerAbort { comm }) => {
            let logs: Vec<&CommLog> = comm.iter().collect();
            check_comm_logs(&logs)
        }
    }
}

fn unconsumed_findings(logs: &[&CommLog], findings: &mut Vec<Finding>) {
    for log in logs {
        for &(source, tag, bytes) in &log.unconsumed {
            findings.push(Finding::UnconsumedMessage {
                sender: source,
                receiver: log.rank,
                tag,
                bytes,
            });
        }
    }
}

/// Find pairs of concurrent sends targeting the same `(destination, tag)`.
/// Only user-level tags are considered: internal collective tags are
/// sequence-numbered by construction and cannot race.
fn race_findings(logs: &[&CommLog], findings: &mut Vec<Finding>) {
    // (dst, tag) -> [(sender, event)]
    let mut by_target: std::collections::BTreeMap<(usize, u64), Vec<(usize, &mps::CommEvent)>> =
        std::collections::BTreeMap::new();
    for log in logs {
        for event in log.sends() {
            let CommOp::Send { to } = event.op else {
                continue;
            };
            if event.tag < mps::USER_TAG_LIMIT {
                by_target
                    .entry((to, event.tag))
                    .or_default()
                    .push((log.rank, event));
            }
        }
    }
    for ((dst, tag), sends) in by_target {
        for (i, (rank_a, ev_a)) in sends.iter().enumerate() {
            for (rank_b, ev_b) in &sends[i + 1..] {
                if rank_a != rank_b && ev_a.concurrent_with(ev_b) {
                    findings.push(Finding::MessageRace {
                        senders: (*rank_a.min(rank_b), *rank_a.max(rank_b)),
                        receiver: dst,
                        tag,
                    });
                }
            }
        }
    }
    // A racing pair may exchange many messages; one finding per pair+target
    // is enough to act on.
    findings.dedup();
}
