//! The model-invariant pass: dimensional sanity of the Table-1/Table-2
//! parameter vectors and the structural facts of Eqs. 13–21.
//!
//! Everything here reports [`Finding`]s instead of panicking, so a seeded
//! unit-inconsistent vector (a negative latency, a NaN power delta) is
//! *detected*, not crashed on — the analyzer's whole point.

use isoee::{model, AppParams, MachineParams};
use simcluster::units::{Accesses, Bytes, Instructions, Joules, Messages, Seconds};

use crate::Finding;

/// Relative tolerance for the floating-point identities checked below.
const REL_TOL: f64 = 1e-9;

/// Dimensional sanity of a machine vector (Table 1): latencies must be
/// positive finite durations, powers non-negative finite, the DVFS state
/// physically meaningful.
#[must_use]
pub fn check_machine(m: &MachineParams) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut positive = |name: &'static str, v: f64| {
        if !(v.is_finite() && v > 0.0) {
            findings.push(Finding::InvalidParameter {
                name,
                value: v,
                requirement: "a positive finite magnitude",
            });
        }
    };
    positive("tc", m.tc.raw());
    positive("tm", m.tm.raw());
    positive("ts", m.ts.raw());
    positive("tw", m.tw.raw());
    positive("f_hz", m.f_hz);
    positive("f_ref_hz", m.f_ref_hz);
    positive("cpi", m.cpi);
    let mut non_negative = |name: &'static str, v: f64| {
        if !(v.is_finite() && v >= 0.0) {
            findings.push(Finding::InvalidParameter {
                name,
                value: v,
                requirement: "a non-negative finite power",
            });
        }
    };
    non_negative("P_sys_idle", m.p_sys_idle.raw());
    non_negative("dPc", m.delta_pc.raw());
    non_negative("dPm", m.delta_pm.raw());
    non_negative("dP_nic", m.delta_pnic.raw());
    non_negative("dP_io", m.delta_pio.raw());
    if !(m.gamma.is_finite() && m.gamma >= 1.0) {
        findings.push(Finding::InvalidParameter {
            name: "gamma",
            value: m.gamma,
            requirement: "finite and >= 1 (Eq. 20)",
        });
    }
    // Cross-check the frequency law: tc must equal CPI / f. A vector that
    // fails this was assembled from inconsistent units (e.g. tc in
    // nanoseconds against f in Hz).
    if findings.is_empty() {
        let derived = Instructions::new(m.cpi) / simcluster::units::Hertz::new(m.f_hz);
        if (m.tc - derived).abs() > Seconds::new(REL_TOL * derived.raw().max(f64::MIN_POSITIVE)) {
            findings.push(Finding::BrokenInvariant {
                invariant: "tc == CPI / f",
                details: format!("tc = {}, but CPI/f = {}", m.tc, derived),
            });
        }
    }
    findings
}

/// Dimensional sanity of an application vector (Table 2) — the
/// non-panicking analogue of [`AppParams::validate`].
#[must_use]
pub fn check_app(a: &AppParams) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !(a.alpha.is_finite() && a.alpha > 0.0 && a.alpha <= 1.0) {
        findings.push(Finding::InvalidParameter {
            name: "alpha",
            value: a.alpha,
            requirement: "in (0, 1]",
        });
    }
    if !(a.wc.is_finite() && a.wc >= Instructions::ZERO) {
        findings.push(Finding::InvalidParameter {
            name: "Wc",
            value: a.wc.raw(),
            requirement: "a non-negative finite workload",
        });
    }
    if !(a.wm.is_finite() && a.wm >= Accesses::ZERO) {
        findings.push(Finding::InvalidParameter {
            name: "Wm",
            value: a.wm.raw(),
            requirement: "a non-negative finite workload",
        });
    }
    // Overheads may be negative (strong-scaling memory relief) but totals
    // must stay physical.
    if !a.woc.is_finite() || a.wc + a.woc < Instructions::ZERO {
        findings.push(Finding::InvalidParameter {
            name: "Woc",
            value: a.woc.raw(),
            requirement: "finite with Wc + Woc >= 0",
        });
    }
    if !a.wom.is_finite() || a.wm + a.wom < Accesses::ZERO {
        findings.push(Finding::InvalidParameter {
            name: "Wom",
            value: a.wom.raw(),
            requirement: "finite with Wm + Wom >= 0",
        });
    }
    if !(a.messages.is_finite() && a.messages >= Messages::ZERO) {
        findings.push(Finding::InvalidParameter {
            name: "M",
            value: a.messages.raw(),
            requirement: "a non-negative finite count",
        });
    }
    if !(a.bytes.is_finite() && a.bytes >= Bytes::ZERO) {
        findings.push(Finding::InvalidParameter {
            name: "B",
            value: a.bytes.raw(),
            requirement: "a non-negative finite count",
        });
    }
    if !(a.t_io.is_finite() && a.t_io >= Seconds::ZERO) {
        findings.push(Finding::InvalidParameter {
            name: "T_IO",
            value: a.t_io.raw(),
            requirement: "a non-negative finite duration",
        });
    }
    findings
}

/// The model's structural invariants at one `(Mach, Appl, p)` point:
///
/// * `E1 > 0` (a positive workload burns positive energy);
/// * `EEF >= 0` whenever all overheads are non-negative;
/// * `EE ∈ (0, 1]` under the same condition;
/// * `Ep >= E1` (running on more processors can't spend *less* than the
///   sequential baseline when overheads are non-negative), with equality
///   for the zero-overhead ideal app.
///
/// Parameter-vector findings from [`check_machine`]/[`check_app`] are
/// returned first; the model is only evaluated on sane vectors.
#[must_use]
pub fn check_model(m: &MachineParams, a: &AppParams, p: usize) -> Vec<Finding> {
    let mut findings = check_machine(m);
    findings.extend(check_app(a));
    if !findings.is_empty() {
        return findings;
    }

    let e1 = model::e1(m, a);
    let ep = model::ep(m, a, p);
    if !(e1.is_finite() && e1 > Joules::ZERO) {
        findings.push(Finding::BrokenInvariant {
            invariant: "E1 > 0",
            details: format!("E1 = {e1} for a non-degenerate workload"),
        });
        return findings;
    }

    let non_negative_overheads = a.woc >= Instructions::ZERO
        && a.wom >= Accesses::ZERO
        && a.messages >= Messages::ZERO
        && a.bytes >= Bytes::ZERO;
    let tol = Joules::new(REL_TOL * e1.raw().max(1.0));

    match model::eef(m, a, p) {
        Ok(eef) => {
            if non_negative_overheads && eef < -REL_TOL {
                findings.push(Finding::BrokenInvariant {
                    invariant: "EEF >= 0",
                    details: format!("EEF = {eef} with non-negative overheads at p = {p}"),
                });
            }
            let ee = 1.0 / (1.0 + eef);
            if non_negative_overheads && !(ee > 0.0 && ee <= 1.0 + REL_TOL) {
                findings.push(Finding::BrokenInvariant {
                    invariant: "EE in (0, 1]",
                    details: format!("EE = {ee} at p = {p}"),
                });
            }
        }
        Err(err) => findings.push(Finding::BrokenInvariant {
            invariant: "EEF is defined",
            details: err.to_string(),
        }),
    }

    if non_negative_overheads && ep < e1 - tol {
        findings.push(Finding::BrokenInvariant {
            invariant: "Ep >= E1",
            details: format!("Ep = {ep} < E1 = {e1} at p = {p}"),
        });
    }
    let zero_overheads = a.woc == Instructions::ZERO
        && a.wom == Accesses::ZERO
        && a.messages == Messages::ZERO
        && a.bytes == Bytes::ZERO;
    if zero_overheads && (ep - e1).abs() > tol {
        findings.push(Finding::BrokenInvariant {
            invariant: "Ep == E1 for the ideal app",
            details: format!("Ep = {ep} vs E1 = {e1} at p = {p}"),
        });
    }
    findings
}

/// Differential cross-check of the batched columnar kernel against the
/// scalar model at one `(Mach, Appl, p)` point: every Eq. 5–15 term and
/// both ratios must be **bit-identical** (`f64::to_bits`) across the two
/// paths — the analyzer-side mirror of `tests/batch_equivalence.rs`,
/// runnable on any parameter vector the other passes visit.
#[must_use]
pub fn check_batch_kernel(m: &MachineParams, a: &AppParams, p: usize) -> Vec<Finding> {
    fn bit_mismatch(invariant: &'static str, p: usize, batch: f64, scalar: f64) -> Option<Finding> {
        (batch.to_bits() != scalar.to_bits()).then(|| Finding::BrokenInvariant {
            invariant,
            details: format!(
                "batch kernel diverged from the scalar model at p = {p}: \
                 {batch:?} vs {scalar:?} ({:#018x} vs {:#018x})",
                batch.to_bits(),
                scalar.to_bits()
            ),
        })
    }
    let mut findings = Vec::new();
    let ev = isoee::batch::evaluate(m, a, p);
    let terms = [
        (
            "batch T1 == model T1",
            ev.terms.t1.raw(),
            model::t1(m, a).raw(),
        ),
        (
            "batch Tp == model Tp",
            ev.terms.tp.raw(),
            model::tp(m, a, p).raw(),
        ),
        (
            "batch E1 == model E1",
            ev.terms.e1.raw(),
            model::e1(m, a).raw(),
        ),
        (
            "batch Ep == model Ep",
            ev.terms.ep.raw(),
            model::ep(m, a, p).raw(),
        ),
    ];
    for (invariant, batch, scalar) in terms {
        findings.extend(bit_mismatch(invariant, p, batch, scalar));
    }
    match (ev.ee, model::ee(m, a, p)) {
        (Ok(b), Ok(s)) => findings.extend(bit_mismatch("batch EE == model EE", p, b, s)),
        (Err(_), Err(_)) => {}
        (b, s) => findings.push(Finding::BrokenInvariant {
            invariant: "batch EE degenerate iff model EE degenerate",
            details: format!("batch {b:?} vs scalar {s:?} at p = {p}"),
        }),
    }
    match (ev.eef, model::eef(m, a, p)) {
        (Ok(b), Ok(s)) => findings.extend(bit_mismatch("batch EEF == model EEF", p, b, s)),
        (Err(_), Err(_)) => {}
        (b, s) => findings.push(Finding::BrokenInvariant {
            invariant: "batch EEF degenerate iff model EEF degenerate",
            details: format!("batch {b:?} vs scalar {s:?} at p = {p}"),
        }),
    }
    findings
}

/// Accounting cross-check for one pooled surface sweep of `rows × cols`
/// points: the pool must report exactly one executed task per row (the
/// sweep's unit of parallelism), and the model-eval counter must have
/// advanced exactly `rows × cols` — every grid point evaluated once, none
/// skipped, none double-counted. `task_delta` / `eval_delta` are the
/// `pool.tasks_executed` / `isoee.model_evals` counter deltas observed
/// across the sweep.
///
/// Because the sweep engine's reduction is index-ordered and its per-row
/// error handling short-circuits *within* a row only, these equalities
/// hold at every thread count; a miss means a task ran twice, a row was
/// dropped, or an evaluation bypassed the counted path.
#[must_use]
pub fn check_sweep_accounting(
    rows: usize,
    cols: usize,
    task_delta: u64,
    eval_delta: u64,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let rows_u64 = rows as u64;
    let points = rows_u64 * cols as u64;
    if task_delta != rows_u64 {
        findings.push(Finding::BrokenInvariant {
            invariant: "pool tasks == sweep rows",
            details: format!(
                "pool.tasks_executed advanced by {task_delta} across a \
                 {rows}x{cols} sweep (expected {rows_u64})"
            ),
        });
    }
    if eval_delta != points {
        findings.push(Finding::BrokenInvariant {
            invariant: "model evals == rows * cols",
            details: format!(
                "isoee.model_evals advanced by {eval_delta} across a \
                 {rows}x{cols} sweep (expected {points})"
            ),
        });
    }
    findings
}
