//! Static/dynamic analysis passes over the workspace's two artifact kinds:
//!
//! * **Communication traces** ([`comm`]) — the wait-for graphs, vector
//!   clocks and unconsumed-message pools produced by `crates/mps`. The
//!   checker reports deadlock cycles, receives stuck on finished ranks,
//!   tag-mismatched send/receive pairs, messages sent but never received,
//!   and message races (concurrent same-destination same-tag sends whose
//!   delivery order is scheduler-dependent).
//! * **Model parameter vectors** ([`invariants`]) — the Table-1/Table-2
//!   inputs and Eqs. 13–21 outputs of `crates/isoee`. The invariant pass
//!   flags dimensionally inconsistent machine vectors (non-finite or
//!   non-positive latencies, negative powers), invalid application vectors,
//!   and violations of the model's structural facts (`EEF ≥ 0` for
//!   non-negative overheads, `EE ∈ (0, 1]`, `Ep ≥ E1`).
//!
//! Both passes return [`Finding`] lists rather than panicking, so they can
//! gate CI (`cargo run -p analyze`) and back the debug-mode assertions in
//! the runtime.

#![forbid(unsafe_code)]

pub mod comm;
pub mod invariants;
pub mod trace;

pub use comm::{check_comm_logs, check_deadlock, check_report, check_run};
pub use invariants::{
    check_app, check_batch_kernel, check_machine, check_model, check_sweep_accounting,
};
pub use trace::check_trace;

use mps::WaitEdge;

/// One analyzer finding. `Display` renders a single human-readable line;
/// the structured fields keep ranks/tags/values available to tests and
/// tooling.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// A cycle of ranks each blocked receiving from the next.
    DeadlockCycle {
        /// The cycle's wait-for edges, in wait order (the last edge waits
        /// on the first edge's rank).
        edges: Vec<WaitEdge>,
    },
    /// A chain of blocked ranks ending at a rank that already finished, so
    /// the awaited message can never arrive.
    StuckOnFinished {
        /// The blocked chain, ending with the edge onto the finished rank.
        edges: Vec<WaitEdge>,
    },
    /// A blocked receive whose peer *did* send a message — under a
    /// different tag. Almost always a mistyped tag constant.
    TagMismatch {
        /// The sending rank.
        sender: usize,
        /// The blocked receiving rank.
        receiver: usize,
        /// The tag actually sent (sitting unconsumed in the inbox).
        sent_tag: u64,
        /// The tag the receiver is blocked waiting for.
        expected_tag: u64,
    },
    /// A message that was sent but never received by the time its
    /// destination rank finished.
    UnconsumedMessage {
        /// The sending rank.
        sender: usize,
        /// The rank whose inbox still holds the message.
        receiver: usize,
        /// The message tag.
        tag: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Two sends to the same destination with the same tag whose vector
    /// clocks are incomparable: delivery order is scheduler-dependent.
    MessageRace {
        /// The two sending ranks.
        senders: (usize, usize),
        /// The common destination.
        receiver: usize,
        /// The common tag.
        tag: u64,
    },
    /// A machine or application parameter violates dimensional sanity
    /// (non-finite, or signed where physics demands non-negative).
    InvalidParameter {
        /// Parameter name as in the paper's Tables 1–2 (e.g. `tc`, `Wm`).
        name: &'static str,
        /// The offending raw magnitude.
        value: f64,
        /// What the parameter must satisfy.
        requirement: &'static str,
    },
    /// A model-level structural invariant of Eqs. 13–21 failed.
    BrokenInvariant {
        /// Which invariant (e.g. `EEF >= 0`).
        invariant: &'static str,
        /// Human-readable details with the offending values.
        details: String,
    },
    /// An obs span the instrumentation never closed (the recorder had to
    /// force-close it at end of run).
    UnclosedSpan {
        /// Track (rank) id.
        track: usize,
        /// Span name.
        name: String,
        /// Span start, virtual seconds.
        start_s: f64,
    },
    /// Per-track virtual time went backwards: an invalid span interval,
    /// out-of-order span starts, or out-of-order instants/counter samples.
    /// `track == usize::MAX` marks a trace-wide counter track.
    NonMonotoneTrace {
        /// Track (rank) id, or `usize::MAX` for a counter track.
        track: usize,
        /// Offending span/event/counter name.
        name: String,
        /// The timestamp that went backwards, virtual seconds.
        time_s: f64,
        /// The timestamp it had to be at or beyond.
        prev_s: f64,
    },
    /// A counter-track sample that is NaN or infinite — Perfetto renders
    /// such points as gaps and downstream statistics silently poison.
    NonFiniteCounterSample {
        /// Counter track name.
        name: String,
        /// Sample timestamp, virtual seconds.
        time_s: f64,
        /// The offending value, rendered for the report (`NaN`, `inf`, …).
        value: String,
    },
    /// A counter track declaring a unit outside the workspace vocabulary,
    /// so dashboards and the bench differ cannot interpret it.
    UnknownCounterUnit {
        /// Counter track name.
        name: String,
        /// The undeclared unit string.
        unit: String,
    },
    /// A charge span (compute/memory/network/io/wait) not covered by any
    /// enclosing phase span, so per-phase attribution would lose it.
    ChargeOutsidePhase {
        /// Track (rank) id.
        track: usize,
        /// Charge span name.
        name: String,
        /// Charge start, virtual seconds.
        start_s: f64,
        /// Charge end, virtual seconds.
        end_s: f64,
    },
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::DeadlockCycle { edges } => {
                write!(f, "deadlock cycle: ")?;
                join_edges(f, edges)
            }
            Finding::StuckOnFinished { edges } => {
                write!(f, "blocked on a finished rank: ")?;
                join_edges(f, edges)
            }
            Finding::TagMismatch {
                sender,
                receiver,
                sent_tag,
                expected_tag,
            } => write!(
                f,
                "tag mismatch: rank {receiver} waits for tag {expected_tag} from rank \
                 {sender}, which sent tag {sent_tag}"
            ),
            Finding::UnconsumedMessage {
                sender,
                receiver,
                tag,
                bytes,
            } => write!(
                f,
                "unconsumed message: rank {sender} -> rank {receiver} (tag {tag}, \
                 {bytes} B) was never received"
            ),
            Finding::MessageRace {
                senders,
                receiver,
                tag,
            } => write!(
                f,
                "message race: ranks {} and {} send concurrently to rank {receiver} \
                 with tag {tag}",
                senders.0, senders.1
            ),
            Finding::InvalidParameter {
                name,
                value,
                requirement,
            } => {
                write!(
                    f,
                    "invalid parameter: {name} = {value} must be {requirement}"
                )
            }
            Finding::BrokenInvariant { invariant, details } => {
                write!(f, "broken invariant {invariant}: {details}")
            }
            Finding::UnclosedSpan {
                track,
                name,
                start_s,
            } => write!(
                f,
                "unclosed span: {name:?} on track {track} (opened at {start_s:.6} s) \
                 was force-closed at end of run"
            ),
            Finding::NonMonotoneTrace {
                track,
                name,
                time_s,
                prev_s,
            } => {
                if *track == usize::MAX {
                    write!(
                        f,
                        "non-monotone trace: {name} jumps back to {time_s:.6} s \
                         after {prev_s:.6} s"
                    )
                } else {
                    write!(
                        f,
                        "non-monotone trace: {name:?} on track {track} jumps back to \
                         {time_s:.6} s after {prev_s:.6} s"
                    )
                }
            }
            Finding::NonFiniteCounterSample {
                name,
                time_s,
                value,
            } => write!(
                f,
                "non-finite counter sample: {name} = {value} at {time_s:.6} s"
            ),
            Finding::UnknownCounterUnit { name, unit } => write!(
                f,
                "unknown counter unit: {name} declares unit {unit:?}, not in the \
                 workspace vocabulary"
            ),
            Finding::ChargeOutsidePhase {
                track,
                name,
                start_s,
                end_s,
            } => write!(
                f,
                "charge outside phase: {name:?} on track {track} \
                 [{start_s:.6}, {end_s:.6}] s has no enclosing phase span"
            ),
        }
    }
}

fn join_edges(f: &mut std::fmt::Formatter<'_>, edges: &[WaitEdge]) -> std::fmt::Result {
    for (i, e) in edges.iter().enumerate() {
        if i > 0 {
            write!(f, "; ")?;
        }
        write!(f, "{e}")?;
    }
    Ok(())
}
