//! Trace-conformance pass over `obs` output.
//!
//! The observability layer (PR 2) records per-rank span tracks with
//! virtual-time intervals; this pass guards the invariants every consumer
//! of a trace (Perfetto export, the critical-path profiler, phase-slack
//! reports) silently relies on:
//!
//! * every span was closed by the instrumentation itself, not force-closed
//!   at end of run;
//! * span intervals are valid (`end >= start`) and each track's spans are
//!   sorted by start time — per-rank virtual time is monotone;
//! * instant events and counter samples are in time order;
//! * every charge span (compute/memory/network/io/wait, mirroring
//!   [`simcluster::SegmentKind`]) is covered by an enclosing phase span,
//!   so per-phase energy attribution loses nothing.

use crate::Finding;
use obs::{Trace, TrackTrace};

/// Slack for float comparisons on virtual timestamps, seconds.
const EPS: f64 = 1e-9;

/// Counter-track units the workspace tooling understands. Everything a
/// timeline or bench exporter emits must come from this vocabulary, or
/// dashboards and the bench differ can't interpret the track.
pub const KNOWN_COUNTER_UNITS: &[&str] = &["", "W", "J", "s", "ns", "B", "Hz", "tasks", "%"];

/// Check one assembled run trace. Returns one finding per violation.
#[must_use]
pub fn check_trace(trace: &Trace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for track in &trace.tracks {
        check_track(track, &mut findings);
    }
    for counter in &trace.counters {
        if !KNOWN_COUNTER_UNITS.contains(&counter.unit.as_str()) {
            findings.push(Finding::UnknownCounterUnit {
                name: counter.name.clone(),
                unit: counter.unit.clone(),
            });
        }
        let mut prev = f64::NEG_INFINITY;
        for &(t_s, value) in &counter.samples {
            if t_s < prev - EPS {
                findings.push(Finding::NonMonotoneTrace {
                    track: usize::MAX,
                    name: format!("counter {}", counter.name),
                    time_s: t_s,
                    prev_s: prev,
                });
            }
            if !value.is_finite() {
                findings.push(Finding::NonFiniteCounterSample {
                    name: counter.name.clone(),
                    time_s: t_s,
                    value: format!("{value}"),
                });
            }
            prev = prev.max(t_s);
        }
    }
    findings
}

fn check_track(track: &TrackTrace, findings: &mut Vec<Finding>) {
    let phases: Vec<(f64, f64)> = track
        .spans
        .iter()
        .filter(|s| matches!(s.cat, obs::span::Category::Phase))
        .map(|s| (s.start_s, s.end_s))
        .collect();
    let mut prev_start = f64::NEG_INFINITY;
    for span in &track.spans {
        if span.forced_close {
            findings.push(Finding::UnclosedSpan {
                track: track.track,
                name: span.name.clone(),
                start_s: span.start_s,
            });
        }
        if span.end_s < span.start_s - EPS {
            findings.push(Finding::NonMonotoneTrace {
                track: track.track,
                name: span.name.clone(),
                time_s: span.end_s,
                prev_s: span.start_s,
            });
        }
        if span.start_s < prev_start - EPS {
            findings.push(Finding::NonMonotoneTrace {
                track: track.track,
                name: span.name.clone(),
                time_s: span.start_s,
                prev_s: prev_start,
            });
        }
        prev_start = prev_start.max(span.start_s);
        if span.cat.is_charge()
            && !phases
                .iter()
                .any(|&(ps, pe)| ps - EPS <= span.start_s && span.end_s <= pe + EPS)
        {
            findings.push(Finding::ChargeOutsidePhase {
                track: track.track,
                name: span.name.clone(),
                start_s: span.start_s,
                end_s: span.end_s,
            });
        }
    }
    let mut prev_t = f64::NEG_INFINITY;
    for ev in &track.instants {
        if ev.time_s < prev_t - EPS {
            findings.push(Finding::NonMonotoneTrace {
                track: track.track,
                name: ev.name.clone(),
                time_s: ev.time_s,
                prev_s: prev_t,
            });
        }
        prev_t = prev_t.max(ev.time_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::span::Category;
    use obs::TrackRecorder;

    fn clean_track() -> TrackTrace {
        let mut rec = TrackRecorder::new(0);
        rec.begin_phase("init", 0.0);
        rec.leaf("compute", Category::Compute, 0.0, 0.4, vec![]);
        rec.begin_phase("solve", 0.4);
        rec.leaf("memory", Category::Memory, 0.4, 0.9, vec![]);
        rec.finish(1.0)
    }

    #[test]
    fn clean_trace_has_no_findings() {
        let mut trace = Trace::new("t");
        trace.push_track(clean_track());
        trace.add_counter_track("power cpu", "W", vec![(0.0, 5.0), (0.5, 7.0)]);
        assert!(check_trace(&trace).is_empty());
    }

    #[test]
    fn forced_close_is_reported() {
        let mut rec = TrackRecorder::new(2);
        rec.enter("mps:allreduce", Category::Collective, 0.1);
        let mut trace = Trace::new("t");
        trace.push_track(rec.finish(0.5));
        let findings = check_trace(&trace);
        assert!(
            findings.iter().any(|f| matches!(f,
                Finding::UnclosedSpan { track: 2, name, .. } if name == "mps:allreduce")),
            "no UnclosedSpan in {findings:?}"
        );
    }

    #[test]
    fn charge_outside_any_phase_is_reported() {
        let mut rec = TrackRecorder::new(1);
        // Charge recorded before the first phase begins.
        rec.leaf("compute", Category::Compute, 0.0, 0.2, vec![]);
        rec.begin_phase("late", 0.5);
        let mut trace = Trace::new("t");
        trace.push_track(rec.finish(1.0));
        let findings = check_trace(&trace);
        assert!(
            findings.iter().any(|f| matches!(f,
                Finding::ChargeOutsidePhase { track: 1, name, .. } if name == "compute")),
            "no ChargeOutsidePhase in {findings:?}"
        );
    }

    #[test]
    fn unsorted_spans_and_counters_are_reported() {
        let mut track = clean_track();
        track.spans.swap(0, 2);
        let mut trace = Trace::new("t");
        trace.push_track(track);
        trace.add_counter_track("power cpu", "W", vec![(0.5, 7.0), (0.0, 5.0)]);
        let findings = check_trace(&trace);
        let monotone = findings
            .iter()
            .filter(|f| matches!(f, Finding::NonMonotoneTrace { .. }))
            .count();
        assert!(
            monotone >= 2,
            "expected span + counter findings: {findings:?}"
        );
    }

    #[test]
    fn non_finite_counter_sample_is_reported() {
        let mut trace = Trace::new("t");
        trace.add_counter_track("power cpu", "W", vec![(0.0, 5.0), (0.5, f64::NAN)]);
        let findings = check_trace(&trace);
        assert!(
            findings.iter().any(|f| matches!(f,
                Finding::NonFiniteCounterSample { name, .. } if name == "power cpu")),
            "no NonFiniteCounterSample in {findings:?}"
        );
    }

    #[test]
    fn unknown_counter_unit_is_reported() {
        let mut trace = Trace::new("t");
        trace.add_counter_track("weird", "furlongs", vec![(0.0, 1.0)]);
        let findings = check_trace(&trace);
        assert!(
            findings.iter().any(|f| matches!(f,
                Finding::UnknownCounterUnit { unit, .. } if unit == "furlongs")),
            "no UnknownCounterUnit in {findings:?}"
        );
    }

    #[test]
    fn timeline_counter_tracks_pass_conformance() {
        let mut timeline = obs::Timeline::new(16);
        timeline.record("pool.queue_depth", "tasks", 0.0, 3.0);
        timeline.record("pool.queue_depth", "tasks", 0.5, 1.0);
        timeline.record("power.total", "W", 0.0, 60.0);
        let mut trace = Trace::new("t");
        trace.push_track(clean_track());
        timeline.attach(&mut trace);
        assert!(check_trace(&trace).is_empty());
    }

    #[test]
    fn invalid_interval_is_reported() {
        let mut track = clean_track();
        track.spans[1].end_s = track.spans[1].start_s - 0.1;
        let mut trace = Trace::new("t");
        trace.push_track(track);
        assert!(check_trace(&trace)
            .iter()
            .any(|f| matches!(f, Finding::NonMonotoneTrace { .. })));
    }
}
