//! Property tests for the dimensional-units layer: the newtype algebra must
//! agree exactly with the underlying f64 arithmetic, and the cross-unit
//! operators must round-trip.

use proptest::prelude::*;
use simcluster::units::{Accesses, Hertz, Instructions, Joules, Seconds, Watts};

/// Signed magnitudes spanning the workspace's real dynamic range
/// (picosecond latencies to gigajoule-scale totals).
fn mag() -> impl Strategy<Value = f64> {
    -1e12f64..1e12
}

fn pos() -> impl Strategy<Value = f64> {
    1e-12f64..1e12
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `(J / s) * s == J`: power derived from an energy and a duration,
    /// re-integrated over the same duration, recovers the energy.
    #[test]
    fn power_energy_roundtrip(e in pos(), t in pos()) {
        let energy = Joules::new(e);
        let dt = Seconds::new(t);
        let power: Watts = energy / dt;
        let back: Joules = power * dt;
        let rel = (back - energy).abs().raw() / energy.raw();
        prop_assert!(rel < 1e-12, "J -> W -> J drifted: {back} vs {energy}");
    }

    /// `J / W == s`: the third face of the same identity.
    #[test]
    fn energy_over_power_is_duration(w in pos(), t in pos()) {
        let power = Watts::new(w);
        let dt = Seconds::new(t);
        let energy: Joules = power * dt;
        let back: Seconds = energy / power;
        prop_assert!((back - dt).abs().raw() / t < 1e-12);
    }

    /// `W * s == s * W`: the commuted multiplication is the same energy.
    #[test]
    fn watts_seconds_commute(w in mag(), t in mag()) {
        let a: Joules = Watts::new(w) * Seconds::new(t);
        let b: Joules = Seconds::new(t) * Watts::new(w);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.raw(), w * t);
    }

    /// `instr / Hz == s` matches the raw quotient (the `tc = CPI / f` law).
    #[test]
    fn instructions_over_hertz(n in pos(), f in pos()) {
        let t: Seconds = Instructions::new(n) / Hertz::new(f);
        prop_assert_eq!(t.raw(), n / f);
    }

    /// Same-unit division is a dimensionless ratio equal to the raw ratio.
    #[test]
    fn same_unit_ratio_is_raw_ratio(a in pos(), b in pos()) {
        prop_assert_eq!(Joules::new(a) / Joules::new(b), a / b);
        prop_assert_eq!(Seconds::new(a) / Seconds::new(b), a / b);
    }

    /// Addition/subtraction/scalar scaling mirror f64 exactly.
    #[test]
    fn linear_ops_match_f64(a in mag(), b in mag(), k in -1e6f64..1e6) {
        prop_assert_eq!((Seconds::new(a) + Seconds::new(b)).raw(), a + b);
        prop_assert_eq!((Seconds::new(a) - Seconds::new(b)).raw(), a - b);
        prop_assert_eq!((Seconds::new(a) * k).raw(), a * k);
        prop_assert_eq!((k * Seconds::new(a)).raw(), k * a);
        prop_assert_eq!((Seconds::new(a) / k).raw(), a / k);
        prop_assert_eq!((-Seconds::new(a)).raw(), -a);
    }

    /// Ordering and min/max agree with the raw magnitudes.
    #[test]
    fn ordering_is_consistent_with_raw(a in mag(), b in mag()) {
        prop_assert_eq!(Joules::new(a) < Joules::new(b), a < b);
        prop_assert_eq!(Joules::new(a) <= Joules::new(b), a <= b);
        prop_assert_eq!(Joules::new(a).max(Joules::new(b)).raw(), a.max(b));
        prop_assert_eq!(Joules::new(a).min(Joules::new(b)).raw(), a.min(b));
    }

    /// Summing a vector of typed values equals the raw sum.
    #[test]
    fn sum_matches_raw_sum(xs in proptest::collection::vec(0.0f64..1e9, 0..32)) {
        let typed: Joules = xs.iter().map(|&x| Joules::new(x)).sum();
        let raw: f64 = xs.iter().sum();
        prop_assert_eq!(typed.raw(), raw);
    }

    /// Workload-rate integration: `(instr * s/instr)` via the rate operator
    /// equals the raw product (used by the energy accounting for `Wc·tc`).
    #[test]
    fn workload_times_latency(w in pos(), tc in 1e-12f64..1e-6) {
        let t: Seconds = Instructions::new(w) * Seconds::new(tc);
        prop_assert_eq!(t.raw(), w * tc);
        let t2: Seconds = Accesses::new(w) * Seconds::new(tc);
        prop_assert_eq!(t2.raw(), w * tc);
    }
}

#[test]
fn zero_and_display() {
    assert_eq!(Joules::ZERO.raw(), 0.0);
    assert_eq!(format!("{}", Joules::new(1.5)), "1.5 J");
    assert_eq!(format!("{}", Seconds::new(0.25)), "0.25 s");
    assert_eq!(format!("{}", Watts::new(80.0)), "80 W");
}
