//! Property-based tests for the simulator substrate: cache-profile
//! invariants, power-law monotonicity, energy accounting conservation.

use proptest::prelude::*;
use simcluster::{
    system_g, CacheLevel, ComponentPower, EnergyMeter, Joules, MemorySpec, PowerLaw, Seconds,
    Segment, SegmentKind, SegmentLog, Watts,
};

fn arb_memory() -> impl Strategy<Value = MemorySpec> {
    // L1 32..128 KiB, L2 1..16 MiB, DRAM 60..200 ns.
    (32u64..128, 1u64..16, 60.0f64..200.0, 1u32..=4).prop_map(|(l1_kb, l2_mb, dram_ns, shared)| {
        MemorySpec::new(
            vec![
                CacheLevel::new(l1_kb * 1024, 1.5e-9),
                CacheLevel::shared(l2_mb * 1024 * 1024, 6.0e-9, shared),
            ],
            dram_ns * 1e-9,
            ComponentPower::new(8.0, 4.0),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dram_fraction_is_a_fraction(mem in arb_memory(), ws in 1u64..(1 << 34), co in 1usize..64) {
        let p = mem.access_profile_concurrent(ws, co);
        prop_assert!((0.0..=1.0).contains(&p.dram_fraction));
        prop_assert!(p.on_chip_s_per_access >= 0.0);
    }

    #[test]
    fn latency_bounded_by_fastest_and_slowest(mem in arb_memory(), ws in 1u64..(1 << 34)) {
        let lat = mem.latency_for_working_set(ws);
        let fastest = mem.levels[0].latency_s;
        prop_assert!(lat >= fastest - 1e-18, "lat {lat} < L1 {fastest}");
        prop_assert!(lat <= mem.dram_latency_s + 1e-18, "lat {lat} > DRAM");
    }

    #[test]
    fn latency_monotone_in_working_set(mem in arb_memory(), ws in 1u64..(1 << 32)) {
        let a = mem.latency_for_working_set(ws);
        let b = mem.latency_for_working_set(ws.saturating_mul(2));
        prop_assert!(b >= a - 1e-18, "{b} < {a} at ws {ws}");
    }

    #[test]
    fn more_co_residents_never_reduce_dram_traffic(
        mem in arb_memory(),
        ws in 1u64..(1 << 30),
        co in 1usize..32,
    ) {
        let solo = mem.access_profile_concurrent(ws, co);
        let crowded = mem.access_profile_concurrent(ws, co * 2);
        prop_assert!(crowded.dram_fraction >= solo.dram_fraction - 1e-12);
    }

    #[test]
    fn power_law_monotone_in_frequency(
        delta in 1.0f64..100.0,
        gamma in 1.0f64..3.0,
        f1 in 0.5e9f64..4.0e9,
        f2 in 0.5e9f64..4.0e9,
    ) {
        let law = PowerLaw::new(delta, 2.8e9, gamma);
        if f1 <= f2 {
            prop_assert!(law.delta_at(f1) <= law.delta_at(f2) + Watts::new(1e-12));
        } else {
            prop_assert!(law.delta_at(f1) >= law.delta_at(f2) - Watts::new(1e-12));
        }
    }

    #[test]
    fn energy_is_nonnegative_and_superidle(
        durs in proptest::collection::vec((0usize..5, 1e-6f64..1.0), 1..20),
    ) {
        // Build a wall-ordered log of random segments.
        let mut log = SegmentLog::new(0);
        let mut t = 0.0;
        for (kind_idx, dur) in durs {
            let kind = SegmentKind::ALL[kind_idx];
            let work = if kind == SegmentKind::Wait { 0.0 } else { dur };
            log.push(Segment { kind, start_s: t, wall_s: dur, work_s: work });
            t += dur;
        }
        let meter = EnergyMeter::new(system_g().node, 2.8e9);
        let e = meter.rank_energy(&log, Seconds::new(t));
        let idle_floor = meter.node().system_idle_w() * Seconds::new(t);
        prop_assert!(
            e.total() >= idle_floor - Joules::new(1e-9),
            "{} < {}",
            e.total(),
            idle_floor
        );
        prop_assert!(
            e.cpu_j >= Joules::ZERO && e.memory_j >= Joules::ZERO && e.network_j >= Joules::ZERO
        );
    }

    #[test]
    fn coalesce_preserves_totals(
        durs in proptest::collection::vec((0usize..5, 1e-6f64..0.1), 1..30),
    ) {
        let mut log = SegmentLog::new(0);
        let mut t = 0.0;
        for (kind_idx, dur) in durs {
            let kind = SegmentKind::ALL[kind_idx];
            let work = if kind == SegmentKind::Wait { 0.0 } else { dur * 1.2 };
            log.push(Segment { kind, start_s: t, wall_s: dur, work_s: work });
            t += dur;
        }
        let before: Vec<(f64, f64)> = SegmentKind::ALL
            .iter()
            .map(|&k| (log.wall_time(k), log.work_time(k)))
            .collect();
        let end_before = log.end_s();
        log.coalesce();
        let after: Vec<(f64, f64)> = SegmentKind::ALL
            .iter()
            .map(|&k| (log.wall_time(k), log.work_time(k)))
            .collect();
        for ((wb, kb), (wa, ka)) in before.iter().zip(&after) {
            prop_assert!((wb - wa).abs() < 1e-9);
            prop_assert!((kb - ka).abs() < 1e-9);
        }
        prop_assert!((log.end_s() - end_before).abs() < 1e-9);
    }

    #[test]
    fn power_samples_match_idle_outside_activity(
        gap in 0.1f64..10.0,
        dur in 0.01f64..1.0,
    ) {
        let mut log = SegmentLog::new(0);
        log.push(Segment {
            kind: SegmentKind::Compute,
            start_s: gap,
            wall_s: dur,
            work_s: dur,
        });
        let meter = EnergyMeter::new(system_g().node, 2.8e9);
        let before: Watts = meter.power_at(&log, Seconds::new(gap * 0.5)).into_iter().sum();
        prop_assert!((before - meter.node().system_idle_w()).abs() < Watts::new(1e-9));
        let during: Watts = meter
            .power_at(&log, Seconds::new(gap + dur * 0.5))
            .into_iter()
            .sum();
        prop_assert!(during > before);
    }
}
