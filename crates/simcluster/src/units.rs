//! Zero-cost dimensional-analysis newtypes for the model's physical
//! quantities.
//!
//! Eqs. 1–21 of the paper compose energy from physically-typed terms
//! (`tc = CPI/f`, `W × s = J`, Hockney `ts + tw·B`), and a unit-mixing
//! slip — adding a power to an energy, multiplying two latencies —
//! compiles fine with bare `f64`s and only shows up as a wrong Figure 5
//! curve. These newtypes make the dimensional algebra part of the type
//! system:
//!
//! * `Watts × Seconds → Joules` (and commuted), `Joules / Seconds → Watts`,
//!   `Joules / Watts → Seconds`;
//! * `Instructions / Hertz → Seconds` (an instruction count retired at an
//!   instruction rate);
//! * count types ([`Instructions`], [`Accesses`], [`Messages`], [`Bytes`])
//!   act as dimensionless tallies: `count × per-event Seconds → Seconds`;
//! * same-unit ratios collapse back to `f64` (`Joules / Joules`, …);
//! * additive structure only within a unit — `Joules + Seconds` is a
//!   compile error, which is the whole point.
//!
//! Every type is a `#[repr(transparent)]` wrapper over `f64`: the layer
//! erases completely at codegen and exists only at type-check time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
        #[repr(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wrap a raw magnitude.
            #[must_use]
            pub const fn new(v: f64) -> Self {
                Self(v)
            }

            /// The raw magnitude (crossing back out of the unit system;
            /// keep these at I/O and formatting boundaries).
            #[must_use]
            pub const fn raw(self) -> f64 {
                self.0
            }

            /// True when the magnitude is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Elementwise maximum.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Elementwise minimum.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Same-unit ratio: dimensionless.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit!(
    /// A duration or per-event latency, in seconds.
    Seconds, "s"
);
unit!(
    /// An energy, in joules.
    Joules, "J"
);
unit!(
    /// A power, in watts.
    Watts, "W"
);
unit!(
    /// A rate, in events per second.
    Hertz, "Hz"
);
unit!(
    /// An on-chip instruction tally (the paper's `Wc`/`Woc`).
    Instructions, "instr"
);
unit!(
    /// An off-chip memory-access tally (the paper's `Wm`/`Wom`).
    Accesses, "accesses"
);
unit!(
    /// A message tally (the paper's `M`).
    Messages, "msgs"
);
unit!(
    /// A byte tally (the paper's `B`).
    Bytes, "B"
);

/// Cross-unit products and quotients.
macro_rules! cross {
    ($a:ident * $b:ident = $out:ident) => {
        impl Mul<$b> for $a {
            type Output = $out;
            fn mul(self, rhs: $b) -> $out {
                $out::new(self.raw() * rhs.raw())
            }
        }

        impl Mul<$a> for $b {
            type Output = $out;
            fn mul(self, rhs: $a) -> $out {
                $out::new(self.raw() * rhs.raw())
            }
        }
    };
    ($a:ident / $b:ident = $out:ident) => {
        impl Div<$b> for $a {
            type Output = $out;
            fn div(self, rhs: $b) -> $out {
                $out::new(self.raw() / rhs.raw())
            }
        }
    };
}

// The energy algebra of Eqs. 7–9/13–15: `W × s = J`.
cross!(Watts * Seconds = Joules);
cross!(Joules / Seconds = Watts);
cross!(Joules / Watts = Seconds);

// Workload tallies × per-event latencies (Eqs. 5–6, 17):
// `Wc · tc`, `Wm · tm`, `M · ts`, `B · tw` are all durations.
cross!(Instructions * Seconds = Seconds);
cross!(Accesses * Seconds = Seconds);
cross!(Messages * Seconds = Seconds);
cross!(Bytes * Seconds = Seconds);

// `tc = CPI / f` and `W / rate = duration` (Table 1).
cross!(Instructions / Hertz = Seconds);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_times_seconds_is_joules() {
        let e = Watts::new(50.0) * Seconds::new(2.0);
        assert_eq!(e, Joules::new(100.0));
        // Commuted.
        assert_eq!(Seconds::new(2.0) * Watts::new(50.0), Joules::new(100.0));
    }

    #[test]
    fn joules_over_seconds_is_watts_and_roundtrips() {
        let j = Joules::new(120.0);
        let s = Seconds::new(4.0);
        let w = j / s;
        assert_eq!(w, Watts::new(30.0));
        assert_eq!(w * s, j);
        assert_eq!(j / w, s);
    }

    #[test]
    fn instructions_over_hertz_is_seconds() {
        let t = Instructions::new(2.8e9) / Hertz::new(2.8e9);
        assert!((t.raw() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tallies_scale_per_event_latencies() {
        let t = Instructions::new(1e9) * Seconds::new(1e-9);
        assert!((t.raw() - 1.0).abs() < 1e-12);
        let t = Bytes::new(1e6) * Seconds::new(1e-9);
        assert!((t.raw() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn same_unit_ratio_is_dimensionless() {
        let r: f64 = Joules::new(10.0) / Joules::new(4.0);
        assert!((r - 2.5).abs() < 1e-12);
    }

    #[test]
    fn additive_structure_within_a_unit() {
        let mut t = Seconds::new(1.0);
        t += Seconds::new(0.5);
        t -= Seconds::new(0.25);
        assert_eq!(t, Seconds::new(1.25));
        assert_eq!(-t, Seconds::new(-1.25));
        let total: Seconds = [Seconds::new(1.0), Seconds::new(2.0)].into_iter().sum();
        assert_eq!(total, Seconds::new(3.0));
    }

    #[test]
    fn ordering_works_within_a_unit() {
        assert!(Seconds::new(1.0) < Seconds::new(2.0));
        assert!(Joules::new(3.0) >= Joules::new(3.0));
        assert_eq!(Seconds::new(2.0).max(Seconds::new(3.0)), Seconds::new(3.0));
        assert_eq!(Seconds::new(2.0).min(Seconds::new(3.0)), Seconds::new(2.0));
    }

    #[test]
    fn scalar_scaling_preserves_the_unit() {
        assert_eq!(2.0 * Watts::new(10.0), Watts::new(20.0));
        assert_eq!(Watts::new(10.0) * 2.0, Watts::new(20.0));
        assert_eq!(Watts::new(10.0) / 2.0, Watts::new(5.0));
    }

    #[test]
    fn display_carries_the_suffix() {
        assert_eq!(Joules::new(1.5).to_string(), "1.5 J");
        assert_eq!(Watts::new(2.0).to_string(), "2 W");
    }
}
