//! Per-component energy integration (the simulator side of paper Eqs. 7–9).
//!
//! The paper's decomposition (Eq. 9) is
//!
//! ```text
//! E = α·T·P_sys_idle  +  Wc·tc·ΔPc  +  Wm·tm·ΔPm  +  W_IO·t_IO·ΔP_IO
//! ```
//!
//! i.e. every component draws idle power for the whole run, and an active
//! delta while it is busy. The meter implements exactly that semantics over
//! [`SegmentLog`]s: idle energy = `span × P_sys_idle` per rank; delta energy
//! = `Σ work_s × ΔP_component` per segment (work durations are *not* squeezed
//! by the overlap factor, matching the paper's treatment of `α`). Every term
//! is built as `Watts × Seconds → Joules`, so a power can never be added to
//! an energy by accident.

use crate::events::{SegmentKind, SegmentLog};
use crate::node::NodeSpec;
use crate::units::{Joules, Seconds, Watts};

/// Energy of one run broken down by component.
///
/// Each component field contains that component's idle energy plus its
/// active delta energy, so the fields sum to [`ComponentEnergy::total`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentEnergy {
    /// CPU energy (idle share + compute delta).
    pub cpu_j: Joules,
    /// Memory subsystem energy (idle share + access delta).
    pub memory_j: Joules,
    /// NIC energy (idle share + transfer delta).
    pub network_j: Joules,
    /// Disk energy (idle share + I/O delta).
    pub disk_j: Joules,
    /// Motherboard / fans / PSU loss (constant power).
    pub other_j: Joules,
}

impl ComponentEnergy {
    /// Total system energy.
    #[must_use]
    pub fn total(&self) -> Joules {
        self.cpu_j + self.memory_j + self.network_j + self.disk_j + self.other_j
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, rhs: &ComponentEnergy) {
        self.cpu_j += rhs.cpu_j;
        self.memory_j += rhs.memory_j;
        self.network_j += rhs.network_j;
        self.disk_j += rhs.disk_j;
        self.other_j += rhs.other_j;
    }
}

/// Integrates component energy for runs on a given node type and frequency.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    node: NodeSpec,
    f_hz: f64,
}

impl EnergyMeter {
    /// A meter for cores of `node` running at `f_hz`.
    ///
    /// # Panics
    /// Panics on a non-positive frequency or an invalid node.
    #[must_use]
    pub fn new(node: NodeSpec, f_hz: f64) -> Self {
        node.validate();
        assert!(
            f_hz.is_finite() && f_hz > 0.0,
            "invalid frequency {f_hz} Hz"
        );
        Self { node, f_hz }
    }

    /// The node spec the meter was built with.
    #[must_use]
    pub fn node(&self) -> &NodeSpec {
        &self.node
    }

    /// The frequency the meter evaluates CPU deltas at.
    #[must_use]
    pub fn frequency(&self) -> f64 {
        self.f_hz
    }

    /// Energy of a single rank whose activity is `log`, attributed over a
    /// wall-clock span of `span` (normally the *parallel* span, `max` over
    /// ranks — Eq. 15 charges every processor idle power for the full `Tp`).
    ///
    /// # Panics
    /// Panics if `span` is shorter than the log (a rank cannot be busy
    /// after the run ended).
    #[must_use]
    pub fn rank_energy(&self, log: &SegmentLog, span: Seconds) -> ComponentEnergy {
        assert!(
            span.raw() >= log.end_s() - 1e-9 * log.end_s().max(1.0),
            "span {span} shorter than rank {} log end {}s",
            log.rank,
            log.end_s()
        );
        let n = &self.node;
        let mut e = ComponentEnergy {
            cpu_j: Watts::new(n.cpu.idle_w) * span,
            memory_j: Watts::new(n.memory.power.idle_w) * span,
            network_j: Watts::new(n.nic.idle_w) * span,
            disk_j: Watts::new(n.disk.idle_w) * span,
            other_j: Watts::new(n.other_w) * span,
        };
        let dpc = n.cpu.delta_power(self.f_hz);
        let dpm = n.memory.power.delta();
        let dpn = n.nic.delta();
        let dpd = n.disk.delta();
        for seg in &log.segments {
            let work = Seconds::new(seg.work_s);
            match seg.kind {
                SegmentKind::Compute => e.cpu_j += dpc * work,
                SegmentKind::Memory => e.memory_j += dpm * work,
                SegmentKind::Network => e.network_j += dpn * work,
                SegmentKind::Io => e.disk_j += dpd * work,
                SegmentKind::Wait => {}
            }
        }
        e
    }

    /// Total energy of a parallel run: sum of [`EnergyMeter::rank_energy`]
    /// over all ranks, with the span taken as the latest rank finish time.
    ///
    /// Returns the per-run breakdown and the span used.
    ///
    /// # Panics
    /// Panics when `logs` is empty.
    #[must_use]
    pub fn run_energy(&self, logs: &[SegmentLog]) -> (ComponentEnergy, Seconds) {
        assert!(!logs.is_empty(), "run has no rank logs");
        let span = Seconds::new(logs.iter().map(SegmentLog::end_s).fold(0.0, f64::max));
        let mut total = ComponentEnergy::default();
        for log in logs {
            total.add(&self.rank_energy(log, span));
        }
        (total, span)
    }

    /// Instantaneous power of one rank at virtual time `t`, decomposed per
    /// component `(cpu, mem, net, disk, other)`.
    ///
    /// Used by the PowerPack profiler to sample traces (paper Fig. 10).
    /// Before the rank's first segment and after its last it draws idle
    /// power only.
    #[must_use]
    pub fn power_at(&self, log: &SegmentLog, t: Seconds) -> [Watts; 5] {
        let n = &self.node;
        let t_s = t.raw();
        let mut p = [
            Watts::new(n.cpu.idle_w),
            Watts::new(n.memory.power.idle_w),
            Watts::new(n.nic.idle_w),
            Watts::new(n.disk.idle_w),
            Watts::new(n.other_w),
        ];
        // Binary search for the segment containing t.
        let idx = log.segments.partition_point(|s| s.end_s() <= t_s);
        if let Some(seg) = log.segments.get(idx) {
            if seg.start_s <= t_s && t_s < seg.end_s() && seg.wall_s > 0.0 {
                // While a squeezed segment runs, the device delta is scaled
                // by work/wall so integrating power over wall time recovers
                // exactly work_s × ΔP (energy conservation with overlap).
                let scale = seg.work_s / seg.wall_s;
                match seg.kind {
                    SegmentKind::Compute => p[0] += self.node.cpu.delta_power(self.f_hz) * scale,
                    SegmentKind::Memory => p[1] += n.memory.power.delta() * scale,
                    SegmentKind::Network => p[2] += n.nic.delta() * scale,
                    SegmentKind::Io => p[3] += n.disk.delta() * scale,
                    SegmentKind::Wait => {}
                }
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Segment;
    use crate::machine::system_g;

    fn meter() -> EnergyMeter {
        let g = system_g();
        EnergyMeter::new(g.node, 2.8e9)
    }

    fn log_with(segs: &[(SegmentKind, f64, f64, f64)]) -> SegmentLog {
        let mut log = SegmentLog::new(0);
        for &(kind, start, wall, work) in segs {
            log.push(Segment {
                kind,
                start_s: start,
                wall_s: wall,
                work_s: work,
            });
        }
        log
    }

    #[test]
    fn idle_only_run_draws_system_idle() {
        let m = meter();
        let log = log_with(&[(SegmentKind::Wait, 0.0, 10.0, 0.0)]);
        let e = m.rank_energy(&log, Seconds::new(10.0));
        let expect = m.node().system_idle_w() * Seconds::new(10.0);
        assert!(
            (e.total() - expect).abs() < Joules::new(1e-9),
            "{} vs {}",
            e.total(),
            expect
        );
    }

    #[test]
    fn compute_adds_cpu_delta_times_work() {
        let m = meter();
        let log = log_with(&[(SegmentKind::Compute, 0.0, 0.8, 1.0)]);
        let e = m.rank_energy(&log, Seconds::new(0.8));
        let idle = m.node().system_idle_w() * Seconds::new(0.8);
        // Full work, not wall.
        let delta = m.node().cpu.delta_power(2.8e9) * Seconds::new(1.0);
        assert!((e.total() - (idle + delta)).abs() < Joules::new(1e-9));
    }

    #[test]
    fn components_sum_to_total() {
        let m = meter();
        let log = log_with(&[
            (SegmentKind::Compute, 0.0, 1.0, 1.2),
            (SegmentKind::Memory, 1.0, 0.5, 0.6),
            (SegmentKind::Network, 1.5, 0.2, 0.2),
        ]);
        let e = m.rank_energy(&log, Seconds::new(2.0));
        let sum = e.cpu_j + e.memory_j + e.network_j + e.disk_j + e.other_j;
        assert!((sum - e.total()).abs() < Joules::new(1e-12));
    }

    #[test]
    fn run_energy_uses_max_span_for_all_ranks() {
        let m = meter();
        let fast = log_with(&[(SegmentKind::Compute, 0.0, 1.0, 1.0)]);
        let mut slow = log_with(&[(SegmentKind::Compute, 0.0, 2.0, 2.0)]);
        slow.rank = 1;
        let (e, span) = m.run_energy(&[fast.clone(), slow]);
        assert_eq!(span, Seconds::new(2.0));
        // The fast rank still pays idle power for the full 2 s span.
        let fast_alone = m.rank_energy(&fast, Seconds::new(2.0));
        assert!(e.total() > fast_alone.total());
    }

    #[test]
    fn lower_frequency_lowers_cpu_delta_energy() {
        let g = system_g();
        let hi = EnergyMeter::new(g.node.clone(), 2.8e9);
        let lo = EnergyMeter::new(g.node, 1.6e9);
        let log = log_with(&[(SegmentKind::Compute, 0.0, 1.0, 1.0)]);
        let e_hi = hi.rank_energy(&log, Seconds::new(1.0));
        let e_lo = lo.rank_energy(&log, Seconds::new(1.0));
        assert!(e_lo.cpu_j < e_hi.cpu_j);
    }

    #[test]
    fn power_at_samples_idle_outside_segments() {
        let m = meter();
        let log = log_with(&[(SegmentKind::Compute, 1.0, 1.0, 1.0)]);
        let sum = |t: f64| -> Watts { m.power_at(&log, Seconds::new(t)).into_iter().sum() };
        let before = sum(0.5);
        let during = sum(1.5);
        let after = sum(3.0);
        assert!((before - m.node().system_idle_w()).abs() < Watts::new(1e-9));
        assert!((after - m.node().system_idle_w()).abs() < Watts::new(1e-9));
        assert!(during > before);
    }

    #[test]
    fn power_integral_matches_energy_with_overlap_squeeze() {
        // A squeezed segment (wall < work) must still integrate to
        // work × ΔP: the sampled power is inflated by work/wall.
        let m = meter();
        let log = log_with(&[(SegmentKind::Compute, 0.0, 0.7, 1.0)]);
        let e = m.rank_energy(&log, Seconds::new(0.7));
        // Riemann sum of sampled power over [0, 0.7).
        let steps = 70_000;
        let dt = Seconds::new(0.7 / f64::from(steps));
        let mut integral = Joules::ZERO;
        for i in 0..steps {
            let t = (f64::from(i) + 0.5) * dt;
            integral += m.power_at(&log, t).into_iter().sum::<Watts>() * dt;
        }
        assert!(
            (integral - e.total()).abs() / e.total() < 1e-3,
            "integral {integral} vs energy {}",
            e.total()
        );
    }

    #[test]
    #[should_panic(expected = "shorter than rank")]
    fn span_shorter_than_log_panics() {
        let m = meter();
        let log = log_with(&[(SegmentKind::Compute, 0.0, 2.0, 2.0)]);
        let _ = m.rank_energy(&log, Seconds::new(1.0));
    }
}
