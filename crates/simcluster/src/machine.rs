//! Cluster descriptions and the two testbed presets from the paper.
//!
//! * **SystemG** — 325 Mac Pro nodes, each with two 4-core 2.8 GHz Intel
//!   Xeons, 8 GB RAM, 6 MB L2 per core pair, Mellanox 40 Gb/s InfiniBand,
//!   DVFS-enabled (the paper's §IV.A). `γ = 2` per the paper's §V.B.4.
//! * **Dori** — 8 nodes of dual dual-core AMD Opterons, 6 GB RAM, 1 MB
//!   per-core cache, 1 Gb/s Ethernet.
//!
//! Power figures are *per core* (see [`crate::node::NodeSpec`]) and were
//! chosen to be plausible for the 2010-era hardware (Mac Pro node idle
//! ≈ 170 W, loaded ≈ 330 W; Opteron node idle ≈ 140 W, loaded ≈ 230 W).
//! They are substitutes for the paper's PowerPack wall measurements — the
//! reproduction preserves model *structure and shape*, not the testbed's
//! absolute joules (see DESIGN.md §2).

use crate::cpu::CpuSpec;
use crate::freq::DvfsTable;
use crate::memory::{CacheLevel, MemorySpec};
use crate::node::NodeSpec;
use crate::power::{ComponentPower, PowerLaw};

/// Point-to-point interconnect cost parameters (the Hockney model inputs
/// measured by MPPTest in the paper: `ts` startup, `tw` per-byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Message startup latency `ts`, in seconds.
    pub startup_s: f64,
    /// Per-byte transmission time `tw`, in seconds (Table 1 defines `tw` per
    /// 8-bit word, i.e. per byte).
    pub per_byte_s: f64,
    /// Human-readable name of the fabric (e.g. "InfiniBand 40Gb/s").
    pub name: &'static str,
}

impl LinkSpec {
    /// Hockney transfer time for an `n`-byte message: `ts + tw·n`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.startup_s + self.per_byte_s * bytes as f64
    }

    /// Effective asymptotic bandwidth in bytes/second (`1 / tw`).
    pub fn bandwidth(&self) -> f64 {
        1.0 / self.per_byte_s
    }
}

/// A homogeneous cluster: `nodes` identical [`NodeSpec`]s joined by `link`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Cluster name for reports.
    pub name: &'static str,
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node description.
    pub node: NodeSpec,
    /// Interconnect parameters.
    pub link: LinkSpec,
}

impl ClusterSpec {
    /// Total cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.node.cores()
    }

    /// Validate the whole description.
    ///
    /// # Panics
    /// Panics on an inconsistent node or a cluster with zero nodes.
    pub fn validate(&self) {
        assert!(self.nodes > 0, "cluster must have at least one node");
        self.node.validate();
        assert!(
            self.link.startup_s > 0.0 && self.link.per_byte_s > 0.0,
            "link parameters must be positive"
        );
    }
}

/// The SystemG preset (see module docs).
pub fn system_g() -> ClusterSpec {
    let dvfs = DvfsTable::from_ghz(&[1.6, 2.0, 2.4, 2.8]);
    let cpu = CpuSpec::new(
        0.9, // effective CPI of a typical mixed workload on the 2.8 GHz Xeon
        dvfs,
        10.0,                            // per-core idle share
        PowerLaw::new(12.5, 2.8e9, 2.0), // γ = 2 on SystemG (paper §V.B.4)
    );
    let memory = MemorySpec::new(
        vec![
            CacheLevel::new(32 * 1024, 1.4e-9), // L1d, ~4 cycles, private
            // Harpertown-style 6 MB L2, shared by each core pair.
            CacheLevel::shared(6 * 1024 * 1024, 5.3e-9, 2),
        ],
        1.05e-7, // lat_mem_rd plateau ≈ 105 ns
        ComponentPower::new(7.5, 3.75),
    );
    let node = NodeSpec {
        sockets: 2,
        cores_per_socket: 4,
        ram_bytes: 8 << 30,
        cpu,
        memory,
        nic: ComponentPower::new(2.25, 1.25), // IB HCA share
        disk: ComponentPower::new(1.5, 1.0),
        other_w: 5.25, // motherboard, fans, PSU loss / 8 cores
    };
    ClusterSpec {
        name: "SystemG",
        nodes: 325,
        node,
        link: LinkSpec {
            // MPPTest-style fits for 40 Gb/s InfiniBand (MVAPICH-era):
            // ~2.6 us startup, ~3.0 GB/s effective per-byte bandwidth.
            startup_s: 2.6e-6,
            per_byte_s: 3.3e-10,
            name: "InfiniBand 40Gb/s",
        },
    }
}

/// The Dori preset (see module docs).
pub fn dori() -> ClusterSpec {
    let dvfs = DvfsTable::from_ghz(&[1.0, 1.8, 2.0]);
    let cpu = CpuSpec::new(
        1.1, // Opteron-era effective CPI
        dvfs,
        12.0,
        PowerLaw::new(14.0, 2.0e9, 1.8),
    );
    let memory = MemorySpec::new(
        vec![
            CacheLevel::new(64 * 1024, 1.5e-9),
            CacheLevel::new(1024 * 1024, 6.0e-9), // 1 MB per-core L2
        ],
        1.35e-7,
        ComponentPower::new(9.0, 4.5),
    );
    let node = NodeSpec {
        sockets: 2,
        cores_per_socket: 2,
        ram_bytes: 6 << 30,
        cpu,
        memory,
        nic: ComponentPower::new(1.5, 1.0),
        disk: ComponentPower::new(3.0, 2.0),
        other_w: 12.0, // fewer cores share the motherboard/fans
    };
    ClusterSpec {
        name: "Dori",
        nodes: 8,
        node,
        link: LinkSpec {
            // 1 GbE over a commodity switch: ~45 us startup, ~110 MB/s.
            startup_s: 4.5e-5,
            per_byte_s: 9.0e-9,
            name: "Gigabit Ethernet",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        system_g().validate();
        dori().validate();
    }

    #[test]
    fn system_g_matches_paper_description() {
        let g = system_g();
        assert_eq!(g.nodes, 325);
        assert_eq!(g.node.cores(), 8);
        assert_eq!(g.total_cores(), 2600);
        assert!(g.node.cpu.dvfs.contains(2.8e9));
        assert_eq!(g.node.cpu.delta.gamma, 2.0);
    }

    #[test]
    fn dori_matches_paper_description() {
        let d = dori();
        assert_eq!(d.nodes, 8);
        assert_eq!(d.node.cores(), 4);
        assert_eq!(d.total_cores(), 32);
    }

    #[test]
    fn infiniband_much_faster_than_ethernet() {
        let g = system_g();
        let d = dori();
        assert!(g.link.startup_s < d.link.startup_s / 5.0);
        assert!(g.link.bandwidth() > d.link.bandwidth() * 10.0);
    }

    #[test]
    fn transfer_time_is_affine_in_bytes() {
        let l = system_g().link;
        let t0 = l.transfer_time(0);
        let t1 = l.transfer_time(1_000_000);
        assert!((t0 - l.startup_s).abs() < 1e-18);
        assert!((t1 - (l.startup_s + 1e6 * l.per_byte_s)).abs() < 1e-15);
    }

    #[test]
    fn node_idle_power_is_plausible() {
        // SystemG Mac Pro node: 8 cores x per-core idle share ≈ 170 W.
        let g = system_g();
        let node_idle = (g.node.system_idle_w() * g.node.cores() as f64).raw();
        assert!(
            (150.0..200.0).contains(&node_idle),
            "SystemG node idle {node_idle} W out of plausible range"
        );
    }
}
