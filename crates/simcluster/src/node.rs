//! Node composition: cores, memory, and the non-scaling components
//! (NIC, disk, motherboard/fans) of the paper's Table 1.

use crate::cpu::CpuSpec;
use crate::memory::MemorySpec;
use crate::power::ComponentPower;
use crate::units::Watts;

/// A compute node, described *per core* on the power side.
///
/// The paper's model attributes system idle power to each of the `p`
/// processors (Eq. 15 carries a factor `p · P_sys_idle`), so the natural unit
/// here is one core's share of node power. [`NodeSpec::cores`] says how many
/// such shares one physical node provides; cluster presets give the per-node
/// wall figures divided through.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Number of sockets per node.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// RAM per node in bytes.
    pub ram_bytes: u64,
    /// Per-core CPU description.
    pub cpu: CpuSpec,
    /// Per-core share of the memory subsystem.
    pub memory: MemorySpec,
    /// Per-core share of NIC power.
    pub nic: ComponentPower,
    /// Per-core share of disk power (the paper's `P_IO`; NPB exercises ~no disk).
    pub disk: ComponentPower,
    /// Per-core share of everything else: motherboard, fans, PSU loss
    /// (the paper's `P_other`; constant, no running/idle split).
    pub other_w: f64,
}

impl NodeSpec {
    /// Total cores per node.
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Per-core system idle power (Table 1's `P_system_idle`): the sum of
    /// every component's idle level plus the constant `P_other`.
    #[must_use]
    pub fn system_idle_w(&self) -> Watts {
        Watts::new(
            self.cpu.idle_w
                + self.memory.power.idle_w
                + self.nic.idle_w
                + self.disk.idle_w
                + self.other_w,
        )
    }

    /// Validate internal consistency (positive core counts, finite powers).
    ///
    /// # Panics
    /// Panics if the node has zero cores or non-finite `other_w`.
    pub fn validate(&self) {
        assert!(self.cores() > 0, "node must have at least one core");
        assert!(
            self.other_w.is_finite() && self.other_w >= 0.0,
            "other power must be non-negative"
        );
        assert!(self.ram_bytes > 0, "node must have RAM");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::DvfsTable;
    use crate::memory::CacheLevel;
    use crate::power::PowerLaw;

    fn node() -> NodeSpec {
        NodeSpec {
            sockets: 2,
            cores_per_socket: 4,
            ram_bytes: 8 << 30,
            cpu: CpuSpec::new(
                0.9,
                DvfsTable::from_ghz(&[2.0, 2.8]),
                10.0,
                PowerLaw::new(12.5, 2.8e9, 2.0),
            ),
            memory: MemorySpec::new(
                vec![CacheLevel::new(6 << 20, 5e-9)],
                1e-7,
                ComponentPower::new(7.0, 3.5),
            ),
            nic: ComponentPower::new(2.0, 1.0),
            disk: ComponentPower::new(2.0, 1.0),
            other_w: 7.0,
        }
    }

    #[test]
    fn cores_multiplies_sockets() {
        assert_eq!(node().cores(), 8);
    }

    #[test]
    fn system_idle_sums_components() {
        let n = node();
        assert!((n.system_idle_w().raw() - (10.0 + 3.5 + 1.0 + 1.0 + 7.0)).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_good_node() {
        node().validate();
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_node_rejected() {
        let mut n = node();
        n.sockets = 0;
        n.validate();
    }
}
