//! Memory hierarchy model: working-set dependent access latency.
//!
//! The analytical model uses a single flat `tm` (average off-chip access
//! latency, measured in the paper with LMbench's `lat_mem_rd`). The simulator
//! instead models a small cache hierarchy so that effective latency depends
//! on the per-rank working set — the very effect the paper blames for CG's
//! higher prediction error ("inaccuracies in our memory model"). Strong
//! scaling shrinks each rank's working set, so effective per-access latency
//! *falls* as `p` grows; the flat-`tm` model cannot see this, which both
//! produces realistic validation error and motivates the paper's *negative*
//! parallel memory-overhead terms (`Wom < 0` for FT and CG).

use crate::power::ComponentPower;

/// One level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevel {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Load-to-use latency for a hit in this level, in seconds.
    pub latency_s: f64,
    /// How many cores share this level (1 = private). When `k` ranks run
    /// co-scheduled on the sharing cores, each sees `capacity / min(k,
    /// shared_by)` — cache contention, one more way real (and simulated)
    /// parallel runs deviate from the analytical model.
    pub shared_by: u32,
}

impl CacheLevel {
    /// Construct a core-private cache level.
    ///
    /// # Panics
    /// Panics on zero capacity or non-positive latency.
    pub fn new(capacity_bytes: u64, latency_s: f64) -> Self {
        Self::shared(capacity_bytes, latency_s, 1)
    }

    /// Construct a cache level shared by `shared_by` cores.
    ///
    /// # Panics
    /// Panics on zero capacity, non-positive latency, or zero sharers.
    pub fn shared(capacity_bytes: u64, latency_s: f64, shared_by: u32) -> Self {
        assert!(capacity_bytes > 0, "cache capacity must be positive");
        assert!(
            latency_s.is_finite() && latency_s > 0.0,
            "cache latency must be positive, got {latency_s} s"
        );
        assert!(
            shared_by >= 1,
            "a cache level is shared by at least one core"
        );
        Self {
            capacity_bytes,
            latency_s,
            shared_by,
        }
    }

    /// Effective per-rank capacity when `co_resident` ranks occupy the node.
    pub fn effective_capacity(&self, co_resident: usize) -> f64 {
        let sharers = (co_resident.max(1) as u32).min(self.shared_by);
        self.capacity_bytes as f64 / f64::from(sharers)
    }
}

/// The on-chip/off-chip split of accesses to a given working set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessProfile {
    /// Average on-chip (cache) time per access at nominal frequency, s.
    pub on_chip_s_per_access: f64,
    /// Fraction of accesses that go to DRAM (the paper's countable `Wm`).
    pub dram_fraction: f64,
}

/// A node's memory system: cache levels (ascending capacity) plus DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySpec {
    /// Cache levels ordered from smallest/fastest to largest/slowest.
    pub levels: Vec<CacheLevel>,
    /// Main-memory access latency in seconds (the model's `tm` upper end).
    pub dram_latency_s: f64,
    /// Memory subsystem power (running/idle), per core share, in watts.
    pub power: ComponentPower,
}

impl MemorySpec {
    /// Construct a memory spec.
    ///
    /// # Panics
    /// Panics if levels are not strictly increasing in capacity and latency,
    /// or if `dram_latency_s` is not larger than the last level's latency.
    pub fn new(levels: Vec<CacheLevel>, dram_latency_s: f64, power: ComponentPower) -> Self {
        assert!(
            dram_latency_s.is_finite() && dram_latency_s > 0.0,
            "DRAM latency must be positive"
        );
        for w in levels.windows(2) {
            assert!(
                w[1].capacity_bytes > w[0].capacity_bytes,
                "cache levels must have strictly increasing capacity"
            );
            assert!(
                w[1].latency_s > w[0].latency_s,
                "cache levels must have strictly increasing latency"
            );
        }
        if let Some(last) = levels.last() {
            assert!(
                dram_latency_s > last.latency_s,
                "DRAM must be slower than the last cache level"
            );
        }
        Self {
            levels,
            dram_latency_s,
            power,
        }
    }

    /// How accesses to a `working_set_bytes` working set split between
    /// on-chip caches and DRAM, under a uniform-access approximation:
    /// level *k* serves `min(cap_k, ws) − served_below` of the set; anything
    /// beyond the last cache goes to DRAM.
    ///
    /// This split matters to the iso-energy-efficiency model: the paper's
    /// `Wm` counts *off-chip* accesses (Table 1's `tc` explicitly includes
    /// "on-chip caches and registers"), so cache-hit time belongs to the
    /// compute side while only the DRAM fraction is memory workload. It is
    /// also how strong scaling produces the paper's *negative* `Wom`: per-
    /// rank working sets shrink with `p`, the DRAM fraction falls, and the
    /// counted memory workload genuinely decreases.
    pub fn access_profile(&self, working_set_bytes: u64) -> AccessProfile {
        self.access_profile_concurrent(working_set_bytes, 1)
    }

    /// Like [`MemorySpec::access_profile`], but with `co_resident` ranks on
    /// the node: shared levels offer each rank only its share of capacity.
    ///
    /// The hit model is *thrash-aware*: a working set that fits in a level
    /// hits it fully, but one that exceeds the level retains only
    /// `β·cap/ws` of its accesses there (cyclic sweeps under LRU evict most
    /// of a too-small cache before re-use; `β = 0.5` models the partially
    /// retained fraction). This matters for fidelity: without it, a working
    /// set barely exceeding cache would be credited with `cap/ws` hits,
    /// wildly overstating the cache relief strong scaling provides.
    pub fn access_profile_concurrent(
        &self,
        working_set_bytes: u64,
        co_resident: usize,
    ) -> AccessProfile {
        /// Retained hit fraction of a thrashing (ws > cap) level.
        const BETA: f64 = 0.5;
        if self.levels.is_empty() {
            return AccessProfile {
                on_chip_s_per_access: 0.0,
                dram_fraction: 1.0,
            };
        }
        let ws = working_set_bytes.max(1) as f64;
        // Cumulative served fraction s_k: 1.0 once a level holds the whole
        // set, else the thrash-retained share. Level k serves s_k − s_{k−1}.
        let mut served = 0.0f64;
        let mut on_chip = 0.0f64;
        for lvl in &self.levels {
            let cap = lvl.effective_capacity(co_resident);
            let s_here = if ws <= cap { 1.0 } else { BETA * cap / ws };
            let here = (s_here - served).max(0.0);
            on_chip += here * lvl.latency_s;
            served = served.max(s_here);
            if served >= 1.0 {
                break;
            }
        }
        let dram_fraction = (1.0 - served).max(0.0);
        AccessProfile {
            on_chip_s_per_access: on_chip,
            dram_fraction,
        }
    }

    /// Effective average latency per access for a working set of
    /// `working_set_bytes`, in seconds — the classic smoothed `lat_mem_rd`
    /// staircase (on-chip blend plus the DRAM overflow fraction).
    pub fn latency_for_working_set(&self, working_set_bytes: u64) -> f64 {
        let p = self.access_profile(working_set_bytes);
        p.on_chip_s_per_access + p.dram_fraction * self.dram_latency_s
    }

    /// The flat `tm` a calibration pass would report for a "large" working
    /// set (4× the last cache level), matching how the paper reads the
    /// `lat_mem_rd` plateau.
    pub fn tm_plateau(&self) -> f64 {
        let ws = self.levels.last().map_or(1 << 30, |l| l.capacity_bytes * 4);
        self.latency_for_working_set(ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySpec {
        MemorySpec::new(
            vec![
                CacheLevel::new(32 * 1024, 1.5e-9),
                CacheLevel::new(6 * 1024 * 1024, 5.0e-9),
            ],
            1.0e-7,
            ComponentPower::new(7.0, 3.5),
        )
    }

    #[test]
    fn tiny_working_set_hits_l1() {
        let m = mem();
        assert!((m.latency_for_working_set(1024) - 1.5e-9).abs() < 1e-15);
    }

    #[test]
    fn mid_working_set_blends_l1_l2() {
        let m = mem();
        let lat = m.latency_for_working_set(64 * 1024);
        assert!(lat > 1.5e-9 && lat < 5.0e-9, "got {lat}");
    }

    #[test]
    fn latency_monotone_in_working_set() {
        let m = mem();
        let sizes = [1u64 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30];
        let lats: Vec<f64> = sizes
            .iter()
            .map(|&s| m.latency_for_working_set(s))
            .collect();
        for w in lats.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-18,
                "latency must be non-decreasing: {lats:?}"
            );
        }
    }

    #[test]
    fn huge_working_set_approaches_dram() {
        let m = mem();
        let lat = m.latency_for_working_set(1 << 34);
        assert!((lat - 1.0e-7).abs() / 1.0e-7 < 0.01, "got {lat}");
    }

    #[test]
    fn plateau_is_near_dram_latency() {
        let m = mem();
        let tm = m.tm_plateau();
        assert!(tm > 0.5e-7 && tm <= 1.0e-7, "got {tm}");
    }

    #[test]
    fn no_cache_levels_means_flat_dram() {
        let m = MemorySpec::new(vec![], 9e-8, ComponentPower::new(5.0, 2.0));
        assert_eq!(m.latency_for_working_set(123), 9e-8);
        assert_eq!(m.tm_plateau(), 9e-8);
    }

    #[test]
    #[should_panic(expected = "strictly increasing capacity")]
    fn non_monotone_levels_panic() {
        MemorySpec::new(
            vec![CacheLevel::new(1024, 1e-9), CacheLevel::new(512, 2e-9)],
            1e-7,
            ComponentPower::new(5.0, 2.0),
        );
    }
}
