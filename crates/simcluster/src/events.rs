//! Typed state-interval logs.
//!
//! Every simulated rank records what its hardware was doing as a sequence of
//! [`Segment`]s. The energy meter ([`crate::energy`]) integrates component
//! power over these, and the PowerPack analog samples them into power traces
//! (paper Fig. 10).
//!
//! ## Overlap (the paper's `α`, §VI.F)
//!
//! The paper models computation/memory/network overlap with a single factor
//! `α ∈ (0, 1]`: actual wall time is `α ×` the sum of theoretical component
//! times (Eq. 6), while each component is still busy for its full theoretical
//! time (the energy deltas in Eqs. 13/15 are *not* scaled by `α`). Segments
//! therefore carry both a **wall** duration (squeezed by overlap; advances
//! the clock) and a **work** duration (device-busy time; accrues delta
//! energy). For waits the work duration is zero.

/// Which component a segment keeps busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// On-chip computation (drives `ΔP_c`).
    Compute,
    /// Off-chip memory access (drives `ΔP_m`).
    Memory,
    /// Network send/receive (drives the NIC delta).
    Network,
    /// Disk/local I/O (drives `ΔP_IO`; unused by NPB, kept for completeness).
    Io,
    /// Blocked on a message or barrier: no component delta, idle power only.
    Wait,
}

impl SegmentKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [SegmentKind; 5] = [
        SegmentKind::Compute,
        SegmentKind::Memory,
        SegmentKind::Network,
        SegmentKind::Io,
        SegmentKind::Wait,
    ];
}

/// One contiguous interval of a rank's activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// What the rank was doing.
    pub kind: SegmentKind,
    /// Virtual wall-clock start, seconds.
    pub start_s: f64,
    /// Wall duration (after overlap squeezing), seconds.
    pub wall_s: f64,
    /// Device-busy duration (before overlap squeezing), seconds.
    /// Zero for [`SegmentKind::Wait`].
    pub work_s: f64,
}

impl Segment {
    /// Wall-clock end of the segment.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.wall_s
    }
}

/// The full activity log of one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentLog {
    /// Rank that produced the log.
    pub rank: usize,
    /// Segments in wall-clock order.
    pub segments: Vec<Segment>,
}

impl SegmentLog {
    /// An empty log for `rank`.
    pub fn new(rank: usize) -> Self {
        Self {
            rank,
            segments: Vec::new(),
        }
    }

    /// Append a segment, checking monotonicity and validity.
    ///
    /// # Panics
    /// Panics if the segment starts before the previous one ends (beyond
    /// floating tolerance) or has negative durations.
    pub fn push(&mut self, seg: Segment) {
        assert!(
            seg.wall_s >= 0.0 && seg.work_s >= 0.0,
            "segment durations must be non-negative: {seg:?}"
        );
        if let Some(prev) = self.segments.last() {
            assert!(
                seg.start_s >= prev.end_s() - 1e-9 * prev.end_s().abs().max(1.0),
                "segments must be in wall order: prev ends {prev:?}, next {seg:?}"
            );
        }
        if matches!(seg.kind, SegmentKind::Wait) {
            assert!(seg.work_s == 0.0, "wait segments carry no device work");
        }
        self.segments.push(seg);
    }

    /// Wall-clock time of the last segment's end (the rank's finish time).
    pub fn end_s(&self) -> f64 {
        self.segments.last().map_or(0.0, Segment::end_s)
    }

    /// Total device-busy (work) time of a given kind.
    pub fn work_time(&self, kind: SegmentKind) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.work_s)
            .sum()
    }

    /// Total wall time spent in a given kind.
    pub fn wall_time(&self, kind: SegmentKind) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.wall_s)
            .sum()
    }

    /// Merge adjacent segments of the same kind (keeps logs compact for
    /// long runs; preserves total wall and work durations exactly).
    pub fn coalesce(&mut self) {
        let mut out: Vec<Segment> = Vec::with_capacity(self.segments.len());
        for seg in self.segments.drain(..) {
            match out.last_mut() {
                Some(last)
                    if last.kind == seg.kind
                        && (seg.start_s - last.end_s()).abs()
                            <= 1e-9 * last.end_s().abs().max(1.0) =>
                {
                    last.wall_s += seg.wall_s;
                    last.work_s += seg.work_s;
                }
                _ => out.push(seg),
            }
        }
        self.segments = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(kind: SegmentKind, start: f64, wall: f64, work: f64) -> Segment {
        Segment {
            kind,
            start_s: start,
            wall_s: wall,
            work_s: work,
        }
    }

    #[test]
    fn push_and_totals() {
        let mut log = SegmentLog::new(0);
        log.push(seg(SegmentKind::Compute, 0.0, 0.8, 1.0));
        log.push(seg(SegmentKind::Memory, 0.8, 0.4, 0.5));
        log.push(seg(SegmentKind::Wait, 1.2, 0.3, 0.0));
        assert!((log.end_s() - 1.5).abs() < 1e-12);
        assert_eq!(log.work_time(SegmentKind::Compute), 1.0);
        assert_eq!(log.wall_time(SegmentKind::Compute), 0.8);
        assert_eq!(log.work_time(SegmentKind::Wait), 0.0);
        assert_eq!(log.wall_time(SegmentKind::Wait), 0.3);
    }

    #[test]
    #[should_panic(expected = "wall order")]
    fn out_of_order_push_panics() {
        let mut log = SegmentLog::new(0);
        log.push(seg(SegmentKind::Compute, 0.0, 1.0, 1.0));
        log.push(seg(SegmentKind::Compute, 0.5, 1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "no device work")]
    fn wait_with_work_panics() {
        let mut log = SegmentLog::new(0);
        log.push(seg(SegmentKind::Wait, 0.0, 1.0, 0.5));
    }

    #[test]
    fn coalesce_merges_adjacent_same_kind() {
        let mut log = SegmentLog::new(0);
        log.push(seg(SegmentKind::Compute, 0.0, 0.5, 0.6));
        log.push(seg(SegmentKind::Compute, 0.5, 0.5, 0.6));
        log.push(seg(SegmentKind::Memory, 1.0, 0.2, 0.2));
        let (wc, wm) = (
            log.work_time(SegmentKind::Compute),
            log.work_time(SegmentKind::Memory),
        );
        log.coalesce();
        assert_eq!(log.segments.len(), 2);
        assert!((log.work_time(SegmentKind::Compute) - wc).abs() < 1e-12);
        assert!((log.work_time(SegmentKind::Memory) - wm).abs() < 1e-12);
        assert!((log.end_s() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn empty_log_ends_at_zero() {
        assert_eq!(SegmentLog::new(3).end_s(), 0.0);
    }
}
