//! DVFS frequency tables.
//!
//! Power-scalable clusters expose a discrete set of processor frequencies
//! (P-states). The paper's SystemG nodes run 2.8 GHz Xeons with DVFS enabled;
//! the scalability studies sweep `f` over the available states (Figs. 5, 7,
//! 9). [`DvfsTable`] holds the ascending list of states and answers the
//! queries the model and the simulator need.

/// A discrete table of DVFS frequency states, in Hz, sorted ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsTable {
    levels: Vec<f64>,
}

impl DvfsTable {
    /// Build a table from a list of frequencies in Hz.
    ///
    /// Duplicates are removed and the list is sorted ascending.
    ///
    /// # Panics
    /// Panics if the list is empty or contains a non-positive/non-finite
    /// frequency.
    pub fn new(mut levels: Vec<f64>) -> Self {
        assert!(
            !levels.is_empty(),
            "DVFS table must have at least one state"
        );
        for &f in &levels {
            assert!(f.is_finite() && f > 0.0, "invalid DVFS frequency {f} Hz");
        }
        levels.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
        levels.dedup();
        Self { levels }
    }

    /// Convenience constructor from GHz values.
    pub fn from_ghz(ghz: &[f64]) -> Self {
        Self::new(ghz.iter().map(|g| g * 1e9).collect())
    }

    /// All states, ascending, in Hz.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// The highest (nominal) frequency in Hz.
    pub fn nominal(&self) -> f64 {
        *self.levels.last().expect("non-empty")
    }

    /// The lowest frequency in Hz.
    pub fn min(&self) -> f64 {
        self.levels[0]
    }

    /// Number of P-states.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The state closest to `f` Hz (ties resolve to the lower state).
    pub fn nearest(&self, f: f64) -> f64 {
        assert!(f.is_finite() && f > 0.0, "invalid target frequency {f} Hz");
        *self
            .levels
            .iter()
            .min_by(|a, b| {
                let da = (*a - f).abs();
                let db = (*b - f).abs();
                da.partial_cmp(&db).expect("finite")
            })
            .expect("non-empty")
    }

    /// True when `f` is (within floating tolerance) one of the states.
    pub fn contains(&self, f: f64) -> bool {
        self.levels.iter().any(|&l| (l - f).abs() <= 1e-6 * l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> DvfsTable {
        DvfsTable::from_ghz(&[2.8, 1.6, 2.0, 2.4])
    }

    #[test]
    fn sorted_ascending_and_deduped() {
        let t = DvfsTable::from_ghz(&[2.8, 2.8, 1.6]);
        assert_eq!(t.levels(), &[1.6e9, 2.8e9]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn nominal_is_max_and_min_is_min() {
        let t = table();
        assert_eq!(t.nominal(), 2.8e9);
        assert_eq!(t.min(), 1.6e9);
    }

    #[test]
    fn nearest_picks_closest_state() {
        let t = table();
        assert_eq!(t.nearest(2.75e9), 2.8e9);
        assert_eq!(t.nearest(1.0e9), 1.6e9);
        assert_eq!(t.nearest(2.19e9), 2.0e9);
    }

    #[test]
    fn contains_matches_states_only() {
        let t = table();
        assert!(t.contains(2.4e9));
        assert!(!t.contains(2.5e9));
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_table_panics() {
        DvfsTable::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid DVFS frequency")]
    fn nonpositive_frequency_panics() {
        DvfsTable::new(vec![0.0]);
    }
}
