//! Component power states and the `P ∝ f^γ` scaling law (paper Eq. 20).
//!
//! The paper's energy model (Eqs. 7–9) splits every component's power into an
//! *idle* level drawn for the whole execution and a *delta* drawn only while
//! the component is actively working:
//!
//! ```text
//! E_c = P_c_idle · T  +  ΔP_c · T_c_active        (per component)
//! ```
//!
//! Following Kim et al. (the paper's [6, 34]), the active delta of a
//! frequency-scaled component follows `ΔP(f) = ΔP_ref · (f / f_ref)^γ` with
//! `γ ≥ 1` (the paper sets `γ = 2` on SystemG). Idle power is treated as
//! frequency-independent (dominated by leakage and uncore).

use crate::units::Watts;

/// Power-vs-frequency law for a DVFS-scaled component: `ΔP(f) = ΔP_ref · (f/f_ref)^γ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Active (delta over idle) power at the reference frequency, in watts.
    pub delta_ref_w: f64,
    /// Reference frequency in Hz (normally the nominal DVFS state).
    pub f_ref_hz: f64,
    /// Exponent `γ ≥ 1` (paper Eq. 20; `γ = 2` on SystemG).
    pub gamma: f64,
}

impl PowerLaw {
    /// Construct a power law, validating its parameters.
    ///
    /// # Panics
    /// Panics if `delta_ref_w < 0`, `f_ref_hz <= 0` or `gamma < 1`.
    pub fn new(delta_ref_w: f64, f_ref_hz: f64, gamma: f64) -> Self {
        assert!(
            delta_ref_w.is_finite() && delta_ref_w >= 0.0,
            "delta power must be non-negative, got {delta_ref_w} W"
        );
        assert!(
            f_ref_hz.is_finite() && f_ref_hz > 0.0,
            "reference frequency must be positive, got {f_ref_hz} Hz"
        );
        assert!(
            gamma.is_finite() && gamma >= 1.0,
            "gamma must be >= 1 (paper Eq. 20), got {gamma}"
        );
        Self {
            delta_ref_w,
            f_ref_hz,
            gamma,
        }
    }

    /// Active delta power at frequency `f_hz`.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite frequency.
    #[must_use]
    pub fn delta_at(&self, f_hz: f64) -> Watts {
        assert!(
            f_hz.is_finite() && f_hz > 0.0,
            "invalid frequency {f_hz} Hz"
        );
        Watts::new(self.delta_ref_w * (f_hz / self.f_ref_hz).powf(self.gamma))
    }
}

/// The running/idle power pair of a non-DVFS component (Table 1:
/// `P_m` / `P_m_idle`, `P_IO` / `P_IO_idle`, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentPower {
    /// Average power while actively working, in watts.
    pub running_w: f64,
    /// Average power while idle, in watts.
    pub idle_w: f64,
}

impl ComponentPower {
    /// Construct a running/idle pair.
    ///
    /// # Panics
    /// Panics unless `0 <= idle_w <= running_w`.
    pub fn new(running_w: f64, idle_w: f64) -> Self {
        assert!(
            idle_w.is_finite() && idle_w >= 0.0,
            "idle power must be non-negative, got {idle_w} W"
        );
        assert!(
            running_w.is_finite() && running_w >= idle_w,
            "running power ({running_w} W) must be >= idle power ({idle_w} W)"
        );
        Self { running_w, idle_w }
    }

    /// The active delta `ΔP = P_running − P_idle` (Table 1).
    #[must_use]
    pub fn delta(&self) -> Watts {
        Watts::new(self.running_w - self.idle_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_at_reference_is_reference() {
        let law = PowerLaw::new(12.5, 2.8e9, 2.0);
        assert!((law.delta_at(2.8e9).raw() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn delta_scales_quadratically_for_gamma_two() {
        let law = PowerLaw::new(10.0, 2.0e9, 2.0);
        // Half the frequency -> a quarter of the delta power.
        assert!((law.delta_at(1.0e9).raw() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gamma_one_is_linear() {
        let law = PowerLaw::new(10.0, 2.0e9, 1.0);
        assert!((law.delta_at(1.0e9).raw() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gamma must be >= 1")]
    fn gamma_below_one_panics() {
        PowerLaw::new(10.0, 2.0e9, 0.5);
    }

    #[test]
    fn component_power_delta() {
        let p = ComponentPower::new(30.0, 15.0);
        assert_eq!(p.delta(), Watts::new(15.0));
    }

    #[test]
    #[should_panic(expected = "must be >= idle power")]
    fn running_below_idle_panics() {
        ComponentPower::new(10.0, 15.0);
    }

    #[test]
    fn zero_delta_component_is_allowed() {
        // Components that never change state (e.g. motherboard) have ΔP = 0.
        let p = ComponentPower::new(25.0, 25.0);
        assert_eq!(p.delta(), Watts::ZERO);
    }
}
