//! Virtual time.
//!
//! All time in the simulator is *virtual*: a per-rank [`Seconds`] clock,
//! advanced explicitly by work charges and message arrivals. Nothing here
//! depends on wall-clock time, so simulated experiments are exactly
//! reproducible.

use crate::units::Seconds;

/// A per-rank virtual clock, in seconds since the start of the run.
///
/// The clock only moves forward. [`VirtualClock::advance`] moves it by a
/// non-negative delta; [`VirtualClock::advance_to`] jumps it forward to an
/// absolute time (used when a message arrival forces a wait) and returns the
/// waited duration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    now: Seconds,
}

impl VirtualClock {
    /// A clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self { now: Seconds::ZERO }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Advance the clock by `dt`.
    ///
    /// # Panics
    /// Panics if `dt` is negative or not finite — a negative charge is always
    /// a bug in the caller's cost model.
    pub fn advance(&mut self, dt: Seconds) {
        assert!(
            dt.is_finite() && dt >= Seconds::ZERO,
            "virtual clock advanced by invalid dt={dt}"
        );
        self.now += dt;
    }

    /// Jump the clock forward to absolute time `t` if `t` is in the future.
    ///
    /// Returns the duration waited (zero when `t` is in the past, i.e. the
    /// awaited event already happened).
    ///
    /// # Panics
    /// Panics if `t` is not finite.
    pub fn advance_to(&mut self, t: Seconds) -> Seconds {
        assert!(t.is_finite(), "virtual clock target must be finite");
        if t > self.now {
            let waited = t - self.now;
            self.now = t;
            waited
        } else {
            Seconds::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), Seconds::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = VirtualClock::new();
        c.advance(Seconds::new(1.5));
        c.advance(Seconds::new(0.25));
        assert!((c.now().raw() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn advance_by_zero_is_noop() {
        let mut c = VirtualClock::new();
        c.advance(Seconds::new(1.0));
        c.advance(Seconds::ZERO);
        assert_eq!(c.now(), Seconds::new(1.0));
    }

    #[test]
    fn advance_to_future_reports_wait() {
        let mut c = VirtualClock::new();
        c.advance(Seconds::new(2.0));
        let waited = c.advance_to(Seconds::new(5.0));
        assert!((waited.raw() - 3.0).abs() < 1e-12);
        assert_eq!(c.now(), Seconds::new(5.0));
    }

    #[test]
    fn advance_to_past_is_noop() {
        let mut c = VirtualClock::new();
        c.advance(Seconds::new(2.0));
        let waited = c.advance_to(Seconds::new(1.0));
        assert_eq!(waited, Seconds::ZERO);
        assert_eq!(c.now(), Seconds::new(2.0));
    }

    #[test]
    #[should_panic(expected = "invalid dt")]
    fn negative_advance_panics() {
        VirtualClock::new().advance(Seconds::new(-1.0));
    }

    #[test]
    #[should_panic(expected = "invalid dt")]
    fn nan_advance_panics() {
        VirtualClock::new().advance(Seconds::new(f64::NAN));
    }
}
