//! Virtual time.
//!
//! All time in the simulator is *virtual*: a per-rank `f64` clock measured in
//! seconds, advanced explicitly by work charges and message arrivals. Nothing
//! here depends on wall-clock time, so simulated experiments are exactly
//! reproducible.

/// A per-rank virtual clock, in seconds since the start of the run.
///
/// The clock only moves forward. [`VirtualClock::advance`] moves it by a
/// non-negative delta; [`VirtualClock::advance_to`] jumps it forward to an
/// absolute time (used when a message arrival forces a wait) and returns the
/// waited duration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self { now: 0.0 }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance the clock by `dt` seconds.
    ///
    /// # Panics
    /// Panics if `dt` is negative or not finite — a negative charge is always
    /// a bug in the caller's cost model.
    pub fn advance(&mut self, dt: f64) {
        assert!(
            dt.is_finite() && dt >= 0.0,
            "virtual clock advanced by invalid dt={dt}"
        );
        self.now += dt;
    }

    /// Jump the clock forward to absolute time `t` if `t` is in the future.
    ///
    /// Returns the duration waited (zero when `t` is in the past, i.e. the
    /// awaited event already happened).
    pub fn advance_to(&mut self, t: f64) -> f64 {
        assert!(t.is_finite(), "virtual clock target must be finite");
        if t > self.now {
            let waited = t - self.now;
            self.now = t;
            waited
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), 0.0);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(0.25);
        assert!((c.now() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn advance_by_zero_is_noop() {
        let mut c = VirtualClock::new();
        c.advance(1.0);
        c.advance(0.0);
        assert_eq!(c.now(), 1.0);
    }

    #[test]
    fn advance_to_future_reports_wait() {
        let mut c = VirtualClock::new();
        c.advance(2.0);
        let waited = c.advance_to(5.0);
        assert!((waited - 3.0).abs() < 1e-12);
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    fn advance_to_past_is_noop() {
        let mut c = VirtualClock::new();
        c.advance(2.0);
        let waited = c.advance_to(1.0);
        assert_eq!(waited, 0.0);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid dt")]
    fn negative_advance_panics() {
        VirtualClock::new().advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid dt")]
    fn nan_advance_panics() {
        VirtualClock::new().advance(f64::NAN);
    }
}
