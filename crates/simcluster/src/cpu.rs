//! CPU specification: `tc = CPI / f` (paper Table 1) and DVFS-scaled power.

use crate::freq::DvfsTable;
use crate::power::PowerLaw;
use crate::units::{Hertz, Instructions, Seconds, Watts};

/// A per-core CPU description.
///
/// The analytical model's machine-dependent vector uses a single number for
/// the CPU: the average time per on-chip instruction `tc = CPI / f`
/// (Patterson & Hennessy, paper's [28]). The simulator keeps the `CPI` and
/// the DVFS table so `tc` can be evaluated at any P-state, plus the power
/// law for `ΔP_c(f)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Average cycles per on-chip instruction for a typical instruction mix.
    ///
    /// Real codes deviate from this (EP's arithmetic-heavy mix differs from
    /// CG's pointer chasing); per-application effective CPI is *measured* by
    /// the `microbench::perfmon` analog, mirroring the paper's methodology.
    pub base_cpi: f64,
    /// Available DVFS states.
    pub dvfs: DvfsTable,
    /// Idle power of one core, in watts (frequency-independent).
    pub idle_w: f64,
    /// Active delta power law `ΔP_c(f)`.
    pub delta: PowerLaw,
}

impl CpuSpec {
    /// Construct a CPU spec.
    ///
    /// # Panics
    /// Panics on non-positive `base_cpi` or negative `idle_w`.
    pub fn new(base_cpi: f64, dvfs: DvfsTable, idle_w: f64, delta: PowerLaw) -> Self {
        assert!(
            base_cpi.is_finite() && base_cpi > 0.0,
            "CPI must be positive, got {base_cpi}"
        );
        assert!(
            idle_w.is_finite() && idle_w >= 0.0,
            "idle power must be non-negative, got {idle_w} W"
        );
        Self {
            base_cpi,
            dvfs,
            idle_w,
            delta,
        }
    }

    /// Average time per on-chip instruction at frequency `f_hz`:
    /// `tc = CPI / f` (Table 1).
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite frequency.
    #[must_use]
    pub fn tc(&self, f_hz: f64) -> Seconds {
        assert!(
            f_hz.is_finite() && f_hz > 0.0,
            "invalid frequency {f_hz} Hz"
        );
        Instructions::new(self.base_cpi) / Hertz::new(f_hz)
    }

    /// `tc` at the nominal (highest) DVFS state.
    #[must_use]
    pub fn tc_nominal(&self) -> Seconds {
        self.tc(self.dvfs.nominal())
    }

    /// Active delta power at frequency `f_hz`.
    #[must_use]
    pub fn delta_power(&self, f_hz: f64) -> Watts {
        self.delta.delta_at(f_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon() -> CpuSpec {
        CpuSpec::new(
            0.9,
            DvfsTable::from_ghz(&[1.6, 2.0, 2.4, 2.8]),
            10.0,
            PowerLaw::new(12.5, 2.8e9, 2.0),
        )
    }

    #[test]
    fn tc_is_cpi_over_f() {
        let c = xeon();
        assert!((c.tc(2.8e9).raw() - 0.9 / 2.8e9).abs() < 1e-24);
    }

    #[test]
    fn tc_grows_when_frequency_drops() {
        let c = xeon();
        assert!(c.tc(1.6e9) > c.tc(2.8e9));
    }

    #[test]
    fn nominal_uses_top_state() {
        let c = xeon();
        assert_eq!(c.tc_nominal(), c.tc(2.8e9));
    }

    #[test]
    fn delta_power_scales_with_dvfs() {
        let c = xeon();
        let hi = c.delta_power(2.8e9).raw();
        let lo = c.delta_power(1.6e9).raw();
        // gamma = 2: (1.6/2.8)^2 ≈ 0.3265
        assert!((lo / hi - (1.6f64 / 2.8).powi(2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "CPI must be positive")]
    fn zero_cpi_panics() {
        CpuSpec::new(
            0.0,
            DvfsTable::from_ghz(&[2.0]),
            5.0,
            PowerLaw::new(10.0, 2.0e9, 2.0),
        );
    }
}
