//! # simcluster — a power-aware cluster simulator
//!
//! This crate is the hardware substrate for the iso-energy-efficiency
//! reproduction. It stands in for the two real clusters used in the paper
//! (Virginia Tech's *SystemG* and the *Dori* Opteron cluster): it describes
//! machines in exactly the terms the analytical model consumes — per-core
//! computation latency `tc = CPI / f`, memory access latency `tm`, network
//! startup/per-byte costs `ts`/`tw`, and per-component running/idle power
//! with DVFS scaling `ΔP(f) ∝ f^γ` — and it accounts virtual time and energy
//! for simulated program runs.
//!
//! The simulator is deliberately *richer* than the analytical model:
//! memory latency depends on the working-set size through a cache hierarchy,
//! waits caused by load imbalance are tracked separately from useful work,
//! and energy is integrated per component from an interval log rather than
//! computed from closed forms. The gap between the two is what produces the
//! few-percent prediction errors the paper reports.
//!
//! ## Layout
//!
//! * [`freq`] — DVFS frequency tables.
//! * [`power`] — component power states and the `f^γ` power law (Eq. 20).
//! * [`cpu`] — CPU specification (`tc = CPI / f`, Table 1).
//! * [`memory`] — cache hierarchy and working-set dependent latency.
//! * [`node`] — per-core node composition.
//! * [`machine`] — cluster presets ([`machine::system_g`], [`machine::dori`]).
//! * [`clock`] — virtual time.
//! * [`events`] — typed state-interval logs (compute/memory/network/wait).
//! * [`energy`] — per-component energy integration over interval logs.
//! * [`units`] — dimensional-analysis newtypes (`Seconds`, `Joules`, …)
//!   shared by the whole workspace.

#![forbid(unsafe_code)]

pub mod clock;
pub mod cpu;
pub mod energy;
pub mod events;
pub mod freq;
pub mod machine;
pub mod memory;
pub mod node;
pub mod power;
pub mod units;

pub use clock::VirtualClock;
pub use cpu::CpuSpec;
pub use energy::{ComponentEnergy, EnergyMeter};
pub use events::{Segment, SegmentKind, SegmentLog};
pub use freq::DvfsTable;
pub use machine::{dori, system_g, ClusterSpec, LinkSpec};
pub use memory::{AccessProfile, CacheLevel, MemorySpec};
pub use node::NodeSpec;
pub use power::{ComponentPower, PowerLaw};
pub use units::{Accesses, Bytes, Hertz, Instructions, Joules, Messages, Seconds, Watts};
