//! Sampled power traces.

use simcluster::units::{Joules, Seconds, Watts};
use simcluster::{EnergyMeter, SegmentLog};

/// Why a [`PowerProfile`] could not be integrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrateError {
    /// Fewer than two samples: no interval to integrate over.
    TooFewSamples {
        /// How many samples the profile held.
        got: usize,
    },
    /// Sample timestamps are not strictly increasing.
    Unsorted {
        /// Index of the first sample whose time does not increase.
        index: usize,
    },
}

impl std::fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewSamples { got } => {
                write!(f, "cannot integrate a profile with {got} sample(s)")
            }
            Self::Unsorted { index } => {
                write!(f, "sample {index} is out of time order")
            }
        }
    }
}

impl std::error::Error for IntegrateError {}

/// One sample of system power, decomposed per component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Virtual time of the sample, seconds.
    pub t_s: f64,
    /// CPU power across all sampled ranks.
    pub cpu_w: Watts,
    /// Memory power.
    pub mem_w: Watts,
    /// NIC power.
    pub net_w: Watts,
    /// Disk power.
    pub disk_w: Watts,
    /// Motherboard/fans/PSU power.
    pub other_w: Watts,
}

impl PowerSample {
    /// Total system power at this sample.
    #[must_use]
    pub fn total_w(&self) -> Watts {
        self.cpu_w + self.mem_w + self.net_w + self.disk_w + self.other_w
    }
}

/// A sampled power trace of a parallel run — the paper's Fig. 10 object.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerProfile {
    /// Samples in time order, evenly spaced.
    pub samples: Vec<PowerSample>,
    /// Sampling interval, seconds.
    pub dt_s: f64,
    /// Number of ranks aggregated into the trace.
    pub ranks: usize,
}

impl PowerProfile {
    /// Sample the aggregate power of `logs` every `dt_s` seconds from 0 to
    /// the latest log end (inclusive of one trailing idle sample).
    ///
    /// # Panics
    /// Panics if `dt_s <= 0` or `logs` is empty.
    pub fn sample(meter: &EnergyMeter, logs: &[&SegmentLog], dt_s: f64) -> Self {
        assert!(
            dt_s > 0.0 && dt_s.is_finite(),
            "invalid sample interval {dt_s}"
        );
        assert!(!logs.is_empty(), "no rank logs to sample");
        let span = logs.iter().map(|l| l.end_s()).fold(0.0, f64::max);
        let steps = (span / dt_s).ceil() as usize + 1;
        let mut samples = Vec::with_capacity(steps);
        for k in 0..steps {
            let t = k as f64 * dt_s;
            let mut acc = [Watts::ZERO; 5];
            for log in logs {
                let p = meter.power_at(log, Seconds::new(t));
                for (a, v) in acc.iter_mut().zip(p) {
                    *a += v;
                }
            }
            samples.push(PowerSample {
                t_s: t,
                cpu_w: acc[0],
                mem_w: acc[1],
                net_w: acc[2],
                disk_w: acc[3],
                other_w: acc[4],
            });
        }
        Self {
            samples,
            dt_s,
            ranks: logs.len(),
        }
    }

    /// Trapezoidal energy integral of the trace.
    ///
    /// # Errors
    /// [`IntegrateError::TooFewSamples`] when there is no interval to
    /// integrate over, and [`IntegrateError::Unsorted`] when sample times
    /// are not strictly increasing — both used to silently yield 0 J, which
    /// masked sampling bugs upstream.
    pub fn integrate(&self) -> Result<Joules, IntegrateError> {
        if self.samples.len() < 2 {
            return Err(IntegrateError::TooFewSamples {
                got: self.samples.len(),
            });
        }
        let mut e = Joules::ZERO;
        for (i, w) in self.samples.windows(2).enumerate() {
            if w[1].t_s <= w[0].t_s {
                return Err(IntegrateError::Unsorted { index: i + 1 });
            }
            e += 0.5 * (w[0].total_w() + w[1].total_w()) * Seconds::new(w[1].t_s - w[0].t_s);
        }
        Ok(e)
    }

    /// Peak total power in the trace.
    #[must_use]
    pub fn peak_w(&self) -> Watts {
        self.samples
            .iter()
            .map(PowerSample::total_w)
            .fold(Watts::ZERO, Watts::max)
    }

    /// Mean total power.
    #[must_use]
    pub fn mean_w(&self) -> Watts {
        if self.samples.is_empty() {
            return Watts::ZERO;
        }
        self.samples.iter().map(PowerSample::total_w).sum::<Watts>() / self.samples.len() as f64
    }

    /// The idle baseline (system idle power × ranks) the trace fluctuates
    /// over — the dashed line in the paper's Fig. 10.
    #[must_use]
    pub fn idle_baseline_w(&self, meter: &EnergyMeter) -> Watts {
        meter.node().system_idle_w() * self.ranks as f64
    }

    /// Record the profile into an obs [`obs::Timeline`] as six `power.*`
    /// watt series (cpu/mem/net/disk/other/total), so a Fig. 10 power
    /// draw renders as Perfetto counter tracks under the run's span
    /// tracks. Size the timeline to at least [`Self::samples`]`.len()` or
    /// the oldest samples are ring-evicted.
    pub fn record_timeline(&self, timeline: &mut obs::Timeline) {
        for s in &self.samples {
            timeline.record("power.cpu", "W", s.t_s, s.cpu_w.raw());
            timeline.record("power.mem", "W", s.t_s, s.mem_w.raw());
            timeline.record("power.net", "W", s.t_s, s.net_w.raw());
            timeline.record("power.disk", "W", s.t_s, s.disk_w.raw());
            timeline.record("power.other", "W", s.t_s, s.other_w.raw());
            timeline.record("power.total", "W", s.t_s, s.total_w().raw());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::{system_g, Segment, SegmentKind};

    fn meter() -> EnergyMeter {
        EnergyMeter::new(system_g().node, 2.8e9)
    }

    fn busy_log(dur: f64) -> SegmentLog {
        let mut log = SegmentLog::new(0);
        log.push(Segment {
            kind: SegmentKind::Compute,
            start_s: 0.0,
            wall_s: dur,
            work_s: dur,
        });
        log
    }

    #[test]
    fn samples_cover_the_span() {
        let m = meter();
        let log = busy_log(1.0);
        let prof = PowerProfile::sample(&m, &[&log], 0.01);
        assert!(prof.samples.len() >= 100);
        assert_eq!(prof.samples[0].t_s, 0.0);
    }

    #[test]
    fn trace_integral_matches_meter_energy() {
        let m = meter();
        let log = busy_log(2.0);
        let e_meter = m.rank_energy(&log, Seconds::new(2.0)).total();
        let prof = PowerProfile::sample(&m, &[&log], 1e-3);
        let e_trace = prof.integrate().expect("sampled profile integrates");
        assert!(
            (e_trace - e_meter).abs() / e_meter < 5e-3,
            "trace {e_trace} vs meter {e_meter}"
        );
    }

    #[test]
    fn timeline_export_carries_all_components_in_time_order() {
        let m = meter();
        let log = busy_log(1.0);
        let prof = PowerProfile::sample(&m, &[&log], 0.1);
        let mut timeline = obs::Timeline::new(prof.samples.len());
        prof.record_timeline(&mut timeline);
        let tracks = timeline.counter_tracks();
        assert_eq!(tracks.len(), 6, "cpu/mem/net/disk/other/total");
        let total = tracks
            .iter()
            .find(|t| t.name == "power.total")
            .expect("total track");
        assert_eq!(total.unit, "W");
        assert_eq!(total.samples.len(), prof.samples.len());
        assert!(total.samples.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(total.samples.iter().all(|&(_, v)| v.is_finite() && v > 0.0));
        assert_eq!(timeline.dropped(), 0);
    }

    #[test]
    fn power_fluctuates_over_idle_baseline() {
        let m = meter();
        let mut log = SegmentLog::new(0);
        log.push(Segment {
            kind: SegmentKind::Compute,
            start_s: 0.0,
            wall_s: 1.0,
            work_s: 1.0,
        });
        log.push(Segment {
            kind: SegmentKind::Wait,
            start_s: 1.0,
            wall_s: 1.0,
            work_s: 0.0,
        });
        let prof = PowerProfile::sample(&m, &[&log], 0.05);
        let idle = prof.idle_baseline_w(&m);
        assert!(prof.peak_w() > idle);
        // During the wait the trace returns to baseline.
        let late = prof
            .samples
            .iter()
            .find(|s| s.t_s > 1.5)
            .expect("late sample");
        assert!((late.total_w() - idle).abs() < Watts::new(1e-9));
    }

    #[test]
    fn multiple_ranks_aggregate() {
        let m = meter();
        let a = busy_log(1.0);
        let mut b = busy_log(1.0);
        b.rank = 1;
        let single = PowerProfile::sample(&m, &[&a], 0.1);
        let double = PowerProfile::sample(&m, &[&a, &b], 0.1);
        assert!(
            (double.samples[1].total_w() - 2.0 * single.samples[1].total_w()).abs()
                < Watts::new(1e-9)
        );
        assert_eq!(double.ranks, 2);
    }

    #[test]
    #[should_panic(expected = "invalid sample interval")]
    fn zero_interval_rejected() {
        let m = meter();
        let log = busy_log(1.0);
        PowerProfile::sample(&m, &[&log], 0.0);
    }

    #[test]
    fn integrate_rejects_too_few_samples() {
        let mut prof = PowerProfile {
            samples: vec![],
            dt_s: 0.1,
            ranks: 1,
        };
        assert_eq!(
            prof.integrate(),
            Err(IntegrateError::TooFewSamples { got: 0 })
        );
        prof.samples.push(PowerSample {
            t_s: 0.0,
            cpu_w: Watts::new(1.0),
            mem_w: Watts::ZERO,
            net_w: Watts::ZERO,
            disk_w: Watts::ZERO,
            other_w: Watts::ZERO,
        });
        assert_eq!(
            prof.integrate(),
            Err(IntegrateError::TooFewSamples { got: 1 })
        );
    }

    #[test]
    fn integrate_rejects_unsorted_samples() {
        let m = meter();
        let log = busy_log(1.0);
        let mut prof = PowerProfile::sample(&m, &[&log], 0.1);
        prof.samples.swap(2, 3);
        let err = prof.integrate().expect_err("out-of-order samples");
        assert!(matches!(err, IntegrateError::Unsorted { index: 2 | 3 }));
        assert!(err.to_string().contains("out of time order"));
    }
}
