//! # powerpack — power profiling and energy analysis
//!
//! A software analog of the **PowerPack 2.0** framework the paper uses for
//! all its measurements (Ge, Feng, Song, Cameron — the paper's [20]):
//! component-level power traces synchronized with application phases, and
//! energy integration per component and per phase.
//!
//! Real PowerPack reads shunt resistors and wall meters; this version
//! samples the simulator's typed activity logs through
//! [`simcluster::EnergyMeter::power_at`]. The semantics match the paper's
//! Fig. 10: per-component power fluctuates over an idle-state baseline while
//! the application computes, accesses memory, or drives the NIC.
//!
//! * [`profile`] — sampled multi-channel power traces.
//! * [`session`] — the start/tag/stop measurement API.
//! * [`report`] — text/CSV rendering of profiles and energy summaries.

#![forbid(unsafe_code)]

pub mod profile;
pub mod report;
pub mod session;

pub use profile::{IntegrateError, PowerProfile, PowerSample};
pub use report::{profile_csv, summary_table};
pub use session::{PhaseEnergy, Session, SessionReport};
