//! The PowerPack measurement session API.
//!
//! Mirrors the real framework's workflow: attach to a run, synchronize
//! power data with application phases (the `powerpack_start/stop/tag`
//! pattern), and report per-component and per-phase energy.

use simcluster::units::{Joules, Seconds, Watts};
use simcluster::{ComponentEnergy, EnergyMeter, SegmentLog};

use crate::profile::PowerProfile;

/// Energy attributed to one application phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseEnergy {
    /// Phase name (from [`mps::Ctx::phase`]-style markers).
    pub name: String,
    /// Phase start, virtual seconds (earliest marker across ranks).
    pub start_s: f64,
    /// Phase end, virtual seconds.
    pub end_s: f64,
    /// Energy consumed by the whole system during the phase.
    pub energy_j: Joules,
}

/// The result of a measurement session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Total energy per component.
    pub energy: ComponentEnergy,
    /// The run's span.
    pub span_s: Seconds,
    /// Mean system power.
    pub mean_power_w: Watts,
    /// Per-phase energy breakdown (present when markers were recorded).
    pub phases: Vec<PhaseEnergy>,
}

/// A measurement session over one simulated run.
#[derive(Debug)]
pub struct Session {
    meter: EnergyMeter,
    sample_dt_s: f64,
}

impl Session {
    /// Attach a session to runs on `meter`'s node/frequency, with a default
    /// sampling interval of 1 ms of virtual time.
    pub fn new(meter: EnergyMeter) -> Self {
        Self {
            meter,
            sample_dt_s: 1e-3,
        }
    }

    /// Override the trace sampling interval.
    ///
    /// # Panics
    /// Panics on a non-positive interval.
    pub fn with_sample_interval(mut self, dt_s: f64) -> Self {
        assert!(dt_s > 0.0 && dt_s.is_finite(), "invalid sample interval");
        self.sample_dt_s = dt_s;
        self
    }

    /// The meter used by the session.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Measure a finished run: total and per-phase energy.
    ///
    /// `markers` are per-rank `(name, time)` lists; a phase named `x` spans
    /// from its earliest marker to the earliest marker of the *next* phase
    /// name in timeline order (the paper synchronizes PowerPack traces with
    /// application events the same way).
    pub fn measure(&self, logs: &[&SegmentLog], markers: &[Vec<(String, f64)>]) -> SessionReport {
        assert!(!logs.is_empty(), "no rank logs");
        let owned: Vec<SegmentLog> = logs.iter().map(|l| (*l).clone()).collect();
        let (energy, span) = self.meter.run_energy(&owned);
        let mean_power = if span > Seconds::ZERO {
            energy.total() / span
        } else {
            Watts::ZERO
        };

        // Merge markers across ranks: phase start = earliest occurrence.
        let mut merged: Vec<(String, f64)> = Vec::new();
        for rank_markers in markers {
            for (name, t) in rank_markers {
                match merged.iter_mut().find(|(n, _)| n == name) {
                    Some((_, t0)) => *t0 = t0.min(*t),
                    None => merged.push((name.clone(), *t)),
                }
            }
        }
        merged.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));

        let mut phases = Vec::with_capacity(merged.len());
        for (i, (name, start)) in merged.iter().enumerate() {
            let end = merged.get(i + 1).map_or(span.raw(), |(_, t)| *t);
            if end <= *start {
                continue;
            }
            let energy_j = self.energy_between(&owned, *start, end);
            phases.push(PhaseEnergy {
                name: name.clone(),
                start_s: *start,
                end_s: end,
                energy_j,
            });
        }

        SessionReport {
            energy,
            span_s: span,
            mean_power_w: mean_power,
            phases,
        }
    }

    /// Produce a sampled power trace of the run (the paper's Fig. 10).
    pub fn profile(&self, logs: &[&SegmentLog]) -> PowerProfile {
        PowerProfile::sample(&self.meter, logs, self.sample_dt_s)
    }

    /// Trapezoid-integrated energy of the window `[t0, t1)` across ranks.
    fn energy_between(&self, logs: &[SegmentLog], t0: f64, t1: f64) -> Joules {
        let dt = self.sample_dt_s;
        let steps = (((t1 - t0) / dt).ceil() as usize).max(1);
        let slice = Seconds::new((t1 - t0) / steps as f64);
        let mut e = Joules::ZERO;
        for k in 0..steps {
            let t = t0 + (k as f64 + 0.5) * slice.raw();
            let mut w = Watts::ZERO;
            for log in logs {
                w += self
                    .meter
                    .power_at(log, Seconds::new(t))
                    .into_iter()
                    .sum::<Watts>();
            }
            e += w * slice;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::{system_g, Segment, SegmentKind};

    fn session() -> Session {
        Session::new(EnergyMeter::new(system_g().node, 2.8e9))
    }

    fn log_two_phases() -> (SegmentLog, Vec<(String, f64)>) {
        let mut log = SegmentLog::new(0);
        log.push(Segment {
            kind: SegmentKind::Compute,
            start_s: 0.0,
            wall_s: 1.0,
            work_s: 1.0,
        });
        log.push(Segment {
            kind: SegmentKind::Memory,
            start_s: 1.0,
            wall_s: 1.0,
            work_s: 1.0,
        });
        let markers = vec![("compute".to_string(), 0.0), ("memory".to_string(), 1.0)];
        (log, markers)
    }

    #[test]
    fn report_totals_match_meter() {
        let s = session();
        let (log, markers) = log_two_phases();
        let rep = s.measure(&[&log], &[markers]);
        let direct = s.meter().rank_energy(&log, Seconds::new(2.0)).total();
        assert!((rep.energy.total() - direct).abs() < Joules::new(1e-9));
        assert_eq!(rep.span_s, Seconds::new(2.0));
        assert!(rep.mean_power_w > Watts::ZERO);
    }

    #[test]
    fn phase_energies_sum_to_total() {
        let s = session();
        let (log, markers) = log_two_phases();
        let rep = s.measure(&[&log], &[markers]);
        assert_eq!(rep.phases.len(), 2);
        let phase_sum: Joules = rep.phases.iter().map(|p| p.energy_j).sum();
        assert!(
            (phase_sum - rep.energy.total()).abs() / rep.energy.total() < 1e-2,
            "phases {phase_sum} vs total {}",
            rep.energy.total()
        );
    }

    #[test]
    fn compute_phase_uses_more_power_than_memory_phase() {
        // On SystemG the CPU delta exceeds the memory delta.
        let s = session();
        let (log, markers) = log_two_phases();
        let rep = s.measure(&[&log], &[markers]);
        let pc = rep.phases.iter().find(|p| p.name == "compute").unwrap();
        let pm = rep.phases.iter().find(|p| p.name == "memory").unwrap();
        assert!(pc.energy_j > pm.energy_j);
    }

    #[test]
    fn profile_has_configured_interval() {
        let s = session().with_sample_interval(0.25);
        let (log, _) = log_two_phases();
        let prof = s.profile(&[&log]);
        assert_eq!(prof.dt_s, 0.25);
        assert!(prof.samples.len() >= 8);
    }

    #[test]
    fn repeated_markers_take_earliest_time() {
        let s = session();
        let (log, _) = log_two_phases();
        let m0 = vec![("a".to_string(), 0.5)];
        let m1 = vec![("a".to_string(), 0.2)];
        let rep = s.measure(&[&log], &[m0, m1]);
        assert_eq!(rep.phases.len(), 1);
        assert_eq!(rep.phases[0].start_s, 0.2);
    }
}
