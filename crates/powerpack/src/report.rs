//! Text and CSV rendering of profiles and energy summaries.

use crate::profile::PowerProfile;
use crate::session::SessionReport;

/// Render a power profile as CSV with a header row — the raw data behind a
/// Fig.-10-style plot.
pub fn profile_csv(profile: &PowerProfile) -> String {
    let mut out = String::with_capacity(profile.samples.len() * 48 + 64);
    out.push_str("t_s,cpu_w,mem_w,net_w,disk_w,other_w,total_w\n");
    for s in &profile.samples {
        out.push_str(&format!(
            "{:.6},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
            s.t_s,
            s.cpu_w,
            s.mem_w,
            s.net_w,
            s.disk_w,
            s.other_w,
            s.total_w()
        ));
    }
    out
}

/// Render a session report as an aligned text table.
pub fn summary_table(report: &SessionReport) -> String {
    let e = &report.energy;
    let total = e.total();
    let pct = |x: f64| if total > 0.0 { 100.0 * x / total } else { 0.0 };
    let mut out = String::new();
    out.push_str(&format!(
        "span: {:.4} s   mean power: {:.1} W   total energy: {:.1} J\n",
        report.span_s, report.mean_power_w, total
    ));
    out.push_str("component   energy (J)      share\n");
    out.push_str(&format!("  cpu       {:>10.1}    {:>5.1}%\n", e.cpu_j, pct(e.cpu_j)));
    out.push_str(&format!("  memory    {:>10.1}    {:>5.1}%\n", e.memory_j, pct(e.memory_j)));
    out.push_str(&format!("  network   {:>10.1}    {:>5.1}%\n", e.network_j, pct(e.network_j)));
    out.push_str(&format!("  disk      {:>10.1}    {:>5.1}%\n", e.disk_j, pct(e.disk_j)));
    out.push_str(&format!("  other     {:>10.1}    {:>5.1}%\n", e.other_j, pct(e.other_j)));
    if !report.phases.is_empty() {
        out.push_str("phase                start (s)    end (s)   energy (J)\n");
        for p in &report.phases {
            out.push_str(&format!(
                "  {:<18} {:>9.4}  {:>9.4}   {:>10.1}\n",
                p.name, p.start_s, p.end_s, p.energy_j
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PowerSample;
    use crate::session::PhaseEnergy;
    use simcluster::ComponentEnergy;

    fn sample_profile() -> PowerProfile {
        PowerProfile {
            samples: vec![
                PowerSample { t_s: 0.0, cpu_w: 10.0, mem_w: 3.0, net_w: 1.0, disk_w: 1.0, other_w: 5.0 },
                PowerSample { t_s: 0.1, cpu_w: 22.0, mem_w: 3.0, net_w: 1.0, disk_w: 1.0, other_w: 5.0 },
            ],
            dt_s: 0.1,
            ranks: 1,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = profile_csv(&sample_profile());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("t_s,"));
        assert!(lines[1].starts_with("0.000000,10.000"));
        // Total column = sum of components.
        assert!(lines[1].ends_with(",20.000"));
    }

    #[test]
    fn summary_mentions_all_components_and_phases() {
        let rep = SessionReport {
            energy: ComponentEnergy {
                cpu_j: 50.0,
                memory_j: 20.0,
                network_j: 5.0,
                disk_j: 5.0,
                other_j: 20.0,
            },
            span_s: 1.0,
            mean_power_w: 100.0,
            phases: vec![PhaseEnergy {
                name: "solve".into(),
                start_s: 0.0,
                end_s: 1.0,
                energy_j: 100.0,
            }],
        };
        let txt = summary_table(&rep);
        for needle in ["cpu", "memory", "network", "disk", "other", "solve", "100.0 J"] {
            assert!(txt.contains(needle), "missing {needle} in:\n{txt}");
        }
    }
}
