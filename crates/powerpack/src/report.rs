//! Text and CSV rendering of profiles and energy summaries.

use simcluster::units::Joules;

use crate::profile::PowerProfile;
use crate::session::SessionReport;

/// Render a power profile as CSV with a header row — the raw data behind a
/// Fig.-10-style plot. Column names carry their units (`_s` seconds, `_W`
/// watts) and the output always ends with a newline, so the file is safe to
/// concatenate or stream into plotting tools.
pub fn profile_csv(profile: &PowerProfile) -> String {
    let mut out = String::with_capacity(profile.samples.len() * 48 + 64);
    out.push_str("t_s,cpu_W,mem_W,net_W,disk_W,other_W,total_W\n");
    for s in &profile.samples {
        out.push_str(&format!(
            "{:.6},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
            s.t_s,
            s.cpu_w.raw(),
            s.mem_w.raw(),
            s.net_w.raw(),
            s.disk_w.raw(),
            s.other_w.raw(),
            s.total_w().raw()
        ));
    }
    out
}

/// Render a session report as an aligned text table.
pub fn summary_table(report: &SessionReport) -> String {
    let e = &report.energy;
    let total = e.total();
    let pct = |x: Joules| {
        if total > Joules::ZERO {
            100.0 * (x / total)
        } else {
            0.0
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "span: {:.4} s   mean power: {:.1} W   total energy: {:.1} J\n",
        report.span_s.raw(),
        report.mean_power_w.raw(),
        total.raw()
    ));
    out.push_str("component   energy (J)      share\n");
    out.push_str(&format!(
        "  cpu       {:>10.1}    {:>5.1}%\n",
        e.cpu_j.raw(),
        pct(e.cpu_j)
    ));
    out.push_str(&format!(
        "  memory    {:>10.1}    {:>5.1}%\n",
        e.memory_j.raw(),
        pct(e.memory_j)
    ));
    out.push_str(&format!(
        "  network   {:>10.1}    {:>5.1}%\n",
        e.network_j.raw(),
        pct(e.network_j)
    ));
    out.push_str(&format!(
        "  disk      {:>10.1}    {:>5.1}%\n",
        e.disk_j.raw(),
        pct(e.disk_j)
    ));
    out.push_str(&format!(
        "  other     {:>10.1}    {:>5.1}%\n",
        e.other_j.raw(),
        pct(e.other_j)
    ));
    if !report.phases.is_empty() {
        out.push_str("phase                start (s)    end (s)   energy (J)\n");
        for p in &report.phases {
            out.push_str(&format!(
                "  {:<18} {:>9.4}  {:>9.4}   {:>10.1}\n",
                p.name,
                p.start_s,
                p.end_s,
                p.energy_j.raw()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PowerSample;
    use crate::session::PhaseEnergy;
    use simcluster::units::{Seconds, Watts};
    use simcluster::ComponentEnergy;

    fn sample_at(t_s: f64, cpu: f64) -> PowerSample {
        PowerSample {
            t_s,
            cpu_w: Watts::new(cpu),
            mem_w: Watts::new(3.0),
            net_w: Watts::new(1.0),
            disk_w: Watts::new(1.0),
            other_w: Watts::new(5.0),
        }
    }

    fn sample_profile() -> PowerProfile {
        PowerProfile {
            samples: vec![sample_at(0.0, 10.0), sample_at(0.1, 22.0)],
            dt_s: 0.1,
            ranks: 1,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = profile_csv(&sample_profile());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "t_s,cpu_W,mem_W,net_W,disk_W,other_W,total_W");
        assert!(lines[1].starts_with("0.000000,10.000"));
        // Total column = sum of components.
        assert!(lines[1].ends_with(",20.000"));
        // Units in every header column; trailing newline for streamability.
        assert!(lines[0].split(',').skip(1).all(|c| c.ends_with("_W")));
        assert!(csv.ends_with('\n'));
    }

    #[test]
    fn summary_mentions_all_components_and_phases() {
        let rep = SessionReport {
            energy: ComponentEnergy {
                cpu_j: Joules::new(50.0),
                memory_j: Joules::new(20.0),
                network_j: Joules::new(5.0),
                disk_j: Joules::new(5.0),
                other_j: Joules::new(20.0),
            },
            span_s: Seconds::new(1.0),
            mean_power_w: Watts::new(100.0),
            phases: vec![PhaseEnergy {
                name: "solve".into(),
                start_s: 0.0,
                end_s: 1.0,
                energy_j: Joules::new(100.0),
            }],
        };
        let txt = summary_table(&rep);
        for needle in [
            "cpu", "memory", "network", "disk", "other", "solve", "100.0 J",
        ] {
            assert!(txt.contains(needle), "missing {needle} in:\n{txt}");
        }
    }
}
