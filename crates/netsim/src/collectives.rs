//! Closed-form time models for MPI collective algorithms.
//!
//! These are the textbook costs (Thakur, "Improving the performance of
//! collective operations in MPICH" — the paper's [33]) that MPICH/MVAPICH of
//! the paper's era used, expressed over the Hockney parameters. The `mps`
//! runtime implements the same algorithms message by message; these closed
//! forms are what the *analytical model* uses, so any difference between the
//! two (e.g. synchronization skew) shows up as model error — exactly as it
//! does on real hardware.
//!
//! All sizes are bytes of *per-process* payload as seen by the caller of the
//! corresponding MPI routine.

use crate::hockney::Hockney;

fn log2_ceil(p: usize) -> u32 {
    assert!(p > 0);
    usize::BITS - (p - 1).leading_zeros()
}

/// Pairwise-exchange all-to-all among `p` processes, each contributing
/// `bytes_per_pair` bytes *to every other process*:
///
/// ```text
/// T = (p − 1) · (ts + tw · m)
/// ```
///
/// This is the form the paper quotes for FT's `MPI_Alltoall`
/// ("Pairwise exchange/Hockney model", §V.B.1).
pub fn alltoall_pairwise_time(h: &Hockney, p: usize, bytes_per_pair: u64) -> f64 {
    assert!(p > 0, "need at least one process");
    if p == 1 {
        return 0.0;
    }
    (p as f64 - 1.0) * h.p2p(bytes_per_pair)
}

/// Recursive-doubling allreduce of a `bytes`-byte vector among `p`
/// processes (power-of-two steps; non-powers pay one extra step):
///
/// ```text
/// T = ceil(log2 p) · (ts + tw · m)
/// ```
pub fn allreduce_recursive_doubling_time(h: &Hockney, p: usize, bytes: u64) -> f64 {
    assert!(p > 0, "need at least one process");
    if p == 1 {
        return 0.0;
    }
    f64::from(log2_ceil(p)) * h.p2p(bytes)
}

/// Binomial-tree broadcast of `bytes` bytes: `ceil(log2 p) · (ts + tw·m)`.
pub fn bcast_binomial_time(h: &Hockney, p: usize, bytes: u64) -> f64 {
    assert!(p > 0, "need at least one process");
    if p == 1 {
        return 0.0;
    }
    f64::from(log2_ceil(p)) * h.p2p(bytes)
}

/// Binomial-tree reduce of `bytes` bytes: same shape as broadcast.
pub fn reduce_binomial_time(h: &Hockney, p: usize, bytes: u64) -> f64 {
    bcast_binomial_time(h, p, bytes)
}

/// Ring allgather where each process contributes `bytes_per_rank`:
/// `(p − 1) · (ts + tw · m)`.
pub fn allgather_ring_time(h: &Hockney, p: usize, bytes_per_rank: u64) -> f64 {
    assert!(p > 0, "need at least one process");
    if p == 1 {
        return 0.0;
    }
    (p as f64 - 1.0) * h.p2p(bytes_per_rank)
}

/// Dissemination barrier: `ceil(log2 p)` zero-payload rounds.
pub fn barrier_dissemination_time(h: &Hockney, p: usize) -> f64 {
    assert!(p > 0, "need at least one process");
    if p == 1 {
        return 0.0;
    }
    f64::from(log2_ceil(p)) * h.p2p(0)
}

/// Message/byte *counts* contributed per process by each collective — the
/// quantities the paper's `M` and `B` application parameters accumulate
/// (measured there with TAU/PMPI).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveCounts {
    /// Messages sent by one process.
    pub messages: f64,
    /// Bytes sent by one process.
    pub bytes: f64,
}

/// Per-process send counts of a pairwise-exchange all-to-all.
pub fn alltoall_pairwise_counts(p: usize, bytes_per_pair: u64) -> CollectiveCounts {
    if p <= 1 {
        return CollectiveCounts {
            messages: 0.0,
            bytes: 0.0,
        };
    }
    CollectiveCounts {
        messages: (p - 1) as f64,
        bytes: (p - 1) as f64 * bytes_per_pair as f64,
    }
}

/// Per-process send counts of a recursive-doubling allreduce.
pub fn allreduce_recursive_doubling_counts(p: usize, bytes: u64) -> CollectiveCounts {
    if p <= 1 {
        return CollectiveCounts {
            messages: 0.0,
            bytes: 0.0,
        };
    }
    let rounds = f64::from(log2_ceil(p));
    CollectiveCounts {
        messages: rounds,
        bytes: rounds * bytes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hockney {
        Hockney::new(1e-5, 1e-9)
    }

    #[test]
    fn single_process_collectives_are_free() {
        let h = h();
        assert_eq!(alltoall_pairwise_time(&h, 1, 1024), 0.0);
        assert_eq!(allreduce_recursive_doubling_time(&h, 1, 1024), 0.0);
        assert_eq!(bcast_binomial_time(&h, 1, 1024), 0.0);
        assert_eq!(allgather_ring_time(&h, 1, 1024), 0.0);
        assert_eq!(barrier_dissemination_time(&h, 1), 0.0);
    }

    #[test]
    fn alltoall_matches_paper_formula() {
        let h = h();
        // (p-1)(ts + tw m) for p=8, m=4096
        let expect = 7.0 * (1e-5 + 1e-9 * 4096.0);
        assert!((alltoall_pairwise_time(&h, 8, 4096) - expect).abs() < 1e-15);
    }

    #[test]
    fn allreduce_is_logarithmic() {
        let h = h();
        let t8 = allreduce_recursive_doubling_time(&h, 8, 64);
        let t64 = allreduce_recursive_doubling_time(&h, 64, 64);
        assert!((t64 / t8 - 2.0).abs() < 1e-12, "log2(64)/log2(8) = 2");
    }

    #[test]
    fn non_power_of_two_rounds_up() {
        let h = h();
        let t9 = allreduce_recursive_doubling_time(&h, 9, 64);
        let t16 = allreduce_recursive_doubling_time(&h, 16, 64);
        assert!(
            (t9 - t16).abs() < 1e-15,
            "9 procs pay ceil(log2 9) = 4 rounds"
        );
    }

    #[test]
    fn barrier_carries_no_payload() {
        let h = h();
        let t = barrier_dissemination_time(&h, 16);
        assert!((t - 4.0 * h.ts).abs() < 1e-15);
    }

    #[test]
    fn counts_match_times() {
        let h = h();
        let c = alltoall_pairwise_counts(8, 4096);
        let t = alltoall_pairwise_time(&h, 8, 4096);
        assert!((h.aggregate(c.messages, c.bytes) - t).abs() < 1e-15);
        let c = allreduce_recursive_doubling_counts(32, 256);
        let t = allreduce_recursive_doubling_time(&h, 32, 256);
        assert!((h.aggregate(c.messages, c.bytes) - t).abs() < 1e-15);
    }

    #[test]
    fn log2_ceil_cases() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(8), 3);
        assert_eq!(log2_ceil(9), 4);
    }
}
