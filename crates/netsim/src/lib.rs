//! # netsim — interconnect and collective-operation time models
//!
//! Pure analytical time models for the network side of the simulation:
//!
//! * [`hockney`] — the Hockney point-to-point model `t(m) = ts + tw·m`
//!   (the paper's Eq. 17 network term and the basis of its FT analysis,
//!   citing Pjesivac-Grbovic et al. and Thakur).
//! * [`collectives`] — closed-form costs for the collective algorithms MPI
//!   implementations of the era used: pairwise-exchange all-to-all,
//!   recursive-doubling allreduce, binomial broadcast/reduce, ring
//!   allgather, dissemination barrier.
//! * [`contention`] — a simple concurrency-dependent bandwidth-inflation
//!   model, one of the ways the *simulator* is richer than the paper's
//!   analytical model (which assumes contention-free links).
//!
//! The crate is dependency-free on the rest of the workspace so the
//! analytical model (`isoee`) and the runtime (`mps`) can share it.

#![forbid(unsafe_code)]

pub mod collectives;
pub mod contention;
pub mod hockney;

pub use collectives::{
    allgather_ring_time, allreduce_recursive_doubling_time, alltoall_pairwise_time,
    barrier_dissemination_time, bcast_binomial_time, reduce_binomial_time,
};
pub use contention::ContentionModel;
pub use hockney::Hockney;
