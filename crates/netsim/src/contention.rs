//! A simple link-contention model.
//!
//! The analytical model assumes contention-free Hockney links. Real fabrics
//! (and our simulator) are not: when many processes drive the network
//! simultaneously — FT's all-to-all being the canonical case — effective
//! per-byte time inflates. We model this with a mild concurrency penalty:
//!
//! ```text
//! tw_eff(c) = tw · (1 + κ · max(0, c − c₀) / c₀)
//! ```
//!
//! where `c` is the number of concurrently communicating processes, `c₀` the
//! contention-free concurrency the fabric sustains (ports per switch tier),
//! and `κ` a small slope. With `κ = 0` the model degrades to pure Hockney.
//!
//! This is intentionally crude — its purpose is not fidelity to a particular
//! switch, but to make the simulated "measurement" diverge from the
//! analytical prediction the way real systems do (paper Fig. 4's 5–8 %
//! errors), and to do so more strongly for communication-heavy codes (FT)
//! than compute-bound ones (EP).

use crate::hockney::Hockney;

/// Concurrency-dependent bandwidth inflation over a base Hockney model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionModel {
    /// Contention-free concurrency (e.g. non-blocking switch ports).
    pub free_concurrency: usize,
    /// Inflation slope `κ` per `free_concurrency` extra talkers.
    pub kappa: f64,
}

impl ContentionModel {
    /// A model with the given knee and slope.
    ///
    /// # Panics
    /// Panics if `free_concurrency == 0` or `kappa < 0`.
    pub fn new(free_concurrency: usize, kappa: f64) -> Self {
        assert!(free_concurrency > 0, "free concurrency must be positive");
        assert!(
            kappa.is_finite() && kappa >= 0.0,
            "kappa must be non-negative"
        );
        Self {
            free_concurrency,
            kappa,
        }
    }

    /// A contention-free model (pure Hockney behaviour).
    pub fn none() -> Self {
        Self {
            free_concurrency: 1,
            kappa: 0.0,
        }
    }

    /// The effective Hockney parameters when `concurrency` processes
    /// communicate at once.
    pub fn effective(&self, base: &Hockney, concurrency: usize) -> Hockney {
        let c = concurrency.max(1) as f64;
        let c0 = self.free_concurrency as f64;
        let over = (c - c0).max(0.0) / c0;
        Hockney {
            ts: base.ts,
            tw: base.tw * (1.0 + self.kappa * over),
        }
    }

    /// Inflation factor applied to `tw` at a given concurrency.
    pub fn inflation(&self, concurrency: usize) -> f64 {
        let c = concurrency.max(1) as f64;
        let c0 = self.free_concurrency as f64;
        1.0 + self.kappa * ((c - c0).max(0.0) / c0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let base = Hockney::new(1e-6, 1e-9);
        let m = ContentionModel::none();
        for c in [1, 2, 64, 4096] {
            let e = m.effective(&base, c);
            assert_eq!(e, base, "concurrency {c}");
        }
    }

    #[test]
    fn below_knee_no_inflation() {
        let m = ContentionModel::new(16, 0.5);
        assert_eq!(m.inflation(1), 1.0);
        assert_eq!(m.inflation(16), 1.0);
    }

    #[test]
    fn above_knee_inflates_linearly() {
        let m = ContentionModel::new(16, 0.5);
        assert!((m.inflation(32) - 1.5).abs() < 1e-12);
        assert!((m.inflation(48) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn startup_unaffected_by_contention() {
        let base = Hockney::new(1e-6, 1e-9);
        let m = ContentionModel::new(4, 1.0);
        let e = m.effective(&base, 100);
        assert_eq!(e.ts, base.ts);
        assert!(e.tw > base.tw);
    }

    #[test]
    fn inflation_monotone_in_concurrency() {
        let m = ContentionModel::new(8, 0.3);
        let mut prev = 0.0;
        for c in 1..200 {
            let i = m.inflation(c);
            assert!(i >= prev);
            prev = i;
        }
    }
}
