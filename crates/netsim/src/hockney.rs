//! The Hockney point-to-point communication model.
//!
//! A message of `m` bytes between two processes costs
//!
//! ```text
//! t(m) = ts + tw · m
//! ```
//!
//! where `ts` is the startup (latency) term and `tw` the per-byte
//! (1/bandwidth) term. This is the model the paper measures with MPPTest
//! (Table 1's `t_s`/`t_w`) and uses for its network-time term
//! `Σ T_net = M·ts + B·tw` (Eq. 17) and the FT pairwise-exchange analysis.

/// Hockney model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hockney {
    /// Startup time `ts` per message, seconds.
    pub ts: f64,
    /// Per-byte time `tw`, seconds/byte.
    pub tw: f64,
}

impl Hockney {
    /// Construct a model; panics on non-positive parameters.
    pub fn new(ts: f64, tw: f64) -> Self {
        assert!(ts.is_finite() && ts > 0.0, "ts must be positive, got {ts}");
        assert!(tw.is_finite() && tw > 0.0, "tw must be positive, got {tw}");
        Self { ts, tw }
    }

    /// Time to move one `bytes`-byte message point to point.
    pub fn p2p(&self, bytes: u64) -> f64 {
        self.ts + self.tw * bytes as f64
    }

    /// Aggregate network time for `messages` messages carrying `bytes` total
    /// payload — the paper's Eq. 17: `M·ts + B·tw`.
    pub fn aggregate(&self, messages: f64, bytes: f64) -> f64 {
        assert!(
            messages >= 0.0 && bytes >= 0.0,
            "counts must be non-negative"
        );
        messages * self.ts + bytes * self.tw
    }

    /// The message size at which bandwidth cost equals startup cost
    /// (`n_1/2` in Hockney's terminology): `ts / tw` bytes.
    pub fn half_power_point(&self) -> f64 {
        self.ts / self.tw
    }

    /// Asymptotic bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        1.0 / self.tw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ib() -> Hockney {
        Hockney::new(2.6e-6, 3.3e-10)
    }

    #[test]
    fn zero_byte_message_costs_startup() {
        assert_eq!(ib().p2p(0), 2.6e-6);
    }

    #[test]
    fn p2p_is_affine() {
        let h = ib();
        let t = h.p2p(1_000_000);
        assert!((t - (2.6e-6 + 1e6 * 3.3e-10)).abs() < 1e-15);
    }

    #[test]
    fn aggregate_matches_eq17() {
        let h = ib();
        let t = h.aggregate(100.0, 1e6);
        assert!((t - (100.0 * h.ts + 1e6 * h.tw)).abs() < 1e-15);
    }

    #[test]
    fn half_power_point_balances_terms() {
        let h = ib();
        let n = h.half_power_point();
        assert!((h.ts - h.tw * n).abs() < 1e-18);
    }

    #[test]
    fn bandwidth_is_reciprocal_tw() {
        let h = ib();
        assert!((h.bandwidth() - 1.0 / 3.3e-10).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "ts must be positive")]
    fn zero_ts_rejected() {
        Hockney::new(0.0, 1e-9);
    }
}
