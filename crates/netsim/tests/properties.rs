//! Property-based tests for the network time models.

use netsim::{
    allgather_ring_time, allreduce_recursive_doubling_time, alltoall_pairwise_time,
    barrier_dissemination_time, bcast_binomial_time, ContentionModel, Hockney,
};
use proptest::prelude::*;

fn arb_hockney() -> impl Strategy<Value = Hockney> {
    (1e-7f64..1e-4, 1e-11f64..1e-7).prop_map(|(ts, tw)| Hockney::new(ts, tw))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn p2p_monotone_in_size(h in arb_hockney(), a in 0u64..1 << 30, b in 0u64..1 << 30) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(h.p2p(lo) <= h.p2p(hi));
        prop_assert!(h.p2p(lo) >= h.ts);
    }

    #[test]
    fn aggregate_equals_decomposed(h in arb_hockney(), m in 0u32..10_000, bytes in 0u64..1 << 24) {
        // M messages of equal size cost the same as the aggregate form.
        let per = h.p2p(bytes);
        let agg = h.aggregate(f64::from(m), (u64::from(m) * bytes) as f64);
        prop_assert!((agg - f64::from(m) * per).abs() <= 1e-9 * agg.abs().max(1.0));
    }

    #[test]
    fn collectives_positive_and_monotone_in_p(
        h in arb_hockney(),
        p in 2usize..2048,
        bytes in 1u64..1 << 20,
    ) {
        let t_small = alltoall_pairwise_time(&h, p, bytes);
        let t_large = alltoall_pairwise_time(&h, p * 2, bytes);
        prop_assert!(t_small > 0.0);
        prop_assert!(t_large > t_small, "alltoall must grow with p");

        let r_small = allreduce_recursive_doubling_time(&h, p, bytes);
        let r_large = allreduce_recursive_doubling_time(&h, p * 2, bytes);
        prop_assert!(r_large >= r_small, "allreduce rounds never shrink");

        prop_assert!(bcast_binomial_time(&h, p, bytes) > 0.0);
        prop_assert!(allgather_ring_time(&h, p, bytes) > 0.0);
        prop_assert!(barrier_dissemination_time(&h, p) > 0.0);
    }

    #[test]
    fn allreduce_cheaper_than_alltoall_for_same_payload(
        h in arb_hockney(),
        p in 4usize..1024,
        bytes in 64u64..1 << 16,
    ) {
        // log p rounds vs p−1 rounds of the same message size.
        prop_assert!(
            allreduce_recursive_doubling_time(&h, p, bytes)
                < alltoall_pairwise_time(&h, p, bytes)
        );
    }

    #[test]
    fn contention_never_speeds_links_up(
        knee in 1usize..128,
        kappa in 0.0f64..2.0,
        c in 1usize..4096,
        h in arb_hockney(),
    ) {
        let m = ContentionModel::new(knee, kappa);
        let eff = m.effective(&h, c);
        prop_assert!(eff.tw >= h.tw - 1e-24);
        prop_assert_eq!(eff.ts, h.ts);
        prop_assert!(m.inflation(c) >= 1.0);
    }

    #[test]
    fn contention_monotone_in_concurrency(
        knee in 1usize..64,
        kappa in 0.01f64..2.0,
        c in 1usize..2048,
    ) {
        let m = ContentionModel::new(knee, kappa);
        prop_assert!(m.inflation(c + 1) >= m.inflation(c));
    }

    #[test]
    fn half_power_point_splits_cost_evenly(h in arb_hockney()) {
        let n = h.half_power_point();
        // Rounding to whole bytes only makes sense for non-degenerate
        // links where n_1/2 is comfortably above one byte.
        prop_assume!(n >= 1000.0);
        let t = h.p2p(n.round() as u64);
        // At n_1/2, startup and bandwidth each contribute ~half.
        prop_assert!((t / h.ts - 2.0).abs() < 0.01, "t/ts = {}", t / h.ts);
    }
}
