//! Golden tests: the declarative [`plan`] descriptions of FT/EP/CG must be
//! communication-faithful to the handwritten kernels.
//!
//! For each kernel on a 4-rank world we compare three executions:
//!
//! 1. the handwritten `npb` kernel,
//! 2. the [`plan::lower`]-ed `CommPlan`,
//! 3. the static [`plan::analyze_plan`] abstract run (no execution at all),
//!
//! and require identical per-collective `(calls, messages, bytes)` counters
//! (read from the global metrics registry via `mps`'s collective scopes)
//! plus identical point-to-point/overall message and byte totals. FT and EP
//! additionally match on the charged instruction counters exactly; CG's
//! compute/memory charges are data-dependent estimates in the plan, so only
//! its communication is held to equality.

use std::sync::{Mutex, OnceLock};

use mps::{run, World};
use npb::{
    cg_kernel, cg_plan, ep_kernel, ep_plan, ft_kernel, ft_plan, CgConfig, Class, EpConfig, FtConfig,
};
use obs::ObsConfig;
use plan::{analyze_plan, lower, CollKind, CommPlan, COLL_KINDS};

const P: usize = 4;

/// The metrics registry is process-global; serialize the golden runs so
/// counter deltas are attributable to one run at a time.
fn registry_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn world() -> World {
    World::new(simcluster::system_g(), 2.8e9).with_obs(ObsConfig::disabled().with_metrics(true))
}

/// `(calls, messages, bytes)` snapshot of every collective's counters.
fn snapshot() -> [[u64; 3]; COLL_KINDS] {
    let reg = obs::global();
    let mut out = [[0u64; 3]; COLL_KINDS];
    for (k, slot) in out.iter_mut().enumerate() {
        let name = CollKind::ALL[k].scope_name();
        *slot = [
            reg.counter(&format!("mps.collective.{name}.calls")).get(),
            reg.counter(&format!("mps.collective.{name}.messages"))
                .get(),
            reg.counter(&format!("mps.collective.{name}.bytes")).get(),
        ];
    }
    out
}

fn delta(
    before: &[[u64; 3]; COLL_KINDS],
    after: &[[u64; 3]; COLL_KINDS],
) -> [[u64; 3]; COLL_KINDS] {
    let mut out = [[0u64; 3]; COLL_KINDS];
    for k in 0..COLL_KINDS {
        for f in 0..3 {
            out[k][f] = after[k][f] - before[k][f];
        }
    }
    out
}

struct Observed {
    colls: [[u64; 3]; COLL_KINDS],
    messages: f64,
    bytes: f64,
    wc: f64,
    wm: f64,
}

/// Run `program` on a metrics-enabled world and collect collective counter
/// deltas plus whole-run totals.
fn observe<R: Send>(program: impl Fn(&mut mps::Ctx) -> R + Sync) -> Observed {
    let w = world();
    let before = snapshot();
    let report = run(&w, P, program);
    let after = snapshot();
    let totals = report.total_counters();
    Observed {
        colls: delta(&before, &after),
        messages: totals.messages,
        bytes: totals.bytes,
        wc: totals.wc,
        wm: totals.wm,
    }
}

/// Assert dynamic(kernel) == dynamic(lowered plan) == static(analysis) on
/// every collective's counters and on the run-wide message/byte totals.
fn assert_comm_golden(plan: &CommPlan, kernel: &Observed, lowered: &Observed) {
    let analysis = analyze_plan(plan, P);
    assert!(
        analysis.clean(),
        "{} static findings: {:?}",
        plan.name,
        analysis.findings
    );
    for k in 0..COLL_KINDS {
        let kind = CollKind::ALL[k];
        assert_eq!(
            kernel.colls[k], lowered.colls[k],
            "{}: {kind:?} counters differ, kernel vs lowered plan",
            plan.name
        );
        let stat = &analysis.colls[k];
        assert_eq!(
            [stat.calls, stat.messages, stat.bytes],
            lowered.colls[k],
            "{}: {kind:?} counters differ, static analysis vs lowered plan",
            plan.name
        );
    }
    #[allow(clippy::cast_precision_loss)]
    {
        assert_eq!(kernel.messages, lowered.messages, "{}: messages", plan.name);
        assert_eq!(kernel.bytes, lowered.bytes, "{}: bytes", plan.name);
        assert_eq!(
            lowered.messages, analysis.total.messages as f64,
            "{}: static message total",
            plan.name
        );
        assert_eq!(
            lowered.bytes, analysis.total.bytes as f64,
            "{}: static byte total",
            plan.name
        );
    }
}

#[test]
fn ft_plan_matches_handwritten_kernel_on_four_ranks() {
    let _guard = registry_lock().lock().unwrap();
    let cfg = FtConfig::class(Class::S);
    let plan = ft_plan(&cfg);
    let kernel = observe(|ctx| ft_kernel(ctx, cfg));
    let lowered = observe(|ctx| lower(&plan, ctx));
    assert_comm_golden(&plan, &kernel, &lowered);
    // FT's plan mirrors the kernel's charges closed-form: Wc and Wm agree.
    let rel = |a: f64, b: f64| (a - b).abs() / b.max(1.0);
    assert!(
        rel(lowered.wc, kernel.wc) < 1e-9,
        "ft wc: plan {} vs kernel {}",
        lowered.wc,
        kernel.wc
    );
    assert!(
        rel(lowered.wm, kernel.wm) < 1e-9,
        "ft wm: plan {} vs kernel {}",
        lowered.wm,
        kernel.wm
    );
}

#[test]
fn ep_plan_matches_handwritten_kernel_on_four_ranks() {
    let _guard = registry_lock().lock().unwrap();
    let cfg = EpConfig::class(Class::S);
    let plan = ep_plan(&cfg);
    let kernel = observe(|ctx| ep_kernel(ctx, cfg));
    let lowered = observe(|ctx| lower(&plan, ctx));
    assert_comm_golden(&plan, &kernel, &lowered);
    // EP's charge formulas are exact under integer batching.
    let rel = |a: f64, b: f64| (a - b).abs() / b.max(1.0);
    assert!(
        rel(lowered.wc, kernel.wc) < 1e-9,
        "ep wc: plan {} vs kernel {}",
        lowered.wc,
        kernel.wc
    );
    assert!(
        rel(lowered.wm, kernel.wm) < 1e-9,
        "ep wm: plan {} vs kernel {}",
        lowered.wm,
        kernel.wm
    );
}

#[test]
fn cg_plan_matches_handwritten_kernel_on_four_ranks() {
    let _guard = registry_lock().lock().unwrap();
    let cfg = CgConfig::class(Class::S);
    let plan = cg_plan(&cfg);
    let kernel = observe(|ctx| cg_kernel(ctx, cfg));
    let lowered = observe(|ctx| lower(&plan, ctx));
    // CG's communication skeleton (grid exchanges, reductions) is exact;
    // its Wc/Wm are nnz estimates, so only comm equality is required.
    assert_comm_golden(&plan, &kernel, &lowered);
}
