//! Property-based tests for the NPB numerics: FFT against the DFT oracle,
//! `randlc` stream algebra, sparse-matrix structure, kernel determinism.

use npb::common::Randlc;
use npb::fft::{dft_reference, Direction, FftPlan};
use npb::num::C64;
use npb::sparse::{assemble_block, assemble_block_padded, row_pattern};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_matches_dft_on_random_input(
        log_n in 1u32..8,
        res in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 128),
    ) {
        let n = 1usize << log_n;
        let input: Vec<C64> = res[..n].iter().map(|&(re, im)| C64::new(re, im)).collect();
        let plan = FftPlan::new(n);
        let mut fast = input.clone();
        plan.transform(&mut fast, Direction::Forward);
        let slow = dft_reference(&input, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-9 * (1.0 + b.abs()), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn fft_roundtrip_is_identity(
        log_n in 1u32..9,
        res in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 256),
    ) {
        let n = 1usize << log_n;
        let input: Vec<C64> = res[..n].iter().map(|&(re, im)| C64::new(re, im)).collect();
        let plan = FftPlan::new(n);
        let mut buf = input.clone();
        plan.transform(&mut buf, Direction::Forward);
        plan.transform(&mut buf, Direction::Inverse);
        for (a, b) in buf.iter().zip(&input) {
            let scaled = a.scale(1.0 / n as f64);
            prop_assert!((scaled - *b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn fft_is_linear(
        log_n in 1u32..7,
        s in -5.0f64..5.0,
        res in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 128),
    ) {
        let n = 1usize << log_n;
        let x: Vec<C64> = res[..n].iter().map(|&(re, im)| C64::new(re, im)).collect();
        let y: Vec<C64> = res[64 - n / 2..64 + n / 2]
            .iter()
            .map(|&(re, im)| C64::new(im, re))
            .collect();
        let plan = FftPlan::new(n);
        // F(s·x + y) == s·F(x) + F(y)
        let mut lhs: Vec<C64> = x
            .iter()
            .zip(&y)
            .map(|(a, b)| a.scale(s) + *b)
            .collect();
        plan.transform(&mut lhs, Direction::Forward);
        let mut fx = x.clone();
        let mut fy = y.clone();
        plan.transform(&mut fx, Direction::Forward);
        plan.transform(&mut fy, Direction::Forward);
        for ((l, a), b) in lhs.iter().zip(&fx).zip(&fy) {
            let rhs = a.scale(s) + *b;
            prop_assert!((*l - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
        }
    }

    #[test]
    fn randlc_skip_is_homomorphic(a in 0u64..100_000, b in 0u64..100_000) {
        // skip(a) then skip(b) == skip(a + b).
        let base = Randlc::nas_default();
        let two_step = base.at_offset(a).at_offset(b);
        let one_step = base.at_offset(a + b);
        prop_assert_eq!(two_step.state(), one_step.state());
    }

    #[test]
    fn randlc_uniforms_lie_in_open_unit_interval(skip in 0u64..1_000_000) {
        let mut g = Randlc::nas_default().at_offset(skip);
        for _ in 0..100 {
            let u = g.next_f64();
            prop_assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn row_pattern_is_valid_for_any_row(
        n in 10usize..10_000,
        pattern in 1usize..32,
        row_frac in 0.0f64..1.0,
    ) {
        let row = ((n as f64 - 1.0) * row_frac) as usize;
        let entries = row_pattern(12345, n, pattern.min(n - 1), row);
        let mut cols: Vec<usize> = entries.iter().map(|e| e.0).collect();
        cols.sort_unstable();
        let before = cols.len();
        cols.dedup();
        prop_assert_eq!(cols.len(), before, "duplicate columns");
        for &(c, v) in &entries {
            prop_assert!(c < n && c != row);
            prop_assert!(v.abs() <= 1.0, "value {v} out of scaled range");
        }
    }

    #[test]
    fn sparse_blocks_tile_like_the_full_matrix(
        seed_pick in 0u64..50,
        nonzer in 1usize..8,
    ) {
        let seed = 2 * seed_pick + 1; // odd
        let n = 64;
        let full = assemble_block(seed, n, nonzer, 0, n, 0, n);
        let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut y_full = vec![0.0; n];
        full.spmv(&x, &mut y_full);

        let h = n / 2;
        let mut y_blocks = vec![0.0; n];
        for bi in 0..2 {
            for bj in 0..2 {
                let blk = assemble_block(seed, n, nonzer, bi * h, h, bj * h, h);
                let mut y = vec![0.0; h];
                blk.spmv(&x[bj * h..(bj + 1) * h], &mut y);
                for (i, v) in y.into_iter().enumerate() {
                    y_blocks[bi * h + i] += v;
                }
            }
        }
        for (a, b) in y_full.iter().zip(&y_blocks) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn padded_matrix_decouples_from_true_system(
        nonzer in 1usize..6,
        extra_pick in 1usize..5,
    ) {
        // SpMV over the padded matrix restricted to true rows must equal
        // the unpadded SpMV (padding must never couple in).
        let n_true = 40;
        let n_pad = n_true + extra_pick * 8;
        let seed = 314_159_265;
        let plain = assemble_block(seed, n_true, nonzer, 0, n_true, 0, n_true);
        let padded = assemble_block_padded(seed, n_true, n_pad, nonzer, 0, n_pad, 0, n_pad);

        let mut x = vec![0.0f64; n_pad];
        for (i, xi) in x.iter_mut().enumerate().take(n_true) {
            *xi = ((i * 13) % 7) as f64 - 3.0;
        }
        let mut y_pad = vec![0.0; n_pad];
        padded.spmv(&x, &mut y_pad);
        let mut y_plain = vec![0.0; n_true];
        plain.spmv(&x[..n_true], &mut y_plain);
        for i in 0..n_true {
            prop_assert!((y_pad[i] - y_plain[i]).abs() < 1e-10);
        }
    }
}

mod kernel_determinism {
    use mps::{run, World};
    use npb::{ep_kernel, is_kernel, EpConfig, IsConfig};
    use proptest::prelude::*;
    use simcluster::system_g;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ep_identical_across_rank_counts(p in 1usize..7) {
            let w = World::new(system_g(), 2.8e9);
            let cfg = EpConfig { pairs: 1 << 12, seed: npb::common::RANDLC_SEED };
            let base = run(&w, 1, move |ctx| ep_kernel(ctx, cfg));
            let par = run(&w, p, move |ctx| ep_kernel(ctx, cfg));
            let a = &base.ranks[0].result;
            let b = &par.ranks[0].result;
            prop_assert_eq!(a.accepted, b.accepted);
            prop_assert!((a.sx - b.sx).abs() < 1e-7);
        }

        #[test]
        fn is_conserves_keys_for_any_p(p in 1usize..7) {
            let w = World::new(system_g(), 2.8e9);
            let cfg = IsConfig {
                keys: 1 << 12,
                key_range: 1 << 10,
                reps: 1,
                seed: npb::common::RANDLC_SEED,
            };
            let r = run(&w, p, move |ctx| is_kernel(ctx, cfg));
            let total: u64 = r.ranks.iter().map(|rk| rk.result.local_count).sum();
            prop_assert_eq!(total, cfg.keys);
            for rk in &r.ranks {
                prop_assert!(rk.result.verified);
            }
        }
    }
}
