//! Sparse matrices for the CG kernel.
//!
//! NPB CG builds a random sparse symmetric positive-definite matrix
//! (`makea`). We reproduce the *construction idea* — a random sparsity
//! pattern per row, symmetrized, with a diagonally dominant shift that
//! guarantees positive definiteness — driven by the NPB `randlc` stream so
//! every rank can regenerate any row deterministically and a 2-D-partitioned
//! block can be assembled without communication.
//!
//! The matrix is `A = B + Bᵀ + D`: `B` has `pattern` random entries per row
//! drawn from `(−0.5, 0.5)·(2/pattern)`, and `D = 3·I`. The worst-case
//! off-diagonal row sum is `2·pattern·0.5·(2/pattern) = 2 < 3`, so `A` is
//! strictly diagonally dominant (hence SPD) with a condition number of ~5
//! *independent of the row density* — the role NPB's `RCOND` scaling plays
//! in the real `makea` (dense rows with unscaled values would make CG's 25
//! fixed inner iterations stall).

use crate::common::Randlc;

/// Constant diagonal of `D` (strictly dominates the ±2 off-diagonal bound).
pub const DIAG: f64 = 3.0;

/// Compressed sparse row matrix block.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Number of rows in the block.
    pub nrows: usize,
    /// Number of columns in the block.
    pub ncols: usize,
    /// Row pointers, length `nrows + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices (block-local), length `nnz`.
    pub col_idx: Vec<u32>,
    /// Values, length `nnz`.
    pub values: Vec<f64>,
}

impl Csr {
    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A·x` for a block-local dense vector `x` (length `ncols`),
    /// writing into `y` (length `nrows`). Returns the number of fused
    /// multiply-add operations performed (for work charging).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> usize {
        assert_eq!(x.len(), self.ncols, "x length");
        assert_eq!(y.len(), self.nrows, "y length");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yi = acc;
        }
        self.nnz()
    }

    /// Structural sanity check.
    ///
    /// # Panics
    /// Panics if pointers/indices are malformed.
    pub fn validate(&self) {
        assert_eq!(self.row_ptr.len(), self.nrows + 1);
        assert_eq!(self.row_ptr[0], 0);
        assert_eq!(*self.row_ptr.last().unwrap(), self.nnz());
        assert_eq!(self.col_idx.len(), self.values.len());
        for w in self.row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row pointers must be non-decreasing");
        }
        for &c in &self.col_idx {
            assert!((c as usize) < self.ncols, "column index out of range");
        }
    }
}

/// The deterministic random row pattern of the generator matrix `B`:
/// `pattern` distinct column indices plus values for global row `i`,
/// values scaled by `2/pattern` to keep the conditioning density-free.
///
/// Every rank can call this for any row, which is what makes communication-
/// free 2-D assembly possible.
pub fn row_pattern(seed: u64, n: usize, pattern: usize, row: usize) -> Vec<(usize, f64)> {
    if pattern == 0 {
        return Vec::new();
    }
    // Offset the stream far enough per row that rows never overlap.
    let per_row = (4 * pattern) as u64;
    let mut g = Randlc::new(seed).at_offset(row as u64 * per_row);
    let scale = 2.0 / pattern as f64;
    let mut seen = std::collections::HashSet::with_capacity(pattern * 2);
    let mut out = Vec::with_capacity(pattern);
    let mut attempts = 0;
    while out.len() < pattern && attempts < 4 * pattern {
        attempts += 1;
        let c = (g.next_f64() * n as f64) as usize;
        let c = c.min(n - 1);
        if c != row && seen.insert(c) {
            let v = (g.next_f64() - 0.5) * scale;
            out.push((c, v));
        }
    }
    out
}

/// Assemble the CSR block of `A = B + Bᵀ + D` covering global rows
/// `[row0, row0 + nrows)` and global columns `[col0, col0 + ncols)`.
///
/// Column indices in the returned block are *block-local* (`global − col0`).
pub fn assemble_block(
    seed: u64,
    n: usize,
    nonzer: usize,
    row0: usize,
    nrows: usize,
    col0: usize,
    ncols: usize,
) -> Csr {
    assemble_block_padded(seed, n, n, nonzer, row0, nrows, col0, ncols)
}

/// Like [`assemble_block`], but for a matrix padded from `n_true` to
/// `n_pad`: rows/columns `>= n_true` carry only the diagonal `D`, so the
/// padded system decouples from the true one while keeping every processor
/// block the same shape regardless of the process grid. The CG kernel pads
/// to a fixed multiple so results are bit-for-bit independent of `p`.
#[allow(clippy::too_many_arguments)]
pub fn assemble_block_padded(
    seed: u64,
    n_true: usize,
    n_pad: usize,
    pattern: usize,
    row0: usize,
    nrows: usize,
    col0: usize,
    ncols: usize,
) -> Csr {
    assert!(n_true <= n_pad, "true size exceeds padded size");
    let n = n_pad;
    assert!(row0 + nrows <= n && col0 + ncols <= n, "block out of range");
    // Per-row accumulation: unsorted pushes, then sort + merge (much faster
    // than tree maps for the dense class-B rows).
    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); nrows];

    // Contributions from B: rows in our row range (true rows only),
    // columns filtered. Pattern columns are drawn from the true range so
    // padded rows/columns never couple to the system.
    for (li, row) in (row0..row0 + nrows).enumerate() {
        if row < n_true {
            for (c, v) in row_pattern(seed, n_true, pattern, row) {
                if (col0..col0 + ncols).contains(&c) {
                    rows[li].push(((c - col0) as u32, v));
                }
            }
        }
        // Diagonal of D (padded rows keep it, so A stays SPD).
        if (col0..col0 + ncols).contains(&row) {
            rows[li].push(((row - col0) as u32, DIAG));
        }
    }
    // Contributions from Bᵀ: pattern rows in our *column* range whose
    // entries land in our row range.
    for col_row in col0..(col0 + ncols).min(n_true) {
        for (c, v) in row_pattern(seed, n_true, pattern, col_row) {
            if (row0..row0 + nrows).contains(&c) {
                rows[c - row0].push(((col_row - col0) as u32, v));
            }
        }
    }

    let nnz_upper: usize = rows.iter().map(Vec::len).sum();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    let mut col_idx = Vec::with_capacity(nnz_upper);
    let mut values = Vec::with_capacity(nnz_upper);
    row_ptr.push(0);
    for mut entries in rows {
        entries.sort_unstable_by_key(|e| e.0);
        let mut it = entries.into_iter();
        if let Some((mut cur_c, mut cur_v)) = it.next() {
            for (c, v) in it {
                if c == cur_c {
                    cur_v += v;
                } else {
                    col_idx.push(cur_c);
                    values.push(cur_v);
                    (cur_c, cur_v) = (c, v);
                }
            }
            col_idx.push(cur_c);
            values.push(cur_v);
        }
        row_ptr.push(col_idx.len());
    }
    let csr = Csr {
        nrows,
        ncols,
        row_ptr,
        col_idx,
        values,
    };
    csr.validate();
    csr
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 314_159_265;

    #[test]
    fn row_pattern_is_deterministic_and_valid() {
        let a = row_pattern(SEED, 1000, 7, 42);
        let b = row_pattern(SEED, 1000, 7, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        for &(c, v) in &a {
            assert!(c < 1000 && c != 42);
            assert!(v > -0.5 && v < 0.5);
        }
        // Distinct columns.
        let mut cols: Vec<usize> = a.iter().map(|e| e.0).collect();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 7);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (i, j) vs (j, i) reads index both ways
    fn full_matrix_is_symmetric() {
        let n = 64;
        let full = assemble_block(SEED, n, 5, 0, n, 0, n);
        // Densify and check symmetry.
        let mut dense = vec![vec![0.0f64; n]; n];
        for (i, row) in dense.iter_mut().enumerate() {
            for k in full.row_ptr[i]..full.row_ptr[i + 1] {
                row[full.col_idx[k] as usize] = full.values[k];
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (dense[i][j] - dense[j][i]).abs() < 1e-12,
                    "asymmetry at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn full_matrix_is_diagonally_dominant() {
        let n = 100;
        let nonzer = 6;
        let full = assemble_block(SEED, n, nonzer, 0, n, 0, n);
        for i in 0..n {
            let mut diag = 0.0;
            let mut off = 0.0;
            for k in full.row_ptr[i]..full.row_ptr[i + 1] {
                let j = full.col_idx[k] as usize;
                if j == i {
                    diag = full.values[k];
                } else {
                    off += full.values[k].abs();
                }
            }
            assert!(diag > off, "row {i}: diag {diag} <= off-sum {off}");
        }
    }

    #[test]
    fn blocks_tile_the_full_matrix() {
        let n = 48;
        let nonzer = 4;
        let full = assemble_block(SEED, n, nonzer, 0, n, 0, n);
        // Assemble as a 2x2 block grid and compare SpMV results.
        let h = n / 2;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_full = vec![0.0; n];
        full.spmv(&x, &mut y_full);

        let mut y_blocks = vec![0.0; n];
        for bi in 0..2 {
            for bj in 0..2 {
                let blk = assemble_block(SEED, n, nonzer, bi * h, h, bj * h, h);
                let mut y = vec![0.0; h];
                blk.spmv(&x[bj * h..(bj + 1) * h], &mut y);
                for (i, v) in y.into_iter().enumerate() {
                    y_blocks[bi * h + i] += v;
                }
            }
        }
        for (a, b) in y_full.iter().zip(&y_blocks) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn spmv_identity_like_behaviour_on_diagonal() {
        // With an empty pattern the matrix is exactly D = DIAG·I.
        let n = 10;
        let m = assemble_block(SEED, n, 0, 0, n, 0, n);
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        m.spmv(&x, &mut y);
        for v in y {
            assert!((v - DIAG).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_rows_stay_well_conditioned() {
        // The 2/pattern value scaling keeps the off-diagonal row sum < 2
        // regardless of density, so dense class-B-style rows remain
        // diagonally dominant.
        let n = 256;
        let full = assemble_block(SEED, n, 64, 0, n, 0, n);
        for i in 0..n {
            let mut diag = 0.0;
            let mut off = 0.0;
            for k in full.row_ptr[i]..full.row_ptr[i + 1] {
                if full.col_idx[k] as usize == i {
                    diag = full.values[k];
                } else {
                    off += full.values[k].abs();
                }
            }
            assert!(diag > off, "row {i}: diag {diag} <= {off}");
            assert!(off < 2.0 + 1e-9);
        }
    }
}
