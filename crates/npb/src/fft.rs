//! Iterative radix-2 complex FFT — the local computational core of the FT
//! kernel.
//!
//! A standard in-place decimation-in-time Cooley–Tukey transform with
//! bit-reversal permutation and precomputed twiddle tables. Only
//! power-of-two lengths are supported, which is all NPB FT grids need.

use crate::num::C64;
use std::f64::consts::PI;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward transform, `e^{-2πi k n / N}` kernel.
    Forward,
    /// Inverse transform (unnormalized; divide by `N` to invert exactly).
    Inverse,
}

/// Precomputed twiddle factors for FFTs of a fixed power-of-two length.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Forward twiddles `e^{-2πi j / n}` for `j < n/2`.
    twiddles: Vec<C64>,
    /// Bit-reversal permutation.
    rev: Vec<u32>,
}

impl FftPlan {
    /// Build a plan for length `n`.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two ≥ 1.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "FFT length must be a power of two, got {n}"
        );
        let twiddles = (0..n / 2)
            .map(|j| C64::cis(-2.0 * PI * j as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        // For n == 1, bits == 0; the shift above would be wrong, so patch:
        let rev = if n == 1 { vec![0] } else { rev };
        Self { n, twiddles, rev }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the trivial length-1 transform.
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// In-place transform of `data` (must have the plan's length).
    pub fn transform(&self, data: &mut [C64], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length must match plan");
        let n = self.n;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterfly passes.
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let tw = match dir {
                        Direction::Forward => self.twiddles[k * stride],
                        Direction::Inverse => self.twiddles[k * stride].conj(),
                    };
                    let a = data[start + k];
                    let b = data[start + k + half] * tw;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }

    /// The standard flop count of one transform: `5·n·log2(n)` — used by the
    /// FT kernel to charge on-chip work.
    pub fn flops(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        5.0 * self.n as f64 * (self.n as f64).log2()
    }
}

/// Naive `O(n²)` DFT, used only by tests as the correctness oracle.
pub fn dft_reference(data: &[C64], dir: Direction) -> Vec<C64> {
    let n = data.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    (0..n)
        .map(|k| {
            let mut acc = C64::ZERO;
            for (j, &x) in data.iter().enumerate() {
                acc += x * C64::cis(sign * 2.0 * PI * (k * j) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[C64], b: &[C64], tol: f64) -> bool {
        a.iter()
            .zip(b)
            .all(|(x, y)| (*x - *y).abs() <= tol * (1.0 + y.abs()))
    }

    #[test]
    fn matches_reference_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let plan = FftPlan::new(n);
            let input: Vec<C64> = (0..n)
                .map(|i| C64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let mut fast = input.clone();
            plan.transform(&mut fast, Direction::Forward);
            let slow = dft_reference(&input, Direction::Forward);
            assert!(close(&fast, &slow, 1e-10), "n={n}");
        }
    }

    #[test]
    fn inverse_recovers_input() {
        let n = 128;
        let plan = FftPlan::new(n);
        let input: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64).sqrt(), (i as f64 * 0.1).sin()))
            .collect();
        let mut buf = input.clone();
        plan.transform(&mut buf, Direction::Forward);
        plan.transform(&mut buf, Direction::Inverse);
        let scaled: Vec<C64> = buf.iter().map(|z| z.scale(1.0 / n as f64)).collect();
        assert!(close(&scaled, &input, 1e-12));
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 256;
        let plan = FftPlan::new(n);
        let input: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 0.31).cos(), (i as f64 * 0.17).sin()))
            .collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = input;
        plan.transform(&mut buf, Direction::Forward);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 32;
        let plan = FftPlan::new(n);
        let mut buf = vec![C64::ZERO; n];
        buf[0] = C64::ONE;
        plan.transform(&mut buf, Direction::Forward);
        for z in &buf {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1);
        let mut buf = vec![C64::new(3.0, 4.0)];
        plan.transform(&mut buf, Direction::Forward);
        assert_eq!(buf[0], C64::new(3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        FftPlan::new(12);
    }

    #[test]
    fn flops_formula() {
        let plan = FftPlan::new(1024);
        assert_eq!(plan.flops(), 5.0 * 1024.0 * 10.0);
    }
}
