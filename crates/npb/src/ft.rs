//! FT — the NPB 3-D FFT PDE solver kernel.
//!
//! Solves `∂u/∂t = α ∇²u` spectrally: one forward 3-D FFT, then per
//! iteration an element-wise evolution in frequency space followed by an
//! inverse 3-D FFT and a checksum. The distributed transpose between the
//! (x, y)-local and z-local stages is an **all-to-all** — the pairwise
//! exchange whose `(p−1)(ts + tw·m)` cost the paper models with the
//! Hockney form (§V.B.1). FT is the paper's communication-bound case:
//! its energy efficiency collapses as `p` grows and barely notices `f`
//! (Figs. 5–6).
//!
//! Decomposition is by z-slabs (forward layout) and x-slabs (transposed
//! layout) with block ranges that tolerate `p` larger than the slab count
//! (surplus ranks hold no planes but still participate in the collectives —
//! the realistic load-imbalance regime at extreme scale).

use mps::Ctx;

use crate::common::Class;
use crate::fft::{Direction, FftPlan};
use crate::num::C64;

/// Diffusivity constant in the exponent (NPB uses `1e-6`).
const ALPHA_DIFF: f64 = 1.0e-6;
/// Instructions charged per point of the element-wise evolve (complex
/// multiply + exponential).
const EVOLVE_INSTR_PER_PT: f64 = 22.0;
/// Instructions per flop of FFT butterfly work.
const FFT_INSTR_PER_FLOP: f64 = 1.0;

/// FT configuration.
#[derive(Debug, Clone, Copy)]
pub struct FtConfig {
    /// Grid size in x (power of two).
    pub nx: usize,
    /// Grid size in y (power of two).
    pub ny: usize,
    /// Grid size in z (power of two).
    pub nz: usize,
    /// Number of evolve/inverse-FFT iterations.
    pub niter: usize,
}

impl FtConfig {
    /// The scaled NPB class sizes.
    pub fn class(c: Class) -> Self {
        let (nx, ny, nz, niter) = c.ft_grid();
        Self { nx, ny, nz, niter }
    }

    /// Total grid points (the model's `n`).
    pub fn n(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// FT output.
#[derive(Debug, Clone, PartialEq)]
pub struct FtResult {
    /// Checksum after each iteration (identical on every rank).
    pub checksums: Vec<C64>,
    /// Self-verification: checksums finite, spectral energy decays under
    /// diffusion.
    pub verified: bool,
}

/// Block distribution of `total` items over `parts` ranks: returns
/// `(start, len)` for `idx`, spreading the remainder over the low ranks.
fn block_range(total: usize, parts: usize, idx: usize) -> (usize, usize) {
    let base = total / parts;
    let extra = total % parts;
    let len = base + usize::from(idx < extra);
    let start = idx * base + idx.min(extra);
    (start, len)
}

/// Deterministic initial condition for plane `z`, independent of `p`:
/// a fixed smooth field plus plane-seeded pseudo-noise.
fn init_plane(nx: usize, ny: usize, z: usize, out: &mut [C64]) {
    debug_assert_eq!(out.len(), nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            // Cheap splitmix-style hash of the global index for noise.
            let mut h = (x as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((y as u64) << 20)
                .wrapping_add((z as u64) << 40);
            h ^= h >> 30;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 27;
            let noise = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            let smooth =
                ((x as f64 * 0.3).sin() + (y as f64 * 0.2).cos() + (z as f64 * 0.1).sin()) / 3.0;
            out[y * nx + x] = C64::new(smooth + 0.1 * noise, 0.05 * noise);
        }
    }
}

/// Wrapped frequency index: `i` for `i <= n/2`, else `i − n`.
fn wrapped(i: usize, n: usize) -> f64 {
    if i <= n / 2 {
        i as f64
    } else {
        i as f64 - n as f64
    }
}

/// Run FT on the calling rank. All ranks must call with the same config.
pub fn ft_kernel(ctx: &mut Ctx, cfg: FtConfig) -> FtResult {
    let p = ctx.size();
    let rank = ctx.rank();
    let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
    assert!(
        nx.is_power_of_two() && ny.is_power_of_two() && nz.is_power_of_two(),
        "FT grid must be powers of two"
    );
    let (z0, my_nz) = block_range(nz, p, rank);
    let (x0, my_nx) = block_range(nx, p, rank);
    let slab_bytes = (nx * ny * my_nz.max(1) * 16) as u64;

    let plan_x = FftPlan::new(nx);
    let plan_y = FftPlan::new(ny);
    let plan_z = FftPlan::new(nz);

    // ------------------------------------------------------------------
    // Initialize u in forward layout: [z_local][y][x], x contiguous.
    // ------------------------------------------------------------------
    ctx.phase("ft:init");
    let mut u = vec![C64::ZERO; nx * ny * my_nz];
    for zl in 0..my_nz {
        let z = z0 + zl;
        init_plane(nx, ny, z, &mut u[zl * nx * ny..(zl + 1) * nx * ny]);
    }
    ctx.compute((nx * ny * my_nz) as f64 * 12.0);
    ctx.mem_stream((nx * ny * my_nz) as f64, slab_bytes);

    // ------------------------------------------------------------------
    // Forward 3-D FFT: x-FFTs, y-FFTs (local), transpose, z-FFTs.
    // ------------------------------------------------------------------
    ctx.phase("ft:forward");
    fft_xy(
        ctx,
        &mut u,
        nx,
        ny,
        my_nz,
        &plan_x,
        &plan_y,
        Direction::Forward,
        slab_bytes,
    );
    // Transposed layout: [x_local][y][z], z contiguous.
    let mut ut = transpose_forward(ctx, &u, &cfg, z0, my_nz, my_nx);
    drop(u);
    fft_z(
        ctx,
        &mut ut,
        ny,
        nz,
        my_nx,
        &plan_z,
        Direction::Forward,
        slab_bytes,
    );

    // Spectral energy for verification (Parseval-style decay check).
    let energy0 = spectral_energy(ctx, &ut, &cfg);

    // ------------------------------------------------------------------
    // Iterations: evolve in frequency space, inverse FFT, checksum.
    // ------------------------------------------------------------------
    let mut checksums = Vec::with_capacity(cfg.niter);
    let mut energy_last = energy0;
    let mut energies_ok = true;
    for t in 1..=cfg.niter {
        ctx.phase("ft:evolve");
        let mut w = ut.clone();
        evolve(ctx, &mut w, &cfg, x0, my_nx, t, slab_bytes);

        let e = spectral_energy(ctx, &w, &cfg);
        if e > energy_last * (1.0 + 1e-9) {
            energies_ok = false; // diffusion must not create energy
        }
        energy_last = e;

        ctx.phase("ft:inverse");
        fft_z(
            ctx,
            &mut w,
            ny,
            nz,
            my_nx,
            &plan_z,
            Direction::Inverse,
            slab_bytes,
        );
        let mut v = transpose_inverse(ctx, &w, &cfg, z0, my_nz, my_nx);
        drop(w);
        fft_xy(
            ctx,
            &mut v,
            nx,
            ny,
            my_nz,
            &plan_x,
            &plan_y,
            Direction::Inverse,
            slab_bytes,
        );
        // Normalize the inverse.
        let scale = 1.0 / cfg.n() as f64;
        for zv in v.iter_mut() {
            *zv = zv.scale(scale);
        }
        ctx.compute(v.len() as f64 * 2.0);
        ctx.mem_stream(v.len() as f64 * 2.0, slab_bytes);

        ctx.phase("ft:checksum");
        checksums.push(checksum(ctx, &v, &cfg, z0, my_nz));
    }

    let finite = checksums
        .iter()
        .all(|c| c.re.is_finite() && c.im.is_finite() && c.abs() > 0.0);
    FtResult {
        checksums,
        verified: finite && energies_ok,
    }
}

/// Local x-direction then y-direction FFTs over the z-slab layout.
#[allow(clippy::too_many_arguments)]
fn fft_xy(
    ctx: &mut Ctx,
    u: &mut [C64],
    nx: usize,
    ny: usize,
    my_nz: usize,
    plan_x: &FftPlan,
    plan_y: &FftPlan,
    dir: Direction,
    ws: u64,
) {
    // x FFTs: contiguous rows.
    for zl in 0..my_nz {
        for y in 0..ny {
            let off = (zl * ny + y) * nx;
            plan_x.transform(&mut u[off..off + nx], dir);
        }
    }
    ctx.compute((ny * my_nz) as f64 * plan_x.flops() * FFT_INSTR_PER_FLOP);
    ctx.mem_stream((nx * ny * my_nz) as f64 * 2.0, ws);

    // y FFTs: strided; gather into scratch.
    let mut scratch = vec![C64::ZERO; ny];
    for zl in 0..my_nz {
        for x in 0..nx {
            for y in 0..ny {
                scratch[y] = u[(zl * ny + y) * nx + x];
            }
            plan_y.transform(&mut scratch, dir);
            for y in 0..ny {
                u[(zl * ny + y) * nx + x] = scratch[y];
            }
        }
    }
    ctx.compute((nx * my_nz) as f64 * plan_y.flops() * FFT_INSTR_PER_FLOP);
    // Strided sweep costs double the streaming traffic.
    ctx.mem_stream((nx * ny * my_nz) as f64 * 4.0, ws);
}

/// z-direction FFTs over the transposed layout `[x_local][y][z]`.
#[allow(clippy::too_many_arguments)]
fn fft_z(
    ctx: &mut Ctx,
    ut: &mut [C64],
    ny: usize,
    nz: usize,
    my_nx: usize,
    plan_z: &FftPlan,
    dir: Direction,
    ws: u64,
) {
    for xl in 0..my_nx {
        for y in 0..ny {
            let off = (xl * ny + y) * nz;
            plan_z.transform(&mut ut[off..off + nz], dir);
        }
    }
    ctx.compute((my_nx * ny) as f64 * plan_z.flops() * FFT_INSTR_PER_FLOP);
    ctx.mem_stream((my_nx * ny * nz) as f64 * 2.0, ws);
}

/// All-to-all from z-slabs `[z_local][y][x]` to x-slabs `[x_local][y][z]`.
fn transpose_forward(
    ctx: &mut Ctx,
    u: &[C64],
    cfg: &FtConfig,
    z0: usize,
    my_nz: usize,
    my_nx: usize,
) -> Vec<C64> {
    let p = ctx.size();
    let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
    let ws = (u.len().max(1) * 16) as u64;

    // Pack: chunk for rank d = my z-planes restricted to d's x-range,
    // ordered (z_local, y, x_local_d).
    let mut chunks: Vec<Vec<C64>> = Vec::with_capacity(p);
    for d in 0..p {
        let (dx0, dnx) = block_range(nx, p, d);
        let mut chunk = Vec::with_capacity(my_nz * ny * dnx);
        for zl in 0..my_nz {
            for y in 0..ny {
                let row = (zl * ny + y) * nx;
                chunk.extend_from_slice(&u[row + dx0..row + dx0 + dnx]);
            }
        }
        chunks.push(chunk);
    }
    ctx.mem_stream((nx * ny * my_nz) as f64 * 2.0, ws);

    ctx.phase("ft:alltoall");
    let received = ctx.alltoall(chunks);

    // Unpack into [x_local][y][z].
    let mut ut = vec![C64::ZERO; my_nx * ny * nz];
    for (s, chunk) in received.iter().enumerate() {
        let (sz0, snz) = block_range(nz, p, s);
        debug_assert_eq!(chunk.len(), snz * ny * my_nx);
        let mut it = chunk.iter();
        for zl in 0..snz {
            let z = sz0 + zl;
            for y in 0..ny {
                for xl in 0..my_nx {
                    ut[(xl * ny + y) * nz + z] = *it.next().expect("chunk sized");
                }
            }
        }
    }
    let _ = z0;
    ctx.mem_stream(
        (my_nx * ny * nz) as f64 * 2.0,
        (ut.len().max(1) * 16) as u64,
    );
    ut
}

/// All-to-all back from x-slabs to z-slabs.
fn transpose_inverse(
    ctx: &mut Ctx,
    ut: &[C64],
    cfg: &FtConfig,
    z0: usize,
    my_nz: usize,
    my_nx: usize,
) -> Vec<C64> {
    let p = ctx.size();
    let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
    let ws = (ut.len().max(1) * 16) as u64;

    // Pack: chunk for rank d = my x-columns restricted to d's z-range,
    // ordered (z_local_d, y, x_local) so the receiver can unpack rows.
    let mut chunks: Vec<Vec<C64>> = Vec::with_capacity(p);
    for d in 0..p {
        let (dz0, dnz) = block_range(nz, p, d);
        let mut chunk = Vec::with_capacity(dnz * ny * my_nx);
        for zl in 0..dnz {
            let z = dz0 + zl;
            for y in 0..ny {
                for xl in 0..my_nx {
                    chunk.push(ut[(xl * ny + y) * nz + z]);
                }
            }
        }
        chunks.push(chunk);
    }
    ctx.mem_stream((my_nx * ny * nz) as f64 * 2.0, ws);

    ctx.phase("ft:alltoall");
    let received = ctx.alltoall(chunks);

    // Unpack into [z_local][y][x].
    let mut u = vec![C64::ZERO; nx * ny * my_nz];
    for (s, chunk) in received.iter().enumerate() {
        let (sx0, snx) = block_range(nx, p, s);
        debug_assert_eq!(chunk.len(), my_nz * ny * snx);
        let mut it = chunk.iter();
        for zl in 0..my_nz {
            for y in 0..ny {
                let row = (zl * ny + y) * nx;
                for xo in 0..snx {
                    u[row + sx0 + xo] = *it.next().expect("chunk sized");
                }
            }
        }
    }
    let _ = z0;
    ctx.mem_stream((nx * ny * my_nz) as f64 * 2.0, (u.len().max(1) * 16) as u64);
    u
}

/// Element-wise evolution in frequency space at time step `t`.
fn evolve(
    ctx: &mut Ctx,
    ut: &mut [C64],
    cfg: &FtConfig,
    x0: usize,
    my_nx: usize,
    t: usize,
    ws: u64,
) {
    let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
    let tau = -4.0 * std::f64::consts::PI * std::f64::consts::PI * ALPHA_DIFF * t as f64;
    for xl in 0..my_nx {
        let kx = wrapped(x0 + xl, nx);
        for y in 0..ny {
            let ky = wrapped(y, ny);
            let base = (xl * ny + y) * nz;
            for z in 0..nz {
                let kz = wrapped(z, nz);
                let factor = (tau * (kx * kx + ky * ky + kz * kz)).exp();
                ut[base + z] = ut[base + z].scale(factor);
            }
        }
    }
    ctx.compute((my_nx * ny * nz) as f64 * EVOLVE_INSTR_PER_PT);
    ctx.mem_stream((my_nx * ny * nz) as f64 * 2.0, ws);
}

/// Total spectral energy `Σ|ũ|² / n` (an allreduce; used for verification).
fn spectral_energy(ctx: &mut Ctx, ut: &[C64], cfg: &FtConfig) -> f64 {
    let local: f64 = ut.iter().map(|z| z.norm_sqr()).sum();
    ctx.compute(ut.len() as f64 * 3.0);
    ctx.allreduce_scalar(local) / cfg.n() as f64
}

/// NPB-style checksum: 1024 strided samples of the physical-space field.
fn checksum(ctx: &mut Ctx, u: &[C64], cfg: &FtConfig, z0: usize, my_nz: usize) -> C64 {
    let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
    let mut local = C64::ZERO;
    for j in 1..=1024usize {
        let q = (5 * j) % nx;
        let r = (3 * j) % ny;
        let s = j % nz;
        if s >= z0 && s < z0 + my_nz {
            local += u[((s - z0) * ny + r) * nx + q];
        }
    }
    ctx.compute(1024.0 * 6.0);
    let g = ctx.allreduce_sum(&[local.re, local.im]);
    C64::new(g[0], g[1]).scale(1.0 / cfg.n() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps::{run, World};
    use simcluster::system_g;

    fn world() -> World {
        World::new(system_g(), 2.8e9)
    }

    #[test]
    fn block_range_covers_exactly() {
        for total in [7usize, 16, 32] {
            for parts in [1usize, 3, 4, 16, 40] {
                let mut covered = 0;
                let mut next = 0;
                for i in 0..parts {
                    let (s, l) = block_range(total, parts, i);
                    assert_eq!(s, next);
                    next += l;
                    covered += l;
                }
                assert_eq!(covered, total, "total={total} parts={parts}");
            }
        }
    }

    #[test]
    fn ft_verifies_on_one_rank() {
        let w = world();
        let cfg = FtConfig::class(Class::S);
        let r = run(&w, 1, |ctx| ft_kernel(ctx, cfg));
        let res = &r.ranks[0].result;
        assert!(res.verified, "{res:?}");
        assert_eq!(res.checksums.len(), cfg.niter);
    }

    #[test]
    fn ft_checksums_independent_of_rank_count() {
        let cfg = FtConfig {
            nx: 16,
            ny: 16,
            nz: 8,
            niter: 3,
        };
        let w = world();
        let r1 = run(&w, 1, |ctx| ft_kernel(ctx, cfg));
        let r4 = run(&w, 4, |ctx| ft_kernel(ctx, cfg));
        let r3 = run(&w, 3, |ctx| ft_kernel(ctx, cfg));
        let a = &r1.ranks[0].result.checksums;
        for r in [&r4, &r3] {
            for rk in &r.ranks {
                let b = &rk.result.checksums;
                for (x, y) in a.iter().zip(b) {
                    assert!((*x - *y).abs() < 1e-9, "checksum mismatch {x:?} vs {y:?}");
                }
            }
        }
    }

    #[test]
    fn ft_runs_with_more_ranks_than_planes() {
        // nz = 8 but p = 12: surplus ranks hold no planes yet participate.
        let cfg = FtConfig {
            nx: 16,
            ny: 8,
            nz: 8,
            niter: 2,
        };
        let w = world();
        let r1 = run(&w, 1, |ctx| ft_kernel(ctx, cfg));
        let r12 = run(&w, 12, |ctx| ft_kernel(ctx, cfg));
        let a = &r1.ranks[0].result.checksums;
        let b = &r12.ranks[0].result.checksums;
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < 1e-9);
        }
    }

    #[test]
    fn ft_is_communication_heavy() {
        let w = world();
        let cfg = FtConfig::class(Class::S);
        let r = run(&w, 8, |ctx| ft_kernel(ctx, cfg));
        let c = r.total_counters();
        // niter inverse transposes + 1 forward, each moving ~the whole grid.
        let grid_bytes = (cfg.n() * 16) as f64;
        assert!(
            c.bytes > grid_bytes * cfg.niter as f64 * 0.5,
            "FT moved only {} bytes for a {} byte grid",
            c.bytes,
            grid_bytes
        );
    }

    #[test]
    fn ft_message_counts_match_pairwise_exchange() {
        let w = world();
        let cfg = FtConfig {
            nx: 16,
            ny: 16,
            nz: 8,
            niter: 2,
        };
        let p = 4;
        let r = run(&w, p, |ctx| ft_kernel(ctx, cfg));
        // Each rank: (1 forward + niter inverse) alltoalls × (p-1) messages,
        // plus the small allreduces (energy + checksums).
        let alltoall_msgs = (1 + cfg.niter) as f64 * (p - 1) as f64;
        for rk in &r.ranks {
            assert!(
                rk.stats.messages >= alltoall_msgs,
                "rank {} sent {} messages, expected >= {alltoall_msgs}",
                rk.rank,
                rk.stats.messages
            );
        }
    }
}
