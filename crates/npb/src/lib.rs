//! # npb — NAS Parallel Benchmark kernels over the `mps` substrate
//!
//! Rust re-implementations of the NPB kernels the paper evaluates —
//! **EP** (embarrassingly parallel Gaussian deviates), **FT** (3-D FFT PDE
//! solver) and **CG** (conjugate gradient) — plus **IS** (integer sort) and
//! **MG** (multigrid), which round out the "NAS benchmark suites" axis of
//! the paper's Dori validation figure (Fig. 3).
//!
//! The kernels compute *real* numerics (actual FFTs, actual CG iterations on
//! an actual sparse matrix, actual Marsaglia-polar deviates driven by NPB's
//! `randlc` generator) while charging virtual time and workload counters
//! through [`mps::Ctx`]. Communication uses the same collective algorithms
//! 2010-era MPI used (pairwise-exchange all-to-all for FT's transpose, the
//! 2-D processor-grid reduce/transpose scheme for CG), so the measured
//! `M`/`B` counts scale the way the paper's TAU measurements did.
//!
//! Problem sizes are *scaled-down* NPB classes (see [`common::Class`]): the
//! real class B (e.g. FT's 512×256×256 grid) would be needlessly slow on a
//! host thread simulator, and the iso-energy-efficiency model cares only
//! about how workload scales with `n` and `p`, which the scaled classes
//! preserve.

#![forbid(unsafe_code)]

pub mod cg;
pub mod common;
pub mod ep;
pub mod fft;
pub mod ft;
pub mod is;
pub mod mg;
pub mod num;
pub mod plans;
pub mod sparse;

pub use cg::{cg_kernel, CgConfig, CgResult};
pub use common::{Class, KernelName};
pub use ep::{ep_kernel, EpConfig, EpResult};
pub use ft::{ft_kernel, FtConfig, FtResult};
pub use is::{is_kernel, IsConfig, IsResult};
pub use mg::{mg_kernel, MgConfig, MgResult};
pub use num::C64;
pub use plans::{cg_domain, cg_plan, ep_domain, ep_plan, ft_domain, ft_plan};
