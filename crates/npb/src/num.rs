//! Minimal complex arithmetic for the FT kernel.
//!
//! A tiny `f64` complex type rather than an external crate: the FFT only
//! needs add/sub/mul and a few constructors, and keeping it local keeps the
//! workspace dependency-light (DESIGN.md §5).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Construct from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Zero.
    pub const ZERO: C64 = C64::new(0.0, 0.0);

    /// One.
    pub const ONE: C64 = C64::new(1.0, 0.0);

    /// `e^{iθ}` — the twiddle-factor constructor.
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-3.0, 0.5);
        assert_eq!(a + b, C64::new(-2.0, 2.5));
        assert_eq!(a - b, C64::new(4.0, 1.5));
        // (1+2i)(-3+0.5i) = -3 + 0.5i - 6i + i² = -4 - 5.5i
        assert_eq!(a * b, C64::new(-4.0, -5.5));
        assert_eq!(-a, C64::new(-1.0, -2.0));
    }

    #[test]
    fn cis_unit_circle() {
        let z = C64::cis(PI / 2.0);
        assert!((z.re).abs() < 1e-15);
        assert!((z.im - 1.0).abs() < 1e-15);
        assert!((C64::cis(1.234).abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn conj_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        // z · conj(z) = |z|²
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < 1e-12 && p.im.abs() < 1e-12);
    }

    #[test]
    fn scale_is_real_multiplication() {
        let z = C64::new(2.0, -6.0).scale(0.5);
        assert_eq!(z, C64::new(1.0, -3.0));
    }
}
