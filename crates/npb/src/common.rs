//! Shared NPB infrastructure: the `randlc` generator, problem classes, and
//! processor-grid helpers.

/// NPB's linear congruential generator: `x_{k+1} = a·x_k mod 2^46`, with
/// `a = 5^13` and default seed `271828183`. Returns uniforms in `(0, 1)`.
///
/// The original is implemented in double-precision tricks; we use exact
/// 128-bit integer arithmetic, which produces the identical sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Randlc {
    x: u64,
}

/// Modulus 2^46.
const M46: u64 = 1 << 46;
/// NPB multiplier a = 5^13.
pub const RANDLC_A: u64 = 1_220_703_125;
/// NPB default seed.
pub const RANDLC_SEED: u64 = 271_828_183;

impl Randlc {
    /// Start the sequence at `seed` (must be odd and < 2^46, as in NPB).
    pub fn new(seed: u64) -> Self {
        assert!(seed < M46, "seed must be < 2^46");
        assert!(seed % 2 == 1, "NPB randlc seeds are odd");
        Self { x: seed }
    }

    /// The canonical NPB generator.
    pub fn nas_default() -> Self {
        Self::new(RANDLC_SEED)
    }

    /// Next uniform deviate in `(0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.x = mul_mod46(self.x, RANDLC_A);
        self.x as f64 / M46 as f64
    }

    /// Current raw state.
    pub fn state(&self) -> u64 {
        self.x
    }

    /// Jump the generator forward by `k` steps in `O(log k)` — NPB's
    /// `a^k mod 2^46` trick, used to give each rank an independent,
    /// reproducible block of the global sequence.
    pub fn skip(&mut self, k: u64) {
        let ak = pow_mod46(RANDLC_A, k);
        self.x = mul_mod46(self.x, ak);
    }

    /// A generator positioned `k` steps after this one.
    pub fn at_offset(&self, k: u64) -> Self {
        let mut g = *self;
        g.skip(k);
        g
    }
}

fn mul_mod46(a: u64, b: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(M46)) as u64
}

fn pow_mod46(mut base: u64, mut exp: u64) -> u64 {
    let mut acc: u64 = 1;
    base %= M46;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod46(acc, base);
        }
        base = mul_mod46(base, base);
        exp >>= 1;
    }
    acc
}

/// Scaled-down NPB problem classes (see crate docs for why they are scaled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Sample size for quick tests.
    S,
    /// Workstation size.
    W,
    /// Small production size.
    A,
    /// The paper's evaluation size.
    B,
}

impl Class {
    /// EP: number of Gaussian pairs to generate.
    pub fn ep_pairs(self) -> u64 {
        match self {
            Class::S => 1 << 16,
            Class::W => 1 << 18,
            Class::A => 1 << 20,
            Class::B => 1 << 22,
        }
    }

    /// FT: grid dimensions `(nx, ny, nz)` and iteration count.
    ///
    /// Class B is sized so the sequential grid (256·256·128 complex values
    /// = 128 MiB) dwarfs even many ranks' worth of shared L2 — FT's "large
    /// memory footprint" from the paper. Smaller grids would let strong
    /// scaling drop the whole problem into aggregate cache, a regime the
    /// paper's full-size runs never enter.
    pub fn ft_grid(self) -> (usize, usize, usize, usize) {
        match self {
            Class::S => (16, 16, 16, 4),
            Class::W => (32, 32, 16, 4),
            Class::A => (64, 64, 32, 6),
            Class::B => (256, 256, 128, 6),
        }
    }

    /// CG: `(n, nonzer, outer iterations, lambda shift)`.
    pub fn cg_size(self) -> (usize, usize, usize, f64) {
        match self {
            Class::S => (1_400, 7, 8, 10.0),
            Class::W => (7_000, 8, 8, 12.0),
            Class::A => (14_000, 11, 6, 20.0),
            Class::B => (75_000, 13, 4, 60.0),
        }
    }

    /// CG: generator-pattern entries per matrix row. `A = B + Bᵀ + D` gets
    /// ~2× this many non-zeros per row. Class B's ~360/row yields a ~27M-
    /// non-zero, ~320 MB matrix — like real NPB class B (54M nnz), far too
    /// big for aggregate cache at any `p ≤ 64`, so strong scaling cannot
    /// fake superlinear energy efficiency.
    pub fn cg_pattern(self) -> usize {
        match self {
            Class::S => 28,
            Class::W => 48,
            Class::A => 80,
            Class::B => 180,
        }
    }

    /// IS: `(number of keys, key range)`.
    pub fn is_size(self) -> (u64, u64) {
        match self {
            Class::S => (1 << 14, 1 << 11),
            Class::W => (1 << 16, 1 << 13),
            Class::A => (1 << 18, 1 << 15),
            Class::B => (1 << 20, 1 << 17),
        }
    }

    /// MG: `(cubic grid edge, V-cycles)`.
    pub fn mg_size(self) -> (usize, usize) {
        match self {
            Class::S => (16, 4),
            Class::W => (32, 4),
            Class::A => (32, 6),
            Class::B => (64, 8),
        }
    }
}

/// The kernels of the suite, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelName {
    /// Embarrassingly parallel.
    Ep,
    /// 3-D FFT PDE solver.
    Ft,
    /// Conjugate gradient.
    Cg,
    /// Integer sort.
    Is,
    /// Multigrid.
    Mg,
}

impl KernelName {
    /// Short uppercase name as used in the paper's figures.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelName::Ep => "EP",
            KernelName::Ft => "FT",
            KernelName::Cg => "CG",
            KernelName::Is => "IS",
            KernelName::Mg => "MG",
        }
    }

    /// All kernels in suite order.
    pub const ALL: [KernelName; 5] = [
        KernelName::Ep,
        KernelName::Ft,
        KernelName::Cg,
        KernelName::Is,
        KernelName::Mg,
    ];
}

/// Factor a power-of-two process count into the NPB CG processor grid:
/// `nprow × npcol` with `npcol ∈ {nprow, 2·nprow}` (NPB's `npcols >= nprows`
/// convention).
///
/// # Panics
/// Panics unless `p` is a power of two.
pub fn cg_proc_grid(p: usize) -> (usize, usize) {
    assert!(
        p.is_power_of_two(),
        "CG requires a power-of-two rank count, got {p}"
    );
    let lg = p.trailing_zeros();
    let nprow = 1usize << (lg / 2);
    let npcol = p / nprow;
    debug_assert!(npcol == nprow || npcol == 2 * nprow);
    (nprow, npcol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randlc_produces_uniforms_in_unit_interval() {
        let mut g = Randlc::nas_default();
        for _ in 0..10_000 {
            let u = g.next_f64();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn randlc_mean_is_about_half() {
        let mut g = Randlc::nas_default();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn skip_matches_stepping() {
        let mut a = Randlc::nas_default();
        let mut b = Randlc::nas_default();
        for _ in 0..1000 {
            a.next_f64();
        }
        b.skip(1000);
        assert_eq!(a.state(), b.state());
        assert_eq!(a.next_f64(), b.next_f64());
    }

    #[test]
    fn at_offset_is_pure() {
        let g = Randlc::nas_default();
        let g1 = g.at_offset(500);
        let g2 = g.at_offset(500);
        assert_eq!(g1.state(), g2.state());
        assert_ne!(g.state(), g1.state());
    }

    #[test]
    fn disjoint_blocks_are_disjoint() {
        // Two ranks taking blocks [0, 1000) and [1000, 2000) of the sequence
        // together reproduce a single sequential scan.
        let base = Randlc::nas_default();
        let mut seq = base;
        let mut all = Vec::new();
        for _ in 0..2000 {
            all.push(seq.next_f64());
        }
        let mut r0 = base.at_offset(0);
        let mut r1 = base.at_offset(1000);
        let blocked: Vec<f64> = (0..1000)
            .map(|_| r0.next_f64())
            .chain((0..1000).map(|_| r1.next_f64()))
            .collect();
        assert_eq!(all, blocked);
    }

    #[test]
    fn classes_scale_monotonically() {
        assert!(Class::S.ep_pairs() < Class::W.ep_pairs());
        assert!(Class::W.ep_pairs() < Class::A.ep_pairs());
        assert!(Class::A.ep_pairs() < Class::B.ep_pairs());
        let (n_s, ..) = Class::S.cg_size();
        let (n_b, ..) = Class::B.cg_size();
        assert!(n_b > n_s);
        // The paper's Fig. 9 uses n = 75000 — class B CG.
        assert_eq!(Class::B.cg_size().0, 75_000);
    }

    #[test]
    fn proc_grid_shapes() {
        assert_eq!(cg_proc_grid(1), (1, 1));
        assert_eq!(cg_proc_grid(2), (1, 2));
        assert_eq!(cg_proc_grid(4), (2, 2));
        assert_eq!(cg_proc_grid(8), (2, 4));
        assert_eq!(cg_proc_grid(16), (4, 4));
        assert_eq!(cg_proc_grid(32), (4, 8));
        assert_eq!(cg_proc_grid(64), (8, 8));
        assert_eq!(cg_proc_grid(128), (8, 16));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn proc_grid_rejects_non_power() {
        cg_proc_grid(6);
    }
}
