//! CG — the NPB conjugate-gradient kernel.
//!
//! Estimates the largest eigenvalue of a random sparse SPD matrix by inverse
//! power iteration, each step solving `A·z = x` with 25 unpreconditioned CG
//! iterations — the memory-bound, latency-sensitive workload of the paper's
//! §V.B.3 (where *raising* the DVFS frequency improves energy efficiency,
//! Fig. 9; the paper's `n = 75000` there is exactly class B CG).
//!
//! Parallelization follows NPB's 2-D processor grid (`nprow × npcol`,
//! `npcol ∈ {nprow, 2·nprow}`): the matrix is block-partitioned; vectors
//! live in *row form* (each processor row replicates its `n/nprow` segment).
//! One SpMV costs a transpose exchange (one partner message of `n/npcol`
//! elements), a processor-row allreduce (`log₂ npcol` rounds of `n/nprow`
//! elements), and the dot products cost scalar allreduces — which is why the
//! paper's fitted CG communication terms carry `√p` factors.
//!
//! The matrix is padded to a fixed multiple (independent of `p`) so block
//! shapes always divide evenly and results are identical for every process
//! grid.

use mps::Ctx;

use crate::common::{cg_proc_grid, Class};
use crate::sparse::{assemble_block_padded, Csr};

/// Fixed padding quantum: `n` is rounded up to a multiple of this, which
/// divides evenly for every grid with `nprow, npcol ≤ 32`.
const PAD_QUANTUM: usize = 1024;
/// Inner CG iterations per outer step (NPB's `cgitmax`).
pub(crate) const CGITMAX: usize = 25;
/// Matrix seed (any odd value < 2^46).
const MATRIX_SEED: u64 = 314_159_265;

/// Instructions charged per stored non-zero in SpMV (multiply-add plus
/// index arithmetic).
const SPMV_INSTR_PER_NNZ: f64 = 4.0;
/// Off-chip accesses per non-zero (value, column index, vector element).
const SPMV_MEM_PER_NNZ: f64 = 2.5;
/// Instructions per element of a vector update (axpy-style).
const VEC_INSTR_PER_ELEM: f64 = 2.0;
/// Accesses per element of a vector update.
const VEC_MEM_PER_ELEM: f64 = 1.5;

/// CG configuration.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Matrix dimension before padding (the model's `n`).
    pub n: usize,
    /// Nominal NPB `nonzer` (kept for class identity/reporting).
    pub nonzer: usize,
    /// Generator-pattern entries per row (see [`Class::cg_pattern`]);
    /// `A = B + Bᵀ + D` has ~2× this many non-zeros per row.
    pub pattern: usize,
    /// Outer (power-iteration) steps.
    pub niter: usize,
    /// Eigenvalue shift `λ` added to `1/(x·z)`.
    pub shift: f64,
}

impl CgConfig {
    /// The scaled NPB class sizes.
    pub fn class(c: Class) -> Self {
        let (n, nonzer, niter, shift) = c.cg_size();
        Self {
            n,
            nonzer,
            pattern: c.cg_pattern(),
            niter,
            shift,
        }
    }

    /// Matrix dimension after padding (what the block shapes divide).
    pub(crate) fn n_pad(&self) -> usize {
        self.n.div_ceil(PAD_QUANTUM) * PAD_QUANTUM
    }
}

/// CG output (identical on every rank).
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// The eigenvalue estimate `ζ` after the final outer step.
    pub zeta: f64,
    /// `ζ` after each outer step.
    pub zetas: Vec<f64>,
    /// Residual norm `‖x − A·z‖` after each outer step's CG solve.
    pub rnorms: Vec<f64>,
    /// Self-verification: residuals small, `ζ` converged and finite.
    pub verified: bool,
}

/// Internal per-rank CG state: grid coordinates and the matrix block.
struct CgGrid {
    nprow: usize,
    npcol: usize,
    row: usize,
    col: usize,
    /// Length of a row-form segment: `n_pad / nprow`.
    row_len: usize,
    /// Length of a column segment: `n_pad / npcol`.
    col_len: usize,
    block: Csr,
    /// Monotonic tag counter for this kernel's point-to-point messages.
    tag: u64,
}

impl CgGrid {
    fn rank_of(&self, r: usize, c: usize) -> usize {
        r * self.npcol + c
    }

    fn next_tag(&mut self) -> u64 {
        let t = self.tag;
        self.tag += 1;
        // Stay inside the user-tag space (< 2^32), namespaced high.
        0x4347_0000 + (t % 0xFFFF)
    }
}

/// Run CG on the calling rank. All ranks must call with the same config;
/// the rank count must be a power of two.
pub fn cg_kernel(ctx: &mut Ctx, cfg: CgConfig) -> CgResult {
    let p = ctx.size();
    let (nprow, npcol) = cg_proc_grid(p);
    let n = cfg.n_pad();
    assert!(
        n.is_multiple_of(nprow) && n.is_multiple_of(npcol),
        "padding must divide evenly"
    );

    let row = ctx.rank() / npcol;
    let col = ctx.rank() % npcol;
    let row_len = n / nprow;
    let col_len = n / npcol;

    ctx.phase("cg:makea");
    let block = assemble_block_padded(
        MATRIX_SEED,
        cfg.n,
        n,
        cfg.pattern,
        row * row_len,
        row_len,
        col * col_len,
        col_len,
    );
    // Matrix generation cost, kept nominal: NPB starts its timed region
    // *after* `makea`, so setup must not dominate the instrumented
    // workload (it is replicated across the processor grid and would
    // otherwise swamp the iteration-phase overheads the model studies).
    let gen_work = (row_len + col_len) as f64 * cfg.pattern as f64;
    ctx.compute(gen_work * 12.0);
    ctx.mem_stream(gen_work * 0.5, (block.nnz() * 16) as u64);

    let mut grid = CgGrid {
        nprow,
        npcol,
        row,
        col,
        row_len,
        col_len,
        block,
        tag: 0,
    };

    // x in row form: all ones.
    let mut x = vec![1.0f64; row_len];
    let mut zetas = Vec::with_capacity(cfg.niter);
    let mut rnorms = Vec::with_capacity(cfg.niter);

    for _ in 0..cfg.niter {
        ctx.phase("cg:conjgrad");
        let (z, rnorm) = conjgrad(ctx, &mut grid, &x);

        ctx.phase("cg:outer");
        // ζ = shift + 1 / (x·z); x = z / ‖z‖.
        let xz = dot(ctx, &mut grid, &x, &z);
        let zz = dot(ctx, &mut grid, &z, &z);
        let zeta = cfg.shift + 1.0 / xz;
        let inv_norm = 1.0 / zz.sqrt();
        for (xi, zi) in x.iter_mut().zip(&z) {
            *xi = zi * inv_norm;
        }
        charge_vec(ctx, grid.row_len, 1);
        zetas.push(zeta);
        rnorms.push(rnorm);
    }

    let zeta = *zetas.last().expect("at least one iteration");
    // Verification: residuals must be small relative to ‖x‖ = √n, ζ finite
    // and settled (last two outer steps agree to 1e-6 relative).
    let resid_ok = rnorms
        .iter()
        .all(|r| r.is_finite() && *r < 1e-4 * (n as f64).sqrt());
    // The random matrix's spectrum is clustered, so the power iteration
    // settles slowly; require the estimate to be moving by < 5% per outer
    // step rather than full convergence (NPB verifies against a hard-coded
    // reference instead, which our re-generated matrix cannot have).
    let settled = zetas.len() < 2 || {
        let a = zetas[zetas.len() - 2];
        (zeta - a).abs() <= 5e-2 * zeta.abs().max(1.0)
    };
    CgResult {
        zeta,
        zetas,
        rnorms,
        verified: zeta.is_finite() && resid_ok && settled,
    }
}

/// 25 CG iterations solving `A·z = x`; returns `(z, ‖x − A·z‖)`.
fn conjgrad(ctx: &mut Ctx, grid: &mut CgGrid, x: &[f64]) -> (Vec<f64>, f64) {
    let len = grid.row_len;
    let mut z = vec![0.0f64; len];
    let mut r = x.to_vec();
    let mut pv = r.clone();
    let mut rho = dot(ctx, grid, &r, &r);

    for _ in 0..CGITMAX {
        let q = spmv(ctx, grid, &pv);
        let d = dot(ctx, grid, &pv, &q);
        let alpha = rho / d;
        for i in 0..len {
            z[i] += alpha * pv[i];
            r[i] -= alpha * q[i];
        }
        charge_vec(ctx, len, 2);
        let rho0 = rho;
        rho = dot(ctx, grid, &r, &r);
        let beta = rho / rho0;
        for i in 0..len {
            pv[i] = r[i] + beta * pv[i];
        }
        charge_vec(ctx, len, 1);
    }

    // Residual ‖x − A·z‖.
    let az = spmv(ctx, grid, &z);
    let mut diff = vec![0.0f64; len];
    for i in 0..len {
        diff[i] = x[i] - az[i];
    }
    charge_vec(ctx, len, 1);
    let rnorm = dot(ctx, grid, &diff, &diff).sqrt();
    (z, rnorm)
}

/// Distributed SpMV: row-form input → row-form output.
fn spmv(ctx: &mut Ctx, grid: &mut CgGrid, v_row: &[f64]) -> Vec<f64> {
    // 1. Transpose: obtain my column segment of the global vector.
    let v_col = transpose(ctx, grid, v_row);

    // 2. Local partial product.
    let mut q = vec![0.0f64; grid.row_len];
    let fma = grid.block.spmv(&v_col, &mut q);
    ctx.compute(fma as f64 * SPMV_INSTR_PER_NNZ + grid.row_len as f64);
    ctx.mem_stream(
        fma as f64 * SPMV_MEM_PER_NNZ + grid.row_len as f64,
        (grid.block.nnz() * 12 + grid.col_len * 8) as u64,
    );

    // 3. Sum across the processor row (recursive doubling over npcol).
    row_allreduce(ctx, grid, &mut q);
    q
}

/// Row-form → column-segment exchange with the transpose partner.
fn transpose(ctx: &mut Ctx, grid: &mut CgGrid, v_row: &[f64]) -> Vec<f64> {
    let (r, c) = (grid.row, grid.col);
    let tag = grid.next_tag();
    if grid.npcol == grid.nprow {
        // Square grid: partner (c, r); full segments swap.
        let partner = grid.rank_of(c, r);
        if partner == ctx.rank() {
            return v_row.to_vec();
        }
        let out = ctx.exchange(partner, tag, v_row.to_vec());
        debug_assert_eq!(out.len(), grid.col_len);
        out
    } else {
        // npcol = 2·nprow: partner (c/2, 2r + c%2); half segments swap.
        debug_assert_eq!(grid.npcol, 2 * grid.nprow);
        let partner = grid.rank_of(c / 2, 2 * r + c % 2);
        let half = grid.col_len;
        let send_off = (c % 2) * half;
        let piece = v_row[send_off..send_off + half].to_vec();
        if partner == ctx.rank() {
            return piece;
        }
        let out = ctx.exchange(partner, tag, piece);
        debug_assert_eq!(out.len(), half);
        out
    }
}

/// Allreduce a row-form vector across the processor row.
fn row_allreduce(ctx: &mut Ctx, grid: &mut CgGrid, v: &mut [f64]) {
    let mut dist = 1usize;
    while dist < grid.npcol {
        let partner_c = grid.col ^ dist;
        let partner = grid.rank_of(grid.row, partner_c);
        let tag = grid.next_tag();
        let other = ctx.exchange(partner, tag, v.to_vec());
        for (a, b) in v.iter_mut().zip(&other) {
            *a += *b;
        }
        ctx.compute(v.len() as f64);
        ctx.mem_stream(v.len() as f64, (v.len() * 8) as u64);
        dist <<= 1;
    }
}

/// Distributed dot product of two row-form vectors: each processor in a row
/// sums a distinct `1/npcol` slice, then a global scalar allreduce combines
/// rows and slices exactly once each.
fn dot(ctx: &mut Ctx, grid: &mut CgGrid, a: &[f64], b: &[f64]) -> f64 {
    let slice = grid.row_len / grid.npcol;
    let off = grid.col * slice;
    let local: f64 = a[off..off + slice]
        .iter()
        .zip(&b[off..off + slice])
        .map(|(x, y)| x * y)
        .sum();
    ctx.compute(slice as f64 * 2.0);
    ctx.mem_stream(slice as f64 * 2.0, (grid.row_len * 16) as u64);
    ctx.allreduce_scalar(local)
}

/// Charge the cost of `sweeps` full-row-segment vector updates.
fn charge_vec(ctx: &mut Ctx, len: usize, sweeps: usize) {
    let elems = (len * sweeps) as f64;
    ctx.compute(elems * VEC_INSTR_PER_ELEM);
    ctx.mem_stream(elems * VEC_MEM_PER_ELEM, (len * 8 * 3) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps::{run, World};
    use simcluster::system_g;

    fn world() -> World {
        World::new(system_g(), 2.8e9)
    }

    fn small() -> CgConfig {
        CgConfig {
            n: 1400,
            nonzer: 7,
            pattern: 28,
            niter: 4,
            shift: 10.0,
        }
    }

    #[test]
    fn cg_verifies_on_one_rank() {
        let w = world();
        let cfg = small();
        let r = run(&w, 1, |ctx| cg_kernel(ctx, cfg));
        let res = &r.ranks[0].result;
        assert!(res.verified, "{res:?}");
        assert!(res.zeta > cfg.shift, "zeta {}", res.zeta);
    }

    #[test]
    fn cg_zeta_independent_of_grid_shape() {
        let w = world();
        let cfg = small();
        let base = run(&w, 1, |ctx| cg_kernel(ctx, cfg)).ranks[0]
            .result
            .clone();
        for p in [2usize, 4, 8, 16] {
            let r = run(&w, p, |ctx| cg_kernel(ctx, cfg));
            for rk in &r.ranks {
                assert!(
                    (rk.result.zeta - base.zeta).abs() < 1e-8,
                    "p={p} rank={} zeta {} vs {}",
                    rk.rank,
                    rk.result.zeta,
                    base.zeta
                );
            }
        }
    }

    #[test]
    fn cg_residuals_are_small() {
        let w = world();
        let r = run(&w, 4, |ctx| cg_kernel(ctx, small()));
        for rn in &r.ranks[0].result.rnorms {
            assert!(*rn < 1e-6, "residual {rn}");
        }
    }

    #[test]
    fn cg_communication_grows_sublinearly_in_p() {
        // The 2-D layout: per-rank bytes ∝ n/√p; total bytes ∝ n·√p·log p —
        // strictly slower growth than the p·n of a 1-D allgather design.
        let w = world();
        let cfg = small();
        let b4 = run(&w, 4, |ctx| cg_kernel(ctx, cfg)).total_counters().bytes;
        let b16 = run(&w, 16, |ctx| cg_kernel(ctx, cfg))
            .total_counters()
            .bytes;
        let growth = b16 / b4;
        assert!(
            growth < 4.0,
            "16/4 byte growth {growth} should be sublinear (~2-3x for 2-D)"
        );
        assert!(growth > 1.2, "communication must still grow: {growth}");
    }

    #[test]
    fn cg_zeta_grows_with_shift() {
        let w = world();
        let lo = CgConfig {
            shift: 10.0,
            ..small()
        };
        let hi = CgConfig {
            shift: 20.0,
            ..small()
        };
        let zl = run(&w, 1, |ctx| cg_kernel(ctx, lo)).ranks[0].result.zeta;
        let zh = run(&w, 1, |ctx| cg_kernel(ctx, hi)).ranks[0].result.zeta;
        assert!(
            (zh - zl - 10.0).abs() < 1e-6,
            "shift moves zeta exactly: {zl} {zh}"
        );
    }

    #[test]
    fn cg_is_memory_heavy_at_scale() {
        // At class-B size the matrix spills the 6 MB L2, so CG has real
        // off-chip workload while EP has none — the root of their opposite
        // frequency behaviour in the paper (Figs. 7 vs 9).
        let w = world();
        let cfg = CgConfig {
            n: 75_000,
            nonzer: 13,
            pattern: 180,
            niter: 1,
            shift: 60.0,
        };
        let c = run(&w, 1, |ctx| cg_kernel(ctx, cfg)).total_counters();
        let ce = run(&w, 1, |ctx| {
            crate::ep::ep_kernel(ctx, crate::ep::EpConfig::class(Class::S))
        })
        .total_counters();
        assert!(c.wm > 1e6, "class-B CG must touch DRAM, wm = {}", c.wm);
        assert_eq!(ce.wm, 0.0, "EP stays cache-resident");
    }

    #[test]
    fn cg_memory_overhead_is_negative_under_strong_scaling() {
        // Strong scaling shrinks per-rank working sets below cache capacity,
        // so the *counted* off-chip workload falls — the paper's negative
        // Wom term for CG (and FT).
        let w = world();
        let cfg = CgConfig {
            n: 75_000,
            nonzer: 13,
            pattern: 180,
            niter: 1,
            shift: 60.0,
        };
        let seq = run(&w, 1, |ctx| cg_kernel(ctx, cfg)).total_counters();
        let par = run(&w, 16, |ctx| cg_kernel(ctx, cfg)).total_counters();
        assert!(
            par.wm < seq.wm,
            "Wom = {} - {} should be negative",
            par.wm,
            seq.wm
        );
    }
}
