//! IS — the NPB integer sort kernel.
//!
//! Bucket sort of uniformly distributed integer keys: each rank generates
//! its share of the global key sequence from the `randlc` stream, histograms
//! them into per-rank ranges, redistributes with an all-to-all-v, and
//! counting-sorts locally. Verification checks global sortedness across rank
//! boundaries (one neighbour exchange) plus key conservation.

use mps::Ctx;

use crate::common::{Class, Randlc};

/// Instructions per key for generation + histogramming.
const GEN_INSTR_PER_KEY: f64 = 18.0;
/// Instructions per key for the counting sort.
const SORT_INSTR_PER_KEY: f64 = 8.0;
/// Off-chip accesses per key per pass.
const MEM_PER_KEY: f64 = 2.0;

/// IS configuration.
#[derive(Debug, Clone, Copy)]
pub struct IsConfig {
    /// Total number of keys (the model's `n`).
    pub keys: u64,
    /// Keys are uniform in `[0, key_range)`.
    pub key_range: u64,
    /// Ranking repetitions (NPB performs 10 rankings; scaled default 4).
    pub reps: usize,
    /// `randlc` seed.
    pub seed: u64,
}

impl IsConfig {
    /// The scaled NPB class sizes.
    pub fn class(c: Class) -> Self {
        let (keys, key_range) = c.is_size();
        Self {
            keys,
            key_range,
            reps: 4,
            seed: crate::common::RANDLC_SEED,
        }
    }
}

/// IS output.
#[derive(Debug, Clone, PartialEq)]
pub struct IsResult {
    /// Keys held by this rank after redistribution.
    pub local_count: u64,
    /// Global key conservation + sortedness verification.
    pub verified: bool,
}

/// Run IS on the calling rank. All ranks must call with the same config.
pub fn is_kernel(ctx: &mut Ctx, cfg: IsConfig) -> IsResult {
    let p = ctx.size() as u64;
    let rank = ctx.rank() as u64;
    let base = cfg.keys / p;
    let extra = cfg.keys % p;
    let my_keys = base + u64::from(rank < extra);
    let my_start = rank * base + rank.min(extra);

    // Bucket b owns keys in [b·key_range/p, (b+1)·key_range/p).
    let bucket_of = |k: u64| -> usize {
        ((u128::from(k) * u128::from(p)) / u128::from(cfg.key_range)) as usize
    };

    let mut sorted_keys: Vec<u32> = Vec::new();
    let mut verified = true;

    for _rep in 0..cfg.reps.max(1) {
        ctx.phase("is:generate");
        let mut gen = Randlc::new(cfg.seed).at_offset(my_start);
        let mut buckets: Vec<Vec<u32>> = (0..p as usize).map(|_| Vec::new()).collect();
        for _ in 0..my_keys {
            let k = (gen.next_f64() * cfg.key_range as f64) as u64;
            let k = k.min(cfg.key_range - 1);
            buckets[bucket_of(k).min(p as usize - 1)].push(k as u32);
        }
        ctx.compute(my_keys as f64 * GEN_INSTR_PER_KEY);
        ctx.mem_stream(my_keys as f64 * MEM_PER_KEY, my_keys * 4);

        ctx.phase("is:exchange");
        let received = ctx.alltoall(buckets);

        ctx.phase("is:sort");
        let mine: Vec<u32> = received.into_iter().flatten().collect();
        // Counting sort over my bucket's key sub-range. The range must be
        // the exact preimage of `bucket_of`: bucket r owns keys with
        // `r·kr ≤ k·p < (r+1)·kr`, i.e. `k ∈ [ceil(r·kr/p), ceil((r+1)·kr/p))`.
        let lo = (u128::from(rank) * u128::from(cfg.key_range)).div_ceil(u128::from(p)) as u64;
        let hi = (u128::from(rank + 1) * u128::from(cfg.key_range)).div_ceil(u128::from(p)) as u64;
        let width = (hi - lo) as usize;
        let mut counts = vec![0u32; width.max(1)];
        for &k in &mine {
            let k = u64::from(k);
            assert!(k >= lo && k < hi, "misrouted key {k} not in [{lo},{hi})");
            counts[(k - lo) as usize] += 1;
        }
        sorted_keys = Vec::with_capacity(mine.len());
        for (off, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                sorted_keys.push((lo + off as u64) as u32);
            }
        }
        ctx.compute(mine.len() as f64 * SORT_INSTR_PER_KEY + width as f64);
        ctx.mem_stream(
            mine.len() as f64 * MEM_PER_KEY + width as f64,
            (mine.len() * 4 + width * 4) as u64,
        );

        ctx.phase("is:verify");
        // Local sortedness.
        let locally_sorted = sorted_keys.windows(2).all(|w| w[0] <= w[1]);
        // Boundary order with the next rank: my max <= their min.
        let my_max = f64::from(sorted_keys.last().copied().unwrap_or(0));
        let my_min = f64::from(sorted_keys.first().copied().unwrap_or(u32::MAX));
        let maxes = ctx.allgather(vec![my_max]);
        let mins = ctx.allgather(vec![my_min]);
        let boundaries_ok = (0..p as usize - 1).all(|i| {
            let max_i = maxes[i][0];
            let min_next = mins[i + 1][0];
            // Empty buckets encode max=0/min=MAX and never violate order.
            max_i <= min_next || max_i == 0.0
        });
        // Key conservation.
        let total = ctx.allreduce_scalar(sorted_keys.len() as f64);
        verified =
            verified && locally_sorted && boundaries_ok && (total - cfg.keys as f64).abs() < 0.5;
    }

    IsResult {
        local_count: sorted_keys.len() as u64,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps::{run, World};
    use simcluster::system_g;

    fn world() -> World {
        World::new(system_g(), 2.8e9)
    }

    #[test]
    fn is_verifies_across_rank_counts() {
        let cfg = IsConfig {
            keys: 1 << 14,
            key_range: 1 << 11,
            reps: 2,
            seed: crate::common::RANDLC_SEED,
        };
        for p in [1usize, 2, 4, 6, 8] {
            let w = world();
            let r = run(&w, p, |ctx| is_kernel(ctx, cfg));
            for rk in &r.ranks {
                assert!(rk.result.verified, "p={p} rank={}", rk.rank);
            }
            let total: u64 = r.ranks.iter().map(|rk| rk.result.local_count).sum();
            assert_eq!(total, cfg.keys, "p={p}");
        }
    }

    #[test]
    fn is_buckets_are_roughly_balanced() {
        let cfg = IsConfig::class(Class::S);
        let w = world();
        let p = 8;
        let r = run(&w, p, |ctx| is_kernel(ctx, cfg));
        let expect = cfg.keys as f64 / p as f64;
        for rk in &r.ranks {
            let ratio = rk.result.local_count as f64 / expect;
            assert!(
                (0.8..1.2).contains(&ratio),
                "rank {} holds {}x the fair share",
                rk.rank,
                ratio
            );
        }
    }

    #[test]
    fn is_moves_bulk_data() {
        let cfg = IsConfig::class(Class::S);
        let w = world();
        let r = run(&w, 4, |ctx| is_kernel(ctx, cfg));
        let c = r.total_counters();
        // Each repetition redistributes ~3/4 of all keys (uniform keys, 4 ranks).
        let expect = cfg.reps as f64 * cfg.keys as f64 * 4.0 * 0.5;
        assert!(
            c.bytes > expect,
            "IS moved {} bytes, expected > {expect}",
            c.bytes
        );
    }
}
