//! EP — the NPB "embarrassingly parallel" kernel.
//!
//! Generates pairs of Gaussian random deviates with the Marsaglia polar
//! method over NPB's `randlc` stream, tallies them into annuli, and reduces
//! the sums. The paper uses EP as the near-ideal iso-energy-efficiency
//! reference: essentially no parallel overhead, so `EE ≈ 1` for every
//! `(p, f)` (its Fig. 7).
//!
//! Each rank takes a disjoint block of the *global* random sequence via the
//! generator's `O(log k)` jump-ahead, exactly as NPB does, so results are
//! independent of `p` up to floating-point summation order.

use mps::Ctx;

use crate::common::{Class, Randlc};

/// Average on-chip instructions charged per generated pair: two `randlc`
/// draws, the rejection test, and (for the ~π/4 accepted fraction) a
/// log/sqrt pair. Matches the order of magnitude of the paper's measured
/// `Wc = 109.4·n` for EP.
pub const INSTR_PER_PAIR: f64 = 62.0;
/// Off-chip accesses per pair: the annulus table and accumulators live in
/// L1, so off-chip traffic is tiny.
pub const MEM_PER_PAIR: f64 = 0.25;
/// Batch size for charging (keeps host overhead negligible).
const BATCH: u64 = 1 << 14;

/// EP configuration.
#[derive(Debug, Clone, Copy)]
pub struct EpConfig {
    /// Number of uniform pairs to generate (the model's `n`).
    pub pairs: u64,
    /// `randlc` seed.
    pub seed: u64,
}

impl EpConfig {
    /// The scaled NPB class sizes.
    pub fn class(c: Class) -> Self {
        Self {
            pairs: c.ep_pairs(),
            seed: crate::common::RANDLC_SEED,
        }
    }
}

/// EP output (reduced across ranks; identical on every rank).
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Gaussian deviates accepted (Marsaglia acceptance ≈ π/4 of pairs).
    pub accepted: f64,
    /// Sum of the X deviates.
    pub sx: f64,
    /// Sum of the Y deviates.
    pub sy: f64,
    /// Annulus counts `l = floor(max(|X|, |Y|))`, `l < 10`.
    pub counts: [f64; 10],
    /// Statistical self-verification (means near zero, counts consistent).
    pub verified: bool,
}

/// Run EP on the calling rank. All ranks must call with the same config.
pub fn ep_kernel(ctx: &mut Ctx, cfg: EpConfig) -> EpResult {
    let p = ctx.size() as u64;
    let rank = ctx.rank() as u64;
    // Contiguous block of pairs for this rank (remainder to the low ranks).
    let base_share = cfg.pairs / p;
    let extra = cfg.pairs % p;
    let my_pairs = base_share + if rank < extra { 1 } else { 0 };
    let my_start = rank * base_share + rank.min(extra);

    ctx.phase("ep:generate");
    // Two uniforms per pair: jump to 2 × my_start draws into the stream.
    let mut gen = Randlc::new(cfg.seed).at_offset(2 * my_start);

    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    let mut counts = [0.0f64; 10];
    let mut accepted = 0.0f64;

    let mut remaining = my_pairs;
    while remaining > 0 {
        let batch = remaining.min(BATCH);
        for _ in 0..batch {
            let x = 2.0 * gen.next_f64() - 1.0;
            let y = 2.0 * gen.next_f64() - 1.0;
            let t = x * x + y * y;
            if t <= 1.0 && t > 0.0 {
                let t2 = (-2.0 * t.ln() / t).sqrt();
                let gx = x * t2;
                let gy = y * t2;
                sx += gx;
                sy += gy;
                let l = gx.abs().max(gy.abs()) as usize;
                if l < 10 {
                    counts[l] += 1.0;
                }
                accepted += 1.0;
            }
        }
        ctx.compute(batch as f64 * INSTR_PER_PAIR);
        ctx.mem_access(batch as f64 * MEM_PER_PAIR, 4096);
        remaining -= batch;
    }

    ctx.phase("ep:reduce");
    // One 12-element allreduce: [accepted, sx, sy, counts×10].
    let mut local = vec![accepted, sx, sy];
    local.extend_from_slice(&counts);
    let global = ctx.allreduce_sum(&local);

    let accepted = global[0];
    let sx = global[1];
    let sy = global[2];
    let mut counts = [0.0f64; 10];
    counts.copy_from_slice(&global[3..13]);

    let count_sum: f64 = counts.iter().sum();
    let mean_x = sx / accepted.max(1.0);
    let mean_y = sy / accepted.max(1.0);
    let acceptance = accepted / cfg.pairs as f64;
    let verified = accepted > 0.0
        && (count_sum - accepted).abs() < 0.5
        && mean_x.abs() < 0.02
        && mean_y.abs() < 0.02
        && (acceptance - std::f64::consts::FRAC_PI_4).abs() < 0.02
        && counts[0] > counts[1]
        && counts[1] > counts[2];

    EpResult {
        accepted,
        sx,
        sy,
        counts,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps::{run, World};
    use simcluster::system_g;

    fn world() -> World {
        World::new(system_g(), 2.8e9)
    }

    #[test]
    fn ep_verifies_on_one_rank() {
        let w = world();
        let cfg = EpConfig {
            pairs: 1 << 16,
            seed: crate::common::RANDLC_SEED,
        };
        let r = run(&w, 1, |ctx| ep_kernel(ctx, cfg));
        assert!(r.ranks[0].result.verified, "{:?}", r.ranks[0].result);
    }

    #[test]
    fn ep_result_independent_of_rank_count() {
        let cfg = EpConfig {
            pairs: 1 << 15,
            seed: crate::common::RANDLC_SEED,
        };
        let w = world();
        let r1 = run(&w, 1, |ctx| ep_kernel(ctx, cfg));
        let r4 = run(&w, 4, |ctx| ep_kernel(ctx, cfg));
        let r5 = run(&w, 5, |ctx| ep_kernel(ctx, cfg));
        let a = &r1.ranks[0].result;
        for r in [&r4, &r5] {
            for rk in &r.ranks {
                let b = &rk.result;
                assert_eq!(a.accepted, b.accepted);
                assert!((a.sx - b.sx).abs() < 1e-6, "{} vs {}", a.sx, b.sx);
                assert!((a.sy - b.sy).abs() < 1e-6);
                for (x, y) in a.counts.iter().zip(&b.counts) {
                    assert_eq!(x, y);
                }
            }
        }
    }

    #[test]
    fn ep_scales_near_ideally() {
        // The defining property of EP: span(p) ≈ span(1)/p.
        let cfg = EpConfig {
            pairs: 1 << 16,
            seed: crate::common::RANDLC_SEED,
        };
        let w = world();
        let t1 = run(&w, 1, |ctx| ep_kernel(ctx, cfg)).span();
        let t8 = run(&w, 8, |ctx| ep_kernel(ctx, cfg)).span();
        let speedup = t1 / t8;
        assert!(
            speedup > 7.5 && speedup <= 8.02,
            "EP speedup at p=8 should be near-ideal, got {speedup}"
        );
    }

    #[test]
    fn ep_counters_proportional_to_pairs() {
        let w = world();
        let small = EpConfig {
            pairs: 1 << 14,
            seed: crate::common::RANDLC_SEED,
        };
        let large = EpConfig {
            pairs: 1 << 16,
            seed: crate::common::RANDLC_SEED,
        };
        let cs = run(&w, 1, |ctx| ep_kernel(ctx, small)).total_counters();
        let cl = run(&w, 1, |ctx| ep_kernel(ctx, large)).total_counters();
        assert!((cl.wc / cs.wc - 4.0).abs() < 0.01);
        // EP's tiny tables live in cache, so its countable off-chip
        // workload is essentially zero — the paper's near-zero Wm for EP.
        assert_eq!(cs.wm, 0.0);
        assert_eq!(cl.wm, 0.0);
    }

    #[test]
    fn ep_communication_is_negligible() {
        let w = world();
        let cfg = EpConfig::class(Class::S);
        let r = run(&w, 8, |ctx| ep_kernel(ctx, cfg));
        let c = r.total_counters();
        // A handful of small allreduce messages, nothing more.
        assert!(c.bytes < 64.0 * 1024.0, "EP moved {} bytes", c.bytes);
    }
}
