//! MG — a simplified NPB multigrid kernel.
//!
//! V-cycles of a geometric multigrid Poisson solver (`∇²u = v`) on a cubic
//! power-of-two grid: 7-point Jacobi smoothing, full-weighting restriction
//! along each axis pair, trilinear-ish prolongation, with the grid
//! decomposed into z-slabs and *halo exchanges* with z-neighbours at every
//! stencil sweep — the nearest-neighbour communication pattern that
//! complements FT's all-to-all and CG's reduce/transpose in the suite.
//!
//! Coarse levels whose plane count drops below the rank count are gathered
//! to rank 0 and solved there (the standard agglomeration trick), which
//! adds the serialized-coarse-grid overhead real MG codes pay at scale.

use mps::Ctx;

use crate::common::Class;

/// Instructions per grid point per 7-point stencil application.
const STENCIL_INSTR_PER_PT: f64 = 14.0;
/// Off-chip accesses per point per sweep.
const MEM_PER_PT: f64 = 2.0;

/// MG configuration.
#[derive(Debug, Clone, Copy)]
pub struct MgConfig {
    /// Cubic grid edge (power of two).
    pub edge: usize,
    /// Number of V-cycles.
    pub ncycles: usize,
}

impl MgConfig {
    /// The scaled NPB class sizes.
    pub fn class(c: Class) -> Self {
        let (edge, ncycles) = c.mg_size();
        Self { edge, ncycles }
    }

    /// Total grid points (the model's `n`).
    pub fn n(&self) -> usize {
        self.edge * self.edge * self.edge
    }
}

/// MG output.
#[derive(Debug, Clone, PartialEq)]
pub struct MgResult {
    /// Residual norm after each V-cycle.
    pub residuals: Vec<f64>,
    /// Verification: residual decreased monotonically and substantially.
    pub verified: bool,
}

/// A z-slab of a cubic grid of edge `n`: planes `[z0, z0 + nz_local)`, each
/// plane `n × n`, plus one ghost plane on each side.
struct Slab {
    n: usize,
    z0: usize,
    nz: usize,
    /// `(nz + 2) · n · n` values; plane 0 and plane nz+1 are ghosts.
    data: Vec<f64>,
}

impl Slab {
    fn zeros(n: usize, z0: usize, nz: usize) -> Self {
        Self {
            n,
            z0,
            nz,
            data: vec![0.0; (nz + 2) * n * n],
        }
    }

    #[inline]
    fn idx(&self, zl: usize, y: usize, x: usize) -> usize {
        (zl * self.n + y) * self.n + x
    }

    #[inline]
    fn at(&self, zl: usize, y: usize, x: usize) -> f64 {
        self.data[self.idx(zl, y, x)]
    }
}

fn block_range(total: usize, parts: usize, idx: usize) -> (usize, usize) {
    let base = total / parts;
    let extra = total % parts;
    let len = base + usize::from(idx < extra);
    let start = idx * base + idx.min(extra);
    (start, len)
}

/// Exchange ghost planes with z-neighbours (periodic boundary).
fn halo_exchange(ctx: &mut Ctx, slab: &mut Slab, tag: u64) {
    let p = ctx.size();
    if p == 1 {
        // Periodic wrap within the single rank.
        let n2 = slab.n * slab.n;
        let nz = slab.nz;
        for i in 0..n2 {
            slab.data[i] = slab.data[nz * n2 + i]; // ghost low = top plane
            slab.data[(nz + 1) * n2 + i] = slab.data[n2 + i]; // ghost high = bottom
        }
        return;
    }
    let n2 = slab.n * slab.n;
    let nz = slab.nz;
    let up = (ctx.rank() + 1) % p;
    let down = (ctx.rank() + p - 1) % p;
    // Send my top plane up, receive my low ghost from down; then reverse.
    let top: Vec<f64> = slab.data[nz * n2..(nz + 1) * n2].to_vec();
    ctx.send(up, tag, top);
    let low_ghost = ctx.recv::<f64>(down, tag);
    slab.data[..n2].copy_from_slice(&low_ghost);
    let bottom: Vec<f64> = slab.data[n2..2 * n2].to_vec();
    ctx.send(down, tag + 1, bottom);
    let high_ghost = ctx.recv::<f64>(up, tag + 1);
    slab.data[(nz + 1) * n2..(nz + 2) * n2].copy_from_slice(&high_ghost);
    ctx.mem_stream(4.0 * n2 as f64, (4 * n2 * 8) as u64);
}

/// One weighted-Jacobi smoothing sweep of `∇²u = v` (h = 1, ω = 2/3).
fn smooth(ctx: &mut Ctx, u: &mut Slab, v: &Slab, tag: u64) {
    halo_exchange(ctx, u, tag);
    let n = u.n;
    let mut out = u.data.clone();
    for zl in 1..=u.nz {
        for y in 0..n {
            let ym = (y + n - 1) % n;
            let yp = (y + 1) % n;
            for x in 0..n {
                let xm = (x + n - 1) % n;
                let xp = (x + 1) % n;
                let neigh = u.at(zl, y, xm)
                    + u.at(zl, y, xp)
                    + u.at(zl, ym, x)
                    + u.at(zl, yp, x)
                    + u.at(zl - 1, y, x)
                    + u.at(zl + 1, y, x);
                let jac = (neigh - v.at(zl, y, x)) / 6.0;
                out[u.idx(zl, y, x)] = u.at(zl, y, x) + (2.0 / 3.0) * (jac - u.at(zl, y, x));
            }
        }
    }
    u.data = out;
    let pts = (u.nz * n * n) as f64;
    ctx.compute(pts * STENCIL_INSTR_PER_PT);
    ctx.mem_stream(pts * MEM_PER_PT, (u.data.len() * 8) as u64);
}

/// Residual `r = v − ∇²u` into a fresh slab.
fn residual(ctx: &mut Ctx, u: &mut Slab, v: &Slab, tag: u64) -> Slab {
    halo_exchange(ctx, u, tag);
    let n = u.n;
    let mut r = Slab::zeros(n, u.z0, u.nz);
    for zl in 1..=u.nz {
        for y in 0..n {
            let ym = (y + n - 1) % n;
            let yp = (y + 1) % n;
            for x in 0..n {
                let xm = (x + n - 1) % n;
                let xp = (x + 1) % n;
                let lap = u.at(zl, y, xm)
                    + u.at(zl, y, xp)
                    + u.at(zl, ym, x)
                    + u.at(zl, yp, x)
                    + u.at(zl - 1, y, x)
                    + u.at(zl + 1, y, x)
                    - 6.0 * u.at(zl, y, x);
                let i = r.idx(zl, y, x);
                r.data[i] = v.at(zl, y, x) - lap;
            }
        }
    }
    let pts = (u.nz * n * n) as f64;
    ctx.compute(pts * STENCIL_INSTR_PER_PT);
    ctx.mem_stream(pts * MEM_PER_PT, (u.data.len() * 8) as u64);
    r
}

/// Injection restriction to the half-resolution grid (local in x/y; z
/// coarsening assumes even plane counts per rank, which the slab layout
/// guarantees while planes ≥ 2·p).
fn restrict(ctx: &mut Ctx, fine: &Slab) -> Slab {
    let n = fine.n / 2;
    debug_assert!(fine.nz.is_multiple_of(2));
    let mut coarse = Slab::zeros(n, fine.z0 / 2, fine.nz / 2);
    for zl in 1..=coarse.nz {
        let fz = 2 * zl - 1;
        for y in 0..n {
            for x in 0..n {
                // Average the 8 children.
                let mut acc = 0.0;
                for dz in 0..2 {
                    for dy in 0..2 {
                        for dx in 0..2 {
                            acc += fine.at(fz + dz, 2 * y + dy, 2 * x + dx);
                        }
                    }
                }
                let i = coarse.idx(zl, y, x);
                coarse.data[i] = acc / 8.0;
            }
        }
    }
    let pts = (coarse.nz * n * n) as f64;
    ctx.compute(pts * 10.0);
    ctx.mem_stream(pts * 9.0, (fine.data.len() * 8) as u64);
    coarse
}

/// Prolongate a coarse correction onto the fine grid (piecewise constant).
fn prolongate_add(ctx: &mut Ctx, fine: &mut Slab, coarse: &Slab) {
    let n = coarse.n;
    for zl in 1..=coarse.nz {
        for y in 0..n {
            for x in 0..n {
                let c = coarse.at(zl, y, x);
                let fz = 2 * zl - 1;
                for dz in 0..2 {
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let i = fine.idx(fz + dz, 2 * y + dy, 2 * x + dx);
                            fine.data[i] += c;
                        }
                    }
                }
            }
        }
    }
    let pts = (coarse.nz * n * n) as f64 * 8.0;
    ctx.compute(pts * 2.0);
    ctx.mem_stream(pts, (fine.data.len() * 8) as u64);
}

/// Recursive V-cycle. `tag` namespaces this level's halo messages.
fn vcycle(ctx: &mut Ctx, u: &mut Slab, v: &Slab, tag: u64) {
    let edge = u.n;
    let p = ctx.size();
    // Coarsest level (or too coarse to split further): smooth hard.
    if edge <= 4 || u.nz < 2 || (edge / 2) * (edge / 2) == 0 {
        for i in 0..8 {
            smooth(ctx, u, v, tag + 2 * i);
        }
        return;
    }
    // Can we coarsen in z across this decomposition? Every rank needs an
    // even, positive plane count. The predicate must be *identical on every
    // rank* (a divergent choice would deadlock the halo exchanges), so it is
    // computed from globally known quantities only: all slabs are even and
    // equal iff `edge % (2p) == 0`.
    let splittable = edge.is_multiple_of(2 * p) && edge * edge * edge / 8 >= p;
    // Pre-smooth.
    smooth(ctx, u, v, tag);
    smooth(ctx, u, v, tag + 2);
    if splittable {
        let mut r = residual(ctx, u, v, tag + 4);
        let rc = restrict(ctx, &r);
        let mut ec = Slab::zeros(rc.n, rc.z0, rc.nz);
        vcycle(ctx, &mut ec, &rc, tag + 16);
        prolongate_add(ctx, u, &ec);
        drop(r.data.drain(..));
    }
    // Post-smooth.
    smooth(ctx, u, v, tag + 6);
    smooth(ctx, u, v, tag + 8);
}

/// Global L2 norm of the residual.
fn residual_norm(ctx: &mut Ctx, u: &mut Slab, v: &Slab, tag: u64) -> f64 {
    let r = residual(ctx, u, v, tag);
    let n2 = r.n * r.n;
    let local: f64 = r.data[n2..(r.nz + 1) * n2].iter().map(|x| x * x).sum();
    ctx.compute((r.nz * n2) as f64 * 2.0);
    ctx.allreduce_scalar(local).sqrt()
}

/// Run MG on the calling rank. All ranks must call with the same config;
/// requires `edge` a power of two and `p ≤ edge` (each rank needs ≥ 1 plane).
pub fn mg_kernel(ctx: &mut Ctx, cfg: MgConfig) -> MgResult {
    let p = ctx.size();
    let n = cfg.edge;
    assert!(n.is_power_of_two(), "MG edge must be a power of two");
    assert!(p <= n, "MG needs at least one z-plane per rank ({p} > {n})");
    let (z0, nz) = block_range(n, p, ctx.rank());
    assert!(nz >= 1, "empty slab");

    ctx.phase("mg:init");
    // Zero initial guess; deterministic source v with ± unit charges
    // (mean-free so the periodic Poisson problem is solvable).
    let mut u = Slab::zeros(n, z0, nz);
    let mut v = Slab::zeros(n, z0, nz);
    let charges: [(usize, usize, usize, f64); 4] = [
        (n / 4, n / 4, n / 4, 1.0),
        (3 * n / 4, n / 2, n / 4, -1.0),
        (n / 2, 3 * n / 4, n / 2, 1.0),
        (n / 4, n / 2, 3 * n / 4, -1.0),
    ];
    for &(cz, cy, cx, q) in &charges {
        if cz >= z0 && cz < z0 + nz {
            let i = v.idx(cz - z0 + 1, cy, cx);
            v.data[i] = q;
        }
    }
    ctx.mem_stream((nz * n * n) as f64, (u.data.len() * 8) as u64);

    let r0 = residual_norm(ctx, &mut u, &v, 1000);
    let mut residuals = Vec::with_capacity(cfg.ncycles);
    for cyc in 0..cfg.ncycles {
        ctx.phase("mg:vcycle");
        vcycle(ctx, &mut u, &v, 2000 + 1000 * cyc as u64);
        residuals.push(residual_norm(ctx, &mut u, &v, 9000 + cyc as u64 * 10));
    }

    let monotone = residuals.windows(2).all(|w| w[1] <= w[0] * 1.0001);
    let reduced = residuals
        .last()
        .is_some_and(|r| *r < r0 * 0.1 && r.is_finite());
    MgResult {
        residuals,
        verified: monotone && reduced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps::{run, World};
    use simcluster::system_g;

    fn world() -> World {
        World::new(system_g(), 2.8e9)
    }

    #[test]
    fn mg_converges_on_one_rank() {
        let w = world();
        let cfg = MgConfig {
            edge: 16,
            ncycles: 4,
        };
        let r = run(&w, 1, |ctx| mg_kernel(ctx, cfg));
        let res = &r.ranks[0].result;
        assert!(res.verified, "{res:?}");
    }

    #[test]
    fn mg_residuals_match_across_rank_counts() {
        let cfg = MgConfig {
            edge: 16,
            ncycles: 3,
        };
        let w = world();
        let r1 = run(&w, 1, |ctx| mg_kernel(ctx, cfg));
        let a = &r1.ranks[0].result.residuals;
        for p in [2usize, 4] {
            let rp = run(&w, p, |ctx| mg_kernel(ctx, cfg));
            let b = &rp.ranks[0].result.residuals;
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() <= 1e-9 * x.max(1e-12), "p={p}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn mg_uses_neighbour_communication_only() {
        let w = world();
        let cfg = MgConfig {
            edge: 16,
            ncycles: 2,
        };
        let p = 4;
        let r = run(&w, p, |ctx| mg_kernel(ctx, cfg));
        // Halo traffic: every sweep exchanges 2 planes with neighbours; far
        // less total than an FT-style full-grid all-to-all per sweep would be.
        let c = r.total_counters();
        assert!(c.messages > 0.0);
        let per_rank_msgs = c.messages / p as f64;
        assert!(
            per_rank_msgs < 1000.0,
            "suspiciously chatty: {per_rank_msgs}"
        );
    }
}
