//! Plan-level descriptions of the NPB kernel skeletons.
//!
//! Each function here builds a [`CommPlan`] whose communication shape —
//! collective calls, point-to-point exchanges, tags, payload sizes — is an
//! exact mirror of the corresponding handwritten kernel
//! ([`crate::ft_kernel`], [`crate::ep_kernel`], [`crate::cg_kernel`]) at
//! *every* world size, with rank- and `p`-dependence expressed through
//! symbolic [`Expr`]s. That lets the `plan` crate's static analyses
//! certify the kernels' communication structure (matching, deadlock
//! freedom, cost bounds) at `p = 1024+` without running anything, while
//! golden tests lower the same plans onto [`mps`] and compare per-rank
//! counters against the real kernels.
//!
//! Compute/memory charges mirror the kernels' instrumentation: exact for
//! FT and EP (whose charges are closed-form in the config), an estimate
//! for CG's data-dependent sparse-matrix terms (its *communication* is
//! still exact — message counts, sizes and tags don't depend on the
//! matrix values).

use plan::{Cond, Expr, Op, ReduceOp, TagExpr};

pub use plan::{CommPlan, Domain};

use crate::cg::CgConfig;
use crate::ep::EpConfig;
use crate::fft::FftPlan;
use crate::ft::FtConfig;

fn c(v: usize) -> Expr {
    Expr::Const(i64::try_from(v).expect("config value fits i64"))
}

// ---------------------------------------------------------------------
// FT
// ---------------------------------------------------------------------

/// The FT kernel's plan: forward 3-D FFT, then per iteration evolve /
/// inverse FFT / checksum, with the two distributed transposes as
/// `alltoallv`-shaped [`Op::AllToAll`]s. Valid at every `p ≥ 1`.
#[must_use]
pub fn ft_plan(cfg: &FtConfig) -> CommPlan {
    let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
    let flops_x = FftPlan::new(nx).flops();
    let flops_y = FftPlan::new(ny).flops();
    let flops_z = FftPlan::new(nz).flops();

    // Per-rank slab extents.
    let my_nz = || Expr::block_len(c(nz), Expr::P, Expr::Rank);
    let my_nx = || Expr::block_len(c(nx), Expr::P, Expr::Rank);
    // Forward-layout points nx·ny·my_nz and transposed points my_nx·ny·nz.
    let fxy = || c(nx * ny) * my_nz();
    let txz = || my_nx() * c(ny * nz);
    // Working sets: the kernel clamps empty slabs to one plane's bytes.
    let slab = || my_nz().max_of(c(1)) * c(nx * ny * 16);
    let fwd_ws = || fxy().max_of(c(1)) * c(16);
    let txz_ws = || txz().max_of(c(1)) * c(16);

    let fft_xy = |body: &mut Vec<Op>| {
        body.push(Op::Compute {
            units: c(ny) * my_nz(),
            scale: flops_x,
        });
        body.push(Op::MemStream {
            elems: fxy(),
            scale: 2.0,
            ws: slab(),
        });
        body.push(Op::Compute {
            units: c(nx) * my_nz(),
            scale: flops_y,
        });
        body.push(Op::MemStream {
            elems: fxy(),
            scale: 4.0,
            ws: slab(),
        });
    };
    let fft_z = |body: &mut Vec<Op>| {
        body.push(Op::Compute {
            units: my_nx() * c(ny),
            scale: flops_z,
        });
        body.push(Op::MemStream {
            elems: txz(),
            scale: 2.0,
            ws: slab(),
        });
    };
    let spectral_energy = |body: &mut Vec<Op>| {
        body.push(Op::Compute {
            units: txz(),
            scale: 3.0,
        });
        body.push(Op::AllReduce {
            elems: c(1),
            op: ReduceOp::Sum,
        });
    };

    let mut body = vec![
        Op::Phase("ft:init".into()),
        Op::Compute {
            units: fxy(),
            scale: 12.0,
        },
        Op::MemStream {
            elems: fxy(),
            scale: 1.0,
            ws: slab(),
        },
        Op::Phase("ft:forward".into()),
    ];
    fft_xy(&mut body);
    // Forward transpose: pack, alltoall, unpack. The chunk for
    // destination d holds my z-planes restricted to d's x-range.
    body.push(Op::MemStream {
        elems: fxy(),
        scale: 2.0,
        ws: fwd_ws(),
    });
    body.push(Op::Phase("ft:alltoall".into()));
    body.push(Op::AllToAll {
        bytes: my_nz() * c(ny) * Expr::block_len(c(nx), Expr::P, Expr::Peer) * c(16),
    });
    body.push(Op::MemStream {
        elems: txz(),
        scale: 2.0,
        ws: txz_ws(),
    });
    fft_z(&mut body);
    spectral_energy(&mut body);

    let mut iter = vec![
        Op::Phase("ft:evolve".into()),
        Op::Compute {
            units: txz(),
            scale: 22.0,
        },
        Op::MemStream {
            elems: txz(),
            scale: 2.0,
            ws: slab(),
        },
    ];
    spectral_energy(&mut iter);
    iter.push(Op::Phase("ft:inverse".into()));
    fft_z(&mut iter);
    // Inverse transpose: chunk for destination d holds my x-columns
    // restricted to d's z-range.
    iter.push(Op::MemStream {
        elems: txz(),
        scale: 2.0,
        ws: txz_ws(),
    });
    iter.push(Op::Phase("ft:alltoall".into()));
    iter.push(Op::AllToAll {
        bytes: Expr::block_len(c(nz), Expr::P, Expr::Peer) * c(ny) * my_nx() * c(16),
    });
    iter.push(Op::MemStream {
        elems: fxy(),
        scale: 2.0,
        ws: fwd_ws(),
    });
    fft_xy(&mut iter);
    // Normalization of the inverse transform.
    iter.push(Op::Compute {
        units: fxy(),
        scale: 2.0,
    });
    iter.push(Op::MemStream {
        elems: fxy(),
        scale: 2.0,
        ws: slab(),
    });
    // Checksum: 1024 strided samples, then a 2-element allreduce.
    iter.push(Op::Phase("ft:checksum".into()));
    iter.push(Op::Compute {
        units: c(1024),
        scale: 6.0,
    });
    iter.push(Op::AllReduce {
        elems: c(2),
        op: ReduceOp::Sum,
    });

    body.push(Op::Loop {
        count: c(cfg.niter),
        body: iter,
    });
    CommPlan::new("npb:ft", body)
}

// ---------------------------------------------------------------------
// EP
// ---------------------------------------------------------------------

/// The EP kernel's plan: embarrassingly parallel generation plus one
/// 13-element allreduce (`[accepted, sx, sy, counts×10]`). Valid at every
/// `p ≥ 1`; compute/memory totals are exact (the kernel's batching is
/// f64-exact in the pair count).
#[must_use]
pub fn ep_plan(cfg: &EpConfig) -> CommPlan {
    let pairs = usize::try_from(cfg.pairs).expect("pair count fits usize");
    let my_pairs = || Expr::block_len(c(pairs), Expr::P, Expr::Rank);
    CommPlan::new(
        "npb:ep",
        vec![
            Op::Phase("ep:generate".into()),
            Op::Compute {
                units: my_pairs(),
                scale: crate::ep::INSTR_PER_PAIR,
            },
            Op::MemAccess {
                accesses: my_pairs(),
                scale: crate::ep::MEM_PER_PAIR,
                ws: c(4096),
            },
            Op::Phase("ep:reduce".into()),
            Op::AllReduce {
                elems: c(13),
                op: ReduceOp::Sum,
            },
        ],
    )
}

// ---------------------------------------------------------------------
// CG
// ---------------------------------------------------------------------

/// CG's point-to-point tag namespace (`0x4347` = "CG").
const CG_TAG_BASE: u64 = 0x4347_0000;
/// CG's tag counter wrap-around.
const CG_TAG_MOD: u64 = 0xFFFF;

/// The CG kernel's plan: per outer step, 25 CG iterations of SpMV
/// (transpose exchange + processor-row allreduce) and dot products over
/// the 2-D `nprow × npcol` grid. **Requires a power-of-two `p`** (like
/// the kernel itself). Communication is exact; the SpMV compute/memory
/// charges use the expected block non-zero count (`row_len·2·pattern /
/// npcol`) since the true count is data-dependent.
#[must_use]
pub fn cg_plan(cfg: &CgConfig) -> CommPlan {
    let n_pad = cfg.n_pad();
    let pattern = cfg.pattern;

    // Process grid: nprow = 2^(lg/2), npcol = p / nprow (so npcol is
    // nprow or 2·nprow). Mirrors `cg_proc_grid`.
    let nprow = || (Expr::P.log2() / c(2)).pow2();
    let npcol = || Expr::P / nprow();
    let row = || Expr::Rank / npcol();
    let col = || Expr::Rank % npcol();
    let row_len = || c(n_pad) / nprow();
    let col_len = || c(n_pad) / npcol();
    // Expected non-zeros in this rank's block: A = B + Bᵀ + D has about
    // 2·pattern entries per row, split over npcol column blocks.
    let nnz_est = || row_len() * c(2 * pattern) / npcol();

    let last_tag = || TagExpr::Last {
        base: CG_TAG_BASE,
        modulo: CG_TAG_MOD,
    };
    let auto_tag = || TagExpr::Auto {
        base: CG_TAG_BASE,
        modulo: CG_TAG_MOD,
    };

    // Transpose: the tag is consumed before the partner test (the kernel
    // calls `next_tag()` unconditionally), hence BumpTag + Last.
    let transpose = |body: &mut Vec<Op>| {
        body.push(Op::BumpTag);
        let square_partner = || col() * npcol() + row();
        let rect_partner = || (col() / c(2)) * npcol() + c(2) * row() + col() % c(2);
        body.push(Op::IfElse {
            cond: Cond::Eq(nprow(), npcol()),
            then: vec![Op::IfElse {
                cond: Cond::Ne(square_partner(), Expr::Rank),
                then: vec![Op::Exchange {
                    partner: square_partner(),
                    tag: last_tag(),
                    bytes: row_len() * c(8),
                }],
                els: vec![],
            }],
            els: vec![Op::IfElse {
                cond: Cond::Ne(rect_partner(), Expr::Rank),
                then: vec![Op::Exchange {
                    partner: rect_partner(),
                    tag: last_tag(),
                    bytes: col_len() * c(8),
                }],
                els: vec![],
            }],
        });
    };

    // Processor-row allreduce: log2(npcol) exchange rounds, dist = 2^i.
    let row_allreduce = |body: &mut Vec<Op>| {
        body.push(Op::Loop {
            count: npcol().log2(),
            body: vec![
                Op::Exchange {
                    partner: row() * npcol() + col().xor(Expr::Var(0).pow2()),
                    tag: auto_tag(),
                    bytes: row_len() * c(8),
                },
                Op::Compute {
                    units: row_len(),
                    scale: 1.0,
                },
                Op::MemStream {
                    elems: row_len(),
                    scale: 1.0,
                    ws: row_len() * c(8),
                },
            ],
        });
    };

    let spmv = |body: &mut Vec<Op>| {
        transpose(body);
        body.push(Op::Compute {
            units: nnz_est() * c(4) + row_len(),
            scale: 1.0,
        });
        body.push(Op::MemStream {
            elems: nnz_est(),
            scale: 2.5,
            ws: nnz_est() * c(12) + col_len() * c(8),
        });
        body.push(Op::MemStream {
            elems: row_len(),
            scale: 1.0,
            ws: nnz_est() * c(12) + col_len() * c(8),
        });
        row_allreduce(body);
    };

    let dot = |body: &mut Vec<Op>| {
        let slice = || row_len() / npcol();
        body.push(Op::Compute {
            units: slice(),
            scale: 2.0,
        });
        body.push(Op::MemStream {
            elems: slice(),
            scale: 2.0,
            ws: row_len() * c(16),
        });
        body.push(Op::AllReduce {
            elems: c(1),
            op: ReduceOp::Sum,
        });
    };

    let charge_vec = |body: &mut Vec<Op>, sweeps: usize| {
        body.push(Op::Compute {
            units: row_len() * c(sweeps),
            scale: 2.0,
        });
        body.push(Op::MemStream {
            elems: row_len() * c(sweeps),
            scale: 1.5,
            ws: row_len() * c(24),
        });
    };

    // Matrix assembly (outside NPB's timed region, charged nominally).
    let mut body = vec![
        Op::Phase("cg:makea".into()),
        Op::Compute {
            units: (row_len() + col_len()) * c(pattern),
            scale: 12.0,
        },
        Op::MemStream {
            elems: (row_len() + col_len()) * c(pattern),
            scale: 0.5,
            ws: nnz_est() * c(16),
        },
    ];

    // One outer step: conjgrad (25 inner iterations + residual), then the
    // two outer dots and the renormalization sweep.
    let mut outer = vec![Op::Phase("cg:conjgrad".into())];
    dot(&mut outer); // rho = r·r
    let mut inner = Vec::new();
    spmv(&mut inner);
    dot(&mut inner); // d = p·q
    charge_vec(&mut inner, 2); // z, r updates
    dot(&mut inner); // rho = r·r
    charge_vec(&mut inner, 1); // p update
    outer.push(Op::Loop {
        count: c(crate::cg::CGITMAX),
        body: inner,
    });
    spmv(&mut outer); // residual A·z
    charge_vec(&mut outer, 1); // x − A·z
    dot(&mut outer); // ‖x − A·z‖²
    outer.push(Op::Phase("cg:outer".into()));
    dot(&mut outer); // x·z
    dot(&mut outer); // z·z
    charge_vec(&mut outer, 1); // x = z/‖z‖

    body.push(Op::Loop {
        count: c(cfg.niter),
        body: outer,
    });
    CommPlan::new("npb:cg", body)
}

// ---------------------------------------------------------------------
// Declared world-size domains
// ---------------------------------------------------------------------

/// The world sizes [`ft_plan`] is declared for: every `p ≥ 1` (the slab
/// decomposition degenerates gracefully — `BlockLen` hands empty slabs to
/// surplus ranks).
#[must_use]
pub fn ft_domain() -> Domain {
    Domain::at_least(1)
}

/// The world sizes [`ep_plan`] is declared for: every `p ≥ 1`.
#[must_use]
pub fn ep_domain() -> Domain {
    Domain::at_least(1)
}

/// The world sizes [`cg_plan`] is declared for: powers of two only (the
/// kernel's 2-D process grid requires it).
#[must_use]
pub fn cg_domain() -> Domain {
    Domain::pow2()
}
