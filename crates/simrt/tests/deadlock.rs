//! Deadlock-detector re-validation on the event engine.
//!
//! Under the engine "starvation" has a crisp definition — the event queue
//! is empty while tasks are still live — so the detector must fire on
//! exactly the terminal wait-for graphs and never on legal skew. The
//! first test replays the thread runtime's historical false-positive
//! scenario (a send/recv chain that merely *looks* stuck to a sampling
//! detector) and requires it to complete.

use mps::{RunError, World};
use plan::{CommPlan, Cond, Expr, Op, TagExpr};

fn world() -> World {
    World::new(simcluster::system_g(), 2.8e9)
}

#[allow(clippy::cast_possible_wrap)]
fn send(to: usize, tag: u64, bytes: i64) -> Op {
    Op::Send {
        to: Expr::Const(to as i64),
        tag: TagExpr::Expr(Expr::Const(tag as i64)),
        bytes: Expr::Const(bytes),
    }
}

#[allow(clippy::cast_possible_wrap)]
fn recv(from: usize, tag: u64) -> Op {
    Op::Recv {
        from: Expr::Const(from as i64),
        tag: TagExpr::Expr(Expr::Const(tag as i64)),
    }
}

/// Nested rank dispatch: `if rank == c0 { body0 } else if rank == c1 ...`
#[allow(clippy::cast_possible_wrap)]
fn rank_branch(cases: Vec<(usize, Vec<Op>)>) -> Vec<Op> {
    let mut out: Vec<Op> = Vec::new();
    for (rank, body) in cases.into_iter().rev() {
        out = vec![Op::IfElse {
            cond: Cond::Eq(Expr::Rank, Expr::Const(rank as i64)),
            then: body,
            els: out,
        }];
    }
    out
}

/// The PR 3 false-positive scenario: rank 1 sends then receives, rank 0
/// receives then sends. A chain, not a cycle — it must complete, with the
/// engine's "empty event queue" starvation test never tripping.
#[test]
fn send_recv_chain_is_not_a_deadlock() {
    let plan = CommPlan::new(
        "chain",
        rank_branch(vec![
            (0, vec![recv(1, 7), send(1, 8, 64)]),
            (1, vec![send(0, 7, 64), recv(0, 8)]),
        ]),
    );
    let out = simrt::try_run_plan(&world(), 2, &plan).expect("legal skew must complete");
    let totals = out.report.total_counters();
    assert_eq!(totals.messages, 2.0);
    assert_eq!(totals.bytes, 128.0);
}

/// A mutual receive is a true cycle: both ranks park, the queue drains,
/// and the detector must report cyclic wait-for edges.
#[test]
fn mutual_recv_is_a_cyclic_deadlock() {
    let plan = CommPlan::new(
        "cycle",
        rank_branch(vec![
            (0, vec![recv(1, 1), send(1, 2, 8)]),
            (1, vec![recv(0, 2), send(0, 1, 8)]),
        ]),
    );
    let err = simrt::try_run_plan(&world(), 2, &plan).expect_err("must deadlock");
    let RunError::Deadlock(info) = err else {
        panic!("expected Deadlock, got {err}");
    };
    assert!(info.cyclic, "mutual recv is a cycle");
    assert_eq!(info.edges.len(), 2);
    let mut edges: Vec<(usize, Option<usize>, u64)> = info
        .edges
        .iter()
        .map(|e| (e.from_rank, e.on_rank, e.tag))
        .collect();
    edges.sort_unstable();
    assert_eq!(edges, vec![(0, Some(1), 1), (1, Some(0), 2)]);
    assert_eq!(info.comm.len(), 2, "partial traces for every rank");
}

/// Waiting on a rank whose plan already finished is stuck but acyclic —
/// the message will simply never come.
#[test]
fn recv_from_finished_rank_is_acyclic() {
    let plan = CommPlan::new(
        "stuck-on-done",
        rank_branch(vec![
            (0, vec![recv(1, 9)]),
            (1, vec![]), // rank 1 finishes immediately
        ]),
    );
    let err = simrt::try_run_plan(&world(), 2, &plan).expect_err("must deadlock");
    let RunError::Deadlock(info) = err else {
        panic!("expected Deadlock, got {err}");
    };
    assert!(!info.cyclic, "no cycle: the awaited rank is done");
    assert_eq!(info.edges.len(), 1);
    assert_eq!(info.edges[0].from_rank, 0);
    assert_eq!(info.edges[0].on_rank, Some(1));
}

/// A tag mismatch parks the receiver forever; the undelivered envelope
/// must surface in the partial trace's `unconsumed` list so the analyzer
/// can point at it.
#[test]
fn tag_mismatch_reports_unconsumed_envelope() {
    let plan = CommPlan::new(
        "tag-mismatch",
        rank_branch(vec![
            (0, vec![recv(1, 42)]),
            (1, vec![send(0, 41, 16)]), // wrong tag
        ]),
    );
    let err = simrt::try_run_plan(&world(), 2, &plan).expect_err("must deadlock");
    let RunError::Deadlock(info) = err else {
        panic!("expected Deadlock, got {err}");
    };
    assert!(!info.cyclic);
    assert_eq!(info.comm[0].unconsumed, vec![(1, 41, 16)]);
}

/// A wildcard receive with no sender left parks as an `Any` edge
/// (`on_rank: None`), which can never be cyclic.
#[test]
fn starved_wildcard_recv_reports_any_edge() {
    let plan = CommPlan::new(
        "starved-any",
        rank_branch(vec![
            (
                0,
                vec![Op::RecvAny {
                    tag: TagExpr::Expr(Expr::Const(5)),
                }],
            ),
            (1, vec![]),
        ]),
    );
    let err = simrt::try_run_plan(&world(), 2, &plan).expect_err("must deadlock");
    let RunError::Deadlock(info) = err else {
        panic!("expected Deadlock, got {err}");
    };
    assert!(!info.cyclic);
    assert_eq!(info.edges.len(), 1);
    assert_eq!(info.edges[0].on_rank, None);
    assert_eq!(info.edges[0].tag, 5);
}
