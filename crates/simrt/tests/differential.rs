//! Differential suite: the event engine must be *bit-identical* to the
//! mps thread runtime on the NPB plans.
//!
//! Both runtimes execute the same [`plan::CommPlan`]s — the thread runtime
//! through [`plan::lower`] (real channels, OS threads), the engine through
//! [`plan::TimedCursor`] (state-machine tasks, virtual-time event queue) —
//! over the same [`mps::RankCore`] accounting. For every kernel and every
//! small `p` we require exact equality of per-collective counters,
//! run-wide totals, per-rank finish times, spans, and metered energy. At
//! `p` beyond the thread runtime's reach the engine is pinned against the
//! static analyzer's whole-plan message/byte counts instead.

use std::sync::{Mutex, OnceLock};

use mps::World;
use npb::{cg_plan, ep_plan, ft_plan, CgConfig, Class, EpConfig, FtConfig};
use obs::ObsConfig;
use plan::{analyze_plan, lower, CollKind, CommPlan, COLL_KINDS};
use simrt::{Detail, EngineConfig};

/// The metrics registry is process-global; serialize observed runs so
/// counter deltas are attributable to one run at a time.
fn registry_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn world() -> World {
    World::new(simcluster::system_g(), 2.8e9).with_obs(ObsConfig::disabled().with_metrics(true))
}

/// `(calls, messages, bytes)` snapshot of every collective's counters.
fn snapshot() -> [[u64; 3]; COLL_KINDS] {
    let reg = obs::global();
    let mut out = [[0u64; 3]; COLL_KINDS];
    for (k, slot) in out.iter_mut().enumerate() {
        let name = CollKind::ALL[k].scope_name();
        *slot = [
            reg.counter(&format!("mps.collective.{name}.calls")).get(),
            reg.counter(&format!("mps.collective.{name}.messages"))
                .get(),
            reg.counter(&format!("mps.collective.{name}.bytes")).get(),
        ];
    }
    out
}

fn delta(
    before: &[[u64; 3]; COLL_KINDS],
    after: &[[u64; 3]; COLL_KINDS],
) -> [[u64; 3]; COLL_KINDS] {
    let mut out = [[0u64; 3]; COLL_KINDS];
    for k in 0..COLL_KINDS {
        for f in 0..3 {
            out[k][f] = after[k][f] - before[k][f];
        }
    }
    out
}

struct Observed {
    report: mps::RunReport<()>,
    colls: [[u64; 3]; COLL_KINDS],
}

fn observe_thread(w: &World, p: usize, plan: &CommPlan) -> Observed {
    let before = snapshot();
    let report = mps::run(w, p, |ctx| lower(plan, ctx));
    let colls = delta(&before, &snapshot());
    Observed { report, colls }
}

fn observe_engine(w: &World, p: usize, plan: &CommPlan, cfg: &EngineConfig) -> Observed {
    let before = snapshot();
    let out = simrt::try_run_plan_with(cfg, w, p, plan).expect("engine run completes");
    let colls = delta(&before, &snapshot());
    Observed {
        report: out.report,
        colls,
    }
}

/// Everything that must match bit-for-bit between the two runtimes.
fn assert_identical(name: &str, thread: &Observed, engine: &Observed, w: &World) {
    assert_eq!(thread.colls, engine.colls, "{name}: collective counters");
    let tt = thread.report.total_counters();
    let et = engine.report.total_counters();
    assert_eq!(tt, et, "{name}: total counters");
    assert_eq!(
        thread.report.span(),
        engine.report.span(),
        "{name}: span bits"
    );
    for (a, b) in thread.report.ranks.iter().zip(&engine.report.ranks) {
        assert_eq!(a.rank, b.rank, "{name}: rank order");
        assert_eq!(a.finish_s, b.finish_s, "{name}: rank {} finish", a.rank);
        assert_eq!(a.stats, b.stats, "{name}: rank {} counters", a.rank);
        assert_eq!(
            a.markers, b.markers,
            "{name}: rank {} phase markers",
            a.rank
        );
        assert_eq!(
            a.comm.events.len(),
            b.comm.events.len(),
            "{name}: rank {} comm event count",
            a.rank
        );
        for (ea, eb) in a.comm.events.iter().zip(&b.comm.events) {
            assert_eq!(ea.op, eb.op, "{name}: rank {} comm op", a.rank);
            assert_eq!(ea.tag, eb.tag, "{name}: rank {} comm tag", a.rank);
            assert_eq!(ea.bytes, eb.bytes, "{name}: rank {} comm bytes", a.rank);
            assert_eq!(ea.time_s, eb.time_s, "{name}: rank {} comm time", a.rank);
            assert_eq!(
                ea.waited_s, eb.waited_s,
                "{name}: rank {} comm wait",
                a.rank
            );
            assert_eq!(ea.vc, eb.vc, "{name}: rank {} vector clock", a.rank);
        }
    }
    assert_eq!(
        thread.report.energy(w),
        engine.report.energy(w),
        "{name}: metered energy"
    );
}

fn plans() -> Vec<(&'static str, CommPlan)> {
    vec![
        ("ft", ft_plan(&FtConfig::class(Class::S))),
        ("ep", ep_plan(&EpConfig::class(Class::S))),
        ("cg", cg_plan(&CgConfig::class(Class::S))),
    ]
}

#[test]
fn engine_is_bit_identical_to_thread_runtime_on_npb() {
    let _guard = registry_lock().lock().unwrap();
    let w = world();
    for (name, plan) in plans() {
        for p in [2usize, 4, 8] {
            let thread = observe_thread(&w, p, &plan);
            let engine = observe_engine(&w, p, &plan, &EngineConfig::default());
            assert_identical(&format!("{name} p={p}"), &thread, &engine, &w);
        }
    }
}

#[test]
fn pooled_supersteps_are_bit_identical_to_sequential() {
    let _guard = registry_lock().lock().unwrap();
    let w = world();
    for (name, plan) in plans() {
        let sequential = observe_engine(&w, 8, &plan, &EngineConfig::default());
        for threads in [1usize, 2, 4] {
            let cfg = EngineConfig::default().with_pool(pool::PoolConfig::with_threads(threads));
            let pooled = observe_engine(&w, 8, &plan, &cfg);
            assert_identical(&format!("{name} pool={threads}"), &sequential, &pooled, &w);
        }
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Aggregate fidelity cannot change what the energy meter sees: per-kind
/// work sums and the span are preserved, and energy is linear in exactly
/// those. (Energy is compared with a relative tolerance: summing work
/// before multiplying by the power coefficients reassociates float adds,
/// so the last ULP can differ.)
#[test]
fn aggregate_detail_preserves_energy_and_counters() {
    let w = World::new(simcluster::system_g(), 2.8e9);
    let plan = ft_plan(&FtConfig::class(Class::S));
    let on = simrt::try_run_plan_with(
        &EngineConfig::default().with_detail(Detail::On),
        &w,
        8,
        &plan,
    )
    .expect("detail run");
    let off = simrt::try_run_plan_with(
        &EngineConfig::default().with_detail(Detail::Off),
        &w,
        8,
        &plan,
    )
    .expect("aggregate run");
    assert_eq!(on.report.span(), off.report.span(), "span bits");
    assert_eq!(
        on.report.total_counters(),
        off.report.total_counters(),
        "counter totals"
    );
    let (ea, eb) = (on.report.energy(&w), off.report.energy(&w));
    assert!(close(ea.cpu_j.raw(), eb.cpu_j.raw()), "cpu: {ea:?} {eb:?}");
    assert!(
        close(ea.memory_j.raw(), eb.memory_j.raw()),
        "memory: {ea:?} {eb:?}"
    );
    assert!(
        close(ea.network_j.raw(), eb.network_j.raw()),
        "network: {ea:?} {eb:?}"
    );
    assert!(
        close(ea.disk_j.raw(), eb.disk_j.raw()),
        "disk: {ea:?} {eb:?}"
    );
    assert!(
        close(ea.other_j.raw(), eb.other_j.raw()),
        "other: {ea:?} {eb:?}"
    );
}

/// At `p` far beyond the thread runtime, the engine's dynamic message and
/// byte totals must land exactly on the static analyzer's whole-plan
/// counts (debug-build-sized `p`; the `large_p` suite covers 1024+).
#[test]
fn engine_matches_static_analysis_at_p_256() {
    let plan = ft_plan(&FtConfig::class(Class::S));
    let p = 256;
    let analysis = analyze_plan(&plan, p);
    assert!(analysis.clean(), "{:?}", analysis.findings);
    let out = simrt::run_plan(&world(), p, &plan);
    let totals = out.report.total_counters();
    #[allow(clippy::cast_precision_loss)]
    {
        assert_eq!(totals.messages, analysis.total.messages as f64);
        assert_eq!(totals.bytes, analysis.total.bytes as f64);
    }
}
