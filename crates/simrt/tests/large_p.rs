//! Large-`p` acceptance: the runs the thread runtime cannot do.
//!
//! These are `#[ignore]`d because debug builds make thousand-rank NPB
//! kernels slow; the CI `rank-scaling` job runs them in release with
//! `cargo test --release -p simrt -- --ignored`, where each must finish
//! well inside the 60-second budget.

use plan::{analyze_plan, CommPlan};
use simrt::{Detail, EngineConfig};

fn world() -> mps::World {
    mps::World::new(simcluster::system_g(), 2.8e9)
}

/// Run `plan` at `p` under the wall-clock budget and pin the engine's
/// dynamic message/byte totals to the static analyzer's whole-plan count.
fn run_and_check(name: &str, plan: &CommPlan, p: usize, budget_s: f64) {
    let analysis = analyze_plan(plan, p);
    assert!(analysis.clean(), "{name}: {:?}", analysis.findings);
    let cfg = EngineConfig::default().with_detail(Detail::Off);
    let out = simrt::try_run_plan_with(&cfg, &world(), p, plan).expect("run completes");
    assert!(
        out.stats.wall_s < budget_s,
        "{name} p={p}: {:.1}s exceeds the {budget_s}s budget",
        out.stats.wall_s
    );
    let totals = out.report.total_counters();
    #[allow(clippy::cast_precision_loss)]
    {
        assert_eq!(
            totals.messages, analysis.total.messages as f64,
            "{name} p={p}: dynamic vs static message count"
        );
        assert_eq!(
            totals.bytes, analysis.total.bytes as f64,
            "{name} p={p}: dynamic vs static byte count"
        );
    }
    assert_eq!(out.report.ranks.len(), p);
    assert!(out.report.span() > 0.0);
}

#[test]
#[ignore = "release-only: thousand-rank kernels are slow in debug builds"]
fn ft_completes_at_p_1024_within_budget() {
    let cfg = npb::FtConfig::class(npb::Class::S);
    run_and_check("ft", &npb::ft_plan(&cfg), 1024, 60.0);
}

#[test]
#[ignore = "release-only: thousand-rank kernels are slow in debug builds"]
fn ep_completes_at_p_1024_within_budget() {
    let cfg = npb::EpConfig::class(npb::Class::S);
    run_and_check("ep", &npb::ep_plan(&cfg), 1024, 60.0);
}

#[test]
#[ignore = "release-only: thousand-rank kernels are slow in debug builds"]
fn cg_completes_at_p_1024_within_budget() {
    let cfg = npb::CgConfig::class(npb::Class::S);
    run_and_check("cg", &npb::cg_plan(&cfg), 1024, 60.0);
}

#[test]
#[ignore = "release-only: thousand-rank kernels are slow in debug builds"]
fn ft_completes_at_p_4096_within_budget() {
    let cfg = npb::FtConfig::class(npb::Class::S);
    run_and_check("ft", &npb::ft_plan(&cfg), 4096, 60.0);
}

/// The pooled superstep engine must agree with sequential at scale too —
/// totals and span, compared at aggregate fidelity.
#[test]
#[ignore = "release-only: thousand-rank kernels are slow in debug builds"]
fn pooled_matches_sequential_at_p_1024() {
    let cfg = npb::FtConfig::class(npb::Class::S);
    let plan = npb::ft_plan(&cfg);
    let w = world();
    let base = EngineConfig::default().with_detail(Detail::Off);
    let seq = simrt::try_run_plan_with(&base, &w, 1024, &plan).expect("sequential");
    let pooled_cfg = base.clone().with_pool(pool::PoolConfig::with_threads(4));
    let pooled = simrt::try_run_plan_with(&pooled_cfg, &w, 1024, &plan).expect("pooled");
    assert_eq!(
        seq.report.total_counters(),
        pooled.report.total_counters(),
        "totals"
    );
    assert_eq!(seq.report.span(), pooled.report.span(), "span bits");
    for (a, b) in seq.report.ranks.iter().zip(&pooled.report.ranks) {
        assert_eq!(a.finish_s, b.finish_s, "rank {} finish", a.rank);
    }
    assert!(pooled.stats.supersteps > 0, "pooled mode actually ran");
}
