//! The discrete-event engine: a global virtual-time event queue driving
//! rank tasks, sequentially or in pooled supersteps.
//!
//! ## Why the schedule cannot change the answer
//!
//! The engine is a *conservative* discrete-event simulation. Sends are
//! eager (they never block), receives are the only blocking operation, and
//! a rank's virtual clock advances only through its own program order plus
//! the arrival times of the envelopes it consumes. For a wildcard-free
//! plan every receive names its source, and deposits preserve each
//! sender's program order, so the envelope a receive matches — and hence
//! every clock value, counter, and segment — is independent of the order
//! in which the engine happens to resume runnable tasks. Sequential
//! virtual-time order and pooled supersteps are therefore *bit-identical*;
//! the event queue exists for cache locality and a meaningful timeline,
//! not for correctness. Wildcard plans fall back to the sequential path,
//! whose heap order is still deterministic run-to-run.
//!
//! ## Deadlock
//!
//! Deposits are instantaneous (a send's envelope is buffered at its
//! receiver before the sender's next step executes), so there are never
//! undelivered messages "in flight" between tasks. The starved-host
//! condition that makes the thread runtime's detector hedge is therefore
//! trivially decidable here: an empty event queue with live tasks *is*
//! the terminal wait-for graph. The engine reports the same
//! [`DeadlockInfo`] shape — edges, cyclicity, per-rank partial traces —
//! as `mps::try_run`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mps::{DeadlockInfo, RunError, RunReport, WaitEdge, World};
use netsim::Hockney;
use obs::Timeline;
use plan::CommPlan;
use pool::PoolConfig;

use crate::task::{Blocked, Paused, RankTask};
use crate::{EngineConfig, EngineReport, EngineStats};

/// Execute `plan` on `p` rank tasks over `world`.
pub(crate) fn run(
    cfg: &EngineConfig,
    world: &World,
    p: usize,
    plan: &CommPlan,
) -> Result<EngineReport, RunError> {
    let t0 = std::time::Instant::now();
    let detail = cfg.resolve_detail(p);
    let hockney = world.hockney();
    let mut tasks: Vec<RankTask> = (0..p)
        .map(|r| RankTask::new(r, p, world, plan, detail))
        .collect();
    let mut stats = EngineStats::default();
    let mut timeline = Timeline::new(cfg.timeline_capacity);

    if let (Some(pool_cfg), false, true) = (&cfg.pool, plan.has_wildcard(), p > 1) {
        superstep(
            pool_cfg,
            world,
            &hockney,
            &mut tasks,
            &mut stats,
            &mut timeline,
            cfg,
        );
    } else {
        sequential(world, &hockney, &mut tasks, &mut stats, &mut timeline, cfg);
    }

    stats.steps = tasks.iter().map(|t| t.steps).sum();
    stats.sends = tasks.iter().map(|t| t.sends).sum();
    stats.wall_s = t0.elapsed().as_secs_f64();

    if tasks.iter().any(|t| !t.done()) {
        return Err(deadlock(&mut tasks));
    }

    debug_assert!(
        tasks.iter().all(|t| t.inbox.is_empty()),
        "a completed run must have consumed every message"
    );
    let report = RunReport {
        ranks: tasks.into_iter().map(RankTask::into_outcome).collect(),
        f_hz: world.f_hz,
    };
    write_trace_outputs(world, &report, &timeline);
    Ok(EngineReport {
        report,
        timeline,
        stats,
    })
}

/// The sequential engine: one binary heap ordered by `(resume time,
/// rank)`. Runnable tasks live in the heap; blocked tasks are re-inserted
/// by the deposit that unblocks them, keyed by the virtual time at which
/// their receive completes.
fn sequential(
    world: &World,
    hockney: &Hockney,
    tasks: &mut [RankTask],
    stats: &mut EngineStats,
    timeline: &mut Timeline,
    cfg: &EngineConfig,
) {
    let p = tasks.len();
    // Non-negative f64 bit patterns order like the floats themselves, so
    // `(time.to_bits(), rank)` is a total virtual-time order with rank as
    // the deterministic tie-break.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..p).map(|r| Reverse((0u64, r))).collect();
    let mut live = p;
    let mut executed: u64 = 0;
    let mut next_sample = cfg.timeline_every;
    let mut t_hi = 0.0f64;

    while let Some(Reverse((_, r))) = heap.pop() {
        let before = tasks[r].steps;
        let paused = tasks[r].advance(world, hockney);
        executed += tasks[r].steps - before;
        t_hi = t_hi.max(tasks[r].core.now());
        if paused == Paused::Finished {
            live -= 1;
        }
        let outbox = std::mem::take(&mut tasks[r].outbox);
        for (dst, env) in outbox {
            let dst_task = &mut tasks[dst];
            if dst_task.wants(&env) {
                dst_task.blocked = Blocked::No;
                dst_task.runnable = true;
                let key = dst_task.core.now().max(env.arrival_s);
                heap.push(Reverse((key.to_bits(), dst)));
                stats.wakes += 1;
            }
            dst_task.inbox.push_back(env);
        }
        if cfg.timeline_every > 0 && executed >= next_sample {
            next_sample += cfg.timeline_every;
            sample(timeline, tasks, t_hi, heap.len(), live);
        }
    }
}

/// The pooled engine: advance every runnable task in parallel (each slice
/// runs until its task blocks), then deposit all outboxes in sender-rank
/// order and wake the tasks they unblock. One barrier per superstep.
fn superstep(
    pool_cfg: &PoolConfig,
    world: &World,
    hockney: &Hockney,
    tasks: &mut [RankTask],
    stats: &mut EngineStats,
    timeline: &mut Timeline,
    cfg: &EngineConfig,
) {
    let p = tasks.len();
    let mut ready = p;
    let mut t_hi = 0.0f64;

    while ready > 0 {
        stats.supersteps += 1;
        pool::parallel_for_each_mut(pool_cfg, tasks, |_, task| {
            if task.runnable {
                task.advance(world, hockney);
            }
        });
        // Deposits in sender-rank order: arbitrary but fixed, and — for
        // the wildcard-free plans this mode accepts — irrelevant to what
        // any receive matches (per-source order is all that counts).
        for src in 0..p {
            if tasks[src].outbox.is_empty() {
                continue;
            }
            let outbox = std::mem::take(&mut tasks[src].outbox);
            for (dst, env) in outbox {
                let dst_task = &mut tasks[dst];
                if dst_task.wants(&env) {
                    dst_task.blocked = Blocked::No;
                    dst_task.runnable = true;
                    stats.wakes += 1;
                }
                dst_task.inbox.push_back(env);
            }
        }
        ready = tasks.iter().filter(|t| t.runnable).count();
        if cfg.timeline_every > 0 && stats.supersteps.is_multiple_of(cfg.timeline_every) {
            let live = tasks.iter().filter(|t| !t.done()).count();
            t_hi = tasks.iter().map(|t| t.core.now()).fold(t_hi, f64::max);
            sample(timeline, tasks, t_hi, ready, live);
        }
    }
}

/// Record one timeline sample at virtual time `t_s` (a running maximum,
/// so every series stays monotone for `analyze --trace`).
fn sample(timeline: &mut Timeline, tasks: &[RankTask], t_s: f64, ready: usize, live: usize) {
    let inflight: usize = tasks.iter().map(|t| t.inbox.len()).sum();
    #[allow(clippy::cast_precision_loss)]
    {
        timeline.record("simrt.ready_tasks", "tasks", t_s, ready as f64);
        timeline.record(
            "simrt.blocked_tasks",
            "tasks",
            t_s,
            live.saturating_sub(ready) as f64,
        );
        timeline.record("simrt.inflight_msgs", "", t_s, inflight as f64);
    }
}

/// Assemble the terminal wait-for graph: every live task is parked on a
/// receive that no remaining send can satisfy.
fn deadlock(tasks: &mut [RankTask]) -> RunError {
    let mut edges = Vec::new();
    for t in tasks.iter() {
        match t.blocked {
            Blocked::On { from, tag } => edges.push(WaitEdge {
                from_rank: t.rank(),
                on_rank: Some(from),
                tag,
            }),
            Blocked::Any { tag } => edges.push(WaitEdge {
                from_rank: t.rank(),
                on_rank: None,
                tag,
            }),
            Blocked::No | Blocked::Done => {}
        }
    }
    let cyclic = has_cycle(tasks);
    obs::flight::record(
        "simrt.deadlock",
        "event",
        0.0,
        &[
            ("cyclic", cyclic.to_string()),
            (
                "edges",
                edges
                    .iter()
                    .map(|e| format!("{e:?}"))
                    .collect::<Vec<_>>()
                    .join(";"),
            ),
        ],
    );
    let _ = obs::flight::dump("simrt-deadlock");
    let comm = tasks
        .iter_mut()
        .map(|t| {
            t.drain_unconsumed();
            std::mem::take(&mut t.comm)
        })
        .collect();
    RunError::Deadlock(DeadlockInfo {
        edges,
        cyclic,
        comm,
    })
}

/// Is there a cycle in the wait-for graph? Each blocked task has at most
/// one successor (the rank it waits on, when that rank is itself still
/// live), so a stamped walk per start node suffices.
fn has_cycle(tasks: &[RankTask]) -> bool {
    let succ: Vec<Option<usize>> = tasks
        .iter()
        .map(|t| match t.blocked {
            Blocked::On { from, .. } if !tasks[from].done() => Some(from),
            _ => None,
        })
        .collect();
    // 0 = unvisited, 1 = on the current walk, 2 = exhausted.
    let mut state = vec![0u8; tasks.len()];
    for start in 0..tasks.len() {
        if state[start] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut node = start;
        loop {
            if state[node] == 1 {
                return true; // walked back into the current path
            }
            if state[node] == 2 {
                break; // joins an already-exhausted walk
            }
            state[node] = 1;
            path.push(node);
            match succ[node] {
                Some(next) => node = next,
                None => break,
            }
        }
        for visited in path {
            state[visited] = 2;
        }
    }
    false
}

/// Write the configured trace files at run end, with the engine's
/// timeline attached as counter tracks. Mirrors the thread runtime:
/// output failures go to stderr, never fail the run.
fn write_trace_outputs(world: &World, report: &RunReport<()>, timeline: &Timeline) {
    if !world.obs.trace || (world.obs.perfetto_path.is_none() && world.obs.jsonl_path.is_none()) {
        return;
    }
    let name = format!(
        "{} p={} f={:.2}GHz simrt",
        world.cluster.name,
        report.ranks.len(),
        world.f_hz / 1e9
    );
    let Some(mut trace) = report.trace(&name) else {
        return;
    };
    timeline.attach(&mut trace);
    if let Some(path) = &world.obs.perfetto_path {
        if let Err(e) = obs::perfetto::write_file(&trace, path) {
            eprintln!(
                "simrt: failed to write Perfetto trace {}: {e}",
                path.display()
            );
        }
    }
    if let Some(path) = &world.obs.jsonl_path {
        let result = std::fs::File::create(path).and_then(|f| {
            let mut sink = obs::JsonlSink::new(std::io::BufWriter::new(f));
            trace.emit(&mut sink)
        });
        if let Err(e) = result {
            eprintln!("simrt: failed to write JSONL trace {}: {e}", path.display());
        }
    }
}
