//! # simrt — a discrete-event rank engine for large-`p` simulation
//!
//! The mps thread runtime gives every simulated rank an OS thread, which
//! tops out around the host's thread limits long before the paper's
//! `p = 1024+` scaling studies. This crate runs the *same* rank programs —
//! [`plan::CommPlan`]s, streamed by [`plan::TimedCursor`] — as resumable
//! state-machine tasks over a global virtual-time event queue, multiplexed
//! on the caller thread or a [`pool`] of workers. One process simulates
//! NPB FT/EP/CG at `p = 4096`.
//!
//! Accounting is shared with the thread runtime through [`mps::RankCore`],
//! so per-collective message/byte counters, segment logs, energy, and span
//! traces are **bit-identical** between the two runtimes at any `p` where
//! both run (the differential tests in `tests/` pin this). At large `p`
//! the engine drops to aggregate fidelity — per-kind work sums instead of
//! full segment logs — which the energy model cannot distinguish.
//!
//! ```
//! use plan::{CommPlan, Expr, Op, ReduceOp};
//! use mps::World;
//! use simcluster::system_g;
//!
//! let plan = CommPlan::new(
//!     "allreduce",
//!     vec![Op::AllReduce { elems: Expr::Const(128), op: ReduceOp::Sum }],
//! );
//! let world = World::new(system_g(), 2.8e9);
//! let out = simrt::run_plan(&world, 1024, &plan);
//! assert_eq!(out.report.ranks.len(), 1024);
//! assert!(out.report.span() > 0.0);
//! ```
//!
//! ## Execution modes
//!
//! * **Sequential** (default): a binary heap ordered by `(virtual resume
//!   time, rank)`; one task runs until it blocks, its sends wake parked
//!   receivers. Deterministic run-to-run.
//! * **Superstep** ([`EngineConfig::with_pool`]): every runnable task is
//!   advanced in parallel via [`pool::parallel_for_each_mut`], then all
//!   sends are deposited in rank order. Bit-identical to sequential for
//!   wildcard-free plans (wildcard plans silently fall back to
//!   sequential, whose schedule is fixed).
//! * **Controlled** (`world.sched` set): thread-per-rank under the
//!   [`mps::SchedulerHook`] protocol, so the verify crate's schedule-space
//!   explorer drives engine-backed runs unchanged.

#![forbid(unsafe_code)]

mod controlled;
mod engine;
mod task;

use mps::{RunError, RunReport, World};
use obs::Timeline;
use plan::CommPlan;
use pool::PoolConfig;

/// With [`Detail::Auto`], runs at `p` up to this keep full per-segment
/// logs, span tracks and comm traces; larger runs aggregate.
pub const DETAIL_AUTO_MAX_P: usize = 64;

/// Fidelity of per-rank logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Detail {
    /// Full detail up to [`DETAIL_AUTO_MAX_P`] ranks, aggregate above.
    #[default]
    Auto,
    /// Always keep full segment logs, comm events and span tracks.
    On,
    /// Always aggregate: per-kind `(wall, work)` sums only — a few dozen
    /// bytes per rank, the mode that makes `p = 4096` fit in memory.
    Off,
}

/// Engine tuning knobs. The default — sequential, auto detail, no
/// timeline — is right for tests and differential comparisons.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Per-rank logging fidelity.
    pub detail: Detail,
    /// Advance runnable tasks on a worker pool, one superstep per
    /// barrier. `None` runs sequentially on the caller.
    pub pool: Option<PoolConfig>,
    /// Sample the engine timeline every this many steps (sequential) or
    /// supersteps (pooled). `0` disables the timeline.
    pub timeline_every: u64,
    /// Ring capacity per timeline series.
    pub timeline_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            detail: Detail::Auto,
            pool: None,
            timeline_every: 0,
            timeline_capacity: 4096,
        }
    }
}

impl EngineConfig {
    /// Set the logging fidelity.
    #[must_use]
    pub fn with_detail(mut self, detail: Detail) -> Self {
        self.detail = detail;
        self
    }

    /// Advance tasks in pooled supersteps with this pool configuration.
    #[must_use]
    pub fn with_pool(mut self, pool: PoolConfig) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Enable timeline sampling every `every` steps/supersteps.
    #[must_use]
    pub fn with_timeline_every(mut self, every: u64) -> Self {
        self.timeline_every = every;
        self
    }

    /// Resolve the effective detail flag for a run of `p` ranks.
    fn resolve_detail(&self, p: usize) -> bool {
        match self.detail {
            Detail::Auto => p <= DETAIL_AUTO_MAX_P,
            Detail::On => true,
            Detail::Off => false,
        }
    }
}

/// Engine-side observations of one run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Plan steps executed across all ranks.
    pub steps: u64,
    /// Point-to-point messages sent.
    pub sends: u64,
    /// Blocked tasks woken by a deposit.
    pub wakes: u64,
    /// Supersteps executed (pooled mode only).
    pub supersteps: u64,
    /// Host wall-clock time of the run, seconds.
    pub wall_s: f64,
}

/// What an engine run produces: the runtime-shaped report, the engine's
/// own counter timeline (virtual-time samples of queue occupancy), and
/// host-side stats.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-rank outcomes, identical in shape (and — at matching detail —
    /// in content) to an [`mps::try_run`] report.
    pub report: RunReport<()>,
    /// Engine timeline: `simrt.ready_tasks`, `simrt.blocked_tasks`,
    /// `simrt.inflight_msgs`, sampled at virtual time. Empty unless
    /// [`EngineConfig::timeline_every`] is set.
    pub timeline: Timeline,
    /// Host-side engine statistics.
    pub stats: EngineStats,
}

impl EngineReport {
    /// Assemble an [`obs::Trace`] named `name` from the run's span tracks
    /// (when detail tracing was on) with the engine timeline attached as
    /// counter tracks. `None` when there is nothing to emit.
    #[must_use]
    pub fn trace(&self, name: &str) -> Option<obs::Trace> {
        let mut trace = match self.report.trace(name) {
            Some(t) => t,
            None => {
                if self.timeline.series().iter().all(|s| s.samples.is_empty()) {
                    return None;
                }
                let mut t = obs::Trace::new(name);
                t.set_meta("ranks", &self.report.ranks.len().to_string());
                t.set_meta("f_hz", &format!("{}", self.report.f_hz));
                t
            }
        };
        self.timeline.attach(&mut trace);
        Some(trace)
    }
}

/// Run `plan` on `p` simulated ranks over `world` with the default
/// configuration.
///
/// # Panics
/// Panics if the run deadlocks (use [`try_run_plan`] for the error value)
/// or if the plan violates shape invariants (run `plan::analyze_plan`
/// first).
#[must_use]
pub fn run_plan(world: &World, p: usize, plan: &CommPlan) -> EngineReport {
    match try_run_plan(world, p, plan) {
        Ok(out) => out,
        Err(err) => panic!("simrt run failed: {err}"),
    }
}

/// Like [`run_plan`], but a deadlocked plan returns
/// [`RunError::Deadlock`] with the wait-for edges and per-rank partial
/// traces.
///
/// # Errors
/// [`RunError::Deadlock`] when every live task is parked on a receive no
/// remaining send can satisfy; [`RunError::SchedulerAbort`] when an
/// installed scheduler hook tears the run down.
pub fn try_run_plan(world: &World, p: usize, plan: &CommPlan) -> Result<EngineReport, RunError> {
    try_run_plan_with(&EngineConfig::default(), world, p, plan)
}

/// [`try_run_plan`] with explicit engine configuration.
///
/// Unlike the thread runtime there is no `p ≤ total_cores` cap: ranks are
/// tasks, and `p` in the thousands is the point. When `world.sched` is
/// set the engine switches to thread-per-rank controlled mode (see
/// [`mps::SchedulerHook`]); `cfg.pool` and the timeline are ignored
/// there.
///
/// # Errors
/// See [`try_run_plan`].
///
/// # Panics
/// Panics if `p == 0` or on plan shape violations.
pub fn try_run_plan_with(
    cfg: &EngineConfig,
    world: &World,
    p: usize,
    plan: &CommPlan,
) -> Result<EngineReport, RunError> {
    assert!(p > 0, "need at least one rank");
    if world.sched.is_some() {
        return controlled::run(cfg, world, p, plan);
    }
    engine::run(cfg, world, p, plan)
}
