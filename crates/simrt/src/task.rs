//! Rank tasks: one simulated rank as a resumable state machine.
//!
//! A [`RankTask`] couples an [`mps::RankCore`] (the execution-agnostic
//! accounting state shared with the thread runtime) with a
//! [`plan::TimedCursor`] (the rank's resumable program counter over the
//! plan). [`RankTask::advance`] runs the rank until it blocks on a receive
//! with no matching envelope buffered, or until its plan is exhausted —
//! the engine then parks it and resumes it when a matching message is
//! deposited.
//!
//! ## Why one inbox per task
//!
//! The thread runtime keeps one channel per ordered rank pair — `p²`
//! channels, fine at `p ≤` a few hundred, fatal at `p = 4096` (16.7M
//! `VecDeque`s). A task instead holds a *single* arrival-ordered inbox and
//! matches receives by a linear `(src, tag)` scan. Because deposits
//! preserve each sender's program order, the first `(src, tag)` match in
//! arrival order is exactly the per-source-FIFO-with-tag-skip match the
//! thread runtime performs, so the two transports consume identical
//! message sequences. In-flight envelopes for the NPB collectives are
//! bounded by ~`p`, so the scan is short in practice.

use std::collections::VecDeque;

use mps::{CollScope, CommEvent, CommLog, CommOp, RankCore, World};
use netsim::Hockney;
use plan::{CommPlan, Step, TimedCursor};
use simcluster::units::Seconds;

/// A message in flight between two rank tasks. The engine analogue of the
/// thread runtime's envelope, minus the payload box: plans describe byte
/// volumes, not values, so only the accounting fields travel.
#[derive(Debug, Clone)]
pub(crate) struct SimEnvelope {
    /// Sending rank.
    pub(crate) src: usize,
    /// Message tag (user or internal-collective).
    pub(crate) tag: u64,
    /// Virtual arrival time: send start + full Hockney link time.
    pub(crate) arrival_s: f64,
    /// Payload bytes.
    pub(crate) bytes: u64,
    /// Sender's vector clock at the send; empty with detail off.
    pub(crate) vc: Vec<u64>,
}

/// Why a task is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Blocked {
    /// Runnable (or currently running).
    No,
    /// Parked on `recv(from, tag)` with no match buffered.
    On {
        /// Awaited source rank.
        from: usize,
        /// Awaited tag.
        tag: u64,
    },
    /// Parked on a wildcard `recv_any(tag)`.
    Any {
        /// Awaited tag.
        tag: u64,
    },
    /// The rank's plan is exhausted.
    Done,
}

/// How one resume slice ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Paused {
    /// Parked on a receive; resumable once a matching envelope arrives.
    Blocked,
    /// The plan is exhausted; the task will never run again.
    Finished,
}

/// One simulated rank of the event engine.
pub(crate) struct RankTask<'a> {
    pub(crate) core: RankCore<'a>,
    cursor: TimedCursor<'a>,
    /// Arrival-ordered inbox; receives match by linear `(src, tag)` scan.
    pub(crate) inbox: VecDeque<SimEnvelope>,
    pub(crate) blocked: Blocked,
    /// The step whose effect could not complete (a blocked receive),
    /// re-executed first on resume.
    pending: Option<Step>,
    /// Open collective scopes, innermost last.
    scopes: Vec<CollScope>,
    vclock: Vec<u64>,
    pub(crate) comm: CommLog,
    /// Sends produced by the current resume slice, `(dst, envelope)`;
    /// drained and deposited by the engine after the slice.
    pub(crate) outbox: Vec<(usize, SimEnvelope)>,
    /// Superstep-mode flag: advance this task in the next batch.
    pub(crate) runnable: bool,
    /// Steps executed so far (engine stats).
    pub(crate) steps: u64,
    /// Sends executed so far (engine stats).
    pub(crate) sends: u64,
    detail: bool,
}

impl<'a> RankTask<'a> {
    pub(crate) fn new(
        rank: usize,
        p: usize,
        world: &'a World,
        plan: &'a CommPlan,
        detail: bool,
    ) -> Self {
        Self {
            core: RankCore::new(rank, p, world, detail),
            cursor: TimedCursor::new(plan, p, rank),
            inbox: VecDeque::new(),
            blocked: Blocked::No,
            pending: None,
            scopes: Vec::new(),
            vclock: if detail { vec![0; p] } else { Vec::new() },
            comm: CommLog::new(rank),
            outbox: Vec::new(),
            runnable: true,
            steps: 0,
            sends: 0,
            detail,
        }
    }

    pub(crate) fn rank(&self) -> usize {
        self.core.rank()
    }

    pub(crate) fn done(&self) -> bool {
        matches!(self.blocked, Blocked::Done)
    }

    /// Would depositing `env` unblock this task?
    pub(crate) fn wants(&self, env: &SimEnvelope) -> bool {
        match self.blocked {
            Blocked::On { from, tag } => env.src == from && env.tag == tag,
            Blocked::Any { tag } => env.tag == tag,
            Blocked::No | Blocked::Done => false,
        }
    }

    /// Run the rank until it blocks or finishes. Work charges go straight
    /// into the core; sends are buffered into [`RankTask::outbox`] for the
    /// engine to deposit.
    pub(crate) fn advance(&mut self, world: &World, hockney: &Hockney) -> Paused {
        loop {
            let step = match self.pending.take() {
                Some(s) => s,
                None => match self.cursor.next_step() {
                    Some(s) => s,
                    None => {
                        assert!(
                            self.scopes.is_empty(),
                            "rank {} finished inside a collective scope",
                            self.rank()
                        );
                        self.blocked = Blocked::Done;
                        self.runnable = false;
                        return Paused::Finished;
                    }
                },
            };
            match step {
                Step::Compute { instr } => self.core.compute(instr),
                Step::MemStream { touches, ws } => self.core.mem_stream(touches, ws),
                Step::MemAccess { accesses, ws } => self.core.mem_access(accesses, ws),
                Step::Io { seconds } => self.core.io(seconds),
                Step::Phase(name) => self.core.phase(&name),
                Step::CollBegin(name) => {
                    let scope = self.core.collective_begin(name);
                    self.scopes.push(scope);
                }
                Step::CollEnd => {
                    let scope = self
                        .scopes
                        .pop()
                        .expect("CollEnd without a matching CollBegin");
                    self.core.collective_end(scope);
                }
                Step::Send {
                    to,
                    tag,
                    bytes,
                    concurrency,
                } => self.execute_send(world, hockney, to, tag, bytes, concurrency),
                Step::Recv { from, tag } => {
                    match self
                        .inbox
                        .iter()
                        .position(|e| e.src == from && e.tag == tag)
                    {
                        Some(i) => self.consume(i),
                        None => {
                            self.blocked = Blocked::On { from, tag };
                            self.runnable = false;
                            self.pending = Some(Step::Recv { from, tag });
                            return Paused::Blocked;
                        }
                    }
                }
                Step::RecvAny { tag } => match self.inbox.iter().position(|e| e.tag == tag) {
                    Some(i) => self.consume(i),
                    None => {
                        self.blocked = Blocked::Any { tag };
                        self.runnable = false;
                        self.pending = Some(Step::RecvAny { tag });
                        return Paused::Blocked;
                    }
                },
            }
            self.steps += 1;
        }
    }

    /// The effect of one send: the same accounting sequence as
    /// `mps::Ctx::send_raw`, with the deposit deferred to the engine.
    fn execute_send(
        &mut self,
        world: &World,
        hockney: &Hockney,
        to: usize,
        tag: u64,
        bytes: u64,
        concurrency: usize,
    ) {
        let rank = self.rank();
        assert!(to < self.core.size(), "send to rank {to} out of range");
        assert!(to != rank, "self-sends are not allowed (rank {to})");
        let h = world.contention.effective(hockney, concurrency);
        let t_net = Seconds::new(h.p2p(bytes));
        let arrival = self.core.account_send(bytes, t_net);
        let vc = if self.detail {
            self.vclock[rank] += 1;
            self.comm.events.push(CommEvent {
                op: CommOp::Send { to },
                tag,
                bytes,
                time_s: self.core.now(),
                waited_s: 0.0,
                vc: self.vclock.clone(),
            });
            self.vclock.clone()
        } else {
            Vec::new()
        };
        self.sends += 1;
        self.outbox.push((
            to,
            SimEnvelope {
                src: rank,
                tag,
                arrival_s: arrival.raw(),
                bytes,
                vc,
            },
        ));
    }

    /// Consume the inbox envelope at `idx`: advance to its arrival, log
    /// the wait, merge vector clocks, record the receive event.
    fn consume(&mut self, idx: usize) {
        let env = self.inbox.remove(idx).expect("index in range");
        let waited = self.core.account_recv(env.arrival_s);
        if self.detail {
            for (mine, theirs) in self.vclock.iter_mut().zip(&env.vc) {
                *mine = (*mine).max(*theirs);
            }
            let rank = self.rank();
            self.vclock[rank] += 1;
            self.comm.events.push(CommEvent {
                op: CommOp::Recv { from: env.src },
                tag: env.tag,
                bytes: env.bytes,
                time_s: self.core.now(),
                waited_s: waited.raw(),
                vc: self.vclock.clone(),
            });
        }
    }

    /// Fold everything still buffered into the trace's `unconsumed` list
    /// (deadlock teardown; the analyzer infers tag mismatches from it).
    pub(crate) fn drain_unconsumed(&mut self) {
        while let Some(env) = self.inbox.pop_front() {
            self.comm.unconsumed.push((env.src, env.tag, env.bytes));
        }
    }

    /// Seal the task into the report entry the thread runtime would have
    /// produced for this rank.
    pub(crate) fn into_outcome(self) -> mps::RankOutcome<()> {
        let RankTask { core, comm, .. } = self;
        let rank = core.rank();
        let fin = core.finish();
        mps::RankOutcome {
            rank,
            result: (),
            stats: fin.stats,
            log: fin.log,
            comm,
            finish_s: fin.finish_s,
            markers: fin.markers,
            track: fin.track,
        }
    }
}
