//! Controlled execution: thread-per-rank under a [`SchedulerHook`].
//!
//! The verify crate's `Controller` only decides at *quiescence* — every
//! rank parked in `permit` or finished — and only grants operations that
//! are enabled, so a granted rank must complete its operation without
//! blocking. A cooperatively-multiplexed engine cannot satisfy that
//! contract (a parked task never reaches quiescence from the controller's
//! point of view), so when `world.sched` is set each rank task gets its
//! own OS thread, exactly like the thread runtime — `p` is small in
//! verification worlds. The hook protocol is reproduced call-for-call:
//! `permit` before every point-to-point effect, `rank_finished` after the
//! plan is exhausted, `Abort` grants unwinding the rank with its partial
//! trace (surfaced as [`RunError::SchedulerAbort`]).
//!
//! Because the controller guarantees a granted receive's message is
//! already deposited, a missing envelope here is a channel-model
//! divergence and panics loudly rather than blocking.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use mps::{
    CollScope, CommEvent, CommLog, CommOp, RankCore, RankOutcome, RunError, RunReport, SchedGrant,
    SchedOp, SchedulerHook, World,
};
use netsim::Hockney;
use obs::Timeline;
use plan::{CommPlan, Step, TimedCursor};
use simcluster::units::Seconds;

use crate::task::SimEnvelope;
use crate::{EngineConfig, EngineReport, EngineStats};

/// How one controlled rank ended.
enum RankEnd {
    Done(Box<RankOutcome<()>>),
    Aborted(CommLog),
}

pub(crate) fn run(
    cfg: &EngineConfig,
    world: &World,
    p: usize,
    plan: &CommPlan,
) -> Result<EngineReport, RunError> {
    let t0 = std::time::Instant::now();
    let hook = world
        .sched
        .clone()
        .expect("controlled mode requires a scheduler hook");
    let inboxes: Vec<Mutex<VecDeque<SimEnvelope>>> =
        (0..p).map(|_| Mutex::new(VecDeque::new())).collect();
    let inboxes = &inboxes;
    let hockney = world.hockney();

    let mut ends: Vec<Option<(RankEnd, u64, u64)>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for rank in 0..p {
            let hook = Arc::clone(&hook);
            handles.push(scope.spawn(move || {
                (
                    rank,
                    run_rank(world, p, plan, rank, &hockney, &hook, inboxes),
                )
            }));
        }
        for handle in handles {
            let (rank, end) = handle.join().expect("controlled rank panicked");
            ends[rank] = Some(end);
        }
    });

    let mut stats = EngineStats::default();
    let mut outcomes = Vec::with_capacity(p);
    let mut comm: Vec<CommLog> = (0..p).map(CommLog::new).collect();
    let mut aborted = false;
    for end in ends.into_iter().map(|e| e.expect("every rank reported")) {
        let (end, steps, sends) = end;
        stats.steps += steps;
        stats.sends += sends;
        match end {
            RankEnd::Done(outcome) => {
                comm[outcome.rank] = outcome.comm.clone();
                outcomes.push(*outcome);
            }
            RankEnd::Aborted(log) => {
                aborted = true;
                let rank = log.rank;
                comm[rank] = log;
            }
        }
    }
    stats.wall_s = t0.elapsed().as_secs_f64();
    if aborted {
        return Err(RunError::SchedulerAbort { comm });
    }
    outcomes.sort_by_key(|o| o.rank);
    Ok(EngineReport {
        report: RunReport {
            ranks: outcomes,
            f_hz: world.f_hz,
        },
        timeline: Timeline::new(cfg.timeline_capacity),
        stats,
    })
}

/// One rank's controlled execution, on its own thread.
fn run_rank(
    world: &World,
    p: usize,
    plan: &CommPlan,
    rank: usize,
    hockney: &Hockney,
    hook: &Arc<dyn SchedulerHook>,
    inboxes: &[Mutex<VecDeque<SimEnvelope>>],
) -> (RankEnd, u64, u64) {
    let mut core = RankCore::new(rank, p, world, true);
    let mut cursor = TimedCursor::new(plan, p, rank);
    let mut comm = CommLog::new(rank);
    let mut vclock = vec![0u64; p];
    let mut scopes: Vec<CollScope> = Vec::new();
    let mut steps = 0u64;
    let mut sends = 0u64;

    while let Some(step) = cursor.next_step() {
        steps += 1;
        match step {
            Step::Compute { instr } => core.compute(instr),
            Step::MemStream { touches, ws } => core.mem_stream(touches, ws),
            Step::MemAccess { accesses, ws } => core.mem_access(accesses, ws),
            Step::Io { seconds } => core.io(seconds),
            Step::Phase(name) => core.phase(&name),
            Step::CollBegin(name) => scopes.push(core.collective_begin(name)),
            Step::CollEnd => {
                let scope = scopes.pop().expect("CollEnd without CollBegin");
                core.collective_end(scope);
            }
            Step::Send {
                to,
                tag,
                bytes,
                concurrency,
            } => {
                match hook.permit(rank, SchedOp::Send { to, tag }) {
                    SchedGrant::Proceed { .. } => {}
                    SchedGrant::Abort => return (abort(rank, comm, inboxes), steps, sends),
                }
                let h = world.contention.effective(hockney, concurrency);
                let t_net = Seconds::new(h.p2p(bytes));
                let arrival = core.account_send(bytes, t_net);
                vclock[rank] += 1;
                comm.events.push(CommEvent {
                    op: CommOp::Send { to },
                    tag,
                    bytes,
                    time_s: core.now(),
                    waited_s: 0.0,
                    vc: vclock.clone(),
                });
                sends += 1;
                inboxes[to]
                    .lock()
                    .expect("inbox lock intact")
                    .push_back(SimEnvelope {
                        src: rank,
                        tag,
                        arrival_s: arrival.raw(),
                        bytes,
                        vc: vclock.clone(),
                    });
            }
            Step::Recv { from, tag } => {
                match hook.permit(rank, SchedOp::Recv { from, tag }) {
                    SchedGrant::Proceed { .. } => {}
                    SchedGrant::Abort => return (abort(rank, comm, inboxes), steps, sends),
                }
                let env = take_envelope(&inboxes[rank], |e| e.src == from && e.tag == tag)
                    .unwrap_or_else(|| {
                        panic!(
                            "rank {rank}: controller granted recv(from {from}, tag {tag}) \
                             with no deposited envelope"
                        )
                    });
                consume(&mut core, &mut comm, &mut vclock, env);
            }
            Step::RecvAny { tag } => {
                let source = match hook.permit(rank, SchedOp::RecvAny { tag }) {
                    SchedGrant::Proceed { source } => source,
                    SchedGrant::Abort => return (abort(rank, comm, inboxes), steps, sends),
                };
                let env = match source {
                    Some(src) => take_envelope(&inboxes[rank], |e| e.src == src && e.tag == tag),
                    None => take_envelope(&inboxes[rank], |e| e.tag == tag),
                }
                .unwrap_or_else(|| {
                    panic!(
                        "rank {rank}: controller granted recv_any(tag {tag}, source \
                         {source:?}) with no deposited envelope"
                    )
                });
                consume(&mut core, &mut comm, &mut vclock, env);
            }
        }
    }
    assert!(
        scopes.is_empty(),
        "rank {rank} finished inside a collective scope"
    );
    hook.rank_finished(rank);
    {
        let mut inbox = inboxes[rank].lock().expect("inbox lock intact");
        while let Some(env) = inbox.pop_front() {
            comm.unconsumed.push((env.src, env.tag, env.bytes));
        }
    }
    let fin = core.finish();
    (
        RankEnd::Done(Box::new(RankOutcome {
            rank,
            result: (),
            stats: fin.stats,
            log: fin.log,
            comm,
            finish_s: fin.finish_s,
            markers: fin.markers,
            track: fin.track,
        })),
        steps,
        sends,
    )
}

/// Tear this rank down after an `Abort` grant: fold the undelivered inbox
/// into the partial trace, exactly like the thread runtime's unwind path.
fn abort(rank: usize, mut comm: CommLog, inboxes: &[Mutex<VecDeque<SimEnvelope>>]) -> RankEnd {
    let mut inbox = inboxes[rank].lock().expect("inbox lock intact");
    while let Some(env) = inbox.pop_front() {
        comm.unconsumed.push((env.src, env.tag, env.bytes));
    }
    RankEnd::Aborted(comm)
}

/// Remove the first inbox envelope matching `pred` (per-source FIFO with
/// tag skip, same as the engine's inbox scan).
fn take_envelope(
    inbox: &Mutex<VecDeque<SimEnvelope>>,
    pred: impl Fn(&SimEnvelope) -> bool,
) -> Option<SimEnvelope> {
    let mut inbox = inbox.lock().expect("inbox lock intact");
    let idx = inbox.iter().position(pred)?;
    inbox.remove(idx)
}

/// The receive effect shared by sourced and wildcard receives.
fn consume(core: &mut RankCore, comm: &mut CommLog, vclock: &mut [u64], env: SimEnvelope) {
    let waited = core.account_recv(env.arrival_s);
    for (mine, theirs) in vclock.iter_mut().zip(&env.vc) {
        *mine = (*mine).max(*theirs);
    }
    vclock[core.rank()] += 1;
    comm.events.push(CommEvent {
        op: CommOp::Recv { from: env.src },
        tag: env.tag,
        bytes: env.bytes,
        time_s: core.now(),
        waited_s: waited.raw(),
        vc: vclock.to_vec(),
    });
}
