//! LMbench `lat_mem_rd` analog: the memory-latency staircase.
//!
//! The paper estimates `tm` (average memory access latency) with LMbench's
//! pointer-chase benchmark. This analog issues dependent memory accesses
//! against increasing working-set sizes and reports the observed latency per
//! access — reproducing the classic L1/L2/DRAM staircase of the simulated
//! cache hierarchy. The model's flat `tm` is read off the DRAM plateau, as
//! the paper does.

use mps::{run, World};

/// One point of the latency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemLatencyPoint {
    /// Working-set size in bytes.
    pub working_set_bytes: u64,
    /// Observed latency per access, seconds.
    pub latency_s: f64,
}

/// Sweep working sets from `min_bytes` to `max_bytes` (doubling each step)
/// and measure the per-access latency at each size.
pub fn lat_mem_rd(world: &World, min_bytes: u64, max_bytes: u64) -> Vec<MemLatencyPoint> {
    assert!(
        min_bytes > 0 && max_bytes >= min_bytes,
        "invalid sweep range"
    );
    let w = world.clone().with_alpha(1.0);
    let accesses = 1e6;
    let mut out = Vec::new();
    let mut ws = min_bytes;
    while ws <= max_bytes {
        let report = run(&w, 1, |ctx| ctx.mem_access(accesses, ws));
        out.push(MemLatencyPoint {
            working_set_bytes: ws,
            latency_s: report.span() / accesses,
        });
        ws = ws.saturating_mul(2);
    }
    out
}

/// The `tm` plateau: the latency at the largest measured working set.
pub fn tm_from_sweep(sweep: &[MemLatencyPoint]) -> f64 {
    sweep.last().expect("sweep must not be empty").latency_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::system_g;

    fn sweep() -> Vec<MemLatencyPoint> {
        let w = World::new(system_g(), 2.8e9);
        lat_mem_rd(&w, 1 << 10, 1 << 28)
    }

    #[test]
    fn staircase_is_monotone_non_decreasing() {
        let s = sweep();
        for w in s.windows(2) {
            assert!(
                w[1].latency_s >= w[0].latency_s - 1e-18,
                "latency staircase must be monotone: {w:?}"
            );
        }
    }

    #[test]
    fn small_working_sets_hit_cache() {
        let s = sweep();
        let l1 = s[0].latency_s;
        let dram = s.last().unwrap().latency_s;
        assert!(
            dram / l1 > 10.0,
            "cache/DRAM contrast too small: {l1} vs {dram}"
        );
    }

    #[test]
    fn plateau_matches_configured_memory_model() {
        let w = World::new(system_g(), 2.8e9);
        let s = lat_mem_rd(&w, 1 << 10, 1 << 28);
        let tm = tm_from_sweep(&s);
        let expect = w.cluster.node.memory.latency_for_working_set(1 << 28);
        assert!(
            (tm - expect).abs() / expect < 1e-9,
            "measured {tm} vs configured {expect}"
        );
    }

    #[test]
    fn staircase_has_visible_knee_at_l2_boundary() {
        let s = sweep();
        // Find points below and above the 6 MB L2 of SystemG.
        let below = s
            .iter()
            .find(|p| p.working_set_bytes == 1 << 22)
            .unwrap()
            .latency_s; // 4 MB: fits L2
        let above = s
            .iter()
            .find(|p| p.working_set_bytes == 1 << 25)
            .unwrap()
            .latency_s; // 32 MB: spills
        assert!(above > below * 2.0, "no knee: {below} vs {above}");
    }
}
