//! Ordinary least-squares line fitting.

/// Result of fitting `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Intercept (e.g. the Hockney `ts`).
    pub intercept: f64,
    /// Slope (e.g. the Hockney `tw`).
    pub slope: f64,
    /// Coefficient of determination `R²`.
    pub r_squared: f64,
}

/// Least-squares fit of a line through `(x, y)` points.
///
/// # Panics
/// Panics with fewer than two points or zero x-variance.
pub fn fit_line(points: &[(f64, f64)]) -> LineFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let mx = sx / n;
    let my = sy / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    assert!(sxx > 0.0, "x values are all identical; cannot fit a slope");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (intercept + slope * p.0);
            e * e
        })
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    LineFit {
        intercept,
        slope,
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovers_parameters() {
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| (f64::from(i), 3.0 + 2.0 * f64::from(i)))
            .collect();
        let f = fit_line(&pts);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_fits_approximately() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                // Deterministic "noise".
                let noise = ((i * 2654435761u64 as usize) % 100) as f64 / 100.0 - 0.5;
                (x, 1.0 + 0.5 * x + noise)
            })
            .collect();
        let f = fit_line(&pts);
        assert!((f.slope - 0.5).abs() < 0.01, "slope {}", f.slope);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_rejected() {
        fit_line(&[(1.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn vertical_data_rejected() {
        fit_line(&[(1.0, 2.0), (1.0, 3.0)]);
    }
}
