//! # microbench — machine-parameter calibration tools
//!
//! The paper derives its machine-dependent parameter vector
//! `Mach(f, BW) = (tc, tm, ts, tw, ΔP…)` by *measurement*: a Perfmon-based
//! tool for `tc = CPI/f`, LMbench's `lat_mem_rd` for `tm`, MPPTest for
//! `ts`/`tw`, and PowerPack for the component powers (§IV.B). This crate
//! reproduces that methodology against the simulator:
//!
//! * [`perfmon`] — runs an instruction-mix microkernel and reports the
//!   observed time-per-instruction and CPI.
//! * [`lmbench`] — a pointer-chase latency sweep over working-set sizes;
//!   reports the latency staircase and the DRAM plateau `tm`.
//! * [`mpptest`] — ping-pong round trips over message sizes; least-squares
//!   fits the Hockney `ts`/`tw`.
//! * [`powercal`] — differential power measurement: loaded vs. idle runs
//!   give each component's active delta (`ΔPc`, `ΔPm`).
//! * [`fit`] — the shared least-squares line fitter.
//!
//! Because the simulator's true parameters are known, every tool doubles as
//! an end-to-end validation that the measurement pipeline is unbiased — the
//! recovered values must match the configured ones (tests assert this).

#![forbid(unsafe_code)]

pub mod fit;
pub mod lmbench;
pub mod mpptest;
pub mod perfmon;
pub mod powercal;

pub use fit::LineFit;
pub use lmbench::{lat_mem_rd, MemLatencyPoint};
pub use mpptest::{mpptest, HockneyFit};
pub use perfmon::{perfmon_cpi, CpiMeasurement};
pub use powercal::{power_deltas, PowerDeltas};
