//! Perfmon analog: measure the average time per on-chip instruction.
//!
//! The paper builds "a tool using the Perfmon API from UT-Knoxville to
//! automatically measure the average tc (time per on-chip computation
//! instruction), derived as CPI/f". Here the tool runs a pure-compute
//! microkernel on one simulated rank and divides observed wall time by the
//! instruction count — exactly what the hardware-counter version does.

use mps::{run, World};

/// Measured instruction-rate parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiMeasurement {
    /// Average seconds per on-chip instruction (`tc`, Table 1).
    pub tc_s: f64,
    /// Cycles per instruction at the measured frequency (`tc · f`).
    pub cpi: f64,
    /// Frequency the measurement ran at, Hz.
    pub f_hz: f64,
    /// Instructions retired by the microkernel.
    pub instructions: f64,
}

/// Measure `tc` and CPI on `world` with an `instructions`-long kernel.
///
/// The overlap factor is forced to 1 for the measurement (the paper
/// calibrates α separately, §VI.F).
pub fn perfmon_cpi(world: &World, instructions: f64) -> CpiMeasurement {
    assert!(instructions > 0.0, "need a positive instruction count");
    let w = world.clone().with_alpha(1.0);
    let report = run(&w, 1, |ctx| ctx.compute(instructions));
    let tc = report.span() / instructions;
    CpiMeasurement {
        tc_s: tc,
        cpi: tc * w.f_hz,
        f_hz: w.f_hz,
        instructions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::{dori, system_g};

    #[test]
    fn recovers_configured_cpi_on_system_g() {
        let w = World::new(system_g(), 2.8e9);
        let m = perfmon_cpi(&w, 1e7);
        let expect = w.cluster.node.cpu.base_cpi;
        assert!(
            (m.cpi - expect).abs() / expect < 1e-9,
            "measured CPI {} vs configured {expect}",
            m.cpi
        );
    }

    #[test]
    fn recovers_configured_cpi_on_dori() {
        let w = World::new(dori(), 2.0e9);
        let m = perfmon_cpi(&w, 1e6);
        let expect = w.cluster.node.cpu.base_cpi;
        assert!((m.cpi - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn tc_scales_inversely_with_frequency() {
        let hi = perfmon_cpi(&World::new(system_g(), 2.8e9), 1e6);
        let lo = perfmon_cpi(&World::new(system_g(), 1.6e9), 1e6);
        let ratio = lo.tc_s / hi.tc_s;
        assert!((ratio - 2.8 / 1.6).abs() < 1e-9, "ratio {ratio}");
        // CPI itself is frequency-independent.
        assert!((lo.cpi - hi.cpi).abs() < 1e-12);
    }

    #[test]
    fn measurement_ignores_world_alpha() {
        let base = World::new(system_g(), 2.8e9);
        let squeezed = base.clone().with_alpha(0.7);
        let a = perfmon_cpi(&base, 1e6);
        let b = perfmon_cpi(&squeezed, 1e6);
        assert!((a.tc_s - b.tc_s).abs() < 1e-18);
    }
}
