//! MPPTest analog: measure the Hockney parameters `ts` and `tw`.
//!
//! The paper obtains the startup and per-byte costs of both interconnects
//! (InfiniBand on SystemG, Ethernet on Dori) with MPPTest ping-pong runs.
//! This analog bounces messages of increasing size between two simulated
//! ranks and least-squares fits one-way time against message size.

use mps::{run, World};

use crate::fit::{fit_line, LineFit};

/// Fitted Hockney parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct HockneyFit {
    /// Startup time `ts`, seconds.
    pub ts: f64,
    /// Per-byte time `tw`, seconds/byte.
    pub tw: f64,
    /// Fit quality.
    pub r_squared: f64,
    /// The raw `(bytes, one-way seconds)` measurements.
    pub points: Vec<(f64, f64)>,
}

/// Ping-pong sweep over `sizes` (bytes, each a multiple of 8), `reps`
/// round trips per size.
pub fn mpptest(world: &World, sizes: &[u64], reps: usize) -> HockneyFit {
    assert!(sizes.len() >= 2, "need at least two message sizes to fit");
    assert!(reps > 0, "need at least one repetition");
    let w = world.clone().with_alpha(1.0);
    let mut points = Vec::with_capacity(sizes.len());
    for &bytes in sizes {
        assert!(bytes % 8 == 0, "sizes must be multiples of 8 bytes");
        let words = (bytes / 8) as usize;
        let report = run(&w, 2, move |ctx| {
            let payload = vec![0u64; words];
            for r in 0..reps as u64 {
                if ctx.rank() == 0 {
                    ctx.send(1, r, payload.clone());
                    let _ = ctx.recv::<u64>(1, r);
                } else {
                    let echo = ctx.recv::<u64>(0, r);
                    ctx.send(0, r, echo);
                }
            }
        });
        // Rank 0's finish time is `reps` round trips; one-way = rt / 2.
        let one_way = report.ranks[0].finish_s / (2.0 * reps as f64);
        points.push((bytes as f64, one_way));
    }
    let LineFit {
        intercept,
        slope,
        r_squared,
    } = fit_line(&points);
    HockneyFit {
        ts: intercept,
        tw: slope,
        r_squared,
        points,
    }
}

/// The standard MPPTest sweep: 0.5 KiB to 512 KiB.
pub fn default_sizes() -> Vec<u64> {
    (0..11).map(|i| 512u64 << i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::{dori, system_g};

    #[test]
    fn recovers_infiniband_parameters() {
        let w = World::new(system_g(), 2.8e9);
        let fit = mpptest(&w, &default_sizes(), 3);
        let link = &w.cluster.link;
        assert!(
            (fit.ts - link.startup_s).abs() / link.startup_s < 0.02,
            "ts {} vs {}",
            fit.ts,
            link.startup_s
        );
        assert!(
            (fit.tw - link.per_byte_s).abs() / link.per_byte_s < 0.02,
            "tw {} vs {}",
            fit.tw,
            link.per_byte_s
        );
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn recovers_ethernet_parameters() {
        let w = World::new(dori(), 2.0e9);
        let fit = mpptest(&w, &default_sizes(), 3);
        let link = &w.cluster.link;
        assert!((fit.ts - link.startup_s).abs() / link.startup_s < 0.02);
        assert!((fit.tw - link.per_byte_s).abs() / link.per_byte_s < 0.02);
    }

    #[test]
    fn ethernet_slower_than_infiniband() {
        let g = mpptest(&World::new(system_g(), 2.8e9), &default_sizes(), 2);
        let d = mpptest(&World::new(dori(), 2.0e9), &default_sizes(), 2);
        assert!(d.ts > g.ts * 5.0);
        assert!(d.tw > g.tw * 5.0);
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn odd_sizes_rejected() {
        let w = World::new(system_g(), 2.8e9);
        mpptest(&w, &[100, 200], 1);
    }
}
