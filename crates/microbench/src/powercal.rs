//! PowerPack-style differential power calibration.
//!
//! The paper reads `ΔPc`, `ΔPm`, and the idle powers directly from
//! PowerPack's component channels. The equivalent here: run a single-
//! component microkernel, divide the energy *above idle* by the component's
//! busy time. Because the measurement path goes through the same energy
//! meter the experiments use, recovering the configured deltas validates
//! the whole power-accounting chain.

use mps::{run, World};
use simcluster::units::{Seconds, Watts};
use simcluster::EnergyMeter;

/// Measured component power deltas and the idle baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerDeltas {
    /// CPU active delta at the measured frequency.
    pub delta_cpu_w: Watts,
    /// Memory active delta.
    pub delta_mem_w: Watts,
    /// Per-core system idle power.
    pub idle_w: Watts,
    /// Frequency of the measurement, Hz.
    pub f_hz: f64,
}

/// Measure `ΔPc`, `ΔPm` and the idle baseline on `world`.
///
/// Like PowerPack's per-component channels, each delta is read from that
/// component's own energy stream: energy above the component's idle share,
/// divided by the component's busy time.
pub fn power_deltas(world: &World) -> PowerDeltas {
    use simcluster::SegmentKind;
    let w = world.clone().with_alpha(1.0);
    let meter = EnergyMeter::new(w.cluster.node.clone(), w.f_hz);
    let idle = w.cluster.node.system_idle_w();

    // CPU kernel.
    let rep = run(&w, 1, |ctx| ctx.compute(1e7));
    let span = rep.span();
    let e = rep.energy(&w);
    let busy = rep.ranks[0].log.work_time(SegmentKind::Compute);
    let delta_cpu =
        (e.cpu_j - Watts::new(w.cluster.node.cpu.idle_w) * Seconds::new(span)) / Seconds::new(busy);

    // Memory kernel: a DRAM-resident working set (the cache-hit share lands
    // on the CPU channel and does not pollute the memory channel).
    let rep = run(&w, 1, |ctx| ctx.mem_access(1e6, 1 << 28));
    let span = rep.span();
    let e = rep.energy(&w);
    let busy = rep.ranks[0].log.work_time(SegmentKind::Memory);
    let delta_mem = (e.memory_j
        - Watts::new(w.cluster.node.memory.power.idle_w) * Seconds::new(span))
        / Seconds::new(busy);

    let _ = meter;
    PowerDeltas {
        delta_cpu_w: delta_cpu,
        delta_mem_w: delta_mem,
        idle_w: idle,
        f_hz: w.f_hz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::system_g;

    #[test]
    fn recovers_configured_cpu_delta() {
        let w = World::new(system_g(), 2.8e9);
        let d = power_deltas(&w);
        let expect = w.cluster.node.cpu.delta_power(2.8e9);
        assert!(
            (d.delta_cpu_w - expect).abs() / expect < 1e-6,
            "ΔPc {} vs {}",
            d.delta_cpu_w,
            expect
        );
    }

    #[test]
    fn recovers_configured_memory_delta() {
        let w = World::new(system_g(), 2.8e9);
        let d = power_deltas(&w);
        let expect = w.cluster.node.memory.power.delta();
        assert!((d.delta_mem_w - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn cpu_delta_follows_the_f_gamma_law() {
        let hi = power_deltas(&World::new(system_g(), 2.8e9));
        let lo = power_deltas(&World::new(system_g(), 1.6e9));
        // γ = 2 on SystemG: ΔPc(1.6) / ΔPc(2.8) = (1.6/2.8)².
        let ratio = lo.delta_cpu_w / hi.delta_cpu_w;
        assert!(
            (ratio - (1.6f64 / 2.8).powi(2)).abs() < 1e-6,
            "ratio {ratio}"
        );
        // Memory delta is frequency-independent.
        assert!((lo.delta_mem_w - hi.delta_mem_w).abs() < Watts::new(1e-9));
    }

    #[test]
    fn idle_matches_node_spec() {
        let w = World::new(system_g(), 2.8e9);
        let d = power_deltas(&w);
        assert_eq!(d.idle_w, w.cluster.node.system_idle_w());
    }
}
