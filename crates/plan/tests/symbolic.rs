//! Differential property suite for the parametric certifier: random
//! wildcard-free plans over random symbolic domains. The contract under
//! test (ISSUE satellite): **a certified verdict never contradicts the
//! concrete checker** — at 32 sampled world sizes per plan, every
//! certificate's plan must be concretely deadlock-free and its count
//! enclosures must contain the concrete totals. Refusals are allowed to
//! be conservative (the certified fragment is deliberately small), but a
//! seeded family of genuinely broken plans must *never* certify.

use plan::{analyze_plan, certify_plan, CommPlan, Cond, Domain, Expr, Op, ReduceOp, TagExpr};
use proptest::prelude::*;

/// A deterministic decision stream over drawn `u64`s (the in-tree
/// proptest has no combinator algebra, so plan/domain shapes are derived
/// from raw words).
struct Stream<'a> {
    words: &'a [u64],
    at: usize,
}

impl Stream<'_> {
    fn next(&mut self) -> u64 {
        let w = self.words[self.at % self.words.len()];
        self.at += 1;
        // Golden-ratio mix so reuse of the buffer stays decorrelated.
        w.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(self.at as u64))
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn const_in(&mut self, lo: i64, hi: i64) -> Expr {
        let span = u64::try_from(hi - lo).expect("positive span");
        Expr::Const(lo + i64::try_from(self.pick(span)).expect("in range"))
    }
}

/// A random certification domain. All minima are ≥ 8 (above every
/// generated shift distance, so the divisibility obligation always
/// discharges) and maxima ≤ 128 (so the concrete differential stays
/// cheap in debug builds). Returns the domain and whether it is
/// power-of-two (hypercube fragments are only generated over those).
fn draw_domain(s: &mut Stream) -> (Domain, bool) {
    if s.pick(2) == 0 {
        let min = 8 + s.pick(9);
        let max = (min + s.pick(113)).min(128);
        (Domain::between(min, max), false)
    } else {
        let min_lg = 3 + u32::try_from(s.pick(2)).expect("small");
        let max_lg = min_lg + u32::try_from(s.pick(4)).expect("small");
        (
            Domain::Pow2 {
                min_lg,
                max_lg: Some(max_lg.min(7)),
            },
            true,
        )
    }
}

/// One plan construct from the certifier's fragment, so most generated
/// plans certify and the differential is non-vacuous.
fn draw_fragment(s: &mut Stream, pow2: bool) -> Vec<Op> {
    match s.pick(if pow2 { 10 } else { 9 }) {
        0 => vec![Op::Compute {
            units: s.const_in(1, 100_000),
            scale: 1.0 + s.pick(4) as f64,
        }],
        1 => vec![Op::MemAccess {
            accesses: Expr::block_len(s.const_in(1, 10_000), Expr::P, Expr::Rank),
            scale: 1.0 + s.pick(8) as f64,
            ws: Expr::Const(1 << 16),
        }],
        2 => {
            // Shift round: send right by k, receive from the left by k.
            let k = s.const_in(1, 8);
            let tag = s.const_in(0, 64);
            vec![
                Op::Send {
                    to: (Expr::Rank + k.clone()) % Expr::P,
                    tag: TagExpr::Expr(tag.clone()),
                    bytes: s.const_in(1, 2048),
                },
                Op::Recv {
                    from: (Expr::Rank + Expr::P - k) % Expr::P,
                    tag: TagExpr::Expr(tag),
                },
            ]
        }
        3 => vec![Op::Barrier],
        4 => vec![Op::Bcast {
            root: Expr::Const(0),
            bytes: s.const_in(1, 4096),
        }],
        5 => vec![Op::Reduce {
            root: Expr::Const(0),
            elems: s.const_in(1, 64),
            op: ReduceOp::Sum,
        }],
        6 => vec![Op::AllReduce {
            elems: s.const_in(1, 64),
            op: ReduceOp::Max,
        }],
        7 => vec![Op::AllGather {
            bytes: Expr::block_len(s.const_in(1, 1024), Expr::P, Expr::Peer) * Expr::Const(8),
        }],
        8 => vec![Op::AllToAll {
            bytes: s.const_in(1, 512),
        }],
        // Hypercube butterfly: only sound (and only recognized) over
        // power-of-two domains.
        _ => vec![Op::Loop {
            count: Expr::P.log2(),
            body: vec![Op::Exchange {
                partner: Expr::Rank.xor(Expr::Var(0).pow2()),
                tag: TagExpr::Expr(s.const_in(0, 64)),
                bytes: s.const_in(1, 512),
            }],
        }],
    }
}

/// A whole plan: several fragments, some wrapped in uniform loops or
/// `p`-uniform branches.
fn draw_plan(s: &mut Stream, pow2: bool) -> CommPlan {
    let n = 1 + s.pick(5);
    let mut body = Vec::new();
    for _ in 0..n {
        let ops = draw_fragment(s, pow2);
        match s.pick(4) {
            0 | 1 => body.extend(ops),
            2 => body.push(Op::Loop {
                count: s.const_in(1, 4),
                body: ops,
            }),
            _ => {
                let (then, els) = if s.pick(2) == 0 {
                    (ops, Vec::new())
                } else {
                    (Vec::new(), ops)
                };
                body.push(Op::IfElse {
                    cond: Cond::Lt(Expr::P, Expr::Const(48)),
                    then,
                    els,
                });
            }
        }
    }
    CommPlan::new("generated", body)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The satellite contract: certified ⇒ concretely deadlock-free and
    /// count-enclosed at 32 sampled p per plan.
    #[test]
    fn certified_plans_agree_with_concrete_checker_at_32_sampled_p(
        words in proptest::collection::vec(any::<u64>(), 32),
        seed in any::<u64>(),
    ) {
        let mut s = Stream { words: &words, at: 0 };
        let (domain, pow2) = draw_domain(&mut s);
        let plan = draw_plan(&mut s, pow2);
        let cert = certify_plan(&plan, &domain);
        // Uncertified: conservative refusal is allowed; nothing to
        // contradict (the skewed-shift property below keeps this
        // non-vacuous).
        let ps = if cert.certified { domain.sample(32, seed) } else { Vec::new() };
        for p in ps {
            let pu = usize::try_from(p).expect("domains are clamped small");
            let a = analyze_plan(&plan, pu);
            prop_assert!(
                a.deadlock_free(),
                "certified plan rejected concretely at p={p}: {:?}",
                a.findings
            );
            let c = cert.counts(p).expect("admissible p evaluates");
            #[allow(clippy::cast_precision_loss)]
            {
                prop_assert!(
                    c.messages.contains(a.total.messages as f64),
                    "p={p}: messages {:?} !∋ {}", c.messages, a.total.messages
                );
                prop_assert!(
                    c.bytes.contains(a.total.bytes as f64),
                    "p={p}: bytes {:?} !∋ {}", c.bytes, a.total.bytes
                );
            }
            prop_assert!(c.wc.contains(a.total.wc), "p={p}: wc");
            prop_assert!(
                c.mem_accesses.contains(a.total.mem_accesses),
                "p={p}: mem"
            );
        }
    }

    /// Anti-vacuity: skewed shifts (offsets summing to s ≠ 0 mod P) are
    /// genuinely broken at every p > 2 — the certifier must refuse them,
    /// and the concrete checker must agree they are broken.
    #[test]
    fn skewed_shifts_never_certify(
        k_send in 1u64..6,
        skew in 1u64..3,
        p_probe in 8usize..40,
    ) {
        let k_recv = i64::try_from(k_send + skew).expect("small");
        let k_send = i64::try_from(k_send).expect("small");
        let plan = CommPlan::new(
            "skewed",
            vec![
                Op::Send {
                    to: (Expr::Rank + Expr::Const(k_send)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                    bytes: Expr::Const(8),
                },
                Op::Recv {
                    from: (Expr::Rank + Expr::P - Expr::Const(k_recv)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                },
            ],
        );
        let cert = certify_plan(&plan, &Domain::between(8, 128));
        prop_assert!(!cert.certified);
        let f = cert.failure.expect("refusal carries a witness");
        prop_assert!(f.reason.contains("sum to"), "{f}");
        let a = analyze_plan(&plan, p_probe);
        prop_assert!(!a.deadlock_free(), "skew {skew} undetected at p={p_probe}");
    }

    /// Certification is deterministic: the same plan and domain yield a
    /// byte-identical certificate (required for `revalidate` to be a
    /// meaningful machine check).
    #[test]
    fn certification_is_deterministic(
        words in proptest::collection::vec(any::<u64>(), 32),
    ) {
        let mut s = Stream { words: &words, at: 0 };
        let (domain, pow2) = draw_domain(&mut s);
        let plan = draw_plan(&mut s, pow2);
        let a = certify_plan(&plan, &domain);
        let b = certify_plan(&plan, &domain);
        prop_assert_eq!(a.certified, b.certified);
        prop_assert_eq!(a.to_json(), b.to_json());
        if a.certified {
            prop_assert!(a.revalidate(&plan).is_ok());
        }
    }
}

/// Non-vacuity meta-check: a healthy majority of generated plans must
/// actually certify (the differential above is meaningless if the
/// generator mostly produces refusals).
#[test]
fn generated_plans_mostly_certify() {
    let mut certified = 0;
    let total = 200;
    for case in 0..total {
        let words: Vec<u64> = (0..32u64)
            .map(|i| {
                let mut x = (case as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d) ^ i;
                x ^= x >> 33;
                x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
                x ^ (x >> 33)
            })
            .collect();
        let mut s = Stream {
            words: &words,
            at: 0,
        };
        let (domain, pow2) = draw_domain(&mut s);
        let plan = draw_plan(&mut s, pow2);
        if certify_plan(&plan, &domain).certified {
            certified += 1;
        }
    }
    assert!(
        certified * 2 > total,
        "only {certified}/{total} generated plans certified — differential is near-vacuous"
    );
}
