//! Ignored-by-default timing probes for the static checker at p = 1024
//! (`cargo test -p plan --release -- --ignored --nocapture perf_`).
//! They separate the three cost components of an abstract run: channel
//! traffic (ring), collective elaboration (alltoall with constant sizes),
//! and symbolic size evaluation (alltoall with `BlockLen` sizes).

use std::time::Instant;

use plan::{analyze_plan, CommPlan, Expr, Op, TagExpr};

const P: usize = 1024;

fn timed(name: &str, plan: &CommPlan) {
    let t0 = Instant::now();
    let analysis = analyze_plan(plan, P);
    let dt = t0.elapsed();
    assert!(analysis.deadlock_free(), "{:?}", analysis.findings);
    let ns = dt.as_nanos() as f64 / analysis.steps as f64;
    println!(
        "{name}: {} steps, {} msgs in {dt:?} ({ns:.0} ns/step)",
        analysis.steps, analysis.total.messages
    );
}

#[test]
#[ignore = "timing probe"]
fn perf_ring_chain() {
    let body = vec![Op::Loop {
        count: Expr::Const(2048),
        body: vec![
            Op::Send {
                to: (Expr::Rank + Expr::Const(1)) % Expr::P,
                tag: TagExpr::Expr(Expr::Const(1)),
                bytes: Expr::Const(64),
            },
            Op::Recv {
                from: (Expr::Rank + Expr::P - Expr::Const(1)) % Expr::P,
                tag: TagExpr::Expr(Expr::Const(1)),
            },
        ],
    }];
    timed("ring x2048", &CommPlan::new("ring", body));
}

#[test]
#[ignore = "timing probe"]
fn perf_alltoall_const() {
    let body = vec![Op::Loop {
        count: Expr::Const(5),
        body: vec![Op::AllToAll {
            bytes: Expr::Const(256),
        }],
    }];
    timed("alltoall const x5", &CommPlan::new("a2a-const", body));
}

#[test]
#[ignore = "timing probe"]
fn perf_alltoall_blocklen() {
    let body = vec![Op::Loop {
        count: Expr::Const(5),
        body: vec![Op::AllToAll {
            bytes: Expr::block_len(Expr::Const(64), Expr::P, Expr::Peer)
                * Expr::Const(16)
                * Expr::block_len(Expr::Const(64), Expr::P, Expr::Rank).max_of(Expr::Const(1)),
        }],
    }];
    timed("alltoall blocklen x5", &CommPlan::new("a2a-sym", body));
}
