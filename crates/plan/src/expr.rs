//! Symbolic integer expressions over `(p, rank, peer, loop variables)`.
//!
//! One [`Expr`] tree describes a value — a peer rank, a tag, a payload size,
//! a loop trip count — for *every* world size at once; the analyses in
//! [`crate::check`] evaluate it per rank at a concrete `p`, and
//! [`crate::lower`] evaluates it inside a live [`mps::Ctx`]. Evaluation is
//! total over checked 64-bit arithmetic: division by zero, overflow and
//! unbound variables surface as [`EvalError`] (which the static checker
//! turns into shape findings) rather than panics.

use std::fmt;
use std::ops;

/// A symbolic integer expression.
///
/// Arithmetic is exact signed 64-bit with checked overflow. Division and
/// remainder truncate toward zero, which coincides with floor semantics for
/// the non-negative quantities plans compute (lengths, ranks, distances).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Const(i64),
    /// The world size `p`.
    P,
    /// The executing rank.
    Rank,
    /// The peer variable bound by collective size expressions: the chunk's
    /// *destination* rank in [`crate::Op::AllToAll`] and the chunk's
    /// *originating* rank in [`crate::Op::AllGather`]. Unbound elsewhere.
    Peer,
    /// A loop variable in De Bruijn style: `Var(0)` is the index of the
    /// innermost enclosing [`crate::Op::Loop`], `Var(1)` the next one out.
    Var(usize),
    /// `a + b`.
    Add(Box<Expr>, Box<Expr>),
    /// `a - b`.
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`.
    Mul(Box<Expr>, Box<Expr>),
    /// `a / b`, truncating; error when `b == 0`.
    Div(Box<Expr>, Box<Expr>),
    /// `a % b`; error when `b == 0`.
    Mod(Box<Expr>, Box<Expr>),
    /// `min(a, b)`.
    Min(Box<Expr>, Box<Expr>),
    /// `max(a, b)`.
    Max(Box<Expr>, Box<Expr>),
    /// Bitwise `a ^ b` (the recursive-doubling partner pattern).
    Xor(Box<Expr>, Box<Expr>),
    /// `2^e`; error unless `0 <= e < 63`.
    Pow2(Box<Expr>),
    /// `floor(log2 e)`; error unless `e > 0`.
    Log2(Box<Expr>),
    /// Length of block `idx` when `total` items are split over `parts`
    /// ranks with the remainder spread over the low indices — the NPB
    /// `block_range` length: `total/parts + (idx < total % parts)`.
    BlockLen {
        /// Items to distribute.
        total: Box<Expr>,
        /// Number of blocks.
        parts: Box<Expr>,
        /// Which block.
        idx: Box<Expr>,
    },
}

/// Why an expression failed to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// Division or remainder by zero.
    DivByZero,
    /// 64-bit overflow.
    Overflow,
    /// `Log2` of a non-positive value, or `Pow2` outside `[0, 63)`.
    BadLog,
    /// `Var(depth)` with fewer than `depth + 1` enclosing loops.
    UnboundVar(usize),
    /// `Peer` outside a collective size expression.
    PeerUnavailable,
    /// `BlockLen` with non-positive `parts` or negative `total`/`idx`.
    BadBlock,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DivByZero => write!(f, "division by zero"),
            Self::Overflow => write!(f, "64-bit overflow"),
            Self::BadLog => write!(f, "log2/pow2 domain error"),
            Self::UnboundVar(d) => write!(f, "unbound loop variable Var({d})"),
            Self::PeerUnavailable => write!(f, "Peer used outside a collective size expression"),
            Self::BadBlock => write!(f, "BlockLen with invalid total/parts/idx"),
        }
    }
}

/// The evaluation environment: one rank's view of the world.
#[derive(Debug, Clone, Copy)]
pub struct Env<'a> {
    /// World size.
    pub p: i64,
    /// Executing rank.
    pub rank: i64,
    /// The bound peer, inside collective size expressions.
    pub peer: Option<i64>,
    /// Loop variable stack, outermost first (`Var(0)` reads the last).
    pub vars: &'a [i64],
}

impl Expr {
    /// Evaluate against `env`.
    pub fn eval(&self, env: &Env) -> Result<i64, EvalError> {
        match self {
            Self::Const(v) => Ok(*v),
            Self::P => Ok(env.p),
            Self::Rank => Ok(env.rank),
            Self::Peer => env.peer.ok_or(EvalError::PeerUnavailable),
            Self::Var(d) => {
                let n = env.vars.len();
                if *d < n {
                    Ok(env.vars[n - 1 - d])
                } else {
                    Err(EvalError::UnboundVar(*d))
                }
            }
            Self::Add(a, b) => a
                .eval(env)?
                .checked_add(b.eval(env)?)
                .ok_or(EvalError::Overflow),
            Self::Sub(a, b) => a
                .eval(env)?
                .checked_sub(b.eval(env)?)
                .ok_or(EvalError::Overflow),
            Self::Mul(a, b) => a
                .eval(env)?
                .checked_mul(b.eval(env)?)
                .ok_or(EvalError::Overflow),
            Self::Div(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(EvalError::DivByZero);
                }
                a.eval(env)?.checked_div(d).ok_or(EvalError::Overflow)
            }
            Self::Mod(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(EvalError::DivByZero);
                }
                a.eval(env)?.checked_rem(d).ok_or(EvalError::Overflow)
            }
            Self::Min(a, b) => Ok(a.eval(env)?.min(b.eval(env)?)),
            Self::Max(a, b) => Ok(a.eval(env)?.max(b.eval(env)?)),
            Self::Xor(a, b) => Ok(a.eval(env)? ^ b.eval(env)?),
            Self::Pow2(e) => {
                let v = e.eval(env)?;
                if (0..63).contains(&v) {
                    Ok(1i64 << v)
                } else {
                    Err(EvalError::BadLog)
                }
            }
            Self::Log2(e) => {
                let v = e.eval(env)?;
                if v > 0 {
                    Ok(i64::from(63 - v.leading_zeros()))
                } else {
                    Err(EvalError::BadLog)
                }
            }
            Self::BlockLen { total, parts, idx } => {
                let total = total.eval(env)?;
                let parts = parts.eval(env)?;
                let idx = idx.eval(env)?;
                if total < 0 || parts <= 0 || idx < 0 {
                    return Err(EvalError::BadBlock);
                }
                Ok(total / parts + i64::from(idx < total % parts))
            }
        }
    }

    /// `min(self, other)`.
    #[must_use]
    pub fn min_of(self, other: Expr) -> Expr {
        Expr::Min(Box::new(self), Box::new(other))
    }

    /// `max(self, other)`.
    #[must_use]
    pub fn max_of(self, other: Expr) -> Expr {
        Expr::Max(Box::new(self), Box::new(other))
    }

    /// `self ^ other` (bitwise).
    #[must_use]
    pub fn xor(self, other: Expr) -> Expr {
        Expr::Xor(Box::new(self), Box::new(other))
    }

    /// `2^self`.
    #[must_use]
    pub fn pow2(self) -> Expr {
        Expr::Pow2(Box::new(self))
    }

    /// `floor(log2 self)`.
    #[must_use]
    pub fn log2(self) -> Expr {
        Expr::Log2(Box::new(self))
    }

    /// NPB block length: `total/parts + (idx < total % parts)`.
    #[must_use]
    pub fn block_len(total: Expr, parts: Expr, idx: Expr) -> Expr {
        Expr::BlockLen {
            total: Box::new(total),
            parts: Box::new(parts),
            idx: Box::new(idx),
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Const(v)
    }
}

macro_rules! expr_binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$variant(Box::new(self), Box::new(rhs))
            }
        }
    };
}

expr_binop!(Add, add, Add);
expr_binop!(Sub, sub, Sub);
expr_binop!(Mul, mul, Mul);
expr_binop!(Div, div, Div);
expr_binop!(Rem, rem, Mod);

/// A boolean condition over the same environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// `a == b`.
    Eq(Expr, Expr),
    /// `a != b`.
    Ne(Expr, Expr),
    /// `a < b`.
    Lt(Expr, Expr),
    /// `a <= b`.
    Le(Expr, Expr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// Evaluate against `env`.
    pub fn eval(&self, env: &Env) -> Result<bool, EvalError> {
        match self {
            Self::Eq(a, b) => Ok(a.eval(env)? == b.eval(env)?),
            Self::Ne(a, b) => Ok(a.eval(env)? != b.eval(env)?),
            Self::Lt(a, b) => Ok(a.eval(env)? < b.eval(env)?),
            Self::Le(a, b) => Ok(a.eval(env)? <= b.eval(env)?),
            Self::And(a, b) => Ok(a.eval(env)? && b.eval(env)?),
            Self::Or(a, b) => Ok(a.eval(env)? || b.eval(env)?),
            Self::Not(c) => Ok(!c.eval(env)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(p: i64, rank: i64) -> Env<'static> {
        Env {
            p,
            rank,
            peer: None,
            vars: &[],
        }
    }

    #[test]
    fn arithmetic_and_builders() {
        let e = (Expr::Rank + Expr::Const(3)) * Expr::Const(2);
        assert_eq!(e.eval(&env(8, 5)), Ok(16));
        let e = Expr::P / Expr::Const(2) - Expr::Const(1);
        assert_eq!(e.eval(&env(8, 0)), Ok(3));
        assert_eq!((Expr::Rank % Expr::Const(3)).eval(&env(8, 7)), Ok(1));
        assert_eq!(Expr::Rank.xor(Expr::Const(1)).eval(&env(8, 6)), Ok(7));
        assert_eq!(
            Expr::Const(5).min_of(Expr::Const(9)).eval(&env(1, 0)),
            Ok(5)
        );
        assert_eq!(
            Expr::Const(5).max_of(Expr::Const(9)).eval(&env(1, 0)),
            Ok(9)
        );
    }

    #[test]
    fn pow2_log2_roundtrip() {
        for v in [1i64, 2, 3, 7, 8, 1024] {
            let lg = Expr::Const(v).log2().eval(&env(1, 0)).unwrap();
            assert_eq!(lg, i64::from(63 - v.leading_zeros()));
            let back = Expr::Const(lg).pow2().eval(&env(1, 0)).unwrap();
            assert!(back <= v && v < back * 2);
        }
        assert_eq!(
            Expr::Const(0).log2().eval(&env(1, 0)),
            Err(EvalError::BadLog)
        );
        assert_eq!(
            Expr::Const(64).pow2().eval(&env(1, 0)),
            Err(EvalError::BadLog)
        );
    }

    #[test]
    fn block_len_matches_npb_block_range() {
        // Mirror of npb's block_range length for a few (total, parts).
        for (total, parts) in [(16i64, 4i64), (7, 3), (16, 5), (8, 12)] {
            let mut sum = 0;
            for idx in 0..parts {
                let len = Expr::block_len(Expr::Const(total), Expr::Const(parts), Expr::Const(idx))
                    .eval(&env(1, 0))
                    .unwrap();
                let base = total / parts;
                let extra = total % parts;
                assert_eq!(len, base + i64::from(idx < extra));
                sum += len;
            }
            assert_eq!(sum, total, "blocks must cover total exactly");
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert_eq!(
            (Expr::Const(1) / Expr::Const(0)).eval(&env(1, 0)),
            Err(EvalError::DivByZero)
        );
        assert_eq!(
            (Expr::Const(i64::MAX) + Expr::Const(1)).eval(&env(1, 0)),
            Err(EvalError::Overflow)
        );
        assert_eq!(Expr::Peer.eval(&env(4, 0)), Err(EvalError::PeerUnavailable));
        assert_eq!(Expr::Var(0).eval(&env(4, 0)), Err(EvalError::UnboundVar(0)));
    }

    #[test]
    fn de_bruijn_vars_read_innermost_first() {
        let vars = [10i64, 20, 30];
        let e = Env {
            p: 4,
            rank: 0,
            peer: None,
            vars: &vars,
        };
        assert_eq!(Expr::Var(0).eval(&e), Ok(30));
        assert_eq!(Expr::Var(1).eval(&e), Ok(20));
        assert_eq!(Expr::Var(2).eval(&e), Ok(10));
    }

    #[test]
    fn conds() {
        let e = env(8, 3);
        assert!(Cond::Eq(Expr::Rank, Expr::Const(3)).eval(&e).unwrap());
        assert!(Cond::Ne(Expr::Rank, Expr::P).eval(&e).unwrap());
        assert!(Cond::Lt(Expr::Rank, Expr::P).eval(&e).unwrap());
        assert!(Cond::Not(Box::new(Cond::Le(Expr::P, Expr::Rank)))
            .eval(&e)
            .unwrap());
        assert!(Cond::And(
            Box::new(Cond::Le(Expr::Const(0), Expr::Rank)),
            Box::new(Cond::Lt(Expr::Rank, Expr::P)),
        )
        .eval(&e)
        .unwrap());
        assert!(Cond::Or(
            Box::new(Cond::Eq(Expr::Rank, Expr::Const(99))),
            Box::new(Cond::Lt(Expr::Rank, Expr::P)),
        )
        .eval(&e)
        .unwrap());
    }
}
