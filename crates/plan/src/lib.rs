//! # plan — a statically analyzable communication-plan IR
//!
//! A [`CommPlan`] describes a parallel kernel's communication skeleton as
//! one declarative op list parameterized over symbolic rank/size
//! expressions ([`Expr`]), so a *single* plan covers every world size `p`.
//! The crate then offers two consumers of the same IR:
//!
//! * **Static analysis** ([`analyze_plan`]) — without executing anything,
//!   resolve every symbolic peer/tag/size at a concrete `p`, mirror the
//!   exact message streams of [`mps`]'s collectives, and decide
//!   matching/shape validity and deadlock freedom, with witnesses
//!   (wait-for cycles, unmatched ops, tag mismatches). Verdicts are exact
//!   for wildcard-free plans and explicitly conservative otherwise
//!   ([`PlanAnalysis::exact`]). The `isoee` crate's `plancost` module
//!   lowers an analysis to the iso-energy model's Eq. 13/15 terms as
//!   interval enclosures (it lives there, next to the model mirrors, to
//!   keep this crate's dependency footprint at `mps` alone).
//! * **Lowering** ([`lower`]) — compile the same plan onto the [`mps`]
//!   runtime, so dynamic runs (and the `verify` explorer) execute exactly
//!   the messages the statics reasoned about.
//!
//! ```
//! use plan::{analyze_plan, CommPlan, Expr, Op, TagExpr};
//!
//! // Every rank sends right, receives from left — at any p.
//! let ring = CommPlan::new(
//!     "ring",
//!     vec![
//!         Op::Send {
//!             to: (Expr::Rank + Expr::Const(1)) % Expr::P,
//!             tag: TagExpr::Expr(Expr::Const(1)),
//!             bytes: Expr::Const(1024),
//!         },
//!         Op::Recv {
//!             from: (Expr::Rank + Expr::P - Expr::Const(1)) % Expr::P,
//!             tag: TagExpr::Expr(Expr::Const(1)),
//!         },
//!     ],
//! );
//! let analysis = analyze_plan(&ring, 1024);
//! assert!(analysis.deadlock_free());
//! assert_eq!(analysis.total.messages, 1024);
//! ```

#![forbid(unsafe_code)]

mod check;
mod elaborate;
mod expr;
mod ir;
mod lower;
mod symbolic;
mod timed;

pub use check::{analyze_plan, InexactWitness, PlanAnalysis, PlanFinding, PlanWaitEdge};
pub use elaborate::{AOp, CollKind, CollStats, RankCost, RankCursor, ShapeIssue, COLL_KINDS};
pub use expr::{Cond, Env, EvalError, Expr};
pub use ir::{CommPlan, Op, TagExpr};
pub use lower::lower;
pub use symbolic::{
    certify_plan, certify_plan_with, CountRange, Domain, Obligation, ParametricCert, SymCounts,
    SymFailure, DEFAULT_CUTOFF,
};
pub use timed::{Step, TimedCursor};
// Re-export the runtime op vocabulary plans share with `mps`.
pub use mps::{internal_tag, ReduceOp, USER_TAG_LIMIT};
