//! Whole-plan static analysis: matching/shape checking and deadlock
//! detection over the abstract message semantics of `mps`.
//!
//! The checker runs every rank's [`RankCursor`] to quiescence under the
//! runtime's own matching rules — eager sends that never block, per
//! `(src, dst)` FIFO channels with tag-skipping receives — without
//! executing any user code or spawning any thread. For wildcard-free plans
//! this canonical run is **exact**: matching is structural (the k-th
//! receive of tag `t` on a channel always pairs with the k-th send of tag
//! `t`), so enabledness is schedule-independent and one run decides
//! deadlock for *all* schedules. A [`Op::RecvAny`](crate::Op::RecvAny)
//! breaks confluence; the checker then proceeds with the lowest matching
//! source (still a feasible schedule, so reported deadlocks remain real)
//! but marks the verdict conservative ([`PlanAnalysis::exact`] = false):
//! a clean conservative verdict does **not** prove other schedules safe.
//!
//! Quiescence with unfinished ranks yields findings with witnesses: the
//! wait-for cycle for circular waits, unmatched receives for dead-end
//! waits (plus tag-mismatch evidence when the channel holds messages with
//! different tags than the one wanted), and leftover never-received
//! messages as unmatched sends.

use std::collections::VecDeque;
use std::fmt;

use crate::elaborate::{AOp, CollStats, RankCost, RankCursor, ShapeIssue, COLL_KINDS};
use crate::ir::CommPlan;

/// Cap on recorded findings: a pathological plan at large `p` can produce
/// one finding per rank pair; everything beyond the cap is counted, not
/// stored.
const MAX_FINDINGS: usize = 1024;

/// One edge of a wait-for witness: `rank` is blocked receiving `tag` from
/// `on`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanWaitEdge {
    /// The blocked rank.
    pub rank: usize,
    /// The rank it waits for.
    pub on: usize,
    /// The tag it waits for.
    pub tag: u64,
}

/// A defect found by the static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanFinding {
    /// A shape violation (bad peer, self-message, oversized tag, failed
    /// expression) on one rank; the rank stops elaborating there.
    Shape {
        /// The offending rank.
        rank: usize,
        /// What went wrong.
        issue: ShapeIssue,
    },
    /// A circular wait: every edge's `on` is the next edge's `rank`.
    DeadlockCycle {
        /// The cycle, as wait-for edges in order.
        cycle: Vec<PlanWaitEdge>,
    },
    /// A receive that can never be satisfied (the source finished, faulted,
    /// or is itself stuck outside any cycle). `from` is `None` for a
    /// wildcard receive.
    UnmatchedRecv {
        /// The blocked rank.
        rank: usize,
        /// The awaited source, if specific.
        from: Option<usize>,
        /// The awaited tag.
        tag: u64,
    },
    /// Evidence accompanying an [`PlanFinding::UnmatchedRecv`]: the awaited
    /// channel holds messages, but with different tags.
    TagMismatch {
        /// The blocked receiver.
        receiver: usize,
        /// The sender whose messages sit unmatched.
        sender: usize,
        /// The tag the receiver wants.
        wanted: u64,
        /// Tags actually available on the channel (deduped, truncated).
        available: Vec<u64>,
    },
    /// Messages sent but never received (reported when no rank is blocked;
    /// under a deadlock the leftovers are implied by the deadlock itself).
    UnmatchedSend {
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Bytes of the first such message.
        bytes: u64,
        /// How many messages with this `(src, dst, tag)` were left over.
        count: u64,
    },
    /// A wildcard receive had several simultaneously matching sources in
    /// the canonical run — the match is schedule-dependent (informational;
    /// it is what forces `exact = false`).
    WildcardChoice {
        /// The receiving rank.
        rank: usize,
        /// The racing tag.
        tag: u64,
        /// Sources that could match at that moment.
        sources: Vec<usize>,
    },
}

impl PlanFinding {
    /// Whether this finding denies the deadlock-freedom certificate (shape
    /// errors and unmatched/circular receives do; leftover sends and
    /// wildcard choices do not).
    #[must_use]
    pub fn blocks_certification(&self) -> bool {
        matches!(
            self,
            Self::Shape { .. } | Self::DeadlockCycle { .. } | Self::UnmatchedRecv { .. }
        )
    }
}

impl fmt::Display for PlanFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shape { rank, issue } => write!(f, "rank {rank}: {issue}"),
            Self::DeadlockCycle { cycle } => {
                write!(f, "deadlock cycle:")?;
                for e in cycle {
                    write!(f, " [rank {} waits on rank {} tag {}]", e.rank, e.on, e.tag)?;
                }
                Ok(())
            }
            Self::UnmatchedRecv { rank, from, tag } => match from {
                Some(s) => write!(f, "rank {rank}: recv(from {s}, tag {tag}) never matched"),
                None => write!(f, "rank {rank}: recv_any(tag {tag}) never matched"),
            },
            Self::TagMismatch {
                receiver,
                sender,
                wanted,
                available,
            } => write!(
                f,
                "rank {receiver} wants tag {wanted} from rank {sender}, \
                 channel holds tags {available:?}"
            ),
            Self::UnmatchedSend {
                src,
                dst,
                tag,
                bytes,
                count,
            } => write!(
                f,
                "{count} unmatched send(s) {src} -> {dst} tag {tag} ({bytes} bytes)"
            ),
            Self::WildcardChoice { rank, tag, sources } => write!(
                f,
                "rank {rank}: recv_any(tag {tag}) could match any of {sources:?}"
            ),
        }
    }
}

/// Witness for a conservative verdict: where exactness was lost. Points
/// at the first wildcard receive of the lowest rank that executed one (op
/// indices count abstract comm ops in that rank's elaboration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InexactWitness {
    /// The lowest rank whose stream contains a wildcard receive.
    pub rank: usize,
    /// The emitted-op index of that rank's first wildcard receive.
    pub op_index: u64,
}

impl fmt::Display for InexactWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {}, op {}", self.rank, self.op_index)
    }
}

/// The result of [`analyze_plan`].
#[derive(Debug, Clone)]
pub struct PlanAnalysis {
    /// The analyzed world size.
    pub p: usize,
    /// All findings (capped at an internal limit; see
    /// [`PlanAnalysis::findings_truncated`]).
    pub findings: Vec<PlanFinding>,
    /// Whether the finding list was truncated at the cap.
    pub findings_truncated: bool,
    /// Whether the verdict is exact (no wildcard receive executed at
    /// `p > 2`); conservative verdicts prove deadlocks real but cannot
    /// prove their absence.
    pub exact: bool,
    /// When `exact` is false: the first non-exact op (lowest rank with a
    /// wildcard receive, and that rank's first wildcard op index).
    pub first_inexact: Option<InexactWitness>,
    /// Whether every rank ran to completion.
    pub completed: bool,
    /// Abstract comm ops processed (a work metric for reports).
    pub steps: u64,
    /// Cost totals summed over ranks.
    pub total: RankCost,
    /// Per-collective-family totals summed over ranks.
    pub colls: [CollStats; COLL_KINDS],
    /// Per-rank cost totals (index = rank).
    pub per_rank: Vec<RankCost>,
}

impl PlanAnalysis {
    /// The deadlock-freedom certificate: every rank completed, no finding
    /// denies it, and the verdict is exact.
    #[must_use]
    pub fn deadlock_free(&self) -> bool {
        self.completed && self.exact && !self.findings.iter().any(PlanFinding::blocks_certification)
    }

    /// Completely clean: completed with no findings of any kind.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.completed && self.findings.is_empty() && !self.findings_truncated
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Running,
    /// Blocked receiving `tag`; `from = None` is a wildcard.
    Blocked {
        from: Option<usize>,
        tag: u64,
    },
    Finished,
    Faulted,
}

#[derive(Debug, Clone, Copy)]
struct Msg {
    tag: u64,
    bytes: u64,
}

/// A `src -> dst` message queue. There are `p²` of these (a million at
/// p = 1024), and in well-formed plans almost every one holds at most a
/// single in-flight message at a time, so the ≤1 case is stored inline —
/// no allocation, no pointer chase — and only transient pileups (a rank
/// racing ahead through eager sends) spill to a boxed deque.
#[derive(Debug, Default)]
enum Chan {
    #[default]
    Empty,
    One(Msg),
    // Boxed on purpose: the variant must stay pointer-sized so the whole
    // enum is 24 bytes and the p² channel array stays allocation-free in
    // the common case.
    #[allow(clippy::box_collection)]
    Many(Box<VecDeque<Msg>>),
}

impl Chan {
    fn push(&mut self, m: Msg) {
        match self {
            Self::Empty => *self = Self::One(m),
            Self::One(first) => {
                let mut q = VecDeque::with_capacity(4);
                q.push_back(*first);
                q.push_back(m);
                *self = Self::Many(Box::new(q));
            }
            Self::Many(q) => q.push_back(m),
        }
    }

    /// Remove the oldest message with `tag` (the tag-skipping FIFO match).
    fn take_tag(&mut self, tag: u64) -> bool {
        match self {
            Self::Empty => false,
            Self::One(m) => {
                let hit = m.tag == tag;
                if hit {
                    *self = Self::Empty;
                }
                hit
            }
            Self::Many(q) => {
                let Some(pos) = q.iter().position(|m| m.tag == tag) else {
                    return false;
                };
                q.remove(pos);
                if q.len() == 1 {
                    *self = Self::One(q[0]);
                }
                true
            }
        }
    }

    fn has_tag(&self, tag: u64) -> bool {
        match self {
            Self::Empty => false,
            Self::One(m) => m.tag == tag,
            Self::Many(q) => q.iter().any(|m| m.tag == tag),
        }
    }

    fn is_empty(&self) -> bool {
        matches!(self, Self::Empty)
    }

    /// Snapshot of the queued messages, oldest first (report paths only).
    fn msgs(&self) -> Vec<Msg> {
        match self {
            Self::Empty => Vec::new(),
            Self::One(m) => vec![*m],
            Self::Many(q) => q.iter().copied().collect(),
        }
    }
}

struct Checker<'p> {
    p: usize,
    cursors: Vec<RankCursor<'p>>,
    status: Vec<Status>,
    /// Channel `src -> dst` at index `dst * p + src` — destination-major,
    /// so a receiving rank's wildcard scan and matching reads walk one
    /// contiguous `p`-entry row instead of striding across the whole
    /// `p²` array.
    channels: Vec<Chan>,
    /// The receive a blocked rank must retry when woken (a blocked rank's
    /// cursor has already moved past it).
    pending: Vec<Option<AOp>>,
    findings: Vec<PlanFinding>,
    findings_truncated: bool,
    exact: bool,
    steps: u64,
}

impl<'p> Checker<'p> {
    fn push_finding(&mut self, f: PlanFinding) {
        if self.findings.len() < MAX_FINDINGS {
            self.findings.push(f);
        } else {
            self.findings_truncated = true;
        }
    }

    fn take_match(&mut self, src: usize, dst: usize, tag: u64) -> bool {
        self.channels[dst * self.p + src].take_tag(tag)
    }

    /// Run rank `r` until it blocks, finishes, or faults. Returns ranks to
    /// wake.
    fn run_rank(&mut self, r: usize, wake: &mut Vec<usize>) {
        loop {
            // A rank woken from a block retries its stashed receive; its
            // cursor already consumed that op.
            let next = match self.pending[r].take() {
                Some(op) => Ok(Some(op)),
                None => self.cursors[r].next_comm(),
            };
            match next {
                Err(issue) => {
                    self.push_finding(PlanFinding::Shape { rank: r, issue });
                    self.status[r] = Status::Faulted;
                    return;
                }
                Ok(None) => {
                    self.status[r] = Status::Finished;
                    return;
                }
                Ok(Some(op)) => {
                    self.steps += 1;
                    match op {
                        AOp::Send { to, tag, bytes } => {
                            if let Status::Blocked { from, tag: want } = self.status[to] {
                                if tag == want && from == Some(r) {
                                    // Rendezvous fast path: the destination
                                    // is blocked on exactly this message
                                    // (its channel held no matching tag, so
                                    // this send is the FIFO match) —
                                    // satisfy the stashed receive directly,
                                    // skipping the channel round-trip.
                                    debug_assert!(matches!(
                                        self.pending[to],
                                        Some(AOp::Recv { .. })
                                    ));
                                    self.pending[to] = None;
                                    self.status[to] = Status::Running;
                                    wake.push(to);
                                    continue;
                                }
                                // Wildcard waits re-scan their channels on
                                // wake, so queue first, then wake.
                                if tag == want && from.is_none() {
                                    self.status[to] = Status::Running;
                                    wake.push(to);
                                }
                            }
                            self.channels[to * self.p + r].push(Msg { tag, bytes });
                        }
                        AOp::Recv { from, tag } => {
                            if !self.take_match(from, r, tag) {
                                self.pending[r] = Some(op);
                                self.status[r] = Status::Blocked {
                                    from: Some(from),
                                    tag,
                                };
                                return;
                            }
                        }
                        AOp::RecvAny { tag } => {
                            let row = &self.channels[r * self.p..(r + 1) * self.p];
                            let sources: Vec<usize> = (0..self.p)
                                .filter(|&s| s != r && row[s].has_tag(tag))
                                .collect();
                            if sources.is_empty() {
                                self.pending[r] = Some(op);
                                self.status[r] = Status::Blocked { from: None, tag };
                                return;
                            }
                            // A wildcard at p > 2 is schedule-dependent in
                            // general, even when only one source matches
                            // right now (another could have arrived first
                            // under a different interleaving).
                            if self.p > 2 {
                                self.exact = false;
                            }
                            if sources.len() > 1 {
                                self.push_finding(PlanFinding::WildcardChoice {
                                    rank: r,
                                    tag,
                                    sources: sources.clone(),
                                });
                            }
                            let chosen = sources[0];
                            let took = self.take_match(chosen, r, tag);
                            debug_assert!(took, "source just scanned non-empty");
                        }
                    }
                }
            }
        }
    }

    /// Post-quiescence deadlock analysis over the blocked ranks.
    fn report_blocked(&mut self) {
        // Wait-for graph restricted to specific waits on unfinished ranks.
        let next = |checker: &Self, r: usize| -> Option<usize> {
            match checker.status[r] {
                Status::Blocked { from: Some(s), .. }
                    if matches!(checker.status[s], Status::Blocked { .. }) =>
                {
                    Some(s)
                }
                _ => None,
            }
        };

        let mut color = vec![0u8; self.p]; // 0 unvisited, 1 on path, 2 done
        let mut in_cycle = vec![false; self.p];
        for start in 0..self.p {
            if color[start] != 0 || !matches!(self.status[start], Status::Blocked { .. }) {
                continue;
            }
            let mut path: Vec<usize> = Vec::new();
            let mut cur = start;
            loop {
                if color[cur] == 1 {
                    // Found a cycle: the path suffix starting at `cur`.
                    let pos = path.iter().position(|&x| x == cur).expect("on path");
                    let cycle: Vec<PlanWaitEdge> = path[pos..]
                        .iter()
                        .map(|&rank| {
                            let Status::Blocked { from, tag } = self.status[rank] else {
                                unreachable!("cycle members are blocked")
                            };
                            in_cycle[rank] = true;
                            PlanWaitEdge {
                                rank,
                                on: from.expect("cycle edges are specific"),
                                tag,
                            }
                        })
                        .collect();
                    self.push_finding(PlanFinding::DeadlockCycle { cycle });
                    break;
                }
                if color[cur] == 2 {
                    break;
                }
                color[cur] = 1;
                path.push(cur);
                match next(self, cur) {
                    Some(n) => cur = n,
                    None => break,
                }
            }
            for &x in &path {
                color[x] = 2;
            }
        }

        // Every blocked rank outside a cycle: an unmatchable receive.
        for (r, cyclic) in in_cycle.iter().enumerate() {
            let Status::Blocked { from, tag } = self.status[r] else {
                continue;
            };
            if *cyclic {
                continue;
            }
            self.push_finding(PlanFinding::UnmatchedRecv { rank: r, from, tag });
            // Tag-mismatch evidence: the awaited channel holds messages,
            // just not the wanted tag.
            if let Some(s) = from {
                let q = &self.channels[r * self.p + s];
                if !q.is_empty() {
                    let mut available: Vec<u64> = Vec::new();
                    for m in q.msgs() {
                        if !available.contains(&m.tag) {
                            available.push(m.tag);
                        }
                        if available.len() >= 4 {
                            break;
                        }
                    }
                    self.push_finding(PlanFinding::TagMismatch {
                        receiver: r,
                        sender: s,
                        wanted: tag,
                        available,
                    });
                }
            }
        }
    }

    /// Leftover never-received messages, aggregated per `(src, dst, tag)`.
    fn report_leftovers(&mut self) {
        for src in 0..self.p {
            for dst in 0..self.p {
                let q = std::mem::take(&mut self.channels[dst * self.p + src]);
                let mut seen: Vec<(u64, u64, u64)> = Vec::new(); // (tag, bytes, count)
                for m in q.msgs() {
                    if let Some(e) = seen.iter_mut().find(|e| e.0 == m.tag) {
                        e.2 += 1;
                    } else {
                        seen.push((m.tag, m.bytes, 1));
                    }
                }
                for (tag, bytes, count) in seen {
                    self.push_finding(PlanFinding::UnmatchedSend {
                        src,
                        dst,
                        tag,
                        bytes,
                        count,
                    });
                }
            }
        }
    }
}

/// Statically analyze `plan` at world size `p`: shape, matching, deadlock
/// and cost accounting in one pass, without executing anything.
///
/// # Panics
/// Panics when `p == 0`.
#[must_use]
pub fn analyze_plan(plan: &CommPlan, p: usize) -> PlanAnalysis {
    assert!(p >= 1, "need at least one rank");
    let mut checker = Checker {
        p,
        cursors: (0..p).map(|r| RankCursor::new(plan, p, r)).collect(),
        status: vec![Status::Running; p],
        channels: (0..p * p).map(|_| Chan::Empty).collect(),
        pending: vec![None; p],
        findings: Vec::new(),
        findings_truncated: false,
        exact: true,
        steps: 0,
    };

    let mut worklist: Vec<usize> = (0..p).rev().collect();
    let mut wake: Vec<usize> = Vec::new();
    while let Some(r) = worklist.pop() {
        if checker.status[r] != Status::Running {
            continue;
        }
        checker.run_rank(r, &mut wake);
        worklist.append(&mut wake);
    }

    let any_blocked = checker
        .status
        .iter()
        .any(|s| matches!(s, Status::Blocked { .. }));
    if any_blocked {
        checker.report_blocked();
    } else {
        checker.report_leftovers();
    }

    let completed = checker.status.iter().all(|s| *s == Status::Finished);
    let mut total = RankCost::default();
    let mut colls = [CollStats::default(); COLL_KINDS];
    let mut per_rank = Vec::with_capacity(p);
    let mut exact = checker.exact;
    let mut first_inexact = None;
    for (rank, c) in checker.cursors.iter().enumerate() {
        total.absorb(&c.cost);
        for (t, s) in colls.iter_mut().zip(&c.colls) {
            t.calls += s.calls;
            t.messages += s.messages;
            t.bytes += s.bytes;
        }
        per_rank.push(c.cost);
        // A wildcard that was emitted but never executed (rank faulted
        // first) still poisons exactness conservatively.
        if c.saw_wildcard && p > 2 {
            exact = false;
            if first_inexact.is_none() {
                first_inexact = Some(InexactWitness {
                    rank,
                    op_index: c.first_wildcard_op.unwrap_or(0),
                });
            }
        }
    }

    PlanAnalysis {
        p,
        findings: checker.findings,
        findings_truncated: checker.findings_truncated,
        exact,
        first_inexact,
        completed,
        steps: checker.steps,
        total,
        colls,
        per_rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Cond, Expr};
    use crate::ir::{Op, TagExpr};

    fn tag(t: i64) -> TagExpr {
        TagExpr::Expr(Expr::Const(t))
    }

    /// Ops executed only by `rank`.
    fn on(rank: i64, ops: Vec<Op>) -> Op {
        Op::IfElse {
            cond: Cond::Eq(Expr::Rank, Expr::Const(rank)),
            then: ops,
            els: vec![],
        }
    }

    #[test]
    fn clean_ring_certifies_at_many_sizes() {
        // Every rank sends right, receives from left.
        let plan = CommPlan::new(
            "ring",
            vec![
                Op::Send {
                    to: (Expr::Rank + Expr::Const(1)) % Expr::P,
                    tag: tag(1),
                    bytes: Expr::Const(64),
                },
                Op::Recv {
                    from: (Expr::Rank + Expr::P - Expr::Const(1)) % Expr::P,
                    tag: tag(1),
                },
            ],
        );
        for p in [2usize, 3, 5, 16, 64] {
            let a = analyze_plan(&plan, p);
            assert!(a.deadlock_free(), "p={p}: {:?}", a.findings);
            assert!(a.clean(), "p={p}");
            assert_eq!(a.total.messages, p as u64);
            assert_eq!(a.total.bytes, 64 * p as u64);
        }
    }

    #[test]
    fn cyclic_recv_before_send_deadlocks_with_cycle_witness() {
        // Two ranks both receive before sending: classic circular wait.
        let plan = CommPlan::new(
            "cycle",
            vec![
                Op::Recv {
                    from: Expr::Const(1) - Expr::Rank,
                    tag: tag(7),
                },
                Op::Send {
                    to: Expr::Const(1) - Expr::Rank,
                    tag: tag(7),
                    bytes: Expr::Const(8),
                },
            ],
        );
        let a = analyze_plan(&plan, 2);
        assert!(!a.deadlock_free());
        assert!(!a.completed);
        let cycle = a.findings.iter().find_map(|f| match f {
            PlanFinding::DeadlockCycle { cycle } => Some(cycle),
            _ => None,
        });
        let cycle = cycle.expect("cycle witness");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.iter().all(|e| e.tag == 7));
    }

    #[test]
    fn missing_sender_reports_unmatched_recv() {
        let plan = CommPlan::new(
            "norecv",
            vec![on(
                0,
                vec![Op::Recv {
                    from: Expr::Const(1),
                    tag: tag(3),
                }],
            )],
        );
        let a = analyze_plan(&plan, 2);
        assert!(!a.deadlock_free());
        assert!(a.findings.contains(&PlanFinding::UnmatchedRecv {
            rank: 0,
            from: Some(1),
            tag: 3
        }));
    }

    #[test]
    fn wrong_tag_reports_mismatch_evidence() {
        let plan = CommPlan::new(
            "wrongtag",
            vec![
                on(
                    1,
                    vec![Op::Send {
                        to: Expr::Const(0),
                        tag: tag(5),
                        bytes: Expr::Const(16),
                    }],
                ),
                on(
                    0,
                    vec![Op::Recv {
                        from: Expr::Const(1),
                        tag: tag(6),
                    }],
                ),
            ],
        );
        let a = analyze_plan(&plan, 2);
        assert!(a.findings.iter().any(|f| matches!(
            f,
            PlanFinding::TagMismatch {
                receiver: 0,
                sender: 1,
                wanted: 6,
                ..
            }
        )));
    }

    #[test]
    fn extra_send_reports_unmatched_send_but_still_completes() {
        let plan = CommPlan::new(
            "extra",
            vec![on(
                0,
                vec![Op::Send {
                    to: Expr::Const(1),
                    tag: tag(9),
                    bytes: Expr::Const(32),
                }],
            )],
        );
        let a = analyze_plan(&plan, 2);
        assert!(a.completed);
        assert!(!a.clean());
        assert!(a.deadlock_free(), "leftover sends do not deadlock");
        assert!(a.findings.contains(&PlanFinding::UnmatchedSend {
            src: 0,
            dst: 1,
            tag: 9,
            bytes: 32,
            count: 1
        }));
    }

    #[test]
    fn tag_skipping_matches_out_of_order_sends() {
        // Rank 1 sends tags 1 then 2; rank 0 receives 2 then 1.
        let plan = CommPlan::new(
            "skip",
            vec![
                on(
                    1,
                    vec![
                        Op::Send {
                            to: Expr::Const(0),
                            tag: tag(1),
                            bytes: Expr::Const(8),
                        },
                        Op::Send {
                            to: Expr::Const(0),
                            tag: tag(2),
                            bytes: Expr::Const(8),
                        },
                    ],
                ),
                on(
                    0,
                    vec![
                        Op::Recv {
                            from: Expr::Const(1),
                            tag: tag(2),
                        },
                        Op::Recv {
                            from: Expr::Const(1),
                            tag: tag(1),
                        },
                    ],
                ),
            ],
        );
        let a = analyze_plan(&plan, 2);
        assert!(a.clean(), "{:?}", a.findings);
    }

    #[test]
    fn wildcard_is_exact_at_p2_conservative_at_p3() {
        let body = vec![
            on(
                1,
                vec![Op::Send {
                    to: Expr::Const(0),
                    tag: tag(4),
                    bytes: Expr::Const(8),
                }],
            ),
            on(0, vec![Op::RecvAny { tag: tag(4) }]),
        ];
        let a2 = analyze_plan(&CommPlan::new("w", body.clone()), 2);
        assert!(a2.exact && a2.deadlock_free(), "{:?}", a2.findings);
        assert_eq!(a2.first_inexact, None);
        let a3 = analyze_plan(&CommPlan::new("w", body), 3);
        assert!(!a3.exact);
        assert!(!a3.deadlock_free(), "conservative verdicts never certify");
        assert!(a3.completed);
        // The conservative verdict names the first non-exact op: rank 0's
        // wildcard is its first (and only) comm op.
        let w = a3.first_inexact.expect("witness for inexact verdict");
        assert_eq!((w.rank, w.op_index), (0, 0));
        assert_eq!(w.to_string(), "rank 0, op 0");
    }

    #[test]
    fn wildcard_race_is_flagged() {
        let plan = CommPlan::new(
            "race",
            vec![
                on(
                    1,
                    vec![Op::Send {
                        to: Expr::Const(0),
                        tag: tag(4),
                        bytes: Expr::Const(8),
                    }],
                ),
                on(
                    2,
                    vec![Op::Send {
                        to: Expr::Const(0),
                        tag: tag(4),
                        bytes: Expr::Const(8),
                    }],
                ),
                Op::Barrier,
                on(
                    0,
                    vec![Op::RecvAny { tag: tag(4) }, Op::RecvAny { tag: tag(4) }],
                ),
            ],
        );
        let a = analyze_plan(&plan, 3);
        assert!(!a.exact);
        assert!(a.completed, "{:?}", a.findings);
        assert!(a
            .findings
            .iter()
            .any(|f| matches!(f, PlanFinding::WildcardChoice { rank: 0, .. })));
        // Rank 0 emits 4 barrier ops (2 dissemination rounds) before its
        // first wildcard.
        assert_eq!(
            a.first_inexact,
            Some(InexactWitness {
                rank: 0,
                op_index: 4
            })
        );
    }

    #[test]
    fn collectives_complete_cleanly_across_sizes() {
        let plan = CommPlan::new(
            "colls",
            vec![
                Op::Barrier,
                Op::Bcast {
                    root: Expr::Const(0),
                    bytes: Expr::Const(128),
                },
                Op::Reduce {
                    root: Expr::Const(0),
                    elems: Expr::Const(4),
                    op: mps::ReduceOp::Sum,
                },
                Op::AllReduce {
                    elems: Expr::Const(2),
                    op: mps::ReduceOp::Max,
                },
                Op::AllGather {
                    bytes: Expr::Peer + Expr::Const(1),
                },
                Op::AllToAll {
                    bytes: Expr::Const(16),
                },
            ],
        );
        for p in [1usize, 2, 3, 4, 5, 8, 12, 16] {
            let a = analyze_plan(&plan, p);
            assert!(a.clean(), "p={p}: {:?}", a.findings);
            assert!(a.deadlock_free());
            // Every collective family called once per rank.
            for s in &a.colls {
                assert_eq!(s.calls, p as u64);
            }
            if p > 1 {
                // alltoall: p(p-1) messages of 16 bytes.
                let a2a = a.colls[crate::CollKind::AllToAll.index()];
                assert_eq!(a2a.messages, (p * (p - 1)) as u64);
                assert_eq!(a2a.bytes, (16 * p * (p - 1)) as u64);
            }
        }
    }

    #[test]
    fn shape_error_surfaces_and_blocks_certification() {
        let plan = CommPlan::new(
            "bad",
            vec![Op::Send {
                to: Expr::P, // out of range on every rank
                tag: tag(0),
                bytes: Expr::Const(1),
            }],
        );
        let a = analyze_plan(&plan, 3);
        assert!(!a.deadlock_free());
        assert!(!a.completed);
        assert!(a
            .findings
            .iter()
            .any(|f| matches!(f, PlanFinding::Shape { .. })));
    }

    #[test]
    fn certifies_large_worlds_quickly() {
        // A barrier + allreduce at p = 1024 stays well under the step
        // budget a full NPB plan needs, and must certify instantly.
        let plan = CommPlan::new(
            "big",
            vec![
                Op::Barrier,
                Op::AllReduce {
                    elems: Expr::Const(1),
                    op: mps::ReduceOp::Sum,
                },
            ],
        );
        let a = analyze_plan(&plan, 1024);
        assert!(a.deadlock_free(), "{:?}", a.findings);
        // Dissemination barrier: 10 rounds; allreduce: 10 doubling rounds.
        assert_eq!(a.total.messages, 1024 * 20);
    }
}
