//! Parametric (for-all-`p`) plan certification.
//!
//! [`certify_plan`] interprets a [`CommPlan`] over a *symbolic* world size
//! `p ∈ D` instead of a concrete rank matrix. The analysis has two halves,
//! combined by an explicit **small-model cutoff** argument:
//!
//! 1. **Symbolic step** — a structural walk normalizes every peer
//!    expression to an affine/mod-canonical form and discharges a
//!    matching/deadlock obligation per communication construct:
//!
//!    * *Shift rounds* (`Send` to `(Rank + a) % P` immediately followed by
//!      `Recv` from `(Rank + b) % P`, equal rank-free tags): the pair is a
//!      sender↔receiver bijection iff the offsets cancel symbolically
//!      (`a + b ≡ 0 (mod P)` with the `P`-multiples dropped and all
//!      non-constant terms cancelling structurally), and is self-message
//!      free iff no admissible `p` divides the constant send offset — a
//!      finite check, since `p > |a|` never divides `a ≠ 0`. Deadlock
//!      freedom then follows because sends are eager: by induction over
//!      certified items, every rank reaches its receive with the matching
//!      send already in flight.
//!    * *Exchanges* are certified against a small library of involution
//!      lemmas (`σ∘σ = id`, `σ(r)` in range), matched structurally:
//!      hypercube `Rank ⊕ 2^i`, the CG grid-row doubling
//!      `row·npcol + (col ⊕ 2^i)`, and the CG square/rect grid transposes
//!      (the latter two only under their `Ne(σ(r), Rank)` self-partner
//!      guard and on the grid-shape branch they are defined for). An
//!      involution pairs each participating rank with a distinct partner
//!      executing the mirror exchange, so both sides' eager sends satisfy
//!      both receives.
//!    * *Collectives* expand (in the concrete checker) to `mps`'s
//!      algorithms, which are pairwise-matched for every `p ≥ 1`; the walk
//!      records them as named lemma obligations rather than re-deriving
//!      the schedules symbolically.
//!    * *Control* must be `p`-uniform: loop trip counts and branch
//!      conditions rank-free (all ranks take the same arm at a given `p`),
//!      except for the recognized self-partner guard. Tag counters stay
//!      aligned across ranks because bumps (`BumpTag`, `Auto`) are only
//!      admitted in uniform context; guard bodies may use `Last`/rank-free
//!      tags only.
//!
//!    Any construct outside this fragment fails certification with a
//!    witness ([`SymFailure`]) naming the op site — including every
//!    wildcard receive, whose matching is schedule-dependent.
//!
//! 2. **Base cases** — the concrete checker ([`analyze_plan`]) must
//!    certify every admissible `p ≤ cutoff` exactly. The symbolic step is
//!    the induction: its obligations are `p`-independent (or finitely
//!    checked over the domain), so together they cover all of `D`.
//!
//! The same walk yields closed-form **count enclosures**
//! ([`ParametricCert::counts`]): for any admissible `p`, message/byte/
//! work totals as intervals evaluated in `O(plan size)` — no `p²` channel
//! matrix — which `isoee`'s symbolic cost lowering turns into Eq. 13/15
//! time/energy enclosures and static power-cap verdicts. Each base case
//! also cross-checks the enclosure against the concrete totals, so a
//! count bug is caught at certification time, not at verdict time.

use std::fmt;

use crate::check::analyze_plan;
use crate::expr::{Cond, Expr};
use crate::ir::{CommPlan, Op, TagExpr};

/// Default small-model cutoff: every admissible `p ≤ 32` is checked
/// concretely.
pub const DEFAULT_CUTOFF: u64 = 32;

/// Sampling horizon for unbounded domains (counts/verdicts still hold for
/// all `p`; only [`Domain::sample`] needs a finite window).
const SAMPLE_HORIZON: u64 = 4096;

// ---------------------------------------------------------------------
// Domains
// ---------------------------------------------------------------------

/// The admissible world sizes a plan is declared (and certified) for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domain {
    /// `p = 2^k` for `min_lg ≤ k` (`≤ max_lg` when bounded).
    Pow2 {
        /// Smallest admissible exponent.
        min_lg: u32,
        /// Largest admissible exponent, `None` for unbounded.
        max_lg: Option<u32>,
    },
    /// Every integer `p ≥ min` (`≤ max` when bounded).
    Any {
        /// Smallest admissible `p` (at least 1).
        min: u64,
        /// Largest admissible `p`, `None` for unbounded.
        max: Option<u64>,
    },
}

impl Domain {
    /// All powers of two.
    #[must_use]
    pub fn pow2() -> Self {
        Domain::Pow2 {
            min_lg: 0,
            max_lg: None,
        }
    }

    /// Every `p ≥ min`.
    #[must_use]
    pub fn at_least(min: u64) -> Self {
        Domain::Any {
            min: min.max(1),
            max: None,
        }
    }

    /// Every `p` in `[min, max]`.
    #[must_use]
    pub fn between(min: u64, max: u64) -> Self {
        Domain::Any {
            min: min.max(1),
            max: Some(max),
        }
    }

    /// Whether `p` is admissible.
    #[must_use]
    pub fn contains(&self, p: u64) -> bool {
        match self {
            Domain::Pow2 { min_lg, max_lg } => {
                p.is_power_of_two()
                    && p.trailing_zeros() >= *min_lg
                    && max_lg.is_none_or(|m| p.trailing_zeros() <= m)
            }
            Domain::Any { min, max } => p >= *min && max.is_none_or(|m| p <= m),
        }
    }

    /// The smallest admissible `p`.
    #[must_use]
    pub fn min_p(&self) -> u64 {
        match self {
            Domain::Pow2 { min_lg, .. } => 1u64 << (*min_lg).min(62),
            Domain::Any { min, .. } => *min,
        }
    }

    /// Whether the domain has finitely many members.
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        match self {
            Domain::Pow2 { max_lg, .. } => max_lg.is_some(),
            Domain::Any { max, .. } => max.is_some(),
        }
    }

    /// The same domain clamped to `p ≤ pmax` (for "for all p ≤ N" caps).
    #[must_use]
    pub fn with_max(&self, pmax: u64) -> Self {
        match self {
            Domain::Pow2 { min_lg, max_lg } => {
                let lg = 63 - pmax.max(1).leading_zeros(); // floor(log2 pmax)
                Domain::Pow2 {
                    min_lg: *min_lg,
                    max_lg: Some(max_lg.map_or(lg, |m| m.min(lg))),
                }
            }
            Domain::Any { min, max } => Domain::Any {
                min: *min,
                max: Some(max.map_or(pmax, |m| m.min(pmax))),
            },
        }
    }

    /// Every admissible `p`, smallest first — `None` when unbounded.
    #[must_use]
    pub fn admissible(&self) -> Option<Vec<u64>> {
        match self {
            Domain::Pow2 { max_lg, .. } => max_lg.map(|_| self.admissible_up_to(u64::MAX)),
            Domain::Any { max, .. } => max.map(|_| self.admissible_up_to(u64::MAX)),
        }
    }

    /// Every admissible `p ≤ limit`, smallest first (finite even for
    /// unbounded domains).
    #[must_use]
    pub fn admissible_up_to(&self, limit: u64) -> Vec<u64> {
        match self {
            Domain::Pow2 { min_lg, max_lg } => {
                let hi_lg = max_lg.unwrap_or(62).min(62);
                (*min_lg..=hi_lg)
                    .map(|lg| 1u64 << lg)
                    .take_while(|&p| p <= limit)
                    .collect()
            }
            Domain::Any { min, max } => {
                let hi = max.unwrap_or(u64::MAX).min(limit);
                if *min > hi {
                    Vec::new()
                } else {
                    (*min..=hi).collect()
                }
            }
        }
    }

    /// The base cases of the cutoff argument: admissible `p ≤ cutoff`.
    #[must_use]
    pub fn base_ps(&self, cutoff: u64) -> Vec<u64> {
        self.admissible_up_to(cutoff)
    }

    /// `count` deterministic sample points (unbounded domains sample up to
    /// a fixed horizon), sorted and deduplicated.
    #[must_use]
    pub fn sample(&self, count: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Vec::with_capacity(count);
        match self {
            Domain::Pow2 { min_lg, max_lg } => {
                let hi = max_lg.unwrap_or(SAMPLE_HORIZON.trailing_zeros()).min(62);
                let lo = (*min_lg).min(hi);
                for _ in 0..count {
                    let lg = lo + u32::try_from(next() % u64::from(hi - lo + 1)).expect("small");
                    out.push(1u64 << lg);
                }
            }
            Domain::Any { min, max } => {
                let hi = max.unwrap_or(SAMPLE_HORIZON).max(*min);
                let span = hi - *min + 1;
                for _ in 0..count {
                    out.push(*min + next() % span);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Pow2 { min_lg, max_lg } => match max_lg {
                Some(m) => write!(f, "p = 2^k, {min_lg} <= k <= {m}"),
                None => write!(f, "p = 2^k, k >= {min_lg}"),
            },
            Domain::Any { min, max } => match max {
                Some(m) => write!(f, "{min} <= p <= {m}"),
                None => write!(f, "p >= {min}"),
            },
        }
    }
}

// ---------------------------------------------------------------------
// Certificates
// ---------------------------------------------------------------------

/// One discharged proof obligation: which lemma/rule, at which plan site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// Rule identifier (e.g. `shift-bijection`, `collective-lemma:barrier`).
    pub rule: &'static str,
    /// Op path inside the plan body, e.g. `body[3].loop[0]`.
    pub site: String,
}

/// Why certification failed, with the op site as witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymFailure {
    /// Op path inside the plan body (or the failing base case).
    pub site: String,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for SymFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.site, self.reason)
    }
}

/// A closed interval of real-valued counts (`lo == hi` when exact).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountRange {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl CountRange {
    /// Whether `v` lies inside the range.
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the range is a single point.
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }
}

/// Whole-plan count enclosures at one admissible `p`, evaluated from the
/// symbolic summary in `O(plan size)` — no rank matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymCounts {
    /// Total messages over all ranks.
    pub messages: CountRange,
    /// Total payload bytes over all ranks.
    pub bytes: CountRange,
    /// Total on-chip instructions (`Wc`), including collective combines.
    pub wc: CountRange,
    /// Total charged memory accesses.
    pub mem_accesses: CountRange,
}

/// A machine-checkable for-all-`p` certificate: the symbolic obligations,
/// the concrete base cases, and (when certified) a count summary.
#[derive(Debug, Clone)]
pub struct ParametricCert {
    /// The certified plan's name.
    pub plan: String,
    /// The domain quantified over.
    pub domain: Domain,
    /// Small-model cutoff used for the base cases.
    pub cutoff: u64,
    /// The concrete base cases that were checked (admissible `p ≤ cutoff`).
    pub base_ps: Vec<u64>,
    /// Discharged symbolic obligations, in walk order.
    pub obligations: Vec<Obligation>,
    /// Whether the plan is certified matching- and deadlock-free for every
    /// `p` in the domain.
    pub certified: bool,
    /// The witness when not certified.
    pub failure: Option<SymFailure>,
    /// Symbolic count summary (present iff the walk succeeded).
    summary: Option<Vec<SymItem>>,
}

impl ParametricCert {
    /// Count enclosures at `p` — `None` when uncertified, `p` outside the
    /// domain, or the enclosure fails to evaluate at this `p`.
    #[must_use]
    pub fn counts(&self, p: u64) -> Option<SymCounts> {
        if !self.certified || !self.domain.contains(p) {
            return None;
        }
        eval_counts(self.summary.as_ref()?, p)
    }

    /// Re-run the certification against `plan` and compare: the machine
    /// check that this certificate describes that plan.
    ///
    /// # Errors
    /// Returns the first mismatch found.
    pub fn revalidate(&self, plan: &CommPlan) -> Result<(), String> {
        let fresh = certify_plan_with(plan, &self.domain, self.cutoff);
        if fresh.plan != self.plan {
            return Err(format!("plan name {:?} != {:?}", fresh.plan, self.plan));
        }
        if fresh.certified != self.certified {
            return Err(format!(
                "certified {} != {}",
                fresh.certified, self.certified
            ));
        }
        if fresh.base_ps != self.base_ps {
            return Err("base-case sets differ".into());
        }
        if fresh.obligations != self.obligations {
            return Err("obligation lists differ".into());
        }
        if fresh.failure != self.failure {
            return Err(format!("failure {:?} != {:?}", fresh.failure, self.failure));
        }
        if fresh.summary != self.summary {
            return Err("symbolic count summaries differ".into());
        }
        Ok(())
    }

    /// Serialize the certificate (without the internal count summary).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n  \"schema\": \"parametric-cert/1\",\n");
        s.push_str(&format!("  \"plan\": \"{}\",\n", esc(&self.plan)));
        s.push_str(&format!(
            "  \"domain\": \"{}\",\n",
            esc(&self.domain.to_string())
        ));
        s.push_str(&format!("  \"cutoff\": {},\n", self.cutoff));
        let ps: Vec<String> = self.base_ps.iter().map(u64::to_string).collect();
        s.push_str(&format!("  \"base_ps\": [{}],\n", ps.join(", ")));
        s.push_str(&format!("  \"certified\": {},\n", self.certified));
        s.push_str("  \"obligations\": [");
        for (i, o) in self.obligations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"site\": \"{}\"}}",
                esc(o.rule),
                esc(&o.site)
            ));
        }
        if !self.obligations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        match &self.failure {
            Some(fail) => s.push_str(&format!(
                "  \"failure\": {{\"site\": \"{}\", \"reason\": \"{}\"}}\n",
                esc(&fail.site),
                esc(&fail.reason)
            )),
            None => s.push_str("  \"failure\": null\n"),
        }
        s.push('}');
        s
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Certify `plan` for every `p` in `domain` with the default cutoff.
#[must_use]
pub fn certify_plan(plan: &CommPlan, domain: &Domain) -> ParametricCert {
    certify_plan_with(plan, domain, DEFAULT_CUTOFF)
}

/// Certify `plan` for every `p` in `domain`, checking admissible
/// `p ≤ cutoff` concretely as the base cases of the cutoff argument.
#[must_use]
pub fn certify_plan_with(plan: &CommPlan, domain: &Domain, cutoff: u64) -> ParametricCert {
    let mut walker = Walker {
        domain,
        obligations: Vec::new(),
        path: vec!["body".to_string()],
        loops: Vec::new(),
        branches: Vec::new(),
    };
    let walked = walker.walk_ops(&plan.body);
    let base_ps = domain.base_ps(cutoff);
    let (summary, mut failure) = match walked {
        Ok(items) => (Some(items), None),
        Err(f) => (None, Some(f)),
    };

    if failure.is_none() {
        for &bp in &base_ps {
            let Ok(psize) = usize::try_from(bp) else {
                failure = Some(SymFailure {
                    site: format!("base case p={bp}"),
                    reason: "base case does not fit usize".into(),
                });
                break;
            };
            let a = analyze_plan(plan, psize);
            if !a.deadlock_free() {
                let why = a
                    .findings
                    .first()
                    .map_or_else(|| "not exact".to_string(), ToString::to_string);
                failure = Some(SymFailure {
                    site: format!("base case p={bp}"),
                    reason: format!("concrete checker rejects: {why}"),
                });
                break;
            }
            // Self-validate the count enclosure against the concrete run.
            if let Some(items) = &summary {
                let Some(c) = eval_counts(items, bp) else {
                    failure = Some(SymFailure {
                        site: format!("base case p={bp}"),
                        reason: "count enclosure failed to evaluate".into(),
                    });
                    break;
                };
                #[allow(clippy::cast_precision_loss)]
                let ok = c.messages.contains(a.total.messages as f64)
                    && c.bytes.contains(a.total.bytes as f64)
                    && c.wc.contains(a.total.wc)
                    && c.mem_accesses.contains(a.total.mem_accesses);
                if !ok {
                    failure = Some(SymFailure {
                        site: format!("base case p={bp}"),
                        reason: format!(
                            "count enclosure {c:?} does not contain concrete totals {:?}",
                            a.total
                        ),
                    });
                    break;
                }
            }
        }
    }

    if failure.is_none() && base_ps.is_empty() {
        failure = Some(SymFailure {
            site: "domain".into(),
            reason: format!("no admissible p <= cutoff {cutoff} to anchor the induction"),
        });
    }

    let certified = failure.is_none() && summary.is_some();
    ParametricCert {
        plan: plan.name.clone(),
        domain: domain.clone(),
        cutoff,
        base_ps,
        obligations: walker.obligations,
        certified,
        failure,
        summary,
    }
}

// ---------------------------------------------------------------------
// Expression helpers
// ---------------------------------------------------------------------

fn uses(e: &Expr, target: &dyn Fn(&Expr) -> bool) -> bool {
    if target(e) {
        return true;
    }
    match e {
        Expr::Add(a, b)
        | Expr::Sub(a, b)
        | Expr::Mul(a, b)
        | Expr::Div(a, b)
        | Expr::Mod(a, b)
        | Expr::Min(a, b)
        | Expr::Max(a, b)
        | Expr::Xor(a, b) => uses(a, target) || uses(b, target),
        Expr::Pow2(x) | Expr::Log2(x) => uses(x, target),
        Expr::BlockLen { total, parts, idx } => {
            uses(total, target) || uses(parts, target) || uses(idx, target)
        }
        _ => false,
    }
}

fn uses_rank(e: &Expr) -> bool {
    uses(e, &|x| matches!(x, Expr::Rank))
}

fn uses_peer(e: &Expr) -> bool {
    uses(e, &|x| matches!(x, Expr::Peer))
}

fn cond_uses_rank(c: &Cond) -> bool {
    match c {
        Cond::Eq(a, b) | Cond::Ne(a, b) | Cond::Lt(a, b) | Cond::Le(a, b) => {
            uses_rank(a) || uses_rank(b) || uses_peer(a) || uses_peer(b)
        }
        Cond::And(a, b) | Cond::Or(a, b) => cond_uses_rank(a) || cond_uses_rank(b),
        Cond::Not(x) => cond_uses_rank(x),
    }
}

// The CG process-grid vocabulary, rebuilt canonically for structural
// matching (Expr derives PartialEq).
fn g_nprow() -> Expr {
    (Expr::P.log2() / Expr::Const(2)).pow2()
}
fn g_npcol() -> Expr {
    Expr::P / g_nprow()
}
fn g_row() -> Expr {
    Expr::Rank / g_npcol()
}
fn g_col() -> Expr {
    Expr::Rank % g_npcol()
}

// ---------------------------------------------------------------------
// Shift normalization
// ---------------------------------------------------------------------

/// `(Rank + offset) % P` decomposed: the constant part of the offset plus
/// signed non-constant rank-free terms. `P`-multiples are dropped
/// (`P ≡ 0 (mod P)`), and the `Rank` coefficient must be exactly +1.
struct Shift {
    konst: i64,
    others: Vec<(Expr, i64)>,
}

fn shift_decompose(e: &Expr) -> Option<Shift> {
    let Expr::Mod(inner, modulus) = e else {
        return None;
    };
    if **modulus != Expr::P {
        return None;
    }
    let mut shift = Shift {
        konst: 0,
        others: Vec::new(),
    };
    let mut rank_coeff = 0i64;
    flatten(inner, 1, &mut shift, &mut rank_coeff)?;
    (rank_coeff == 1).then_some(shift)
}

fn flatten(e: &Expr, sign: i64, out: &mut Shift, rank_coeff: &mut i64) -> Option<()> {
    match e {
        Expr::Add(a, b) => {
            flatten(a, sign, out, rank_coeff)?;
            flatten(b, sign, out, rank_coeff)
        }
        Expr::Sub(a, b) => {
            flatten(a, sign, out, rank_coeff)?;
            flatten(b, -sign, out, rank_coeff)
        }
        Expr::Const(c) => {
            out.konst = out.konst.checked_add(sign.checked_mul(*c)?)?;
            Some(())
        }
        Expr::P => Some(()), // P ≡ 0 (mod P)
        Expr::Rank => {
            *rank_coeff += sign;
            Some(())
        }
        other if !uses_rank(other) && !uses_peer(other) => {
            out.others.push((other.clone(), sign));
            Some(())
        }
        _ => None,
    }
}

/// Cancel structurally equal terms of opposite sign; whatever remains
/// cannot be proven ≡ 0.
fn cancel_terms(mut terms: Vec<(Expr, i64)>) -> Vec<(Expr, i64)> {
    let mut out: Vec<(Expr, i64)> = Vec::new();
    while let Some((e, s)) = terms.pop() {
        if let Some(pos) = out.iter().position(|(o, os)| *os == -s && *o == e) {
            out.remove(pos);
        } else {
            out.push((e, s));
        }
    }
    out
}

// ---------------------------------------------------------------------
// The symbolic walk
// ---------------------------------------------------------------------

/// One certified plan construct, carrying just enough to evaluate counts.
#[derive(Debug, Clone, PartialEq)]
enum SymItem {
    Compute { units: Expr, scale: f64 },
    Mem { accesses: Expr, scale: f64 },
    ShiftRound { bytes: Expr },
    Exchange { guarded: bool, bytes: Expr },
    Barrier,
    Bcast { bytes: Expr },
    Reduce { elems: Expr },
    AllReduce { elems: Expr },
    AllGather { bytes: Expr },
    AllToAll { bytes: Expr },
    Loop { count: Expr, body: Vec<SymItem> },
    Branch { arms: [Vec<SymItem>; 2] },
}

struct Walker<'d> {
    domain: &'d Domain,
    obligations: Vec<Obligation>,
    path: Vec<String>,
    /// Enclosing loop trip counts, innermost last.
    loops: Vec<Expr>,
    /// Enclosing `p`-uniform branch context: (condition, arm taken).
    branches: Vec<(Cond, bool)>,
}

impl Walker<'_> {
    fn site(&self) -> String {
        self.path.join(".")
    }

    fn fail(&self, reason: impl Into<String>) -> SymFailure {
        SymFailure {
            site: self.site(),
            reason: reason.into(),
        }
    }

    fn discharge(&mut self, rule: &'static str) {
        let site = self.site();
        self.obligations.push(Obligation { rule, site });
    }

    fn walk_ops(&mut self, ops: &[Op]) -> Result<Vec<SymItem>, SymFailure> {
        let mut items = Vec::new();
        let mut i = 0;
        while i < ops.len() {
            self.path.push(format!("[{i}]"));
            let mut consumed = 1;
            match &ops[i] {
                Op::Compute { units, scale } => {
                    if uses_peer(units) {
                        return Err(self.fail("Peer in a compute charge"));
                    }
                    items.push(SymItem::Compute {
                        units: units.clone(),
                        scale: *scale,
                    });
                }
                Op::MemStream { elems, scale, ws } => {
                    if uses_peer(elems) || uses_peer(ws) {
                        return Err(self.fail("Peer in a memory charge"));
                    }
                    items.push(SymItem::Mem {
                        accesses: elems.clone(),
                        scale: *scale / 8.0,
                    });
                }
                Op::MemAccess {
                    accesses,
                    scale,
                    ws,
                } => {
                    if uses_peer(accesses) || uses_peer(ws) {
                        return Err(self.fail("Peer in a memory charge"));
                    }
                    items.push(SymItem::Mem {
                        accesses: accesses.clone(),
                        scale: *scale,
                    });
                }
                Op::Phase(_) => {}
                Op::BumpTag => {
                    // Uniform context by construction (guard bodies never
                    // reach walk_ops), so the tag counters stay aligned.
                    self.discharge("uniform-tag-counter");
                }
                Op::Send { to, tag, bytes } => {
                    let Some(Op::Recv { from, tag: rtag }) = ops.get(i + 1) else {
                        return Err(self.fail(
                            "send not immediately followed by the paired receive \
                             (outside the certified shift-round fragment)",
                        ));
                    };
                    self.certify_shift_round(to, tag, bytes, from, rtag)?;
                    items.push(SymItem::ShiftRound {
                        bytes: bytes.clone(),
                    });
                    consumed = 2;
                }
                Op::Recv { .. } => {
                    return Err(
                        self.fail("receive with no preceding paired send (recv-first ordering)")
                    );
                }
                Op::RecvAny { .. } => {
                    return Err(self.fail(
                        "wildcard receive: matching is schedule-dependent and cannot be \
                         certified symbolically",
                    ));
                }
                Op::Exchange {
                    partner,
                    tag,
                    bytes,
                } => {
                    self.certify_exchange(partner, tag, bytes, false)?;
                    items.push(SymItem::Exchange {
                        guarded: false,
                        bytes: bytes.clone(),
                    });
                }
                Op::Loop { count, body } => {
                    if uses_rank(count) || uses_peer(count) {
                        return Err(self.fail("rank-dependent loop trip count"));
                    }
                    self.discharge("p-uniform-control");
                    self.loops.push(count.clone());
                    self.path.push("loop".into());
                    let inner = self.walk_ops(body);
                    self.path.pop();
                    self.loops.pop();
                    items.push(SymItem::Loop {
                        count: count.clone(),
                        body: inner?,
                    });
                }
                Op::IfElse { cond, then, els } => {
                    if let Some(item) = self.try_guarded_exchange(cond, then, els)? {
                        items.push(item);
                    } else if cond_uses_rank(cond) {
                        return Err(
                            self.fail("rank-dependent branch outside the guarded-exchange pattern")
                        );
                    } else {
                        self.discharge("p-uniform-control");
                        self.branches.push((cond.clone(), true));
                        self.path.push("then".into());
                        let t = self.walk_ops(then);
                        self.path.pop();
                        self.branches.pop();
                        self.branches.push((cond.clone(), false));
                        self.path.push("else".into());
                        let e = self.walk_ops(els);
                        self.path.pop();
                        self.branches.pop();
                        items.push(SymItem::Branch { arms: [t?, e?] });
                    }
                }
                Op::Barrier => {
                    self.discharge("collective-lemma:barrier");
                    items.push(SymItem::Barrier);
                }
                Op::Bcast { root, bytes } => {
                    if uses_rank(root) || uses_peer(root) {
                        return Err(self.fail("rank-dependent broadcast root"));
                    }
                    if uses_peer(bytes) {
                        return Err(self.fail("Peer in a broadcast size"));
                    }
                    self.discharge("collective-lemma:bcast");
                    items.push(SymItem::Bcast {
                        bytes: bytes.clone(),
                    });
                }
                Op::Reduce { root, elems, .. } => {
                    if uses_rank(root) || uses_peer(root) {
                        return Err(self.fail("rank-dependent reduce root"));
                    }
                    if uses_peer(elems) {
                        return Err(self.fail("Peer in a reduce size"));
                    }
                    self.discharge("collective-lemma:reduce");
                    items.push(SymItem::Reduce {
                        elems: elems.clone(),
                    });
                }
                Op::AllReduce { elems, .. } => {
                    if uses_peer(elems) {
                        return Err(self.fail("Peer in an allreduce size"));
                    }
                    self.discharge("collective-lemma:allreduce");
                    items.push(SymItem::AllReduce {
                        elems: elems.clone(),
                    });
                }
                Op::AllGather { bytes } => {
                    self.discharge("collective-lemma:allgather");
                    items.push(SymItem::AllGather {
                        bytes: bytes.clone(),
                    });
                }
                Op::AllToAll { bytes } => {
                    self.discharge("collective-lemma:alltoall");
                    items.push(SymItem::AllToAll {
                        bytes: bytes.clone(),
                    });
                }
            }
            self.path.pop();
            i += consumed;
        }
        Ok(items)
    }

    /// The self-partner guard pattern:
    /// `IfElse { Ne(σ(Rank), Rank), then: [Exchange with σ(Rank)], els: [] }`.
    fn try_guarded_exchange(
        &mut self,
        cond: &Cond,
        then: &[Op],
        els: &[Op],
    ) -> Result<Option<SymItem>, SymFailure> {
        let partner_cond = match cond {
            Cond::Ne(a, b) if *b == Expr::Rank => a,
            Cond::Ne(a, b) if *a == Expr::Rank => b,
            _ => return Ok(None),
        };
        if !els.is_empty() || then.len() != 1 {
            return Ok(None);
        }
        let Op::Exchange {
            partner,
            tag,
            bytes,
        } = &then[0]
        else {
            return Ok(None);
        };
        if partner != partner_cond {
            return Err(self.fail("guard condition and exchange partner expressions differ"));
        }
        self.certify_exchange(partner, tag, bytes, true)?;
        Ok(Some(SymItem::Exchange {
            guarded: true,
            bytes: bytes.clone(),
        }))
    }

    /// Certify an exchange partner against the involution lemma library.
    ///
    /// Each lemma states: for every admissible `p` (restricted to the
    /// recorded branch context), `σ(r)` is in `[0, p)`, `σ(σ(r)) = r`, and
    /// — for the unguarded forms — `σ(r) ≠ r`. Proof sketches:
    ///
    /// * `xor-hypercube` `σ(r) = r ⊕ 2^i`, `i < lg p`, `p` a power of two:
    ///   flipping one bit below `lg p` stays `< p`, is its own inverse,
    ///   and never fixes `r`.
    /// * `grid-xor-row` `σ(r) = row·npcol + (col ⊕ 2^i)`, `i < lg npcol`:
    ///   the hypercube lemma applied inside the rank's processor row
    ///   (`col < npcol`, `npcol` a power of two dividing `p`).
    /// * `grid-transpose-square` `σ(r) = col·npcol + row` on a square grid
    ///   (`nprow = npcol`, even `lg p`): coordinate swap, an involution;
    ///   fixed points (`row = col`) are excluded by the guard.
    /// * `grid-transpose-rect` `σ(r) = (col/2)·npcol + 2·row + col%2` on a
    ///   rect grid (`npcol = 2·nprow`, odd `lg p`): the NPB pairing of the
    ///   two half-columns; `2·row + col%2 < npcol`, and applying σ twice
    ///   returns `(row, col)`. Fixed points excluded by the guard.
    ///
    /// All four require a power-of-two domain; the transpose lemmas
    /// additionally require the branch context that selects their grid
    /// shape. Base cases cover both parities of `lg p` concretely.
    fn certify_exchange(
        &mut self,
        partner: &Expr,
        tag: &TagExpr,
        bytes: &Expr,
        guarded: bool,
    ) -> Result<(), SymFailure> {
        if uses_peer(bytes) {
            return Err(self.fail("Peer in an exchange size"));
        }
        match tag {
            TagExpr::Expr(e) => {
                if uses_rank(e) || uses_peer(e) {
                    return Err(self.fail("rank-dependent exchange tag"));
                }
            }
            TagExpr::Auto { .. } => {
                if guarded {
                    return Err(self.fail(
                        "tag bump inside a rank-dependent guard desynchronizes the tag counter",
                    ));
                }
                self.discharge("uniform-tag-counter");
            }
            TagExpr::Last { .. } => {
                // Reads the (uniform) counter without bumping: fine in
                // both uniform and guarded context.
            }
        }

        let pow2_only = matches!(self.domain, Domain::Pow2 { .. });
        if !pow2_only {
            return Err(self.fail("exchange involution lemmas require a power-of-two domain"));
        }

        let hyper = Expr::Rank.xor(Expr::Var(0).pow2());
        let grid_xor = g_row() * g_npcol() + g_col().xor(Expr::Var(0).pow2());
        let square = g_col() * g_npcol() + g_row();
        let rect = (g_col() / Expr::Const(2)) * g_npcol()
            + Expr::Const(2) * g_row()
            + g_col() % Expr::Const(2);

        if *partner == hyper {
            if self.loops.last() != Some(&Expr::P.log2()) {
                return Err(self
                    .fail("Rank ^ 2^Var(0) requires an enclosing loop of exactly log2(P) rounds"));
            }
            self.discharge("xor-hypercube");
            return Ok(());
        }
        if *partner == grid_xor {
            if self.loops.last() != Some(&g_npcol().log2()) {
                return Err(self.fail(
                    "grid-row doubling requires an enclosing loop of exactly log2(npcol) rounds",
                ));
            }
            self.discharge("grid-xor-row");
            return Ok(());
        }
        if *partner == square {
            if !guarded {
                return Err(self.fail("grid transpose without its self-partner guard"));
            }
            let square_ctx = (Cond::Eq(g_nprow(), g_npcol()), true);
            if !self.branches.contains(&square_ctx) {
                return Err(self.fail("square-grid transpose outside the nprow == npcol branch"));
            }
            self.discharge("grid-transpose-square");
            return Ok(());
        }
        if *partner == rect {
            if !guarded {
                return Err(self.fail("grid transpose without its self-partner guard"));
            }
            let rect_ctx = (Cond::Eq(g_nprow(), g_npcol()), false);
            if !self.branches.contains(&rect_ctx) {
                return Err(self.fail("rect-grid transpose outside the nprow != npcol branch"));
            }
            self.discharge("grid-transpose-rect");
            return Ok(());
        }
        Err(self.fail("exchange partner matches no involution lemma"))
    }

    /// Certify a `Send`/`Recv` pair as a shift round.
    fn certify_shift_round(
        &mut self,
        to: &Expr,
        stag: &TagExpr,
        bytes: &Expr,
        from: &Expr,
        rtag: &TagExpr,
    ) -> Result<(), SymFailure> {
        let (TagExpr::Expr(st), TagExpr::Expr(rt)) = (stag, rtag) else {
            return Err(self.fail("shift-round tags must be explicit rank-free expressions"));
        };
        if uses_rank(st) || uses_peer(st) || uses_rank(rt) || uses_peer(rt) {
            return Err(self.fail("rank-dependent shift-round tag"));
        }
        if st != rt {
            return Err(self.fail("send and receive tags differ"));
        }
        if uses_peer(bytes) {
            return Err(self.fail("Peer in a point-to-point payload size"));
        }

        let Some(s) = shift_decompose(to) else {
            return Err(self
                .fail("send peer is not of the form (Rank + offset) % P with a rank-free offset"));
        };
        let Some(r) = shift_decompose(from) else {
            return Err(self.fail(
                "receive peer is not of the form (Rank + offset) % P with a rank-free offset",
            ));
        };

        // Bijection: send offset + recv offset ≡ 0 (mod P) for all p.
        let mut combined = s.others.clone();
        combined.extend(r.others.iter().cloned());
        let leftover = cancel_terms(combined);
        if !leftover.is_empty() {
            return Err(self
                .fail("send/receive offsets do not cancel symbolically (non-constant remainder)"));
        }
        let ksum = s.konst + r.konst;
        if ksum != 0 {
            return Err(self.fail(format!(
                "send/receive offsets sum to {ksum}, not 0 (mod P): \
                 the k-th receiver would not be the k-th sender's target"
            )));
        }
        self.discharge("shift-bijection");

        // Non-self: the shift distance must stay nonzero mod p for every
        // admissible p. Only the constant part matters (mod p); any
        // residual symbolic term blocks the finite divisibility check.
        if !s.others.is_empty() {
            return Err(
                self.fail("cannot prove the shift distance nonzero: non-constant offset terms")
            );
        }
        if s.konst == 0 {
            return Err(self.fail("shift distance is a multiple of P: self-message at every p"));
        }
        let dist = s.konst.unsigned_abs();
        for p in self.domain.admissible_up_to(dist) {
            if dist % p == 0 {
                return Err(self.fail(format!(
                    "admissible p={p} divides the shift distance {dist}: self-message",
                )));
            }
        }
        self.discharge("shift-nonzero");
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Count evaluation
// ---------------------------------------------------------------------

/// An integer interval in `i128` (wide enough that the 4-corner products
/// of any realistic plan quantity cannot overflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct R {
    lo: i128,
    hi: i128,
}

impl R {
    fn point(v: i128) -> Self {
        R { lo: v, hi: v }
    }

    fn clamp0(self) -> Self {
        R {
            lo: self.lo.max(0),
            hi: self.hi.max(0),
        }
    }

    fn hull(self, o: R) -> Self {
        R {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
}

type RRes = Result<R, ()>;

fn r_add(a: R, b: R) -> RRes {
    Ok(R {
        lo: a.lo.checked_add(b.lo).ok_or(())?,
        hi: a.hi.checked_add(b.hi).ok_or(())?,
    })
}

fn r_sub(a: R, b: R) -> RRes {
    Ok(R {
        lo: a.lo.checked_sub(b.hi).ok_or(())?,
        hi: a.hi.checked_sub(b.lo).ok_or(())?,
    })
}

fn r_mul(a: R, b: R) -> RRes {
    let c = [
        a.lo.checked_mul(b.lo).ok_or(())?,
        a.lo.checked_mul(b.hi).ok_or(())?,
        a.hi.checked_mul(b.lo).ok_or(())?,
        a.hi.checked_mul(b.hi).ok_or(())?,
    ];
    Ok(R {
        lo: *c.iter().min().expect("nonempty"),
        hi: *c.iter().max().expect("nonempty"),
    })
}

/// Truncating division with a positive divisor (monotone in both args on
/// each sign region; corners suffice because the divisor is positive).
fn r_div(a: R, b: R) -> RRes {
    if b.lo < 1 {
        return Err(());
    }
    let c = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
    Ok(R {
        lo: *c.iter().min().expect("nonempty"),
        hi: *c.iter().max().expect("nonempty"),
    })
}

fn r_rem(a: R, b: R) -> RRes {
    if b.lo < 1 {
        return Err(());
    }
    if a.lo == a.hi && b.lo == b.hi {
        return Ok(R::point(a.lo % b.lo));
    }
    // Identity fast path: a ∈ [0, b) ⇒ a % b = a (e.g. Rank % P).
    if a.lo >= 0 && a.hi < b.lo {
        return Ok(a);
    }
    if a.lo >= 0 {
        return Ok(R {
            lo: 0,
            hi: a.hi.min(b.hi - 1),
        });
    }
    Ok(R {
        lo: -(b.hi - 1),
        hi: b.hi - 1,
    })
}

/// Smallest all-ones mask covering `v` (`v ≥ 0`).
fn bit_cover(v: i128) -> i128 {
    let mut m = 0i128;
    while m < v {
        m = (m << 1) | 1;
    }
    m
}

fn r_xor(a: R, b: R) -> RRes {
    if a.lo == a.hi && b.lo == b.hi {
        return Ok(R::point(a.lo ^ b.lo));
    }
    if a.lo < 0 || b.lo < 0 {
        return Err(());
    }
    Ok(R {
        lo: 0,
        hi: bit_cover(a.hi | b.hi),
    })
}

fn r_pow2(e: R) -> RRes {
    if e.lo < 0 || e.hi > 62 {
        return Err(());
    }
    Ok(R {
        lo: 1i128 << e.lo,
        hi: 1i128 << e.hi,
    })
}

fn r_log2(e: R) -> RRes {
    if e.lo < 1 {
        return Err(());
    }
    let lg = |v: i128| i128::from(127 - v.leading_zeros()); // floor(log2 v), v ≥ 1
    Ok(R {
        lo: lg(e.lo),
        hi: lg(e.hi),
    })
}

fn r_block_len(total: R, parts: R, idx: R) -> RRes {
    if total.lo < 0 || parts.lo < 1 || idx.lo < 0 {
        return Err(());
    }
    if total.lo == total.hi && parts.lo == parts.hi && idx.lo == idx.hi {
        let extra = i128::from(idx.lo < total.lo % parts.lo);
        return Ok(R::point(total.lo / parts.lo + extra));
    }
    let base = r_div(total, parts)?;
    Ok(R {
        lo: base.lo,
        hi: base.hi.checked_add(1).ok_or(())?,
    })
}

/// Evaluation context: `p` concrete, rank/peer/loop-vars as ranges.
struct Cx {
    p: i128,
    rank: Option<R>,
    peer: Option<R>,
    vars: Vec<R>,
}

fn range_of(e: &Expr, cx: &Cx) -> RRes {
    match e {
        Expr::Const(v) => Ok(R::point(i128::from(*v))),
        Expr::P => Ok(R::point(cx.p)),
        Expr::Rank => cx.rank.ok_or(()),
        Expr::Peer => cx.peer.ok_or(()),
        Expr::Var(d) => {
            let n = cx.vars.len();
            if *d < n {
                Ok(cx.vars[n - 1 - d])
            } else {
                Err(())
            }
        }
        Expr::Add(a, b) => r_add(range_of(a, cx)?, range_of(b, cx)?),
        Expr::Sub(a, b) => r_sub(range_of(a, cx)?, range_of(b, cx)?),
        Expr::Mul(a, b) => r_mul(range_of(a, cx)?, range_of(b, cx)?),
        Expr::Div(a, b) => r_div(range_of(a, cx)?, range_of(b, cx)?),
        Expr::Mod(a, b) => r_rem(range_of(a, cx)?, range_of(b, cx)?),
        Expr::Min(a, b) => {
            let (x, y) = (range_of(a, cx)?, range_of(b, cx)?);
            Ok(R {
                lo: x.lo.min(y.lo),
                hi: x.hi.min(y.hi),
            })
        }
        Expr::Max(a, b) => {
            let (x, y) = (range_of(a, cx)?, range_of(b, cx)?);
            Ok(R {
                lo: x.lo.max(y.lo),
                hi: x.hi.max(y.hi),
            })
        }
        Expr::Xor(a, b) => r_xor(range_of(a, cx)?, range_of(b, cx)?),
        Expr::Pow2(x) => r_pow2(range_of(x, cx)?),
        Expr::Log2(x) => r_log2(range_of(x, cx)?),
        Expr::BlockLen { total, parts, idx } => r_block_len(
            range_of(total, cx)?,
            range_of(parts, cx)?,
            range_of(idx, cx)?,
        ),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SumVar {
    Rank,
    Peer,
}

fn var_expr(v: SumVar) -> Expr {
    match v {
        SumVar::Rank => Expr::Rank,
        SumVar::Peer => Expr::Peer,
    }
}

fn uses_sumvar(e: &Expr, v: SumVar) -> bool {
    match v {
        SumVar::Rank => uses_rank(e),
        SumVar::Peer => uses_peer(e),
    }
}

/// `Σ_{v = 0}^{p-1} e(v)` as a range. Distributes over `Add`/`Sub`, pulls
/// `v`-free factors out of `Mul`, and sums `BlockLen(total, P, v)` exactly
/// to `total`; otherwise falls back to `p · range(e)`.
fn sum_over(e: &Expr, v: SumVar, cx: &Cx) -> RRes {
    if !uses_sumvar(e, v) {
        return r_mul(range_of(e, cx)?, R::point(cx.p));
    }
    match e {
        // Σ_{i<p} i = p(p-1)/2 exactly.
        e if *e == var_expr(v) => {
            let half = cx.p.checked_mul(cx.p - 1).ok_or(())? / 2;
            Ok(R::point(half))
        }
        Expr::Add(a, b) => r_add(sum_over(a, v, cx)?, sum_over(b, v, cx)?),
        Expr::Sub(a, b) => r_sub(sum_over(a, v, cx)?, sum_over(b, v, cx)?),
        Expr::Mul(a, b) if !uses_sumvar(a, v) => r_mul(range_of(a, cx)?, sum_over(b, v, cx)?),
        Expr::Mul(a, b) if !uses_sumvar(b, v) => r_mul(sum_over(a, v, cx)?, range_of(b, cx)?),
        Expr::BlockLen { total, parts, idx }
            if **parts == Expr::P && **idx == var_expr(v) && !uses_sumvar(total, v) =>
        {
            // Σ_{i<p} BlockLen(t, p, i) = t exactly.
            range_of(total, cx)
        }
        _ => r_mul(range_of(e, cx)?, R::point(cx.p)),
    }
}

/// A float range for the `f64`-scaled work counters.
#[derive(Debug, Clone, Copy)]
struct FR {
    lo: f64,
    hi: f64,
}

impl FR {
    const ZERO: FR = FR { lo: 0.0, hi: 0.0 };

    #[allow(clippy::cast_precision_loss)]
    fn from_r(r: R) -> FR {
        FR {
            lo: r.lo as f64,
            hi: r.hi as f64,
        }
    }

    fn add(self, o: FR) -> FR {
        FR {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
    }

    fn scale(self, s: f64) -> FR {
        if s >= 0.0 {
            FR {
                lo: self.lo * s,
                hi: self.hi * s,
            }
        } else {
            FR {
                lo: self.hi * s,
                hi: self.lo * s,
            }
        }
    }

    /// Multiply by a non-negative range (counts are clamped ≥ 0 first).
    fn mul_r(self, r: R) -> FR {
        let f = FR::from_r(r);
        FR {
            lo: self.lo * f.lo,
            hi: self.hi * f.hi,
        }
    }

    fn hull(self, o: FR) -> FR {
        FR {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
}

/// Accumulated counts for a run of items at one `p`.
#[derive(Clone, Copy)]
struct Acc {
    msgs: R,
    bytes: R,
    wc: FR,
    mem: FR,
}

impl Acc {
    const ZERO: Acc = Acc {
        msgs: R { lo: 0, hi: 0 },
        bytes: R { lo: 0, hi: 0 },
        wc: FR::ZERO,
        mem: FR::ZERO,
    };

    fn add(self, o: Acc) -> Result<Acc, ()> {
        Ok(Acc {
            msgs: r_add(self.msgs, o.msgs)?,
            bytes: r_add(self.bytes, o.bytes)?,
            wc: self.wc.add(o.wc),
            mem: self.mem.add(o.mem),
        })
    }

    /// Scale by a loop trip-count range (all components non-negative).
    fn times(self, trips: R) -> Result<Acc, ()> {
        let t = trips.clamp0();
        Ok(Acc {
            msgs: r_mul(self.msgs.clamp0(), t)?,
            bytes: r_mul(self.bytes.clamp0(), t)?,
            wc: self.wc.mul_r(t),
            mem: self.mem.mul_r(t),
        })
    }

    fn hull(self, o: Acc) -> Acc {
        Acc {
            msgs: self.msgs.hull(o.msgs),
            bytes: self.bytes.hull(o.bytes),
            wc: self.wc.hull(o.wc),
            mem: self.mem.hull(o.mem),
        }
    }
}

/// Rounds of the dissemination barrier / doubling collectives at `p`.
fn ceil_lg(p: i128) -> i128 {
    if p <= 1 {
        0
    } else {
        i128::from(128 - (p - 1).leading_zeros())
    }
}

fn prev_pow2(p: i128) -> i128 {
    debug_assert!(p >= 1);
    1i128 << (127 - p.leading_zeros())
}

#[allow(clippy::too_many_lines)]
fn eval_items(items: &[SymItem], cx: &mut Cx) -> Result<Acc, ()> {
    let p = cx.p;
    let mut acc = Acc::ZERO;
    for item in items {
        let contrib = match item {
            SymItem::Compute { units, scale } => {
                let sum = sum_over(units, SumVar::Rank, cx)?.clamp0();
                Acc {
                    wc: FR::from_r(sum).scale(*scale),
                    ..Acc::ZERO
                }
            }
            SymItem::Mem { accesses, scale } => {
                let sum = sum_over(accesses, SumVar::Rank, cx)?.clamp0();
                Acc {
                    mem: FR::from_r(sum).scale(*scale),
                    ..Acc::ZERO
                }
            }
            SymItem::ShiftRound { bytes } => Acc {
                msgs: R::point(p),
                bytes: sum_over(bytes, SumVar::Rank, cx)?.clamp0(),
                ..Acc::ZERO
            },
            SymItem::Exchange { guarded, bytes } => {
                if *guarded {
                    // Fixed points of the involution skip the exchange:
                    // anywhere between 0 and p messages.
                    let hi_bytes = range_of(bytes, cx)?.clamp0().hi;
                    Acc {
                        msgs: R { lo: 0, hi: p },
                        bytes: R {
                            lo: 0,
                            hi: hi_bytes.checked_mul(p).ok_or(())?,
                        },
                        ..Acc::ZERO
                    }
                } else {
                    Acc {
                        msgs: R::point(p),
                        bytes: sum_over(bytes, SumVar::Rank, cx)?.clamp0(),
                        ..Acc::ZERO
                    }
                }
            }
            SymItem::Barrier => Acc {
                msgs: R::point(p.checked_mul(ceil_lg(p)).ok_or(())?),
                ..Acc::ZERO
            },
            SymItem::Bcast { bytes } => {
                let b = range_of(bytes, cx)?.clamp0();
                Acc {
                    msgs: R::point(p - 1),
                    bytes: r_mul(b, R::point(p - 1))?,
                    ..Acc::ZERO
                }
            }
            SymItem::Reduce { elems } => {
                let e = range_of(elems, cx)?.clamp0();
                Acc {
                    msgs: R::point(p - 1),
                    bytes: r_mul(e, R::point((p - 1).checked_mul(8).ok_or(())?))?,
                    wc: FR::from_r(e).mul_r(R::point(p - 1)),
                    ..Acc::ZERO
                }
            }
            SymItem::AllReduce { elems } => {
                if p == 1 {
                    Acc::ZERO
                } else {
                    // Recursive doubling with r = p - m folded extras:
                    // 2r + m·lg m messages, (m·lg m + r) combines.
                    let m = prev_pow2(p);
                    let r = p - m;
                    let lg = ceil_lg(m);
                    let msgs = 2 * r + m.checked_mul(lg).ok_or(())?;
                    let combines = m.checked_mul(lg).ok_or(())? + r;
                    let e = range_of(elems, cx)?.clamp0();
                    Acc {
                        msgs: R::point(msgs),
                        bytes: r_mul(e, R::point(msgs.checked_mul(8).ok_or(())?))?,
                        wc: FR::from_r(e).mul_r(R::point(combines)),
                        ..Acc::ZERO
                    }
                }
            }
            SymItem::AllGather { bytes } => {
                let msgs = p.checked_mul(p - 1).ok_or(())?;
                let total = if uses_rank(bytes) {
                    r_mul(range_of(bytes, cx)?.clamp0(), R::point(msgs))?
                } else {
                    // Each owner's chunk traverses p-1 ring hops.
                    r_mul(sum_over(bytes, SumVar::Peer, cx)?.clamp0(), R::point(p - 1))?
                };
                Acc {
                    msgs: R::point(msgs),
                    bytes: total,
                    ..Acc::ZERO
                }
            }
            SymItem::AllToAll { bytes } => {
                let msgs = p.checked_mul(p - 1).ok_or(())?;
                let total = if uses_rank(bytes) {
                    r_mul(range_of(bytes, cx)?.clamp0(), R::point(msgs))?
                } else {
                    // Σ_r Σ_{d≠r} b(d) = (p-1)·Σ_d b(d) when b is rank-free.
                    r_mul(sum_over(bytes, SumVar::Peer, cx)?.clamp0(), R::point(p - 1))?
                };
                Acc {
                    msgs: R::point(msgs),
                    bytes: total,
                    ..Acc::ZERO
                }
            }
            SymItem::Loop { count, body } => {
                let trips = range_of(count, cx)?.clamp0();
                cx.vars.push(R {
                    lo: 0,
                    hi: (trips.hi - 1).max(0),
                });
                let inner = eval_items(body, cx);
                cx.vars.pop();
                inner?.times(trips)?
            }
            SymItem::Branch { arms } => {
                let t = eval_items(&arms[0], cx)?;
                let e = eval_items(&arms[1], cx)?;
                t.hull(e)
            }
        };
        acc = acc.add(contrib)?;
    }
    Ok(acc)
}

fn eval_counts(items: &[SymItem], p: u64) -> Option<SymCounts> {
    let pi = i128::from(p);
    let mut cx = Cx {
        p: pi,
        rank: Some(R { lo: 0, hi: pi - 1 }),
        peer: Some(R { lo: 0, hi: pi - 1 }),
        vars: Vec::new(),
    };
    let acc = eval_items(items, &mut cx).ok()?;
    let cr = |r: R| {
        let f = FR::from_r(r.clamp0());
        CountRange { lo: f.lo, hi: f.hi }
    };
    let crf = |f: FR| CountRange {
        lo: f.lo.max(0.0),
        hi: f.hi.max(0.0),
    };
    Some(SymCounts {
        messages: cr(acc.msgs),
        bytes: cr(acc.bytes),
        wc: crf(acc.wc),
        mem_accesses: crf(acc.mem),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Op, TagExpr};

    fn ring(bytes: i64) -> CommPlan {
        CommPlan::new(
            "ring",
            vec![
                Op::Send {
                    to: (Expr::Rank + Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                    bytes: Expr::Const(bytes),
                },
                Op::Recv {
                    from: (Expr::Rank + Expr::P - Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                },
            ],
        )
    }

    #[test]
    fn domain_membership_and_clamping() {
        let d = Domain::pow2();
        assert!(d.contains(1) && d.contains(1024) && !d.contains(24));
        let c = d.with_max(4096);
        assert!(c.contains(4096) && !c.contains(8192));
        assert_eq!(c.admissible().expect("bounded").len(), 13);
        let a = Domain::between(2, 9);
        assert_eq!(a.admissible_up_to(u64::MAX), (2..=9).collect::<Vec<_>>());
        assert_eq!(Domain::at_least(2).base_ps(5), vec![2, 3, 4, 5]);
        for p in Domain::at_least(3).sample(16, 7) {
            assert!((3..=SAMPLE_HORIZON).contains(&p));
        }
    }

    #[test]
    fn ring_certifies_for_p_at_least_2() {
        let cert = certify_plan(&ring(64), &Domain::at_least(2));
        assert!(cert.certified, "{:?}", cert.failure);
        assert!(cert.obligations.iter().any(|o| o.rule == "shift-bijection"));
        // Exact counts at arbitrary p, way beyond any base case.
        let c = cert.counts(100_000).expect("in domain");
        assert_eq!((c.messages.lo, c.messages.hi), (100_000.0, 100_000.0));
        assert_eq!((c.bytes.lo, c.bytes.hi), (6_400_000.0, 6_400_000.0));
        assert!(cert.revalidate(&ring(64)).is_ok());
        assert!(cert.revalidate(&ring(32)).is_err(), "different plan");
    }

    #[test]
    fn ring_fails_at_p1_with_divisibility_witness() {
        let cert = certify_plan(&ring(64), &Domain::at_least(1));
        assert!(!cert.certified);
        let f = cert.failure.expect("witness");
        assert!(f.reason.contains("p=1"), "{f}");
        assert!(f.reason.contains("shift distance"), "{f}");
    }

    #[test]
    fn mismatched_shift_tags_fail_with_site() {
        let plan = CommPlan::new(
            "badtags",
            vec![
                Op::Send {
                    to: (Expr::Rank + Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                    bytes: Expr::Const(8),
                },
                Op::Recv {
                    from: (Expr::Rank + Expr::P - Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(2)),
                },
            ],
        );
        let cert = certify_plan(&plan, &Domain::at_least(2));
        assert!(!cert.certified);
        let f = cert.failure.expect("witness");
        assert!(f.site.contains("body.[0]"), "{f}");
        assert!(f.reason.contains("tags differ"), "{f}");
    }

    #[test]
    fn non_cancelling_offsets_fail() {
        // Everyone sends right by 1 but receives from the left by 2.
        let plan = CommPlan::new(
            "skew",
            vec![
                Op::Send {
                    to: (Expr::Rank + Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                    bytes: Expr::Const(8),
                },
                Op::Recv {
                    from: (Expr::Rank + Expr::P - Expr::Const(2)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                },
            ],
        );
        let cert = certify_plan(&plan, &Domain::at_least(3));
        assert!(!cert.certified);
        let f = cert.failure.expect("witness");
        assert!(f.reason.contains("sum to -1"), "{f}");
        // The concrete checker agrees at a sampled p.
        assert!(!analyze_plan(&plan, 5).deadlock_free());
    }

    #[test]
    fn wildcard_fails_symbolically() {
        let plan = CommPlan::new(
            "w",
            vec![Op::RecvAny {
                tag: TagExpr::Expr(Expr::Const(3)),
            }],
        );
        let cert = certify_plan(&plan, &Domain::at_least(2));
        assert!(!cert.certified);
        assert!(cert.failure.expect("witness").reason.contains("wildcard"));
    }

    #[test]
    fn collectives_certify_with_exact_counts() {
        let plan = CommPlan::new(
            "colls",
            vec![
                Op::Barrier,
                Op::Bcast {
                    root: Expr::Const(0),
                    bytes: Expr::Const(128),
                },
                Op::Reduce {
                    root: Expr::Const(0),
                    elems: Expr::Const(4),
                    op: mps::ReduceOp::Sum,
                },
                Op::AllReduce {
                    elems: Expr::Const(2),
                    op: mps::ReduceOp::Max,
                },
                Op::AllGather {
                    bytes: Expr::Peer + Expr::Const(1),
                },
                Op::AllToAll {
                    bytes: Expr::Const(16),
                },
            ],
        );
        let dom = Domain::at_least(1);
        let cert = certify_plan(&plan, &dom);
        assert!(cert.certified, "{:?}", cert.failure);
        // Counts must enclose (and here, exactly match) the concrete
        // totals at sizes past the cutoff.
        for p in [33u64, 48, 100, 257] {
            let c = cert.counts(p).expect("in domain");
            let a = analyze_plan(&plan, usize::try_from(p).expect("small"));
            assert!(a.clean());
            #[allow(clippy::cast_precision_loss)]
            {
                assert!(
                    c.messages.contains(a.total.messages as f64),
                    "p={p}: {c:?} vs {}",
                    a.total.messages
                );
                assert!(c.bytes.contains(a.total.bytes as f64), "p={p}");
                assert!(c.wc.contains(a.total.wc), "p={p}");
            }
            // Every per-family count formula here is exact.
            assert!(c.messages.is_point(), "p={p}: {:?}", c.messages);
            assert!(c.bytes.is_point(), "p={p}: {:?}", c.bytes);
        }
    }

    #[test]
    fn loops_and_uniform_branches_certify() {
        let plan = CommPlan::new(
            "loopy",
            vec![Op::Loop {
                count: Expr::Const(3),
                body: vec![Op::IfElse {
                    cond: Cond::Lt(Expr::P, Expr::Const(10)),
                    then: vec![Op::Barrier],
                    els: vec![Op::AllReduce {
                        elems: Expr::Const(1),
                        op: mps::ReduceOp::Sum,
                    }],
                }],
            }],
        );
        let cert = certify_plan(&plan, &Domain::at_least(1));
        assert!(cert.certified, "{:?}", cert.failure);
        for p in [5u64, 64] {
            let c = cert.counts(p).expect("counts");
            let a = analyze_plan(&plan, usize::try_from(p).expect("small"));
            #[allow(clippy::cast_precision_loss)]
            let m = a.total.messages as f64;
            assert!(c.messages.contains(m), "p={p}: {c:?} vs {m}");
        }
    }

    #[test]
    fn rank_dependent_branch_outside_guard_fails() {
        let plan = CommPlan::new(
            "asym",
            vec![Op::IfElse {
                cond: Cond::Eq(Expr::Rank, Expr::Const(0)),
                then: vec![Op::Barrier],
                els: vec![],
            }],
        );
        let cert = certify_plan(&plan, &Domain::at_least(2));
        assert!(!cert.certified);
        assert!(cert
            .failure
            .expect("witness")
            .reason
            .contains("rank-dependent branch"));
    }

    #[test]
    fn hypercube_exchange_requires_pow2_domain_and_right_loop() {
        let body = vec![Op::Loop {
            count: Expr::P.log2(),
            body: vec![Op::Exchange {
                partner: Expr::Rank.xor(Expr::Var(0).pow2()),
                tag: TagExpr::Expr(Expr::Const(2)),
                bytes: Expr::Const(64),
            }],
        }];
        let plan = CommPlan::new("hyper", body.clone());
        let cert = certify_plan(&plan, &Domain::pow2());
        assert!(cert.certified, "{:?}", cert.failure);
        assert!(cert.obligations.iter().any(|o| o.rule == "xor-hypercube"));
        // Exact at huge p: lg(2^20) rounds × 2^20 ranks.
        let c = cert.counts(1 << 20).expect("counts");
        assert_eq!(c.messages.lo, f64::from(1 << 20) * 20.0);
        assert!(c.messages.is_point());

        // The same plan over an arbitrary domain is refused.
        let cert = certify_plan(&plan, &Domain::at_least(2));
        assert!(!cert.certified);
        assert!(cert
            .failure
            .expect("witness")
            .reason
            .contains("power-of-two"));

        // Wrong loop count: lemma does not apply.
        let wrong = CommPlan::new(
            "hyper2",
            vec![Op::Loop {
                count: Expr::P.log2() + Expr::Const(1),
                body: vec![Op::Exchange {
                    partner: Expr::Rank.xor(Expr::Var(0).pow2()),
                    tag: TagExpr::Expr(Expr::Const(2)),
                    bytes: Expr::Const(64),
                }],
            }],
        );
        assert!(!certify_plan(&wrong, &Domain::pow2()).certified);
    }

    #[test]
    fn base_case_failure_names_the_p() {
        // Head-to-head recv-before-send deadlocks at every p ≥ 2, but the
        // walk alone cannot see it: recv-first ordering is rejected, so
        // construct a plan whose walk passes but whose base case fails —
        // a shift round against a reversed partner parity is hard to
        // build; instead check that a symbolically-clean plan with a bad
        // base case reports the base-case site. A self-exchange at p=1 is
        // already caught by divisibility, so use a plan valid only at
        // p ≥ 2 over a domain that includes more: the ring at min=1 is
        // covered elsewhere; here assert the cutoff anchor requirement.
        let d = Domain::Any {
            min: 50,
            max: Some(60),
        };
        let cert = certify_plan_with(&ring(8), &d, 32);
        assert!(!cert.certified);
        assert!(cert
            .failure
            .expect("witness")
            .reason
            .contains("no admissible p"));
        // With a cutoff inside the domain the same cert succeeds.
        let cert = certify_plan_with(&ring(8), &d, 52);
        assert!(cert.certified, "{:?}", cert.failure);
        assert_eq!(cert.base_ps, vec![50, 51, 52]);
    }

    #[test]
    fn cert_json_roundtrips_the_key_fields() {
        let cert = certify_plan(&ring(64), &Domain::between(2, 1024));
        let json = cert.to_json();
        assert!(json.contains("\"schema\": \"parametric-cert/1\""));
        assert!(json.contains("\"certified\": true"));
        assert!(json.contains("shift-nonzero"));
        assert!(json.contains("\"failure\": null"));
    }
}
