//! Timed elaboration: stream a [`CommPlan`] as resumable per-rank steps.
//!
//! [`TimedCursor`] walks one rank's view of a plan and yields [`Step`]s —
//! work charges, phase markers, collective span boundaries, and the
//! *individual point-to-point messages* each collective decomposes into.
//! It is the third interpreter of the IR, and it must agree with the other
//! two:
//!
//! * [`crate::lower`] executes the plan on the mps thread runtime, whose
//!   collectives ([`mps::Ctx::barrier`] & friends) generate a concrete
//!   message stream;
//! * [`crate::RankCursor`] elaborates the same stream *abstractly* for the
//!   whole-plan static checker;
//! * `TimedCursor` elaborates it *operationally* for the `simrt` event
//!   engine, which replays the steps against an [`mps::RankCore`].
//!
//! The expansions below therefore mirror `mps/src/collect.rs` line by
//! line: same dissemination/binomial/recursive-doubling/ring/pairwise
//! algorithms, same [`internal_tag`] sequencing (including which
//! collectives consume a sequence number before their `p == 1` early
//! return), same per-message contention concurrency (`p` inside
//! collectives, 2 for user point-to-point), same `combine` compute charges.
//! The differential tests in `simrt` pin this agreement counter-for-counter
//! against the thread runtime, and `analyze_plan` totals pin it against the
//! static checker.
//!
//! The two O(p)-message collectives (allgather, all-to-all) are streamed
//! from constant-size generator state instead of being materialized, so a
//! rank's cursor stays a few hundred bytes even at `p = 4096` where one
//! all-to-all instance is 8190 messages.

use std::collections::VecDeque;

use mps::internal_tag;

use crate::expr::{Env, Expr};
use crate::ir::{CommPlan, Op, TagExpr};

/// One operational step of a rank's plan execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Charge `instr` instructions of on-chip compute.
    Compute {
        /// Instruction count.
        instr: f64,
    },
    /// Charge a streaming memory sweep.
    MemStream {
        /// Element touches.
        touches: f64,
        /// Working-set bytes.
        ws: u64,
    },
    /// Charge random memory accesses.
    MemAccess {
        /// Access count.
        accesses: f64,
        /// Working-set bytes.
        ws: u64,
    },
    /// Charge flat local I/O seconds.
    Io {
        /// Duration in seconds.
        seconds: f64,
    },
    /// Enter a named phase.
    Phase(String),
    /// Open a collective span (scope name, e.g. `"mps:alltoall"`).
    CollBegin(&'static str),
    /// Close the innermost collective span.
    CollEnd,
    /// Send `bytes` to `to` under `tag`, at contention `concurrency`.
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
        /// Contention concurrency (`p` inside collectives, 2 otherwise).
        concurrency: usize,
    },
    /// Receive the next `tag` message from `from` (blocking).
    Recv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u64,
    },
    /// Receive the next `tag` message from any rank (blocking wildcard).
    RecvAny {
        /// Message tag.
        tag: u64,
    },
}

/// A frame of the cursor's explicit interpreter stack.
enum Frame<'p> {
    /// A plain op sequence (plan body, `IfElse` branch).
    Seq { ops: &'p [Op], idx: usize },
    /// A loop mid-flight; owns the top loop variable.
    Loop {
        body: &'p [Op],
        idx: usize,
        iter: usize,
        trips: usize,
    },
}

/// Generator state for the O(p)-message collectives, streamed one
/// exchange per [`TimedCursor::next_step`] refill instead of materialized.
enum BigColl<'p> {
    /// Ring allgather: iteration `i` of `p - 1`.
    AllGather { seq: u64, i: usize, bytes: &'p Expr },
    /// Pairwise all-to-all: iteration `i` of `1..p`.
    AllToAll { seq: u64, i: usize, bytes: &'p Expr },
}

/// A resumable per-rank walk of a plan, yielding [`Step`]s.
///
/// # Panics
/// Like [`crate::lower`], the cursor panics on shape violations (failed
/// expressions, out-of-range peers, negative sizes, oversized user tags).
/// Run [`crate::analyze_plan`] first; a clean plan streams without
/// panicking.
pub struct TimedCursor<'p> {
    p: usize,
    rank: usize,
    frames: Vec<Frame<'p>>,
    vars: Vec<i64>,
    /// Expanded-but-unconsumed steps (small collectives, exchanges).
    micro: VecDeque<Step>,
    /// In-flight O(p) collective, streamed into `micro` on demand.
    big: Option<BigColl<'p>>,
    tags_taken: u64,
    coll_seq: u64,
}

impl<'p> TimedCursor<'p> {
    /// A cursor over `plan` for `rank` of `p`.
    #[must_use]
    pub fn new(plan: &'p CommPlan, p: usize, rank: usize) -> Self {
        assert!(p > 0, "need at least one rank");
        assert!(rank < p, "rank {rank} out of range for p = {p}");
        Self {
            p,
            rank,
            frames: vec![Frame::Seq {
                ops: &plan.body,
                idx: 0,
            }],
            vars: Vec::new(),
            micro: VecDeque::new(),
            big: None,
            tags_taken: 0,
            coll_seq: 0,
        }
    }

    /// The next step, or `None` when the rank's program is finished.
    pub fn next_step(&mut self) -> Option<Step> {
        loop {
            if let Some(step) = self.micro.pop_front() {
                return Some(step);
            }
            if self.big.is_some() {
                self.refill_big();
                continue;
            }
            let op = self.advance_frames()?;
            if let Some(step) = self.handle(op) {
                return Some(step);
            }
        }
    }

    /// Pop/step the frame stack to the next op, or `None` at program end.
    fn advance_frames(&mut self) -> Option<&'p Op> {
        loop {
            let frame = self.frames.last_mut()?;
            match frame {
                Frame::Seq { ops, idx } => {
                    if *idx < ops.len() {
                        let op = &ops[*idx];
                        *idx += 1;
                        return Some(op);
                    }
                    self.frames.pop();
                }
                Frame::Loop {
                    body,
                    idx,
                    iter,
                    trips,
                } => {
                    if *idx < body.len() {
                        let op = &body[*idx];
                        *idx += 1;
                        return Some(op);
                    }
                    *iter += 1;
                    if *iter < *trips {
                        *idx = 0;
                        *self.vars.last_mut().expect("loop var present") =
                            i64::try_from(*iter).expect("trip count fits i64");
                    } else {
                        self.frames.pop();
                        self.vars.pop();
                    }
                }
            }
        }
    }

    fn env(&self, peer: Option<i64>) -> Env<'_> {
        #[allow(clippy::cast_possible_wrap)]
        Env {
            p: self.p as i64,
            rank: self.rank as i64,
            peer,
            vars: &self.vars,
        }
    }

    fn eval(&self, e: &Expr, peer: Option<i64>) -> i64 {
        e.eval(&self.env(peer))
            .unwrap_or_else(|err| panic!("plan expression failed to stream: {err}"))
    }

    fn eval_count(&self, e: &Expr, peer: Option<i64>) -> usize {
        let v = self.eval(e, peer);
        usize::try_from(v).unwrap_or_else(|_| panic!("negative size/count {v} in plan"))
    }

    fn eval_bytes(&self, e: &Expr, peer: Option<i64>) -> u64 {
        self.eval_count(e, peer) as u64
    }

    fn eval_rank(&self, e: &Expr) -> usize {
        let v = self.eval(e, None);
        let p = self.p;
        #[allow(clippy::cast_possible_wrap)]
        {
            assert!(
                v >= 0 && v < p as i64,
                "plan peer {v} out of range for p = {p}"
            );
        }
        usize::try_from(v).expect("checked range")
    }

    fn eval_tag(&mut self, t: &TagExpr) -> u64 {
        match t {
            TagExpr::Expr(e) => {
                let v = self.eval(e, None);
                assert!(v >= 0, "negative tag {v} in plan");
                v.unsigned_abs()
            }
            TagExpr::Auto { base, modulo } => {
                assert!(*modulo > 0, "TagExpr::Auto with zero modulus");
                let t0 = self.tags_taken;
                self.tags_taken += 1;
                base + (t0 % modulo)
            }
            TagExpr::Last { base, modulo } => {
                assert!(*modulo > 0, "TagExpr::Last with zero modulus");
                assert!(self.tags_taken > 0, "TagExpr::Last before any tag bump");
                base + ((self.tags_taken - 1) % modulo)
            }
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }

    /// Interpret one op: either return its single step, queue an
    /// expansion, or (for pure control flow) return `None` to continue.
    #[allow(clippy::cast_precision_loss)]
    fn handle(&mut self, op: &'p Op) -> Option<Step> {
        match op {
            Op::Compute { units, scale } => {
                let u = self.eval_count(units, None);
                Some(Step::Compute {
                    instr: u as f64 * scale,
                })
            }
            Op::MemStream { elems, scale, ws } => {
                let e = self.eval_count(elems, None);
                let w = self.eval_count(ws, None);
                Some(Step::MemStream {
                    touches: e as f64 * scale,
                    ws: w as u64,
                })
            }
            Op::MemAccess {
                accesses,
                scale,
                ws,
            } => {
                let a = self.eval_count(accesses, None);
                let w = self.eval_count(ws, None);
                Some(Step::MemAccess {
                    accesses: a as f64 * scale,
                    ws: w as u64,
                })
            }
            Op::Phase(name) => Some(Step::Phase(name.clone())),
            Op::BumpTag => {
                self.tags_taken += 1;
                None
            }
            Op::Send { to, tag, bytes } => {
                let to = self.eval_rank(to);
                let tag = self.eval_tag(tag);
                assert!(tag < mps::USER_TAG_LIMIT, "user tags must be < 2^32");
                let b = self.eval_bytes(bytes, None);
                Some(Step::Send {
                    to,
                    tag,
                    bytes: b,
                    concurrency: 2,
                })
            }
            Op::Recv { from, tag } => {
                let from = self.eval_rank(from);
                let tag = self.eval_tag(tag);
                assert!(tag < mps::USER_TAG_LIMIT, "user tags must be < 2^32");
                Some(Step::Recv { from, tag })
            }
            Op::RecvAny { tag } => {
                let tag = self.eval_tag(tag);
                assert!(tag < mps::USER_TAG_LIMIT, "user tags must be < 2^32");
                Some(Step::RecvAny { tag })
            }
            Op::Exchange {
                partner,
                tag,
                bytes,
            } => {
                let partner = self.eval_rank(partner);
                let tag = self.eval_tag(tag);
                assert!(tag < mps::USER_TAG_LIMIT, "user tags must be < 2^32");
                let b = self.eval_bytes(bytes, None);
                self.micro.push_back(Step::Recv { from: partner, tag });
                Some(Step::Send {
                    to: partner,
                    tag,
                    bytes: b,
                    concurrency: 2,
                })
            }
            Op::Loop { count, body } => {
                let trips = self.eval_count(count, None);
                if trips > 0 {
                    self.vars.push(0);
                    self.frames.push(Frame::Loop {
                        body,
                        idx: 0,
                        iter: 0,
                        trips,
                    });
                }
                None
            }
            Op::IfElse { cond, then, els } => {
                let c = cond
                    .eval(&self.env(None))
                    .unwrap_or_else(|err| panic!("plan condition failed to stream: {err}"));
                self.frames.push(Frame::Seq {
                    ops: if c { then } else { els },
                    idx: 0,
                });
                None
            }
            Op::Barrier => {
                self.expand_barrier();
                None
            }
            Op::Bcast { root, bytes } => {
                let root = self.eval_rank(root);
                let b = self.eval_bytes(bytes, None);
                self.expand_bcast(root, b);
                None
            }
            Op::Reduce { root, elems, .. } => {
                let root = self.eval_rank(root);
                let e = self.eval_count(elems, None);
                self.expand_reduce(root, e);
                None
            }
            Op::AllReduce { elems, .. } => {
                let e = self.eval_count(elems, None);
                self.expand_allreduce(e);
                None
            }
            Op::AllGather { bytes } => {
                let seq = self.next_seq();
                self.micro.push_back(Step::CollBegin("mps:allgather"));
                if self.p > 1 {
                    self.big = Some(BigColl::AllGather { seq, i: 0, bytes });
                } else {
                    self.micro.push_back(Step::CollEnd);
                }
                None
            }
            Op::AllToAll { bytes } => {
                let seq = self.next_seq();
                self.micro.push_back(Step::CollBegin("mps:alltoall"));
                if self.p > 1 {
                    self.big = Some(BigColl::AllToAll { seq, i: 1, bytes });
                } else {
                    self.micro.push_back(Step::CollEnd);
                }
                None
            }
        }
    }

    /// Stream the next exchange of the in-flight O(p) collective into
    /// `micro`, closing the collective when its iterations are exhausted.
    fn refill_big(&mut self) {
        let (p, rank) = (self.p, self.rank);
        let big = self.big.as_mut().expect("big collective in flight");
        match big {
            BigColl::AllGather { seq, i, bytes } => {
                // Mirrors `allgather_inner`: ring, chunk owned by
                // `rank - i` moves right; sizes are per-owner.
                if *i < p - 1 {
                    let (seq, i_now, bytes) = (*seq, *i, *bytes);
                    *i += 1;
                    let right = (rank + 1) % p;
                    let left = (rank + p - 1) % p;
                    let src_owner = (rank + p - i_now) % p;
                    #[allow(clippy::cast_possible_wrap)]
                    let b = self.eval_bytes(bytes, Some(src_owner as i64));
                    let tag = internal_tag(seq, u32::try_from(i_now).expect("round fits u32"));
                    self.micro.push_back(Step::Send {
                        to: right,
                        tag,
                        bytes: b,
                        concurrency: p,
                    });
                    self.micro.push_back(Step::Recv { from: left, tag });
                } else {
                    self.big = None;
                    self.micro.push_back(Step::CollEnd);
                }
            }
            BigColl::AllToAll { seq, i, bytes } => {
                // Mirrors `alltoall_inner`: XOR pairing for powers of two,
                // rotation otherwise; own chunk is free.
                if *i < p {
                    let (seq, i_now, bytes) = (*seq, *i, *bytes);
                    *i += 1;
                    let tag = internal_tag(seq, u32::try_from(i_now).expect("round fits u32"));
                    if p.is_power_of_two() {
                        let partner = rank ^ i_now;
                        #[allow(clippy::cast_possible_wrap)]
                        let b = self.eval_bytes(bytes, Some(partner as i64));
                        self.micro.push_back(Step::Send {
                            to: partner,
                            tag,
                            bytes: b,
                            concurrency: p,
                        });
                        self.micro.push_back(Step::Recv { from: partner, tag });
                    } else {
                        let dst = (rank + i_now) % p;
                        let src = (rank + p - i_now) % p;
                        #[allow(clippy::cast_possible_wrap)]
                        let b = self.eval_bytes(bytes, Some(dst as i64));
                        self.micro.push_back(Step::Send {
                            to: dst,
                            tag,
                            bytes: b,
                            concurrency: p,
                        });
                        self.micro.push_back(Step::Recv { from: src, tag });
                    }
                } else {
                    self.big = None;
                    self.micro.push_back(Step::CollEnd);
                }
            }
        }
    }

    /// Dissemination barrier (`barrier_inner`): at `p == 1` it returns
    /// *before* consuming a sequence number.
    fn expand_barrier(&mut self) {
        let (p, rank) = (self.p, self.rank);
        self.micro.push_back(Step::CollBegin("mps:barrier"));
        if p > 1 {
            let seq = self.next_seq();
            let mut round = 0u32;
            let mut dist = 1usize;
            while dist < p {
                let to = (rank + dist) % p;
                let from = (rank + p - dist) % p;
                let tag = internal_tag(seq, round);
                self.micro.push_back(Step::Send {
                    to,
                    tag,
                    bytes: 0,
                    concurrency: p,
                });
                self.micro.push_back(Step::Recv { from, tag });
                dist <<= 1;
                round += 1;
            }
        }
        self.micro.push_back(Step::CollEnd);
    }

    /// Binomial-tree broadcast (`bcast_inner`); consumes a sequence number
    /// even at `p == 1`.
    fn expand_bcast(&mut self, root: usize, bytes: u64) {
        let (p, rank) = (self.p, self.rank);
        assert!(root < p, "broadcast root {root} out of range");
        self.micro.push_back(Step::CollBegin("mps:bcast"));
        let seq = self.next_seq();
        if p > 1 {
            let vrank = (rank + p - root) % p;
            let tag = internal_tag(seq, 0);
            let mut mask = 1usize;
            while mask < p {
                if vrank & mask != 0 {
                    let src = (rank + p - mask) % p;
                    self.micro.push_back(Step::Recv { from: src, tag });
                    break;
                }
                mask <<= 1;
            }
            mask >>= 1;
            while mask > 0 {
                if vrank + mask < p {
                    let dst = (rank + mask) % p;
                    self.micro.push_back(Step::Send {
                        to: dst,
                        tag,
                        bytes,
                        concurrency: p,
                    });
                }
                mask >>= 1;
            }
        }
        self.micro.push_back(Step::CollEnd);
    }

    /// Binomial-tree reduce (`reduce_inner`): payloads are `f64`
    /// (8 bytes/element), each combine charges one instruction per
    /// element; a non-root rank stops after its send to the parent.
    fn expand_reduce(&mut self, root: usize, elems: usize) {
        let (p, rank) = (self.p, self.rank);
        assert!(root < p, "reduce root {root} out of range");
        self.micro.push_back(Step::CollBegin("mps:reduce"));
        let seq = self.next_seq();
        if p > 1 {
            let bytes = 8 * elems as u64;
            let vrank = (rank + p - root) % p;
            let tag = internal_tag(seq, 0);
            let mut mask = 1usize;
            while mask < p {
                if vrank & mask == 0 {
                    let child_v = vrank | mask;
                    if child_v < p {
                        let src = (child_v + root) % p;
                        self.micro.push_back(Step::Recv { from: src, tag });
                        #[allow(clippy::cast_precision_loss)]
                        self.micro.push_back(Step::Compute {
                            instr: elems as f64,
                        });
                    }
                } else {
                    let parent_v = vrank & !mask;
                    let dst = (parent_v + root) % p;
                    self.micro.push_back(Step::Send {
                        to: dst,
                        tag,
                        bytes,
                        concurrency: p,
                    });
                    break;
                }
                mask <<= 1;
            }
        }
        self.micro.push_back(Step::CollEnd);
    }

    /// Recursive-doubling allreduce (`allreduce_inner`) with pre/post
    /// folding of the non-power-of-two remainder.
    fn expand_allreduce(&mut self, elems: usize) {
        let (p, rank) = (self.p, self.rank);
        self.micro.push_back(Step::CollBegin("mps:allreduce"));
        let seq = self.next_seq();
        if p > 1 {
            let bytes = 8 * elems as u64;
            #[allow(clippy::cast_precision_loss)]
            let instr = elems as f64;
            let m = prev_power_of_two(p);
            let r = p - m;
            if rank >= m {
                self.micro.push_back(Step::Send {
                    to: rank - m,
                    tag: internal_tag(seq, 0),
                    bytes,
                    concurrency: p,
                });
                self.micro.push_back(Step::Recv {
                    from: rank - m,
                    tag: internal_tag(seq, 63),
                });
            } else {
                if rank < r {
                    self.micro.push_back(Step::Recv {
                        from: rank + m,
                        tag: internal_tag(seq, 0),
                    });
                    self.micro.push_back(Step::Compute { instr });
                }
                let mut round = 1u32;
                let mut mask = 1usize;
                while mask < m {
                    let partner = rank ^ mask;
                    let tag = internal_tag(seq, round);
                    self.micro.push_back(Step::Send {
                        to: partner,
                        tag,
                        bytes,
                        concurrency: p,
                    });
                    self.micro.push_back(Step::Recv { from: partner, tag });
                    self.micro.push_back(Step::Compute { instr });
                    mask <<= 1;
                    round += 1;
                }
                if rank < r {
                    self.micro.push_back(Step::Send {
                        to: rank + m,
                        tag: internal_tag(seq, 63),
                        bytes,
                        concurrency: p,
                    });
                }
            }
        }
        self.micro.push_back(Step::CollEnd);
    }
}

fn prev_power_of_two(p: usize) -> usize {
    assert!(p > 0);
    1usize << (usize::BITS - 1 - p.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::analyze_plan;
    use crate::ir::CommPlan;

    /// Drain a cursor, returning all steps.
    fn drain(plan: &CommPlan, p: usize, rank: usize) -> Vec<Step> {
        let mut c = TimedCursor::new(plan, p, rank);
        let mut out = Vec::new();
        while let Some(s) = c.next_step() {
            out.push(s);
            assert!(out.len() < 1_000_000, "runaway cursor");
        }
        out
    }

    fn coll_plan(op: Op) -> CommPlan {
        CommPlan::new("one-coll", vec![op])
    }

    /// Per-rank message/byte totals of the streamed steps match the
    /// static checker's totals for every collective kind.
    #[test]
    fn streamed_messages_match_static_analysis() {
        let plans = [
            coll_plan(Op::Barrier),
            coll_plan(Op::Bcast {
                root: Expr::Const(0),
                bytes: Expr::Const(4096),
            }),
            coll_plan(Op::Reduce {
                root: Expr::Const(0),
                elems: Expr::Const(128),
                op: mps::ReduceOp::Sum,
            }),
            coll_plan(Op::AllReduce {
                elems: Expr::Const(64),
                op: mps::ReduceOp::Sum,
            }),
            coll_plan(Op::AllGather {
                bytes: (Expr::Peer + Expr::Const(1)) * Expr::Const(16),
            }),
            coll_plan(Op::AllToAll {
                bytes: (Expr::Peer + Expr::Const(2)) * Expr::Const(8),
            }),
        ];
        for plan in &plans {
            for p in [1usize, 2, 3, 4, 6, 8] {
                let analysis = analyze_plan(plan, p);
                assert!(analysis.clean(), "{}: {:?}", plan.name, analysis.findings);
                let mut messages = 0u64;
                let mut bytes = 0u64;
                for rank in 0..p {
                    for step in drain(plan, p, rank) {
                        if let Step::Send { bytes: b, .. } = step {
                            messages += 1;
                            bytes += b;
                        }
                    }
                }
                assert_eq!(
                    messages, analysis.total.messages,
                    "{} p={p} messages",
                    plan.name
                );
                assert_eq!(bytes, analysis.total.bytes, "{} p={p} bytes", plan.name);
            }
        }
    }

    /// Every send streamed by one rank has a matching recv streamed by its
    /// destination (same tag, mirrored endpoints), for a mixed plan.
    #[test]
    fn sends_and_recvs_pair_up() {
        let plan = CommPlan::new(
            "mixed",
            vec![
                Op::Phase("work".into()),
                Op::Compute {
                    units: Expr::Const(100),
                    scale: 1.0,
                },
                Op::Barrier,
                Op::AllReduce {
                    elems: Expr::Const(8),
                    op: mps::ReduceOp::Sum,
                },
                Op::AllToAll {
                    bytes: Expr::Const(32),
                },
            ],
        );
        let p = 6; // non-power-of-two exercises fold + rotation paths
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for rank in 0..p {
            for step in drain(&plan, p, rank) {
                match step {
                    Step::Send { to, tag, .. } => sends.push((rank, to, tag)),
                    Step::Recv { from, tag } => recvs.push((from, rank, tag)),
                    _ => {}
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs);
    }

    /// Loop variables and Auto/Last tags stream exactly like `lower`.
    #[test]
    fn loop_vars_and_auto_tags() {
        let plan = CommPlan::new(
            "tags",
            vec![Op::Loop {
                count: Expr::Const(3),
                body: vec![
                    Op::BumpTag,
                    Op::IfElse {
                        cond: crate::Cond::Eq(Expr::Rank, Expr::Const(0)),
                        then: vec![Op::Send {
                            to: Expr::Const(1),
                            tag: TagExpr::Last {
                                base: 100,
                                modulo: 8,
                            },
                            bytes: Expr::Var(0) * Expr::Const(8),
                        }],
                        els: vec![Op::Recv {
                            from: Expr::Const(0),
                            tag: TagExpr::Last {
                                base: 100,
                                modulo: 8,
                            },
                        }],
                    },
                ],
            }],
        );
        let steps = drain(&plan, 2, 0);
        let sends: Vec<(u64, u64)> = steps
            .iter()
            .filter_map(|s| match s {
                Step::Send { tag, bytes, .. } => Some((*tag, *bytes)),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![(100, 0), (101, 8), (102, 16)]);
    }

    /// Collective span boundaries bracket every collective's messages.
    #[test]
    fn coll_scopes_are_balanced() {
        let plan = coll_plan(Op::AllToAll {
            bytes: Expr::Const(64),
        });
        for p in [1usize, 4, 5] {
            let steps = drain(&plan, p, 0);
            assert_eq!(steps.first(), Some(&Step::CollBegin("mps:alltoall")));
            assert_eq!(steps.last(), Some(&Step::CollEnd));
            let depth: i64 = steps
                .iter()
                .map(|s| match s {
                    Step::CollBegin(_) => 1,
                    Step::CollEnd => -1,
                    _ => 0,
                })
                .sum();
            assert_eq!(depth, 0);
        }
    }
}
