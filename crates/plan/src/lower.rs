//! Lowering: compile a [`CommPlan`] onto the [`mps`] runtime.
//!
//! [`lower`] interprets the plan inside a rank's [`mps::Ctx`], issuing the
//! real runtime calls the IR ops denote — so every collective goes through
//! `mps`'s own algorithms, and the messages on the wire are exactly the
//! ones the static analyses in [`crate::check`] reasoned about. Payloads
//! are zero-filled bytes (`u8` for point-to-point and byte-sized
//! collectives, `f64` for reductions): plans model communication *shape*
//! and *cost*, not data.
//!
//! # Shape errors panic
//!
//! Lowering panics on any shape violation (peer out of range,
//! self-message, oversized tag, failed expression). Run
//! [`crate::analyze_plan`] first: a plan whose analysis reports no
//! [`ShapeIssue`](crate::ShapeIssue) findings lowers without panicking.

use mps::Ctx;

use crate::expr::{Env, Expr};
use crate::ir::{CommPlan, Op, TagExpr};

struct Lowerer<'c, 'w> {
    ctx: &'c mut Ctx<'w>,
    vars: Vec<i64>,
    tags_taken: u64,
}

impl Lowerer<'_, '_> {
    fn env(&self, peer: Option<i64>) -> Env<'_> {
        Env {
            p: self.ctx.size() as i64,
            rank: self.ctx.rank() as i64,
            peer,
            vars: &self.vars,
        }
    }

    fn eval(&self, e: &Expr, peer: Option<i64>) -> i64 {
        e.eval(&self.env(peer))
            .unwrap_or_else(|err| panic!("plan expression failed to lower: {err}"))
    }

    fn eval_count(&self, e: &Expr, peer: Option<i64>) -> usize {
        let v = self.eval(e, peer);
        usize::try_from(v).unwrap_or_else(|_| panic!("negative size/count {v} in plan"))
    }

    fn eval_rank(&self, e: &Expr) -> usize {
        let v = self.eval(e, None);
        let p = self.ctx.size();
        assert!(
            v >= 0 && v < p as i64,
            "plan peer {v} out of range for p = {p}"
        );
        usize::try_from(v).expect("checked range")
    }

    fn eval_tag(&mut self, t: &TagExpr) -> u64 {
        match t {
            TagExpr::Expr(e) => {
                let v = self.eval(e, None);
                assert!(v >= 0, "negative tag {v} in plan");
                v.unsigned_abs()
            }
            TagExpr::Auto { base, modulo } => {
                assert!(*modulo > 0, "TagExpr::Auto with zero modulus");
                let t0 = self.tags_taken;
                self.tags_taken += 1;
                base + (t0 % modulo)
            }
            TagExpr::Last { base, modulo } => {
                assert!(*modulo > 0, "TagExpr::Last with zero modulus");
                assert!(self.tags_taken > 0, "TagExpr::Last before any tag bump");
                base + ((self.tags_taken - 1) % modulo)
            }
        }
    }

    #[allow(clippy::cast_precision_loss)]
    fn run(&mut self, ops: &[Op]) {
        for op in ops {
            match op {
                Op::Compute { units, scale } => {
                    let u = self.eval_count(units, None);
                    self.ctx.compute(u as f64 * scale);
                }
                Op::MemStream { elems, scale, ws } => {
                    let e = self.eval_count(elems, None);
                    let w = self.eval_count(ws, None);
                    self.ctx.mem_stream(e as f64 * scale, w as u64);
                }
                Op::MemAccess {
                    accesses,
                    scale,
                    ws,
                } => {
                    let a = self.eval_count(accesses, None);
                    let w = self.eval_count(ws, None);
                    self.ctx.mem_access(a as f64 * scale, w as u64);
                }
                Op::Phase(name) => self.ctx.phase(name),
                Op::BumpTag => self.tags_taken += 1,
                Op::Send { to, tag, bytes } => {
                    let to = self.eval_rank(to);
                    let tag = self.eval_tag(tag);
                    let b = self.eval_count(bytes, None);
                    self.ctx.send(to, tag, vec![0u8; b]);
                }
                Op::Recv { from, tag } => {
                    let from = self.eval_rank(from);
                    let tag = self.eval_tag(tag);
                    let _: Vec<u8> = self.ctx.recv(from, tag);
                }
                Op::RecvAny { tag } => {
                    let tag = self.eval_tag(tag);
                    let _: (usize, Vec<u8>) = self.ctx.recv_any(tag);
                }
                Op::Exchange {
                    partner,
                    tag,
                    bytes,
                } => {
                    let partner = self.eval_rank(partner);
                    let tag = self.eval_tag(tag);
                    let b = self.eval_count(bytes, None);
                    let _: Vec<u8> = self.ctx.exchange(partner, tag, vec![0u8; b]);
                }
                Op::Loop { count, body } => {
                    let n = self.eval_count(count, None);
                    self.vars.push(0);
                    for i in 0..n {
                        *self.vars.last_mut().expect("loop var present") =
                            i64::try_from(i).expect("trip count fits i64");
                        self.run(body);
                    }
                    self.vars.pop();
                }
                Op::IfElse { cond, then, els } => {
                    let c = cond
                        .eval(&self.env(None))
                        .unwrap_or_else(|err| panic!("plan condition failed to lower: {err}"));
                    self.run(if c { then } else { els });
                }
                Op::Barrier => self.ctx.barrier(),
                Op::Bcast { root, bytes } => {
                    let root = self.eval_rank(root);
                    let b = self.eval_count(bytes, None);
                    let _: Vec<u8> = self.ctx.bcast(root, vec![0u8; b]);
                }
                Op::Reduce { root, elems, op } => {
                    let root = self.eval_rank(root);
                    let e = self.eval_count(elems, None);
                    let _ = self.ctx.reduce(root, &vec![0.0f64; e], *op);
                }
                Op::AllReduce { elems, op } => {
                    let e = self.eval_count(elems, None);
                    let _ = self.ctx.allreduce(&vec![0.0f64; e], *op);
                }
                Op::AllGather { bytes } => {
                    let mine = self.eval_count(bytes, Some(self.ctx.rank() as i64));
                    let _ = self.ctx.allgather(vec![0u8; mine]);
                }
                Op::AllToAll { bytes } => {
                    let p = self.ctx.size();
                    let chunks: Vec<Vec<u8>> = (0..p)
                        .map(|d| vec![0u8; self.eval_count(bytes, Some(d as i64))])
                        .collect();
                    let _ = self.ctx.alltoall(chunks);
                }
            }
        }
    }
}

/// Execute `plan` inside one rank of an [`mps`] run.
///
/// # Panics
/// Panics on shape violations — see the module docs; analyze first.
pub fn lower(plan: &CommPlan, ctx: &mut Ctx<'_>) {
    let mut l = Lowerer {
        ctx,
        vars: Vec::new(),
        tags_taken: 0,
    };
    l.run(&plan.body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::analyze_plan;
    use crate::expr::Cond;
    use mps::World;
    use simcluster::system_g;

    fn world() -> World {
        World::new(system_g(), 2.8e9)
    }

    fn ring_plan() -> CommPlan {
        CommPlan::new(
            "ring",
            vec![
                Op::Phase("ring".into()),
                Op::Compute {
                    units: Expr::Const(500),
                    scale: 2.0,
                },
                Op::Send {
                    to: (Expr::Rank + Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                    bytes: Expr::Const(64),
                },
                Op::Recv {
                    from: (Expr::Rank + Expr::P - Expr::Const(1)) % Expr::P,
                    tag: TagExpr::Expr(Expr::Const(1)),
                },
                Op::Barrier,
            ],
        )
    }

    #[test]
    fn lowered_counters_match_static_totals() {
        let plan = ring_plan();
        let p = 4;
        let analysis = analyze_plan(&plan, p);
        assert!(analysis.clean(), "{:?}", analysis.findings);

        let w = world();
        let report = mps::run(&w, p, |ctx| lower(&plan, ctx));
        let totals = report.total_counters();
        #[allow(clippy::cast_precision_loss)]
        {
            assert_eq!(totals.messages, analysis.total.messages as f64);
            assert_eq!(totals.bytes, analysis.total.bytes as f64);
        }
        // wc: ring compute only (barrier has no combine); 500·2 per rank.
        assert!((totals.wc - 4000.0).abs() < 1e-9);
        assert!((totals.wc - analysis.total.wc).abs() < 1e-9);
    }

    #[test]
    fn loops_branches_and_collectives_lower_and_complete() {
        let plan = CommPlan::new(
            "mix",
            vec![
                Op::Loop {
                    count: Expr::Const(2),
                    body: vec![
                        Op::AllReduce {
                            elems: Expr::Const(3),
                            op: mps::ReduceOp::Sum,
                        },
                        Op::IfElse {
                            cond: Cond::Eq(Expr::Rank, Expr::Const(0)),
                            then: vec![Op::Send {
                                to: Expr::Const(1),
                                tag: TagExpr::Expr(Expr::Var(0) + Expr::Const(10)),
                                bytes: Expr::Const(8),
                            }],
                            els: vec![Op::IfElse {
                                cond: Cond::Eq(Expr::Rank, Expr::Const(1)),
                                then: vec![Op::Recv {
                                    from: Expr::Const(0),
                                    tag: TagExpr::Expr(Expr::Var(0) + Expr::Const(10)),
                                }],
                                els: vec![],
                            }],
                        },
                    ],
                },
                Op::AllToAll {
                    bytes: Expr::Const(16),
                },
            ],
        );
        let p = 3;
        let analysis = analyze_plan(&plan, p);
        assert!(analysis.clean(), "{:?}", analysis.findings);

        let w = world();
        let report = mps::run(&w, p, |ctx| lower(&plan, ctx));
        let totals = report.total_counters();
        #[allow(clippy::cast_precision_loss)]
        {
            assert_eq!(totals.messages, analysis.total.messages as f64);
            assert_eq!(totals.bytes, analysis.total.bytes as f64);
        }
        // Combine charges match too: allreduce adds wc on every rank.
        assert!((totals.wc - analysis.total.wc).abs() < 1e-9);
    }
}
