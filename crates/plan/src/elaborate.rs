//! Per-rank lazy elaboration of a [`CommPlan`] into a stream of abstract
//! point-to-point operations.
//!
//! A [`RankCursor`] walks one rank's view of the plan, evaluating symbolic
//! expressions and expanding each collective macro-op into the *exact*
//! message sequence [`mps`]'s collectives produce — same peers, same
//! [`mps::internal_tag`] values, same per-rank collective sequence numbers —
//! so the static matching in [`crate::check`] sees precisely the messages a
//! [`crate::lower`]ed execution would send. Expansion is lazy (one
//! collective call buffered at a time, `O(p)` transient ops), which is what
//! lets the checker certify plans at `p = 1024+` without materializing the
//! multi-million-op global stream.
//!
//! Cost events (compute instructions, memory accesses, message/byte and
//! per-collective counters) accumulate on the cursor as a side effect of
//! the walk, mirroring what [`mps::Ctx`] would charge — including the
//! combine charges inside reductions.

use std::collections::VecDeque;
use std::fmt;

use mps::{internal_tag, USER_TAG_LIMIT};

use crate::expr::{Env, EvalError, Expr};
use crate::ir::{CommPlan, Op, TagExpr};

/// The collective families, for per-collective accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    /// Dissemination barrier.
    Barrier,
    /// Binomial broadcast.
    Bcast,
    /// Binomial reduction.
    Reduce,
    /// Recursive-doubling allreduce.
    AllReduce,
    /// Ring allgather.
    AllGather,
    /// Pairwise-exchange all-to-all.
    AllToAll,
}

/// Number of collective families.
pub const COLL_KINDS: usize = 6;

impl CollKind {
    /// All families, in index order.
    pub const ALL: [CollKind; COLL_KINDS] = [
        CollKind::Barrier,
        CollKind::Bcast,
        CollKind::Reduce,
        CollKind::AllReduce,
        CollKind::AllGather,
        CollKind::AllToAll,
    ];

    /// Index into a `[T; COLL_KINDS]` table.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CollKind::Barrier => 0,
            CollKind::Bcast => 1,
            CollKind::Reduce => 2,
            CollKind::AllReduce => 3,
            CollKind::AllGather => 4,
            CollKind::AllToAll => 5,
        }
    }

    /// The span/metric name the `mps` runtime uses for this family.
    #[must_use]
    pub fn scope_name(self) -> &'static str {
        match self {
            CollKind::Barrier => "mps:barrier",
            CollKind::Bcast => "mps:bcast",
            CollKind::Reduce => "mps:reduce",
            CollKind::AllReduce => "mps:allreduce",
            CollKind::AllGather => "mps:allgather",
            CollKind::AllToAll => "mps:alltoall",
        }
    }
}

/// Per-family call/message/byte counters (the statics mirror of the
/// `mps.collective.<name>.*` metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollStats {
    /// Collective invocations.
    pub calls: u64,
    /// Messages sent from this rank inside the family.
    pub messages: u64,
    /// Bytes sent from this rank inside the family.
    pub bytes: u64,
}

/// Cost totals accumulated while elaborating one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankCost {
    /// On-chip instructions (`Compute` ops plus collective combines) — the
    /// counters' `Wc`.
    pub wc: f64,
    /// Memory accesses charged via `MemStream`/`MemAccess` — an upper
    /// bound on the counters' off-chip `Wm` (the dynamic cache split may
    /// classify any fraction as on-chip).
    pub mem_accesses: f64,
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Phase markers entered.
    pub phases: u64,
}

impl RankCost {
    /// Accumulate `other` into `self`.
    pub fn absorb(&mut self, other: &RankCost) {
        self.wc += other.wc;
        self.mem_accesses += other.mem_accesses;
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.phases += other.phases;
    }
}

/// An abstract point-to-point operation: what the matching checker sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AOp {
    /// Eager send (never blocks in the `mps` model).
    Send {
        /// Destination rank.
        to: usize,
        /// Resolved tag (user or internal-collective).
        tag: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// Blocking receive from a specific source.
    Recv {
        /// Source rank.
        from: usize,
        /// Resolved tag.
        tag: u64,
    },
    /// Blocking wildcard receive.
    RecvAny {
        /// Resolved tag.
        tag: u64,
    },
}

/// A shape violation found while elaborating (before any matching).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeIssue {
    /// A symbolic expression failed to evaluate.
    Eval(EvalError),
    /// A peer expression resolved outside `[0, p)`.
    PeerOutOfRange {
        /// The resolved peer value.
        peer: i64,
    },
    /// A send/recv/exchange peer resolved to the executing rank itself.
    SelfMessage {
        /// The rank (== peer).
        peer: usize,
    },
    /// A user tag at or above [`mps::USER_TAG_LIMIT`].
    TagTooLarge {
        /// The resolved tag.
        tag: u64,
    },
    /// A negative byte count, element count, or trip count.
    NegativeCount {
        /// The resolved value.
        value: i64,
    },
    /// [`TagExpr::Last`] with no preceding `BumpTag`/`Auto` bump.
    LastTagWithoutBump,
}

impl From<EvalError> for ShapeIssue {
    fn from(e: EvalError) -> Self {
        ShapeIssue::Eval(e)
    }
}

impl fmt::Display for ShapeIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Eval(e) => write!(f, "expression error: {e}"),
            Self::PeerOutOfRange { peer } => write!(f, "peer {peer} out of range"),
            Self::SelfMessage { peer } => write!(f, "self-message on rank {peer}"),
            Self::TagTooLarge { tag } => {
                write!(f, "tag {tag} >= user-tag limit {USER_TAG_LIMIT}")
            }
            Self::NegativeCount { value } => write!(f, "negative size/count {value}"),
            Self::LastTagWithoutBump => write!(f, "TagExpr::Last before any tag bump"),
        }
    }
}

struct Frame<'p> {
    ops: &'p [Op],
    idx: usize,
    /// Loop repetitions still to run after the current one.
    remaining: i64,
    is_loop: bool,
}

/// Lazy per-rank elaborator: call [`RankCursor::next_comm`] until `None`.
pub struct RankCursor<'p> {
    p: usize,
    rank: usize,
    frames: Vec<Frame<'p>>,
    vars: Vec<i64>,
    tags_taken: u64,
    coll_seq: u64,
    buffered: VecDeque<AOp>,
    /// Cost totals accumulated so far.
    pub cost: RankCost,
    /// Per-collective-family counters accumulated so far.
    pub colls: [CollStats; COLL_KINDS],
    /// Whether a wildcard receive has been emitted.
    pub saw_wildcard: bool,
    /// Abstract comm ops emitted so far (the op index of the *next* op).
    pub emitted: u64,
    /// Emitted-op index of the first wildcard receive, if any — the
    /// witness for a conservative (`exact = false`) verdict.
    pub first_wildcard_op: Option<u64>,
}

impl<'p> RankCursor<'p> {
    /// A cursor over `plan` for `rank` of `p`.
    #[must_use]
    pub fn new(plan: &'p CommPlan, p: usize, rank: usize) -> Self {
        assert!(p >= 1 && rank < p, "rank {rank} outside world of {p}");
        Self {
            p,
            rank,
            frames: vec![Frame {
                ops: &plan.body,
                idx: 0,
                remaining: 0,
                is_loop: false,
            }],
            vars: Vec::new(),
            tags_taken: 0,
            coll_seq: 0,
            buffered: VecDeque::new(),
            cost: RankCost::default(),
            colls: [CollStats::default(); COLL_KINDS],
            saw_wildcard: false,
            emitted: 0,
            first_wildcard_op: None,
        }
    }

    fn env(&self, peer: Option<i64>) -> Env<'_> {
        Env {
            p: self.p as i64,
            rank: self.rank as i64,
            peer,
            vars: &self.vars,
        }
    }

    fn eval_nonneg(&self, e: &Expr, peer: Option<i64>) -> Result<i64, ShapeIssue> {
        let v = e.eval(&self.env(peer))?;
        if v < 0 {
            return Err(ShapeIssue::NegativeCount { value: v });
        }
        Ok(v)
    }

    fn eval_peer(&self, e: &Expr) -> Result<usize, ShapeIssue> {
        let v = e.eval(&self.env(None))?;
        if v < 0 || v >= self.p as i64 {
            return Err(ShapeIssue::PeerOutOfRange { peer: v });
        }
        Ok(usize::try_from(v).expect("checked range"))
    }

    fn eval_other_rank(&self, e: &Expr) -> Result<usize, ShapeIssue> {
        let v = self.eval_peer(e)?;
        if v == self.rank {
            return Err(ShapeIssue::SelfMessage { peer: v });
        }
        Ok(v)
    }

    fn eval_bytes(&self, e: &Expr, peer: Option<i64>) -> Result<u64, ShapeIssue> {
        let v = self.eval_nonneg(e, peer)?;
        Ok(v.unsigned_abs())
    }

    fn eval_tag(&mut self, t: &TagExpr) -> Result<u64, ShapeIssue> {
        let raw = match t {
            TagExpr::Expr(e) => self.eval_nonneg(e, None)?.unsigned_abs(),
            TagExpr::Auto { base, modulo } => {
                if *modulo == 0 {
                    return Err(ShapeIssue::Eval(EvalError::DivByZero));
                }
                let t0 = self.tags_taken;
                self.tags_taken += 1;
                base + (t0 % modulo)
            }
            TagExpr::Last { base, modulo } => {
                if *modulo == 0 {
                    return Err(ShapeIssue::Eval(EvalError::DivByZero));
                }
                if self.tags_taken == 0 {
                    return Err(ShapeIssue::LastTagWithoutBump);
                }
                base + ((self.tags_taken - 1) % modulo)
            }
        };
        if raw >= USER_TAG_LIMIT {
            return Err(ShapeIssue::TagTooLarge { tag: raw });
        }
        Ok(raw)
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }

    fn emit_send(&mut self, kind: CollKind, to: usize, tag: u64, bytes: u64) {
        self.cost.messages += 1;
        self.cost.bytes += bytes;
        let s = &mut self.colls[kind.index()];
        s.messages += 1;
        s.bytes += bytes;
        self.buffered.push_back(AOp::Send { to, tag, bytes });
    }

    fn emit_recv(&mut self, from: usize, tag: u64) {
        self.buffered.push_back(AOp::Recv { from, tag });
    }

    /// Advance to the next abstract comm op, accumulating cost events along
    /// the way. `Ok(None)` means the rank's program is complete.
    pub fn next_comm(&mut self) -> Result<Option<AOp>, ShapeIssue> {
        let r = self.next_comm_inner();
        if let Ok(Some(a)) = &r {
            if matches!(a, AOp::RecvAny { .. }) && self.first_wildcard_op.is_none() {
                self.first_wildcard_op = Some(self.emitted);
            }
            self.emitted += 1;
        }
        r
    }

    fn next_comm_inner(&mut self) -> Result<Option<AOp>, ShapeIssue> {
        loop {
            if let Some(a) = self.buffered.pop_front() {
                return Ok(Some(a));
            }
            let Some(frame) = self.frames.last_mut() else {
                return Ok(None);
            };
            if frame.idx >= frame.ops.len() {
                if frame.is_loop && frame.remaining > 0 {
                    frame.remaining -= 1;
                    frame.idx = 0;
                    *self.vars.last_mut().expect("loop var present") += 1;
                } else {
                    let f = self.frames.pop().expect("frame present");
                    if f.is_loop {
                        self.vars.pop();
                    }
                }
                continue;
            }
            let ops = frame.ops;
            let idx = frame.idx;
            frame.idx += 1;
            let op: &'p Op = &ops[idx];
            match op {
                Op::Compute { units, scale } => {
                    let u = self.eval_nonneg(units, None)?;
                    self.cost.wc += u as f64 * scale;
                }
                Op::MemStream { elems, scale, ws } => {
                    let e = self.eval_nonneg(elems, None)?;
                    self.eval_nonneg(ws, None)?;
                    // mem_stream(touches, ws) == mem_access(touches/8, ws).
                    self.cost.mem_accesses += e as f64 * scale / 8.0;
                }
                Op::MemAccess {
                    accesses,
                    scale,
                    ws,
                } => {
                    let a = self.eval_nonneg(accesses, None)?;
                    self.eval_nonneg(ws, None)?;
                    self.cost.mem_accesses += a as f64 * scale;
                }
                Op::Phase(_) => self.cost.phases += 1,
                Op::BumpTag => self.tags_taken += 1,
                Op::Send { to, tag, bytes } => {
                    let to = self.eval_other_rank(to)?;
                    let tag = self.eval_tag(tag)?;
                    let bytes = self.eval_bytes(bytes, None)?;
                    self.cost.messages += 1;
                    self.cost.bytes += bytes;
                    return Ok(Some(AOp::Send { to, tag, bytes }));
                }
                Op::Recv { from, tag } => {
                    let from = self.eval_other_rank(from)?;
                    let tag = self.eval_tag(tag)?;
                    return Ok(Some(AOp::Recv { from, tag }));
                }
                Op::RecvAny { tag } => {
                    let tag = self.eval_tag(tag)?;
                    self.saw_wildcard = true;
                    return Ok(Some(AOp::RecvAny { tag }));
                }
                Op::Exchange {
                    partner,
                    tag,
                    bytes,
                } => {
                    let partner = self.eval_other_rank(partner)?;
                    let tag = self.eval_tag(tag)?;
                    let bytes = self.eval_bytes(bytes, None)?;
                    self.cost.messages += 1;
                    self.cost.bytes += bytes;
                    // exchange == send-then-recv on the same tag.
                    self.emit_recv(partner, tag);
                    return Ok(Some(AOp::Send {
                        to: partner,
                        tag,
                        bytes,
                    }));
                }
                Op::Loop { count, body } => {
                    let n = self.eval_nonneg(count, None)?;
                    if n > 0 {
                        self.frames.push(Frame {
                            ops: body,
                            idx: 0,
                            remaining: n - 1,
                            is_loop: true,
                        });
                        self.vars.push(0);
                    }
                }
                Op::IfElse { cond, then, els } => {
                    let branch = if cond.eval(&self.env(None))? {
                        then
                    } else {
                        els
                    };
                    if !branch.is_empty() {
                        self.frames.push(Frame {
                            ops: branch,
                            idx: 0,
                            remaining: 0,
                            is_loop: false,
                        });
                    }
                }
                Op::Barrier => self.expand_barrier(),
                Op::Bcast { root, bytes } => {
                    let root = self.eval_peer(root)?;
                    let bytes = self.eval_bytes(bytes, None)?;
                    self.expand_bcast(root, bytes);
                }
                Op::Reduce { root, elems, .. } => {
                    let root = self.eval_peer(root)?;
                    let elems = self.eval_bytes(elems, None)?;
                    self.expand_reduce(root, elems);
                }
                Op::AllReduce { elems, .. } => {
                    let elems = self.eval_bytes(elems, None)?;
                    self.expand_allreduce(elems);
                }
                Op::AllGather { bytes } => self.expand_allgather(bytes)?,
                Op::AllToAll { bytes } => self.expand_alltoall(bytes)?,
            }
        }
    }

    // -----------------------------------------------------------------
    // Collective expansions: exact mirrors of `mps::collect`'s algorithms
    // (peers, tags, sequence-number consumption, combine charges).
    // -----------------------------------------------------------------

    fn expand_barrier(&mut self) {
        let (p, rank) = (self.p, self.rank);
        self.colls[CollKind::Barrier.index()].calls += 1;
        // barrier_inner returns before consuming a sequence number at p=1.
        if p == 1 {
            return;
        }
        let seq = self.next_seq();
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let to = (rank + dist) % p;
            let from = (rank + p - dist) % p;
            let tag = internal_tag(seq, round);
            self.emit_send(CollKind::Barrier, to, tag, 0);
            self.emit_recv(from, tag);
            dist <<= 1;
            round += 1;
        }
    }

    fn expand_bcast(&mut self, root: usize, bytes: u64) {
        let (p, rank) = (self.p, self.rank);
        self.colls[CollKind::Bcast.index()].calls += 1;
        let seq = self.next_seq();
        if p == 1 {
            return;
        }
        let vrank = (rank + p - root) % p;
        let tag = internal_tag(seq, 0);
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let src = (rank + p - mask) % p;
                self.emit_recv(src, tag);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < p {
                let dst = (rank + mask) % p;
                self.emit_send(CollKind::Bcast, dst, tag, bytes);
            }
            mask >>= 1;
        }
    }

    fn expand_reduce(&mut self, root: usize, elems: u64) {
        let (p, rank) = (self.p, self.rank);
        self.colls[CollKind::Reduce.index()].calls += 1;
        let seq = self.next_seq();
        if p == 1 {
            return;
        }
        let bytes = elems * 8;
        let vrank = (rank + p - root) % p;
        let tag = internal_tag(seq, 0);
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask == 0 {
                let child_v = vrank | mask;
                if child_v < p {
                    let src = (child_v + root) % p;
                    self.emit_recv(src, tag);
                    self.cost.wc += elems as f64; // combine charge
                }
            } else {
                let parent_v = vrank & !mask;
                let dst = (parent_v + root) % p;
                self.emit_send(CollKind::Reduce, dst, tag, bytes);
                return;
            }
            mask <<= 1;
        }
    }

    fn expand_allreduce(&mut self, elems: u64) {
        let (p, rank) = (self.p, self.rank);
        self.colls[CollKind::AllReduce.index()].calls += 1;
        let seq = self.next_seq();
        if p == 1 {
            return;
        }
        let bytes = elems * 8;
        let m = prev_power_of_two(p);
        let r = p - m;
        if rank >= m {
            self.emit_send(CollKind::AllReduce, rank - m, internal_tag(seq, 0), bytes);
            self.emit_recv(rank - m, internal_tag(seq, 63));
            return;
        }
        if rank < r {
            self.emit_recv(rank + m, internal_tag(seq, 0));
            self.cost.wc += elems as f64;
        }
        let mut round = 1u32;
        let mut mask = 1usize;
        while mask < m {
            let partner = rank ^ mask;
            let tag = internal_tag(seq, round);
            self.emit_send(CollKind::AllReduce, partner, tag, bytes);
            self.emit_recv(partner, tag);
            self.cost.wc += elems as f64;
            mask <<= 1;
            round += 1;
        }
        if rank < r {
            self.emit_send(CollKind::AllReduce, rank + m, internal_tag(seq, 63), bytes);
        }
    }

    fn expand_allgather(&mut self, bytes: &Expr) -> Result<(), ShapeIssue> {
        let (p, rank) = (self.p, self.rank);
        self.colls[CollKind::AllGather.index()].calls += 1;
        let seq = self.next_seq();
        if p > 1 {
            let right = (rank + 1) % p;
            let left = (rank + p - 1) % p;
            for i in 0..p - 1 {
                let src_owner = (rank + p - i) % p;
                let b = self.eval_bytes(bytes, Some(src_owner as i64))?;
                let tag = internal_tag(seq, i as u32);
                self.emit_send(CollKind::AllGather, right, tag, b);
                self.emit_recv(left, tag);
            }
        }
        Ok(())
    }

    fn expand_alltoall(&mut self, bytes: &Expr) -> Result<(), ShapeIssue> {
        let (p, rank) = (self.p, self.rank);
        self.colls[CollKind::AllToAll.index()].calls += 1;
        let seq = self.next_seq();
        if p > 1 {
            if p.is_power_of_two() {
                for i in 1..p {
                    let partner = rank ^ i;
                    let tag = internal_tag(seq, i as u32);
                    let b = self.eval_bytes(bytes, Some(partner as i64))?;
                    self.emit_send(CollKind::AllToAll, partner, tag, b);
                    self.emit_recv(partner, tag);
                }
            } else {
                for i in 1..p {
                    let dst = (rank + i) % p;
                    let src = (rank + p - i) % p;
                    let tag = internal_tag(seq, i as u32);
                    let b = self.eval_bytes(bytes, Some(dst as i64))?;
                    self.emit_send(CollKind::AllToAll, dst, tag, b);
                    self.emit_recv(src, tag);
                }
            }
        }
        Ok(())
    }
}

fn prev_power_of_two(p: usize) -> usize {
    assert!(p > 0);
    1usize << (usize::BITS - 1 - p.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::CommPlan;

    fn drain(plan: &CommPlan, p: usize, rank: usize) -> (Vec<AOp>, RankCost) {
        let mut c = RankCursor::new(plan, p, rank);
        let mut out = Vec::new();
        while let Some(a) = c.next_comm().expect("clean plan") {
            out.push(a);
        }
        (out, c.cost)
    }

    #[test]
    fn allreduce_power_of_two_is_pure_recursive_doubling() {
        let plan = CommPlan::new(
            "ar",
            vec![Op::AllReduce {
                elems: Expr::Const(2),
                op: mps::ReduceOp::Sum,
            }],
        );
        let (ops, cost) = drain(&plan, 4, 1);
        // log2(4) = 2 rounds, each an exchange: send+recv per round.
        assert_eq!(ops.len(), 4);
        assert_eq!(cost.messages, 2);
        assert_eq!(cost.bytes, 2 * 16);
        assert_eq!(cost.wc, 2.0 * 2.0); // one combine of 2 elems per round
        match ops[0] {
            AOp::Send { to, bytes, .. } => {
                assert_eq!(to, 1 ^ 1);
                assert_eq!(bytes, 16);
            }
            ref other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn allreduce_non_power_of_two_folds_extras() {
        let plan = CommPlan::new(
            "ar",
            vec![Op::AllReduce {
                elems: Expr::Const(1),
                op: mps::ReduceOp::Sum,
            }],
        );
        // p = 3: m = 2, r = 1. Rank 2 folds into rank 0.
        let (ops2, _) = drain(&plan, 3, 2);
        assert_eq!(
            ops2,
            vec![
                AOp::Send {
                    to: 0,
                    tag: mps::internal_tag(0, 0),
                    bytes: 8
                },
                AOp::Recv {
                    from: 0,
                    tag: mps::internal_tag(0, 63)
                },
            ]
        );
        // Rank 0 pre-folds, one doubling round with rank 1, posts back.
        let (ops0, _) = drain(&plan, 3, 0);
        assert_eq!(ops0.len(), 4);
        assert_eq!(
            ops0[0],
            AOp::Recv {
                from: 2,
                tag: mps::internal_tag(0, 0)
            }
        );
    }

    #[test]
    fn barrier_skips_seq_at_p1_but_bcast_consumes_it() {
        // Mirrors mps: barrier_inner returns before next_coll_seq() at p=1,
        // bcast_inner consumes the seq first. A following allreduce's tags
        // reveal which sequence number it got.
        let plan = CommPlan::new(
            "seq",
            vec![
                Op::Barrier,
                Op::Bcast {
                    root: Expr::Const(0),
                    bytes: Expr::Const(4),
                },
                Op::AllReduce {
                    elems: Expr::Const(1),
                    op: mps::ReduceOp::Sum,
                },
            ],
        );
        let mut c = RankCursor::new(&plan, 1, 0);
        assert_eq!(c.next_comm().unwrap(), None);
        // barrier consumed nothing, bcast consumed seq 0, allreduce seq 1.
        assert_eq!(c.coll_seq, 2);
        assert_eq!(c.colls[CollKind::Barrier.index()].calls, 1);
        assert_eq!(c.colls[CollKind::Bcast.index()].calls, 1);
        assert_eq!(c.colls[CollKind::AllReduce.index()].calls, 1);
        assert_eq!(c.cost.messages, 0);
    }

    #[test]
    fn alltoall_xor_pairing_and_peer_sizes() {
        // Chunk for destination d has d+1 bytes.
        let plan = CommPlan::new(
            "a2a",
            vec![Op::AllToAll {
                bytes: Expr::Peer + Expr::Const(1),
            }],
        );
        let (ops, cost) = drain(&plan, 4, 0);
        assert_eq!(ops.len(), 6); // 3 partners × (send + recv)
        let sends: Vec<(usize, u64)> = ops
            .iter()
            .filter_map(|o| match o {
                AOp::Send { to, bytes, .. } => Some((*to, *bytes)),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![(1, 2), (2, 3), (3, 4)]);
        assert_eq!(cost.messages, 3);
        assert_eq!(cost.bytes, 9);
    }

    #[test]
    fn loops_bind_de_bruijn_vars_and_shape_errors_surface() {
        let plan = CommPlan::new(
            "loop",
            vec![Op::Loop {
                count: Expr::Const(3),
                body: vec![Op::Send {
                    to: Expr::Var(0) + Expr::Const(1),
                    tag: TagExpr::Expr(Expr::Const(5)),
                    bytes: Expr::Const(8),
                }],
            }],
        );
        // Rank 0 of 3: sends to 1, 2, then peer 3 is out of range.
        let mut c = RankCursor::new(&plan, 3, 0);
        assert!(matches!(
            c.next_comm().unwrap(),
            Some(AOp::Send { to: 1, .. })
        ));
        assert!(matches!(
            c.next_comm().unwrap(),
            Some(AOp::Send { to: 2, .. })
        ));
        assert_eq!(c.next_comm(), Err(ShapeIssue::PeerOutOfRange { peer: 3 }));
    }

    #[test]
    fn auto_and_last_tags_follow_the_cg_discipline() {
        let base = 0x4347_0000u64;
        let plan = CommPlan::new(
            "tags",
            vec![
                Op::BumpTag,
                Op::Send {
                    to: Expr::Const(1),
                    tag: TagExpr::Last {
                        base,
                        modulo: 0xFFFF,
                    },
                    bytes: Expr::Const(0),
                },
                Op::Send {
                    to: Expr::Const(1),
                    tag: TagExpr::Auto {
                        base,
                        modulo: 0xFFFF,
                    },
                    bytes: Expr::Const(0),
                },
            ],
        );
        let mut c = RankCursor::new(&plan, 2, 0);
        let t1 = match c.next_comm().unwrap().unwrap() {
            AOp::Send { tag, .. } => tag,
            other => panic!("{other:?}"),
        };
        let t2 = match c.next_comm().unwrap().unwrap() {
            AOp::Send { tag, .. } => tag,
            other => panic!("{other:?}"),
        };
        assert_eq!(t1, base); // Last after one bump -> counter value 0
        assert_eq!(t2, base + 1); // Auto bumps to counter value 1
    }

    #[test]
    fn self_message_and_tag_limit_are_shape_errors() {
        let selfsend = CommPlan::new(
            "s",
            vec![Op::Send {
                to: Expr::Rank,
                tag: TagExpr::Expr(Expr::Const(0)),
                bytes: Expr::Const(1),
            }],
        );
        let mut c = RankCursor::new(&selfsend, 2, 1);
        assert_eq!(c.next_comm(), Err(ShapeIssue::SelfMessage { peer: 1 }));

        let bigtag = CommPlan::new(
            "t",
            vec![Op::Send {
                to: Expr::Const(1),
                tag: TagExpr::Expr(Expr::Const(1) * Expr::Const(1 << 32)),
                bytes: Expr::Const(1),
            }],
        );
        let mut c = RankCursor::new(&bigtag, 2, 0);
        assert_eq!(c.next_comm(), Err(ShapeIssue::TagTooLarge { tag: 1 << 32 }));
    }
}
