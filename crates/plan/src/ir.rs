//! The CommPlan IR: typed per-rank communication-plan operations.
//!
//! A [`CommPlan`] is a single op list that *every* rank executes; rank- and
//! `p`-dependence lives in the symbolic [`Expr`]s (peers, sizes, trip
//! counts) and in [`Op::IfElse`] branches over [`Cond`]s, so one plan
//! describes the skeleton at all world sizes. Collective macro-ops
//! (`Barrier` … `AllToAll`) elaborate to the exact point-to-point algorithms
//! of [`mps`]'s collectives, which is what makes the static verdicts of
//! [`crate::check`] transfer to real [`crate::lower`]ed executions.

use mps::ReduceOp;

use crate::expr::{Cond, Expr};

/// How a point-to-point op's tag is produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagExpr {
    /// An explicit symbolic tag (must stay below [`mps::USER_TAG_LIMIT`]).
    Expr(Expr),
    /// Bump the plan's monotonic tag counter and use its pre-bump value:
    /// `base + (counter % modulo)` — the CG `next_tag()` discipline.
    Auto {
        /// Namespace base added to the wrapped counter.
        base: u64,
        /// Counter wrap-around modulus.
        modulo: u64,
    },
    /// Re-use the most recent counter value without bumping — pairs with
    /// [`Op::BumpTag`] when a tag is consumed unconditionally but the
    /// message itself is conditional (CG's self-partner transpose).
    Last {
        /// Namespace base added to the wrapped counter.
        base: u64,
        /// Counter wrap-around modulus.
        modulo: u64,
    },
}

/// One typed plan operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Charge `units · scale` on-chip instructions ([`mps::Ctx::compute`]).
    Compute {
        /// Symbolic unit count (elements, pairs, rows …).
        units: Expr,
        /// Instructions per unit.
        scale: f64,
    },
    /// Charge `elems · scale` streamed element touches over a working set
    /// of `ws` bytes ([`mps::Ctx::mem_stream`]).
    MemStream {
        /// Symbolic element count.
        elems: Expr,
        /// Touches per element.
        scale: f64,
        /// Working-set size in bytes (drives the dynamic cache split; the
        /// static cost pass keeps the access count only).
        ws: Expr,
    },
    /// Charge `accesses · scale` memory accesses over a working set of
    /// `ws` bytes ([`mps::Ctx::mem_access`]).
    MemAccess {
        /// Symbolic access count.
        accesses: Expr,
        /// Accesses per unit.
        scale: f64,
        /// Working-set size in bytes.
        ws: Expr,
    },
    /// Enter a named phase ([`mps::Ctx::phase`]).
    Phase(String),
    /// Bump the plan's tag counter without sending (see [`TagExpr::Last`]).
    BumpTag,
    /// Point-to-point send of `bytes` bytes.
    Send {
        /// Destination rank.
        to: Expr,
        /// Message tag.
        tag: TagExpr,
        /// Payload size in bytes.
        bytes: Expr,
    },
    /// Point-to-point receive from a specific source.
    Recv {
        /// Source rank.
        from: Expr,
        /// Message tag.
        tag: TagExpr,
    },
    /// Wildcard receive from any source ([`mps::Ctx::recv_any`]); the
    /// static analyses become conservative in its presence.
    RecvAny {
        /// Message tag.
        tag: TagExpr,
    },
    /// Send-then-receive with one partner ([`mps::Ctx::exchange`]).
    Exchange {
        /// Partner rank.
        partner: Expr,
        /// Message tag (both directions).
        tag: TagExpr,
        /// Payload size in bytes (each direction).
        bytes: Expr,
    },
    /// `count` repetitions of `body`; the iteration index is visible to
    /// body expressions as [`Expr::Var`]`(0)` (De Bruijn).
    Loop {
        /// Symbolic trip count (negative counts are shape errors).
        count: Expr,
        /// Loop body.
        body: Vec<Op>,
    },
    /// Branch on a per-rank condition.
    IfElse {
        /// The condition.
        cond: Cond,
        /// Ops when true.
        then: Vec<Op>,
        /// Ops when false.
        els: Vec<Op>,
    },
    /// Dissemination barrier ([`mps::Ctx::barrier`]).
    Barrier,
    /// Binomial-tree broadcast of `bytes` bytes from `root`
    /// ([`mps::Ctx::bcast`]). `bytes` must be rank-invariant.
    Bcast {
        /// Broadcast root.
        root: Expr,
        /// Payload size in bytes.
        bytes: Expr,
    },
    /// Binomial-tree reduction of `elems` f64 elements to `root`
    /// ([`mps::Ctx::reduce`]).
    Reduce {
        /// Reduction root.
        root: Expr,
        /// Element count (8 bytes each).
        elems: Expr,
        /// Combining operator.
        op: ReduceOp,
    },
    /// Recursive-doubling allreduce of `elems` f64 elements
    /// ([`mps::Ctx::allreduce`]).
    AllReduce {
        /// Element count (8 bytes each).
        elems: Expr,
        /// Combining operator.
        op: ReduceOp,
    },
    /// Ring allgather; `bytes` is each contribution's size and may depend
    /// on [`Expr::Peer`] = the contributing rank ([`mps::Ctx::allgather`]).
    AllGather {
        /// Per-contribution payload size in bytes.
        bytes: Expr,
    },
    /// Pairwise-exchange all-to-all; `bytes` is the chunk size for
    /// destination [`Expr::Peer`], so Peer-dependent sizes express
    /// `alltoallv` ([`mps::Ctx::alltoall`]).
    AllToAll {
        /// Per-destination chunk size in bytes.
        bytes: Expr,
    },
}

/// A complete communication plan: a name plus the op list every rank runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CommPlan {
    /// Human-readable plan name (used in findings and reports).
    pub name: String,
    /// The per-rank program.
    pub body: Vec<Op>,
}

impl CommPlan {
    /// A new plan with the given name and body.
    #[must_use]
    pub fn new(name: impl Into<String>, body: Vec<Op>) -> Self {
        Self {
            name: name.into(),
            body,
        }
    }

    /// Number of IR nodes (ops, transitively through loops and branches) —
    /// a size metric for reports, not an execution count.
    #[must_use]
    pub fn ir_size(&self) -> usize {
        fn count(ops: &[Op]) -> usize {
            ops.iter()
                .map(|op| match op {
                    Op::Loop { body, .. } => 1 + count(body),
                    Op::IfElse { then, els, .. } => 1 + count(then) + count(els),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }

    /// Whether the plan syntactically contains a wildcard receive (the
    /// static analyses are exact only without one).
    #[must_use]
    pub fn has_wildcard(&self) -> bool {
        fn scan(ops: &[Op]) -> bool {
            ops.iter().any(|op| match op {
                Op::RecvAny { .. } => true,
                Op::Loop { body, .. } => scan(body),
                Op::IfElse { then, els, .. } => scan(then) || scan(els),
                _ => false,
            })
        }
        scan(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ir_size_counts_nested_ops() {
        let p = CommPlan::new(
            "t",
            vec![
                Op::Phase("x".into()),
                Op::Loop {
                    count: Expr::Const(3),
                    body: vec![
                        Op::Barrier,
                        Op::IfElse {
                            cond: Cond::Eq(Expr::Rank, Expr::Const(0)),
                            then: vec![Op::BumpTag],
                            els: vec![],
                        },
                    ],
                },
            ],
        );
        assert_eq!(p.ir_size(), 5);
        assert!(!p.has_wildcard());
    }

    #[test]
    fn wildcard_detection_sees_through_nesting() {
        let p = CommPlan::new(
            "w",
            vec![Op::Loop {
                count: Expr::Const(1),
                body: vec![Op::IfElse {
                    cond: Cond::Eq(Expr::Rank, Expr::Const(0)),
                    then: vec![Op::RecvAny {
                        tag: TagExpr::Expr(Expr::Const(7)),
                    }],
                    els: vec![],
                }],
            }],
        );
        assert!(p.has_wildcard());
    }
}
