//! Print the per-point EE evaluation latency distribution of the dense
//! fig5 sweep (`isoee.eval_latency_s`) at the current `POOL_THREADS` —
//! the numbers behind EXPERIMENTS.md's sweep-point latency table:
//!
//! ```bash
//! POOL_THREADS=4 cargo run --release -p bench --example lat_probe
//! ```

fn main() {
    let mach = isoee::MachineParams::system_g(2.8e9);
    let ft = isoee::apps::FtModel::system_g();
    let fs: Vec<f64> = (0..64).map(|i| 1.6e9 + 1.875e7 * f64::from(i)).collect();
    let ps: Vec<usize> = (1..=2048).collect();
    let cfg = pool::PoolConfig::from_env();
    for _ in 0..20 {
        isoee::scaling::ee_surface_pf_with(&cfg, &ft, &mach, (1u64 << 20) as f64, &ps, &fs)
            .expect("sweep evaluates");
    }
    for (name, h) in obs::global().log_histograms() {
        if name == "isoee.eval_latency_s" {
            let s = h.snapshot();
            println!(
                "threads={} p50={:.3e} p90={:.3e} p99={:.3e} max={:.3e} count={}",
                cfg.threads(),
                s.p50,
                s.p90,
                s.p99,
                s.max,
                s.count
            );
        }
    }
}
