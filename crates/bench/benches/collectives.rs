//! Criterion benches for the mps collectives (host cost of the simulated
//! communication layer, which bounds experiment turnaround).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mps::{run, World};
use simcluster::system_g;

fn world() -> World {
    World::new(system_g(), 2.8e9)
}

fn bench_collectives(c: &mut Criterion) {
    let w = world();
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    for p in [4usize, 16] {
        g.bench_function(format!("barrier/p{p}"), |b| {
            b.iter(|| run(&w, p, |ctx| ctx.barrier()))
        });
        g.bench_function(format!("allreduce_1k/p{p}"), |b| {
            b.iter(|| {
                run(&w, p, |ctx| {
                    let x = vec![1.0f64; 128];
                    black_box(ctx.allreduce_sum(&x))
                })
            })
        });
        g.bench_function(format!("alltoall_64k/p{p}"), |b| {
            b.iter(|| {
                run(&w, p, |ctx| {
                    let chunks: Vec<Vec<f64>> =
                        (0..ctx.size()).map(|_| vec![0.0f64; 8192 / ctx.size()]).collect();
                    black_box(ctx.alltoall(chunks))
                })
            })
        });
    }
    g.finish();
}

fn bench_p2p(c: &mut Criterion) {
    let w = world();
    let mut g = c.benchmark_group("p2p");
    g.sample_size(10);
    g.bench_function("pingpong_4k", |b| {
        b.iter(|| {
            run(&w, 2, |ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 0, vec![0u64; 512]);
                    black_box(ctx.recv::<u64>(1, 1));
                } else {
                    let d = ctx.recv::<u64>(0, 0);
                    ctx.send(0, 1, d);
                }
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_collectives, bench_p2p);
criterion_main!(benches);
