//! Timing benches for the mps collectives (host cost of the simulated
//! communication layer, which bounds experiment turnaround).
//!
//! Run with `cargo bench -p bench --bench collectives`.

use bench::time_case;
use mps::{run, World};
use simcluster::system_g;
use std::hint::black_box;

fn main() {
    let w = World::new(system_g(), 2.8e9);

    println!("collectives:");
    for p in [4usize, 16] {
        #[allow(clippy::redundant_closure_for_method_calls)] // HRTB: `Ctx::barrier` won't coerce
        time_case(&format!("barrier/p{p}"), 10, || {
            run(&w, p, |ctx| ctx.barrier())
        });
        time_case(&format!("allreduce_1k/p{p}"), 10, || {
            run(&w, p, |ctx| {
                let x = vec![1.0f64; 128];
                black_box(ctx.allreduce_sum(&x))
            })
        });
        time_case(&format!("alltoall_64k/p{p}"), 10, || {
            run(&w, p, |ctx| {
                let chunks: Vec<Vec<f64>> = (0..ctx.size())
                    .map(|_| vec![0.0f64; 8192 / ctx.size()])
                    .collect();
                black_box(ctx.alltoall(chunks))
            })
        });
    }

    println!("p2p:");
    time_case("pingpong_4k", 10, || {
        run(&w, 2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0u64; 512]);
                black_box(ctx.recv::<u64>(1, 1));
            } else {
                let d = ctx.recv::<u64>(0, 0);
                ctx.send(0, 1, d);
            }
        })
    });
}
