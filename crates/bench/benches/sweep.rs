//! Sweep-throughput bench: the fig5 FT surface at figure *density* —
//! every integer p from 1 to 2048 across 64 DVFS points — evaluated by
//! the batched columnar kernel (the default sweep path) and by the
//! retained scalar oracle, sequentially and on pooled threads. This is
//! the grid a power-constrained scheduler would sweep when searching the
//! whole (p, f) plane rather than the handful of plotted points.
//!
//! Run with `cargo bench -p bench --bench sweep`.
//!
//! Results land in `BENCH_sweep.json` at the repo root — a `bench/2`
//! snapshot (host metadata + obs metrics array) with per-case
//! `ns_per_iter` / `throughput_per_s` gauges, derived `speedup_t{2,4,8}`
//! (sequential batch mean over pooled batch mean),
//! `bench.sweep.batch_speedup` (sequential scalar mean over sequential
//! batch mean — the tentpole's >= 10x target, gated in CI by
//! `analyze --bench-diff` against the committed snapshot), per-thread
//! throughput, the grid size, the latency log-histograms of the *last*
//! case (`isoee.eval_latency_s`, `pool.*`), and
//! `bench.sweep.hist_overhead_pct` — the cost of the per-point latency
//! histogram versus an uninstrumented control run (must stay under 5%).
//!
//! Two sources of systematic error are controlled explicitly:
//!
//! * every kernel is warmed with one untimed sweep before any timed
//!   case, so no case pays first-touch/JIT-page costs (the old layout
//!   ran the uninstrumented control first and *cold*, which understated
//!   `hist_overhead_pct` to the point of going negative);
//! * `obs::global().reset_values()` runs between cases, so each case
//!   starts from empty histograms and the merged log-histograms in the
//!   snapshot describe exactly one case instead of a mixture.
//!
//! The speedup gauges report whatever the host delivers: on a
//! single-core container they sit near 1.0 (the pool adds only spawn
//! overhead); on multi-core CI hardware the 4-thread case is expected to
//! clear 2x. The differential suite (`tests/batch_equivalence.rs`,
//! `tests/parallel_equivalence.rs`) guarantees the *values* are
//! bit-identical across every kernel x thread-count combination.

use bench::{
    cases_registry, merge_global_loghists, snapshot_v2_json, time_case, write_snapshot_json,
    CaseStats,
};
use isoee::apps::FtModel;
use isoee::scaling::{ee_surface_pf_scalar_with, ee_surface_pf_with, set_eval_timing, PoolConfig};
use isoee::MachineParams;

/// Pool thread counts benched against the sequential baselines.
const THREADS: [usize; 3] = [2, 4, 8];

/// Timed iterations per case.
const ITERS: u32 = 20;

fn main() {
    let mach = MachineParams::system_g(2.8e9);
    let ft = FtModel::system_g();
    let n = (1u64 << 20) as f64;
    // Dense fig5 grid: 64 frequency rows x 2048 parallelism columns.
    let fs: Vec<f64> = (0..64).map(|i| 1.6e9 + 1.875e7 * f64::from(i)).collect();
    let ps: Vec<usize> = (1..=2048).collect();
    let evals = fs.len() * ps.len();

    println!(
        "sweep/fig5_dense: EE_FT(p, f), {} rows x {} cols = {evals} evals",
        fs.len(),
        ps.len()
    );

    // Warm both kernels untimed so no timed case pays cold-start costs.
    let seq_cfg = PoolConfig::sequential();
    ee_surface_pf_with(&seq_cfg, &ft, &mach, n, &ps, &fs).expect("batch sweep evaluates");
    ee_surface_pf_scalar_with(&seq_cfg, &ft, &mach, n, &ps, &fs).expect("scalar sweep evaluates");

    // Instrumentation-overhead control: the batched sequential sweep with
    // the per-point latency histogram disabled. The histogram cost is one
    // `Instant` pair plus one amortized `record_n` per *row*, so the two
    // cases must agree to well under the 5% acceptance budget.
    obs::global().reset_values();
    set_eval_timing(false);
    let nohist = time_case("fig5_dense_seq_nohist", ITERS, || {
        ee_surface_pf_with(&seq_cfg, &ft, &mach, n, &ps, &fs).expect("sweep evaluates")
    });
    set_eval_timing(true);

    obs::global().reset_values();
    let seq = time_case("fig5_dense_seq", ITERS, || {
        ee_surface_pf_with(&seq_cfg, &ft, &mach, n, &ps, &fs).expect("sweep evaluates")
    });

    obs::global().reset_values();
    let scalar_seq = time_case("fig5_dense_scalar_seq", ITERS, || {
        ee_surface_pf_scalar_with(&seq_cfg, &ft, &mach, n, &ps, &fs).expect("sweep evaluates")
    });

    let mut cases: Vec<CaseStats> = vec![nohist.clone(), seq.clone(), scalar_seq.clone()];
    let mut scalar_pooled: Vec<(usize, CaseStats)> = Vec::new();
    for t in THREADS {
        let cfg = PoolConfig::with_threads(t);
        obs::global().reset_values();
        let stats = time_case(&format!("fig5_dense_scalar_t{t}"), ITERS, || {
            ee_surface_pf_scalar_with(&cfg, &ft, &mach, n, &ps, &fs).expect("sweep evaluates")
        });
        scalar_pooled.push((t, stats.clone()));
        cases.push(stats);
    }
    // Batch pooled cases run last so the merged log-histograms in the
    // snapshot describe the default (batched) path.
    let mut pooled: Vec<(usize, CaseStats)> = Vec::new();
    for t in THREADS {
        let cfg = PoolConfig::with_threads(t);
        obs::global().reset_values();
        let stats = time_case(&format!("fig5_dense_t{t}"), ITERS, || {
            ee_surface_pf_with(&cfg, &ft, &mach, n, &ps, &fs).expect("sweep evaluates")
        });
        pooled.push((t, stats.clone()));
        cases.push(stats);
    }

    let reg = cases_registry("bench.sweep", &cases);
    #[allow(clippy::cast_precision_loss)]
    reg.gauge("bench.sweep.grid_evals").set(evals as f64);

    // The tentpole ratio: scalar oracle over batched kernel, both
    // sequential. CI gates the *absolute* batch time via --bench-diff;
    // this gauge records how much of it the factorization bought.
    let batch_speedup = scalar_seq.mean_ns / seq.mean_ns;
    reg.gauge("bench.sweep.batch_speedup").set(batch_speedup);
    println!("sweep/kernel: batch {batch_speedup:.2}x faster than scalar (sequential)");

    println!("sweep/scaling (batch kernel):");
    for (t, stats) in &pooled {
        let speedup = seq.mean_ns / stats.mean_ns;
        #[allow(clippy::cast_precision_loss)]
        let per_thread = stats.throughput_per_s() / *t as f64;
        reg.gauge(&format!("bench.sweep.speedup_t{t}")).set(speedup);
        reg.gauge(&format!(
            "bench.sweep.fig5_dense_t{t}.throughput_per_thread_per_s"
        ))
        .set(per_thread);
        println!(
            "  t={t}: speedup {speedup:.2}x vs sequential, {per_thread:.1} sweeps/s per thread"
        );
    }
    println!("sweep/scaling (scalar oracle):");
    for (t, stats) in &scalar_pooled {
        let speedup = scalar_seq.mean_ns / stats.mean_ns;
        reg.gauge(&format!("bench.sweep.scalar_speedup_t{t}"))
            .set(speedup);
        println!("  t={t}: speedup {speedup:.2}x vs sequential scalar");
    }

    // Histogram overhead in percent of the uninstrumented sweep; negative
    // values are timing noise (the two cases are equal up to jitter).
    let overhead_pct = (seq.mean_ns - nohist.mean_ns) / nohist.mean_ns * 100.0;
    reg.gauge("bench.sweep.hist_overhead_pct").set(overhead_pct);
    println!("sweep/instrumentation: histogram overhead {overhead_pct:+.2}% of sequential sweep");

    merge_global_loghists(&reg);
    write_snapshot_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json"),
        &snapshot_v2_json(&reg),
    );
}
