//! Sweep-throughput bench: the fig5 FT surface at figure *density* —
//! every integer p from 1 to 2048 across 64 DVFS points — evaluated
//! sequentially and on 2/4/8-thread pools. This is the grid a
//! power-constrained scheduler would sweep when searching the whole
//! (p, f) plane rather than the handful of plotted points.
//!
//! Run with `cargo bench -p bench --bench sweep`.
//!
//! Results land in `BENCH_sweep.json` at the repo root — an obs metrics
//! snapshot with per-case `ns_per_iter` / `throughput_per_s` gauges plus
//! derived `speedup_t{2,4,8}` (sequential mean over pooled mean),
//! per-thread throughput, and the grid size, so sweep scaling is tracked
//! across PRs in the same format as `BENCH_model_eval.json`.
//!
//! The speedup gauges report whatever the host delivers: on a
//! single-core container they sit near 1.0 (the pool adds only spawn
//! overhead); on multi-core CI hardware the 4-thread case is expected to
//! clear 2x. The differential suite (`tests/parallel_equivalence.rs`)
//! guarantees the *values* are bit-identical either way.

use bench::{cases_registry, time_case, write_snapshot_json, CaseStats};
use isoee::apps::FtModel;
use isoee::scaling::{ee_surface_pf_with, PoolConfig};
use isoee::MachineParams;

/// Pool thread counts benched against the sequential baseline.
const THREADS: [usize; 3] = [2, 4, 8];

fn main() {
    let mach = MachineParams::system_g(2.8e9);
    let ft = FtModel::system_g();
    let n = (1u64 << 20) as f64;
    // Dense fig5 grid: 64 frequency rows x 2048 parallelism columns.
    let fs: Vec<f64> = (0..64).map(|i| 1.6e9 + 1.875e7 * f64::from(i)).collect();
    let ps: Vec<usize> = (1..=2048).collect();
    let evals = fs.len() * ps.len();

    println!(
        "sweep/fig5_dense: EE_FT(p, f), {} rows x {} cols = {evals} evals",
        fs.len(),
        ps.len()
    );
    let seq = time_case("fig5_dense_seq", 20, || {
        ee_surface_pf_with(&PoolConfig::sequential(), &ft, &mach, n, &ps, &fs)
            .expect("sweep evaluates")
    });
    let mut cases: Vec<CaseStats> = vec![seq.clone()];
    let mut pooled: Vec<(usize, CaseStats)> = Vec::new();
    for t in THREADS {
        let cfg = PoolConfig::with_threads(t);
        let stats = time_case(&format!("fig5_dense_t{t}"), 20, || {
            ee_surface_pf_with(&cfg, &ft, &mach, n, &ps, &fs).expect("sweep evaluates")
        });
        pooled.push((t, stats.clone()));
        cases.push(stats);
    }

    let reg = cases_registry("bench.sweep", &cases);
    #[allow(clippy::cast_precision_loss)]
    reg.gauge("bench.sweep.grid_evals").set(evals as f64);
    println!("sweep/scaling:");
    for (t, stats) in &pooled {
        let speedup = seq.mean_ns / stats.mean_ns;
        #[allow(clippy::cast_precision_loss)]
        let per_thread = stats.throughput_per_s() / *t as f64;
        reg.gauge(&format!("bench.sweep.speedup_t{t}")).set(speedup);
        reg.gauge(&format!(
            "bench.sweep.fig5_dense_t{t}.throughput_per_thread_per_s"
        ))
        .set(per_thread);
        println!(
            "  t={t}: speedup {speedup:.2}x vs sequential, {per_thread:.1} sweeps/s per thread"
        );
    }

    write_snapshot_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json"),
        &reg.snapshot_json(),
    );
}
