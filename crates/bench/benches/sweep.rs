//! Sweep-throughput bench: the fig5 FT surface at figure *density* —
//! every integer p from 1 to 2048 across 64 DVFS points — evaluated
//! sequentially and on 2/4/8-thread pools. This is the grid a
//! power-constrained scheduler would sweep when searching the whole
//! (p, f) plane rather than the handful of plotted points.
//!
//! Run with `cargo bench -p bench --bench sweep`.
//!
//! Results land in `BENCH_sweep.json` at the repo root — a `bench/2`
//! snapshot (host metadata + obs metrics array) with per-case
//! `ns_per_iter` / `throughput_per_s` gauges, derived `speedup_t{2,4,8}`
//! (sequential mean over pooled mean), per-thread throughput, the grid
//! size, the latency log-histograms the run accumulated
//! (`isoee.eval_latency_s`, `pool.*`), and
//! `bench.sweep.hist_overhead_pct` — the cost of the per-point latency
//! histogram versus an uninstrumented control run (must stay under 5%).
//!
//! The speedup gauges report whatever the host delivers: on a
//! single-core container they sit near 1.0 (the pool adds only spawn
//! overhead); on multi-core CI hardware the 4-thread case is expected to
//! clear 2x. The differential suite (`tests/parallel_equivalence.rs`)
//! guarantees the *values* are bit-identical either way.

use bench::{
    cases_registry, merge_global_loghists, snapshot_v2_json, time_case, write_snapshot_json,
    CaseStats,
};
use isoee::apps::FtModel;
use isoee::scaling::{ee_surface_pf_with, set_eval_timing, PoolConfig};
use isoee::MachineParams;

/// Pool thread counts benched against the sequential baseline.
const THREADS: [usize; 3] = [2, 4, 8];

fn main() {
    let mach = MachineParams::system_g(2.8e9);
    let ft = FtModel::system_g();
    let n = (1u64 << 20) as f64;
    // Dense fig5 grid: 64 frequency rows x 2048 parallelism columns.
    let fs: Vec<f64> = (0..64).map(|i| 1.6e9 + 1.875e7 * f64::from(i)).collect();
    let ps: Vec<usize> = (1..=2048).collect();
    let evals = fs.len() * ps.len();

    println!(
        "sweep/fig5_dense: EE_FT(p, f), {} rows x {} cols = {evals} evals",
        fs.len(),
        ps.len()
    );
    // Instrumentation-overhead control: the same sequential sweep with the
    // per-point latency histogram disabled. The histogram cost is one
    // `Instant` pair plus one amortized `record_n` per *row*, so the two
    // cases must agree to well under the 5% acceptance budget.
    set_eval_timing(false);
    let nohist = time_case("fig5_dense_seq_nohist", 20, || {
        ee_surface_pf_with(&PoolConfig::sequential(), &ft, &mach, n, &ps, &fs)
            .expect("sweep evaluates")
    });
    set_eval_timing(true);
    let seq = time_case("fig5_dense_seq", 20, || {
        ee_surface_pf_with(&PoolConfig::sequential(), &ft, &mach, n, &ps, &fs)
            .expect("sweep evaluates")
    });
    let mut cases: Vec<CaseStats> = vec![nohist.clone(), seq.clone()];
    let mut pooled: Vec<(usize, CaseStats)> = Vec::new();
    for t in THREADS {
        let cfg = PoolConfig::with_threads(t);
        let stats = time_case(&format!("fig5_dense_t{t}"), 20, || {
            ee_surface_pf_with(&cfg, &ft, &mach, n, &ps, &fs).expect("sweep evaluates")
        });
        pooled.push((t, stats.clone()));
        cases.push(stats);
    }

    let reg = cases_registry("bench.sweep", &cases);
    #[allow(clippy::cast_precision_loss)]
    reg.gauge("bench.sweep.grid_evals").set(evals as f64);
    println!("sweep/scaling:");
    for (t, stats) in &pooled {
        let speedup = seq.mean_ns / stats.mean_ns;
        #[allow(clippy::cast_precision_loss)]
        let per_thread = stats.throughput_per_s() / *t as f64;
        reg.gauge(&format!("bench.sweep.speedup_t{t}")).set(speedup);
        reg.gauge(&format!(
            "bench.sweep.fig5_dense_t{t}.throughput_per_thread_per_s"
        ))
        .set(per_thread);
        println!(
            "  t={t}: speedup {speedup:.2}x vs sequential, {per_thread:.1} sweeps/s per thread"
        );
    }

    // Histogram overhead in percent of the uninstrumented sweep; negative
    // values are timing noise (the two cases are equal up to jitter).
    let overhead_pct = (seq.mean_ns - nohist.mean_ns) / nohist.mean_ns * 100.0;
    reg.gauge("bench.sweep.hist_overhead_pct").set(overhead_pct);
    println!("sweep/instrumentation: histogram overhead {overhead_pct:+.2}% of sequential sweep");

    merge_global_loghists(&reg);
    write_snapshot_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json"),
        &snapshot_v2_json(&reg),
    );
}
