//! Criterion benches for the NPB kernel implementations over the simulated
//! message-passing substrate (class S so each iteration is milliseconds).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mps::{run, World};
use npb::{cg_kernel, ep_kernel, ft_kernel, is_kernel, mg_kernel};
use npb::{CgConfig, Class, EpConfig, FtConfig, IsConfig, MgConfig};
use simcluster::system_g;

fn world() -> World {
    World::new(system_g(), 2.8e9)
}

fn bench_kernels_seq(c: &mut Criterion) {
    let w = world();
    let mut g = c.benchmark_group("kernels/p1");
    g.sample_size(10);
    g.bench_function("ep_s", |b| {
        let cfg = EpConfig::class(Class::S);
        b.iter(|| black_box(run(&w, 1, move |ctx| ep_kernel(ctx, cfg))))
    });
    g.bench_function("ft_s", |b| {
        let cfg = FtConfig::class(Class::S);
        b.iter(|| black_box(run(&w, 1, move |ctx| ft_kernel(ctx, cfg))))
    });
    g.bench_function("cg_s", |b| {
        let cfg = CgConfig::class(Class::S);
        b.iter(|| black_box(run(&w, 1, move |ctx| cg_kernel(ctx, cfg))))
    });
    g.bench_function("is_s", |b| {
        let cfg = IsConfig::class(Class::S);
        b.iter(|| black_box(run(&w, 1, move |ctx| is_kernel(ctx, cfg))))
    });
    g.bench_function("mg_s", |b| {
        let cfg = MgConfig::class(Class::S);
        b.iter(|| black_box(run(&w, 1, move |ctx| mg_kernel(ctx, cfg))))
    });
    g.finish();
}

fn bench_kernels_parallel(c: &mut Criterion) {
    let w = world();
    let mut g = c.benchmark_group("kernels/p4");
    g.sample_size(10);
    g.bench_function("ft_s", |b| {
        let cfg = FtConfig::class(Class::S);
        b.iter(|| black_box(run(&w, 4, move |ctx| ft_kernel(ctx, cfg))))
    });
    g.bench_function("cg_s", |b| {
        let cfg = CgConfig::class(Class::S);
        b.iter(|| black_box(run(&w, 4, move |ctx| cg_kernel(ctx, cfg))))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels_seq, bench_kernels_parallel);
criterion_main!(benches);
