//! Timing benches for the NPB kernel implementations over the simulated
//! message-passing substrate (class S so each iteration is milliseconds).
//!
//! Run with `cargo bench -p bench --bench kernels`.

use bench::time_case;
use mps::{run, World};
use npb::{cg_kernel, ep_kernel, ft_kernel, is_kernel, mg_kernel};
use npb::{CgConfig, Class, EpConfig, FtConfig, IsConfig, MgConfig};
use simcluster::system_g;

fn world() -> World {
    World::new(system_g(), 2.8e9)
}

fn main() {
    let w = world();

    println!("kernels/p1:");
    let cfg = EpConfig::class(Class::S);
    time_case("ep_s", 10, || run(&w, 1, move |ctx| ep_kernel(ctx, cfg)));
    let cfg = FtConfig::class(Class::S);
    time_case("ft_s", 10, || run(&w, 1, move |ctx| ft_kernel(ctx, cfg)));
    let cfg = CgConfig::class(Class::S);
    time_case("cg_s", 10, || run(&w, 1, move |ctx| cg_kernel(ctx, cfg)));
    let cfg = IsConfig::class(Class::S);
    time_case("is_s", 10, || run(&w, 1, move |ctx| is_kernel(ctx, cfg)));
    let cfg = MgConfig::class(Class::S);
    time_case("mg_s", 10, || run(&w, 1, move |ctx| mg_kernel(ctx, cfg)));

    println!("kernels/p4:");
    let cfg = FtConfig::class(Class::S);
    time_case("ft_s", 10, || run(&w, 4, move |ctx| ft_kernel(ctx, cfg)));
    let cfg = CgConfig::class(Class::S);
    time_case("cg_s", 10, || run(&w, 4, move |ctx| cg_kernel(ctx, cfg)));
}
