//! Criterion benches for the calibration pipeline: how quickly the machine
//! vector can be (re)derived — relevant when the model is recalibrated per
//! DVFS state or after hardware changes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mps::World;
use simcluster::system_g;

fn world() -> World {
    World::new(system_g(), 2.8e9)
}

fn bench_tools(c: &mut Criterion) {
    let w = world();
    let mut g = c.benchmark_group("calibration");
    g.sample_size(10);
    g.bench_function("perfmon_cpi", |b| {
        b.iter(|| black_box(microbench::perfmon_cpi(&w, 1e6)))
    });
    g.bench_function("lat_mem_rd_sweep", |b| {
        b.iter(|| black_box(microbench::lat_mem_rd(&w, 1 << 12, 1 << 26)))
    });
    g.bench_function("mpptest_fit", |b| {
        let sizes: Vec<u64> = (0..6).map(|i| 1024u64 << i).collect();
        b.iter(|| black_box(microbench::mpptest(&w, &sizes, 1)))
    });
    g.bench_function("power_deltas", |b| {
        b.iter(|| black_box(microbench::power_deltas(&w)))
    });
    g.bench_function("full_machine_vector", |b| {
        b.iter(|| black_box(isoee::calibrate::measured_machine_params(&w)))
    });
    g.finish();
}

criterion_group!(benches, bench_tools);
criterion_main!(benches);
