//! Timing benches for the calibration pipeline: how quickly the machine
//! vector can be (re)derived — relevant when the model is recalibrated per
//! DVFS state or after hardware changes.
//!
//! Run with `cargo bench -p bench --bench calibration`.

use bench::time_case;
use mps::World;
use simcluster::system_g;

fn main() {
    let w = World::new(system_g(), 2.8e9);

    println!("calibration:");
    time_case("perfmon_cpi", 10, || microbench::perfmon_cpi(&w, 1e6));
    time_case("lat_mem_rd_sweep", 10, || {
        microbench::lat_mem_rd(&w, 1 << 12, 1 << 26)
    });
    let sizes: Vec<u64> = (0..6).map(|i| 1024u64 << i).collect();
    time_case("mpptest_fit", 10, || microbench::mpptest(&w, &sizes, 1));
    time_case("power_deltas", 10, || microbench::power_deltas(&w));
    time_case("full_machine_vector", 10, || {
        isoee::calibrate::measured_machine_params(&w)
    });
}
