//! Criterion benches for the analytical model itself: single-point EE
//! evaluation, full figure-scale surface sweeps, and the iso-EE bisection.
//! These quantify the cost of using the model inside a scheduler's inner
//! loop (the paper's "policy module" motivation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use isoee::apps::{AppModel, CgModel, EpModel, FtModel};
use isoee::scaling::{ee_surface_pf, iso_ee_workload};
use isoee::{model, MachineParams};

fn bench_point_evaluation(c: &mut Criterion) {
    let mach = MachineParams::system_g(2.8e9);
    let ft = FtModel::system_g();
    let mut g = c.benchmark_group("model/point");
    g.bench_function("ft_app_params", |b| {
        b.iter(|| black_box(ft.app_params(black_box(1e6), black_box(64))))
    });
    let app = ft.app_params(1e6, 64);
    g.bench_function("ee", |b| {
        b.iter(|| black_box(model::ee(&mach, black_box(&app), 64)))
    });
    g.bench_function("at_frequency", |b| {
        b.iter(|| black_box(mach.at_frequency(black_box(2.0e9))))
    });
    g.finish();
}

fn bench_surfaces(c: &mut Criterion) {
    let mach = MachineParams::system_g(2.8e9);
    let fs = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
    let ps: Vec<usize> = (0..11).map(|k| 1usize << k).collect();
    let mut g = c.benchmark_group("model/surface");
    g.bench_function("fig5_ft_pf", |b| {
        let ft = FtModel::system_g();
        b.iter(|| black_box(ee_surface_pf(&ft, &mach, 1e6, &ps, &fs)))
    });
    g.bench_function("fig7_ep_pf", |b| {
        let ep = EpModel::system_g();
        b.iter(|| black_box(ee_surface_pf(&ep, &mach, 4e6, &ps[..8], &fs)))
    });
    g.bench_function("fig9_cg_pf", |b| {
        let cg = CgModel::system_g();
        b.iter(|| black_box(ee_surface_pf(&cg, &mach, 75_000.0, &ps, &fs)))
    });
    g.finish();
}

fn bench_contour(c: &mut Criterion) {
    let mach = MachineParams::system_g(2.8e9);
    let ft = FtModel::system_g();
    c.bench_function("model/iso_ee_bisection", |b| {
        b.iter(|| black_box(iso_ee_workload(&ft, &mach, 256, 0.8, 1e3, 1e12)))
    });
}

criterion_group!(benches, bench_point_evaluation, bench_surfaces, bench_contour);
criterion_main!(benches);
