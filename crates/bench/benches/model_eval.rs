//! Timing benches for the analytical model itself: single-point EE
//! evaluation, full figure-scale surface sweeps, and the iso-EE bisection.
//! These quantify the cost of using the model inside a scheduler's inner
//! loop (the paper's "policy module" motivation).
//!
//! Run with `cargo bench -p bench --bench model_eval`.
//!
//! Besides the console table, the results land in
//! `BENCH_model_eval.json` at the repo root — a `bench/2` snapshot (host
//! metadata + `ns_per_iter` / `throughput_per_s` gauges per case, plus
//! the run's latency log-histograms) that tracks the model-eval perf
//! trajectory across PRs and feeds `analyze --bench-diff`.

use bench::{
    cases_registry, merge_global_loghists, snapshot_v2_json, time_case, write_snapshot_json,
};
use isoee::apps::{AppModel, CgModel, EpModel, FtModel};
use isoee::scaling::{ee_surface_pf, ee_surface_pf_with, iso_ee_workload, PoolConfig};
use isoee::{model, MachineParams};
use std::hint::black_box;

fn main() {
    let mach = MachineParams::system_g(2.8e9);
    let ft = FtModel::system_g();
    let mut cases = Vec::new();

    println!("model/point:");
    cases.push(time_case("ft_app_params", 1000, || {
        ft.app_params(black_box(1e6), black_box(64))
    }));
    let app = ft.app_params(1e6, 64);
    cases.push(time_case("ee", 1000, || {
        model::ee(&mach, black_box(&app), 64)
    }));
    cases.push(time_case("at_frequency", 1000, || {
        mach.at_frequency(black_box(2.0e9))
    }));

    println!("model/surface:");
    let fs = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
    let ps: Vec<usize> = (0..11).map(|k| 1usize << k).collect();
    cases.push(time_case("fig5_ft_pf", 100, || {
        let ft = FtModel::system_g();
        ee_surface_pf(&ft, &mach, 1e6, &ps, &fs)
    }));
    cases.push(time_case("fig7_ep_pf", 100, || {
        let ep = EpModel::system_g();
        ee_surface_pf(&ep, &mach, 4e6, &ps[..8], &fs)
    }));
    cases.push(time_case("fig9_cg_pf", 100, || {
        let cg = CgModel::system_g();
        ee_surface_pf(&cg, &mach, 75_000.0, &ps, &fs)
    }));

    println!("model/surface (pooled):");
    // Figure-scale grids are small (44 points), so these mostly price the
    // pool's scoped-spawn overhead; the dense-grid scaling story lives in
    // `benches/sweep.rs` / `BENCH_sweep.json`.
    for t in [2usize, 4] {
        let cfg = PoolConfig::with_threads(t);
        let stats = time_case(&format!("fig5_ft_pf_t{t}"), 100, || {
            let ft = FtModel::system_g();
            ee_surface_pf_with(&cfg, &ft, &mach, 1e6, &ps, &fs)
        });
        #[allow(clippy::cast_precision_loss)]
        let per_thread = stats.throughput_per_s() / t as f64;
        println!("  {:<28} {per_thread:>12.1} sweeps/s per thread", "");
        cases.push(stats);
    }

    println!("model/contour:");
    cases.push(time_case("iso_ee_bisection", 100, || {
        iso_ee_workload(&ft, &mach, 256, 0.8, 1e3, 1e12)
    }));

    let reg = cases_registry("bench.model_eval", &cases);
    merge_global_loghists(&reg);
    write_snapshot_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_model_eval.json"),
        &snapshot_v2_json(&reg),
    );
}
