//! Rank-scaling bench: NPB FT at `p = 1024` on the simrt event engine —
//! the run the thread runtime cannot do at all (it would need 1024 OS
//! threads and ~2 MB of stack each).
//!
//! Run with `cargo bench -p bench --bench rank_scaling`.
//!
//! Results land in `BENCH_simrt.json` at the repo root — a `bench/2`
//! snapshot with per-case `ns_per_iter` / `throughput_per_s` gauges for
//! the sequential and pooled engines, the rank-step latency
//! log-histogram (`bench.rank_scaling.step_latency_s`), engine event
//! rates (`bench.rank_scaling.*.events_per_s`), per-run step/send/wake
//! counts, and the process peak RSS after the largest run
//! (`bench.rank_scaling.peak_rss_bytes`, from `/proc/self/status`
//! `VmHWM`; 0 where unavailable). The CI `rank-scaling` job gates the
//! numbers with `analyze --bench-diff` against the committed baseline.

use bench::{merge_global_loghists, snapshot_v2_json, time_case, write_snapshot_json, CaseStats};
use simrt::{Detail, EngineConfig};

const P: usize = 1024;
const ITERS: u32 = 5;

/// Peak resident set of this process in bytes (`VmHWM`), 0 if the
/// procfs field is unavailable (non-Linux hosts).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .map_or(0, |kb| kb * 1024)
}

fn main() {
    let world = mps::World::new(simcluster::system_g(), 2.8e9);
    let ft = npb::ft_plan(&npb::FtConfig::class(npb::Class::S));
    let step_hist = obs::global().log_histogram("bench.rank_scaling.step_latency_s", "s");

    println!("rank_scaling/ft_p{P}: NPB FT class S on the simrt event engine");
    let mut cases: Vec<CaseStats> = Vec::new();
    let mut engine_stats: Vec<(&str, simrt::EngineStats)> = Vec::new();
    let configs = [
        (
            "ft_p1024_seq",
            EngineConfig::default().with_detail(Detail::Off),
        ),
        (
            "ft_p1024_pool4",
            EngineConfig::default()
                .with_detail(Detail::Off)
                .with_pool(pool::PoolConfig::with_threads(4)),
        ),
    ];
    for (name, cfg) in &configs {
        let mut last_stats = simrt::EngineStats::default();
        let case = time_case(name, ITERS, || {
            let out = simrt::try_run_plan_with(cfg, &world, P, &ft).expect("ft completes");
            // Mean per-step engine latency, weighted by step count: the
            // engine executes millions of steps per run, so the histogram
            // is fed the per-run mean at full weight.
            if out.stats.steps > 0 {
                #[allow(clippy::cast_precision_loss)]
                step_hist.record_n(out.stats.wall_s / out.stats.steps as f64, out.stats.steps);
            }
            last_stats = out.stats.clone();
            out.report.span()
        });
        cases.push(case);
        engine_stats.push((name, last_stats));
    }

    let reg = bench::cases_registry("bench.rank_scaling", &cases);
    #[allow(clippy::cast_precision_loss)]
    for (name, stats) in &engine_stats {
        let events_per_s = if stats.wall_s > 0.0 {
            stats.steps as f64 / stats.wall_s
        } else {
            0.0
        };
        reg.gauge(&format!("bench.rank_scaling.{name}.events_per_s"))
            .set(events_per_s);
        reg.gauge(&format!("bench.rank_scaling.{name}.steps"))
            .set(stats.steps as f64);
        reg.gauge(&format!("bench.rank_scaling.{name}.sends"))
            .set(stats.sends as f64);
        reg.gauge(&format!("bench.rank_scaling.{name}.wakes"))
            .set(stats.wakes as f64);
        reg.gauge(&format!("bench.rank_scaling.{name}.supersteps"))
            .set(stats.supersteps as f64);
        println!(
            "  {name}: {events_per_s:.0} events/s ({} steps, {} sends)",
            stats.steps, stats.sends
        );
    }

    #[allow(clippy::cast_precision_loss)]
    reg.gauge("bench.rank_scaling.ranks").set(P as f64);
    #[allow(clippy::cast_precision_loss)]
    reg.gauge("bench.rank_scaling.peak_rss_bytes")
        .set(peak_rss_bytes() as f64);
    println!(
        "  peak RSS {:.1} MiB after {ITERS} runs per case",
        peak_rss_bytes() as f64 / (1024.0 * 1024.0)
    );

    merge_global_loghists(&reg);
    write_snapshot_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simrt.json"),
        &snapshot_v2_json(&reg),
    );
}
