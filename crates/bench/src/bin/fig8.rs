//! Fig. 8 — 3-D plot of `EE_CG(p, n)` at fixed frequency f = 2.8 GHz.
//!
//! Expected shape (paper §V.B.3): energy efficiency decreases as `p`
//! grows (replicated vector work + reduce/transpose communication) and
//! increases with the workload size `n`.
//!
//! Usage: `cargo run --release -p bench --bin fig8`

use isoee::apps::CgModel;
use isoee::{ee_surface_pn, MachineParams};

fn main() {
    let ps = [1usize, 4, 16, 64, 256, 1024];
    let ns: Vec<f64> = [9_375.0, 18_750.0, 37_500.0, 75_000.0, 150_000.0, 300_000.0].to_vec();
    let cg = CgModel::system_g();
    let mach = MachineParams::system_g(2.8e9);
    println!("== Fig. 8: EE_CG(p, n) at f = 2.8 GHz on SystemG ==\n");
    let s = ee_surface_pn(&cg, &mach, &ps, &ns).expect("sweep evaluates");
    bench::print_surface(&s, "n (rows)");
    println!("\n(Expected: EE falls with p, rises with n.)");
}
