//! Fig. 6 — 3-D plot of `EE_FT(p, n)` at fixed frequency f = 2.8 GHz.
//!
//! Expected shape (paper §V.B.1): `p` still dominates, and increasing the
//! problem size `n` restores energy efficiency — the iso-energy-efficiency
//! lever for FT.
//!
//! Usage: `cargo run --release -p bench --bin fig6`

use isoee::apps::FtModel;
use isoee::{ee_surface_pn, MachineParams};

fn main() {
    let ps = [1usize, 4, 16, 64, 256, 1024];
    let ns: Vec<f64> = (16..=26).step_by(2).map(|k| (1u64 << k) as f64).collect();
    let ft = FtModel::system_g();
    let mach = MachineParams::system_g(2.8e9);
    println!("== Fig. 6: EE_FT(p, n) at f = 2.8 GHz on SystemG ==\n");
    let s = ee_surface_pn(&ft, &mach, &ps, &ns).expect("sweep evaluates");
    bench::print_surface(&s, "n (points)");
    println!("\n(Expected: EE falls with p, rises with n.)");
}
