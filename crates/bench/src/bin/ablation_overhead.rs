//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **§V.B.5 overhead growth** — with an evenly divided workload, the
//!    parallel energy overhead `E0(p)` grows superlinearly (`Θ(p^k)`,
//!    k ≥ 1) for all-to-all-style communication; we print the growth
//!    exponent per application model.
//! 2. **Contention model** — how much the link-contention inflation
//!    contributes to FT's measured span (the analytical model is
//!    contention-free; this gap is a validation-error source).
//! 3. **Overlap factor** — energy sensitivity to α (Eq. 6/13: wall time
//!    scales, device-busy energy does not).
//! 4. **Cache sharing** — the shared-L2 model's effect on CG's measured
//!    off-chip workload under strong scaling.
//!
//! Usage: `cargo run --release -p bench --bin ablation_overhead`

use bench::{cg_closure, ft_closure, world_g, ALPHA_CG, ALPHA_FT};
use isoee::apps::{AppModel, CgModel, EpModel, FtModel};
use isoee::calibrate::measure_run;
use isoee::model::{e0, overhead_growth};
use isoee::MachineParams;
use mps::run;
use netsim::ContentionModel;
use npb::Class;

fn main() {
    let mach = MachineParams::system_g(2.8e9);

    // ------------------------------------------------------------------
    println!("== Ablation 1: E0(p) growth (paper §V.B.5: E0 is Θ(p^k), k ≥ 1) ==\n");
    let ps = [4usize, 16, 64, 256, 1024];
    let models: [(&str, &dyn AppModel, f64); 3] = [
        ("FT", &FtModel::system_g(), (1u64 << 20) as f64),
        ("EP", &EpModel::system_g(), (1u64 << 22) as f64),
        ("CG", &CgModel::system_g(), 75_000.0),
    ];
    for (name, model, n) in models {
        let pts = overhead_growth(&mach, |p| model.app_params(n, p), &ps);
        print!("  {name}: ");
        for (p, e) in &pts {
            print!("E0({p})={:.2} J  ", e.raw());
        }
        // Growth exponent between the last two decades.
        let k = ((pts[4].1 / pts[2].1).abs().ln()) / ((1024.0f64 / 64.0).ln());
        println!("\n      growth exponent k = {k:.2} over p = 64→1024");
        let _ = e0(&mach, &model.app_params(n, 64), 64);
    }

    // ------------------------------------------------------------------
    println!("\n== Ablation 2: link contention (measured FT span, class A, p = 16) ==\n");
    let base = world_g(2.8e9, ALPHA_FT).with_contention(ContentionModel::none());
    let congested = world_g(2.8e9, ALPHA_FT); // default mild contention
    let t_free = run(&base, 16, ft_closure(Class::A)).span();
    let t_cong = run(&congested, 16, ft_closure(Class::A)).span();
    println!("  contention-free span : {t_free:.4} s");
    println!(
        "  with contention      : {t_cong:.4} s  (+{:.2}%)",
        100.0 * (t_cong / t_free - 1.0)
    );
    println!("  (the analytical model is contention-free; this gap feeds Fig. 4's errors)");

    // ------------------------------------------------------------------
    println!("\n== Ablation 3: overlap factor α (measured FT energy, class A, p = 4) ==\n");
    for alpha in [1.0, 0.86, 0.7] {
        let w = world_g(2.8e9, 1.0).with_alpha(alpha);
        let r = run(&w, 4, ft_closure(Class::A));
        let e = r.energy(&w).total();
        println!(
            "  alpha = {alpha:<5}  span = {:.4} s   energy = {e:.1} J",
            r.span()
        );
    }
    println!("  (wall time scales with α; device-busy delta energy does not — Eq. 13)");

    // ------------------------------------------------------------------
    println!("\n== Ablation 4: shared-L2 contention (CG off-chip workload, class A) ==\n");
    let w = world_g(2.8e9, ALPHA_CG);
    let seq = measure_run(&w, 1, cg_closure(Class::A));
    let par = measure_run(&w, 8, cg_closure(Class::A));
    println!(
        "  Wm(p=1) = {:.3e}   Wm(p=8) = {:.3e}",
        seq.counters.wm, par.counters.wm
    );
    println!(
        "  Wom = {:+.3e}  ({:+.1}% of Wm — strong scaling changes countable off-chip traffic)",
        par.counters.wm - seq.counters.wm,
        100.0 * (par.counters.wm - seq.counters.wm) / seq.counters.wm
    );
}
