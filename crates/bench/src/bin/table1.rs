//! Table 1 — machine-dependent parameters of both testbeds, *measured* with
//! the microbenchmark suite (Perfmon CPI → tc, lat_mem_rd → tm, MPPTest →
//! ts/tw, PowerPack → power deltas) and compared against the configured
//! specification.
//!
//! Usage: `cargo run --release -p bench --bin table1`

use isoee::calibrate::measured_machine_params;
use isoee::MachineParams;
use mps::World;
use simcluster::{dori, system_g};

fn show(name: &str, world: &World) {
    let measured = measured_machine_params(world);
    let spec = MachineParams::from_spec(&world.cluster, world.f_hz);
    println!("{name} @ {:.1} GHz", world.f_hz / 1e9);
    println!("  parameter        measured        spec            unit");
    let rows: [(&str, f64, f64, &str); 9] = [
        ("tc", measured.tc.raw(), spec.tc.raw(), "s/instr"),
        ("cpi", measured.cpi, spec.cpi, "cycles"),
        ("tm", measured.tm.raw(), spec.tm.raw(), "s/access"),
        ("ts", measured.ts.raw(), spec.ts.raw(), "s/message"),
        ("tw", measured.tw.raw(), spec.tw.raw(), "s/byte"),
        (
            "P_sys_idle",
            measured.p_sys_idle.raw(),
            spec.p_sys_idle.raw(),
            "W/core",
        ),
        ("dPc", measured.delta_pc.raw(), spec.delta_pc.raw(), "W"),
        ("dPm", measured.delta_pm.raw(), spec.delta_pm.raw(), "W"),
        ("gamma", measured.gamma, spec.gamma, "-"),
    ];
    for (label, m, s, unit) in rows {
        println!("  {label:<12} {m:>15.6e} {s:>15.6e}  {unit}");
    }
    println!();
}

fn main() {
    println!("== Table 1: machine-dependent parameters (measured vs configured) ==\n");
    show("SystemG", &World::new(system_g(), 2.8e9));
    show("Dori", &World::new(dori(), 2.0e9));
    println!("(The measurement pipeline recovering the configured values end-to-end");
    println!(" validates the calibration tool chain, per the paper's SIV.B.)");
}
