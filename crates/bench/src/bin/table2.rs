//! Table 2 — application-dependent parameters, derived by the §IV.B
//! calibration pipeline: instrumented runs at several `(n, p)` points,
//! overheads from parallel-minus-sequential counter differences, and
//! least-squares fits of the closed-form coefficients used by
//! `isoee::apps::{FtModel, EpModel, CgModel}`.
//!
//! Run with `cargo run --release -p bench --bin table2`.

use bench::{cg_closure, ep_closure, ft_closure, world_g, ALPHA_CG, ALPHA_EP, ALPHA_FT};
use isoee::calibrate::{app_params_from, measure_run};
use npb::common::cg_proc_grid;
use npb::Class;

fn main() {
    println!("== Table 2: application-dependent parameters (calibrated on SystemG) ==\n");
    let ps = [4usize, 16, 64];

    // ------------------------------------------------------------------
    // FT
    // ------------------------------------------------------------------
    let w = world_g(2.8e9, ALPHA_FT);
    let cfg_b = npb::FtConfig::class(Class::B);
    let n_b = cfg_b.n() as f64;
    let cfg_a = npb::FtConfig::class(Class::A);
    let n_a = cfg_a.n() as f64;

    let seq_b = measure_run(&w, 1, ft_closure(Class::B));
    let seq_a = measure_run(&w, 1, ft_closure(Class::A));
    // wc(n) = a·n·log2(n) + b·n  from the two sequential points.
    let (x1, y1) = (n_a * n_a.log2(), seq_a.counters.wc);
    let (x2, y2) = (n_b * n_b.log2(), seq_b.counters.wc);
    let a_coef = (y2 / n_b - y1 / n_a) / (x2 / n_b - x1 / n_a);
    let b_coef = y1 / n_a - a_coef * x1 / n_a;
    println!("FT  (n_B = {n_b}):");
    bench::row("alpha (configured)", ALPHA_FT);
    bench::row("wc_nlogn", format!("{a_coef:.4}"));
    bench::row("wc_lin", format!("{b_coef:.4}"));
    bench::row(
        "wm_lin (= Wm/n at class B)",
        format!("{:.4}", seq_b.counters.wm / n_b),
    );

    // Overhead coefficients are fitted in the pre-relief regime (p <= 16):
    // beyond it the scaled-down footprint falls into aggregate cache, a
    // regime the paper's full-size grids never enter (DESIGN.md #2).
    let fit_ps: Vec<usize> = ps.iter().copied().filter(|&p| p <= 16).collect();
    let mut woc_acc = 0.0;
    let mut wom_acc = 0.0;
    for &p in &ps {
        let par = measure_run(&w, p, ft_closure(Class::B));
        let app = app_params_from(&seq_b, &par);
        let basis = n_b * (1.0 - 1.0 / p as f64);
        if fit_ps.contains(&p) {
            woc_acc += app.woc.raw() / basis;
            wom_acc += app.wom.raw() / basis;
        }
        println!(
            "    p={p:<3} Woc={:+.3e}  Wom={:+.3e}  M={:.0}  B={:.3e}",
            app.woc.raw(),
            app.wom.raw(),
            app.messages.raw(),
            app.bytes.raw()
        );
    }
    bench::row(
        "woc_coeff (fit, p<=16)",
        format!("{:.4}", woc_acc / fit_ps.len() as f64),
    );
    bench::row(
        "wom_coeff (fit, p<=16)",
        format!("{:.4}", wom_acc / fit_ps.len() as f64),
    );

    // ------------------------------------------------------------------
    // EP
    // ------------------------------------------------------------------
    let w = world_g(2.8e9, ALPHA_EP);
    let n_ep = Class::B.ep_pairs() as f64;
    let seq = measure_run(&w, 1, ep_closure(Class::B));
    println!("\nEP  (n = {n_ep}):");
    bench::row("alpha (configured)", ALPHA_EP);
    bench::row("wc_pair (= Wc/n)", format!("{:.4}", seq.counters.wc / n_ep));
    bench::row("wm (should be ~0)", format!("{:.4}", seq.counters.wm));
    let mut woc_per_msg = 0.0;
    for &p in &ps {
        let par = measure_run(&w, p, ep_closure(Class::B));
        let app = app_params_from(&seq, &par);
        woc_per_msg += app.woc.raw() / app.messages.raw().max(1.0);
        println!(
            "    p={p:<3} Woc={:+.3e}  M={:.0}  B={:.0}",
            app.woc.raw(),
            app.messages.raw(),
            app.bytes.raw()
        );
    }
    bench::row(
        "woc_round (fit)",
        format!("{:.4}", woc_per_msg / ps.len() as f64),
    );

    // ------------------------------------------------------------------
    // CG
    // ------------------------------------------------------------------
    let w = world_g(2.8e9, ALPHA_CG);
    let (n_cg_raw, ..) = Class::B.cg_size();
    let n_cg = n_cg_raw as f64;
    let seq = measure_run(&w, 1, cg_closure(Class::B));
    println!("\nCG  (n = {n_cg}):");
    bench::row("alpha (configured)", ALPHA_CG);
    bench::row("wc_lin (= Wc/n)", format!("{:.4}", seq.counters.wc / n_cg));
    bench::row("wm_lin (= Wm/n)", format!("{:.4}", seq.counters.wm / n_cg));

    // Replication basis n·(npcol − 1); memory relief fitted pre-cliff
    // (p = 4 — the regime where the full-size NPB matrix also lives).
    let mut woc_acc = 0.0;
    let mut woc_cnt = 0.0;
    let mut wom_p4 = 0.0;
    for &p in &ps {
        let par = measure_run(&w, p, cg_closure(Class::B));
        let app = app_params_from(&seq, &par);
        let (_, npcol) = cg_proc_grid(p);
        if npcol > 1 {
            woc_acc += app.woc.raw() / (n_cg * (npcol as f64 - 1.0));
            woc_cnt += 1.0;
        }
        if p == 4 {
            wom_p4 = app.wom.raw() / (n_cg * (1.0 - 1.0 / (p as f64).sqrt()));
        }
        println!(
            "    p={p:<3} Woc={:+.3e}  Wom={:+.3e}  M={:.0}  B={:.3e}",
            app.woc.raw(),
            app.wom.raw(),
            app.messages.raw(),
            app.bytes.raw()
        );
    }
    bench::row("woc_repl (fit)", format!("{:.4}", woc_acc / woc_cnt));
    bench::row("wom_coeff (fit, p=4)", format!("{wom_p4:.4}"));

    println!("\n(Transfer these coefficients into isoee::apps::*::system_g() presets.)");
}
