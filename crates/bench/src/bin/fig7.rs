//! Fig. 7 — 3-D plot of `EE_EP(p, f)`.
//!
//! Expected shape (paper §V.B.2): flat and ≈ 1 everywhere — EP has almost
//! no parallel overhead, so energy efficiency barely changes with either
//! the level of parallelism or the DVFS state. (And per §V.B.6, scaling n
//! cannot improve what is already ideal: E0 grows as fast as E1.)
//!
//! Usage: `cargo run --release -p bench --bin fig7`

use bench::DVFS_G;
use isoee::apps::EpModel;
use isoee::{ee_surface_pf, MachineParams};

fn main() {
    let n = (1u64 << 22) as f64; // class-B pair count
    let ps = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let ep = EpModel::system_g();
    let mach = MachineParams::system_g(2.8e9);
    println!("== Fig. 7: EE_EP(p, f) at n = {n} on SystemG ==\n");
    let s = ee_surface_pf(&ep, &mach, n, &ps, &DVFS_G).expect("sweep evaluates");
    bench::print_surface(&s, "f (Hz)");
    println!("\n(Expected: EE ≈ 1 for every (p, f) — near-ideal iso-energy-efficiency.)");
}
