//! Fig. 4 — mean prediction-error rates of the energy model for EP, FT and
//! CG on SystemG across parallelism levels.
//!
//! The paper reports 6.64 % (EP), 4.99 % (FT) and 8.31 % (CG) over
//! p ∈ {1, 2, 4, 8, 16, 32, 64, 128} at class B; the expectation for the
//! reproduction is the same *order* — single-digit mean errors with CG the
//! hardest (the paper blames its memory model; ours errs the same way via
//! the flat-`tm` approximation and contention/imbalance).
//!
//! Usage: `cargo run --release -p bench --bin fig4 [--class A|B] [--pmax N]`

use bench::{cg_closure, ep_closure, ft_closure, world_g, ALPHA_CG, ALPHA_EP, ALPHA_FT};
use isoee::calibrate::measured_machine_params;
use isoee::validate::validate_kernel;
use npb::Class;

fn parse_args() -> (Class, usize) {
    let mut class = Class::B;
    let mut pmax = 128usize;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--class" => {
                i += 1;
                class = match args.get(i).map(String::as_str) {
                    Some("S") => Class::S,
                    Some("W") => Class::W,
                    Some("A") => Class::A,
                    Some("B") | None => Class::B,
                    Some(other) => panic!("unknown class {other}"),
                };
            }
            "--pmax" => {
                i += 1;
                pmax = args
                    .get(i)
                    .expect("--pmax needs a value")
                    .parse()
                    .expect("pmax must be an integer");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    (class, pmax)
}

fn main() {
    let (class, pmax) = parse_args();
    let ps: Vec<usize> = (0..)
        .map(|k| 1usize << k)
        .take_while(|&p| p <= pmax)
        .collect();
    println!("== Fig. 4: average prediction error on SystemG (class {class:?}, p = {ps:?}) ==\n");

    let mut means = Vec::new();
    // (name, world, validation)
    let jobs: Vec<(&str, f64)> = vec![("EP", ALPHA_EP), ("FT", ALPHA_FT), ("CG", ALPHA_CG)];
    for (name, alpha) in jobs {
        let w = world_g(2.8e9, alpha);
        let mach = measured_machine_params(&w);
        let summary = match name {
            "EP" => validate_kernel(&w, &mach, name, &ps, ep_closure(class)),
            "FT" => validate_kernel(&w, &mach, name, &ps, ft_closure(class)),
            "CG" => validate_kernel(&w, &mach, name, &ps, cg_closure(class)),
            _ => unreachable!(),
        };
        println!("{name}:");
        for pt in &summary.points {
            println!(
                "  p={:<4} predicted {:>12.1} J   measured {:>12.1} J   error {:+6.2}%",
                pt.p,
                pt.predicted_j,
                pt.measured_j,
                pt.error_pct()
            );
        }
        println!(
            "  mean |error| = {:.2}%   (paper: EP 6.64%, FT 4.99%, CG 8.31%)\n",
            summary.mean_abs_error_pct()
        );
        means.push((name, summary.mean_abs_error_pct()));
    }

    println!("summary:");
    for (name, m) in &means {
        println!("  {name:<3} {m:.2}%");
    }
    let overall = means.iter().map(|(_, m)| m).sum::<f64>() / means.len() as f64;
    println!("  overall mean |error| = {overall:.2}%  (paper: ~5%)");
}
