//! Fig. 3 — energy-model validation on the Dori cluster: actual (PowerPack-
//! measured) vs model-predicted total energy for the NAS benchmark suite at
//! p = 4, one bar pair per kernel.
//!
//! The paper reports > 95 % accuracy for every benchmark on Dori. Expected
//! here: single-digit errors across EP, FT, CG, IS and MG.
//!
//! Usage: `cargo run --release -p bench --bin fig3 [--class A|W]`

use bench::{
    cg_closure, ep_closure, ft_closure, is_closure, mg_closure, world_dori, ALPHA_CG, ALPHA_EP,
    ALPHA_FT, ALPHA_OTHER,
};
use isoee::calibrate::measured_machine_params;
use isoee::validate::validate_kernel;
use npb::Class;

fn main() {
    let class = match std::env::args().nth(2).as_deref() {
        Some("W") => Class::W,
        Some("S") => Class::S,
        _ => Class::A,
    };
    let p = 4usize;
    println!("== Fig. 3: energy model validation on Dori (class {class:?}, p = {p}) ==\n");
    println!("benchmark   measured (J)   predicted (J)   error     accuracy");

    let mut worst: f64 = 0.0;
    let kernels: [(&str, f64); 5] = [
        ("EP", ALPHA_EP),
        ("FT", ALPHA_FT),
        ("CG", ALPHA_CG),
        ("IS", ALPHA_OTHER),
        ("MG", ALPHA_OTHER),
    ];
    for (name, alpha) in kernels {
        let w = world_dori(alpha);
        let mach = measured_machine_params(&w);
        let summary = match name {
            "EP" => validate_kernel(&w, &mach, name, &[p], ep_closure(class)),
            "FT" => validate_kernel(&w, &mach, name, &[p], ft_closure(class)),
            "CG" => validate_kernel(&w, &mach, name, &[p], cg_closure(class)),
            "IS" => validate_kernel(&w, &mach, name, &[p], is_closure(class)),
            "MG" => validate_kernel(&w, &mach, name, &[p], mg_closure(class)),
            _ => unreachable!(),
        };
        let pt = summary.points[0];
        let err = pt.error_pct();
        worst = worst.max(err.abs());
        println!(
            "  {name:<8}  {:>12.1}   {:>13.1}   {err:+6.2}%   {:5.1}%",
            pt.measured_j,
            pt.predicted_j,
            100.0 - err.abs()
        );
    }
    println!(
        "\nworst-case accuracy: {:.1}%  (paper: 'over 95% for all benchmarks')",
        100.0 - worst
    );
}
