//! Fig. 10 — PowerPack component-power profile of a parallel FFT run: the
//! per-component power trace (CPU / memory / disk / motherboard+NIC) over
//! time, fluctuating above the idle-state baseline.
//!
//! The paper profiles HPCC's MPI_FFT; the equivalent workload here is the
//! FT kernel on 4 ranks. Output is the CSV behind the figure plus summary
//! statistics and the per-phase energy table.
//!
//! Usage: `cargo run --release -p bench --bin fig10 [--class S|W|A]`
//!
//! Set `OBS_TRACE=<path.json>` to also record the run as a Perfetto trace
//! (openable in `ui.perfetto.dev`); tracing stays off — one branch per
//! event — when the variable is absent.

use bench::{ft_closure, world_g, ALPHA_FT};
use mps::run;
use npb::Class;
use obs::ObsConfig;
use powerpack::{profile_csv, summary_table, Session};
use simcluster::EnergyMeter;

fn main() {
    let class = match std::env::args().nth(2).as_deref() {
        Some("S") => Class::S,
        Some("A") => Class::A,
        _ => Class::W,
    };
    let p = 4usize;
    let mut w = world_g(2.8e9, ALPHA_FT);
    if let Ok(path) = std::env::var("OBS_TRACE") {
        w = w.with_obs(ObsConfig::perfetto(path));
    }
    println!("== Fig. 10: PowerPack profile of FT (class {class:?}, p = {p}) ==\n");

    let report = run(&w, p, ft_closure(class));
    let meter = EnergyMeter::new(w.cluster.node.clone(), w.f_hz);
    let span = report.span();
    let session = Session::new(meter).with_sample_interval(span / 400.0);

    let logs = report.logs();
    let profile = session.profile(&logs);
    let markers: Vec<Vec<(String, f64)>> = report.ranks.iter().map(|r| r.markers.clone()).collect();
    let summary = session.measure(&logs, &markers);

    println!("{}", summary_table(&summary));
    println!(
        "idle baseline: {:.1} W   peak: {:.1} W   mean: {:.1} W",
        profile.idle_baseline_w(session.meter()).raw(),
        profile.peak_w().raw(),
        profile.mean_w().raw()
    );
    println!("\ncsv (t_s,cpu_W,mem_W,net_W,disk_W,other_W,total_W):");
    let csv = profile_csv(&profile);
    // Print a decimated trace (every 8th sample) to keep the log readable.
    for (i, line) in csv.lines().enumerate() {
        if i == 0 || i % 8 == 1 {
            println!("{line}");
        }
    }
    println!("\n(Expected: component power fluctuates over the idle line during");
    println!(" compute/communication phases, like the paper's MPI_FFT trace.)");
}
