//! Fig. 9 — 3-D plot of `EE_CG(p, f)` at the paper's n = 75000 (class B).
//!
//! Expected shape (paper §V.B.3, the headline observation): EE declines
//! with `p`, but — opposite to EP and FT — *increases with frequency*:
//! E1 is memory-bound (f-independent) while the parallel overhead is
//! replicated computation whose idle-energy share shrinks as f rises, so
//! EEF = E0/E1 falls. "Users can scale the frequency up using DVFS to
//! achieve better energy efficiency."
//!
//! Usage: `cargo run --release -p bench --bin fig9`

use bench::DVFS_G;
use isoee::apps::CgModel;
use isoee::scaling::best_frequency;
use isoee::{ee_surface_pf, MachineParams};

fn main() {
    let n = 75_000.0; // the paper's exact Fig.-9 workload (class B)
    let ps = [1usize, 4, 16, 64, 256, 1024];
    let cg = CgModel::system_g();
    let mach = MachineParams::system_g(2.8e9);
    println!("== Fig. 9: EE_CG(p, f) at n = {n} on SystemG ==\n");
    let s = ee_surface_pf(&cg, &mach, n, &ps, &DVFS_G).expect("sweep evaluates");
    bench::print_surface(&s, "f (Hz)");
    for &p in &[16usize, 64, 256] {
        let (f, ee) = best_frequency(&cg, &mach, n, p, &DVFS_G).expect("sweep evaluates");
        println!(
            "  best DVFS state at p={p}: {:.1} GHz (EE = {ee:.4})",
            f / 1e9
        );
    }
    println!("\n(Expected: EE falls with p and *rises* with f; best state = 2.8 GHz.)");
}
