//! Fig. 5 — 3-D plot of `EE_FT(p, f)` at fixed workload: the model's
//! energy-efficiency surface for FT over parallelism and DVFS frequency.
//!
//! Expected shape (paper §V.B.1): `p` dominates — EE collapses as the
//! all-to-all's `p(p−1)` message-startup overhead grows — while `f` has
//! almost no effect (FT is communication/memory bound).
//!
//! Usage: `cargo run --release -p bench --bin fig5`

use bench::DVFS_G;
use isoee::apps::FtModel;
use isoee::{ee_surface_pf, MachineParams};

fn main() {
    let n = (1u64 << 20) as f64; // fixed workload (2^20 grid points)
    let ps = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let ft = FtModel::system_g();
    let mach = MachineParams::system_g(2.8e9);
    println!("== Fig. 5: EE_FT(p, f) at n = {n} on SystemG ==\n");
    let s = ee_surface_pf(&ft, &mach, n, &ps, &DVFS_G).expect("sweep evaluates");
    bench::print_surface(&s, "f (Hz)");
    println!("\n(Expected: strong decline along p; nearly flat along f.)");
}
