//! Fig. 2a/2b — measured performance efficiency and energy efficiency of
//! FT and CG on SystemG as the processor count scales (p = 1…32).
//!
//! ```text
//! perf_eff(p)   = T1 / (p · Tp)        (Grama isoefficiency view)
//! energy_eff(p) = E1 / Ep              (the measured EE)
//! ```
//!
//! Expected shape: both decay with p; FT decays smoothly; CG is
//! non-monotonic (the paper's dip-and-recover near p = 16; here the
//! analogous wiggle comes from the cache-capacity transition).
//!
//! Class B (default) keeps the CG matrix and FT grid larger than the
//! aggregate cache across the whole sweep, as the paper's full-size runs
//! were; class A runs much faster but lets CG turn superlinear past p = 8
//! when the 27 MB matrix drops into aggregate L2.
//!
//! Usage: `cargo run --release -p bench --bin fig2 [--class A|B]`

use bench::{cg_closure, ft_closure, world_g, ALPHA_CG, ALPHA_FT};
use isoee::calibrate::measure_run;
use npb::Class;

fn main() {
    let class = match std::env::args().nth(2).as_deref() {
        Some("A") => Class::A,
        Some("S") => Class::S,
        Some("W") => Class::W,
        _ => Class::B,
    };
    let ps = [1usize, 2, 4, 8, 16, 32];
    println!("== Fig. 2: performance vs energy efficiency on SystemG (class {class:?}) ==\n");

    for name in ["FT", "CG"] {
        let alpha = if name == "FT" { ALPHA_FT } else { ALPHA_CG };
        let w = world_g(2.8e9, alpha);
        let seq = if name == "FT" {
            measure_run(&w, 1, ft_closure(class))
        } else {
            measure_run(&w, 1, cg_closure(class))
        };
        println!("{name} (fig 2{}):", if name == "FT" { "a" } else { "b" });
        println!("  p     perf-eff   energy-eff");
        for &p in &ps {
            let par = if p == 1 {
                seq
            } else if name == "FT" {
                measure_run(&w, p, ft_closure(class))
            } else {
                measure_run(&w, p, cg_closure(class))
            };
            let perf_eff = seq.span_s / (p as f64 * par.span_s);
            let energy_eff = seq.energy_j / par.energy_j;
            println!("  {p:<4}  {perf_eff:>8.3}   {energy_eff:>8.3}");
        }
        println!();
    }
    println!("(Paper fig 2: both efficiencies decay with p; CG non-monotonic near p=16.)");
}
