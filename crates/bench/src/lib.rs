//! Shared experiment harness for the figure/table regeneration binaries and
//! the timing benches.
//!
//! Centralizes the paper's experimental constants (per-application overlap
//! factors, DVFS tables, class choices) so every figure uses the same
//! configuration, plus a dependency-free timing harness for the `benches/`
//! entry points.

#![forbid(unsafe_code)]

use mps::{Ctx, World};
use npb::{
    cg_kernel, ep_kernel, ft_kernel, is_kernel, mg_kernel, CgConfig, Class, EpConfig, FtConfig,
    IsConfig, MgConfig,
};
use simcluster::{dori, system_g};

/// Per-application overlap factors measured in the paper (§V.B).
pub const ALPHA_FT: f64 = 0.86;
/// EP's overlap factor.
pub const ALPHA_EP: f64 = 0.93;
/// CG's overlap factor.
pub const ALPHA_CG: f64 = 0.85;
/// Overlap used for IS/MG (not reported in the paper; near FT's).
pub const ALPHA_OTHER: f64 = 0.88;

/// SystemG's DVFS states in Hz (ascending).
pub const DVFS_G: [f64; 4] = [1.6e9, 2.0e9, 2.4e9, 2.8e9];

/// A SystemG world at `f_hz` with overlap `alpha`.
pub fn world_g(f_hz: f64, alpha: f64) -> World {
    World::new(system_g(), f_hz).with_alpha(alpha)
}

/// A Dori world at its nominal 2.0 GHz with overlap `alpha`.
pub fn world_dori(alpha: f64) -> World {
    World::new(dori(), 2.0e9).with_alpha(alpha)
}

/// The FT kernel closure for `class`.
pub fn ft_closure(class: Class) -> impl Fn(&mut Ctx) -> npb::FtResult + Sync {
    let cfg = FtConfig::class(class);
    move |ctx: &mut Ctx| ft_kernel(ctx, cfg)
}

/// The EP kernel closure for `class`.
pub fn ep_closure(class: Class) -> impl Fn(&mut Ctx) -> npb::EpResult + Sync {
    let cfg = EpConfig::class(class);
    move |ctx: &mut Ctx| ep_kernel(ctx, cfg)
}

/// The CG kernel closure for `class`.
pub fn cg_closure(class: Class) -> impl Fn(&mut Ctx) -> npb::CgResult + Sync {
    let cfg = CgConfig::class(class);
    move |ctx: &mut Ctx| cg_kernel(ctx, cfg)
}

/// The IS kernel closure for `class`.
pub fn is_closure(class: Class) -> impl Fn(&mut Ctx) -> npb::IsResult + Sync {
    let cfg = IsConfig::class(class);
    move |ctx: &mut Ctx| is_kernel(ctx, cfg)
}

/// The MG kernel closure for `class`.
pub fn mg_closure(class: Class) -> impl Fn(&mut Ctx) -> npb::MgResult + Sync {
    let cfg = MgConfig::class(class);
    move |ctx: &mut Ctx| mg_kernel(ctx, cfg)
}

/// Pretty-print a `(label, value)` table row.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<28} {value}");
}

/// Print an `EE` surface as an aligned grid plus a JSON line for plotting,
/// with `y_label` naming the row axis (frequency or workload).
pub fn print_surface(surface: &isoee::Surface, y_label: &str) {
    print!("  {y_label:>12} |");
    for x in &surface.xs {
        print!(" p={x:<7}");
    }
    println!();
    println!("  {:->12}-+{:-<1$}", "", surface.xs.len() * 10);
    for (i, y) in surface.ys.iter().enumerate() {
        if *y > 1e6 {
            print!("  {:>12.3e} |", y);
        } else {
            print!("  {y:>12.0} |");
        }
        for j in 0..surface.xs.len() {
            print!(" {:<8.4}", surface.at(i, j));
        }
        println!();
    }
    // Hand-rolled JSON line (the harness keeps zero external dependencies).
    let nums = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let rows = surface
        .values
        .iter()
        .map(|row| format!("[{}]", nums(row)))
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "  json: {{\"xs_p\":[{}],\"ys\":[{}],\"ee\":[{}]}}",
        nums(&surface.xs),
        nums(&surface.ys),
        rows
    );
}

/// Timing statistics of one benchmark case, as returned by [`time_case`].
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStats {
    /// Case name as printed.
    pub name: String,
    /// Timed iterations (excluding the warm-up).
    pub iters: u32,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Minimum wall time per iteration, nanoseconds.
    pub min_ns: f64,
}

impl CaseStats {
    /// Iterations per second at the mean iteration time.
    pub fn throughput_per_s(&self) -> f64 {
        if self.mean_ns > 0.0 {
            1e9 / self.mean_ns
        } else {
            0.0
        }
    }
}

/// Time `f` over `iters` iterations (after one warm-up), print mean and
/// minimum wall time per iteration, and return the stats — a
/// dependency-free stand-in for an external benchmark harness.
pub fn time_case<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> CaseStats {
    assert!(iters > 0, "need at least one iteration");
    let _ = std::hint::black_box(f());
    let mut total = std::time::Duration::ZERO;
    let mut min = std::time::Duration::MAX;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        let _ = std::hint::black_box(f());
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / iters;
    println!("  {name:<28} mean {mean:>12.3?}   min {min:>12.3?}   ({iters} iters)");
    #[allow(clippy::cast_precision_loss)]
    CaseStats {
        name: name.to_string(),
        iters,
        mean_ns: mean.as_nanos() as f64,
        min_ns: min.as_nanos() as f64,
    }
}

/// Fold benchmark cases into an obs registry: per case a
/// `<prefix>.<name>.ns_per_iter` gauge (mean), a `.min_ns_per_iter` gauge,
/// a `.throughput_per_s` gauge, and an `.iters` counter. Returning the
/// registry (rather than the JSON) lets a bench add derived gauges —
/// speedups, per-thread throughput — before snapshotting.
pub fn cases_registry(prefix: &str, cases: &[CaseStats]) -> obs::Registry {
    let reg = obs::Registry::new();
    for c in cases {
        reg.gauge(&format!("{prefix}.{}.ns_per_iter", c.name))
            .set(c.mean_ns);
        reg.gauge(&format!("{prefix}.{}.min_ns_per_iter", c.name))
            .set(c.min_ns);
        reg.gauge(&format!("{prefix}.{}.throughput_per_s", c.name))
            .set(c.throughput_per_s());
        reg.counter(&format!("{prefix}.{}.iters", c.name))
            .add(u64::from(c.iters));
    }
    reg
}

/// Render benchmark cases as an obs metrics snapshot
/// (`{"metrics":[...]}`). `BENCH_model_eval.json` and `BENCH_sweep.json`
/// are this document, so the obs JSON parser and any snapshot tooling read
/// bench results unchanged.
pub fn cases_snapshot_json(prefix: &str, cases: &[CaseStats]) -> String {
    cases_registry(prefix, cases).snapshot_json()
}

/// Detect the recording host's shape for a `bench/2` snapshot: available
/// cores, the effective `POOL_THREADS` (via [`pool::global`]), the current
/// short git revision (`"unknown"` outside a checkout), and the wall-clock
/// recording time.
#[must_use]
pub fn detect_host() -> obs::diff::HostMeta {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map_or_else(
            || "unknown".to_string(),
            |o| String::from_utf8_lossy(&o.stdout).trim().to_string(),
        );
    let recorded_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    obs::diff::HostMeta {
        cores: cores as u64,
        pool_threads: pool::global().threads() as u64,
        git_rev,
        recorded_unix,
    }
}

/// Render a registry as a `bench/2` snapshot: host metadata (so `obsdiff`
/// and `analyze --bench-diff` can refuse cross-host comparisons) followed
/// by the same metrics array a bare snapshot carries.
#[must_use]
pub fn snapshot_v2_json(reg: &obs::Registry) -> String {
    format!(
        "{{\"schema\":\"bench/2\",\"host\":{},\"metrics\":{}}}\n",
        detect_host().to_json(),
        reg.metrics_json_array()
    )
}

/// Copy every log-histogram accumulated in the process-wide [`obs::global`]
/// registry into `reg`, so a bench snapshot carries the latency
/// distributions (`pool.task_latency_s`, `isoee.eval_latency_s`, …) its
/// run produced alongside the wall-time gauges.
pub fn merge_global_loghists(reg: &obs::Registry) {
    for (name, hist) in obs::global().log_histograms() {
        reg.log_histogram(&name, hist.unit()).merge_from(&hist);
    }
}

/// Write an already-rendered snapshot to `path`, reporting rather than
/// panicking on I/O failure (bench output must not break a run).
pub fn write_snapshot_json(path: &str, json: &str) {
    match std::fs::write(path, json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}

/// Write benchmark cases to `path` in the obs metrics snapshot format.
pub fn write_cases_snapshot(path: &str, prefix: &str, cases: &[CaseStats]) {
    write_snapshot_json(path, &cases_snapshot_json(prefix, cases));
}
