//! Property tests: the pool's determinism contract over random inputs,
//! thread counts and chunk sizes.

use pool::{parallel_map, parallel_map_indexed, PoolConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_output_equals_sequential_map(
        len in 0usize..300,
        threads in 1usize..10,
        chunk in 1usize..40,
        salt in any::<u64>(),
    ) {
        let items: Vec<u64> = (0..len as u64).map(|i| i ^ salt).collect();
        let f = |x: &u64| x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        let expect: Vec<u64> = items.iter().map(f).collect();
        let cfg = PoolConfig::with_threads(threads).with_chunk_size(chunk);
        prop_assert_eq!(parallel_map(&cfg, &items, f), expect);
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts(
        len in 1usize..200,
        seed in 0.0f64..1.0,
    ) {
        // Transcendental per-element work: any reassociation or evaluation
        // reordering would show up as a ULP difference. Compare raw bits.
        let f = |i: usize| {
            #[allow(clippy::cast_precision_loss)]
            let x = seed + i as f64;
            (x.sin() * x.sqrt() + x.ln_1p()).to_bits()
        };
        let seq = parallel_map_indexed(&PoolConfig::sequential(), len, f);
        for threads in [2usize, 8] {
            let par = parallel_map_indexed(&PoolConfig::with_threads(threads), len, f);
            prop_assert_eq!(&par, &seq, "threads={}", threads);
        }
    }

    #[test]
    fn nested_runs_preserve_order(
        outer in 1usize..12,
        inner in 1usize..12,
        threads in 1usize..6,
    ) {
        let cfg = PoolConfig::with_threads(threads);
        let grid = parallel_map_indexed(&cfg, outer, |i| {
            parallel_map_indexed(&PoolConfig::with_threads(2), inner, move |j| (i, j))
        });
        for (i, row) in grid.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                prop_assert_eq!(*cell, (i, j));
            }
        }
    }
}
