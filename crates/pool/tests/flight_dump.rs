//! The flight recorder must capture a pool task panic: when a task dies,
//! the pool records a `pool.task_panic` event and dumps every thread's
//! recent-event ring to a JSONL file before the panic propagates.

use std::panic::{self, AssertUnwindSafe};

#[test]
fn task_panic_dumps_flight_tail() {
    let dir = std::env::temp_dir().join(format!("pool-flight-test-{}", std::process::id()));
    std::env::set_var("OBS_FLIGHT_DIR", &dir);

    let inputs: Vec<u64> = (0..64).collect();
    let cfg = pool::PoolConfig::with_threads(2);
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        pool::parallel_map(&cfg, &inputs, |&i| {
            if i == 37 {
                panic!("boom at 37");
            }
            i * 2
        })
    }));
    assert!(result.is_err(), "the panic must propagate to the caller");

    let path = obs::flight::last_dump().expect("a task panic must produce a flight dump");
    assert!(
        path.starts_with(&dir),
        "dump {path:?} not under OBS_FLIGHT_DIR {dir:?}"
    );
    let text = std::fs::read_to_string(&path).expect("dump file readable");
    let mut lines = text.lines();
    let header = lines.next().expect("dump has a header line");
    assert!(
        header.contains("\"flight\":\"pool-task-panic\""),
        "header names the dump reason: {header}"
    );
    // The tail must contain the panic event with the failing task's index
    // and payload.
    let panic_line = lines
        .find(|l| l.contains("pool.task_panic"))
        .unwrap_or_else(|| panic!("no pool.task_panic record in dump:\n{text}"));
    assert!(panic_line.contains("37"), "index in {panic_line}");
    assert!(panic_line.contains("boom at 37"), "message in {panic_line}");

    let _ = std::fs::remove_dir_all(&dir);
}
