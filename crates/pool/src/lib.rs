//! # pool — a work-stealing scoped thread pool with a determinism contract
//!
//! The sweep engine behind `isoee`'s EE surfaces, iso-EE contours and the
//! DVFS advisor. Like [`proptest`](../proptest/index.html), the crate is
//! fully self-contained (no external dependencies, no `unsafe`): workers
//! are scoped `std::thread`s, each owning a mutex-guarded chunk deque, and
//! idle workers steal from the front of their peers' deques.
//!
//! ## The determinism contract
//!
//! [`parallel_map`] and [`parallel_map_indexed`] split the input into
//! contiguous index chunks and write every result into its own
//! pre-assigned output slot, so the reduction is **index-ordered by
//! construction**: the returned `Vec` is the exact value sequence a
//! sequential `map` produces, regardless of thread count or steal
//! interleaving. Each element is computed by exactly one task from exactly
//! the same inputs as in the sequential path, so for a pure function the
//! output is *bit-identical* at any `POOL_THREADS` — the property
//! `tests/parallel_equivalence.rs` enforces across the whole isoee stack.
//!
//! ## Configuration
//!
//! * [`PoolConfig::from_env`] honours `POOL_THREADS` (falls back to the
//!   host's available parallelism); [`global`] caches that lookup.
//! * [`PoolConfig::with_threads`] pins a thread count programmatically —
//!   the differential tests compare 1/2/8-thread runs this way.
//! * When the chunk size is *derived* (no [`PoolConfig::with_chunk_size`]),
//!   a multi-threaded run first times a few tasks inline on the caller:
//!   sweeps whose estimated total is cheaper than spawning threads finish
//!   inline at sequential speed, and sub-microsecond tasks get batched
//!   into chunks carrying tens of microseconds of work each. Results,
//!   ordering and panic behaviour are unchanged — only the schedule
//!   adapts to the measured task cost.
//!
//! ## Observability
//!
//! Every run reports into `obs::global()`:
//!
//! * `pool.workers` (gauge) — workers spawned by the latest parallel run;
//! * `pool.tasks_executed` (counter) — one per task (= input element),
//!   whether it ran inline (1 thread) or on a worker;
//! * `pool.steals` (counter) — chunks taken from another worker's deque;
//! * `pool.queue_depth` (gauge) — chunks not yet claimed, updated as the
//!   run drains;
//! * `pool.task_latency_s` (log histogram) — per-task wall time, measured
//!   at chunk granularity and amortised via `record_n` so the timer never
//!   sits inside the per-task hot path;
//! * `pool.steal_latency_s` (log histogram) — time an idle worker spent
//!   scanning peers before a successful steal;
//! * `pool.queue_residency_s` (log histogram) — how long each chunk
//!   waited in a deque between enqueue and claim.
//!
//! `analyze` cross-checks `pool.tasks_executed` deltas against
//! `isoee.model_evals` to prove the sweep engine's accounting.
//!
//! On a task panic the pool records a `pool.task_panic` event (with the
//! task index) into the `obs::flight` recorder and dumps every thread's
//! flight tail to JSONL before re-raising, so the forensic context of the
//! failure survives the unwind.
//!
//! ## Panics
//!
//! A panicking task aborts the scope: in-flight chunks finish their
//! current element, unclaimed work is dropped, and the panic is re-raised
//! on the caller with the *task index* attached (the lowest-indexed
//! panicking task observed). Nested `parallel_map` calls are allowed —
//! each run spawns its own scope.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// How many tasks each worker claims at a time, by default: enough chunks
/// for ~4 rounds of stealing per worker, so imbalanced task durations
/// still spread.
const CHUNK_ROUNDS_PER_WORKER: usize = 4;

/// Tasks timed inline on the caller before choosing a strategy, when the
/// chunk size is derived (not pinned via [`PoolConfig::with_chunk_size`]).
const PROBE_TASKS: usize = 4;

/// If the probe estimates the *remaining* work below this, the whole run
/// stays inline on the caller: spawning and joining scoped workers costs
/// tens of microseconds, which would dominate a sub-200µs sweep. This is
/// what keeps tiny model-evaluation sweeps (sub-µs per cell) at
/// sequential speed under a multi-threaded config.
const INLINE_BUDGET_NS: u128 = 200_000;

/// Minimum estimated work per chunk when the chunk size is derived, so
/// per-chunk deque locking and stealing stay well under 1% of useful
/// work even for sub-microsecond tasks.
const TARGET_CHUNK_NS: u128 = 50_000;

/// Thread-count and chunking policy for a parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    threads: usize,
    /// `None`: derive from input length and thread count.
    chunk: Option<usize>,
}

impl PoolConfig {
    /// A single-threaded config: `parallel_map` runs inline on the caller
    /// thread — this *is* the sequential path the differential tests
    /// compare against.
    #[must_use]
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// A config with exactly `threads` workers (`0` is clamped to 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            chunk: None,
        }
    }

    /// Override the chunk size (`0` is clamped to 1). Mostly for tests;
    /// the default derives a size from the input length.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk.max(1));
        self
    }

    /// Read the thread count from the `POOL_THREADS` environment variable;
    /// unset, empty, unparsable or zero values fall back to the host's
    /// available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        Self::with_threads(threads_from_str(
            std::env::var("POOL_THREADS").ok().as_deref(),
        ))
    }

    /// Configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The chunk size used for an input of `len` tasks.
    #[must_use]
    pub fn chunk_size(&self, len: usize) -> usize {
        match self.chunk {
            Some(c) => c,
            None => len
                .div_ceil(self.threads.saturating_mul(CHUNK_ROUNDS_PER_WORKER).max(1))
                .max(1),
        }
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Parse a `POOL_THREADS` value; `None`, empty, unparsable or `0` fall
/// back to the host's available parallelism.
#[must_use]
pub fn threads_from_str(value: Option<&str>) -> usize {
    match value.map(str::trim) {
        Some(s) if !s.is_empty() => match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        _ => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The process-wide config, read from `POOL_THREADS` once on first use.
pub fn global() -> &'static PoolConfig {
    static GLOBAL: OnceLock<PoolConfig> = OnceLock::new();
    GLOBAL.get_or_init(PoolConfig::from_env)
}

/// One contiguous run of tasks: global start index plus the output slots
/// the owning worker fills. Stealing moves the whole chunk.
struct Chunk<'a, U> {
    start: usize,
    out: &'a mut [Option<U>],
    /// Enqueue time, for `pool.queue_residency_s`.
    born: std::time::Instant,
}

/// Cached handles for the pool's log histograms (registration takes the
/// registry mutex; the handles are lock-free).
struct PoolHists {
    task_latency: std::sync::Arc<obs::LogHistogram>,
    steal_latency: std::sync::Arc<obs::LogHistogram>,
    queue_residency: std::sync::Arc<obs::LogHistogram>,
}

fn hists() -> &'static PoolHists {
    static HISTS: OnceLock<PoolHists> = OnceLock::new();
    HISTS.get_or_init(|| {
        let reg = obs::global();
        PoolHists {
            task_latency: reg.log_histogram("pool.task_latency_s", "s"),
            steal_latency: reg.log_histogram("pool.steal_latency_s", "s"),
            queue_residency: reg.log_histogram("pool.queue_residency_s", "s"),
        }
    })
}

/// Record the panic into the flight recorder and dump every thread's
/// forensic tail before the unwind continues.
fn flight_panic_dump(task: &TaskPanic) {
    obs::flight::record(
        "pool.task_panic",
        "event",
        0.0,
        &[
            ("index", task.index.to_string()),
            ("message", task.message().to_string()),
        ],
    );
    let _ = obs::flight::dump("pool-task-panic");
}

/// Shared per-run bookkeeping.
struct RunState<U> {
    deques: Vec<Mutex<VecDeque<U>>>,
    /// Chunks not yet claimed by any worker (drives `pool.queue_depth`).
    unclaimed: AtomicUsize,
    /// Set by the first panicking task; stops everyone else early.
    abort: AtomicBool,
    /// Lowest-indexed panic observed `(task_index, payload)`.
    panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>>,
}

/// Map `f` over `items` on the configured pool, preserving input order.
///
/// Semantically identical to `items.iter().map(f).collect()`: results are
/// reduced in index order, and with a pure `f` the output is bit-identical
/// at any thread count. See the crate docs for the panic behaviour.
///
/// # Panics
/// Re-raises the panic of the lowest-indexed panicking task, with the task
/// index attached.
pub fn parallel_map<T, U, F>(cfg: &PoolConfig, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_indexed(cfg, items.len(), |i| f(&items[i]))
}

/// Map `f` over the index range `0..len` on the configured pool.
///
/// The index-taking core of [`parallel_map`]; same determinism and panic
/// contract.
///
/// # Panics
/// Re-raises the panic of the lowest-indexed panicking task, with the task
/// index attached.
pub fn parallel_map_indexed<U, F>(cfg: &PoolConfig, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    // Zero-length inputs short-circuit: no workers, no metrics, no spawn.
    if len == 0 {
        return Vec::new();
    }

    let reg = obs::global();
    let tasks = reg.counter("pool.tasks_executed");

    // The sequential path: the caller thread runs every task inline. This
    // is also the reference the differential tests compare against.
    if cfg.threads <= 1 || len == 1 {
        reg.gauge("pool.workers").set(1.0);
        let t0 = std::time::Instant::now();
        let out: Vec<U> = (0..len).map(&f).collect();
        tasks.add(len as u64);
        record_task_latency(t0.elapsed(), len as u64);
        return out;
    }

    let mut out: Vec<Option<U>> = (0..len).map(|_| None).collect();

    // Measured-cost heuristic (derived-chunk mode only; `with_chunk_size`
    // pins the policy and skips it): time the first few tasks inline,
    // then either finish inline — when the estimated remaining work would
    // be dwarfed by thread spawn/join overhead — or raise the chunk size
    // so each chunk carries enough work to amortise deque traffic. Task
    // results and panics are identical either way; only the schedule
    // adapts, so the determinism contract is unaffected.
    let mut chunk = cfg.chunk_size(len);
    let mut done = 0usize;
    if cfg.chunk.is_none() {
        let probe = PROBE_TASKS.min(len);
        let t0 = std::time::Instant::now();
        run_inline(&mut out[..probe], 0, &f, &tasks);
        let per_task_ns = (t0.elapsed().as_nanos() / probe as u128).max(1);
        done = probe;
        let remaining = (len - probe) as u128;
        if per_task_ns.saturating_mul(remaining) < INLINE_BUDGET_NS {
            reg.gauge("pool.workers").set(1.0);
            run_inline(&mut out[probe..], probe, &f, &tasks);
            return unwrap_slots(out);
        }
        let min_chunk = usize::try_from(TARGET_CHUNK_NS / per_task_ns).unwrap_or(usize::MAX);
        chunk = chunk.max(min_chunk.max(1));
    }

    // Pre-split the (un-probed tail of the) output buffer into disjoint
    // chunk slices; each chunk owns its slots, so no two workers ever
    // alias an element.
    let mut chunks: Vec<Chunk<'_, U>> = Vec::with_capacity((len - done).div_ceil(chunk));
    {
        let mut rest: &mut [Option<U>] = &mut out[done..];
        let mut start = done;
        let born = std::time::Instant::now();
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            chunks.push(Chunk {
                start,
                out: head,
                born,
            });
            rest = tail;
            start += take;
        }
    }

    let workers = cfg.threads.min(chunks.len());
    let n_chunks = chunks.len();
    let state = RunState {
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        unclaimed: AtomicUsize::new(n_chunks),
        abort: AtomicBool::new(false),
        panic: Mutex::new(None),
    };
    // Round-robin the chunks so every worker starts with local work.
    for (i, c) in chunks.into_iter().enumerate() {
        state.deques[i % workers]
            .lock()
            .expect("pool deque poisoned")
            .push_back(c);
    }

    #[allow(clippy::cast_precision_loss)]
    {
        reg.gauge("pool.workers").set(workers as f64);
        reg.gauge("pool.queue_depth").set(n_chunks as f64);
    }

    std::thread::scope(|scope| {
        for w in 0..workers {
            let state = &state;
            let f = &f;
            scope.spawn(move || worker_loop(w, state, f));
        }
    });

    if let Some((index, payload)) = state.panic.lock().expect("pool panic slot poisoned").take() {
        eprintln!("pool: parallel task {index} panicked; re-raising on the caller");
        let task = TaskPanic { index, payload };
        flight_panic_dump(&task);
        resume_unwind(Box::new(task));
    }

    unwrap_slots(out)
}

/// Run `f(index, &mut item)` over every element of `items` in parallel.
///
/// The mutable-slice analogue of [`parallel_map_indexed`], built for the
/// `simrt` superstep engine (each item is a simulated rank task resumed in
/// place). The slice is split into contiguous index chunks with
/// `split_at_mut`, so every task owns its element exclusively and the
/// determinism contract carries over: for a per-element pure `f` the final
/// slice contents are bit-identical at any thread count.
///
/// Chunks are claimed from one shared queue (no stealing — rank-resume
/// slices are orders of magnitude above the claim cost). Reports
/// `pool.workers` and bumps `pool.mut_tasks_executed`, a counter distinct
/// from `pool.tasks_executed` so `analyze`'s sweep-accounting cross-check
/// is not perturbed by engine supersteps.
///
/// # Panics
///
/// A panicking task sets the shared abort flag (peers stop claiming new
/// chunks) and the panic re-raises on the caller when the scope joins.
pub fn parallel_for_each_mut<T, F>(cfg: &PoolConfig, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    if len == 0 {
        return;
    }
    let reg = obs::global();
    let tasks = reg.counter("pool.mut_tasks_executed");

    // Sequential path: run inline on the caller, in index order. This is
    // the reference schedule the differential tests compare against.
    if cfg.threads <= 1 || len == 1 {
        reg.gauge("pool.workers").set(1.0);
        let t0 = std::time::Instant::now();
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        tasks.add(len as u64);
        record_task_latency(t0.elapsed(), len as u64);
        return;
    }

    let chunk = cfg.chunk_size(len);
    let mut queue: VecDeque<(usize, &mut [T])> = VecDeque::new();
    let mut rest = items;
    let mut start = 0usize;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        queue.push_back((start, head));
        rest = tail;
        start += take;
    }

    let workers = cfg.threads.min(queue.len());
    let queue = Mutex::new(queue);
    let abort = AtomicBool::new(false);

    #[allow(clippy::cast_precision_loss)]
    reg.gauge("pool.workers").set(workers as f64);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let abort = &abort;
            let f = &f;
            let tasks = &tasks;
            scope.spawn(move || {
                // If this worker unwinds, tell the others to stop claiming;
                // the scope join re-raises the panic on the caller.
                let _guard = AbortOnPanic(abort);
                loop {
                    if abort.load(Ordering::Relaxed) {
                        return;
                    }
                    let next = queue.lock().expect("pool queue poisoned").pop_front();
                    let Some((base, slots)) = next else { return };
                    let t0 = std::time::Instant::now();
                    let ran = slots.len() as u64;
                    for (offset, slot) in slots.iter_mut().enumerate() {
                        f(base + offset, slot);
                    }
                    tasks.add(ran);
                    record_task_latency(t0.elapsed(), ran);
                }
            });
        }
    });
}

/// Sets the flag when dropped during an unwind, leaving it untouched on a
/// normal exit.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

/// Run `slots.len()` tasks in index order on the caller thread, starting
/// at global index `base`. Panics re-raise as [`TaskPanic`] immediately —
/// execution is in order, so the first panic is the lowest-indexed one.
fn run_inline<U, F>(slots: &mut [Option<U>], base: usize, f: &F, tasks: &obs::Counter)
where
    F: Fn(usize) -> U,
{
    let t0 = std::time::Instant::now();
    let mut ran = 0u64;
    for (offset, slot) in slots.iter_mut().enumerate() {
        let index = base + offset;
        match catch_unwind(AssertUnwindSafe(|| f(index))) {
            Ok(value) => {
                *slot = Some(value);
                tasks.inc();
                ran += 1;
            }
            Err(payload) => {
                eprintln!("pool: parallel task {index} panicked; re-raising on the caller");
                record_task_latency(t0.elapsed(), ran);
                let task = TaskPanic { index, payload };
                flight_panic_dump(&task);
                resume_unwind(Box::new(task));
            }
        }
    }
    record_task_latency(t0.elapsed(), ran);
}

/// Amortised per-task latency: one timer reading per batch, spread over
/// the `ran` tasks it covered (keeps `Instant::now()` off the per-task
/// path — sweep cells run in tens of nanoseconds).
fn record_task_latency(elapsed: std::time::Duration, ran: u64) {
    if ran > 0 {
        #[allow(clippy::cast_precision_loss)]
        hists()
            .task_latency
            .record_n(elapsed.as_secs_f64() / ran as f64, ran);
    }
}

fn unwrap_slots<U>(out: Vec<Option<U>>) -> Vec<U> {
    out.into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("pool: task {i} never ran")))
        .collect()
}

/// Panic payload re-raised by the pool when a task panics: the original
/// payload plus the task index. Its `Display`/`Debug` embed the index so
/// `catch_unwind` callers (and test harness output) can identify the task.
pub struct TaskPanic {
    /// Index of the panicking task (the lowest-indexed one observed).
    pub index: usize,
    /// The task's original panic payload.
    pub payload: Box<dyn std::any::Any + Send>,
}

impl TaskPanic {
    /// The original payload rendered as a string, when it was one.
    #[must_use]
    pub fn message(&self) -> &str {
        if let Some(s) = self.payload.downcast_ref::<&'static str>() {
            s
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s
        } else {
            "<non-string panic payload>"
        }
    }
}

impl std::fmt::Debug for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parallel task {} panicked: {}",
            self.index,
            self.message()
        )
    }
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        <Self as std::fmt::Debug>::fmt(self, f)
    }
}

fn worker_loop<U, F>(me: usize, state: &RunState<Chunk<'_, U>>, f: &F)
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let reg = obs::global();
    let tasks = reg.counter("pool.tasks_executed");
    let steals = reg.counter("pool.steals");
    let depth = reg.gauge("pool.queue_depth");
    let workers = state.deques.len();
    loop {
        if state.abort.load(Ordering::Relaxed) {
            return;
        }
        // Own work first (LIFO keeps the locally-hot chunk), then steal
        // from peers front-first (FIFO gives away the coldest chunk).
        let mut claimed = state.deques[me]
            .lock()
            .expect("pool deque poisoned")
            .pop_back();
        if claimed.is_none() {
            let hunt_start = std::time::Instant::now();
            for k in 1..workers {
                let victim = (me + k) % workers;
                let stolen = state.deques[victim]
                    .lock()
                    .expect("pool deque poisoned")
                    .pop_front();
                if stolen.is_some() {
                    steals.inc();
                    hists()
                        .steal_latency
                        .record(hunt_start.elapsed().as_secs_f64());
                    claimed = stolen;
                    break;
                }
            }
        }
        let Some(chunk) = claimed else {
            // All deques empty and nothing re-enqueues: the run is drained
            // (in-flight chunks belong to other workers).
            return;
        };
        #[allow(clippy::cast_precision_loss)]
        depth.set(
            state
                .unclaimed
                .fetch_sub(1, Ordering::Relaxed)
                .saturating_sub(1) as f64,
        );

        hists()
            .queue_residency
            .record(chunk.born.elapsed().as_secs_f64());

        let start = chunk.start;
        let chunk_start = std::time::Instant::now();
        let mut ran = 0u64;
        for (offset, slot) in chunk.out.iter_mut().enumerate() {
            if state.abort.load(Ordering::Relaxed) {
                record_task_latency(chunk_start.elapsed(), ran);
                return;
            }
            let index = start + offset;
            match catch_unwind(AssertUnwindSafe(|| f(index))) {
                Ok(value) => {
                    *slot = Some(value);
                    tasks.inc();
                    ran += 1;
                }
                Err(payload) => {
                    record_task_latency(chunk_start.elapsed(), ran);
                    record_panic(state, index, payload);
                    return;
                }
            }
        }
        record_task_latency(chunk_start.elapsed(), ran);
    }
}

/// Keep the lowest-indexed panic (deterministic winner when several tasks
/// panic) and flip the abort flag.
fn record_panic<C>(state: &RunState<C>, index: usize, payload: Box<dyn std::any::Any + Send>) {
    let mut slot = state.panic.lock().expect("pool panic slot poisoned");
    match slot.as_ref() {
        Some((existing, _)) if *existing <= index => {}
        _ => *slot = Some((index, payload)),
    }
    state.abort.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 8] {
            let cfg = PoolConfig::with_threads(threads);
            let got = parallel_map(&cfg, &items, |&x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let n = 1537; // deliberately not a multiple of any chunk size
        let ran: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let cfg = PoolConfig::with_threads(8).with_chunk_size(7);
        let out = parallel_map_indexed(&cfg, n, |i| {
            ran[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
        for (i, r) in ran.iter().enumerate() {
            assert_eq!(r.load(Ordering::Relaxed), 1, "task {i} run count");
        }
    }

    #[test]
    fn zero_length_short_circuits_without_calling_f() {
        let calls = AtomicU32::new(0);
        let cfg = PoolConfig::with_threads(8);
        let out: Vec<u32> = parallel_map_indexed(&cfg, 0, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            0
        });
        assert!(out.is_empty());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        let out2: Vec<u32> = parallel_map(&cfg, &[] as &[u32], |&x| x);
        assert!(out2.is_empty());
    }

    #[test]
    fn nested_parallel_map_works() {
        let cfg = PoolConfig::with_threads(4);
        let outer = parallel_map_indexed(&cfg, 6, |i| {
            let inner = PoolConfig::with_threads(2);
            parallel_map_indexed(&inner, 5, move |j| i * 10 + j)
        });
        for (i, row) in outer.iter().enumerate() {
            assert_eq!(*row, (0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panicking_task_aborts_and_reports_its_index() {
        let cfg = PoolConfig::with_threads(4).with_chunk_size(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_indexed(&cfg, 64, |i| {
                if i == 7 {
                    panic!("boom at {i}");
                }
                i
            })
        }))
        .expect_err("the panic must propagate");
        let task = err
            .downcast_ref::<TaskPanic>()
            .expect("pool panics re-raise as TaskPanic");
        assert_eq!(task.index, 7);
        assert_eq!(task.message(), "boom at 7");
        assert!(format!("{task}").contains("task 7"));
    }

    #[test]
    fn lowest_indexed_panic_wins_when_all_tasks_panic() {
        // Sequential path: task 0 panics first by construction.
        let cfg = PoolConfig::sequential();
        let err = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_indexed(&cfg, 8, |i| -> usize { panic!("task {i}") })
        }))
        .expect_err("must propagate");
        // The inline path re-raises the original payload (no TaskPanic
        // wrapper is needed to identify the task: execution is in order).
        let msg = err
            .downcast_ref::<String>()
            .map_or("<non-string>", String::as_str);
        assert_eq!(msg, "task 0");
    }

    #[test]
    fn chunk_size_derivation_is_sane() {
        let cfg = PoolConfig::with_threads(4);
        assert_eq!(cfg.chunk_size(1), 1);
        assert!(cfg.chunk_size(16) >= 1);
        assert!(cfg.chunk_size(10_000) * 4 * CHUNK_ROUNDS_PER_WORKER >= 10_000);
        let pinned = PoolConfig::with_threads(4).with_chunk_size(0);
        assert_eq!(pinned.chunk_size(100), 1, "chunk 0 clamps to 1");
    }

    #[test]
    fn threads_from_str_parses_and_falls_back() {
        assert_eq!(threads_from_str(Some("3")), 3);
        assert_eq!(threads_from_str(Some(" 12 ")), 12);
        let default = default_threads();
        assert_eq!(threads_from_str(None), default);
        assert_eq!(threads_from_str(Some("")), default);
        assert_eq!(threads_from_str(Some("0")), default);
        assert_eq!(threads_from_str(Some("lots")), default);
        assert_eq!(PoolConfig::with_threads(0).threads(), 1);
    }

    #[test]
    fn cached_hist_handles_survive_in_place_reset() {
        // The sweep bench resets metric values between cases
        // (`Registry::reset_values` / `LogHistogram::reset`). The pool
        // caches its histogram Arcs in a `OnceLock`, so the reset must be
        // in place: the registry entry, the cached handle, and a fresh
        // lookup must all remain the *same* allocation, and recording
        // through the cached handle must stay visible to snapshots.
        // (Only the pool's own histograms are reset here — the
        // process-global counters stay untouched so the delta assertions
        // in concurrent tests cannot race.)
        let cfg = PoolConfig::with_threads(2);
        let _ = parallel_map_indexed(&cfg, 64, |i| i); // force registration
        let cached = std::sync::Arc::clone(&hists().task_latency);
        cached.reset();
        assert!(std::sync::Arc::ptr_eq(
            &cached,
            &obs::global().log_histogram("pool.task_latency_s", "s")
        ));
        let before = cached.snapshot().count;
        let _ = parallel_map_indexed(&cfg, 64, |i| i);
        assert!(
            cached.snapshot().count > before,
            "cached handle must keep recording after an in-place reset"
        );
    }

    #[test]
    fn tasks_counter_advances_by_input_length() {
        // The counter is process-global; other tests bump it concurrently,
        // so assert a lower bound on the delta rather than equality.
        let tasks = obs::global().counter("pool.tasks_executed");
        let before = tasks.get();
        let cfg = PoolConfig::with_threads(3);
        let _ = parallel_map_indexed(&cfg, 500, |i| i);
        assert!(tasks.get() - before >= 500);
    }

    #[test]
    fn for_each_mut_matches_sequential_at_any_thread_count() {
        let baseline: Vec<u64> = (0..777u64).map(|i| i * i + 7).collect();
        for threads in [1, 2, 3, 8] {
            let cfg = PoolConfig::with_threads(threads).with_chunk_size(13);
            let mut items: Vec<u64> = (0..777u64).collect();
            parallel_for_each_mut(&cfg, &mut items, |i, v| {
                assert_eq!(*v, i as u64, "each task sees its own element");
                *v = *v * *v + 7;
            });
            assert_eq!(items, baseline, "threads={threads}");
        }
    }

    #[test]
    fn for_each_mut_handles_empty_and_single() {
        let cfg = PoolConfig::with_threads(4);
        let mut empty: Vec<u8> = Vec::new();
        parallel_for_each_mut(&cfg, &mut empty, |_, _| unreachable!());
        let mut one = vec![41u8];
        parallel_for_each_mut(&cfg, &mut one, |i, v| {
            assert_eq!(i, 0);
            *v += 1;
        });
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn for_each_mut_propagates_task_panics() {
        let cfg = PoolConfig::with_threads(4).with_chunk_size(8);
        let mut items: Vec<usize> = (0..256).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_for_each_mut(&cfg, &mut items, |i, _| {
                assert!(i != 100, "task 100 exploded");
            });
        }));
        assert!(result.is_err(), "panic must reach the caller");
    }
}
