//! Heterogeneous-system extension — the paper's stated future work
//! ("we want to extend the current model to heterogeneous systems").
//!
//! A heterogeneous pool mixes processor classes (e.g. SystemG-like and
//! Dori-like nodes, or big/little cores). The extension keeps the paper's
//! structure: workload splits across classes, each class contributes
//! per-class time and energy via the homogeneous Eqs. 13/15, and the
//! system-level `EE` compares the total against the *best single
//! processor's* sequential energy.
//!
//! Two workload-division policies are provided:
//!
//! * [`Split::Even`] — naive equal shares (what a topology-blind scheduler
//!   does); the slowest class stretches everyone's idle energy.
//! * [`Split::TimeBalanced`] — shares proportional to per-class speed, so
//!   all classes finish together (the natural generalization of the
//!   paper's homogeneous-workload assumption).

use crate::model;
use crate::params::{AppParams, MachineParams};
use simcluster::units::{Joules, Seconds};

/// One processor class in the pool.
#[derive(Debug, Clone, Copy)]
pub struct ProcClass {
    /// Machine vector of this class.
    pub mach: MachineParams,
    /// Number of processors of this class.
    pub count: usize,
}

/// Workload-division policy across classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Equal share per processor regardless of class.
    Even,
    /// Shares proportional to per-processor throughput (all classes finish
    /// together, up to the model's resolution).
    TimeBalanced,
}

/// The heterogeneous evaluation result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeteroResult {
    /// Parallel span: the latest class finish time.
    pub tp: Seconds,
    /// Total energy across all classes.
    pub ep: Joules,
    /// Iso-energy-efficiency vs the fastest class's sequential run.
    pub ee: f64,
}

/// Per-processor busy time per unit of workload share for a class —
/// the weight used by the time-balanced split.
fn unit_time(mach: &MachineParams, a: &AppParams) -> Seconds {
    // Time to process the whole (wc+woc, wm+wom) totals on one processor.
    a.alpha * ((a.wc + a.woc) * mach.tc + (a.wm + a.wom) * mach.tm)
}

/// Evaluate a heterogeneous pool on application totals `a` (the Table-2
/// vector for the *whole* job at the pool's total processor count).
///
/// Network terms are charged once, against the slowest class's link
/// parameters (conservative, like the paper's single-fabric assumption).
///
/// # Panics
/// Panics on an empty pool.
pub fn evaluate(classes: &[ProcClass], a: &AppParams, split: Split) -> HeteroResult {
    assert!(!classes.is_empty(), "pool must have at least one class");
    let total_procs: usize = classes.iter().map(|c| c.count).sum();
    assert!(total_procs > 0, "pool must have processors");

    // Workload shares per class.
    let shares: Vec<f64> = match split {
        Split::Even => classes
            .iter()
            .map(|c| c.count as f64 / total_procs as f64)
            .collect(),
        Split::TimeBalanced => {
            let speeds: Vec<f64> = classes
                .iter()
                .map(|c| c.count as f64 / unit_time(&c.mach, a).raw())
                .collect();
            let total: f64 = speeds.iter().sum();
            speeds.iter().map(|s| s / total).collect()
        }
    };

    // Network time, charged on the slowest link present.
    let worst_ts = classes
        .iter()
        .map(|c| c.mach.ts)
        .fold(Seconds::ZERO, Seconds::max);
    let worst_tw = classes
        .iter()
        .map(|c| c.mach.tw)
        .fold(Seconds::ZERO, Seconds::max);
    let t_net_total = a.messages * worst_ts + a.bytes * worst_tw;

    // Per-class spans and energies.
    let mut tp = Seconds::ZERO;
    let mut ep = Joules::ZERO;
    for (class, &share) in classes.iter().zip(&shares) {
        let m = &class.mach;
        let pc = class.count as f64;
        let busy = unit_time(m, a) * share / pc;
        let net = a.alpha * (t_net_total * share / pc);
        tp = tp.max(busy + net);
        // Active deltas for this class's share.
        ep += ((a.wc + a.woc) * share) * m.tc * m.delta_pc
            + ((a.wm + a.wom) * share) * m.tm * m.delta_pm
            + (t_net_total * share) * m.delta_pnic;
    }
    // Every processor idles (or works) for the full span.
    for class in classes {
        ep += tp * class.count as f64 * class.mach.p_sys_idle;
    }

    // Reference: sequential run on the *fastest* class (lowest E1).
    let e1 = classes
        .iter()
        .map(|c| model::e1(&c.mach, a))
        .fold(Joules::new(f64::INFINITY), Joules::min);
    let ee = e1 / ep;
    HeteroResult { tp, ep, ee }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g_class(count: usize) -> ProcClass {
        ProcClass {
            mach: MachineParams::system_g(2.8e9),
            count,
        }
    }

    fn dori_class(count: usize) -> ProcClass {
        ProcClass {
            mach: MachineParams::dori(2.0e9),
            count,
        }
    }

    fn app() -> AppParams {
        let mut a = AppParams::ideal(1e11);
        a.wm = simcluster::units::Accesses::new(1e8);
        a
    }

    #[test]
    fn homogeneous_pool_matches_the_homogeneous_model() {
        let a = app();
        let classes = [g_class(16)];
        let h = evaluate(&classes, &a, Split::TimeBalanced);
        let m = MachineParams::system_g(2.8e9);
        let ee_homog = model::ee(&m, &a, 16).expect("baseline energy is positive");
        assert!(
            (h.ee - ee_homog).abs() < 1e-9,
            "hetero {} vs homogeneous {}",
            h.ee,
            ee_homog
        );
        assert!((h.tp - model::tp(&m, &a, 16)).abs() < Seconds::new(1e-12));
    }

    #[test]
    fn time_balanced_split_beats_even_split_on_mixed_pools() {
        let a = app();
        let classes = [g_class(8), dori_class(8)];
        let even = evaluate(&classes, &a, Split::Even);
        let balanced = evaluate(&classes, &a, Split::TimeBalanced);
        assert!(
            balanced.tp < even.tp,
            "balanced {} should finish before even {}",
            balanced.tp,
            even.tp
        );
        assert!(
            balanced.ee > even.ee,
            "balanced EE {} should beat even EE {}",
            balanced.ee,
            even.ee
        );
    }

    #[test]
    fn even_split_is_hostage_to_the_slowest_class() {
        let a = app();
        // One slow straggler class in a fast pool.
        let classes = [g_class(15), dori_class(1)];
        let even = evaluate(&classes, &a, Split::Even);
        // The straggler's per-proc share takes ~tc_dori/tc_g longer.
        let fast_only = evaluate(&[g_class(15)], &a, Split::Even);
        assert!(even.tp > fast_only.tp, "{} vs {}", even.tp, fast_only.tp);
    }

    #[test]
    fn adding_slow_processors_can_reduce_ee() {
        // Heterogeneity insight: growing the pool with slow nodes can cost
        // efficiency even when it improves the span.
        let a = app();
        let fast = evaluate(&[g_class(16)], &a, Split::TimeBalanced);
        let mixed = evaluate(&[g_class(16), dori_class(16)], &a, Split::TimeBalanced);
        assert!(mixed.tp < fast.tp, "more processors finish sooner");
        assert!(mixed.ee < fast.ee, "…but spend more joules per unit work");
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_pool_rejected() {
        evaluate(&[], &app(), Split::Even);
    }
}
