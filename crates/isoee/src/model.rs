//! The analytical core: Eqs. 5–21 of the paper.
//!
//! Time model (Eqs. 5–6, 10): theoretical time is the sum of on-chip
//! computation, off-chip memory, network and I/O components; actual time is
//! the theoretical sum squeezed by the overlap factor `α`.
//!
//! Energy model (Eqs. 7–9, 13–15): every processor draws `P_sys_idle` for
//! the whole (actual) execution, plus per-component active deltas for the
//! full device-busy durations:
//!
//! ```text
//! E1 = T1·P_sys_idle + Wc·tc·ΔPc + Wm·tm·ΔPm                       (Eq. 13)
//! Ep = Tp·p·P_sys_idle + (Wc+Woc)·tc·ΔPc + (Wm+Wom)·tm·ΔPm
//!      + (M·ts + B·tw)·ΔP_NIC                                      (Eq. 15/18)
//! ```
//!
//! and from those `E0`, `EEF` and `EE` (Eqs. 16, 19, 21). Every term is
//! assembled through the dimensional algebra of [`simcluster::units`]
//! (`tally × latency → Seconds`, `Seconds × Watts → Joules`), so a
//! unit-mixing mistake in a formula is a compile error rather than a wrong
//! curve.
//!
//! **Lockstep contract:** the batched columnar kernel ([`crate::batch`])
//! and the interval mirrors ([`crate::interval`]) reproduce these
//! formulas' exact association trees — the batch kernel is pinned
//! *bit-identical* to this module by `tests/batch_equivalence.rs`, and
//! the interval containment guarantee relies on structural matching.
//! Any change to an expression here (even a re-association) must be made
//! in all three places together.

use std::error::Error;
use std::fmt;

use simcluster::units::{Joules, Seconds};

use crate::params::{AppParams, MachineParams};

/// A parameter set the ratio model cannot evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelError {
    /// The sequential baseline energy `E1` came out non-positive or
    /// non-finite, so the ratios `EEF = E0/E1` and `EE = 1/(1+EEF)` are
    /// undefined (an all-zero workload, or a non-finite parameter).
    DegenerateBaseline {
        /// The offending `E1` value.
        e1: Joules,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DegenerateBaseline { e1 } => write!(
                f,
                "sequential baseline energy E1 = {e1} is not positive and finite; \
                 EEF = E0/E1 is undefined for this parameter set"
            ),
        }
    }
}

impl Error for ModelError {}

/// Actual sequential execution time `T1 = α·(Wc·tc + Wm·tm + T_IO)`
/// (Eqs. 5–6).
#[must_use]
pub fn t1(m: &MachineParams, a: &AppParams) -> Seconds {
    a.alpha * (a.wc * m.tc + a.wm * m.tm + a.t_io)
}

/// Total network time `M·ts + B·tw` across all processors (Eq. 17).
#[must_use]
pub fn t_net(m: &MachineParams, a: &AppParams) -> Seconds {
    a.messages * m.ts + a.bytes * m.tw
}

/// Actual per-processor parallel execution time (Eq. 10 with homogeneous
/// workload distribution — the paper's §V.B.5 assumption):
///
/// ```text
/// Tp = α·((Wc+Woc)·tc + (Wm+Wom)·tm + M·ts + B·tw + T_IO) / p
/// ```
///
/// # Panics
/// Panics when `p == 0`.
#[must_use]
pub fn tp(m: &MachineParams, a: &AppParams, p: usize) -> Seconds {
    assert!(p > 0, "need at least one processor");
    a.alpha * ((a.wc + a.woc) * m.tc + (a.wm + a.wom) * m.tm + t_net(m, a) + a.t_io) / p as f64
}

/// Sequential energy `E1` (Eq. 13).
#[must_use]
pub fn e1(m: &MachineParams, a: &AppParams) -> Joules {
    t1(m, a) * m.p_sys_idle
        + a.wc * m.tc * m.delta_pc
        + a.wm * m.tm * m.delta_pm
        + a.t_io * m.delta_pio
}

/// Parallel energy `Ep` on `p` processors (Eqs. 14–15 with the network
/// delta of Eq. 18).
///
/// # Panics
/// Panics when `p == 0`.
#[must_use]
pub fn ep(m: &MachineParams, a: &AppParams, p: usize) -> Joules {
    tp(m, a, p) * p as f64 * m.p_sys_idle
        + (a.wc + a.woc) * m.tc * m.delta_pc
        + (a.wm + a.wom) * m.tm * m.delta_pm
        + t_net(m, a) * m.delta_pnic
        + a.t_io * m.delta_pio
}

/// Parallel energy overhead `E0 = Ep − E1` (Eqs. 1, 16).
///
/// # Panics
/// Panics when `p == 0`.
#[must_use]
pub fn e0(m: &MachineParams, a: &AppParams, p: usize) -> Joules {
    ep(m, a, p) - e1(m, a)
}

/// Energy Efficiency Factor `EEF = E0 / E1` (Eqs. 3, 19).
///
/// # Errors
/// Returns [`ModelError::DegenerateBaseline`] when `E1` is non-positive or
/// non-finite — the ratio is undefined there, and a panic would turn a bad
/// calibration input into an abort deep inside the model.
///
/// # Panics
/// Panics when `p == 0`.
pub fn eef(m: &MachineParams, a: &AppParams, p: usize) -> Result<f64, ModelError> {
    let base = e1(m, a);
    if !(base.is_finite() && base > Joules::ZERO) {
        return Err(ModelError::DegenerateBaseline { e1: base });
    }
    Ok(e0(m, a, p) / base)
}

/// Iso-energy-efficiency `EE = 1 / (1 + EEF)` (Eqs. 2, 4, 21).
///
/// `EE = 1` is ideal. Values slightly above 1 are possible when the
/// parallel overheads are negative (e.g. strong-scaling cache effects make
/// `Wom < 0` by more than the communication costs add) — superlinear
/// energy scaling, the energy analog of superlinear speedup.
///
/// # Errors
/// Returns [`ModelError::DegenerateBaseline`] when the sequential baseline
/// energy is non-positive or non-finite (see [`eef`]).
///
/// # Panics
/// Panics when `p == 0`.
pub fn ee(m: &MachineParams, a: &AppParams, p: usize) -> Result<f64, ModelError> {
    Ok(1.0 / (1.0 + eef(m, a, p)?))
}

/// The §V.B.5 observation: with an evenly divided workload, rewrite
/// Eq. 16's overhead as a function of `p` and report the overhead energy
/// `E0(p)` for a range of `p`, exposing its `Θ(p^k)` (k ≥ 1) growth when
/// per-processor communication does not shrink with `p`.
pub fn overhead_growth(
    m: &MachineParams,
    app_at: impl Fn(usize) -> AppParams,
    ps: &[usize],
) -> Vec<(usize, Joules)> {
    ps.iter().map(|&p| (p, e0(m, &app_at(p), p))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{AppParams, MachineParams};
    use simcluster::units::{Accesses, Bytes, Instructions, Messages};

    fn mach() -> MachineParams {
        MachineParams::system_g(2.8e9)
    }

    fn ee_ok(m: &MachineParams, a: &AppParams, p: usize) -> f64 {
        ee(m, a, p).expect("baseline energy is positive")
    }

    #[test]
    fn ideal_app_has_ee_one_at_any_p() {
        let m = mach();
        let a = AppParams::ideal(1e9);
        for p in [1usize, 2, 16, 1024] {
            assert!((ee_ok(&m, &a, p) - 1.0).abs() < 1e-12, "p={p}");
            assert!(e0(&m, &a, p).abs() < Joules::new(1e-6));
        }
    }

    #[test]
    fn sequential_case_is_exactly_e1() {
        let m = mach();
        let mut a = AppParams::ideal(1e9);
        a.wm = Accesses::new(1e7);
        assert!((ep(&m, &a, 1) - e1(&m, &a)).abs() < Joules::new(1e-9));
        assert!((ee_ok(&m, &a, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn communication_lowers_ee() {
        let m = mach();
        let mut a = AppParams::ideal(1e9);
        a.messages = Messages::new(1e5);
        a.bytes = Bytes::new(1e9);
        let e = ee_ok(&m, &a, 8);
        assert!(e < 1.0, "EE {e}");
        assert!(e > 0.0);
    }

    #[test]
    fn ee_decreases_monotonically_with_growing_overhead() {
        let m = mach();
        let mut prev = f64::INFINITY;
        for k in 0..6 {
            let mut a = AppParams::ideal(1e9);
            a.woc = Instructions::new(1e7 * f64::from(k) * f64::from(k));
            let e = ee_ok(&m, &a, 16);
            assert!(e <= prev + 1e-15);
            prev = e;
        }
    }

    #[test]
    fn negative_wom_can_push_ee_above_one() {
        // Superlinear energy scaling from strong-scaling cache effects.
        let m = mach();
        let mut a = AppParams::ideal(1e8);
        a.wm = Accesses::new(1e8);
        a.wom = Accesses::new(-5e7); // half the off-chip traffic disappears
        let e = ee_ok(&m, &a, 8);
        assert!(e > 1.0, "EE {e}");
    }

    #[test]
    fn t1_matches_eq6() {
        let m = mach();
        let mut a = AppParams::ideal(1e9);
        a.wm = Accesses::new(1e6);
        a.alpha = 0.9;
        let expect = 0.9 * (1e9 * m.tc.raw() + 1e6 * m.tm.raw());
        assert!((t1(&m, &a).raw() - expect).abs() < 1e-12);
    }

    #[test]
    fn tp_at_p1_equals_t1_when_no_overheads() {
        let m = mach();
        let mut a = AppParams::ideal(5e8);
        a.wm = Accesses::new(1e6);
        assert!((tp(&m, &a, 1) - t1(&m, &a)).abs() < Seconds::new(1e-15));
    }

    #[test]
    fn e1_matches_eq13_by_hand() {
        let m = mach();
        let mut a = AppParams::ideal(1e9);
        a.wm = Accesses::new(2e6);
        a.alpha = 0.85;
        let t = 0.85 * (1e9 * m.tc.raw() + 2e6 * m.tm.raw());
        let expect = t * m.p_sys_idle.raw()
            + 1e9 * m.tc.raw() * m.delta_pc.raw()
            + 2e6 * m.tm.raw() * m.delta_pm.raw();
        assert!((e1(&m, &a).raw() - expect).abs() < 1e-9);
    }

    #[test]
    fn lower_frequency_reduces_delta_but_stretches_idle() {
        // The core DVFS tension the paper studies: at low f the CPU delta
        // shrinks (∝ f^γ) but execution lengthens (tc ∝ 1/f), so idle-power
        // energy grows. For compute-bound work with γ = 2 on SystemG, the
        // idle term dominates and E1 *increases* at the lowest state.
        let hi = mach();
        let lo = hi.at_frequency(1.6e9);
        let a = AppParams::ideal(1e10);
        let e_hi = e1(&hi, &a);
        let e_lo = e1(&lo, &a);
        assert!(
            e_lo > e_hi,
            "idle-dominated energy must grow at low f: {e_lo} vs {e_hi}"
        );
    }

    #[test]
    fn overhead_growth_is_superlinear_for_alltoall_like_m() {
        let m = mach();
        let pts = overhead_growth(
            &m,
            |p| {
                let mut a = AppParams::ideal(1e9);
                // All-to-all startup costs: M = p(p−1).
                a.messages = Messages::new((p * (p - 1)) as f64);
                a
            },
            &[2, 4, 8, 16, 32],
        );
        // E0 should grow faster than linearly in p.
        let (p_a, e_a) = pts[1]; // p=4
        let (p_b, e_b) = pts[4]; // p=32
        let growth = e_b / e_a;
        let linear = p_b as f64 / p_a as f64;
        assert!(growth > linear, "E0 growth {growth} vs linear {linear}");
    }

    #[test]
    fn eef_and_ee_are_consistent() {
        let m = mach();
        let mut a = AppParams::ideal(1e9);
        a.messages = Messages::new(1e4);
        a.bytes = Bytes::new(1e8);
        let f = eef(&m, &a, 8).expect("positive baseline");
        let e = ee_ok(&m, &a, 8);
        assert!((e - 1.0 / (1.0 + f)).abs() < 1e-15);
    }

    #[test]
    fn zero_workload_is_an_error_not_an_abort() {
        let m = mach();
        let a = AppParams::ideal(0.0);
        assert_eq!(
            eef(&m, &a, 4),
            Err(ModelError::DegenerateBaseline { e1: Joules::ZERO })
        );
        assert!(ee(&m, &a, 4).is_err());
    }

    #[test]
    fn non_finite_baseline_is_an_error() {
        let m = mach();
        let a = AppParams::ideal(f64::NAN);
        let err = ee(&m, &a, 4).expect_err("NaN workload must not evaluate");
        let ModelError::DegenerateBaseline { e1 } = err;
        assert!(!e1.is_finite());
    }
}
