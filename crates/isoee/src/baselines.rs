//! Baseline models the paper positions itself against (§II).
//!
//! * **Performance isoefficiency** (Grama, Gupta, Kumar — the paper's [7]):
//!   `η(p) = T1 / (p·Tp)`; the isoefficiency function is the workload
//!   growth needed to hold `η` constant. Performance-only — no energy.
//! * **Power-aware speedup** (Ge & Cameron — the paper's [25]): speedup
//!   generalized with DVFS-dependent execution times. Captures *some*
//!   energy effects but, as the paper argues, gives no insight into the
//!   root causes of poor power-performance scalability.
//! * **Amdahl's law** (the paper's [9]): the serial-fraction bound both
//!   generalize.
//!
//! Implementing the baselines lets the experiments show *what the
//! iso-energy-efficiency model adds*: the baselines rank FT's scalability
//! identically at every frequency and say nothing about CG's preference
//! for high DVFS states, which the EE model exposes directly.

use crate::model;
use crate::params::{AppParams, MachineParams};

/// Amdahl's law: speedup with serial fraction `s` on `p` processors.
pub fn amdahl_speedup(serial_fraction: f64, p: usize) -> f64 {
    assert!(
        (0.0..=1.0).contains(&serial_fraction),
        "serial fraction must be in [0,1]"
    );
    assert!(p > 0, "need at least one processor");
    1.0 / (serial_fraction + (1.0 - serial_fraction) / p as f64)
}

/// Performance efficiency `η = T1 / (p·Tp)` under the same time model the
/// EE computation uses (Eqs. 6/10) — Grama's isoefficiency metric.
pub fn performance_efficiency(m: &MachineParams, a: &AppParams, p: usize) -> f64 {
    model::t1(m, a) / (p as f64 * model::tp(m, a, p))
}

/// The performance-isoefficiency workload: smallest `n` with `η ≥ target`
/// (bisection over a monotone `n ↦ η`), or `None` if unreachable.
pub fn iso_efficiency_workload(
    app: &dyn crate::apps::AppModel,
    m: &MachineParams,
    p: usize,
    target: f64,
    n_lo: f64,
    n_hi: f64,
) -> Option<f64> {
    assert!(n_lo > 1.0 && n_hi > n_lo, "invalid bracket");
    assert!(target > 0.0 && target < 1.0, "target must be in (0,1)");
    let eta = |n: f64| performance_efficiency(m, &app.app_params(n, p), p);
    if eta(n_hi) < target {
        return None;
    }
    if eta(n_lo) >= target {
        return Some(n_lo);
    }
    let (mut lo, mut hi) = (n_lo, n_hi);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if eta(mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) / hi < 1e-9 {
            break;
        }
    }
    Some(hi)
}

/// Power-aware speedup (Ge & Cameron): the speedup of running on `p`
/// processors at frequency `f` relative to one processor at the *nominal*
/// frequency, with on-chip time scaled by `f_ref/f` and off-chip time
/// frequency-invariant.
pub fn power_aware_speedup(m: &MachineParams, a: &AppParams, p: usize, f_hz: f64) -> f64 {
    let nominal = m.at_frequency(m.f_ref_hz);
    let scaled = m.at_frequency(f_hz);
    model::t1(&nominal, a) / model::tp(&scaled, a, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{AppModel, CgModel, FtModel};

    fn mach() -> MachineParams {
        MachineParams::system_g(2.8e9)
    }

    #[test]
    fn amdahl_limits() {
        assert_eq!(amdahl_speedup(0.0, 8), 8.0);
        assert!((amdahl_speedup(1.0, 64) - 1.0).abs() < 1e-12);
        // 5% serial caps speedup at 20x.
        assert!(amdahl_speedup(0.05, 1_000_000) < 20.0);
        assert!(amdahl_speedup(0.05, 1_000_000) > 19.0);
    }

    #[test]
    fn performance_efficiency_is_one_without_overheads() {
        let m = mach();
        let a = AppParams::ideal(1e9);
        for p in [1usize, 8, 512] {
            assert!((performance_efficiency(&m, &a, p) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn performance_efficiency_decays_like_ee_for_ft() {
        // The two metrics agree on the ranking of p (both decay), while
        // only EE carries the power dimension.
        let m = mach();
        let ft = FtModel::system_g();
        let n = (1u64 << 20) as f64;
        let eta_16 = performance_efficiency(&m, &ft.app_params(n, 16), 16);
        let eta_512 = performance_efficiency(&m, &ft.app_params(n, 512), 512);
        assert!(eta_16 > eta_512);
    }

    #[test]
    fn iso_efficiency_contour_grows_with_p() {
        let m = mach();
        let ft = FtModel::system_g();
        let n32 = iso_efficiency_workload(&ft, &m, 32, 0.7, 1e3, 1e12).unwrap();
        let n256 = iso_efficiency_workload(&ft, &m, 256, 0.7, 1e3, 1e12).unwrap();
        assert!(n256 > n32);
    }

    #[test]
    fn power_aware_speedup_reduces_to_plain_speedup_at_nominal_f() {
        let m = mach();
        let a = AppParams::ideal(1e10);
        let s = power_aware_speedup(&m, &a, 16, 2.8e9);
        assert!((s - 16.0).abs() < 1e-9);
    }

    #[test]
    fn downclocking_costs_speedup_for_compute_bound_work() {
        let m = mach();
        let a = AppParams::ideal(1e10);
        let s_hi = power_aware_speedup(&m, &a, 16, 2.8e9);
        let s_lo = power_aware_speedup(&m, &a, 16, 1.6e9);
        assert!((s_hi / s_lo - 2.8 / 1.6).abs() < 1e-9);
    }

    #[test]
    fn baseline_is_blind_to_cg_frequency_preference() {
        // The paper's core argument: power-aware speedup ranks frequencies
        // purely by time (higher f always wins), while EE knows that for
        // CG the *energy* ranking also favors high f but for EP it does
        // not — the speedup baseline cannot make that distinction at all.
        let m = mach();
        let cg = CgModel::system_g();
        let a = cg.app_params(75_000.0, 64);
        let s_hi = power_aware_speedup(&m, &a, 64, 2.8e9);
        let s_lo = power_aware_speedup(&m, &a, 64, 1.6e9);
        assert!(s_hi > s_lo, "speedup always prefers high f");
        // EE agrees for CG...
        let ee_hi = model::ee(&m, &a, 64).expect("baseline energy is positive");
        let ee_lo = model::ee(&m.at_frequency(1.6e9), &a, 64).expect("baseline energy is positive");
        assert!(ee_hi > ee_lo);
        // ...but the baseline would say the same for EP, where EE (barely)
        // disagrees — the energy dimension the baseline lacks.
        let ep = crate::apps::EpModel::system_g();
        let ae = ep.app_params(4e6, 64);
        let ee_ep_hi = model::ee(&m, &ae, 64).expect("baseline energy is positive");
        let ee_ep_lo =
            model::ee(&m.at_frequency(1.6e9), &ae, 64).expect("baseline energy is positive");
        assert!(ee_ep_lo >= ee_ep_hi, "EP's EE does not reward high f");
    }
}
