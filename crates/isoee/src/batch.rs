//! Batched columnar evaluation of the Eq. 13/15 sweep grids.
//!
//! The scalar model in [`crate::model`] re-derives every term at every
//! grid point: a `(p, f)` sweep calls [`AppModel::app_params`] once per
//! *cell* even though the application vector only varies per column, and
//! `model::ee` itself evaluates `E1` twice (once as the `EEF` denominator,
//! once inside `E0 = Ep − E1`) and `T_net` twice (inside `Tp` and again in
//! `Ep`). This module factors the formulas into their per-axis invariant
//! and varying parts and evaluates whole grid rows into flat `f64`
//! struct-of-arrays buffers ([`Columns`]):
//!
//! * **column-invariant** (per application vector, frequency-free):
//!   `Wm·tm`, `(Wm+Wom)·tm`, `T_net = M·ts + B·tw`, `(Wm·tm)·ΔPm`,
//!   `((Wm+Wom)·tm)·ΔPm`, `T_net·ΔP_NIC`, `T_IO·ΔP_IO`, plus the raw
//!   `α`, `Wc`, `Wc+Woc`, `T_IO` and `p` columns;
//! * **row-varying** (Eq. 20): `tc = CPI/f` and `ΔPc ∝ f^γ` — two scalars
//!   per row, updated incrementally via [`MachineParams::at_frequency`];
//! * **grid-constant**: `P_sys_idle`.
//!
//! One further hoist applies to every built-in NPB model: the sequential
//! terms of Eq. 13 (`α`, `Wc`, `Wm·tm`, `T_IO` and their energies) do not
//! depend on `p`, so all columns of a `(p, f)` grid share them bit-for-bit
//! and `E1` collapses to one evaluation per row. The grid *detects* this
//! by comparing column bits at construction rather than assuming it, so a
//! custom [`AppModel`] with `p`-dependent sequential terms transparently
//! falls back to the full per-column kernel.
//!
//! The interval pre-certification in [`crate::interval`] shares the same
//! factorization: [`crate::interval::E1Factors`] is the interval-valued
//! twin of [`Factors`], built once per column and re-evaluated against the
//! two frequency-dependent enclosures instead of re-deriving a full model
//! enclosure per box.
//!
//! ## Bit-identity contract
//!
//! Every fused expression reproduces the *exact association tree* of the
//! corresponding [`crate::model`] formula — hoisting a loop-invariant
//! product or reusing an identically-computed subterm never changes a
//! bit, but re-associating a sum or turning a division into a reciprocal
//! multiply would. `tests/batch_equivalence.rs` pins the kernel
//! bit-identical (`f64::to_bits`) to the scalar oracle over the committed
//! Fig 5–9 grids and under a randomized differential proptest. Change
//! [`fused`] only together with [`crate::model`] (and the interval
//! mirrors in [`crate::interval`]).
//!
//! Degenerate baselines are not carried as per-point `Result`s: each row
//! is evaluated branch-free into an `E1` scratch column, and a separate
//! scan reports the first failing cell — the same deterministic row-major
//! first-error index the scalar path in [`crate::scaling`] produces.
//!
//! Because the application vector is derived **once per column**, the
//! batch path requires [`AppModel::app_params`] to be a pure function of
//! `(n, p)` — true of every model in [`crate::apps`], whose coefficient
//! tables are fixed at construction.

use simcluster::units::{Joules, Seconds};

use crate::apps::AppModel;
use crate::interval::{frequency_terms, AppBox, E1Factors, GridCertification, Interval, MachBox};
use crate::model::ModelError;
use crate::params::{AppParams, MachineParams};

/// The column-invariant factors of Eqs. 13/15 for one application vector.
///
/// Everything here is independent of the frequency axis: only `tc` and
/// `ΔPc` change under Eq. 20, so one `Factors` per column serves every
/// row of a `(p, f)` grid.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Factors {
    /// Overlap factor `α`.
    alpha: f64,
    /// `Wc`.
    wc: f64,
    /// `Wc + Woc`.
    wcc: f64,
    /// `Wm·tm` — the sequential memory time of Eqs. 6/13.
    mem_seq: f64,
    /// `(Wm+Wom)·tm` — the parallel memory time of Eqs. 10/15.
    mem_par: f64,
    /// `T_IO`.
    t_io: f64,
    /// `T_net = M·ts + B·tw` (Eq. 17).
    t_net: f64,
    /// `(Wm·tm)·ΔPm` — the Eq. 13 memory energy.
    e_mem_seq: f64,
    /// `((Wm+Wom)·tm)·ΔPm` — the Eq. 15 memory energy.
    e_mem_par: f64,
    /// `T_net·ΔP_NIC` — the Eq. 18 network energy.
    e_net: f64,
    /// `T_IO·ΔP_IO`.
    e_io: f64,
}

/// Derive the column-invariant factors from one `(Mach, Appl)` pair.
///
/// Each product/sum below is the raw-`f64` image of the exact unit-newtype
/// operation the scalar model performs (the [`simcluster::units`] algebra
/// multiplies and adds raw magnitudes), so caching them is bit-transparent.
#[inline]
fn factors_of(m: &MachineParams, a: &AppParams) -> Factors {
    let mem_seq = a.wm.raw() * m.tm.raw();
    let mem_par = (a.wm.raw() + a.wom.raw()) * m.tm.raw();
    let t_net = a.messages.raw() * m.ts.raw() + a.bytes.raw() * m.tw.raw();
    Factors {
        alpha: a.alpha,
        wc: a.wc.raw(),
        wcc: a.wc.raw() + a.woc.raw(),
        mem_seq,
        mem_par,
        t_io: a.t_io.raw(),
        t_net,
        e_mem_seq: mem_seq * m.delta_pm.raw(),
        e_mem_par: mem_par * m.delta_pm.raw(),
        e_net: t_net * m.delta_pnic.raw(),
        e_io: a.t_io.raw() * m.delta_pio.raw(),
    }
}

/// The full fused evaluation at one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Fused {
    t1: f64,
    tp: f64,
    e1: f64,
    ep: f64,
    eef: f64,
    ee: f64,
}

/// The per-cell residual: everything that depends on the row axis
/// (`tc`, `ΔPc`) at one column. ~22 flops, 3 divisions, branch-free.
///
/// **Lockstep warning:** each line reproduces the association tree of the
/// matching [`crate::model`] formula exactly; see the module docs.
#[inline(always)]
fn fused(tc: f64, dpc: f64, psys: f64, c: &Factors, p: f64) -> Fused {
    // T1 = α·((Wc·tc + Wm·tm) + T_IO)                            (Eqs. 5–6)
    let x1 = c.wc * tc;
    let t1 = c.alpha * ((x1 + c.mem_seq) + c.t_io);
    // E1 = ((T1·P_idle + (Wc·tc)·ΔPc) + (Wm·tm)·ΔPm) + T_IO·ΔP_IO (Eq. 13)
    let e1 = ((t1 * psys + x1 * dpc) + c.e_mem_seq) + c.e_io;
    // Tp = α·((((Wc+Woc)·tc + (Wm+Wom)·tm) + T_net) + T_IO) / p   (Eq. 10)
    let y1 = c.wcc * tc;
    let tp = c.alpha * (((y1 + c.mem_par) + c.t_net) + c.t_io) / p;
    // Ep = (((Tp·p·P_idle + ((Wc+Woc)·tc)·ΔPc) + ((Wm+Wom)·tm)·ΔPm)
    //       + T_net·ΔP_NIC) + T_IO·ΔP_IO                      (Eqs. 15/18)
    let ep = (((tp * p * psys + y1 * dpc) + c.e_mem_par) + c.e_net) + c.e_io;
    // EEF = (Ep − E1)/E1, EE = 1/(1 + EEF)                (Eqs. 16/19/21)
    let eef = (ep - e1) / e1;
    let ee = 1.0 / (1.0 + eef);
    Fused {
        t1,
        tp,
        e1,
        ep,
        eef,
        ee,
    }
}

/// Whether a baseline energy is degenerate — the exact predicate of
/// [`crate::model::eef`].
#[inline]
fn degenerate(e1: f64) -> bool {
    !(e1.is_finite() && e1 > 0.0)
}

/// Scan an `E1` column for the first degenerate cell, mirroring the
/// scalar sweep's within-row short-circuit: the error index and payload
/// are identical at any thread count.
fn first_degenerate(e1s: &[f64]) -> Result<(), (usize, ModelError)> {
    for (j, &e1) in e1s.iter().enumerate() {
        if degenerate(e1) {
            return Err((
                j,
                ModelError::DegenerateBaseline {
                    e1: Joules::new(e1),
                },
            ));
        }
    }
    Ok(())
}

/// The Eq. 5–15 terms of one point evaluation, unit-typed.
///
/// Bit-identical to [`crate::model::t1`]/[`tp`](crate::model::tp)/
/// [`e1`](crate::model::e1)/[`ep`](crate::model::ep) on the same inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Terms {
    /// Actual sequential time `T1` (Eq. 6).
    pub t1: Seconds,
    /// Actual per-processor parallel time `Tp` (Eq. 10).
    pub tp: Seconds,
    /// Sequential energy `E1` (Eq. 13).
    pub e1: Joules,
    /// Parallel energy `Ep` (Eq. 15/18).
    pub ep: Joules,
}

/// One point evaluated through the fused kernel: the raw terms plus the
/// ratio results with the scalar model's exact degenerate handling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointEval {
    /// The Eq. 5–15 terms.
    pub terms: Terms,
    /// `EEF = E0/E1` (Eq. 19), or the degenerate-baseline error.
    pub eef: Result<f64, ModelError>,
    /// `EE = 1/(1+EEF)` (Eq. 21), or the degenerate-baseline error.
    pub ee: Result<f64, ModelError>,
}

/// Evaluate one `(Mach, Appl, p)` point through the fused kernel.
///
/// # Panics
/// Panics when `p == 0`.
#[must_use]
pub fn evaluate(m: &MachineParams, a: &AppParams, p: usize) -> PointEval {
    assert!(p > 0, "need at least one processor");
    let c = factors_of(m, a);
    #[allow(clippy::cast_precision_loss)]
    let v = fused(
        m.tc.raw(),
        m.delta_pc.raw(),
        m.p_sys_idle.raw(),
        &c,
        p as f64,
    );
    let terms = Terms {
        t1: Seconds::new(v.t1),
        tp: Seconds::new(v.tp),
        e1: Joules::new(v.e1),
        ep: Joules::new(v.ep),
    };
    let (eef, ee) = if degenerate(v.e1) {
        let err = ModelError::DegenerateBaseline { e1: terms.e1 };
        (Err(err), Err(err))
    } else {
        (Ok(v.eef), Ok(v.ee))
    };
    PointEval { terms, eef, ee }
}

/// The Eq. 5–15 terms at one point (see [`evaluate`]).
///
/// # Panics
/// Panics when `p == 0`.
#[must_use]
pub fn terms(m: &MachineParams, a: &AppParams, p: usize) -> Terms {
    evaluate(m, a, p).terms
}

/// `EE` through the fused kernel — bit-identical to [`crate::model::ee`].
///
/// # Errors
/// Returns [`ModelError::DegenerateBaseline`] exactly when the scalar
/// model does, with the same `E1` payload.
///
/// # Panics
/// Panics when `p == 0`.
pub fn ee_point(m: &MachineParams, a: &AppParams, p: usize) -> Result<f64, ModelError> {
    evaluate(m, a, p).ee
}

/// `EEF` through the fused kernel — bit-identical to [`crate::model::eef`].
///
/// # Errors
/// Returns [`ModelError::DegenerateBaseline`] exactly when the scalar
/// model does, with the same `E1` payload.
///
/// # Panics
/// Panics when `p == 0`.
pub fn eef_point(m: &MachineParams, a: &AppParams, p: usize) -> Result<f64, ModelError> {
    evaluate(m, a, p).eef
}

/// The shared `E1`-relevant factors of a grid whose columns all agree
/// **bit-for-bit** on them — true of every `(p, f)` grid over the built-in
/// NPB models, whose sequential terms (`α`, `Wc`, `Wm·tm`, `T_IO` and the
/// derived energies) do not depend on `p`.
///
/// When present, a row computes `E1` once instead of per column (reusing
/// an identically-computed value is bit-transparent), which shrinks the
/// per-point residual to the genuinely `p`-dependent Eq. 15 terms.
#[derive(Debug, Clone, Copy)]
struct UniformE1 {
    alpha: f64,
    wc: f64,
    mem_seq: f64,
    t_io: f64,
    e_mem_seq: f64,
    e_io: f64,
}

/// The column-invariant factors of a whole grid, struct-of-arrays: flat
/// `f64` columns the row loop streams through.
#[derive(Debug, Default)]
struct Columns {
    p: Vec<f64>,
    alpha: Vec<f64>,
    wc: Vec<f64>,
    wcc: Vec<f64>,
    mem_seq: Vec<f64>,
    mem_par: Vec<f64>,
    t_io: Vec<f64>,
    t_net: Vec<f64>,
    e_mem_seq: Vec<f64>,
    e_mem_par: Vec<f64>,
    e_net: Vec<f64>,
    e_io: Vec<f64>,
    /// Set by [`Self::seal`] when all columns share the `E1` factors.
    uniform: Option<UniformE1>,
}

impl Columns {
    fn with_capacity(n: usize) -> Self {
        Self {
            p: Vec::with_capacity(n),
            alpha: Vec::with_capacity(n),
            wc: Vec::with_capacity(n),
            wcc: Vec::with_capacity(n),
            mem_seq: Vec::with_capacity(n),
            mem_par: Vec::with_capacity(n),
            t_io: Vec::with_capacity(n),
            t_net: Vec::with_capacity(n),
            e_mem_seq: Vec::with_capacity(n),
            e_mem_par: Vec::with_capacity(n),
            e_net: Vec::with_capacity(n),
            e_io: Vec::with_capacity(n),
            uniform: None,
        }
    }

    /// Detect whether every column agrees bit-for-bit on the
    /// `E1`-relevant factors, enabling the hoisted row kernel. Call once
    /// after the last [`Self::push`].
    fn seal(&mut self) {
        let same = |col: &[f64], v: f64| col.iter().all(|&x| x.to_bits() == v.to_bits());
        self.uniform = self.alpha.first().and_then(|&alpha| {
            let u = UniformE1 {
                alpha,
                wc: self.wc[0],
                mem_seq: self.mem_seq[0],
                t_io: self.t_io[0],
                e_mem_seq: self.e_mem_seq[0],
                e_io: self.e_io[0],
            };
            (same(&self.alpha, u.alpha)
                && same(&self.wc, u.wc)
                && same(&self.mem_seq, u.mem_seq)
                && same(&self.t_io, u.t_io)
                && same(&self.e_mem_seq, u.e_mem_seq)
                && same(&self.e_io, u.e_io))
            .then_some(u)
        });
    }

    fn push(&mut self, m: &MachineParams, a: &AppParams, p: usize) {
        let c = factors_of(m, a);
        #[allow(clippy::cast_precision_loss)]
        self.p.push(p as f64);
        self.alpha.push(c.alpha);
        self.wc.push(c.wc);
        self.wcc.push(c.wcc);
        self.mem_seq.push(c.mem_seq);
        self.mem_par.push(c.mem_par);
        self.t_io.push(c.t_io);
        self.t_net.push(c.t_net);
        self.e_mem_seq.push(c.e_mem_seq);
        self.e_mem_par.push(c.e_mem_par);
        self.e_net.push(c.e_net);
        self.e_io.push(c.e_io);
    }

    fn len(&self) -> usize {
        self.p.len()
    }

    /// Evaluate one machine row into `ee_out`/`e1_out` (branch-free), then
    /// scan `e1_out` for the first degenerate cell.
    fn eval_row(
        &self,
        tc: f64,
        dpc: f64,
        psys: f64,
        ee_out: &mut [f64],
        e1_out: &mut [f64],
    ) -> Result<(), (usize, ModelError)> {
        let k = self.len();
        assert!(
            ee_out.len() == k && e1_out.len() == k,
            "row buffers must span the {k} columns"
        );
        // Hoisted kernel: with bit-equal E1 factors across columns, E1 is
        // computed once per row — the same bits every column would have
        // produced — and the per-point residual is the Eq. 15 terms only.
        if let Some(u) = self.uniform {
            let x1 = u.wc * tc;
            let t1 = u.alpha * ((x1 + u.mem_seq) + u.t_io);
            let e1 = ((t1 * psys + x1 * dpc) + u.e_mem_seq) + u.e_io;
            e1_out.fill(e1);
            if degenerate(e1) {
                // Every cell shares this E1, so the scalar loop's first
                // error is the row's first column.
                return Err((
                    0,
                    ModelError::DegenerateBaseline {
                        e1: Joules::new(e1),
                    },
                ));
            }
            let (p, wcc, mem_par) = (&self.p[..k], &self.wcc[..k], &self.mem_par[..k]);
            let (t_net, e_mem_par, e_net) =
                (&self.t_net[..k], &self.e_mem_par[..k], &self.e_net[..k]);
            let ee_out = &mut ee_out[..k];
            for j in 0..k {
                let y1 = wcc[j] * tc;
                let tp = u.alpha * (((y1 + mem_par[j]) + t_net[j]) + u.t_io) / p[j];
                let ep = (((tp * p[j] * psys + y1 * dpc) + e_mem_par[j]) + e_net[j]) + u.e_io;
                let eef = (ep - e1) / e1;
                ee_out[j] = 1.0 / (1.0 + eef);
            }
            return Ok(());
        }
        let (p, alpha, wc, wcc) = (
            &self.p[..k],
            &self.alpha[..k],
            &self.wc[..k],
            &self.wcc[..k],
        );
        let (mem_seq, mem_par) = (&self.mem_seq[..k], &self.mem_par[..k]);
        let (t_io, t_net) = (&self.t_io[..k], &self.t_net[..k]);
        let (e_mem_seq, e_mem_par) = (&self.e_mem_seq[..k], &self.e_mem_par[..k]);
        let (e_net, e_io) = (&self.e_net[..k], &self.e_io[..k]);
        for j in 0..k {
            let c = Factors {
                alpha: alpha[j],
                wc: wc[j],
                wcc: wcc[j],
                mem_seq: mem_seq[j],
                mem_par: mem_par[j],
                t_io: t_io[j],
                t_net: t_net[j],
                e_mem_seq: e_mem_seq[j],
                e_mem_par: e_mem_par[j],
                e_net: e_net[j],
                e_io: e_io[j],
            };
            let v = fused(tc, dpc, psys, &c, p[j]);
            e1_out[j] = v.e1;
            ee_out[j] = v.ee;
        }
        first_degenerate(&e1_out[..k])
    }
}

/// A `(p, f)` grid (Figs. 5, 7, 9) with its column factors precomputed:
/// the application vector is derived once per column, and each row only
/// updates the two Eq. 20 scalars.
pub struct PfGrid<'a> {
    app: &'a dyn AppModel,
    base: &'a MachineParams,
    n: f64,
    ps: Vec<usize>,
    apps: Vec<AppParams>,
    psys: f64,
    cols: Columns,
}

impl<'a> PfGrid<'a> {
    /// Precompute the column factors for `ps` at workload `n`.
    ///
    /// # Panics
    /// Panics when any `p == 0` (as the scalar model would on first
    /// evaluation).
    #[must_use]
    pub fn new(app: &'a dyn AppModel, base: &'a MachineParams, n: f64, ps: &[usize]) -> Self {
        let apps: Vec<AppParams> = ps
            .iter()
            .map(|&p| {
                assert!(p > 0, "need at least one processor");
                app.app_params(n, p)
            })
            .collect();
        let mut cols = Columns::with_capacity(ps.len());
        for (a, &p) in apps.iter().zip(ps) {
            cols.push(base, a, p);
        }
        cols.seal();
        Self {
            app,
            base,
            n,
            ps: ps.to_vec(),
            apps,
            psys: base.p_sys_idle.raw(),
            cols,
        }
    }

    /// Number of columns (`ps.len()`).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.ps.len()
    }

    /// Evaluate one frequency row into caller-provided buffers.
    ///
    /// # Errors
    /// Returns the first degenerate cell's column index and model error
    /// (the scalar path's within-row first error).
    ///
    /// # Panics
    /// Panics when the buffers don't span the columns, or on an invalid
    /// frequency.
    pub fn eval_row_into(
        &self,
        f_hz: f64,
        ee_out: &mut [f64],
        e1_out: &mut [f64],
    ) -> Result<(), (usize, ModelError)> {
        let m = self.base.at_frequency(f_hz);
        self.cols
            .eval_row(m.tc.raw(), m.delta_pc.raw(), self.psys, ee_out, e1_out)
    }

    /// Evaluate one frequency row into a fresh `EE` vector.
    ///
    /// # Errors
    /// Returns the first degenerate cell's column index and model error.
    ///
    /// # Panics
    /// Panics on an invalid frequency.
    pub fn eval_row(&self, f_hz: f64) -> Result<Vec<f64>, (usize, ModelError)> {
        let k = self.cols();
        let mut ee = vec![0.0; k];
        let mut e1 = vec![0.0; k];
        self.eval_row_into(f_hz, &mut ee, &mut e1)?;
        Ok(ee)
    }

    /// Certify the whole `(p, f)` grid degenerate-free ahead of time,
    /// sharing the factored invariants: one [`E1Factors`] per column is
    /// evaluated against the hull of all frequencies, then against thin
    /// per-frequency boxes, then confirmed exactly — the same verdicts
    /// (and the same row-major first-error cell) as
    /// [`crate::interval::certify_pf_grid`], without re-deriving a full
    /// model enclosure per box.
    ///
    /// # Panics
    /// Panics when `fs` is empty or the grid has no columns.
    #[must_use]
    pub fn certify(&self, fs: &[f64]) -> GridCertification {
        assert!(!self.ps.is_empty() && !fs.is_empty(), "empty grid");
        let base_box = MachBox::from_params(self.base);
        let (hull_tc, hull_dpc) = frequency_terms(self.base, Interval::hull(fs));
        let mut cert = GridCertification {
            interval_cells: 0,
            exact_cells: 0,
            degenerate: None,
        };
        for (j, (&p, a)) in self.ps.iter().zip(&self.apps).enumerate() {
            let a_box = AppBox::of_model(self.app, Interval::point(self.n), p)
                .expect("point workload always has a box");
            let inv = E1Factors::of(&base_box, &a_box);
            if inv.baseline_certified(hull_tc, hull_dpc) {
                cert.interval_cells += fs.len();
                continue;
            }
            for (i, &f) in fs.iter().enumerate() {
                let (tc, dpc) = frequency_terms(self.base, Interval::point(f));
                if inv.baseline_certified(tc, dpc) {
                    cert.interval_cells += 1;
                    continue;
                }
                cert.exact_cells += 1;
                if let Err(source) = crate::model::ee(&self.base.at_frequency(f), a, p) {
                    let index = i * self.ps.len() + j;
                    if cert.degenerate.is_none_or(|(first, _)| index < first) {
                        cert.degenerate = Some((index, source));
                    }
                }
            }
        }
        cert
    }
}

/// A `(p, n)` grid (Figs. 6, 8) with the machine fixed: the scalar path
/// re-derives `mach.at_frequency(mach.f_hz)` per row, which is the same
/// machine every time — here it is computed once. The application vector
/// depends on both axes, so it stays per-cell (through the same fused
/// kernel).
pub struct PnGrid<'a> {
    app: &'a dyn AppModel,
    mach: MachineParams,
    tc: f64,
    dpc: f64,
    psys: f64,
    ps: Vec<usize>,
    p_f64: Vec<f64>,
}

impl<'a> PnGrid<'a> {
    /// Fix the machine (at its own frequency, mirroring the scalar row
    /// setup bit-for-bit) for `ps` columns.
    ///
    /// # Panics
    /// Panics when any `p == 0`.
    #[must_use]
    pub fn new(app: &'a dyn AppModel, mach: &MachineParams, ps: &[usize]) -> Self {
        let m = mach.at_frequency(mach.f_hz);
        for &p in ps {
            assert!(p > 0, "need at least one processor");
        }
        #[allow(clippy::cast_precision_loss)]
        let p_f64: Vec<f64> = ps.iter().map(|&p| p as f64).collect();
        Self {
            app,
            tc: m.tc.raw(),
            dpc: m.delta_pc.raw(),
            psys: m.p_sys_idle.raw(),
            mach: m,
            ps: ps.to_vec(),
            p_f64,
        }
    }

    /// Number of columns (`ps.len()`).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.ps.len()
    }

    /// The fixed machine rows evaluate against (the scalar path's
    /// `mach.at_frequency(mach.f_hz)`).
    #[must_use]
    pub fn machine(&self) -> &MachineParams {
        &self.mach
    }

    /// Evaluate one workload row into caller-provided buffers.
    ///
    /// # Errors
    /// Returns the first degenerate cell's column index and model error.
    ///
    /// # Panics
    /// Panics when the buffers don't span the columns.
    pub fn eval_row_into(
        &self,
        n: f64,
        ee_out: &mut [f64],
        e1_out: &mut [f64],
    ) -> Result<(), (usize, ModelError)> {
        let k = self.cols();
        assert!(
            ee_out.len() == k && e1_out.len() == k,
            "row buffers must span the {k} columns"
        );
        for (j, &p) in self.ps.iter().enumerate() {
            let a = self.app.app_params(n, p);
            let c = factors_of(&self.mach, &a);
            let v = fused(self.tc, self.dpc, self.psys, &c, self.p_f64[j]);
            e1_out[j] = v.e1;
            ee_out[j] = v.ee;
        }
        first_degenerate(&e1_out[..k])
    }

    /// Evaluate one workload row into a fresh `EE` vector.
    ///
    /// # Errors
    /// Returns the first degenerate cell's column index and model error.
    pub fn eval_row(&self, n: f64) -> Result<Vec<f64>, (usize, ModelError)> {
        let k = self.cols();
        let mut ee = vec![0.0; k];
        let mut e1 = vec![0.0; k];
        self.eval_row_into(n, &mut ee, &mut e1)?;
        Ok(ee)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{CgModel, EpModel, FtModel};
    use crate::model;

    fn mach() -> MachineParams {
        MachineParams::system_g(2.8e9)
    }

    #[test]
    fn point_eval_is_bit_identical_to_model() {
        let m = mach();
        let apps: Vec<(Box<dyn AppModel>, f64)> = vec![
            (Box::new(FtModel::system_g()), (1u64 << 20) as f64),
            (Box::new(EpModel::system_g()), 4e6),
            (Box::new(CgModel::system_g()), 75_000.0),
        ];
        for (app, n) in &apps {
            for p in [1usize, 4, 64, 1024] {
                let a = app.app_params(*n, p);
                let t = terms(&m, &a, p);
                assert_eq!(t.t1.raw().to_bits(), model::t1(&m, &a).raw().to_bits());
                assert_eq!(t.tp.raw().to_bits(), model::tp(&m, &a, p).raw().to_bits());
                assert_eq!(t.e1.raw().to_bits(), model::e1(&m, &a).raw().to_bits());
                assert_eq!(t.ep.raw().to_bits(), model::ep(&m, &a, p).raw().to_bits());
                let ee = ee_point(&m, &a, p).expect("clean point");
                let oracle = model::ee(&m, &a, p).expect("clean point");
                assert_eq!(ee.to_bits(), oracle.to_bits());
                let eef = eef_point(&m, &a, p).expect("clean point");
                let oracle = model::eef(&m, &a, p).expect("clean point");
                assert_eq!(eef.to_bits(), oracle.to_bits());
            }
        }
    }

    #[test]
    fn pf_rows_match_the_scalar_loop() {
        let m = mach();
        let ft = FtModel::system_g();
        let n = (1u64 << 20) as f64;
        let ps = [1usize, 3, 7, 16, 100, 1024];
        let grid = PfGrid::new(&ft, &m, n, &ps);
        for f in [1.6e9, 2.2e9, 2.8e9] {
            let row = grid.eval_row(f).expect("clean row");
            let mf = m.at_frequency(f);
            for (j, &p) in ps.iter().enumerate() {
                let oracle = model::ee(&mf, &ft.app_params(n, p), p).expect("clean point");
                assert_eq!(row[j].to_bits(), oracle.to_bits(), "p={p} f={f}");
            }
        }
    }

    #[test]
    fn pn_rows_match_the_scalar_loop() {
        let m = mach();
        let cg = CgModel::system_g();
        let ps = [4usize, 16, 64];
        let grid = PnGrid::new(&cg, &m, &ps);
        for n in [75_000.0, 150_000.0, 600_000.0] {
            let row = grid.eval_row(n).expect("clean row");
            let mr = m.at_frequency(m.f_hz);
            for (j, &p) in ps.iter().enumerate() {
                let oracle = model::ee(&mr, &cg.app_params(n, p), p).expect("clean point");
                assert_eq!(row[j].to_bits(), oracle.to_bits(), "p={p} n={n}");
            }
        }
    }

    #[test]
    fn degenerate_cells_surface_the_scalar_error() {
        let m = mach();
        struct Thresh;
        impl AppModel for Thresh {
            fn name(&self) -> &'static str {
                "thresh"
            }
            fn app_params(&self, n: f64, _p: usize) -> AppParams {
                if n < 1e6 {
                    AppParams::ideal(0.0)
                } else {
                    AppParams::ideal(n)
                }
            }
        }
        let grid = PnGrid::new(&Thresh, &m, &[4, 16]);
        let (j, err) = grid.eval_row(1e3).expect_err("zero workload is degenerate");
        assert_eq!(j, 0);
        assert_eq!(
            err,
            ModelError::DegenerateBaseline {
                e1: simcluster::units::Joules::ZERO
            }
        );
        assert!(grid.eval_row(1e7).is_ok());
    }

    #[test]
    fn pf_certify_matches_the_interval_pass() {
        let m = mach();
        let ft = FtModel::system_g();
        let n = (1u64 << 20) as f64;
        let ps = [1usize, 4, 16, 64, 256, 1024];
        let fs = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
        let grid = PfGrid::new(&ft, &m, n, &ps);
        let shared = grid.certify(&fs);
        let standalone = crate::interval::certify_pf_grid(&ft, &m, n, &ps, &fs);
        assert_eq!(shared, standalone);
        assert!(shared.is_clean());
        assert_eq!(shared.exact_cells, 0);
    }
}
