//! Scalability analysis: the paper's §V.B decision-making use cases.
//!
//! * EE surfaces over `(p, f)` and `(p, n)` — the data behind Figs. 5–9.
//! * The iso-energy-efficiency *contour*: the workload `n(p)` that holds
//!   `EE` at a target as the system scales (the energy analog of Grama's
//!   isoefficiency function).
//! * A DVFS advisor: the frequency that maximizes `EE` at a given `(n, p)`.

use crate::apps::AppModel;
use crate::model;
use crate::params::{AppParams, MachineParams};

/// `EE` as a plain value; the surfaces and sweeps below only evaluate
/// physically sensible parameter points, where the baseline energy is
/// strictly positive.
///
/// Every call bumps the `isoee.model_evals` counter (one relaxed atomic
/// add), so sweep throughput shows up in the obs metrics snapshot.
fn ee_value(mach: &MachineParams, a: &AppParams, p: usize) -> f64 {
    model_evals_counter().inc();
    model::ee(mach, a, p).expect("surface point has a positive baseline energy")
}

/// Process-wide count of EE model evaluations performed by the sweeps.
fn model_evals_counter() -> &'static std::sync::Arc<obs::Counter> {
    static EVALS: std::sync::OnceLock<std::sync::Arc<obs::Counter>> = std::sync::OnceLock::new();
    EVALS.get_or_init(|| obs::global().counter("isoee.model_evals"))
}

/// A rectangular sweep of `EE` values: `values[i][j]` is `EE` at
/// `ys[i]` × `xs[j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Surface {
    /// Row axis (frequency in Hz, or workload n).
    pub ys: Vec<f64>,
    /// Column axis (processor counts).
    pub xs: Vec<f64>,
    /// `EE` values, `values[y][x]`.
    pub values: Vec<Vec<f64>>,
}

impl Surface {
    /// Look up the value at row `i`, column `j`.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.values[i][j]
    }

    /// Minimum EE in the surface.
    pub fn min(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum EE in the surface.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// `EE(p, f)` at fixed workload `n` (Figs. 5, 7, 9).
///
/// `base` supplies the frequency-independent machine parameters; each row
/// re-evaluates it at one of `fs` via Eq. 20.
pub fn ee_surface_pf(
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    ps: &[usize],
    fs: &[f64],
) -> Surface {
    let values = fs
        .iter()
        .map(|&f| {
            let mach = base.at_frequency(f);
            ps.iter()
                .map(|&p| ee_value(&mach, &app.app_params(n, p), p))
                .collect()
        })
        .collect();
    Surface {
        ys: fs.to_vec(),
        xs: ps.iter().map(|&p| p as f64).collect(),
        values,
    }
}

/// `EE(p, n)` at the fixed frequency of `mach` (Figs. 6, 8).
pub fn ee_surface_pn(
    app: &dyn AppModel,
    mach: &MachineParams,
    ps: &[usize],
    ns: &[f64],
) -> Surface {
    let values = ns
        .iter()
        .map(|&n| {
            ps.iter()
                .map(|&p| ee_value(&mach.at_frequency(mach.f_hz), &app.app_params(n, p), p))
                .collect()
        })
        .collect();
    Surface {
        ys: ns.to_vec(),
        xs: ps.iter().map(|&p| p as f64).collect(),
        values,
    }
}

/// The iso-energy-efficiency workload: the smallest `n ∈ [n_lo, n_hi]` with
/// `EE(n, p) ≥ target`, found by bisection (EE is monotone non-decreasing
/// in `n` for overhead-dominated applications like FT and CG).
///
/// Returns `None` if even `n_hi` cannot reach the target.
pub fn iso_ee_workload(
    app: &dyn AppModel,
    mach: &MachineParams,
    p: usize,
    target: f64,
    n_lo: f64,
    n_hi: f64,
) -> Option<f64> {
    assert!(n_lo > 1.0 && n_hi > n_lo, "invalid bracket");
    assert!(target > 0.0 && target < 1.0, "target EE must be in (0,1)");
    let ee_at = |n: f64| ee_value(mach, &app.app_params(n, p), p);
    if ee_at(n_hi) < target {
        return None;
    }
    if ee_at(n_lo) >= target {
        return Some(n_lo);
    }
    let (mut lo, mut hi) = (n_lo, n_hi);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if ee_at(mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) / hi < 1e-9 {
            break;
        }
    }
    Some(hi)
}

/// The DVFS state in `freqs` maximizing `EE` at `(n, p)`; returns
/// `(best_f, best_ee)`.
pub fn best_frequency(
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    p: usize,
    freqs: &[f64],
) -> (f64, f64) {
    assert!(!freqs.is_empty(), "need at least one frequency");
    let a = app.app_params(n, p);
    freqs
        .iter()
        .map(|&f| (f, ee_value(&base.at_frequency(f), &a, p)))
        .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite EE"))
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{CgModel, EpModel, FtModel};

    fn mach() -> MachineParams {
        MachineParams::system_g(2.8e9)
    }

    const DVFS: [f64; 4] = [1.6e9, 2.0e9, 2.4e9, 2.8e9];

    #[test]
    fn ft_surface_shape_matches_fig5() {
        let ft = FtModel::system_g();
        let ps = [1usize, 4, 16, 64, 256, 1024];
        let s = ee_surface_pf(&ft, &mach(), (1u64 << 20) as f64, &ps, &DVFS);
        // Declines along p at every frequency (small cache ripple allowed).
        for row in &s.values {
            for w in row.windows(2) {
                assert!(w[1] <= w[0] + 0.01, "EE_FT must decline with p: {row:?}");
            }
            assert!(
                row[0] - row[ps.len() - 1] > 0.25,
                "collapse by p=1024: {row:?}"
            );
        }
        // Nearly flat along f at every p.
        for j in 0..ps.len() {
            let col: Vec<f64> = (0..DVFS.len()).map(|i| s.at(i, j)).collect();
            let spread = col.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - col.iter().copied().fold(f64::INFINITY, f64::min);
            assert!(spread < 0.15, "EE_FT spread over f too large: {col:?}");
        }
    }

    #[test]
    fn ep_surface_is_flat_near_one() {
        let ep = EpModel::system_g();
        let s = ee_surface_pf(&ep, &mach(), 4e6, &[1, 8, 64, 128], &DVFS);
        assert!(
            s.min() > 0.97,
            "Fig. 7: EE_EP ≈ 1 everywhere, min {}",
            s.min()
        );
        assert!(s.max() <= 1.0 + 1e-12);
    }

    #[test]
    fn cg_surface_rises_with_f() {
        let cg = CgModel::system_g();
        let ps = [4usize, 16, 64];
        let s = ee_surface_pf(&cg, &mach(), 75_000.0, &ps, &DVFS);
        for (j, &p) in ps.iter().enumerate() {
            assert!(
                s.at(DVFS.len() - 1, j) > s.at(0, j),
                "Fig. 9: EE_CG must rise with f at p={p}",
            );
        }
    }

    #[test]
    fn pn_surfaces_rise_with_n() {
        let m = mach();
        let ns = [5e5, 2e6, 8e6, 3.2e7];
        let ft = FtModel::system_g();
        let s = ee_surface_pn(&ft, &m, &[64], &ns);
        for i in 1..ns.len() {
            assert!(
                s.at(i, 0) >= s.at(i - 1, 0) - 1e-9,
                "Fig. 6: EE_FT must rise with n"
            );
        }
    }

    #[test]
    fn iso_ee_contour_grows_with_p() {
        // The iso-energy-efficiency function: holding EE = 0.7 as p grows
        // requires growing n (and how fast it grows is the scalability
        // metric, as in performance isoefficiency).
        let ft = FtModel::system_g();
        let m = mach();
        let mut prev = 0.0;
        for p in [32usize, 128, 512] {
            let n = iso_ee_workload(&ft, &m, p, 0.7, 1e3, 1e12).expect("target reachable");
            assert!(n > prev, "n({p}) = {n} must grow");
            prev = n;
        }
    }

    #[test]
    fn iso_ee_returns_none_when_unreachable() {
        let ft = FtModel::system_g();
        let m = mach();
        // EE = 0.999 at p=1024 requires astronomically large n.
        let r = iso_ee_workload(&ft, &m, 1024, 0.999, 1e4, 1e7);
        assert!(r.is_none());
    }

    #[test]
    fn best_frequency_for_cg_is_the_top_state() {
        let cg = CgModel::system_g();
        let (f, ee) = best_frequency(&cg, &mach(), 75_000.0, 64, &DVFS);
        assert_eq!(f, 2.8e9, "Fig. 9: scale frequency up for CG");
        assert!(ee > 0.0);
    }

    #[test]
    fn bisection_result_actually_achieves_target() {
        let cg = CgModel::system_g();
        let m = mach();
        let target = 0.95;
        let n = iso_ee_workload(&cg, &m, 64, target, 1e3, 1e9).expect("reachable");
        let ee = ee_value(&m, &cg.app_params(n, 64), 64);
        assert!(ee >= target - 1e-6, "EE({n}) = {ee} < {target}");
        // And just below n the target fails (minimality up to tolerance).
        let ee_below = ee_value(&m, &cg.app_params(n * 0.98, 64), 64);
        assert!(ee_below <= target + 1e-3);
    }
}
