//! Scalability analysis: the paper's §V.B decision-making use cases.
//!
//! * EE surfaces over `(p, f)` and `(p, n)` — the data behind Figs. 5–9.
//! * The iso-energy-efficiency *contour*: the workload `n(p)` that holds
//!   `EE` at a target as the system scales (the energy analog of Grama's
//!   isoefficiency function).
//! * A DVFS advisor: the frequency that maximizes `EE` at a given `(n, p)`.
//!
//! ## Parallel evaluation
//!
//! Surfaces, contours and the advisor fan their independent evaluation
//! points out over the [`pool`] work-stealing thread pool (surface rows,
//! per-`p` bisections, per-frequency advisor probes). Results are reduced
//! in index order, so parallel output is **bit-identical** to the
//! sequential path at any `POOL_THREADS` — `tests/parallel_equivalence.rs`
//! enforces that contract. The `*_with` variants take an explicit
//! [`PoolConfig`]; the plain functions use the process-wide
//! [`pool::global`] config.
//!
//! ## Degenerate points
//!
//! A parameter point with a non-positive or non-finite sequential baseline
//! energy (`model::ee`'s [`ModelError::DegenerateBaseline`]) no longer
//! aborts a sweep: every sweep entry point returns `Result`, carrying the
//! *first* degenerate evaluation in the sweep's deterministic index order
//! as a [`SweepError`].
//!
//! The scalar surface paths and the advisor (in both modes) *pre-certify*
//! their grids with the interval abstract interpreter
//! ([`crate::interval`]) before any pool task is spawned: a clean grid is
//! usually proven degenerate-free with one interval evaluation per
//! column, and a degenerate grid is rejected up front with exactly the
//! `SweepError` the dynamic sweep would have produced (same index, same
//! error — the pre-pass confirms undecided cells with the exact model,
//! outside the `isoee.model_evals` counter). The batched surface paths
//! instead scan each row's `E1` column after its branch-free evaluation —
//! the scan is as cheap as the evaluation itself and yields the identical
//! first `SweepError`, so a per-sweep interval pass would be pure
//! overhead there; [`crate::batch::PfGrid::certify`] still offers the
//! shared-invariant certification to callers who want a grid proven
//! clean *without* evaluating it.
//!
//! ## Batch kernel routing
//!
//! All sweep entry points evaluate through the batched columnar kernel
//! ([`crate::batch`]): column-invariant Eq. 13/15 factors are derived once
//! per column and each pool task evaluates a whole row into flat `f64`
//! buffers. The kernel is pinned **bit-identical** to the scalar model
//! (`tests/batch_equivalence.rs`), so routing through it changes no
//! output, only throughput. The scalar path is retained as the
//! differential-testing oracle: set the `ISOEE_SCALAR_SWEEP` environment
//! variable (any non-empty value other than `0`) to force every sweep
//! through per-point [`crate::model`] calls, or call the public
//! `*_scalar_with` variants directly (tests and benches prefer those —
//! no env-var races).

use crate::apps::AppModel;
use crate::model::{self, ModelError};
use crate::params::{AppParams, MachineParams};
pub use pool::PoolConfig;

/// Whether the `ISOEE_SCALAR_SWEEP` env var forces the scalar oracle.
/// Read per entry-point call, so a test can flip it between sweeps.
pub(crate) fn scalar_sweep_forced() -> bool {
    std::env::var("ISOEE_SCALAR_SWEEP").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A sweep hit a parameter point the ratio model cannot evaluate.
///
/// `index` is the flat position of the first failing evaluation in the
/// sweep's deterministic order (row-major for surfaces, axis order for
/// contours and the advisor) — the same index at any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepError {
    /// Flat index of the first degenerate evaluation.
    pub index: usize,
    /// The model error at that point.
    pub source: ModelError,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep point {} is degenerate: {}",
            self.index, self.source
        )
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// `EE` with the degenerate-baseline case carried out as an error instead
/// of a panic, so one bad point cannot abort a whole parallel sweep.
///
/// Every call bumps the `isoee.model_evals` counter (one relaxed atomic
/// add), so sweep throughput shows up in the obs metrics snapshot.
fn ee_checked(mach: &MachineParams, a: &AppParams, p: usize) -> Result<f64, ModelError> {
    model_evals_counter().inc();
    model::ee(mach, a, p)
}

/// Process-wide count of EE model evaluations performed by the sweeps.
fn model_evals_counter() -> &'static std::sync::Arc<obs::Counter> {
    static EVALS: std::sync::OnceLock<std::sync::Arc<obs::Counter>> = std::sync::OnceLock::new();
    EVALS.get_or_init(|| obs::global().counter("isoee.model_evals"))
}

/// Per-point EE evaluation latency, amortized: each surface row takes one
/// `Instant` pair and records `row_elapsed / cols` once per column, so the
/// ~50ns model evaluations are never individually timed.
fn eval_latency_hist() -> &'static std::sync::Arc<obs::LogHistogram> {
    static HIST: std::sync::OnceLock<std::sync::Arc<obs::LogHistogram>> =
        std::sync::OnceLock::new();
    HIST.get_or_init(|| obs::global().log_histogram("isoee.eval_latency_s", "s"))
}

static EVAL_TIMING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Enable or disable per-point eval-latency timing for the surface sweeps
/// (`isoee.eval_latency_s`). Returns the previous setting. Timing is on by
/// default; the sweep bench flips it off to measure instrumentation overhead.
pub fn set_eval_timing(enabled: bool) -> bool {
    EVAL_TIMING.swap(enabled, std::sync::atomic::Ordering::Relaxed)
}

fn eval_timing_enabled() -> bool {
    EVAL_TIMING.load(std::sync::atomic::Ordering::Relaxed)
}

/// Run one surface row, recording amortized per-point latency when timing
/// is enabled.
fn timed_row<T>(cols: usize, row: impl FnOnce() -> T) -> T {
    if cols == 0 || !eval_timing_enabled() {
        return row();
    }
    let start = std::time::Instant::now();
    let out = row();
    eval_latency_hist().record_n(start.elapsed().as_secs_f64() / cols as f64, cols as u64);
    out
}

/// A rectangular sweep of `EE` values: `values[i][j]` is `EE` at
/// `ys[i]` × `xs[j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Surface {
    /// Row axis (frequency in Hz, or workload n).
    pub ys: Vec<f64>,
    /// Column axis (processor counts).
    pub xs: Vec<f64>,
    /// `EE` values, `values[y][x]`.
    pub values: Vec<Vec<f64>>,
}

impl Surface {
    /// Look up the value at row `i`, column `j`.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.values[i][j]
    }

    /// Minimum EE in the surface.
    pub fn min(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum EE in the surface.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Assemble a surface from parallel-evaluated rows, reducing in row-major
/// index order: the first degenerate cell by `(row, col)` wins, at any
/// thread count.
fn collect_rows(
    ys: &[f64],
    xs: Vec<f64>,
    rows: Vec<Result<Vec<f64>, (usize, ModelError)>>,
    cols: usize,
) -> Result<Surface, SweepError> {
    let mut values = Vec::with_capacity(rows.len());
    for (i, row) in rows.into_iter().enumerate() {
        match row {
            Ok(v) => values.push(v),
            Err((j, source)) => {
                return Err(SweepError {
                    index: i * cols + j,
                    source,
                })
            }
        }
    }
    Ok(Surface {
        ys: ys.to_vec(),
        xs,
        values,
    })
}

/// `EE(p, f)` at fixed workload `n` (Figs. 5, 7, 9), on the global pool.
///
/// `base` supplies the frequency-independent machine parameters; each row
/// re-evaluates it at one of `fs` via Eq. 20.
///
/// # Errors
/// Returns the first degenerate evaluation in row-major order as a
/// [`SweepError`].
pub fn ee_surface_pf(
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    ps: &[usize],
    fs: &[f64],
) -> Result<Surface, SweepError> {
    ee_surface_pf_with(pool::global(), app, base, n, ps, fs)
}

/// [`ee_surface_pf`] on an explicit pool config; rows (one per frequency)
/// evaluate in parallel through the batch kernel (or the scalar oracle
/// when `ISOEE_SCALAR_SWEEP` is set).
///
/// # Errors
/// Returns the first degenerate evaluation in row-major order as a
/// [`SweepError`].
pub fn ee_surface_pf_with(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    ps: &[usize],
    fs: &[f64],
) -> Result<Surface, SweepError> {
    if scalar_sweep_forced() {
        ee_surface_pf_scalar_with(cfg, app, base, n, ps, fs)
    } else {
        ee_surface_pf_batch_with(cfg, app, base, n, ps, fs)
    }
}

/// The scalar differential oracle for [`ee_surface_pf_with`]: per-point
/// [`crate::model::ee`] calls, no factoring. Kept verbatim so the batch
/// kernel always has an independently-derived result to be compared
/// against (`tests/batch_equivalence.rs` pins them bit-identical).
///
/// # Errors
/// Returns the first degenerate evaluation in row-major order as a
/// [`SweepError`].
pub fn ee_surface_pf_scalar_with(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    ps: &[usize],
    fs: &[f64],
) -> Result<Surface, SweepError> {
    if !ps.is_empty() && !fs.is_empty() {
        if let Some((index, source)) =
            crate::interval::certify_pf_grid(app, base, n, ps, fs).degenerate
        {
            return Err(SweepError { index, source });
        }
    }
    let rows = pool::parallel_map(cfg, fs, |&f| {
        timed_row(ps.len(), || {
            let mach = base.at_frequency(f);
            ps.iter()
                .enumerate()
                .map(|(j, &p)| ee_checked(&mach, &app.app_params(n, p), p).map_err(|e| (j, e)))
                .collect()
        })
    });
    collect_rows(fs, ps.iter().map(|&p| p as f64).collect(), rows, ps.len())
}

/// Batch-kernel body of [`ee_surface_pf_with`]: column factors once, one
/// pool task per frequency row.
fn ee_surface_pf_batch_with(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    ps: &[usize],
    fs: &[f64],
) -> Result<Surface, SweepError> {
    let grid = crate::batch::PfGrid::new(app, base, n, ps);
    let rows = pool::parallel_map(cfg, fs, |&f| {
        timed_row(ps.len(), || {
            model_evals_counter().add(ps.len() as u64);
            grid.eval_row(f)
        })
    });
    collect_rows(fs, ps.iter().map(|&p| p as f64).collect(), rows, ps.len())
}

/// `EE(p, n)` at the fixed frequency of `mach` (Figs. 6, 8), on the global
/// pool.
///
/// # Errors
/// Returns the first degenerate evaluation in row-major order as a
/// [`SweepError`].
pub fn ee_surface_pn(
    app: &dyn AppModel,
    mach: &MachineParams,
    ps: &[usize],
    ns: &[f64],
) -> Result<Surface, SweepError> {
    ee_surface_pn_with(pool::global(), app, mach, ps, ns)
}

/// [`ee_surface_pn`] on an explicit pool config; rows (one per workload)
/// evaluate in parallel through the batch kernel (or the scalar oracle
/// when `ISOEE_SCALAR_SWEEP` is set).
///
/// # Errors
/// Returns the first degenerate evaluation in row-major order as a
/// [`SweepError`].
pub fn ee_surface_pn_with(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    mach: &MachineParams,
    ps: &[usize],
    ns: &[f64],
) -> Result<Surface, SweepError> {
    if scalar_sweep_forced() {
        ee_surface_pn_scalar_with(cfg, app, mach, ps, ns)
    } else {
        ee_surface_pn_batch_with(cfg, app, mach, ps, ns)
    }
}

/// The scalar differential oracle for [`ee_surface_pn_with`] (see
/// [`ee_surface_pf_scalar_with`]).
///
/// # Errors
/// Returns the first degenerate evaluation in row-major order as a
/// [`SweepError`].
pub fn ee_surface_pn_scalar_with(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    mach: &MachineParams,
    ps: &[usize],
    ns: &[f64],
) -> Result<Surface, SweepError> {
    if !ps.is_empty() && !ns.is_empty() {
        if let Some((index, source)) =
            crate::interval::certify_pn_grid(app, mach, ps, ns).degenerate
        {
            return Err(SweepError { index, source });
        }
    }
    let rows = pool::parallel_map(cfg, ns, |&n| {
        timed_row(ps.len(), || {
            let m = mach.at_frequency(mach.f_hz);
            ps.iter()
                .enumerate()
                .map(|(j, &p)| ee_checked(&m, &app.app_params(n, p), p).map_err(|e| (j, e)))
                .collect()
        })
    });
    collect_rows(ns, ps.iter().map(|&p| p as f64).collect(), rows, ps.len())
}

/// Batch-kernel body of [`ee_surface_pn_with`]: the machine is fixed once
/// (the scalar path re-derives `at_frequency(f_hz)` per row — the same
/// machine every time), one pool task per workload row.
fn ee_surface_pn_batch_with(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    mach: &MachineParams,
    ps: &[usize],
    ns: &[f64],
) -> Result<Surface, SweepError> {
    let grid = crate::batch::PnGrid::new(app, mach, ps);
    let rows = pool::parallel_map(cfg, ns, |&n| {
        timed_row(ps.len(), || {
            model_evals_counter().add(ps.len() as u64);
            grid.eval_row(n)
        })
    });
    collect_rows(ns, ps.iter().map(|&p| p as f64).collect(), rows, ps.len())
}

/// The iso-energy-efficiency workload: the smallest `n ∈ [n_lo, n_hi]` with
/// `EE(n, p) ≥ target`, found by bisection (EE is monotone non-decreasing
/// in `n` for overhead-dominated applications like FT and CG).
///
/// Returns `Ok(None)` if even `n_hi` cannot reach the target.
///
/// # Errors
/// Returns [`ModelError::DegenerateBaseline`] if the bisection probes a
/// degenerate parameter point (e.g. a bracket reaching a zero workload).
///
/// # Panics
/// Panics on an invalid bracket or a target outside `(0, 1)`.
pub fn iso_ee_workload(
    app: &dyn AppModel,
    mach: &MachineParams,
    p: usize,
    target: f64,
    n_lo: f64,
    n_hi: f64,
) -> Result<Option<f64>, ModelError> {
    iso_ee_workload_impl(app, mach, p, target, n_lo, n_hi, scalar_sweep_forced())
}

/// [`iso_ee_workload`] with the kernel choice explicit.
#[allow(clippy::too_many_arguments)]
fn iso_ee_workload_impl(
    app: &dyn AppModel,
    mach: &MachineParams,
    p: usize,
    target: f64,
    n_lo: f64,
    n_hi: f64,
    scalar: bool,
) -> Result<Option<f64>, ModelError> {
    assert!(n_lo > 1.0 && n_hi > n_lo, "invalid bracket");
    assert!(target > 0.0 && target < 1.0, "target EE must be in (0,1)");
    let ee_at = |n: f64| {
        let a = app.app_params(n, p);
        if scalar {
            ee_checked(mach, &a, p)
        } else {
            model_evals_counter().inc();
            crate::batch::ee_point(mach, &a, p)
        }
    };
    if ee_at(n_hi)? < target {
        return Ok(None);
    }
    if ee_at(n_lo)? >= target {
        return Ok(Some(n_lo));
    }
    let (mut lo, mut hi) = (n_lo, n_hi);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if ee_at(mid)? >= target {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) / hi < 1e-9 {
            break;
        }
    }
    Ok(Some(hi))
}

/// The iso-EE contour across parallelism levels, on the global pool:
/// `result[k]` is [`iso_ee_workload`] at `ps[k]` (`None` where the target
/// is unreachable below `n_hi`).
///
/// # Errors
/// Returns the first degenerate bisection (by position in `ps`) as a
/// [`SweepError`].
///
/// # Panics
/// Panics on an invalid bracket or a target outside `(0, 1)`.
pub fn iso_ee_contour(
    app: &dyn AppModel,
    mach: &MachineParams,
    ps: &[usize],
    target: f64,
    n_lo: f64,
    n_hi: f64,
) -> Result<Vec<Option<f64>>, SweepError> {
    iso_ee_contour_with(pool::global(), app, mach, ps, target, n_lo, n_hi)
}

/// [`iso_ee_contour`] on an explicit pool config; the per-`p` bisections
/// run in parallel (each bisection itself is inherently sequential).
///
/// # Errors
/// Returns the first degenerate bisection (by position in `ps`) as a
/// [`SweepError`].
///
/// # Panics
/// Panics on an invalid bracket or a target outside `(0, 1)`.
pub fn iso_ee_contour_with(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    mach: &MachineParams,
    ps: &[usize],
    target: f64,
    n_lo: f64,
    n_hi: f64,
) -> Result<Vec<Option<f64>>, SweepError> {
    iso_ee_contour_impl(
        cfg,
        app,
        mach,
        ps,
        target,
        n_lo,
        n_hi,
        scalar_sweep_forced(),
    )
}

/// The scalar differential oracle for [`iso_ee_contour_with`]: every
/// bisection probe goes through per-point [`crate::model::ee`].
///
/// # Errors
/// Returns the first degenerate bisection (by position in `ps`) as a
/// [`SweepError`].
///
/// # Panics
/// Panics on an invalid bracket or a target outside `(0, 1)`.
#[allow(clippy::too_many_arguments)]
pub fn iso_ee_contour_scalar_with(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    mach: &MachineParams,
    ps: &[usize],
    target: f64,
    n_lo: f64,
    n_hi: f64,
) -> Result<Vec<Option<f64>>, SweepError> {
    iso_ee_contour_impl(cfg, app, mach, ps, target, n_lo, n_hi, true)
}

#[allow(clippy::too_many_arguments)]
fn iso_ee_contour_impl(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    mach: &MachineParams,
    ps: &[usize],
    target: f64,
    n_lo: f64,
    n_hi: f64,
    scalar: bool,
) -> Result<Vec<Option<f64>>, SweepError> {
    let results = pool::parallel_map(cfg, ps, |&p| {
        iso_ee_workload_impl(app, mach, p, target, n_lo, n_hi, scalar)
    });
    results
        .into_iter()
        .enumerate()
        .map(|(index, r)| r.map_err(|source| SweepError { index, source }))
        .collect()
}

/// The DVFS state in `freqs` maximizing `EE` at `(n, p)`, on the global
/// pool; returns `(best_f, best_ee)`.
///
/// # Errors
/// Returns the first degenerate frequency (by position in `freqs`) as a
/// [`SweepError`].
///
/// # Panics
/// Panics when `freqs` is empty or an `EE` value is not comparable.
pub fn best_frequency(
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    p: usize,
    freqs: &[f64],
) -> Result<(f64, f64), SweepError> {
    best_frequency_with(pool::global(), app, base, n, p, freqs)
}

/// [`best_frequency`] on an explicit pool config; the per-frequency
/// probes run in parallel and the argmax reduces in index order (ties keep
/// the last maximal frequency, matching the sequential `max_by`).
///
/// # Errors
/// Returns the first degenerate frequency (by position in `freqs`) as a
/// [`SweepError`].
///
/// # Panics
/// Panics when `freqs` is empty or an `EE` value is not comparable.
pub fn best_frequency_with(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    p: usize,
    freqs: &[f64],
) -> Result<(f64, f64), SweepError> {
    best_frequency_impl(cfg, app, base, n, p, freqs, scalar_sweep_forced())
}

/// The scalar differential oracle for [`best_frequency_with`]: every
/// probe goes through per-point [`crate::model::ee`].
///
/// # Errors
/// Returns the first degenerate frequency (by position in `freqs`) as a
/// [`SweepError`].
///
/// # Panics
/// Panics when `freqs` is empty or an `EE` value is not comparable.
pub fn best_frequency_scalar_with(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    p: usize,
    freqs: &[f64],
) -> Result<(f64, f64), SweepError> {
    best_frequency_impl(cfg, app, base, n, p, freqs, true)
}

#[allow(clippy::too_many_arguments)]
fn best_frequency_impl(
    cfg: &PoolConfig,
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    p: usize,
    freqs: &[f64],
    scalar: bool,
) -> Result<(f64, f64), SweepError> {
    assert!(!freqs.is_empty(), "need at least one frequency");
    if let Some((index, source)) =
        crate::interval::certify_frequency_probes(app, base, n, p, freqs).degenerate
    {
        return Err(SweepError { index, source });
    }
    let a = app.app_params(n, p);
    let ees = pool::parallel_map(cfg, freqs, |&f| {
        let m = base.at_frequency(f);
        if scalar {
            ee_checked(&m, &a, p)
        } else {
            model_evals_counter().inc();
            crate::batch::ee_point(&m, &a, p)
        }
    });
    let mut probed = Vec::with_capacity(freqs.len());
    for (index, (f, ee)) in freqs.iter().zip(ees).enumerate() {
        probed.push((*f, ee.map_err(|source| SweepError { index, source })?));
    }
    Ok(probed
        .into_iter()
        .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite EE"))
        .expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{CgModel, EpModel, FtModel};

    fn mach() -> MachineParams {
        MachineParams::system_g(2.8e9)
    }

    fn ee_value(m: &MachineParams, a: &AppParams, p: usize) -> f64 {
        ee_checked(m, a, p).expect("surface point has a positive baseline energy")
    }

    const DVFS: [f64; 4] = [1.6e9, 2.0e9, 2.4e9, 2.8e9];

    #[test]
    fn ft_surface_shape_matches_fig5() {
        let ft = FtModel::system_g();
        let ps = [1usize, 4, 16, 64, 256, 1024];
        let s = ee_surface_pf(&ft, &mach(), (1u64 << 20) as f64, &ps, &DVFS).expect("sweep ok");
        // Declines along p at every frequency (small cache ripple allowed).
        for row in &s.values {
            for w in row.windows(2) {
                assert!(w[1] <= w[0] + 0.01, "EE_FT must decline with p: {row:?}");
            }
            assert!(
                row[0] - row[ps.len() - 1] > 0.25,
                "collapse by p=1024: {row:?}"
            );
        }
        // Nearly flat along f at every p.
        for j in 0..ps.len() {
            let col: Vec<f64> = (0..DVFS.len()).map(|i| s.at(i, j)).collect();
            let spread = col.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - col.iter().copied().fold(f64::INFINITY, f64::min);
            assert!(spread < 0.15, "EE_FT spread over f too large: {col:?}");
        }
    }

    #[test]
    fn ep_surface_is_flat_near_one() {
        let ep = EpModel::system_g();
        let s = ee_surface_pf(&ep, &mach(), 4e6, &[1, 8, 64, 128], &DVFS).expect("sweep ok");
        assert!(
            s.min() > 0.97,
            "Fig. 7: EE_EP ≈ 1 everywhere, min {}",
            s.min()
        );
        assert!(s.max() <= 1.0 + 1e-12);
    }

    #[test]
    fn cg_surface_rises_with_f() {
        let cg = CgModel::system_g();
        let ps = [4usize, 16, 64];
        let s = ee_surface_pf(&cg, &mach(), 75_000.0, &ps, &DVFS).expect("sweep ok");
        for (j, &p) in ps.iter().enumerate() {
            assert!(
                s.at(DVFS.len() - 1, j) > s.at(0, j),
                "Fig. 9: EE_CG must rise with f at p={p}",
            );
        }
    }

    #[test]
    fn pn_surfaces_rise_with_n() {
        let m = mach();
        let ns = [5e5, 2e6, 8e6, 3.2e7];
        let ft = FtModel::system_g();
        let s = ee_surface_pn(&ft, &m, &[64], &ns).expect("sweep ok");
        for i in 1..ns.len() {
            assert!(
                s.at(i, 0) >= s.at(i - 1, 0) - 1e-9,
                "Fig. 6: EE_FT must rise with n"
            );
        }
    }

    #[test]
    fn iso_ee_contour_grows_with_p() {
        // The iso-energy-efficiency function: holding EE = 0.7 as p grows
        // requires growing n (and how fast it grows is the scalability
        // metric, as in performance isoefficiency).
        let ft = FtModel::system_g();
        let m = mach();
        let ps = [32usize, 128, 512];
        let ns = iso_ee_contour(&ft, &m, &ps, 0.7, 1e3, 1e12).expect("no degenerate points");
        let mut prev = 0.0;
        for (p, n) in ps.iter().zip(ns) {
            let n = n.expect("target reachable");
            assert!(n > prev, "n({p}) = {n} must grow");
            prev = n;
        }
    }

    #[test]
    fn iso_ee_returns_none_when_unreachable() {
        let ft = FtModel::system_g();
        let m = mach();
        // EE = 0.999 at p=1024 requires astronomically large n.
        let r = iso_ee_workload(&ft, &m, 1024, 0.999, 1e4, 1e7).expect("no degenerate points");
        assert!(r.is_none());
    }

    #[test]
    fn best_frequency_for_cg_is_the_top_state() {
        let cg = CgModel::system_g();
        let (f, ee) = best_frequency(&cg, &mach(), 75_000.0, 64, &DVFS).expect("sweep ok");
        assert_eq!(f, 2.8e9, "Fig. 9: scale frequency up for CG");
        assert!(ee > 0.0);
    }

    #[test]
    fn bisection_result_actually_achieves_target() {
        let cg = CgModel::system_g();
        let m = mach();
        let target = 0.95;
        let n = iso_ee_workload(&cg, &m, 64, target, 1e3, 1e9)
            .expect("no degenerate points")
            .expect("reachable");
        let ee = ee_value(&m, &cg.app_params(n, 64), 64);
        assert!(ee >= target - 1e-6, "EE({n}) = {ee} < {target}");
        // And just below n the target fails (minimality up to tolerance).
        let ee_below = ee_value(&m, &cg.app_params(n * 0.98, 64), 64);
        assert!(ee_below <= target + 1e-3);
    }

    /// Test model whose baseline energy degenerates (to the all-zero
    /// workload) below a workload threshold — the real app models assert
    /// their way out of such inputs, but calibration-fed parameter sets
    /// can reach them.
    struct ThresholdModel;

    impl AppModel for ThresholdModel {
        fn name(&self) -> &'static str {
            "threshold"
        }

        fn app_params(&self, n: f64, _p: usize) -> AppParams {
            if n < 1e6 {
                AppParams::ideal(0.0)
            } else {
                AppParams::ideal(n)
            }
        }
    }

    #[test]
    fn degenerate_point_is_an_error_not_an_abort() {
        // A zero workload makes E1 = 0: the first degenerate cell (row 0,
        // col 0 in row-major order) must surface as a SweepError, not a
        // panic, and the index must be independent of the thread count.
        let app = ThresholdModel;
        let m = mach();
        let seq = ee_surface_pn_with(&PoolConfig::sequential(), &app, &m, &[4, 16], &[1e3, 1e7])
            .expect_err("zero workload is degenerate");
        assert_eq!(seq.index, 0);
        for threads in [2usize, 8] {
            let par = ee_surface_pn_with(
                &PoolConfig::with_threads(threads),
                &app,
                &m,
                &[4, 16],
                &[1e3, 1e7],
            )
            .expect_err("zero workload is degenerate");
            assert_eq!(par, seq, "threads={threads}");
        }
        // Degenerate row *after* a clean row: row-major index = 1 row in.
        let err =
            ee_surface_pn(&app, &m, &[4, 16], &[1e7, 1e3]).expect_err("zero workload degenerate");
        assert_eq!(err.index, 2);
        let ModelError::DegenerateBaseline { e1 } = err.source;
        assert_eq!(e1, simcluster::units::Joules::ZERO);
        // A clean grid on the same model still evaluates.
        let ok = ee_surface_pn(&app, &m, &[4, 16], &[1e7, 1e8]).expect("clean grid");
        assert!(ok.min() > 0.9);
    }

    #[test]
    fn degenerate_contour_and_advisor_carry_errors_out() {
        let app = ThresholdModel;
        let m = mach();
        // Every frequency probe is degenerate at a sub-threshold workload:
        // the advisor reports the first probe, not a panic.
        let err = best_frequency(&app, &m, 1e3, 16, &DVFS).expect_err("degenerate workload");
        assert_eq!(err.index, 0);
        // The bisection's low-bracket probe is degenerate for every p.
        let err = iso_ee_contour(&app, &m, &[8, 16], 0.5, 1e3, 1e9)
            .expect_err("degenerate bracket endpoint");
        assert_eq!(err.index, 0);
        // The single-p entry point carries the same error as a ModelError.
        let err = iso_ee_workload(&app, &m, 8, 0.5, 1e3, 1e9).expect_err("degenerate bracket");
        let ModelError::DegenerateBaseline { e1 } = err;
        assert_eq!(e1, simcluster::units::Joules::ZERO);
    }
}
