//! Interval abstract interpretation of the analytical model.
//!
//! Evaluates `T1/Tp/E1/Ep/EEF/EE` over parameter *boxes* instead of points,
//! with outward-rounded interval arithmetic: each operation widens its
//! result by one ulp per side (a few for the transcendental calls), so the
//! interval result of a mirrored expression always contains every
//! floating-point result the point evaluation in [`crate::model`] can
//! produce on inputs drawn from the box. That containment is what lets a
//! *single* interval evaluation certify a whole sweep grid:
//!
//! * if the enclosure of `E1` satisfies `lo > 0 ∧ hi < ∞`, no point in the
//!   box can raise [`ModelError::DegenerateBaseline`];
//! * if `hi ≤ 0`, *every* point in the box is degenerate;
//! * otherwise the box straddles the boundary and must be bisected (the
//!   `verify` crate's box driver) or confirmed point-by-point
//!   ([`certify_pf_grid`]/[`certify_pn_grid`] fall back to exact
//!   [`crate::model::ee`] calls for the undecided cells).
//!
//! The mirrors below reproduce the exact association order of the point
//! formulas in [`crate::model`], [`MachineParams::at_frequency`] and the
//! app models — the 1-ulp outward widening only absorbs the rounding of
//! the *matching* floating-point operation, so a structural mismatch would
//! silently void the containment guarantee. Keep them in lockstep.

use crate::apps::AppModel;
use crate::model::ModelError;
use crate::params::{AppParams, MachineParams};

/// A closed interval `[lo, hi]` of `f64` with outward-rounded arithmetic.
///
/// Invariants: `lo <= hi`, neither endpoint is NaN. Operations whose
/// floating-point result would be NaN (`0·∞`, `∞−∞`, division by an
/// interval containing zero) return [`Interval::ENTIRE`] — sound (it
/// contains everything) but uninformative, which is exactly what an
/// undecidable box should look like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// The whole extended real line — the "I know nothing" element.
    pub const ENTIRE: Self = Self {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// The degenerate interval `[x, x]` (or [`Self::ENTIRE`] for NaN).
    #[must_use]
    pub fn point(x: f64) -> Self {
        if x.is_nan() {
            Self::ENTIRE
        } else {
            Self { lo: x, hi: x }
        }
    }

    /// The interval `[lo, hi]`.
    ///
    /// # Panics
    /// Panics when `lo > hi` (NaN endpoints yield [`Self::ENTIRE`]).
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo.is_nan() || hi.is_nan() {
            return Self::ENTIRE;
        }
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The smallest interval containing every value in `xs`.
    ///
    /// # Panics
    /// Panics on an empty slice.
    #[must_use]
    pub fn hull(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "hull of nothing");
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self::new(lo, hi)
    }

    /// Whether `x` lies in the interval.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval width `hi − lo` (∞ for unbounded intervals).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint, clamped to finite for half-bounded intervals.
    #[must_use]
    pub fn mid(&self) -> f64 {
        let m = 0.5 * (self.lo + self.hi);
        if m.is_finite() {
            m
        } else {
            0.5 * self.lo + 0.5 * self.hi
        }
    }

    /// Split at the midpoint into `(lower, upper)` halves.
    #[must_use]
    pub fn split(&self) -> (Self, Self) {
        let m = self.mid();
        (Self::new(self.lo, m), Self::new(m, self.hi))
    }

    /// Both endpoints finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Outward-widen by `n` ulps per side, mapping NaN endpoints to
    /// [`Self::ENTIRE`].
    fn widened(lo: f64, hi: f64, n: u32) -> Self {
        if lo.is_nan() || hi.is_nan() {
            return Self::ENTIRE;
        }
        let mut lo = lo;
        let mut hi = hi;
        for _ in 0..n {
            lo = lo.next_down();
            hi = hi.next_up();
        }
        Self { lo, hi }
    }

    /// Elementwise maximum with another interval (`f64::max` is exact, so
    /// no widening is needed).
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// `log2` over a positive interval; non-positive boxes widen to
    /// [`Self::ENTIRE`] (the point evaluation would be NaN/−∞ there).
    #[must_use]
    pub fn log2(self) -> Self {
        if self.lo <= 0.0 {
            return Self::ENTIRE;
        }
        Self::widened(self.lo.log2(), self.hi.log2(), 2)
    }

    /// `sqrt` over a non-negative interval (ENTIRE when partially
    /// negative — the point evaluation would be NaN).
    #[must_use]
    pub fn sqrt(self) -> Self {
        if self.lo < 0.0 {
            return Self::ENTIRE;
        }
        Self::widened(self.lo.sqrt(), self.hi.sqrt(), 1)
    }

    /// `x^e` for a non-negative base interval and a fixed exponent
    /// `e ≥ 0` (monotone, so endpoint evaluation is exact up to libm
    /// error; widened 4 ulps per side to cover it).
    ///
    /// # Panics
    /// Panics on a negative exponent.
    #[must_use]
    pub fn powf(self, e: f64) -> Self {
        assert!(e >= 0.0, "powf mirror only covers non-negative exponents");
        if self.lo < 0.0 {
            return Self::ENTIRE;
        }
        Self::widened(self.lo.powf(e), self.hi.powf(e), 4)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl std::ops::Add for Interval {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self::widened(self.lo + rhs.lo, self.hi + rhs.hi, 1)
    }
}

impl std::ops::Sub for Interval {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self::widened(self.lo - rhs.hi, self.hi - rhs.lo, 1)
    }
}

impl std::ops::Neg for Interval {
    type Output = Self;

    fn neg(self) -> Self {
        // Negation is exact: no widening.
        Self {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl std::ops::Mul for Interval {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        let ps = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        if ps.iter().any(|p| p.is_nan()) {
            return Self::ENTIRE;
        }
        let lo = ps.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self::widened(lo, hi, 1)
    }
}

impl std::ops::Div for Interval {
    type Output = Self;

    fn div(self, rhs: Self) -> Self {
        if rhs.lo <= 0.0 && rhs.hi >= 0.0 {
            // Divisor straddles (or touches) zero: anything is possible.
            return Self::ENTIRE;
        }
        let qs = [
            self.lo / rhs.lo,
            self.lo / rhs.hi,
            self.hi / rhs.lo,
            self.hi / rhs.hi,
        ];
        if qs.iter().any(|q| q.is_nan()) {
            return Self::ENTIRE;
        }
        let lo = qs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = qs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self::widened(lo, hi, 1)
    }
}

/// The machine-dependent vector (Table 1) as intervals — the abstract
/// counterpart of [`MachineParams`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachBox {
    /// Per-instruction time `tc`.
    pub tc: Interval,
    /// DRAM latency `tm`.
    pub tm: Interval,
    /// Message startup `ts`.
    pub ts: Interval,
    /// Per-byte time `tw`.
    pub tw: Interval,
    /// Idle power `P_sys_idle`.
    pub p_sys_idle: Interval,
    /// CPU delta `ΔPc`.
    pub delta_pc: Interval,
    /// Memory delta `ΔPm`.
    pub delta_pm: Interval,
    /// NIC delta `ΔP_NIC`.
    pub delta_pnic: Interval,
    /// Disk delta `ΔP_IO`.
    pub delta_pio: Interval,
}

impl MachBox {
    /// The thin box `{m}` — every field a point interval.
    #[must_use]
    pub fn from_params(m: &MachineParams) -> Self {
        Self {
            tc: Interval::point(m.tc.raw()),
            tm: Interval::point(m.tm.raw()),
            ts: Interval::point(m.ts.raw()),
            tw: Interval::point(m.tw.raw()),
            p_sys_idle: Interval::point(m.p_sys_idle.raw()),
            delta_pc: Interval::point(m.delta_pc.raw()),
            delta_pm: Interval::point(m.delta_pm.raw()),
            delta_pnic: Interval::point(m.delta_pnic.raw()),
            delta_pio: Interval::point(m.delta_pio.raw()),
        }
    }

    /// The image of `base` under [`MachineParams::at_frequency`] for every
    /// frequency in `f` — the abstract mirror of Eq. 20: `tc = CPI/f` and
    /// `ΔPc = ΔPc_base · (f/f_base)^γ`; all other entries are
    /// frequency-independent.
    #[must_use]
    pub fn over_frequencies(base: &MachineParams, f: Interval) -> Self {
        let mut b = Self::from_params(base);
        let (tc, dpc) = frequency_terms(base, f);
        b.tc = tc;
        b.delta_pc = dpc;
        b
    }

    /// Bandwidth variation: scale the per-byte time by `1/bw_scale` for
    /// every scale factor in the interval (the `BW` axis of the paper's
    /// `Mach(f, BW)` vector).
    #[must_use]
    pub fn over_bandwidth_scale(mut self, bw_scale: Interval) -> Self {
        self.tw = self.tw / bw_scale;
        self
    }
}

/// The application-dependent vector (Table 2) as intervals — the abstract
/// counterpart of [`AppParams`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppBox {
    /// Overlap factor `α`.
    pub alpha: Interval,
    /// Sequential on-chip workload `Wc`.
    pub wc: Interval,
    /// Sequential off-chip workload `Wm`.
    pub wm: Interval,
    /// Parallel compute overhead `Woc`.
    pub woc: Interval,
    /// Parallel memory overhead `Wom`.
    pub wom: Interval,
    /// Total messages `M`.
    pub messages: Interval,
    /// Total bytes `B`.
    pub bytes: Interval,
    /// Sequential I/O time `T_IO`.
    pub t_io: Interval,
}

impl AppBox {
    /// The thin box `{a}` — every field a point interval.
    #[must_use]
    pub fn from_params(a: &AppParams) -> Self {
        Self {
            alpha: Interval::point(a.alpha),
            wc: Interval::point(a.wc.raw()),
            wm: Interval::point(a.wm.raw()),
            woc: Interval::point(a.woc.raw()),
            wom: Interval::point(a.wom.raw()),
            messages: Interval::point(a.messages.raw()),
            bytes: Interval::point(a.bytes.raw()),
            t_io: Interval::point(a.t_io.raw()),
        }
    }

    /// The app box for workload interval `n` at parallelism `p`: the
    /// model's own interval mirror if it has one
    /// ([`AppModel::app_params_box`]), else the thin box at the interval's
    /// midpoint — only sound when `n` is a point, so a ranged `n` without
    /// a mirror returns `None`.
    #[must_use]
    pub fn of_model(app: &dyn AppModel, n: Interval, p: usize) -> Option<Self> {
        if let Some(b) = app.app_params_box(n, p) {
            return Some(b);
        }
        if n.lo == n.hi {
            return Some(Self::from_params(&app.app_params(n.lo, p)));
        }
        None
    }
}

/// The two frequency-dependent machine enclosures of Eq. 20 — `tc = CPI/f`
/// and `ΔPc = ΔPc_base · (f/f_base)^γ` — for every frequency in `f`.
///
/// These are the *only* machine terms the DVFS axis moves, which is what
/// lets [`E1Factors`] cache everything else per column: one pair of
/// intervals per frequency row re-certifies a whole column.
#[must_use]
pub fn frequency_terms(base: &MachineParams, f: Interval) -> (Interval, Interval) {
    let tc = Interval::point(base.cpi) / f;
    let dpc =
        Interval::point(base.delta_pc.raw()) * (f / Interval::point(base.f_hz)).powf(base.gamma);
    (tc, dpc)
}

/// The frequency-invariant factors of the `E1` enclosure (Eq. 13) for one
/// `(MachBox, AppBox)` column — the interval-valued twin of the batch
/// kernel's column factors in [`crate::batch`].
///
/// Grid certification only needs the `E1` enclosure (the degenerate
/// predicate is on `E1` alone), so caching these seven intervals per
/// column and re-evaluating [`E1Factors::e1`] against each row's
/// [`frequency_terms`] replaces a full [`evaluate`] per box while
/// producing the *identical* `E1` interval: the operation sequence below
/// is the same as [`e1`]'s, with the loop-invariant subterms computed
/// once. Interval arithmetic is deterministic, so the certify verdicts
/// cannot change. Keep in lockstep with [`e1`] and [`crate::model::e1`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E1Factors {
    /// Overlap factor `α`.
    pub alpha: Interval,
    /// `Wc`.
    pub wc: Interval,
    /// `Wm·tm`.
    pub mem_seq: Interval,
    /// `T_IO`.
    pub t_io: Interval,
    /// Idle power `P_sys_idle`.
    pub psys: Interval,
    /// `(Wm·tm)·ΔPm`.
    pub e_mem_seq: Interval,
    /// `T_IO·ΔP_IO`.
    pub e_io: Interval,
}

impl E1Factors {
    /// Derive the factors from a box pair (ignores `m.tc`/`m.delta_pc` —
    /// those arrive per row via [`frequency_terms`]).
    #[must_use]
    pub fn of(m: &MachBox, a: &AppBox) -> Self {
        Self {
            alpha: a.alpha,
            wc: a.wc,
            mem_seq: a.wm * m.tm,
            t_io: a.t_io,
            psys: m.p_sys_idle,
            e_mem_seq: a.wm * m.tm * m.delta_pm,
            e_io: a.t_io * m.delta_pio,
        }
    }

    /// The `E1` enclosure at the given frequency terms — identical to
    /// [`e1`] on the box with `tc`/`delta_pc` substituted.
    #[must_use]
    pub fn e1(&self, tc: Interval, dpc: Interval) -> Interval {
        let x1 = self.wc * tc;
        let t1 = self.alpha * (x1 + self.mem_seq + self.t_io);
        t1 * self.psys + x1 * dpc + self.e_mem_seq + self.e_io
    }

    /// Proof that no point of the column×row box raises
    /// [`ModelError::DegenerateBaseline`] (see
    /// [`ModelEnclosure::baseline_certified`]).
    #[must_use]
    pub fn baseline_certified(&self, tc: Interval, dpc: Interval) -> bool {
        let e1 = self.e1(tc, dpc);
        e1.lo > 0.0 && e1.hi.is_finite()
    }
}

// ---------------------------------------------------------------------
// Model mirrors (must match crate::model association order exactly)
// ---------------------------------------------------------------------

/// Interval mirror of [`crate::model::t1`].
#[must_use]
pub fn t1(m: &MachBox, a: &AppBox) -> Interval {
    a.alpha * (a.wc * m.tc + a.wm * m.tm + a.t_io)
}

/// Interval mirror of [`crate::model::t_net`].
#[must_use]
pub fn t_net(m: &MachBox, a: &AppBox) -> Interval {
    t_net_of(m, a.messages, a.bytes)
}

/// Hockney communication time `M·ts + B·tw` for explicit message/byte
/// enclosures — the Eq. 13 network term shared with the `plan` crate's
/// static cost pass, which derives `M` and `B` from an IR walk instead of
/// an [`AppBox`].
#[must_use]
pub fn t_net_of(m: &MachBox, messages: Interval, bytes: Interval) -> Interval {
    messages * m.ts + bytes * m.tw
}

/// Network energy `(M·ts + B·tw) · ΔP_NIC` — the Eq. 15 NIC term for
/// explicit message/byte enclosures (see [`t_net_of`]).
#[must_use]
pub fn e_net_of(m: &MachBox, messages: Interval, bytes: Interval) -> Interval {
    t_net_of(m, messages, bytes) * m.delta_pnic
}

/// Interval mirror of [`crate::model::tp`].
///
/// # Panics
/// Panics when `p == 0`.
#[must_use]
pub fn tp(m: &MachBox, a: &AppBox, p: usize) -> Interval {
    assert!(p > 0, "need at least one processor");
    a.alpha * ((a.wc + a.woc) * m.tc + (a.wm + a.wom) * m.tm + t_net(m, a) + a.t_io)
        / Interval::point(p as f64)
}

/// Interval mirror of [`crate::model::e1`].
#[must_use]
pub fn e1(m: &MachBox, a: &AppBox) -> Interval {
    t1(m, a) * m.p_sys_idle
        + a.wc * m.tc * m.delta_pc
        + a.wm * m.tm * m.delta_pm
        + a.t_io * m.delta_pio
}

/// Interval mirror of [`crate::model::ep`].
///
/// # Panics
/// Panics when `p == 0`.
#[must_use]
pub fn ep(m: &MachBox, a: &AppBox, p: usize) -> Interval {
    tp(m, a, p) * Interval::point(p as f64) * m.p_sys_idle
        + (a.wc + a.woc) * m.tc * m.delta_pc
        + (a.wm + a.wom) * m.tm * m.delta_pm
        + t_net(m, a) * m.delta_pnic
        + a.t_io * m.delta_pio
}

/// The full abstract evaluation of one `(MachBox, AppBox, p)` box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelEnclosure {
    /// Enclosure of `T1`.
    pub t1: Interval,
    /// Enclosure of `Tp`.
    pub tp: Interval,
    /// Enclosure of `E1`.
    pub e1: Interval,
    /// Enclosure of `Ep`.
    pub ep: Interval,
    /// Enclosure of `EEF`; `None` unless the baseline is certified
    /// (otherwise the point evaluation errors somewhere in the box and a
    /// ratio enclosure would be meaningless).
    pub eef: Option<Interval>,
    /// Enclosure of `EE`; `None` unless the baseline is certified.
    pub ee: Option<Interval>,
}

impl ModelEnclosure {
    /// Proof that **no** point of the box raises
    /// [`ModelError::DegenerateBaseline`]: `E1` is positive and finite
    /// everywhere.
    #[must_use]
    pub fn baseline_certified(&self) -> bool {
        self.e1.lo > 0.0 && self.e1.hi.is_finite()
    }

    /// Proof that **every** point of the box is degenerate (`E1 ≤ 0`
    /// throughout).
    #[must_use]
    pub fn provably_degenerate(&self) -> bool {
        self.e1.hi <= 0.0
    }

    /// Proof that `EE ∈ (0, 1]` across the whole box (implies the baseline
    /// certificate). Negative overheads can legitimately push EE slightly
    /// above 1 (superlinear energy scaling), so this is a stronger claim
    /// than degeneracy-freedom.
    #[must_use]
    pub fn ee_in_unit_certified(&self) -> bool {
        self.ee.is_some_and(|ee| ee.lo > 0.0 && ee.hi <= 1.0)
    }
}

/// Evaluate the whole model over a box. Mirrors
/// [`crate::model::eef`]/[`crate::model::ee`]: the ratios are only formed
/// when `E1` is certified positive and finite across the box.
///
/// # Panics
/// Panics when `p == 0`.
#[must_use]
pub fn evaluate(m: &MachBox, a: &AppBox, p: usize) -> ModelEnclosure {
    let e1v = e1(m, a);
    let epv = ep(m, a, p);
    let mut out = ModelEnclosure {
        t1: t1(m, a),
        tp: tp(m, a, p),
        e1: e1v,
        ep: epv,
        eef: None,
        ee: None,
    };
    if out.baseline_certified() {
        let eefv = (epv - e1v) / e1v;
        out.eef = Some(eefv);
        out.ee = Some(Interval::point(1.0) / (Interval::point(1.0) + eefv));
    }
    out
}

// ---------------------------------------------------------------------
// Grid pre-certification for isoee::scaling
// ---------------------------------------------------------------------

/// How a sweep grid fared under ahead-of-time certification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCertification {
    /// Cells certified degenerate-free by pure interval reasoning.
    pub interval_cells: usize,
    /// Cells the intervals could not decide, confirmed by exact point
    /// evaluation instead.
    pub exact_cells: usize,
    /// The first (row-major) cell that is *actually* degenerate, with the
    /// exact model error the dynamic sweep would have produced there.
    pub degenerate: Option<(usize, ModelError)>,
}

impl GridCertification {
    /// Whole grid proven (or exactly confirmed) free of degenerate points.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.degenerate.is_none()
    }
}

/// Certify the `(p, f)` sweep grid of [`crate::scaling::ee_surface_pf`]:
/// rows are frequencies, columns processor counts, row-major indexing.
///
/// App parameters vary only per column, so one interval evaluation per
/// column — against the hull of all frequencies — usually certifies the
/// entire column (`O(|ps|)` evaluations for the whole grid). Undecided
/// columns fall back to per-cell thin-frequency boxes, then to exact point
/// confirmation, so the reported `degenerate` cell is always real and
/// matches the dynamic sweep's first error exactly.
///
/// # Panics
/// Panics when `ps` or `fs` is empty, or any `p == 0`.
#[must_use]
pub fn certify_pf_grid(
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    ps: &[usize],
    fs: &[f64],
) -> GridCertification {
    assert!(!ps.is_empty() && !fs.is_empty(), "empty grid");
    let base_box = MachBox::from_params(base);
    let (hull_tc, hull_dpc) = frequency_terms(base, Interval::hull(fs));
    let mut cert = GridCertification {
        interval_cells: 0,
        exact_cells: 0,
        degenerate: None,
    };
    for (j, &p) in ps.iter().enumerate() {
        let a_box =
            AppBox::of_model(app, Interval::point(n), p).expect("point workload always has a box");
        let inv = E1Factors::of(&base_box, &a_box);
        if inv.baseline_certified(hull_tc, hull_dpc) {
            cert.interval_cells += fs.len();
            continue;
        }
        for (i, &f) in fs.iter().enumerate() {
            let (tc, dpc) = frequency_terms(base, Interval::point(f));
            if inv.baseline_certified(tc, dpc) {
                cert.interval_cells += 1;
                continue;
            }
            cert.exact_cells += 1;
            if let Err(source) = crate::model::ee(&base.at_frequency(f), &app.app_params(n, p), p) {
                let index = i * ps.len() + j;
                if cert.degenerate.is_none_or(|(first, _)| index < first) {
                    cert.degenerate = Some((index, source));
                }
            }
        }
    }
    cert
}

/// Certify the `(p, n)` sweep grid of [`crate::scaling::ee_surface_pn`]:
/// rows are workloads, columns processor counts, row-major indexing.
///
/// When the app model provides an interval mirror
/// ([`AppModel::app_params_box`]), one evaluation per column over the
/// workload hull can certify the column; otherwise each cell gets a thin
/// box, with exact confirmation for the undecided ones.
///
/// # Panics
/// Panics when `ps` or `ns` is empty, or any `p == 0`.
#[must_use]
pub fn certify_pn_grid(
    app: &dyn AppModel,
    mach: &MachineParams,
    ps: &[usize],
    ns: &[f64],
) -> GridCertification {
    assert!(!ps.is_empty() && !ns.is_empty(), "empty grid");
    // The pn sweep re-derives each row's machine via `at_frequency(f_hz)`;
    // mirror that so the box contains the recomputed tc/ΔPc exactly.
    let mach_box = MachBox::over_frequencies(mach, Interval::point(mach.f_hz));
    let n_hull = Interval::hull(ns);
    let mut cert = GridCertification {
        interval_cells: 0,
        exact_cells: 0,
        degenerate: None,
    };
    for (j, &p) in ps.iter().enumerate() {
        if let Some(a_box) = app.app_params_box(n_hull, p) {
            let inv = E1Factors::of(&mach_box, &a_box);
            if inv.baseline_certified(mach_box.tc, mach_box.delta_pc) {
                cert.interval_cells += ns.len();
                continue;
            }
        }
        for (i, &n) in ns.iter().enumerate() {
            let a_box = AppBox::of_model(app, Interval::point(n), p)
                .expect("point workload always has a box");
            let inv = E1Factors::of(&mach_box, &a_box);
            if inv.baseline_certified(mach_box.tc, mach_box.delta_pc) {
                cert.interval_cells += 1;
                continue;
            }
            cert.exact_cells += 1;
            if let Err(source) =
                crate::model::ee(&mach.at_frequency(mach.f_hz), &app.app_params(n, p), p)
            {
                let index = i * ps.len() + j;
                if cert.degenerate.is_none_or(|(first, _)| index < first) {
                    cert.degenerate = Some((index, source));
                }
            }
        }
    }
    cert
}

/// Certify the frequency probes of [`crate::scaling::best_frequency`]:
/// indexing follows `freqs` order.
///
/// # Panics
/// Panics when `freqs` is empty or `p == 0`.
#[must_use]
pub fn certify_frequency_probes(
    app: &dyn AppModel,
    base: &MachineParams,
    n: f64,
    p: usize,
    freqs: &[f64],
) -> GridCertification {
    assert!(!freqs.is_empty(), "need at least one frequency");
    let a_box =
        AppBox::of_model(app, Interval::point(n), p).expect("point workload always has a box");
    let mut cert = GridCertification {
        interval_cells: 0,
        exact_cells: 0,
        degenerate: None,
    };
    let inv = E1Factors::of(&MachBox::from_params(base), &a_box);
    let (hull_tc, hull_dpc) = frequency_terms(base, Interval::hull(freqs));
    if inv.baseline_certified(hull_tc, hull_dpc) {
        cert.interval_cells = freqs.len();
        return cert;
    }
    for (index, &f) in freqs.iter().enumerate() {
        let (tc, dpc) = frequency_terms(base, Interval::point(f));
        if inv.baseline_certified(tc, dpc) {
            cert.interval_cells += 1;
            continue;
        }
        cert.exact_cells += 1;
        if let Err(source) = crate::model::ee(&base.at_frequency(f), &app.app_params(n, p), p) {
            if cert.degenerate.is_none() {
                cert.degenerate = Some((index, source));
            }
        }
    }
    cert
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{CgModel, EpModel, FtModel};
    use crate::model;

    fn mach() -> MachineParams {
        MachineParams::system_g(2.8e9)
    }

    #[test]
    fn point_arithmetic_encloses_f64_results() {
        let a = Interval::point(0.1);
        let b = Interval::point(0.2);
        let s = a + b;
        assert!(s.contains(0.1 + 0.2));
        assert!(s.width() < 1e-15);
        let p = a * b;
        assert!(p.contains(0.1 * 0.2));
        let q = a / b;
        assert!(q.contains(0.1 / 0.2));
    }

    #[test]
    fn division_by_zero_straddling_interval_is_entire() {
        let x = Interval::point(1.0);
        let d = Interval::new(-1.0, 2.0);
        assert_eq!(x / d, Interval::ENTIRE);
    }

    #[test]
    fn mul_handles_sign_combinations() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(-5.0, 7.0);
        let p = a * b;
        for x in [-2.0, 0.0, 1.5, 3.0] {
            for y in [-5.0, 0.0, 2.0, 7.0] {
                assert!(p.contains(x * y), "{x}*{y} not in {p}");
            }
        }
    }

    #[test]
    fn nan_producing_ops_degrade_to_entire() {
        let zero = Interval::point(0.0);
        let inf = Interval::new(0.0, f64::INFINITY);
        assert_eq!(zero * inf, Interval::ENTIRE);
        assert_eq!(Interval::point(f64::NAN), Interval::ENTIRE);
    }

    #[test]
    fn thin_box_evaluation_encloses_point_model() {
        let m = mach();
        let ft = FtModel::system_g();
        for p in [1usize, 4, 64, 1024] {
            let a = ft.app_params(1e6, p);
            let enc = evaluate(&MachBox::from_params(&m), &AppBox::from_params(&a), p);
            assert!(enc.t1.contains(model::t1(&m, &a).raw()));
            assert!(enc.tp.contains(model::tp(&m, &a, p).raw()));
            assert!(enc.e1.contains(model::e1(&m, &a).raw()));
            assert!(enc.ep.contains(model::ep(&m, &a, p).raw()));
            assert!(enc.baseline_certified());
            let ee = model::ee(&m, &a, p).expect("positive baseline");
            assert!(enc.ee.expect("certified").contains(ee));
        }
    }

    #[test]
    fn frequency_hull_encloses_every_dvfs_state() {
        let base = mach();
        let fs = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
        let hull = MachBox::over_frequencies(&base, Interval::hull(&fs));
        for &f in &fs {
            let m = base.at_frequency(f);
            assert!(hull.tc.contains(m.tc.raw()), "tc at {f}");
            assert!(hull.delta_pc.contains(m.delta_pc.raw()), "dPc at {f}");
        }
    }

    #[test]
    fn default_grids_certify_by_interval_alone() {
        let base = mach();
        let fs = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
        // Fig. 5 (FT), Fig. 7 (EP), Fig. 9 (CG) style grids.
        let ft = certify_pf_grid(
            &FtModel::system_g(),
            &base,
            (1u64 << 20) as f64,
            &[1, 4, 16, 64, 256, 1024],
            &fs,
        );
        assert!(ft.is_clean());
        assert_eq!(ft.exact_cells, 0, "FT grid should certify by interval");
        let ep = certify_pf_grid(&EpModel::system_g(), &base, 4e6, &[1, 8, 64, 128], &fs);
        assert!(ep.is_clean() && ep.exact_cells == 0);
        let cg = certify_pf_grid(&CgModel::system_g(), &base, 75_000.0, &[4, 16, 64], &fs);
        assert!(cg.is_clean() && cg.exact_cells == 0);
    }

    #[test]
    fn degenerate_cells_are_pinpointed_exactly() {
        // Mirror of scaling's ThresholdModel: zero workload under n = 1e6.
        struct Thresh;
        impl AppModel for Thresh {
            fn name(&self) -> &'static str {
                "thresh"
            }
            fn app_params(&self, n: f64, _p: usize) -> AppParams {
                if n < 1e6 {
                    AppParams::ideal(0.0)
                } else {
                    AppParams::ideal(n)
                }
            }
        }
        let m = mach();
        let cert = certify_pn_grid(&Thresh, &m, &[4, 16], &[1e3, 1e7]);
        let (index, source) = cert.degenerate.expect("row 0 is degenerate");
        assert_eq!(index, 0);
        assert_eq!(
            source,
            ModelError::DegenerateBaseline {
                e1: simcluster::units::Joules::ZERO
            }
        );
        // Degenerate row second: row-major index jumps a full row.
        let cert = certify_pn_grid(&Thresh, &m, &[4, 16], &[1e7, 1e3]);
        assert_eq!(cert.degenerate.expect("row 1 degenerate").0, 2);
    }

    #[test]
    fn e1_factors_are_in_lockstep_with_the_e1_mirror() {
        // The factored path must produce the *identical* interval as the
        // direct mirror — bit-for-bit on both endpoints — so the certify
        // refactor cannot have changed any verdict.
        let base = mach();
        let fs = [1.6e9, 2.0e9, 2.4e9, 2.8e9];
        let ft = FtModel::system_g();
        for p in [1usize, 4, 64, 1024] {
            let a_box = AppBox::of_model(&ft, Interval::point((1u64 << 20) as f64), p)
                .expect("point workload always has a box");
            let inv = E1Factors::of(&MachBox::from_params(&base), &a_box);
            for f in [Interval::hull(&fs), Interval::point(2.0e9)] {
                let (tc, dpc) = frequency_terms(&base, f);
                let factored = inv.e1(tc, dpc);
                let mirror = e1(&MachBox::over_frequencies(&base, f), &a_box);
                assert_eq!(factored.lo.to_bits(), mirror.lo.to_bits(), "p={p}");
                assert_eq!(factored.hi.to_bits(), mirror.hi.to_bits(), "p={p}");
                assert_eq!(
                    inv.baseline_certified(tc, dpc),
                    mirror.lo > 0.0 && mirror.hi.is_finite(),
                );
            }
        }
    }
}

#[cfg(test)]
mod factored_soundness {
    //! Point-⊆-box soundness of the factored-invariant certification path
    //! against the **batch kernel's** point results: any outward-rounding
    //! regression introduced by sharing invariants across rows would show
    //! up here as a fused point `E1` escaping its column enclosure.

    use super::*;
    use crate::apps::{AppModel, FtModel};
    use crate::batch;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn factored_e1_enclosure_contains_batch_point_results(
            f_lo in 1.2e9f64..2.2e9,
            f_span in 1e8f64..1.2e9,
            lg_n in 14u32..24,
            lg_p in 0u32..11,
            alpha in 0.5f64..=1.0,
        ) {
            let base = MachineParams::system_g(2.8e9);
            let p = 1usize << lg_p;
            let n = f64::from(1u32 << lg_n);
            let ft = FtModel::system_g();
            let mut a = ft.app_params(n, p);
            a.alpha = alpha;
            let a_box = AppBox::from_params(&a);
            let inv = E1Factors::of(&MachBox::from_params(&base), &a_box);
            let f_hi = f_lo + f_span;
            let (hull_tc, hull_dpc) =
                frequency_terms(&base, Interval::new(f_lo, f_hi));
            let hull_e1 = inv.e1(hull_tc, hull_dpc);
            for f in [f_lo, 0.5 * (f_lo + f_hi), f_hi] {
                let point = batch::terms(&base.at_frequency(f), &a, p);
                prop_assert!(
                    hull_e1.contains(point.e1.raw()),
                    "batch E1 {} at f={f} escapes hull enclosure {hull_e1}",
                    point.e1.raw()
                );
                // Thin-frequency factored enclosure contains it too (the
                // per-cell fallback of the certify loop).
                let (tc, dpc) = frequency_terms(&base, Interval::point(f));
                prop_assert!(inv.e1(tc, dpc).contains(point.e1.raw()));
            }
        }

        #[test]
        fn certified_boxes_never_contain_a_degenerate_batch_point(
            f_lo in 1.2e9f64..2.2e9,
            f_span in 1e8f64..1.2e9,
            wc in 0.0f64..1e10,
            lg_p in 0u32..8,
        ) {
            // Certification is a *proof*: whenever the factored path says
            // a column is clean, the batch kernel must agree at every
            // probed frequency — including wc = 0 columns, where the
            // factored path must refuse to certify.
            let base = MachineParams::system_g(2.8e9);
            let p = 1usize << lg_p;
            let a = AppParams::ideal(wc);
            let inv = E1Factors::of(&MachBox::from_params(&base), &AppBox::from_params(&a));
            let f_hi = f_lo + f_span;
            let (tc, dpc) = frequency_terms(&base, Interval::new(f_lo, f_hi));
            if inv.baseline_certified(tc, dpc) {
                for f in [f_lo, 0.5 * (f_lo + f_hi), f_hi] {
                    prop_assert!(
                        batch::ee_point(&base.at_frequency(f), &a, p).is_ok(),
                        "certified column has a degenerate batch point at f={f}"
                    );
                }
            } else {
                // ideal(0) has E1 = 0 exactly: the box must NOT certify.
                prop_assert!(wc > 0.0 || !inv.baseline_certified(tc, dpc));
            }
        }
    }
}
