//! Model validation against the simulator's PowerPack measurements — the
//! engine behind the paper's Figs. 3 and 4.
//!
//! For each parallelism level the kernel runs instrumented; its measured
//! Table-2 vector feeds Eq. 15 to *predict* total energy, which is compared
//! with the energy the PowerPack analog *measured* for the same run. The
//! prediction error comes from everything the analytical model abstracts
//! away — load imbalance and synchronization waits, link contention, and
//! the flat-`tm` memory model — exactly the error sources the paper
//! discusses (it blames its CG outlier on "inaccuracies in our memory
//! model").

use mps::{Ctx, World};
use simcluster::units::Joules;

use crate::calibrate::{app_params_from, measure_run, RunMeasurement};
use crate::model;
use crate::params::MachineParams;

/// One validation point (one bar pair of Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPoint {
    /// Parallelism level.
    pub p: usize,
    /// Model-predicted total energy (Eq. 13 for p = 1, Eq. 15 otherwise).
    pub predicted_j: Joules,
    /// PowerPack-measured total energy of the same run.
    pub measured_j: Joules,
}

impl ValidationPoint {
    /// Signed relative error of the prediction, in percent.
    pub fn error_pct(&self) -> f64 {
        100.0 * (self.predicted_j - self.measured_j) / self.measured_j
    }
}

/// A kernel's validation across parallelism levels (one group of Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationSummary {
    /// Kernel name.
    pub name: String,
    /// Points in the order of the requested `ps`.
    pub points: Vec<ValidationPoint>,
}

impl ValidationSummary {
    /// Mean of |error| across the points — the quantity Fig. 4 reports
    /// (6.64 % EP, 4.99 % FT, 8.31 % CG in the paper).
    pub fn mean_abs_error_pct(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .map(|pt| pt.error_pct().abs())
            .sum::<f64>()
            / self.points.len() as f64
    }

    /// Largest |error| across the points.
    pub fn max_abs_error_pct(&self) -> f64 {
        self.points
            .iter()
            .map(|pt| pt.error_pct().abs())
            .fold(0.0, f64::max)
    }
}

/// Validate the energy model for one kernel across `ps`, on the global
/// pool config.
///
/// `mach` should come from [`crate::calibrate::measured_machine_params`]
/// (the paper's workflow) or [`MachineParams::from_spec`].
pub fn validate_kernel<R, F>(
    world: &World,
    mach: &MachineParams,
    name: &str,
    ps: &[usize],
    kernel: F,
) -> ValidationSummary
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    validate_kernel_with(pool::global(), world, mach, name, ps, kernel)
}

/// [`validate_kernel`] on an explicit pool config: the per-`p` validation
/// points run concurrently (each point is its own deterministic simulated
/// run), and the points are reduced in the order of `ps` — the summary is
/// bit-identical to a sequential validation at any thread count.
pub fn validate_kernel_with<R, F>(
    cfg: &pool::PoolConfig,
    world: &World,
    mach: &MachineParams,
    name: &str,
    ps: &[usize],
    kernel: F,
) -> ValidationSummary
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    let seq = measure_run(world, 1, &kernel);
    let evaluated: Vec<EvaluatedPoint> =
        pool::parallel_map(cfg, ps, |&p| validate_point(world, mach, &seq, p, &kernel));
    // Live gauges: the latest validated point's efficiency and drift,
    // visible in `obs::global().snapshot_text()` while a sweep runs. The
    // parallel phase computes the values; they are applied here in `ps`
    // order, so the final gauge state never depends on worker
    // interleaving.
    let reg = obs::global();
    let mut points = Vec::with_capacity(evaluated.len());
    for ev in evaluated {
        if let Ok(ee) = ev.ee {
            reg.gauge("isoee.validate.ee").set(ee);
        }
        if let Ok(eef) = ev.eef {
            reg.gauge("isoee.validate.eef").set(eef);
        }
        reg.gauge("isoee.validate.drift_pct")
            .set(ev.point.error_pct());
        points.push(ev.point);
    }
    ValidationSummary {
        name: name.to_string(),
        points,
    }
}

/// One point plus the model ratios its run implies (gauge fodder).
struct EvaluatedPoint {
    point: ValidationPoint,
    ee: Result<f64, crate::model::ModelError>,
    eef: Result<f64, crate::model::ModelError>,
}

fn validate_point<R, F>(
    world: &World,
    mach: &MachineParams,
    seq: &RunMeasurement,
    p: usize,
    kernel: &F,
) -> EvaluatedPoint
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    let par = if p == 1 {
        *seq
    } else {
        measure_run(world, p, kernel)
    };
    let app = app_params_from(seq, &par);
    // One fused batch evaluation per point (bit-identical to the three
    // scalar calls, which each re-derive Ep/E1 from scratch); the scalar
    // oracle stays reachable via ISOEE_SCALAR_SWEEP.
    let (predicted_j, ee, eef) = if crate::scaling::scalar_sweep_forced() {
        (
            model::ep(mach, &app, p),
            model::ee(mach, &app, p),
            model::eef(mach, &app, p),
        )
    } else {
        let ev = crate::batch::evaluate(mach, &app, p);
        (ev.terms.ep, ev.ee, ev.eef)
    };
    EvaluatedPoint {
        point: ValidationPoint {
            p,
            predicted_j,
            measured_j: par.energy_j,
        },
        ee,
        eef,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::system_g;

    fn world() -> World {
        World::new(system_g(), 2.8e9)
    }

    #[test]
    fn synthetic_balanced_kernel_predicts_within_one_percent() {
        // A perfectly balanced kernel with no contention or imbalance: the
        // model should be nearly exact; what remains is the flat-tm
        // approximation.
        let w = world();
        let mach = MachineParams::from_spec(&w.cluster, 2.8e9);
        let summary = validate_kernel(&w, &mach, "synthetic", &[1, 2, 4], |ctx: &mut Ctx| {
            ctx.compute(1e7 / ctx.size() as f64);
            ctx.mem_access(1e5 / ctx.size() as f64, 1 << 28);
        });
        for pt in &summary.points {
            assert!(
                pt.error_pct().abs() < 1.0,
                "p={} error {}%",
                pt.p,
                pt.error_pct()
            );
        }
    }

    #[test]
    fn imbalanced_kernel_shows_model_error() {
        // Load imbalance is invisible to the homogeneous-workload model:
        // the model must *underestimate* the measured energy.
        let w = world();
        let mach = MachineParams::from_spec(&w.cluster, 2.8e9);
        let summary = validate_kernel(&w, &mach, "imbalanced", &[4], |ctx: &mut Ctx| {
            let share = if ctx.rank() == 0 { 4e7 } else { 1e7 };
            ctx.compute(share);
            ctx.barrier();
        });
        let pt = summary.points[0];
        assert!(
            pt.predicted_j < pt.measured_j,
            "model should underestimate imbalanced runs: {pt:?}"
        );
        assert!(pt.error_pct().abs() > 1.0);
    }

    #[test]
    fn error_pct_is_signed() {
        let pt = ValidationPoint {
            p: 2,
            predicted_j: Joules::new(90.0),
            measured_j: Joules::new(100.0),
        };
        assert!((pt.error_pct() + 10.0).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics() {
        let s = ValidationSummary {
            name: "x".into(),
            points: vec![
                ValidationPoint {
                    p: 1,
                    predicted_j: Joules::new(95.0),
                    measured_j: Joules::new(100.0),
                },
                ValidationPoint {
                    p: 2,
                    predicted_j: Joules::new(103.0),
                    measured_j: Joules::new(100.0),
                },
            ],
        };
        assert!((s.mean_abs_error_pct() - 4.0).abs() < 1e-12);
        assert!((s.max_abs_error_pct() - 5.0).abs() < 1e-12);
    }
}
