//! # isoee — the iso-energy-efficiency model
//!
//! The paper's contribution (Song, Su, Ge, Vishnu, Cameron, IPDPS 2011):
//! a system-level analytical model of the energy efficiency of parallel
//! applications, extending Grama et al.'s performance *isoefficiency* to
//! energy.
//!
//! ## The model in five lines
//!
//! With `E1` the sequential energy and `Ep` the parallel energy on `p`
//! processors (Eqs. 13, 15 — see [`model`]):
//!
//! ```text
//! E0  = Ep − E1                       (Eq. 1,  parallel energy overhead)
//! EEF = E0 / E1                       (Eq. 3/19, energy efficiency factor)
//! EE  = 1 / (1 + EEF)                 (Eq. 2/4/21, iso-energy-efficiency)
//! ```
//!
//! `EE = 1` is ideal; keeping `EE` constant while scaling `(p, n, f, BW)`
//! is the iso-energy-efficiency condition the paper's scalability studies
//! explore (Figs. 5–9).
//!
//! ## Crate layout
//!
//! * [`params`] — the machine- and application-dependent parameter vectors
//!   of the paper's Tables 1 and 2.
//! * [`model`] — Eqs. 5–21: times, energies, `EEF`, `EE`.
//! * [`apps`] — closed-form application models for FT, EP and CG (§V.B),
//!   with coefficients fitted by the calibration pipeline.
//! * [`calibrate`] — the §IV.B methodology: derive machine parameters with
//!   the microbenchmark suite and application parameters from instrumented
//!   runs.
//! * [`validate`] — model-vs-measurement comparison (the engine behind the
//!   paper's Figs. 3–4).
//! * [`scaling`] — EE surfaces over `(p, f)` / `(p, n)`, iso-EE contours,
//!   and the DVFS/parallelism advisor (§V.B's decision-making use case).
//! * [`batch`] — the batched columnar sweep kernel: Eq. 13/15 terms
//!   factored into per-axis invariant and varying parts, whole grid rows
//!   evaluated into flat struct-of-arrays buffers, bit-identical to
//!   [`model`] (the sweeps in [`scaling`] route through it; set
//!   `ISOEE_SCALAR_SWEEP=1` to force the scalar oracle).
//! * [`interval`] — outward-rounded interval evaluation of the model over
//!   parameter *boxes*: ahead-of-time certification that a whole sweep
//!   grid is free of degenerate baselines (or the exact offending cell).
//!
//! ## Quick start
//!
//! ```
//! use isoee::{MachineParams, model};
//! use isoee::apps::{AppModel, EpModel};
//!
//! let mach = MachineParams::system_g(2.8e9);
//! let ep = EpModel::system_g();
//! let app = ep.app_params(1_000_000.0, 64);
//! let ee = model::ee(&mach, &app, 64).expect("baseline energy is positive");
//! assert!(ee > 0.95); // EP is near-ideally iso-energy-efficient
//! ```

#![forbid(unsafe_code)]

pub mod apps;
pub mod baselines;
pub mod batch;
pub mod calibrate;
pub mod hetero;
pub mod interval;
pub mod model;
pub mod params;
pub mod plancost;
pub mod report;
pub mod scaling;
pub mod symcost;
pub mod validate;

pub use apps::{AppModel, CgModel, EpModel, FtModel};
pub use baselines::{performance_efficiency, power_aware_speedup};
pub use batch::{PfGrid, PnGrid, PointEval, Terms};
pub use calibrate::{measure_alpha, measure_app_params, measured_machine_params};
pub use hetero::{HeteroResult, ProcClass, Split};
pub use interval::{AppBox, E1Factors, GridCertification, Interval, MachBox, ModelEnclosure};
pub use model::{e0, e1, ee, eef, ep, t1, tp, ModelError};
pub use params::{AppParams, MachineParams};
pub use plancost::{cost_bounds, PlanCost};
pub use scaling::{
    best_frequency, best_frequency_scalar_with, best_frequency_with, ee_surface_pf,
    ee_surface_pf_scalar_with, ee_surface_pf_with, ee_surface_pn, ee_surface_pn_scalar_with,
    ee_surface_pn_with, iso_ee_contour, iso_ee_contour_scalar_with, iso_ee_contour_with,
    iso_ee_workload, set_eval_timing, PoolConfig, Surface, SweepError,
};
pub use symcost::{power_cap_verdict, sym_app_box, sym_cost_bounds, PowerCapVerdict, SymPlanCost};
pub use validate::{validate_kernel, ValidationPoint, ValidationSummary};
