//! The EP application model (§V.B.2).
//!
//! EP is the paper's near-ideal case: `Wm ≈ 0`, `Woc` a vanishing reduction
//! term, `M`/`B` a dozen tiny allreduce messages. Consequently `EE ≈ 1`
//! for every `(p, f)` (Fig. 7), and scaling `n` cannot improve EE because
//! `Ep` rises exactly as fast as `E1` (Fig. 8's discussion).

use crate::interval::{AppBox, Interval};
use crate::params::AppParams;

use super::{allreduce_counts, AppModel};

/// Closed-form EP model. `n` is the number of Gaussian pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpModel {
    /// Overlap factor α (paper's measured 0.93 for EP on SystemG).
    pub alpha: f64,
    /// On-chip instructions per pair (`Wc = wc_pair · n`).
    pub wc_pair: f64,
    /// Combine instructions per allreduce element per round (`Woc`).
    pub woc_round: f64,
    /// Allreduce payload: 13 doubles (accepted, sx, sy, 10 annuli).
    pub payload_bytes: f64,
}

impl EpModel {
    /// Coefficients calibrated on the simulated SystemG with the §IV.B
    /// pipeline (regenerate with `cargo run -p bench --bin table2`).
    pub fn system_g() -> Self {
        Self {
            alpha: 0.93,
            // 62 charged instructions/pair plus the cache-time equivalent
            // of 0.25 accesses/pair at L1 latency.
            wc_pair: 63.1,
            woc_round: 13.0,
            payload_bytes: 104.0,
        }
    }
}

impl AppModel for EpModel {
    fn name(&self) -> &'static str {
        "EP"
    }

    fn app_params(&self, n: f64, p: usize) -> AppParams {
        assert!(n > 0.0 && p > 0, "invalid (n, p)");
        let (messages, bytes) = allreduce_counts(p, self.payload_bytes);
        // Each message's payload is combined once on arrival.
        let woc = messages * self.woc_round;
        let a = AppParams::from_raw(
            self.alpha,
            self.wc_pair * n,
            0.0,
            woc,
            0.0,
            messages,
            bytes,
            0.0,
        );
        a.validate();
        a
    }

    // Interval mirror: only `Wc` depends on `n`; every other entry is a
    // scalar in `p` and carries over as a point.
    fn app_params_box(&self, n: Interval, p: usize) -> Option<AppBox> {
        if n.lo.is_nan() || n.lo <= 0.0 || p == 0 {
            return None;
        }
        let (messages, bytes) = allreduce_counts(p, self.payload_bytes);
        let woc = messages * self.woc_round;
        Some(AppBox {
            alpha: Interval::point(self.alpha),
            wc: Interval::point(self.wc_pair) * n,
            wm: Interval::point(0.0),
            woc: Interval::point(woc),
            wom: Interval::point(0.0),
            messages: Interval::point(messages),
            bytes: Interval::point(bytes),
            t_io: Interval::point(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;
    use crate::params::MachineParams;

    #[test]
    fn ep_is_near_ideal_everywhere() {
        // The paper's Fig. 7: EE ≈ 1 for all (p, f).
        let m = MachineParams::system_g(2.8e9);
        let ep = EpModel::system_g();
        for p in [1usize, 2, 8, 64, 128] {
            for f in [1.6e9, 2.0e9, 2.4e9, 2.8e9] {
                let mach = m.at_frequency(f);
                let a = ep.app_params((1u64 << 22) as f64, p);
                let ee = model::ee(&mach, &a, p).expect("baseline energy is positive");
                assert!(ee > 0.97 && ee <= 1.0 + 1e-12, "EE_EP({p}, {f}) = {ee}");
            }
        }
    }

    #[test]
    fn scaling_n_does_not_change_ee() {
        // §V.B.6: for EP, E0 grows as fast as E1, so n does not help.
        let m = MachineParams::system_g(2.8e9);
        let ep = EpModel::system_g();
        let e_small =
            model::ee(&m, &ep.app_params(1e7, 64), 64).expect("baseline energy is positive");
        let e_large =
            model::ee(&m, &ep.app_params(1e9, 64), 64).expect("baseline energy is positive");
        // Larger n actually *amortizes* the fixed reduction cost, so EE can
        // only move toward 1 — and it is already there.
        assert!((e_small - e_large).abs() < 0.01);
    }

    #[test]
    fn workload_scales_linearly() {
        let ep = EpModel::system_g();
        let a1 = ep.app_params(1e6, 4);
        let a2 = ep.app_params(2e6, 4);
        assert!((a2.wc / a1.wc - 2.0).abs() < 1e-12);
        assert_eq!(a1.wm.raw(), 0.0);
    }
}
