//! The FT application model (§V.B.1).
//!
//! FT is the paper's communication-bound case. Its all-to-all transposes
//! follow the **pairwise-exchange/Hockney** form the paper adopts from
//! Pjesivac-Grbovic et al.:
//!
//! ```text
//! T_alltoall = (p − 1) · (ts + tw · m),    m = 16·n / p²  bytes
//! ```
//!
//! so total messages grow as `p(p−1)` while total bytes stay ~constant —
//! at scale the startup term dominates and `EE` collapses with `p` almost
//! regardless of `f` (Figs. 5–6). Scaling the grid `n` restores efficiency
//! (the quadratic message overhead amortizes over more work).
//!
//! The communication terms below are *exact* counts of the kernel's
//! collectives (they reproduce the measured `M`/`B` to the message); the
//! workload coefficients are calibrated per DESIGN.md §2 — in the paper's
//! measurement regime (workload ≫ aggregate cache, `p ≤ 16` for the
//! overhead terms), because beyond it the simulator's scaled-down footprint
//! drops entirely into aggregate cache, a regime the full-size NPB grids
//! never enter.

use crate::interval::{AppBox, Interval};
use crate::params::AppParams;

use super::{allreduce_counts, AppModel};

/// Closed-form FT model. `n` is the total number of grid points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtModel {
    /// Overlap factor α (paper's 0.86 for FT on SystemG).
    pub alpha: f64,
    /// Iterations (evolve + inverse FFT); the forward transform adds one
    /// more all-to-all.
    pub niter: f64,
    /// `Wc = wc_nlogn · n·log2(n) + wc_lin · n`. The `n·log2 n` slope is
    /// theory-anchored: 7 three-dimensional FFTs × 5 flops per point per
    /// log2 level.
    pub wc_nlogn: f64,
    /// Linear on-chip coefficient (evolve, checksums, pack/unpack and the
    /// cache-time equivalents), fitted at class B.
    pub wc_lin: f64,
    /// Sequential off-chip workload `Wm = wm_lin · n` (class-B footprint).
    pub wm_lin: f64,
    /// Parallel compute overhead `Woc = woc_coeff · n·(1 − 1/p)`.
    pub woc_coeff: f64,
    /// Parallel memory overhead `Wom = wom_coeff · n·(1 − 1/p)`; *negative*
    /// on SystemG — per-rank slabs cache better under strong scaling (the
    /// paper fits −0.73·… for FT).
    pub wom_coeff: f64,
}

impl FtModel {
    /// Coefficients calibrated on the simulated SystemG at the class-B
    /// footprint (regenerate with `cargo run --release -p bench --bin
    /// table2`; overhead terms fitted at p ∈ {4, 16}).
    pub fn system_g() -> Self {
        Self {
            alpha: 0.86,
            niter: 6.0,
            wc_nlogn: 35.0,
            wc_lin: 182.0,
            wm_lin: 13.31,
            woc_coeff: 15.0,
            wom_coeff: -0.45,
        }
    }
}

impl AppModel for FtModel {
    fn name(&self) -> &'static str {
        "FT"
    }

    fn app_params(&self, n: f64, p: usize) -> AppParams {
        assert!(n > 1.0 && p > 0, "invalid (n, p)");
        let pf = p as f64;
        let transposes = self.niter + 1.0;

        // Pairwise exchange: every process sends p−1 chunks of 16n/p² bytes
        // per transpose.
        let m_a2a = transposes * pf * (pf - 1.0);
        let b_a2a = transposes * 16.0 * n * (pf - 1.0) / pf;
        // Small allreduces: spectral energy (niter+1) + checksum (niter),
        // payload ≤ 2 doubles.
        let (m_red_each, b_red_each) = allreduce_counts(p, 16.0);
        let m_red = (2.0 * self.niter + 1.0) * m_red_each;
        let b_red = (2.0 * self.niter + 1.0) * b_red_each;

        let wc = (self.wc_nlogn * n * n.log2() + self.wc_lin * n).max(0.0);
        let wm = self.wm_lin * n;
        let scale_frac = 1.0 - 1.0 / pf;
        let woc = (self.woc_coeff * n * scale_frac).max(-wc * 0.95);
        let wom = (self.wom_coeff * n * scale_frac).max(-wm);

        let a = AppParams::from_raw(
            self.alpha,
            wc,
            wm,
            woc,
            wom,
            m_a2a + m_red,
            b_a2a + b_red,
            0.0,
        );
        a.validate();
        a
    }

    // Interval mirror of the formulas above, in the same association order.
    fn app_params_box(&self, n: Interval, p: usize) -> Option<AppBox> {
        if n.lo.is_nan() || n.lo <= 1.0 || p == 0 {
            return None;
        }
        let pf = p as f64;
        let transposes = self.niter + 1.0;

        let m_a2a = transposes * pf * (pf - 1.0);
        let b_a2a = Interval::point(transposes * 16.0) * n * Interval::point(pf - 1.0)
            / Interval::point(pf);
        let (m_red_each, b_red_each) = allreduce_counts(p, 16.0);
        let m_red = (2.0 * self.niter + 1.0) * m_red_each;
        let b_red = (2.0 * self.niter + 1.0) * b_red_each;

        let wc = (Interval::point(self.wc_nlogn) * n * n.log2() + Interval::point(self.wc_lin) * n)
            .max(Interval::point(0.0));
        let wm = Interval::point(self.wm_lin) * n;
        let scale_frac = 1.0 - 1.0 / pf;
        let woc = (Interval::point(self.woc_coeff) * n * Interval::point(scale_frac))
            .max(-wc * Interval::point(0.95));
        let wom = (Interval::point(self.wom_coeff) * n * Interval::point(scale_frac)).max(-wm);

        Some(AppBox {
            alpha: Interval::point(self.alpha),
            wc,
            wm,
            woc,
            wom,
            messages: Interval::point(m_a2a + m_red),
            bytes: b_a2a + Interval::point(b_red),
            t_io: Interval::point(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;
    use crate::params::MachineParams;

    /// A mid-size grid where the paper's Fig.-5 collapse is visible within
    /// p ≤ 1024 on InfiniBand parameters.
    const N: f64 = (1 << 20) as f64;

    #[test]
    fn ee_collapses_with_p_at_fixed_n() {
        // Fig. 5's dominant axis: p.
        let m = MachineParams::system_g(2.8e9);
        let ft = FtModel::system_g();
        let ee_small: f64 =
            model::ee(&m, &ft.app_params(N, 4), 4).expect("baseline energy is positive");
        let ee_large: f64 =
            model::ee(&m, &ft.app_params(N, 512), 512).expect("baseline energy is positive");
        assert!(ee_small > ee_large + 0.2, "{ee_small} vs {ee_large}");
        assert!(ee_large > 0.0);
    }

    #[test]
    fn ee_nearly_monotone_in_p() {
        // Strictly monotone decline up to a small cache-relief ripple.
        let m = MachineParams::system_g(2.8e9);
        let ft = FtModel::system_g();
        let mut prev = f64::INFINITY;
        for p in [1usize, 4, 16, 64, 256, 1024] {
            let e = model::ee(&m, &ft.app_params(N, p), p).expect("baseline energy is positive");
            assert!(e <= prev + 0.01, "p={p}: {e} vs prev {prev}");
            prev = e;
        }
    }

    #[test]
    fn frequency_barely_matters() {
        // Fig. 5's flat frequency axis: FT is communication/memory bound.
        let ft = FtModel::system_g();
        let base = MachineParams::system_g(2.8e9);
        for p in [16usize, 64, 256] {
            let a = ft.app_params(N, p);
            let hi = model::ee(&base, &a, p).expect("baseline energy is positive");
            let lo =
                model::ee(&base.at_frequency(1.6e9), &a, p).expect("baseline energy is positive");
            assert!(
                (hi - lo).abs() < 0.12,
                "EE_FT should be nearly flat in f at p={p}: {hi} vs {lo}"
            );
        }
    }

    #[test]
    fn growing_n_restores_efficiency() {
        // Fig. 6: increasing the problem size improves EE.
        let m = MachineParams::system_g(2.8e9);
        let ft = FtModel::system_g();
        let p = 256;
        let small =
            model::ee(&m, &ft.app_params(N / 8.0, p), p).expect("baseline energy is positive");
        let large =
            model::ee(&m, &ft.app_params(N * 8.0, p), p).expect("baseline energy is positive");
        assert!(large > small, "{large} vs {small}");
    }

    #[test]
    fn message_count_grows_superlinearly_in_p() {
        let ft = FtModel::system_g();
        let a8 = ft.app_params(N, 8);
        let a16 = ft.app_params(N, 16);
        // The p(p−1) all-to-all term dominates: doubling p must much more
        // than double the message count.
        let ratio = a16.messages / a8.messages;
        assert!(ratio > 3.0, "ratio {ratio}");
    }

    #[test]
    fn total_bytes_roughly_constant_in_p() {
        let ft = FtModel::system_g();
        let b8 = ft.app_params(N, 8).bytes;
        let b64 = ft.app_params(N, 64).bytes;
        assert!(b64 / b8 < 1.2, "bytes should saturate: {b8} vs {b64}");
    }

    #[test]
    fn wom_is_negative_in_parallel() {
        let ft = FtModel::system_g();
        let a = ft.app_params(N, 16);
        assert!(a.wom.raw() < 0.0);
        assert!((a.wm + a.wom).raw() >= 0.0);
    }

    #[test]
    fn comm_counts_match_kernel_measurement_shape() {
        // The exact-count property: at p = 4 the model must reproduce the
        // measured 188 messages of the class-B calibration run
        // (7 transposes × 4·3 pairwise sends + 13 reductions × 8 sends).
        let ft = FtModel::system_g();
        let a = ft.app_params((8u64 << 20) as f64, 4);
        assert_eq!(a.messages.raw(), 84.0 + 104.0);
    }
}
