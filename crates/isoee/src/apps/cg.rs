//! The CG application model (§V.B.3).
//!
//! CG on NPB's 2-D processor grid has two defining overheads:
//!
//! * **Replicated vector work** — every processor in a row repeats the
//!   row-segment updates, so parallel on-chip overhead grows like
//!   `n·(npcol − 1)` with `npcol ≈ √(2p)`; this is where the paper's `√p`
//!   terms come from.
//! * **Reduce/transpose communication** — a partner exchange of `n/npcol`
//!   elements plus a `log₂ npcol`-round row allreduce per SpMV, and scalar
//!   allreduces for the dot products. The counts below are *exact* (they
//!   reproduce the calibration run's measured `M`/`B` to the message).
//!
//! Because the parallel *overhead* is computation (it gets cheaper as `f`
//! rises: its idle-energy share scales with `tc ∝ 1/f`) while the
//! sequential *base* is memory-bound (f-independent `Wm·tm` terms), `EEF =
//! E0/E1` falls as `f` rises: **raising the DVFS frequency improves CG's
//! energy efficiency**, the paper's headline Fig.-9 observation, opposite
//! to EP and FT.

use npb::common::cg_proc_grid;

use crate::interval::{AppBox, Interval};
use crate::params::AppParams;

use super::{allreduce_counts, AppModel};

/// Closed-form CG model. `n` is the matrix dimension (the paper's Fig. 9
/// uses `n = 75000`, i.e. class B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgModel {
    /// Overlap factor α (paper's 0.85 for CG on SystemG).
    pub alpha: f64,
    /// Outer power-iteration steps (each with 25 inner CG iterations).
    pub niter: f64,
    /// `Wc = wc_lin · n` (SpMV + vector sweeps, incl. cache time).
    pub wc_lin: f64,
    /// `Wm = wm_lin · n` (DRAM traffic of the cache-proof class-B matrix).
    pub wm_lin: f64,
    /// Replication overhead: `Woc = woc_repl · n · (npcol − 1)`.
    pub woc_repl: f64,
    /// Strong-scaling cache relief: `Wom = wom_coeff · n·(1 − p^{-1/2})`,
    /// negative (the paper fits −4.75·…·√p-shaped terms). Fitted in the
    /// pre-relief regime (p = 4), where the paper's own measurements live.
    pub wom_coeff: f64,
}

impl CgModel {
    /// Coefficients calibrated on the simulated SystemG at class-B size
    /// (regenerate with `cargo run --release -p bench --bin table2`).
    pub fn system_g() -> Self {
        Self {
            alpha: 0.85,
            niter: 4.0,
            wc_lin: 159_243.0,
            wm_lin: 11_641.0,
            woc_repl: 9_500.0,
            wom_coeff: -150.0,
        }
    }
}

impl AppModel for CgModel {
    fn name(&self) -> &'static str {
        "CG"
    }

    /// # Panics
    /// Panics unless `p` is a power of two (the NPB grid constraint).
    fn app_params(&self, n: f64, p: usize) -> AppParams {
        assert!(n > 1.0 && p > 0, "invalid (n, p)");
        let (nprow, npcol) = cg_proc_grid(p);
        let (nprow_f, npcol_f) = (nprow as f64, npcol as f64);
        let pf = p as f64;
        let lg_npcol = if npcol > 1 { npcol_f.log2() } else { 0.0 };

        // Communication per outer step: 26 SpMVs, 54 scalar allreduces
        // (25×2 inner dots + init ρ + residual + 2 outer dots).
        let spmvs = 26.0 * self.niter;
        let dots = 54.0 * self.niter;
        // Transpose exchange: p − (self partners) messages of 8·n/npcol.
        let self_partners = if npcol == nprow {
            nprow_f
        } else {
            2.0 * nprow_f
        };
        let m_tr = spmvs * (pf - self_partners);
        let b_tr = m_tr * 8.0 * n / npcol_f;
        // Row allreduce: p·log2(npcol) messages of 8·n/nprow.
        let m_rr = spmvs * pf * lg_npcol;
        let b_rr = m_rr * 8.0 * n / nprow_f;
        // Scalar dot-product allreduces.
        let (m_dot_each, b_dot_each) = allreduce_counts(p, 8.0);
        let m_dot = dots * m_dot_each;
        let b_dot = dots * b_dot_each;

        let wc = self.wc_lin * n;
        let wm = self.wm_lin * n;
        let woc = self.woc_repl * n * (npcol_f - 1.0);
        let wom = (self.wom_coeff * n * (1.0 - 1.0 / pf.sqrt())).max(-wm);

        let a = AppParams::from_raw(
            self.alpha,
            wc,
            wm,
            woc,
            wom,
            m_tr + m_rr + m_dot,
            b_tr + b_rr + b_dot,
            0.0,
        );
        a.validate();
        a
    }

    /// Interval mirror of the formulas above (same association order).
    ///
    /// # Panics
    /// Panics unless `p` is a power of two, like [`Self::app_params`].
    fn app_params_box(&self, n: Interval, p: usize) -> Option<AppBox> {
        if n.lo.is_nan() || n.lo <= 1.0 || p == 0 {
            return None;
        }
        let (nprow, npcol) = cg_proc_grid(p);
        let (nprow_f, npcol_f) = (nprow as f64, npcol as f64);
        let pf = p as f64;
        let lg_npcol = if npcol > 1 { npcol_f.log2() } else { 0.0 };

        let spmvs = 26.0 * self.niter;
        let dots = 54.0 * self.niter;
        let self_partners = if npcol == nprow {
            nprow_f
        } else {
            2.0 * nprow_f
        };
        let m_tr = spmvs * (pf - self_partners);
        let b_tr = Interval::point(m_tr * 8.0) * n / Interval::point(npcol_f);
        let m_rr = spmvs * pf * lg_npcol;
        let b_rr = Interval::point(m_rr * 8.0) * n / Interval::point(nprow_f);
        let (m_dot_each, b_dot_each) = allreduce_counts(p, 8.0);
        let m_dot = dots * m_dot_each;
        let b_dot = dots * b_dot_each;

        let wc = Interval::point(self.wc_lin) * n;
        let wm = Interval::point(self.wm_lin) * n;
        let woc = Interval::point(self.woc_repl) * n * Interval::point(npcol_f - 1.0);
        let wom =
            (Interval::point(self.wom_coeff) * n * Interval::point(1.0 - 1.0 / pf.sqrt())).max(-wm);

        Some(AppBox {
            alpha: Interval::point(self.alpha),
            wc,
            wm,
            woc,
            wom,
            messages: Interval::point(m_tr + m_rr + m_dot),
            bytes: b_tr + b_rr + Interval::point(b_dot),
            t_io: Interval::point(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;
    use crate::params::MachineParams;

    const N_B: f64 = 75_000.0; // the paper's Fig. 9 workload

    #[test]
    fn ee_declines_with_p() {
        // Fig. 9: energy efficiency declines with the level of parallelism
        // (up to a sub-percent cache-relief ripple at small p).
        let m = MachineParams::system_g(2.8e9);
        let cg = CgModel::system_g();
        let mut prev = f64::INFINITY;
        for p in [1usize, 4, 16, 64, 256, 1024] {
            let e = model::ee(&m, &cg.app_params(N_B, p), p).expect("baseline energy is positive");
            assert!(
                e < prev + 0.005,
                "EE must decline: p={p} ee={e} prev={prev}"
            );
            prev = e;
        }
        // And the decline is substantive by p = 1024.
        let e1 = model::ee(&m, &cg.app_params(N_B, 1), 1).expect("baseline energy is positive");
        let e1024 =
            model::ee(&m, &cg.app_params(N_B, 1024), 1024).expect("baseline energy is positive");
        assert!(e1 - e1024 > 0.05, "{e1} vs {e1024}");
    }

    #[test]
    fn higher_frequency_improves_ee() {
        // The paper's headline CG observation (Fig. 9): in this strong-
        // scaling case, users can scale frequency *up* for better EE.
        let cg = CgModel::system_g();
        let base = MachineParams::system_g(2.8e9);
        for p in [16usize, 64, 256] {
            let a = cg.app_params(N_B, p);
            let lo =
                model::ee(&base.at_frequency(1.6e9), &a, p).expect("baseline energy is positive");
            let hi = model::ee(&base, &a, p).expect("baseline energy is positive");
            assert!(
                hi > lo,
                "EE_CG must rise with f at p={p}: {lo} (1.6 GHz) vs {hi} (2.8 GHz)"
            );
        }
    }

    #[test]
    fn growing_n_improves_ee() {
        // Fig. 8: increasing workload size improves energy efficiency.
        let m = MachineParams::system_g(2.8e9);
        let cg = CgModel::system_g();
        let p = 64;
        let small =
            model::ee(&m, &cg.app_params(7_500.0, p), p).expect("baseline energy is positive");
        let large =
            model::ee(&m, &cg.app_params(300_000.0, p), p).expect("baseline energy is positive");
        assert!(large > small, "{large} vs {small}");
    }

    #[test]
    fn overheads_carry_sqrt_p_structure() {
        let cg = CgModel::system_g();
        // npcol doubles every other doubling of p: Woc grows ~(npcol−1).
        let a16 = cg.app_params(N_B, 16); // npcol = 4
        let a64 = cg.app_params(N_B, 64); // npcol = 8
        let growth = a64.woc / a16.woc;
        assert!((growth - 7.0 / 3.0).abs() < 1e-9, "woc growth {growth}");
    }

    #[test]
    fn comm_counts_match_kernel_measurement() {
        // Exact-count check against the p = 4 calibration run: 2352
        // messages, ≈1.9e8 bytes at class-B (n_pad = 75776).
        let cg = CgModel::system_g();
        let a = cg.app_params(75_776.0, 4);
        assert_eq!(a.messages.raw(), 2352.0);
        assert!(
            (a.bytes.raw() - 1.892e8).abs() / 1.892e8 < 0.01,
            "{}",
            a.bytes
        );
    }

    #[test]
    fn wom_negative_and_bounded() {
        let cg = CgModel::system_g();
        let a = cg.app_params(N_B, 64);
        assert!(a.wom.raw() < 0.0);
        assert!((a.wm + a.wom).raw() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_p_rejected() {
        CgModel::system_g().app_params(N_B, 6);
    }
}
