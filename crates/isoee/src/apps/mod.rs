//! Closed-form application models — the paper's §V.B case studies.
//!
//! Each model maps `(n, p)` to the Table-2 vector `Appl = (α, Wc, Wm, Woc,
//! Wom, M, B)`. Communication terms come from *algorithm analysis* (exact
//! message/byte counts of the collectives the kernels use — the paper does
//! the same, e.g. the pairwise-exchange/Hockney form for FT's all-to-all);
//! workload terms use simple fitted forms whose coefficients come from the
//! §IV.B calibration pipeline (instrumented runs + least squares).
//!
//! The paper's own printed coefficients (e.g. FT's `(0.86, 1.06…, 9.49n,
//! 4.46…, −0.73…)`) are partially illegible in the source text and are tied
//! to the authors' hardware, so the `system_g()` presets here carry
//! coefficients **re-derived on the simulated SystemG** with the same
//! methodology (`cargo run -p bench --bin table2` regenerates them). The
//! *structure* — which terms exist, their signs, and their growth in `n`
//! and `p` — follows the paper.

mod cg;
mod ep;
mod ft;

pub use cg::CgModel;
pub use ep::EpModel;
pub use ft::FtModel;

use crate::interval::{AppBox, Interval};
use crate::params::AppParams;

/// A closed-form application model: `(n, p) → Appl` (Table 2).
///
/// `Sync` is a supertrait so `&dyn AppModel` sweeps can fan out over the
/// `pool` thread pool; models are plain coefficient tables, so this costs
/// implementors nothing.
pub trait AppModel: Sync {
    /// Short name as used in the paper's figures ("FT", "EP", "CG").
    fn name(&self) -> &'static str;

    /// Evaluate the application-dependent vector at workload `n` and
    /// parallelism `p`.
    fn app_params(&self, n: f64, p: usize) -> AppParams;

    /// Interval mirror of [`Self::app_params`]: the Table-2 box for a whole
    /// workload *interval* at fixed `p`, sound for the ahead-of-time
    /// verification passes ([`crate::interval`]) — every point evaluation
    /// `app_params(n, p)` with `n` in the interval must lie inside the
    /// returned box.
    ///
    /// The default returns `None` ("no mirror available"); callers then
    /// fall back to per-point thin boxes. Implementations must follow the
    /// exact floating-point association order of their `app_params`, as the
    /// built-in NPB models do.
    fn app_params_box(&self, n: Interval, p: usize) -> Option<AppBox> {
        let _ = (n, p);
        None
    }
}

/// Message/byte totals of the mps recursive-doubling allreduce (with
/// pre/post folding for non-powers of two) — used by all three app models
/// for their small reductions.
pub(crate) fn allreduce_counts(p: usize, payload_bytes: f64) -> (f64, f64) {
    if p <= 1 {
        return (0.0, 0.0);
    }
    let m0 = 1usize << (usize::BITS - 1 - p.leading_zeros());
    let r = p - m0;
    let rounds = f64::from(m0.trailing_zeros());
    // Doubling exchanges: every rank < m0 sends `rounds` messages; folded
    // ranks add one send in and one result back.
    let messages = m0 as f64 * rounds + 2.0 * r as f64;
    (messages, messages * payload_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_counts_power_of_two() {
        let (m, b) = allreduce_counts(8, 104.0);
        assert_eq!(m, 8.0 * 3.0);
        assert_eq!(b, 24.0 * 104.0);
    }

    #[test]
    fn allreduce_counts_non_power_of_two() {
        let (m, _) = allreduce_counts(5, 8.0);
        // m0 = 4, r = 1: 4·2 + 2 = 10 messages.
        assert_eq!(m, 10.0);
    }

    #[test]
    fn allreduce_counts_trivial() {
        assert_eq!(allreduce_counts(1, 8.0), (0.0, 0.0));
    }
}
