//! The model's parameter vectors — the paper's Tables 1 and 2.
//!
//! **Machine-dependent** (Table 1), a function of frequency and bandwidth:
//!
//! ```text
//! Mach(f, BW) = (tc, tm, ts, tw, ΔPc, ΔPm, ΔP_NIC, ΔP_IO, P_sys_idle)
//! ```
//!
//! with `tc = CPI / f` and `ΔPc(f) = ΔPc_ref · (f / f_ref)^γ` (Eq. 20,
//! γ ≥ 1; γ = 2 on SystemG).
//!
//! **Application-dependent** (Table 2), a function of workload and
//! parallelism:
//!
//! ```text
//! Appl(n, p) = (α, Wc, Wm, Woc, Wom, M, B)
//! ```
//!
//! where `Wc`/`Wm` are the sequential on-chip/off-chip workloads, `Woc`/
//! `Wom` the parallelization overheads (totals across all processors;
//! `Wom` is frequently *negative* under strong scaling — shrinking per-rank
//! working sets genuinely reduce off-chip traffic), and `M`/`B` the message
//! and byte totals of Eq. 17.
//!
//! Both vectors carry their entries as [`simcluster::units`] newtypes, so a
//! latency cannot be added to a power and a workload tally cannot be used
//! as a duration without going through the dimensional algebra.

use simcluster::units::{Accesses, Bytes, Hertz, Instructions, Messages, Seconds, Watts};
use simcluster::ClusterSpec;

/// Machine-dependent parameters (Table 1) at a specific DVFS state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// Average time per on-chip instruction, `tc = CPI / f`.
    pub tc: Seconds,
    /// Average off-chip (DRAM) access latency `tm`.
    pub tm: Seconds,
    /// Message startup time `ts`.
    pub ts: Seconds,
    /// Per-byte transmission time `tw` (Table 1's 8-bit word).
    pub tw: Seconds,
    /// Per-processor system idle power `P_sys_idle`.
    pub p_sys_idle: Watts,
    /// CPU active delta `ΔPc` at this frequency.
    pub delta_pc: Watts,
    /// Memory active delta `ΔPm`.
    pub delta_pm: Watts,
    /// NIC active delta (the network term of Eq. 18).
    pub delta_pnic: Watts,
    /// Disk active delta `ΔP_IO` (≈ unused for NPB).
    pub delta_pio: Watts,
    /// The frequency these parameters describe (Hz).
    pub f_hz: f64,
    /// Reference (nominal) frequency for the power law (Hz).
    pub f_ref_hz: f64,
    /// Power-law exponent γ (Eq. 20).
    pub gamma: f64,
    /// Cycles per instruction (so `tc` can be re-derived at any `f`).
    pub cpi: f64,
}

impl MachineParams {
    /// Derive the vector directly from a cluster specification — the
    /// "ground truth" the calibration pipeline should recover.
    #[must_use]
    pub fn from_spec(spec: &ClusterSpec, f_hz: f64) -> Self {
        spec.validate();
        let node = &spec.node;
        let f_ref = node.cpu.dvfs.nominal();
        Self {
            tc: node.cpu.tc(f_hz),
            tm: Seconds::new(node.memory.dram_latency_s),
            ts: Seconds::new(spec.link.startup_s),
            tw: Seconds::new(spec.link.per_byte_s),
            p_sys_idle: node.system_idle_w(),
            delta_pc: node.cpu.delta_power(f_hz),
            delta_pm: node.memory.power.delta(),
            delta_pnic: node.nic.delta(),
            delta_pio: node.disk.delta(),
            f_hz,
            f_ref_hz: f_ref,
            gamma: node.cpu.delta.gamma,
            cpi: node.cpu.base_cpi,
        }
    }

    /// The SystemG vector at frequency `f_hz`.
    ///
    /// # Panics
    /// Panics when `f_hz` is off the DVFS table.
    #[must_use]
    pub fn system_g(f_hz: f64) -> Self {
        let spec = simcluster::system_g();
        assert!(
            spec.node.cpu.dvfs.contains(f_hz),
            "{f_hz} Hz is not a SystemG DVFS state"
        );
        Self::from_spec(&spec, f_hz)
    }

    /// The Dori vector at frequency `f_hz`.
    ///
    /// # Panics
    /// Panics when `f_hz` is off the DVFS table.
    #[must_use]
    pub fn dori(f_hz: f64) -> Self {
        let spec = simcluster::dori();
        assert!(
            spec.node.cpu.dvfs.contains(f_hz),
            "{f_hz} Hz is not a Dori DVFS state"
        );
        Self::from_spec(&spec, f_hz)
    }

    /// Re-evaluate the frequency-dependent entries at a new DVFS state
    /// (Eq. 20): `tc = CPI/f`, `ΔPc ∝ f^γ`; memory/network latencies and
    /// powers are frequency-independent.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite frequency.
    #[must_use]
    pub fn at_frequency(&self, f_hz: f64) -> Self {
        assert!(f_hz.is_finite() && f_hz > 0.0, "invalid frequency {f_hz}");
        let mut m = *self;
        m.tc = Instructions::new(self.cpi) / Hertz::new(f_hz);
        m.delta_pc = self.delta_pc * (f_hz / self.f_hz).powf(self.gamma);
        m.f_hz = f_hz;
        m
    }
}

/// Application-dependent parameters (Table 2) at a specific `(n, p)`.
///
/// All workload fields are **totals across all processors** (the sums of
/// Eqs. 15–16), not per-processor values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppParams {
    /// Overlap factor `α ∈ (0, 1]` (§VI.F).
    pub alpha: f64,
    /// Sequential on-chip workload `Wc`.
    pub wc: Instructions,
    /// Sequential off-chip workload `Wm` (DRAM accesses).
    pub wm: Accesses,
    /// Parallel computation overhead `Woc` (total).
    pub woc: Instructions,
    /// Parallel memory overhead `Wom` (total, may be negative).
    pub wom: Accesses,
    /// Total messages `M`.
    pub messages: Messages,
    /// Total bytes `B`.
    pub bytes: Bytes,
    /// Flat sequential I/O time `T_IO` (≈ 0 for NPB).
    pub t_io: Seconds,
}

impl AppParams {
    /// A pure-compute workload with no overheads — the ideal iso-energy-
    /// efficient application (useful as a fixture and in property tests).
    #[must_use]
    pub fn ideal(wc: f64) -> Self {
        Self {
            alpha: 1.0,
            wc: Instructions::new(wc),
            wm: Accesses::ZERO,
            woc: Instructions::ZERO,
            wom: Accesses::ZERO,
            messages: Messages::ZERO,
            bytes: Bytes::ZERO,
            t_io: Seconds::ZERO,
        }
    }

    /// Build the vector from raw magnitudes, wrapping each in its unit —
    /// the boundary constructor for calibration pipelines and kernel
    /// workload formulas that compute in plain `f64`.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn from_raw(
        alpha: f64,
        wc: f64,
        wm: f64,
        woc: f64,
        wom: f64,
        messages: f64,
        bytes: f64,
        t_io: f64,
    ) -> Self {
        Self {
            alpha,
            wc: Instructions::new(wc),
            wm: Accesses::new(wm),
            woc: Instructions::new(woc),
            wom: Accesses::new(wom),
            messages: Messages::new(messages),
            bytes: Bytes::new(bytes),
            t_io: Seconds::new(t_io),
        }
    }

    /// Validate physical sanity: workloads non-negative (overheads may be
    /// negative but must not exceed the base workload), α in (0, 1].
    ///
    /// # Panics
    /// Panics when a constraint is violated.
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha must be in (0,1], got {}",
            self.alpha
        );
        assert!(
            self.wc >= Instructions::ZERO && self.wm >= Accesses::ZERO,
            "workloads must be non-negative"
        );
        assert!(
            self.wc + self.woc >= Instructions::ZERO,
            "total parallel compute workload must stay non-negative"
        );
        assert!(
            self.wm + self.wom >= Accesses::ZERO,
            "total parallel memory workload must stay non-negative"
        );
        assert!(
            self.messages >= Messages::ZERO
                && self.bytes >= Bytes::ZERO
                && self.t_io >= Seconds::ZERO,
            "counts must be non-negative"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_spec_matches_cluster_description() {
        let spec = simcluster::system_g();
        let m = MachineParams::from_spec(&spec, 2.8e9);
        assert!((m.tc.raw() - 0.9 / 2.8e9).abs() < 1e-24);
        assert_eq!(m.ts, Seconds::new(spec.link.startup_s));
        assert_eq!(m.tw, Seconds::new(spec.link.per_byte_s));
        assert_eq!(m.p_sys_idle, spec.node.system_idle_w());
        assert_eq!(m.gamma, 2.0);
    }

    #[test]
    fn at_frequency_rescales_tc_and_delta_pc_only() {
        let m = MachineParams::system_g(2.8e9);
        let lo = m.at_frequency(1.4e9);
        assert!((lo.tc - 2.0 * m.tc).abs() < Seconds::new(1e-20));
        // γ = 2: (1.4/2.8)² = 0.25.
        assert!((lo.delta_pc - 0.25 * m.delta_pc).abs() < Watts::new(1e-9));
        assert_eq!(lo.tm, m.tm);
        assert_eq!(lo.ts, m.ts);
        assert_eq!(lo.tw, m.tw);
        assert_eq!(lo.delta_pm, m.delta_pm);
        assert_eq!(lo.p_sys_idle, m.p_sys_idle);
    }

    #[test]
    fn at_frequency_is_consistent_with_from_spec() {
        let spec = simcluster::system_g();
        let hi = MachineParams::from_spec(&spec, 2.8e9);
        let direct = MachineParams::from_spec(&spec, 1.6e9);
        let derived = hi.at_frequency(1.6e9);
        assert!((direct.tc - derived.tc).abs() < Seconds::new(1e-20));
        assert!((direct.delta_pc - derived.delta_pc).abs() < Watts::new(1e-9));
    }

    #[test]
    fn ideal_app_validates() {
        AppParams::ideal(1e9).validate();
    }

    #[test]
    fn negative_wom_is_allowed_within_bounds() {
        let mut a = AppParams::ideal(1e9);
        a.wm = Accesses::new(100.0);
        a.wom = Accesses::new(-40.0);
        a.validate();
    }

    #[test]
    #[should_panic(expected = "stay non-negative")]
    fn wom_cannot_exceed_wm() {
        let mut a = AppParams::ideal(1e9);
        a.wm = Accesses::new(100.0);
        a.wom = Accesses::new(-140.0);
        a.validate();
    }

    #[test]
    #[should_panic(expected = "not a SystemG DVFS state")]
    fn system_g_rejects_off_table_frequency() {
        let _ = MachineParams::system_g(3.0e9);
    }

    #[test]
    fn from_raw_wraps_each_unit() {
        let a = AppParams::from_raw(0.9, 1e9, 1e6, 1e5, -1e3, 64.0, 4096.0, 0.5);
        assert_eq!(a.wc, Instructions::new(1e9));
        assert_eq!(a.wom, Accesses::new(-1e3));
        assert_eq!(a.bytes, Bytes::new(4096.0));
        assert_eq!(a.t_io, Seconds::new(0.5));
        a.validate();
    }
}
